module imagebench

go 1.22
