// Package imagebench's root benchmarks regenerate every table and figure
// of "Comparative Evaluation of Big-Data Systems on Scientific Image
// Analytics Workloads" (VLDB 2017): one testing.B benchmark per paper
// artifact. Each iteration runs the full experiment under the quick
// profile and reports the resulting virtual runtimes as custom metrics
// where meaningful. Run with:
//
//	go test -bench=. -benchmem
//
// For the paper-sweep numbers use the CLI instead:
//
//	go run ./cmd/imagebench -profile full all
package imagebench

import (
	"context"
	"strings"
	"testing"

	"imagebench/internal/bench"
	"imagebench/internal/core"
)

// benchExperiment runs one registered experiment per iteration and fails
// the benchmark if the paper's qualitative shape no longer holds.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := core.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	p := core.Quick()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(context.Background(), p)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if err := e.Check(tab); err != nil {
			b.Fatalf("%s: shape check: %v", id, err)
		}
		if i == 0 {
			reportCells(b, tab)
		}
	}
}

// reportCells exposes the first and last column of each row as benchmark
// metrics so `go test -bench` output carries the reproduced series.
func reportCells(b *testing.B, t *core.Table) {
	for i, row := range t.RowNames {
		name := strings.ReplaceAll(row, " ", "-")
		first := t.Cells[i][0]
		last := t.Cells[i][len(t.ColNames)-1]
		if first == first { // not NaN
			b.ReportMetric(first, name+"_first_vs")
		}
		if last == last {
			b.ReportMetric(last, name+"_last_vs")
		}
	}
}

func BenchmarkTable1LoC(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFig10aDataSizes(b *testing.B)      { benchExperiment(b, "fig10a") }
func BenchmarkFig10bDataSizes(b *testing.B)      { benchExperiment(b, "fig10b") }
func BenchmarkFig10cNeuroEndToEnd(b *testing.B)  { benchExperiment(b, "fig10c") }
func BenchmarkFig10dAstroEndToEnd(b *testing.B)  { benchExperiment(b, "fig10d") }
func BenchmarkFig10eNormalized(b *testing.B)     { benchExperiment(b, "fig10e") }
func BenchmarkFig10fNormalized(b *testing.B)     { benchExperiment(b, "fig10f") }
func BenchmarkFig10gNeuroSpeedup(b *testing.B)   { benchExperiment(b, "fig10g") }
func BenchmarkFig10hAstroSpeedup(b *testing.B)   { benchExperiment(b, "fig10h") }
func BenchmarkFig11Ingest(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12aFilter(b *testing.B)         { benchExperiment(b, "fig12a") }
func BenchmarkFig12bMean(b *testing.B)           { benchExperiment(b, "fig12b") }
func BenchmarkFig12cDenoise(b *testing.B)        { benchExperiment(b, "fig12c") }
func BenchmarkFig12dCoadd(b *testing.B)          { benchExperiment(b, "fig12d") }
func BenchmarkFig13MyriaWorkers(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14SparkPartitions(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15MemoryModes(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkSec531TFAssignment(b *testing.B)   { benchExperiment(b, "sec531tf") }
func BenchmarkSec531SciDBChunks(b *testing.B)    { benchExperiment(b, "sec531scidb") }
func BenchmarkSec533SparkCaching(b *testing.B)   { benchExperiment(b, "sec533") }

// Ablation benchmarks: the design-property ablations DESIGN.md calls out
// (extensions beyond the paper's artifacts; see EXPERIMENTS.md).
func BenchmarkAblSparkPythonTax(b *testing.B) { benchExperiment(b, "abl-spark-pytax") }
func BenchmarkAblDaskFusion(b *testing.B)     { benchExperiment(b, "abl-dask-fusion") }
func BenchmarkAblDaskStealing(b *testing.B)   { benchExperiment(b, "abl-dask-stealing") }
func BenchmarkAblMyriaPushdown(b *testing.B)  { benchExperiment(b, "abl-myria-pushdown") }

// Kernel benchmarks: the real-compute hot paths behind the experiments,
// sequential vs tiled-parallel (bit-identical outputs; see
// internal/imaging). Each benchmark reuses the registered bench-harness
// case of the same name, so these numbers measure exactly the workload
// the committed BENCH baseline gates. Compare with:
//
//	go test -bench='NLMeans3|SeparableConv3' -cpu 1,8 .
func benchKernelCase(b *testing.B, name string) {
	b.Helper()
	cases, err := bench.SelectCases(core.Quick(), []string{name})
	if err != nil {
		b.Fatal(err)
	}
	run := cases[0].Run
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNLMeans3Sequential(b *testing.B)       { benchKernelCase(b, "kernel/nlmeans3/seq") }
func BenchmarkNLMeans3Parallel(b *testing.B)         { benchKernelCase(b, "kernel/nlmeans3/par") }
func BenchmarkSeparableConv3Sequential(b *testing.B) { benchKernelCase(b, "kernel/sepconv3/seq") }
func BenchmarkSeparableConv3Parallel(b *testing.B)   { benchKernelCase(b, "kernel/sepconv3/par") }
