// Tuning example: the paper's Section 5.3 knobs in one program — Myria
// workers per node (Fig 13), Spark input partitions (Fig 14), and Myria's
// memory-management strategies under pressure (Fig 15).
package main

import (
	"fmt"
	"log"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/myria"
	"imagebench/internal/neuro"
	"imagebench/internal/synth"
)

func main() {
	// --- Fig 13: Myria workers per node. ---
	ncfg := synth.DefaultNeuro(12)
	ncfg.T, ncfg.B0 = 48, 3
	w, err := neuro.NewWorkloadCfg(ncfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Myria workers per node (neuroscience, 12 subjects, 8 nodes):")
	for _, workers := range []int{1, 2, 4, 8} {
		cl := newCluster(8, 0)
		if _, err := neuro.RunMyria(w, cl, nil, neuro.MyriaOpts{WorkersPerNode: workers}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d workers/node: %8.0fs virtual\n", workers, cl.Makespan().Seconds())
	}

	// --- Fig 14: Spark input partitions. ---
	w1, err := neuro.NewWorkloadCfg(func() synth.NeuroConfig {
		c := synth.DefaultNeuro(1)
		c.T, c.B0 = 48, 3
		return c
	}())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSpark input partitions (neuroscience, 1 subject, 8 nodes × 8 cores):")
	for _, parts := range []int{1, 4, 16, 48} {
		cl := newCluster(8, 0)
		if _, err := neuro.RunSpark(w1, cl, nil, neuro.SparkOpts{Partitions: parts}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d partitions: %8.0fs virtual\n", parts, cl.Makespan().Seconds())
	}

	// --- Fig 15: Myria memory-management strategies under pressure. ---
	wa, err := astro.NewWorkload(6)
	if err != nil {
		log.Fatal(err)
	}
	// Probe the pipelined peak, then give the cluster 60% of it.
	probe := newCluster(8, 1<<50)
	if _, err := astro.RunMyria(wa, probe, nil, astro.MyriaOpts{}); err != nil {
		log.Fatal(err)
	}
	budget := probe.MaxHighWater() * 6 / 10
	fmt.Printf("\nMyria memory strategies (astronomy, 6 visits, %d MB/node budget):\n", budget>>20)
	for _, mode := range []myria.MemoryMode{myria.Pipelined, myria.Materialized, myria.MultiQuery} {
		cl := newCluster(8, budget)
		opts := astro.MyriaOpts{Mode: mode}
		if mode == myria.MultiQuery {
			opts.ChunkVisits = 2
		}
		if _, err := astro.RunMyria(wa, cl, nil, opts); err != nil {
			fmt.Printf("  %-12s FAILED: %v\n", mode, err)
			continue
		}
		fmt.Printf("  %-12s %8.0fs virtual\n", mode, cl.Makespan().Seconds())
	}
}

func newCluster(nodes int, mem int64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	if mem > 0 {
		cfg.MemPerNode = mem
	}
	return cluster.New(cfg)
}
