// Fault tolerance: demonstrate Spark's lineage-based recovery — the
// mechanism the RDD abstraction exists for (Zaharia et al., NSDI'12,
// reference [42] of the paper) — on the neuroscience workload's shape.
//
// The example caches a denoised RDD across an 8-node simulated cluster,
// kills two executors, and reruns an action: only the partitions the
// dead nodes hosted are recomputed from lineage, and the results are
// unchanged.
package main

import (
	"fmt"
	"log"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/spark"
	"imagebench/internal/vtime"
)

func main() {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 8
	cl := cluster.New(cfg)

	// Stage 64 synthetic image volumes (64 MB paper-scale each).
	store := objstore.New()
	for i := 0; i < 64; i++ {
		store.Put(fmt.Sprintf("vols/%03d", i), []byte{byte(i)}, 64<<20)
	}
	s := spark.NewSession(cl, store, nil)

	// volumes → denoise (an expensive narrow map) → cache.
	denoised := s.Objects("vols/", 64, func(o objstore.Object) []spark.Pair {
		return []spark.Pair{{Key: o.Key, Value: int(o.Data[0]), Size: o.ModelBytes}}
	}).Map(spark.UDF{Name: "denoise", Op: cost.Denoise, F: func(p spark.Pair) []spark.Pair {
		return []spark.Pair{{Key: p.Key, Value: p.Value.(int) * 2, Size: p.Size}}
	}}).Cache()

	sum := func(recs []spark.Pair) int {
		n := 0
		for _, r := range recs {
			n += r.Value.(int)
		}
		return n
	}

	recs, h1, err := denoised.Collect()
	if err != nil {
		log.Fatal(err)
	}
	t1 := vtime.Duration(h1.End)
	fmt.Printf("first action:  %d records, checksum %d, virtual time %v\n", len(recs), sum(recs), t1)

	// Kill two executors: their cached partitions are gone.
	for _, node := range []int{3, 5} {
		if err := s.KillExecutor(node); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("killed executors on nodes 3 and 5 (%d dead)\n", s.DeadExecutors())

	recs2, h2, err := denoised.Collect()
	if err != nil {
		log.Fatal(err)
	}
	t2 := vtime.Duration(h2.End)
	fmt.Printf("second action: %d records, checksum %d, virtual time %v\n", len(recs2), sum(recs2), t2)

	if sum(recs2) != sum(recs) || len(recs2) != len(recs) {
		log.Fatal("recovery changed the results")
	}
	fmt.Printf("recovery recomputed only the lost partitions: +%v over the cached re-read\n", t2-t1)

	// A third action runs entirely from the surviving + recovered cache.
	_, h3, err := denoised.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("third action:  virtual time +%v (all partitions cached again)\n", vtime.Duration(h3.End)-t2)
}
