// Neuroscience example: run the full dMRI pipeline (segmentation →
// denoising → diffusion-tensor fit) on every system that can execute it,
// over the same synthetic subjects and the same simulated 8-node cluster,
// and print a runtime comparison — a miniature of the paper's Figure 10c
// plus the partial SciDB/TensorFlow implementations.
package main

import (
	"fmt"
	"log"

	"imagebench/internal/cluster"
	"imagebench/internal/neuro"
)

func main() {
	const subjects = 4
	w, err := neuro.NewWorkload(subjects)
	if err != nil {
		log.Fatal(err)
	}
	newCluster := func() *cluster.Cluster {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 8
		return cluster.New(cfg)
	}

	fmt.Printf("neuroscience use case, %d subjects (%s paper-scale input), 8-node cluster\n\n",
		subjects, gb(w.InputModelBytes()))

	ref, err := neuro.Reference(w)
	if err != nil {
		log.Fatal(err)
	}

	type runResult struct {
		name  string
		notes string
		run   func(cl *cluster.Cluster) error
	}
	runs := []runResult{
		{"Spark", "full pipeline", func(cl *cluster.Cluster) error {
			res, err := neuro.RunSpark(w, cl, nil, neuro.SparkOpts{Partitions: cl.Workers(), CacheInput: true})
			if err == nil {
				checkAgainst(ref, res)
			}
			return err
		}},
		{"Myria", "full pipeline", func(cl *cluster.Cluster) error {
			res, err := neuro.RunMyria(w, cl, nil, neuro.MyriaOpts{})
			if err == nil {
				checkAgainst(ref, res)
			}
			return err
		}},
		{"Dask", "full pipeline", func(cl *cluster.Cluster) error {
			res, err := neuro.RunDask(w, cl, nil)
			if err == nil {
				checkAgainst(ref, res)
			}
			return err
		}},
		{"SciDB", "segmentation + stream() denoise only (paper Table 1)", func(cl *cluster.Cluster) error {
			_, err := neuro.RunSciDB(w, cl, nil, neuro.SciDBAio)
			return err
		}},
		{"TensorFlow", "simplified mask + unmasked denoise only (paper Table 1)", func(cl *cluster.Cluster) error {
			_, err := neuro.RunTF(w, cl, nil, neuro.TFOpts{})
			return err
		}},
	}
	fmt.Printf("%-12s %14s %10s   %s\n", "system", "virtual time", "tasks", "scope")
	for _, r := range runs {
		cl := newCluster()
		if err := r.run(cl); err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("%-12s %14v %10d   %s\n", r.name, cl.Makespan(), cl.Tasks(), r.notes)
	}
	fmt.Println("\nSpark/Myria/Dask outputs verified bit-identical to the single-node reference.")
}

func checkAgainst(ref, got *neuro.Result) {
	for s, r := range ref.Subjects {
		g, ok := got.Subjects[s]
		if !ok || g.FA == nil {
			log.Fatalf("missing subject %d in distributed result", s)
		}
		for i := range r.FA.Data {
			if r.FA.Data[i] != g.FA.Data[i] {
				log.Fatalf("subject %d FA mismatch at voxel %d", s, i)
			}
		}
	}
}

func gb(n int64) string { return fmt.Sprintf("%.1f GB", float64(n)/1e9) }
