// Trace: run the neuroscience pipeline on the Spark engine with cluster
// tracing enabled and export the simulated schedule as a Chrome
// trace-event file. Open the output in chrome://tracing or
// https://ui.perfetto.dev to see worker slots, NIC transfers, and disk
// operations per node — stage barriers and stragglers become visible.
//
// Usage:
//
//	go run ./examples/trace [-out trace.json]
package main

import (
	"flag"
	"fmt"
	"log"

	"imagebench/internal/cluster"
	"imagebench/internal/fsatomic"
	"imagebench/internal/neuro"
)

func main() {
	out := flag.String("out", "trace.json", "trace output file")
	flag.Parse()

	w, err := neuro.NewWorkload(2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cl := cluster.New(cfg)
	cl.EnableTracing()

	if _, err := neuro.RunSpark(w, cl, nil, neuro.SparkOpts{Partitions: cl.Workers()}); err != nil {
		log.Fatal(err)
	}

	f, err := fsatomic.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.WriteChromeTrace(f); err != nil {
		f.Abort()
		log.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		log.Fatal(err)
	}

	events := cl.TraceEvents()
	byKind := map[cluster.EventKind]int{}
	for _, ev := range events {
		byKind[ev.Kind]++
	}
	fmt.Printf("simulated %v of cluster time across %d nodes\n", cl.Makespan(), cl.Nodes())
	fmt.Printf("wrote %d trace events to %s:\n", len(events), *out)
	for _, k := range []cluster.EventKind{cluster.EventCompute, cluster.EventTransfer, cluster.EventBcast, cluster.EventDisk} {
		if byKind[k] > 0 {
			fmt.Printf("  %-9s %d\n", k, byKind[k])
		}
	}
	fmt.Println("open chrome://tracing and load the file to inspect the schedule")
}
