// Quickstart: generate one synthetic dMRI subject, run the neuroscience
// pipeline end-to-end on the Spark engine over a simulated 4-node
// cluster, and print the segmentation and FA statistics plus the
// simulated runtime.
package main

import (
	"fmt"
	"log"

	"imagebench/internal/cluster"
	"imagebench/internal/neuro"
)

func main() {
	// Stage one subject's data (NIfTI + per-volume .npy) in the
	// in-memory object store.
	w, err := neuro.NewWorkload(1)
	if err != nil {
		log.Fatal(err)
	}

	// A simulated 4-node cluster (8 worker slots per node).
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cl := cluster.New(cfg)

	// Run segmentation → denoising → diffusion-tensor fit on Spark.
	res, err := neuro.RunSpark(w, cl, nil, neuro.SparkOpts{Partitions: cl.Workers()})
	if err != nil {
		log.Fatal(err)
	}

	sr := res.Subjects[0]
	maskFrac := float64(sr.Mask.Summarize().NonZero) / float64(sr.Mask.Len())
	fa := sr.FA.Summarize()
	fmt.Printf("subject 0: brain mask covers %.0f%% of the volume\n", maskFrac*100)
	fmt.Printf("subject 0: FA map mean %.3f, max %.3f (anisotropic band present: %v)\n",
		fa.Mean, fa.Max, fa.Max > 0.4)
	fmt.Printf("simulated cluster time: %v over %d tasks (%.0f%% worker utilization)\n",
		cl.Makespan(), cl.Tasks(), cl.Utilization()*100)

	// Sanity: the distributed result matches the single-node reference.
	ref, err := neuro.Reference(w)
	if err != nil {
		log.Fatal(err)
	}
	diff := maxDiff(sr.FA.Data, ref.Subjects[0].FA.Data)
	fmt.Printf("max |FA - reference FA| = %g\n", diff)
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
