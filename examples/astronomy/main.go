// Astronomy example: run the abridged LSST pipeline (pre-processing →
// patch creation → co-addition → source detection) on Spark and Myria
// over synthetic survey visits, print the detected source catalog for the
// deepest patch, and compare the SciDB AQL co-addition against the
// UDF-internal iteration (the paper's Fig 12d contrast).
package main

import (
	"fmt"
	"log"
	"sort"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
)

func main() {
	const visits = 6
	w, err := astro.NewWorkload(visits)
	if err != nil {
		log.Fatal(err)
	}
	newCluster := func() *cluster.Cluster {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 8
		return cluster.New(cfg)
	}
	fmt.Printf("astronomy use case: %d visits (%.1f GB paper-scale input), %d true sky sources\n\n",
		visits, float64(w.InputModelBytes())/1e9, len(w.Truth))

	// End-to-end on the two systems that could run it (paper Fig 10d).
	var sparkRes *astro.Result
	for _, sys := range []string{"Spark", "Myria"} {
		cl := newCluster()
		var res *astro.Result
		var err error
		if sys == "Spark" {
			res, err = astro.RunSpark(w, cl, nil, astro.SparkOpts{Partitions: cl.Workers()})
			sparkRes = res
		} else {
			res, err = astro.RunMyria(w, cl, nil, astro.MyriaOpts{})
		}
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		total := 0
		for _, pr := range res.Patches {
			total += len(pr.Sources)
		}
		fmt.Printf("%-8s %12v virtual   %d patches, %d detected sources\n",
			sys, cl.Makespan(), len(res.Patches), total)
	}

	// Catalog of the patch with the most sources.
	var best *astro.PatchResult
	for _, pr := range sparkRes.Patches {
		if best == nil || len(pr.Sources) > len(best.Sources) {
			best = pr
		}
	}
	fmt.Printf("\ncatalog for %v (top 5 by flux):\n", best.Patch)
	srcs := append([]struct{}{}, nil...)
	_ = srcs
	top := best.Sources
	sort.Slice(top, func(i, j int) bool { return top[i].Flux > top[j].Flux })
	for i, s := range top {
		if i == 5 {
			break
		}
		fmt.Printf("  source %d: centroid (%.1f, %.1f), flux %.0f, %d px\n", i+1, s.X, s.Y, s.Flux, s.NPix)
	}

	// Step 3A across engines (paper Fig 12d in miniature).
	stacks, err := astro.BuildStacks(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nco-addition step only:")
	for _, sys := range []string{"Spark", "Myria", "SciDB", "SciDB-incremental"} {
		cl := newCluster()
		d, err := astro.CoaddStepTime(w, cl, nil, stacks, sys)
		if err != nil {
			log.Fatalf("coadd %s: %v", sys, err)
		}
		fmt.Printf("  %-18s %10.1fs virtual\n", sys, d.Seconds())
	}
}
