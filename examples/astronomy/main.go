// Astronomy example: run the abridged LSST pipeline (pre-processing →
// patch creation → co-addition → source detection) on the engines that
// run it end-to-end (Spark and Myria, from the registry), print the
// detected source catalog for the deepest patch, and compare the SciDB
// AQL co-addition against the UDF-internal iteration (the paper's
// Fig 12d contrast).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/engine"
)

func main() {
	const visits = 6
	w, err := astro.NewWorkload(visits)
	if err != nil {
		log.Fatal(err)
	}
	newCluster := func() *cluster.Cluster {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 8
		return cluster.New(cfg)
	}
	fmt.Printf("astronomy use case: %d visits (%.1f GB paper-scale input), %d true sky sources\n\n",
		visits, float64(w.InputModelBytes())/1e9, len(w.Truth))

	// End-to-end on the systems that could run it (paper Fig 10d) — the
	// registry supplies them in the paper's legend order.
	ctx := context.Background()
	for _, eng := range engine.Supporting(engine.CapAstroE2E) {
		cl := newCluster()
		if _, err := eng.RunAstro(ctx, w, cl, nil, engine.Opts{}); err != nil {
			log.Fatalf("%s: %v", eng.Name(), err)
		}
		fmt.Printf("%-8s %12v virtual\n", eng.Name(), cl.Makespan())
	}

	// Catalog of the patch with the most sources. Domain results
	// (decoded patches, source lists) stay behind the per-system entry
	// points, so rerun Spark's pipeline directly for them — virtual
	// time makes the rerun byte-identical to the timed one above.
	catCl := newCluster()
	sparkRes, err := astro.RunSpark(w, catCl, nil, astro.SparkOpts{Partitions: catCl.Workers()})
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, pr := range sparkRes.Patches {
		total += len(pr.Sources)
	}
	fmt.Printf("\nSpark detected %d sources across %d patches\n", total, len(sparkRes.Patches))
	var best *astro.PatchResult
	for _, pr := range sparkRes.Patches {
		if best == nil || len(pr.Sources) > len(best.Sources) {
			best = pr
		}
	}
	fmt.Printf("catalog for %v (top 5 by flux):\n", best.Patch)
	top := best.Sources
	sort.Slice(top, func(i, j int) bool { return top[i].Flux > top[j].Flux })
	for i, s := range top {
		if i == 5 {
			break
		}
		fmt.Printf("  source %d: centroid (%.1f, %.1f), flux %.0f, %d px\n", i+1, s.X, s.Y, s.Flux, s.NPix)
	}

	// Step 3A across engines (paper Fig 12d in miniature): rows come
	// from the registry, expanded through each engine's coadd variants
	// (SciDB contributes both its AQL and incremental iterations).
	stacks, err := astro.BuildStacks(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nco-addition step only:")
	for _, eng := range engine.Supporting(engine.CapAstroCoadd) {
		co, ok := eng.(engine.AstroCoadder)
		if !ok {
			log.Fatalf("engine %s claims astro-coadd but implements no coadd path", eng.Name())
		}
		for _, variant := range co.CoaddVariants() {
			cl := newCluster()
			d, err := co.AstroCoadd(w, cl, nil, stacks, variant)
			if err != nil {
				log.Fatalf("coadd %s: %v", variant, err)
			}
			fmt.Printf("  %-18s %10.1fs virtual\n", variant, d.Seconds())
		}
	}
}
