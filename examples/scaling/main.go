// Scaling example: reproduce the shape of the paper's Figure 10g —
// end-to-end neuroscience runtime as the cluster grows from 16 to 64
// nodes — on the engines that run the pipeline end-to-end (Dask, Myria,
// Spark, in the paper's legend order from the registry), and print
// per-system speedups. Myria's speedup is closest to ideal; Dask
// degrades at larger clusters (centralized scheduler + work-stealing
// replication).
package main

import (
	"context"
	"fmt"
	"log"

	"imagebench/internal/cluster"
	"imagebench/internal/engine"
	"imagebench/internal/neuro"
	"imagebench/internal/synth"
)

func main() {
	// Enough volumes to keep 64 nodes busy (see DESIGN.md §6 on scale).
	cfg := synth.DefaultNeuro(43)
	cfg.T, cfg.B0 = 48, 3
	w, err := neuro.NewWorkloadCfg(cfg)
	if err != nil {
		log.Fatal(err)
	}
	nodes := []int{16, 32, 48, 64}
	systems := engine.Supporting(engine.CapNeuroE2E)
	times := map[string][]float64{}

	fmt.Printf("neuroscience end-to-end, %d subjects (%.0f GB paper-scale), clusters of %v nodes\n\n",
		cfg.Subjects, float64(w.InputModelBytes())/1e9, nodes)
	fmt.Printf("%-8s", "system")
	for _, n := range nodes {
		fmt.Printf("%12d", n)
	}
	fmt.Printf("%12s\n", "speedup")
	for _, eng := range systems {
		sys := eng.Name()
		for _, n := range nodes {
			ccfg := cluster.DefaultConfig()
			ccfg.Nodes = n
			cl := cluster.New(ccfg)
			// CacheInput only matters to Spark; the others ignore it.
			_, err := eng.RunNeuro(context.Background(), w, cl, nil, engine.Opts{CacheInput: true})
			if err != nil {
				log.Fatalf("%s at %d nodes: %v", sys, n, err)
			}
			times[sys] = append(times[sys], cl.Makespan().Seconds())
		}
		fmt.Printf("%-8s", sys)
		for _, t := range times[sys] {
			fmt.Printf("%11.0fs", t)
		}
		fmt.Printf("%11.2fx\n", times[sys][0]/times[sys][len(nodes)-1])
	}
	fmt.Printf("\nideal speedup for %d→%d nodes: %.1fx\n", nodes[0], nodes[len(nodes)-1],
		float64(nodes[len(nodes)-1])/float64(nodes[0]))
}
