// Scaling example: reproduce the shape of the paper's Figure 10g —
// end-to-end neuroscience runtime as the cluster grows from 16 to 64
// nodes — on Dask, Myria, and Spark, and print per-system speedups.
// Myria's speedup is closest to ideal; Dask degrades at larger clusters
// (centralized scheduler + work-stealing replication).
package main

import (
	"fmt"
	"log"

	"imagebench/internal/cluster"
	"imagebench/internal/neuro"
	"imagebench/internal/synth"
)

func main() {
	// Enough volumes to keep 64 nodes busy (see DESIGN.md §6 on scale).
	cfg := synth.DefaultNeuro(43)
	cfg.T, cfg.B0 = 48, 3
	w, err := neuro.NewWorkloadCfg(cfg)
	if err != nil {
		log.Fatal(err)
	}
	nodes := []int{16, 32, 48, 64}
	systems := []string{"Dask", "Myria", "Spark"}
	times := map[string][]float64{}

	fmt.Printf("neuroscience end-to-end, %d subjects (%.0f GB paper-scale), clusters of %v nodes\n\n",
		cfg.Subjects, float64(w.InputModelBytes())/1e9, nodes)
	fmt.Printf("%-8s", "system")
	for _, n := range nodes {
		fmt.Printf("%12d", n)
	}
	fmt.Printf("%12s\n", "speedup")
	for _, sys := range systems {
		for _, n := range nodes {
			ccfg := cluster.DefaultConfig()
			ccfg.Nodes = n
			cl := cluster.New(ccfg)
			var err error
			switch sys {
			case "Dask":
				_, err = neuro.RunDask(w, cl, nil)
			case "Myria":
				_, err = neuro.RunMyria(w, cl, nil, neuro.MyriaOpts{})
			case "Spark":
				_, err = neuro.RunSpark(w, cl, nil, neuro.SparkOpts{Partitions: cl.Workers(), CacheInput: true})
			}
			if err != nil {
				log.Fatalf("%s at %d nodes: %v", sys, n, err)
			}
			times[sys] = append(times[sys], cl.Makespan().Seconds())
		}
		fmt.Printf("%-8s", sys)
		for _, t := range times[sys] {
			fmt.Printf("%11.0fs", t)
		}
		fmt.Printf("%11.2fx\n", times[sys][0]/times[sys][len(nodes)-1])
	}
	fmt.Printf("\nideal speedup for %d→%d nodes: %.1fx\n", nodes[0], nodes[len(nodes)-1],
		float64(nodes[len(nodes)-1])/float64(nodes[0]))
}
