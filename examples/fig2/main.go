// Fig2: reproduce the paper's Figure 2 — orthogonal slices of the mask
// (2a) and fractional-anisotropy (2b) volumes for a single subject —
// as PGM images written to disk.
//
// Usage:
//
//	go run ./examples/fig2 [-out fig2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"imagebench/internal/fsatomic"
	"imagebench/internal/neuro"
	"imagebench/internal/volume"
)

func main() {
	out := flag.String("out", "fig2", "output directory")
	flag.Parse()

	w, err := neuro.NewWorkload(1)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := neuro.Reference(w)
	if err != nil {
		log.Fatal(err)
	}
	sr := ref.Subjects[0]
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	for _, panel := range []struct {
		name string
		vol  *volume.V3
	}{
		{"mask", sr.Mask}, // Figure 2a
		{"fa", sr.FA},     // Figure 2b
	} {
		for _, cut := range []string{"axial", "coronal", "sagittal"} {
			img := slice(panel.vol, cut)
			path := filepath.Join(*out, fmt.Sprintf("%s-%s.pgm", panel.name, cut))
			if err := fsatomic.WriteFile(path, img); err != nil {
				log.Fatal(err)
			}
		}
	}
	fa := sr.FA.Summarize()
	fmt.Printf("wrote 6 orthogonal slices (mask + FA) to %s/\n", *out)
	fmt.Printf("FA: mean %.3f, max %.3f; mask covers %.0f%% of the volume\n",
		fa.Mean, fa.Max, 100*float64(sr.Mask.Summarize().NonZero)/float64(sr.Mask.Len()))
}

// slice renders the central orthogonal cut of a volume as an 8-bit PGM,
// normalized to the volume's maximum.
func slice(v *volume.V3, cut string) []byte {
	var w, h int
	var at func(i, j int) float64
	switch cut {
	case "axial": // fixed z
		z := v.NZ / 2
		w, h = v.NX, v.NY
		at = func(i, j int) float64 { return v.At(i, j, z) }
	case "coronal": // fixed y
		y := v.NY / 2
		w, h = v.NX, v.NZ
		at = func(i, j int) float64 { return v.At(i, y, j) }
	default: // sagittal: fixed x
		x := v.NX / 2
		w, h = v.NY, v.NZ
		at = func(i, j int) float64 { return v.At(x, i, j) }
	}
	var max float64
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			if at(i, j) > max {
				max = at(i, j)
			}
		}
	}
	if max == 0 {
		max = 1
	}
	out := []byte(fmt.Sprintf("P5\n%d %d\n255\n", w, h))
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			out = append(out, byte(255*at(i, j)/max))
		}
	}
	return out
}
