// MyriaL frontend: run the paper's Figure 7 denoising program — the
// actual MyriaL text, parsed and compiled onto the Myria engine — over a
// synthetic dMRI subject on a simulated 4-node cluster.
//
// The program joins the Images relation with the per-subject Mask and
// applies the registered Denoise Python UDF to every masked volume,
// exactly as the paper's Myria implementation does.
package main

import (
	"fmt"
	"log"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
	"imagebench/internal/myrial"
	"imagebench/internal/neuro"
	"imagebench/internal/npy"
	"imagebench/internal/objstore"
	"imagebench/internal/volume"
)

// program is the paper's Figure 7 MyriaL query (modulo the stale alias
// qualifiers inside the EMIT, which reference a table that is out of
// scope after the join).
const program = `
T1 = SCAN(Images);
T2 = SCAN(Mask);
Joined = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask
          FROM T1, T2
          WHERE T1.subjId = T2.subjId];
Denoised = [FROM Joined EMIT
            PYUDF(Denoise, img, mask) AS img, subjId, imgId];
STORE(Denoised, DenoisedImages);
`

func main() {
	// Synthetic subject staged in the in-memory object store.
	w, err := neuro.NewWorkload(1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cl := cluster.New(cfg)
	eng := myria.New(cl, w.Store, nil, myria.DefaultConfig())

	// Ingest the Images base table: one tuple per image volume, with the
	// serialized array in the img BLOB column.
	imgSchema := myrial.Schema{Key: []string{"subjId", "imgId"}, Cols: []string{"subjId", "imgId", "img"}}
	originals := make(map[int]*volume.V3)
	images, err := eng.Ingest("Images", "neuro/npy/", func(o objstore.Object) []myria.Tuple {
		var s, t int
		if _, err := fmt.Sscanf(o.Key, "neuro/npy/subj-%03d/vol-%03d.npy", &s, &t); err != nil {
			log.Fatalf("bad key %q: %v", o.Key, err)
		}
		v, err := npy.Decode(o.Data)
		if err != nil {
			log.Fatalf("decoding %s: %v", o.Key, err)
		}
		originals[t] = v
		row := myrial.Row{
			"subjId": {V: s},
			"imgId":  {V: t},
			"img":    {V: v, Size: o.ModelBytes},
		}
		return []myria.Tuple{imgSchema.TupleOf(row)}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Compute the mask with the reference segmentation (the paper's
	// Myria implementation runs it as a first query; here it seeds the
	// Mask relation directly).
	ref, err := neuro.Reference(w)
	if err != nil {
		log.Fatal(err)
	}
	mask := ref.Subjects[0].Mask
	maskSchema := myrial.Schema{Key: []string{"subjId"}, Cols: []string{"subjId", "mask"}}
	maskRow := myrial.Row{
		"subjId": {V: 0},
		"mask":   {V: mask, Size: mask.Bytes()},
	}
	q := eng.NewQuery()
	masks := eng.RelationFromTuples(q, "Mask", []myria.Tuple{maskSchema.TupleOf(maskRow)})
	if _, err := q.Finish(); err != nil {
		log.Fatal(err)
	}

	// Bind tables and the Denoise UDF, then run the program.
	env := myrial.NewEnv()
	env.DefineTable("Images", imgSchema, images)
	env.DefineTable("Mask", maskSchema, masks)
	env.DefineUDF("Denoise", cost.Denoise, func(args []myrial.Cell) []myrial.Cell {
		vol := args[0].V.(*volume.V3)
		m := args[1].V.(*volume.V3)
		den := neuro.Denoise(vol, m)
		return []myrial.Cell{{V: den, Size: den.Bytes()}}
	})

	fmt.Print("running MyriaL program:\n", program, "\n")
	res, err := myrial.Run(eng, program, env)
	if err != nil {
		log.Fatal(err)
	}

	rows := myrial.Rows(res.Stored["DenoisedImages"])
	fmt.Printf("denoised %d volumes for subject 0\n", len(rows))
	fmt.Printf("simulated cluster time: %v over %d tasks\n", cl.Makespan(), cl.Tasks())

	// Sanity: the MyriaL result matches denoising the original volumes
	// directly with the same mask.
	var worst float64
	for _, r := range rows {
		id := r["imgId"].V.(int)
		got := r["img"].V.(*volume.V3)
		want := neuro.Denoise(originals[id], mask)
		if d := volume.MaxAbsDiff(got, want); d > worst {
			worst = d
		}
	}
	fmt.Printf("max |MyriaL - direct| over all volumes = %g\n", worst)
}
