// Command imagebenchd is the experiment service daemon: a long-lived
// HTTP server that schedules paper-reproduction experiments on a
// bounded worker pool, deduplicates identical requests, and serves
// results from a content-addressed cache.
//
// Usage:
//
//	imagebenchd -addr :8080 -workers 8 -cache-dir /var/cache/imagebench
//
// API:
//
//	GET  /healthz              liveness probe
//	GET  /metrics              expvar-style counters (JSON)
//	GET  /v1/experiments       list registered experiments
//	POST /v1/jobs              {"experiments":["fig11"],"profile":"quick","wait":true}
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job's status
//	GET  /v1/results           list cached result keys
//	GET  /v1/results/{key}     cached table (JSON, or text via Accept: text/plain)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"imagebench/internal/results"
	"imagebench/internal/runner"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued jobs before submits are rejected")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (empty = in-memory only)")
	flag.Parse()

	cache, err := results.Open(*cacheDir)
	if err != nil {
		log.Fatalf("imagebenchd: %v", err)
	}
	sched := runner.New(runner.Options{Workers: *workers, QueueDepth: *queueDepth, Cache: cache})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(sched, cache),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		<-ctx.Done()
		log.Print("imagebenchd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	log.Printf("imagebenchd: listening on %s (workers=%d, cache=%s)",
		*addr, sched.Stats().Workers, cacheLabel(*cacheDir))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("imagebenchd: %v", err)
	}
	sched.Close()
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
