// Command imagebenchd is the experiment service daemon: a long-lived
// HTTP server that schedules paper-reproduction experiments on a
// bounded worker pool, deduplicates identical requests, serves results
// from a content-addressed cache, and runs parameter-grid sweeps with a
// crash-safe job journal — on restart, completed work rehydrates from
// the cache and unfinished work resubmits. With -debug-addr a second,
// operator-only listener serves net/http/pprof profiles.
//
// The service itself lives in internal/daemon, so the loadgen harness
// and the bench serve/... cases boot the exact same stack in-process;
// this command adds the flags and the timeout-guarded listeners.
//
// Usage:
//
//	imagebenchd -addr :8080 -workers 8 \
//	    -cache-dir /var/cache/imagebench \
//	    -journal /var/cache/imagebench.journal \
//	    -sweep-dir /var/cache/imagebench-sweeps
//
// API:
//
//	GET  /healthz              liveness probe
//	GET  /metrics              Prometheus text exposition (scrape target)
//	GET  /metrics.json         the same counters as JSON
//	GET  /v1/experiments       list registered experiments
//	POST /v1/jobs              {"experiments":["fig11"],"profile":"quick","wait":true}
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job's status (evicted jobs answer from their tombstone)
//	GET  /v1/results           list cached result keys
//	GET  /v1/results/{key}     cached table (JSON, or text via Accept: text/plain)
//	POST /v1/sweeps            {"experiments":["fig10*"],"profiles":["quick"],
//	                            "overrides":[{"clusterNodes":[4]}],"wait":false}
//	GET  /v1/sweeps            list sweeps (aggregate progress)
//	GET  /v1/sweeps/{id}       one sweep, with per-cell state
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"imagebench/internal/daemon"
	"imagebench/internal/obs"
)

func main() {
	def := daemon.DefaultTimeouts()
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued jobs before submits are rejected")
	maxJobs := flag.Int("max-jobs", 0, "retained job-index bound; oldest terminated jobs are evicted past it (0 = default 4096)")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (empty = in-memory only)")
	journal := flag.String("journal", "", "append-only job-journal file (empty = no journal)")
	sweepDir := flag.String("sweep-dir", "", "sweep-spec directory (empty = sweeps not persisted)")
	debugAddr := flag.String("debug-addr", "", "optional second listen address serving /debug/pprof (keep it private)")
	readTimeout := flag.Duration("read-timeout", def.Read, "max time to read a full request, body included")
	writeTimeout := flag.Duration("write-timeout", def.Write, "max time to write a full response; bounds wait=true handlers, raise it for full-profile waits")
	idleTimeout := flag.Duration("idle-timeout", def.Idle, "max keep-alive idle time between requests")
	flag.Parse()

	d, err := daemon.New(daemon.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		MaxJobs:    *maxJobs,
		CacheDir:   *cacheDir,
		Journal:    *journal,
		SweepDir:   *sweepDir,
	})
	if err != nil {
		log.Fatalf("imagebenchd: %v", err)
	}
	for _, warn := range d.Warnings {
		log.Printf("imagebenchd: warning: %s", warn)
	}
	if d.RecoveredJobs > 0 || d.RecoveredSweeps > 0 {
		log.Printf("imagebenchd: recovered %d pending job(s), re-adopted %d sweep(s)",
			d.RecoveredJobs, d.RecoveredSweeps)
	}

	// Every listener carries the full timeout set so slow or stalled
	// clients cannot pin connections; see daemon.Timeouts.
	timeouts := def
	timeouts.Read = *readTimeout
	timeouts.Write = *writeTimeout
	timeouts.Idle = *idleTimeout
	srv := daemon.NewHTTPServer(*addr, d.Handler, timeouts)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The pprof listener is opt-in and separate from the API address so
	// profiling endpoints are never exposed where the API is. Its write
	// timeout must cover ?seconds=N profile captures.
	if *debugAddr != "" {
		dbgTimeouts := daemon.DefaultTimeouts()
		dbgTimeouts.Write = 5 * time.Minute
		dbg := daemon.NewHTTPServer(*debugAddr, obs.DebugHandler(), dbgTimeouts)
		go func() {
			log.Printf("imagebenchd: pprof on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("imagebenchd: debug listener: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			dbg.Shutdown(shutCtx)
		}()
	}

	go func() {
		<-ctx.Done()
		log.Print("imagebenchd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	log.Printf("imagebenchd: listening on %s (workers=%d, cache=%s, timeouts r/w/i=%s/%s/%s)",
		*addr, d.Sched.Stats().Workers, cacheLabel(*cacheDir),
		timeouts.Read, timeouts.Write, timeouts.Idle)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("imagebenchd: %v", err)
	}
	d.Close()
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
