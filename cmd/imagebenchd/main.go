// Command imagebenchd is the experiment service daemon: a long-lived
// HTTP server that schedules paper-reproduction experiments on a
// bounded worker pool, deduplicates identical requests, serves results
// from a content-addressed cache, and runs parameter-grid sweeps with a
// crash-safe job journal — on restart, completed work rehydrates from
// the cache and unfinished work resubmits. With -debug-addr a second,
// operator-only listener serves net/http/pprof profiles.
//
// Usage:
//
//	imagebenchd -addr :8080 -workers 8 \
//	    -cache-dir /var/cache/imagebench \
//	    -journal /var/cache/imagebench.journal \
//	    -sweep-dir /var/cache/imagebench-sweeps
//
// API:
//
//	GET  /healthz              liveness probe
//	GET  /metrics              Prometheus text exposition (scrape target)
//	GET  /metrics.json         the same counters as JSON
//	GET  /v1/experiments       list registered experiments
//	POST /v1/jobs              {"experiments":["fig11"],"profile":"quick","wait":true}
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job's status
//	GET  /v1/results           list cached result keys
//	GET  /v1/results/{key}     cached table (JSON, or text via Accept: text/plain)
//	POST /v1/sweeps            {"experiments":["fig10*"],"profiles":["quick"],
//	                            "overrides":[{"clusterNodes":[4]},{"clusterNodes":[8]}],"wait":false}
//	GET  /v1/sweeps            list sweeps (aggregate progress)
//	GET  /v1/sweeps/{id}       one sweep, with per-cell state
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"imagebench/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 1024, "max queued jobs before submits are rejected")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (empty = in-memory only)")
	journal := flag.String("journal", "", "append-only job-journal file (empty = no journal)")
	sweepDir := flag.String("sweep-dir", "", "sweep-spec directory (empty = sweeps not persisted)")
	debugAddr := flag.String("debug-addr", "", "optional second listen address serving /debug/pprof (keep it private)")
	flag.Parse()

	d, err := newDaemon(daemonConfig{
		workers:    *workers,
		queueDepth: *queueDepth,
		cacheDir:   *cacheDir,
		journal:    *journal,
		sweepDir:   *sweepDir,
	})
	if err != nil {
		log.Fatalf("imagebenchd: %v", err)
	}
	for _, warn := range d.warnings {
		log.Printf("imagebenchd: warning: %s", warn)
	}
	if d.recoveredJobs > 0 || d.recoveredSweeps > 0 {
		log.Printf("imagebenchd: recovered %d pending job(s), re-adopted %d sweep(s)",
			d.recoveredJobs, d.recoveredSweeps)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           d.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The pprof listener is opt-in and separate from the API address so
	// profiling endpoints are never exposed where the API is.
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("imagebenchd: pprof on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("imagebenchd: debug listener: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			dbg.Shutdown(shutCtx)
		}()
	}

	go func() {
		<-ctx.Done()
		log.Print("imagebenchd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()

	log.Printf("imagebenchd: listening on %s (workers=%d, cache=%s)",
		*addr, d.sched.Stats().Workers, cacheLabel(*cacheDir))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("imagebenchd: %v", err)
	}
	d.Close()
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
