package main

import (
	"fmt"
	"net/http"

	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// daemonConfig is everything needed to stand up the service; main fills
// it from flags, tests fill it directly so restart behavior is testable
// over httptest against real dirs.
type daemonConfig struct {
	workers    int
	queueDepth int
	cacheDir   string // "" = memory-only result cache
	journal    string // "" = no job journal
	sweepDir   string // "" = sweeps are not persisted
}

// daemon bundles the service's long-lived state. Construction performs
// crash recovery: pending journaled jobs are resubmitted and persisted
// sweeps re-adopted, with completed cells rehydrating from the cache.
type daemon struct {
	cache   *results.Cache
	journal *runner.FileJournal
	sched   *runner.Scheduler
	sweeps  *sweep.Manager
	metrics *obs.Registry
	tracer  *obs.Tracer
	handler http.Handler

	recoveredJobs   int
	recoveredSweeps int
	warnings        []string
}

func newDaemon(cfg daemonConfig) (*daemon, error) {
	cache, err := results.Open(cfg.cacheDir)
	if err != nil {
		return nil, err
	}
	// The observability spine is always on: a registry for /metrics and
	// a tracer for job/sweep span trees. Neither perturbs the
	// simulations — spans record around them, never inside their timing.
	d := &daemon{cache: cache, metrics: obs.NewRegistry(), tracer: obs.NewTracer()}
	obs.RegisterGoMetrics(d.metrics)
	registerCacheMetrics(d.metrics, cache)

	opts := runner.Options{
		Workers: cfg.workers, QueueDepth: cfg.queueDepth, Cache: cache,
		Tracer: d.tracer, Metrics: d.metrics,
	}
	if cfg.journal != "" && cfg.cacheDir == "" {
		// The journal retires a job on OpDone because its result is
		// rereadable from the disk cache; with a memory-only cache that
		// premise is false and completed results vanish on restart.
		d.warnings = append(d.warnings,
			"-journal without -cache-dir: completed results will not survive a restart (only pending jobs recover)")
	}
	if cfg.journal != "" {
		// Compact before opening for append: completed history is
		// dropped (the cache holds those results), so the journal stays
		// proportional to pending work instead of total traffic. Must
		// happen before OpenJournal — compaction renames the file.
		if _, err := runner.CompactJournal(cfg.journal); err != nil {
			d.warnings = append(d.warnings, fmt.Sprintf("journal compaction: %v", err))
		}
		j, err := runner.OpenJournal(cfg.journal)
		if err != nil {
			return nil, err
		}
		d.journal = j
		opts.Journal = j
	}
	d.sched = runner.New(opts)

	// Recovery is best-effort: a journal resubmission that no longer
	// resolves (an experiment renamed between versions) or a stale sweep
	// spec must not keep the daemon from serving fresh traffic.
	if cfg.journal != "" {
		n, err := runner.Recover(cfg.journal, d.sched)
		d.recoveredJobs = n
		if err != nil {
			d.warnings = append(d.warnings, fmt.Sprintf("journal recovery: %v", err))
		}
	}
	mgr, err := sweep.NewManager(d.sched, cache, cfg.sweepDir)
	if err != nil {
		d.Close()
		return nil, err
	}
	d.sweeps = mgr
	mgr.RegisterMetrics(d.metrics)
	n, err := mgr.Recover()
	d.recoveredSweeps = n
	if err != nil {
		d.warnings = append(d.warnings, fmt.Sprintf("sweep recovery: %v", err))
	}

	d.handler = newServer(d.sched, d.cache, d.sweeps, d.metrics)
	return d, nil
}

// registerCacheMetrics exposes the result cache's traffic counters,
// hits split by serving layer (the in-memory map vs a disk
// read-through). The cache keeps its own atomics; the registry samples
// them at scrape time.
func registerCacheMetrics(m *obs.Registry, cache *results.Cache) {
	hits := m.NewCounterVec("imagebench_cache_hits_total",
		"Result-cache hits, by the layer that served the entry.", "layer")
	hits.WithFunc(func() float64 { return float64(cache.Stats().MemHits) }, "memory")
	hits.WithFunc(func() float64 { return float64(cache.Stats().DiskHits) }, "disk")
	m.NewCounterFunc("imagebench_cache_misses_total",
		"Result-cache misses.",
		func() float64 { return float64(cache.Stats().Misses) })
	m.NewGaugeFunc("imagebench_cache_entries",
		"Entries in the result cache (memory and disk union).",
		func() float64 { return float64(cache.Stats().Entries) })
}

// Close drains the scheduler, then closes the journal — worker
// completion records are still being appended until Close returns.
func (d *daemon) Close() {
	d.sched.Close()
	if d.journal != nil {
		d.journal.Close()
	}
}
