// Command loccount regenerates the repository's Table 1 analogue: lines
// of Go per use case per system, counted from the per-engine pipeline
// implementation files (comments and blanks excluded).
//
// Usage:
//
//	loccount            # print the table
package main

import (
	"context"
	"fmt"
	"os"

	"imagebench/internal/core"
)

func main() {
	e, err := core.Lookup("table1")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loccount:", err)
		os.Exit(1)
	}
	tab, err := e.Run(context.Background(), core.Quick())
	if err != nil {
		fmt.Fprintln(os.Stderr, "loccount:", err)
		os.Exit(1)
	}
	fmt.Print(tab.Render())
}
