// Command datagen writes the synthetic datasets to a directory as the
// real files the pipelines consume: NIfTI-1 subjects and per-volume .npy
// stagings for the neuroscience use case, FITS sensor exposures for the
// astronomy use case. It is the offline stand-in for downloading the HCP
// and HiTS releases.
//
// With -gz, subject NIfTI files are additionally written as .nii.gz (the
// form the HCP actually distributes, Section 3.1.1). With -catalog, the
// reference pipeline runs over the astronomy data and the detected
// sources are written as a FITS BINTABLE catalog per patch.
//
// Usage:
//
//	datagen -out ./data -subjects 4 -visits 4 -gz -catalog
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"imagebench/internal/astro"
	"imagebench/internal/fits"
	"imagebench/internal/fsatomic"
	"imagebench/internal/nifti"
	"imagebench/internal/objstore"
	"imagebench/internal/synth"
)

func main() {
	out := flag.String("out", "data", "output directory")
	subjects := flag.Int("subjects", 2, "number of dMRI subjects")
	visits := flag.Int("visits", 2, "number of survey visits")
	seed := flag.Int64("seed", 1, "generator seed")
	gz := flag.Bool("gz", false, "also write subjects as .nii.gz")
	catalog := flag.Bool("catalog", false, "run the reference astronomy pipeline and write FITS source catalogs")
	flag.Parse()

	store := objstore.New()
	ncfg := synth.DefaultNeuro(*subjects)
	ncfg.Seed = *seed
	if _, err := synth.GenNeuro(store, ncfg); err != nil {
		fatal(err)
	}
	acfg := synth.DefaultAstro(*visits)
	acfg.Seed = *seed
	truth, err := synth.GenAstro(store, acfg)
	if err != nil {
		fatal(err)
	}

	var files, bytes int64
	write := func(rel string, data []byte) {
		path := filepath.Join(*out, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		if err := fsatomic.WriteFile(path, data); err != nil {
			fatal(err)
		}
		files++
		bytes += int64(len(data))
	}

	for _, key := range store.List("") {
		obj, err := store.Get(key)
		if err != nil {
			fatal(err)
		}
		write(key, obj.Data)
		if *gz && strings.HasSuffix(key, ".nii") {
			write(key+".gz", nifti.EncodeGz(obj.Data))
		}
	}

	nCatalogs := 0
	if *catalog {
		w, err := astro.NewWorkloadCfg(acfg)
		if err != nil {
			fatal(err)
		}
		ref, err := astro.Reference(w)
		if err != nil {
			fatal(err)
		}
		for p, pr := range ref.Patches {
			tbl := fits.SourceCatalog(pr.Sources)
			data, err := fits.EncodeTable(tbl)
			if err != nil {
				fatal(err)
			}
			write(fmt.Sprintf("astro/catalog/patch-%d-%d.fits", p.PX, p.PY), data)
			nCatalogs++
		}
	}

	fmt.Printf("wrote %d files (%.1f MB) under %s\n", files, float64(bytes)/1e6, *out)
	fmt.Printf("neuroscience: %d subjects (%d volumes each); astronomy: %d visits (%d sensors each, %d true sources)\n",
		*subjects, ncfg.T, *visits, acfg.Sensors, len(truth))
	if *catalog {
		fmt.Printf("source catalogs: %d patches (FITS BINTABLE)\n", nCatalogs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
