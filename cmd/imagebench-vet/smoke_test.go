package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolSmoke proves the whole chain the CI gate relies on — build
// the tool, hand it to `go vet -vettool=...`, have the go command drive
// it through the unit-checker protocol — by pointing it at a synthetic
// module seeded with exactly one violation per analyzer and requiring
// all six diagnostics to come back.
func TestVettoolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short")
	}
	tmp := t.TempDir()

	tool := filepath.Join(tmp, "imagebench-vet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build tool: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "vetsmoke")
	writeTree(t, mod, map[string]string{
		"go.mod": "module vetsmoke\n\ngo 1.24\n",

		// Stubs carrying the path suffixes and type names the pooling
		// and tracing analyzers key on.
		"internal/volume/volume.go": `package volume

type V3 struct{ n int }

type Arena struct{}

func (*Arena) Get(nx, ny, nz int) *V3 { return &V3{nx * ny * nz} }
func (*Arena) Put(v *V3)              {}
`,
		"internal/obs/obs.go": `package obs

import "context"

type Span struct{}

func (*Span) End() {}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
`,

		// One seeded violation per analyzer.
		"internal/dispatch/dispatch.go": `package dispatch

func Pick(sys string) int {
	switch sys { // enginedispatch
	case "Spark":
		return 1
	case "Myria":
		return 2
	}
	return 0
}
`,
		"internal/store/store.go": `package store

import "os"

func Save(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // atomicwrite
}
`,
		"internal/pool/pool.go": `package pool

import "vetsmoke/internal/volume"

func Leak(a *volume.Arena) {
	a.Get(1, 1, 1) // releasepair
}
`,
		"internal/trace/trace.go": `package trace

import (
	"context"

	"vetsmoke/internal/obs"
)

func Step(ctx context.Context) {
	obs.StartSpan(ctx, "step") // spanend
}
`,
		"internal/cluster/clock.go": `package cluster

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() // walldeterminism
}
`,
		"internal/daemon/handler.go": `package daemon

import (
	"encoding/json"
	"io"
)

func Emit(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // droppederr
}
`,
	})

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a module seeded with violations; output:\n%s", out)
	}

	got := string(out)
	for _, want := range []struct{ analyzer, fragment string }{
		{"enginedispatch", `switch over system-name variable "sys"`},
		{"atomicwrite", "os.WriteFile bypasses crash-safe artifact writes"},
		{"releasepair", "result of Arena.Get"},
		{"spanend", "result of StartSpan is discarded"},
		{"walldeterminism", "time.Now in a deterministic package"},
		{"droppederr", "Encode is silently dropped"},
	} {
		if !strings.Contains(got, want.fragment) {
			t.Errorf("%s diagnostic missing: want substring %q", want.analyzer, want.fragment)
		}
	}
	if t.Failed() {
		t.Logf("go vet output:\n%s", got)
	}
}

func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
