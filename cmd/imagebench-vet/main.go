// Imagebench-vet is the repository's project-invariant checker: the
// analyzer suite from internal/analysis/suite packaged as a vet tool.
//
// CI (and anyone locally) runs it through the go command:
//
//	go build -o /tmp/imagebench-vet ./cmd/imagebench-vet
//	go vet -vettool=/tmp/imagebench-vet ./...
//
// Invoking the binary with package patterns does the same re-exec
// internally: `imagebench-vet ./...`.
package main

import (
	"imagebench/internal/analysis/suite"
	"imagebench/internal/analysis/unit"
)

func main() {
	unit.Main(suite.All()...)
}
