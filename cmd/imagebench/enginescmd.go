package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"imagebench/internal/engine"
)

// enginesMain implements `imagebench engines`: list the registered
// system drivers with their capability sets and recovery kinds — the
// CLI view of the daemon's GET /v1/engines.
func enginesMain(args []string) int {
	fs := flag.NewFlagSet("imagebench engines", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the engine list as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: imagebench engines [-json]\n\n"+
			"Lists the registered engines, the comparisons each participates in\n"+
			"(its capability set), and its fault-recovery mechanism. Engine names\n"+
			"are what `imagebench -systems` and `imagebench sweep -systems` accept.\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	rows := engine.Describe()

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench engines:", err)
			return 1
		}
		return 0
	}
	fmt.Printf("%-12s %-20s %s\n", "ENGINE", "RECOVERY", "CAPABILITIES")
	for _, r := range rows {
		fmt.Printf("%-12s %-20s %s\n", r.Name, r.Recovery, strings.Join(r.Capabilities, ", "))
	}
	return 0
}
