package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"imagebench/internal/bench"
	"imagebench/internal/cluster"
	"imagebench/internal/core"
	"imagebench/internal/fsatomic"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// sweepMain implements `imagebench sweep`: expand a parameter grid,
// run it on the worker pool, print a live grid summary, and optionally
// write one combined JSON artifact with every cell's table.
func sweepMain(args []string) {
	fs := flag.NewFlagSet("imagebench sweep", flag.ExitOnError)
	profiles := fs.String("profiles", "quick", "comma-separated profile names to sweep over")
	nodes := fs.String("nodes", "", "comma-separated cluster sizes; each becomes one grid axis point (e.g. 4,8,16)")
	killAt := fs.String("kill-at", "", "comma-separated fault points \"node@time\" for the ft* experiments; each becomes one grid axis point\n"+
		"sweeping baseline vs that kill (time is a % of each system's fault-free makespan, or a duration;\n"+
		"join simultaneous kills with '+', e.g. \"1@30%,1@30%+2@55%,2@10s\")")
	systemsAxis := fs.String("systems", "", "comma-separated engine names; each becomes one grid axis point restricting\n"+
		"experiments to that engine (join engines within one point with '+', e.g. \"Spark,Myria,Spark+Myria\");\n"+
		"cells whose experiment has no allowed engine show as n/a, not errors")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "result-cache directory (empty = no cross-run caching)")
	out := fs.String("out", "", "write the combined sweep artifact (JSON) to this file, streamed cell by cell")
	interval := fs.Duration("interval", 500*time.Millisecond, "live grid refresh interval")
	quiet := fs.Bool("quiet", false, "suppress the live grid; print only the final summary")
	memStats := fs.Bool("mem-stats", false, "sample the heap during the sweep and print peak usage at the end")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: imagebench sweep [flags] <experiment-id-or-glob>...\n\n"+
			"Runs every experiment × profile × override combination as one batch,\n"+
			"deduplicated and cached. Examples:\n\n"+
			"  imagebench sweep -profiles quick -nodes 4,8 -out sweep.json 'fig10*' fig11\n"+
			"  imagebench sweep -kill-at \"1@30%%,1@30%%+2@55%%\" -out faults.json 'ft*'\n"+
			"  imagebench sweep -systems Spark,Myria,Dask -out engines.json fig10c fig12a\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}

	spec := sweep.Spec{Experiments: fs.Args()}
	for _, name := range strings.Split(*profiles, ",") {
		spec.Profiles = append(spec.Profiles, strings.TrimSpace(name))
	}
	if *nodes != "" {
		for _, field := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				fmt.Fprintf(os.Stderr, "imagebench sweep: bad -nodes value %q\n", field)
				os.Exit(2)
			}
			spec.Overrides = append(spec.Overrides, core.Overrides{ClusterNodes: []int{n}})
		}
	}
	if *killAt != "" {
		for _, field := range strings.Split(*killAt, ",") {
			scenario, err := killScenario(strings.TrimSpace(field))
			if err != nil {
				fmt.Fprintf(os.Stderr, "imagebench sweep: bad -kill-at value %q: %v\n", field, err)
				os.Exit(2)
			}
			// Each kill point is one axis point comparing the fault-free
			// baseline against that scenario.
			spec.Overrides = append(spec.Overrides, core.Overrides{Failures: []string{"baseline", scenario}})
		}
	}
	if *systemsAxis != "" {
		for _, field := range strings.Split(*systemsAxis, ",") {
			var names []string
			for _, name := range strings.Split(strings.TrimSpace(field), "+") {
				names = append(names, strings.TrimSpace(name))
			}
			// Validation happens in Overrides.Validate at submit time; an
			// unknown engine name fails the whole sweep up front.
			spec.Overrides = append(spec.Overrides, core.Overrides{Systems: names})
		}
	}

	var cache *results.Cache
	var err error
	if *cacheDir != "" {
		if cache, err = results.Open(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench sweep:", err)
			os.Exit(1)
		}
	}
	sched := runner.New(runner.Options{Workers: *parallel, Cache: cache})
	defer sched.Close()
	mgr, err := sweep.NewManager(sched, cache, "", time.Now)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imagebench sweep:", err)
		os.Exit(1)
	}
	var sampler *bench.HeapSampler
	if *memStats {
		sampler = bench.StartHeapSampler(0)
	}
	s, _, err := mgr.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imagebench sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("sweep %s: %d cells\n", s.ID, len(s.Cells))

	// The artifact streams while the sweep runs: each cell is appended
	// (and its retained table released) the moment it finishes, so the
	// process holds O(workers) tables no matter how many cells the grid
	// has. The bytes land in a temp file and rename into place on
	// Commit, so a crash mid-sweep never leaves a torn artifact.
	var artFile *fsatomic.File
	artDone := make(chan error, 1)
	if *out != "" {
		artFile, err = fsatomic.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imagebench sweep:", err)
			os.Exit(1)
		}
		defer artFile.Abort()
		go func() {
			bw := bufio.NewWriter(artFile)
			_, err := s.StreamArtifact(context.Background(), bw, cache)
			if err == nil {
				err = bw.Flush()
			}
			artDone <- err
		}()
	}

	if *quiet {
		// No grid wanted: block on completion instead of polling.
		if err := s.Wait(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench sweep:", err)
			os.Exit(1)
		}
	} else {
		// Live grid: re-render whenever the picture changes until every
		// cell is terminal. Each refresh prints a fresh grid (no ANSI
		// tricks), so the output also reads sensibly when piped to a file.
		last := ""
		for {
			info := s.Info(true)
			if g := renderGrid(s, info); g != last {
				fmt.Printf("%s%d/%d done, %d running, %d queued, %d failed, %d n/a\n\n",
					g, info.Done, info.Total, info.Running, info.Queued, info.Failed, info.Unsupported)
				last = g
			}
			if info.Finished() {
				break
			}
			time.Sleep(*interval)
		}
	}
	final := s.Info(true)
	if *quiet {
		fmt.Print(renderGrid(s, final))
	}
	fmt.Printf("sweep %s finished: %d ok (%d from cache), %d failed, %d n/a\n",
		s.ID, final.Done, final.Hits, final.Failed, final.Unsupported)

	if *out != "" {
		if err := <-artDone; err != nil {
			fmt.Fprintln(os.Stderr, "imagebench sweep:", err)
			os.Exit(1)
		}
		if err := artFile.Commit(); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if sampler != nil {
		peak, delta := sampler.Stop()
		fmt.Printf("peak heap: %d bytes (%d above start)\n", peak, delta)
	}
	if final.Failed > 0 {
		for _, c := range final.Cells {
			if c.Status == runner.StatusFailed && !c.Unsupported {
				fmt.Fprintf(os.Stderr, "imagebench sweep: %s/%s failed: %s\n", c.Experiment, c.Profile, c.Error)
			}
		}
		os.Exit(1)
	}
}

// killScenario turns a -kill-at point ("1@30%" or "1@30%+2@55%") into a
// canonical fault-scenario string ("kill:1@30%+kill:2@55%") and
// validates it through the cluster parser.
func killScenario(field string) (string, error) {
	parts := strings.Split(field, "+")
	for i, p := range parts {
		parts[i] = "kill:" + strings.TrimSpace(p)
	}
	scenario := strings.Join(parts, "+")
	if _, err := cluster.ParseScenario(scenario); err != nil {
		return "", err
	}
	return scenario, nil
}

// renderGrid draws the experiment × profile grid with one status mark
// per cell: "." queued, ">" running, "ok" done, "hit" done-from-cache,
// "ERR" failed, "n/a" not applicable under the cell's engine filter,
// "-" not part of the grid.
func renderGrid(s *sweep.Sweep, info sweep.Info) string {
	marks := make(map[string]string, len(info.Cells))
	for _, ci := range info.Cells {
		marks[ci.Experiment+"\x00"+ci.Profile] = cellMark(ci)
	}
	rows, cols := s.GridLabels()
	w := 12
	for _, r := range rows {
		if len(r)+2 > w {
			w = len(r) + 2
		}
	}
	cw := 5
	for _, c := range cols {
		if len(c)+2 > cw {
			cw = len(c) + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", w, "")
	for _, c := range cols {
		fmt.Fprintf(&b, "%*s", cw, c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s", w, r)
		for _, cn := range cols {
			mark, ok := marks[r+"\x00"+cn]
			if !ok {
				mark = "-"
			}
			fmt.Fprintf(&b, "%*s", cw, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func cellMark(ci sweep.CellInfo) string {
	switch ci.Status {
	case runner.StatusDone:
		if ci.CacheHit {
			return "hit"
		}
		return "ok"
	case runner.StatusFailed:
		if ci.Unsupported {
			return "n/a"
		}
		return "ERR"
	case runner.StatusRunning:
		return ">"
	default:
		return "."
	}
}
