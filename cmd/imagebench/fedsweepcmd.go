package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/daemon"
	"imagebench/internal/fed"
	"imagebench/internal/fsatomic"
	"imagebench/internal/obs"
	"imagebench/internal/sweep"
)

// fedsweepMain implements `imagebench fedsweep`: expand a parameter
// grid and run it federated across a set of imagebenchd workers, with
// work stealing, failover, a crash-safe assignment journal, and a
// combined artifact byte-identical to a single-node run.
func fedsweepMain(args []string) {
	fs := flag.NewFlagSet("imagebench fedsweep", flag.ExitOnError)
	workersFlag := fs.String("workers", "", "comma-separated base URLs of the imagebenchd workers (required),\ne.g. http://a:8080,http://b:8080")
	perWorker := fs.Int("per-worker", 0, "concurrent cells in flight per worker (0 = 2)")
	journal := fs.String("journal", "", "assignment-journal path; a restarted coordinator with the same journal\nand spec resubmits only unfinished cells")
	out := fs.String("out", "", "write the combined sweep artifact (JSON) to this file")
	serve := fs.String("serve", "", "also serve the coordinator's observation API (GET /v1/sweeps/{id},\n/metrics, /healthz) on this address, e.g. :8090")
	profiles := fs.String("profiles", "quick", "comma-separated profile names to sweep over")
	nodes := fs.String("nodes", "", "comma-separated cluster sizes; each becomes one grid axis point (e.g. 4,8,16)")
	interval := fs.Duration("interval", time.Second, "progress-line refresh interval")
	quiet := fs.Bool("quiet", false, "suppress progress lines; print only the final summary")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: imagebench fedsweep -workers <url,...> [flags] <experiment-id-or-glob>...\n\n"+
			"Partitions the sweep grid across the workers, steals work back from\n"+
			"stragglers, reassigns cells when a worker dies, and replicates every\n"+
			"finished cell to every worker. Examples:\n\n"+
			"  imagebench fedsweep -workers http://a:8080,http://b:8080 -nodes 4,8 -out sweep.json 'fig10*'\n"+
			"  imagebench fedsweep -workers http://a:8080 -journal fed.jsonl -serve :8090 all\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 || *workersFlag == "" {
		fs.Usage()
		os.Exit(2)
	}

	spec := sweep.Spec{Experiments: fs.Args()}
	for _, name := range strings.Split(*profiles, ",") {
		spec.Profiles = append(spec.Profiles, strings.TrimSpace(name))
	}
	if *nodes != "" {
		for _, field := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				fmt.Fprintf(os.Stderr, "imagebench fedsweep: bad -nodes value %q\n", field)
				os.Exit(2)
			}
			spec.Overrides = append(spec.Overrides, core.Overrides{ClusterNodes: []int{n}})
		}
	}

	reg := obs.NewRegistry()
	coord, err := fed.New(fed.Config{
		Workers:     splitList(*workersFlag),
		PerWorker:   *perWorker,
		JournalPath: *journal,
		Metrics:     obs.NewFedMetrics(reg),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "imagebench fedsweep:", err)
		os.Exit(2)
	}
	defer coord.Close()

	if *serve != "" {
		srv := daemon.NewHTTPServer(*serve, coord.Handler(reg), daemon.DefaultTimeouts())
		go func() {
			if err := srv.ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "imagebench fedsweep: serve:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("coordinator API on %s\n", *serve)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	progressDone := make(chan struct{})
	if !*quiet {
		go func() {
			defer close(progressDone)
			last := ""
			for {
				info, ok := coord.SweepInfo(false)
				if ok {
					line := fmt.Sprintf("%d/%d done (%d cached), %d running, %d queued, %d failed",
						info.Done, info.Total, info.Hits, info.Running, info.Queued, info.Failed)
					if line != last {
						fmt.Println(line)
						last = line
					}
					if info.Finished() {
						return
					}
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(*interval):
				}
			}
		}()
	} else {
		close(progressDone)
	}

	res, err := coord.Run(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imagebench fedsweep:", err)
		os.Exit(1)
	}
	<-progressDone

	info, _ := coord.SweepInfo(false)
	fmt.Printf("sweep %s finished: %d ok (%d resumed from journal), %d failed\n",
		res.SweepID, len(res.Entries), info.Hits, len(res.Failed))

	if *out != "" {
		artFile, err := fsatomic.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imagebench fedsweep:", err)
			os.Exit(1)
		}
		defer artFile.Abort()
		bw := bufio.NewWriter(artFile)
		err = res.WriteArtifact(bw)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "imagebench fedsweep:", err)
			os.Exit(1)
		}
		if err := artFile.Commit(); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench fedsweep:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if len(res.Failed) > 0 {
		for key, msg := range res.Failed {
			fmt.Fprintf(os.Stderr, "imagebench fedsweep: cell %.12s failed: %s\n", key, msg)
		}
		os.Exit(1)
	}
}
