package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/daemon"
	"imagebench/internal/loadgen"
)

// loadgenMain implements `imagebench loadgen`: drive a daemon with a
// mixed, Zipf-skewed request load and report per-class throughput and
// latency quantiles. It returns the process exit code so tests can
// drive it without exec'ing.
func loadgenMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imagebench loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the daemon under load")
	agents := fs.Int("agents", 32, "concurrent client goroutines")
	duration := fs.Duration("duration", 10*time.Second, "length of a timed run (ignored with -requests)")
	requests := fs.Int("requests", 0, "per-agent request count; closed-loop, deterministic for a fixed -seed")
	seed := fs.Int64("seed", 1, "base RNG seed (agent i draws from seed+i)")
	zipf := fs.Float64("zipf", 1.01, "Zipf skew exponent over the experiment list, > 1; higher = hotter keys")
	mixFlag := fs.String("mix", loadgen.DefaultMix().String(), "request-class weights submit/result/jobpoll/sweeppoll, with an\noptional fifth fedpoll weight polling a federation coordinator (needs -fed-url)")
	fedURL := fs.String("fed-url", "", "federation coordinator base URL for the fedpoll class (see `imagebench fedsweep -serve`)")
	fedSweep := fs.String("fed-sweep", "", "sweep ID for fedpoll's GET /v1/sweeps/{id}; empty polls the coordinator's sweep list")
	experiments := fs.String("experiments", "fig10*,table1", "comma-separated experiment IDs or globs to draw from")
	profile := fs.String("profile", "quick", "profile for submissions and result-key derivation")
	out := fs.String("out", "", "write the JSON summary (schema-versioned, atomic) to this file")
	deterministic := fs.Bool("deterministic", false,
		"boot a fresh in-process daemon on a loopback port and load that instead of -addr;\nwith -requests this makes every reported count a pure function of -seed")
	workers := fs.Int("workers", 0, "worker-pool size for the -deterministic daemon (0 = GOMAXPROCS)")
	failOn5xx := fs.Bool("fail-on-5xx", false, "exit nonzero if any request got a 5xx response or a transport error")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: imagebench loadgen [flags]\n\n"+
			"Fires -agents concurrent clients at a daemon with a weighted mix of job\n"+
			"submissions, result fetches, job polls, and sweep polls. Experiment choice\n"+
			"is Zipf(-zipf)-skewed, so hot-key runs stress dedup and the result cache.\n"+
			"Prints TPS and p50/p95/p99 per request class plus the daemon's reuse\n"+
			"accounting. Examples:\n\n"+
			"  imagebench loadgen -agents 32 -duration 10s -addr http://localhost:8080\n"+
			"  imagebench loadgen -deterministic -requests 50 -seed 7 -zipf 2.5\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "imagebench loadgen: unexpected arguments %v (experiments go in -experiments)\n", fs.Args())
		return 2
	}

	ids, err := core.ExpandIDs(splitList(*experiments))
	if err != nil {
		fmt.Fprintf(stderr, "imagebench loadgen: %v\n", err)
		return 2
	}
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(stderr, "imagebench loadgen: %v\n", err)
		return 2
	}

	cfg := loadgen.Config{
		BaseURL:     *addr,
		Agents:      *agents,
		Seed:        *seed,
		ZipfS:       *zipf,
		Experiments: ids,
		Profile:     *profile,
		Mix:         mix,
		FedURL:      *fedURL,
		FedSweepID:  *fedSweep,
	}
	if *requests > 0 {
		cfg.Requests = *requests
	} else {
		cfg.Duration = *duration
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *deterministic {
		d, err := daemon.StartLocal(daemon.Config{Workers: *workers})
		if err != nil {
			fmt.Fprintf(stderr, "imagebench loadgen: %v\n", err)
			return 1
		}
		defer d.Stop()
		cfg.BaseURL = d.BaseURL
		fmt.Fprintf(stdout, "loadgen: in-process daemon at %s\n", d.BaseURL)
	}

	sum, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "imagebench loadgen: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, sum.Render())
	if *out != "" {
		if err := loadgen.WriteSummary(*out, sum); err != nil {
			fmt.Fprintf(stderr, "imagebench loadgen: write summary: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "summary written to %s\n", *out)
	}
	if *failOn5xx {
		var bad int64
		for _, cs := range sum.Classes {
			bad += cs.Errors5xx + cs.TransportErrors
		}
		if bad > 0 {
			fmt.Fprintf(stderr, "imagebench loadgen: %d failed request(s) with -fail-on-5xx\n", bad)
			return 1
		}
	}
	return 0
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
