package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imagebench/internal/bench"
)

// runBench drives the bench subcommand exactly as main would and
// returns (exit code, stdout, stderr).
func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := benchMain(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestBenchCommandRegressionGate covers the full CLI loop on one cheap
// kernel case: a self-baseline passes and exits 0, an injected
// synthetic slowdown (a baseline claiming the case used to run 1000x
// faster with fewer allocations) exits nonzero.
func TestBenchCommandRegressionGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_base.json")
	out := filepath.Join(dir, "BENCH_out.json")

	// Record the baseline.
	code, stdout, stderr := runBench(t, "-reps", "1", "-out", baseline, "kernel/nlmeans3/seq")
	if code != 0 {
		t.Fatalf("baseline run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	// Same code vs its own baseline: generous tolerance absorbs timer
	// noise between the two runs, exact metrics match trivially.
	code, stdout, stderr = runBench(t, "-reps", "1", "-baseline", baseline, "-tolerance", "20", "kernel/nlmeans3/seq")
	if code != 0 {
		t.Fatalf("self-baseline exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "no regressions") {
		t.Errorf("expected a clean report, got:\n%s", stdout)
	}

	// Inject the slowdown: rewrite the baseline to claim the case was
	// 1000x faster with 1000x fewer allocations. The current
	// (unchanged) code is now a regression and the command must exit
	// nonzero. Shrinking allocs as well as wall keeps the test
	// independent of the wall noise floor: on hardware fast enough that
	// the whole case runs under the floor, the alloc gate (which has no
	// floor) still trips.
	art, err := bench.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	res := art.Results["kernel/nlmeans3/seq"]
	for _, m := range []string{bench.MetricWallNS, bench.MetricAllocs} {
		d := res.Metrics[m]
		d.Min, d.Mean, d.Max = d.Min/1000, d.Mean/1000, d.Max/1000
		res.Metrics[m] = d
	}
	art.Results["kernel/nlmeans3/seq"] = res
	if err := art.WriteFile(baseline); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr = runBench(t, "-reps", "1", "-baseline", baseline, "-out", out, "kernel/nlmeans3/seq")
	if code == 0 {
		t.Fatalf("injected slowdown must exit nonzero\nstdout:\n%s", stdout)
	}
	if !strings.Contains(stdout, "REGRESSION") || !strings.Contains(stderr, "regression(s)") {
		t.Errorf("regression not reported\nstdout:\n%s\nstderr:\n%s", stdout, stderr)
	}
	// The artifact is still written even when the gate fails, so CI can
	// upload it for inspection.
	if _, err := os.Stat(out); err != nil {
		t.Errorf("artifact not written on regression: %v", err)
	}
}

// TestBenchCommandSubsetGating: gating a selected subset against a
// full baseline must only compare the selected cases — the documented
// `bench -baseline BENCH_4.json kernel/...` workflow — while a full run
// still flags baseline cases the surface lost.
func TestBenchCommandSubsetGating(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_base.json")
	// Baseline covers two cases; the gated run selects only one.
	code, stdout, stderr := runBench(t, "-reps", "1", "-out", baseline,
		"kernel/sepconv3/seq", "kernel/sepconv3/par")
	if code != 0 {
		t.Fatalf("baseline run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	code, stdout, stderr = runBench(t, "-reps", "1", "-baseline", baseline, "-tolerance", "20",
		"kernel/sepconv3/seq")
	if code != 0 {
		t.Fatalf("subset gate exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "missing from this run") {
		t.Errorf("unselected baseline cases must not be gated:\n%s", stdout)
	}
}

func TestBenchCommandUsageErrors(t *testing.T) {
	if code, _, _ := runBench(t, "-profile", "nope", "kernel/nlmeans3/seq"); code != 2 {
		t.Errorf("bad profile: exit %d, want 2", code)
	}
	if code, _, _ := runBench(t, "no/such/case"); code != 2 {
		t.Errorf("unknown case: exit %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A malformed baseline must fail before any measurement starts.
	if code, _, stderr := runBench(t, "-baseline", bad, "kernel/nlmeans3/seq"); code != 2 || !strings.Contains(stderr, "malformed") {
		t.Errorf("malformed baseline: exit %d, stderr %q", code, stderr)
	}
}

func TestBenchCommandList(t *testing.T) {
	code, stdout, _ := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"exp/fig10c", "exp/table1", "kernel/nlmeans3/par", "kernel/nlmeans3/seq"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list missing %s:\n%s", want, stdout)
		}
	}
}
