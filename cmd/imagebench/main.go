// Command imagebench runs the paper-reproduction experiments: one per
// table and figure of "Comparative Evaluation of Big-Data Systems on
// Scientific Image Analytics Workloads" (VLDB 2017).
//
// Experiments are scheduled on the shared worker-pool runner (the same
// scheduler behind the imagebenchd daemon), so `imagebench all` runs
// them concurrently and prints results in deterministic order.
//
// Usage:
//
//	imagebench -list               # show all experiment IDs
//	imagebench engines             # show the registered engines + capabilities
//	imagebench fig10c fig11        # run specific experiments
//	imagebench -profile quick all  # run everything under the quick profile
//	imagebench -check fig12d       # also validate the paper's shape
//	imagebench -json fig11         # machine-readable output
//	imagebench -parallel 2 all     # cap the worker pool
//	imagebench -cache-dir /tmp/ib all  # reuse results across invocations
//	imagebench -systems Spark,Myria fig10c  # restrict rows to named engines
//	imagebench -trace trace.json fig11 # write a Chrome/Perfetto trace of the run
//
// Batch sweeps (experiments × profiles × overrides) run through the
// sweep engine, with a live grid summary and a combined JSON artifact:
//
//	imagebench sweep -profiles quick -nodes 4,8 -out sweep.json 'fig10*' fig11
//
// Federated sweeps partition the same grid across a set of imagebenchd
// workers, with work stealing, failover, and a crash-safe assignment
// journal; the combined artifact is byte-identical to a single-node run:
//
//	imagebench fedsweep -workers http://a:8080,http://b:8080 -out sweep.json 'fig10*'
//
// Measured-performance runs (wall time, allocations, virtual seconds
// per case) go through the bench harness, which diffs against a
// committed baseline and exits nonzero on regression:
//
//	imagebench bench -reps 3 -out BENCH_4.json all
//	imagebench bench -baseline BENCH_4.json -tolerance 0.3 kernel/...
//
// Serving-path load tests (TPS and latency quantiles per request class
// against a running imagebenchd, or an in-process one) go through the
// loadgen harness:
//
//	imagebench loadgen -agents 32 -duration 10s -addr http://localhost:8080
//	imagebench loadgen -deterministic -requests 50 -seed 7 -zipf 2.5
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"imagebench/internal/core"
	"imagebench/internal/engine"
	"imagebench/internal/fsatomic"
	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
)

// parseSystems splits and validates a -systems flag value against the
// engine registry, so a typoed engine name fails before any simulation
// starts.
func parseSystems(flagValue string) ([]string, error) {
	if flagValue == "" {
		return nil, nil
	}
	var out []string
	for _, name := range strings.Split(flagValue, ",") {
		name = strings.TrimSpace(name)
		if _, err := engine.Lookup(name); err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		sweepMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fedsweep" {
		fedsweepMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		os.Exit(benchMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		os.Exit(loadgenMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "engines" {
		os.Exit(enginesMain(os.Args[2:]))
	}
	list := flag.Bool("list", false, "list experiment IDs and exit")
	profile := flag.String("profile", "full", `workload profile: "full" (paper sweeps) or "quick"`)
	check := flag.Bool("check", true, "validate each table against the paper's qualitative shape")
	asJSON := flag.Bool("json", false, "emit results as a JSON array instead of rendered tables")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (empty = no cross-run caching)")
	systems := flag.String("systems", "", "comma-separated engine names to restrict experiments to (see `imagebench engines`; empty = all)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the run (load in Perfetto / chrome://tracing)")
	flag.Parse()

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
			fmt.Printf("%-12s paper: %s\n", "", e.Paper)
		}
		return
	}

	p, err := core.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imagebench: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	filtered, err := parseSystems(*systems)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imagebench:", err)
		os.Exit(2)
	}
	if filtered != nil {
		p = p.Apply(core.Overrides{Systems: filtered})
		if *check {
			// Shape checks compare specific systems against each other and
			// need the full row set; a filtered table cannot satisfy them.
			fmt.Fprintln(os.Stderr, "imagebench: -systems filters the comparison rows; shape checks disabled")
			*check = false
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "imagebench: name experiments to run, or \"all\" (see -list)")
		os.Exit(2)
	}
	var exps []*core.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = core.All()
	} else {
		for _, id := range ids {
			e, err := core.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "imagebench:", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	var cache *results.Cache
	if *cacheDir != "" {
		cache, err = results.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imagebench:", err)
			os.Exit(1)
		}
	}

	// Submit everything up front so the pool runs experiments
	// concurrently, then collect in submission order: the output is
	// byte-identical in table content to the old serial path.
	opts := runner.Options{Workers: *parallel, Cache: cache}
	var tracer *obs.Tracer
	if *traceOut != "" {
		// Tracing records spans around the simulations (dual-clocked:
		// wall and virtual time); it never alters what they compute.
		tracer = obs.NewTracer()
		opts.Tracer = tracer
		opts.Metrics = obs.NewRegistry()
	}
	sched := runner.New(opts)
	defer sched.Close()
	jobs := make([]*runner.Job, len(exps))
	for i, e := range exps {
		j, err := sched.Submit(e.ID, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imagebench: submit %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		jobs[i] = j
	}

	// jsonResult is the machine-readable record emitted per experiment
	// under -json.
	type jsonResult struct {
		ID      string       `json:"id"`
		Title   string       `json:"title"`
		Profile string       `json:"profile"`
		Unit    string       `json:"unit"`
		Columns []string     `json:"columns"`
		Rows    []string     `json:"rows"`
		Cells   [][]*float64 `json:"cells"` // null = the paper's NA/X cells
		Notes   []string     `json:"notes,omitempty"`
		Shape   string       `json:"shape,omitempty"` // "ok" or the check failure
	}
	var jsonResults []jsonResult

	failed := 0
	for i, e := range exps {
		if !*asJSON {
			fmt.Printf("=== %s: %s (profile %s)\n", e.ID, e.Title, p.Name)
			fmt.Printf("    paper: %s\n", e.Paper)
		}
		tab, err := runner.Wait(context.Background(), jobs[i])
		if errors.Is(err, engine.ErrUnsupported) {
			// Not applicable under the -systems filter (e.g. a Myria
			// tuning study with -systems Spark): skipped, not failed.
			// The JSON stream keeps a record so machine consumers can
			// tell "skipped" from "vanished".
			if *asJSON {
				jsonResults = append(jsonResults, jsonResult{
					ID: e.ID, Title: e.Title, Profile: p.Name,
					Shape: fmt.Sprintf("skipped: %v", err),
				})
			} else {
				fmt.Printf("    skipped: %v\n\n", err)
			}
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "imagebench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		shape := ""
		if *check {
			if err := e.Check(tab); err != nil {
				shape = err.Error()
				failed++
			} else {
				shape = "ok"
			}
		}
		if *asJSON {
			jsonResults = append(jsonResults, jsonResult{
				ID: e.ID, Title: e.Title, Profile: p.Name, Unit: tab.Unit,
				Columns: tab.ColNames, Rows: tab.RowNames,
				Cells: tab.NullableCells(),
				Notes: tab.Notes, Shape: shape,
			})
			continue
		}
		fmt.Print(tab.Render())
		switch {
		case shape == "ok":
			fmt.Printf("    shape check: ok\n")
		case shape != "":
			fmt.Printf("    SHAPE CHECK FAILED: %v\n", shape)
		}
		info := jobs[i].Snapshot()
		if info.CacheHit {
			fmt.Printf("    (served from result cache, key %s)\n\n", info.ResultKey)
		} else {
			fmt.Printf("    (ran in %.1fs real time)\n\n", info.ElapsedSec)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench:", err)
			os.Exit(1)
		}
	}
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "imagebench: trace written to %s (%d spans)\n", *traceOut, len(tracer.Spans()))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "imagebench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

// writeTrace dumps the tracer's spans as Chrome trace-event JSON. The
// write is atomic: an interrupted run leaves the previous trace (or no
// file), never a truncated one.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := fsatomic.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Abort()
		return fmt.Errorf("trace: encode: %w", err)
	}
	return f.Commit()
}
