// Command imagebench runs the paper-reproduction experiments: one per
// table and figure of "Comparative Evaluation of Big-Data Systems on
// Scientific Image Analytics Workloads" (VLDB 2017).
//
// Usage:
//
//	imagebench -list               # show all experiment IDs
//	imagebench fig10c fig11        # run specific experiments
//	imagebench -profile quick all  # run everything under the quick profile
//	imagebench -check fig12d       # also validate the paper's shape
//	imagebench -json fig11         # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"imagebench/internal/core"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	profile := flag.String("profile", "full", `workload profile: "full" (paper sweeps) or "quick"`)
	check := flag.Bool("check", true, "validate each table against the paper's qualitative shape")
	asJSON := flag.Bool("json", false, "emit results as a JSON array instead of rendered tables")
	flag.Parse()

	if *list {
		for _, e := range core.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
			fmt.Printf("%-12s paper: %s\n", "", e.Paper)
		}
		return
	}

	var p core.Profile
	switch *profile {
	case "full":
		p = core.Full()
	case "quick":
		p = core.Quick()
	default:
		fmt.Fprintf(os.Stderr, "imagebench: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "imagebench: name experiments to run, or \"all\" (see -list)")
		os.Exit(2)
	}
	var exps []*core.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = core.All()
	} else {
		for _, id := range ids {
			e, err := core.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "imagebench:", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	// jsonResult is the machine-readable record emitted per experiment
	// under -json.
	type jsonResult struct {
		ID      string       `json:"id"`
		Title   string       `json:"title"`
		Profile string       `json:"profile"`
		Unit    string       `json:"unit"`
		Columns []string     `json:"columns"`
		Rows    []string     `json:"rows"`
		Cells   [][]*float64 `json:"cells"` // null = the paper's NA/X cells
		Notes   []string     `json:"notes,omitempty"`
		Shape   string       `json:"shape,omitempty"` // "ok" or the check failure
	}
	var results []jsonResult

	failed := 0
	for _, e := range exps {
		if !*asJSON {
			fmt.Printf("=== %s: %s (profile %s)\n", e.ID, e.Title, p.Name)
			fmt.Printf("    paper: %s\n", e.Paper)
		}
		start := time.Now()
		tab, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imagebench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		shape := ""
		if *check {
			if err := e.Check(tab); err != nil {
				shape = err.Error()
				failed++
			} else {
				shape = "ok"
			}
		}
		if *asJSON {
			cells := make([][]*float64, len(tab.Cells))
			for i, row := range tab.Cells {
				cells[i] = make([]*float64, len(row))
				for j, v := range row {
					if !math.IsNaN(v) {
						v := v
						cells[i][j] = &v
					}
				}
			}
			results = append(results, jsonResult{
				ID: e.ID, Title: e.Title, Profile: p.Name, Unit: tab.Unit,
				Columns: tab.ColNames, Rows: tab.RowNames, Cells: cells,
				Notes: tab.Notes, Shape: shape,
			})
			continue
		}
		fmt.Print(tab.Render())
		switch {
		case shape == "ok":
			fmt.Printf("    shape check: ok\n")
		case shape != "":
			fmt.Printf("    SHAPE CHECK FAILED: %v\n", shape)
		}
		fmt.Printf("    (ran in %.1fs real time)\n\n", time.Since(start).Seconds())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "imagebench:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "imagebench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
