package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"imagebench/internal/bench"
	"imagebench/internal/core"
)

// benchMain implements `imagebench bench`: run the measured-performance
// harness over the selected cases, write the JSON artifact, and — when
// a baseline is given — diff against it, returning a nonzero exit code
// on regression. It returns the process exit code so tests can drive
// the full flow, including the regression path, without exec'ing.
func benchMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imagebench bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "quick", `workload profile for the experiment cases: "quick" or "full"`)
	reps := fs.Int("reps", 3, "repetitions per case")
	baseline := fs.String("baseline", "", "baseline artifact to diff against (e.g. BENCH_4.json); exit 1 on regression")
	out := fs.String("out", "", "write this run's artifact (JSON) to this file")
	tolerance := fs.Float64("tolerance", 0.25, "allowed relative increase for wall time and allocations (0.25 = +25%);\nvirtual-seconds metrics are always gated exactly")
	list := fs.Bool("list", false, "list case names and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: imagebench bench [flags] [case|prefix...|all]...\n\n"+
			"Runs benchmark cases sequentially for -reps repetitions, recording wall\n"+
			"time, allocations, and virtual seconds per case into a schema-versioned\n"+
			"JSON artifact, then diffs against -baseline. Examples:\n\n"+
			"  imagebench bench -reps 3 -out BENCH_4.json all\n"+
			"  imagebench bench -baseline BENCH_4.json -tolerance 0.3 kernel/...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p, err := core.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintf(stderr, "imagebench bench: %v\n", err)
		return 2
	}
	cases, err := bench.SelectCases(p, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "imagebench bench: %v\n", err)
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, "metrics recorded per case (how the baseline comparator gates each):")
		for _, m := range bench.StandardMetrics() {
			fmt.Fprintf(stdout, "  %-16s %s\n", m, bench.MetricClass(m))
		}
		fmt.Fprintln(stdout, "\nserve/... cases additionally record:")
		for _, m := range bench.ServeMetrics() {
			fmt.Fprintf(stdout, "  %-16s %s\n", m, bench.MetricClass(m))
		}
		fmt.Fprintln(stdout, "\ncases:")
		for _, c := range cases {
			fmt.Fprintln(stdout, c.Name)
		}
		return 0
	}

	// Load the baseline before spending minutes measuring: a malformed
	// or old-schema file should fail immediately.
	var base *bench.Artifact
	if *baseline != "" {
		base, err = bench.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "imagebench bench: %v\n", err)
			return 2
		}
	}

	art, err := bench.Run(context.Background(), cases, bench.Options{
		Reps:    *reps,
		Profile: p.Name,
		Progress: func(name string, res bench.CaseResult) {
			wall := res.Metrics[bench.MetricWallNS]
			fmt.Fprintf(stdout, "%-24s %10.1fms min wall  %8.0f allocs\n",
				name, wall.Min/1e6, res.Metrics[bench.MetricAllocs].Mean)
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "imagebench bench: %v\n", err)
		return 1
	}

	if *out != "" {
		if err := art.WriteFile(*out); err != nil {
			fmt.Fprintf(stderr, "imagebench bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}

	if base != nil {
		if explicitSubset(fs.Args()) {
			// The user selected specific cases: gate only those, not
			// the baseline cases this run never attempted.
			names := make([]string, 0, len(cases))
			for _, c := range cases {
				names = append(names, c.Name)
			}
			base = base.Restrict(names)
		}
		rep := bench.Compare(base, art, bench.CompareOpts{Tolerance: *tolerance})
		fmt.Fprint(stdout, rep.Render())
		if !rep.OK() {
			fmt.Fprintf(stderr, "imagebench bench: %d regression(s) vs %s\n", len(rep.Regressions()), *baseline)
			return 1
		}
	}
	return 0
}

// explicitSubset reports whether the selectors pick specific cases
// rather than the full default set: only a full run can meaningfully
// detect baseline cases that vanished from the benchmark surface.
func explicitSubset(selectors []string) bool {
	if len(selectors) == 0 {
		return false
	}
	for _, s := range selectors {
		if s == "all" {
			return false
		}
	}
	return true
}
