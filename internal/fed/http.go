package fed

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// transportError marks a failure to reach a worker at all — connection
// refused, reset mid-request, unreadable response. It is the signal
// that declares a worker down, as distinct from a worker that answered
// with an application error (which fails the cell, not the worker).
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

func isTransport(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// jobRequest mirrors the daemon's POST /v1/jobs body: one experiment,
// the cell's base profile, and its override set (so the worker derives
// the exact same profile — and therefore the exact same result key —
// the coordinator expanded).
type jobRequest struct {
	Experiments []string        `json:"experiments"`
	Profile     string          `json:"profile"`
	Overrides   *core.Overrides `json:"overrides,omitempty"`
	Wait        bool            `json:"wait"`
}

type jobResponse struct {
	Jobs  []runner.Info `json:"jobs"`
	Error string        `json:"error"`
}

// submitCell runs one cell to completion on worker via POST /v1/jobs
// wait=true. Transport failures come back as *transportError; any
// other error is cell-level. A 503 (worker queue momentarily full) is
// retried with backoff — the worker is alive, just saturated.
func (c *Coordinator) submitCell(ctx context.Context, worker string, cell *sweep.Cell) (runner.Info, error) {
	req := jobRequest{Experiments: []string{cell.Experiment}, Profile: cell.Base, Wait: true}
	if !cell.Override.IsZero() {
		o := cell.Override
		req.Overrides = &o
	}
	body, err := json.Marshal(req)
	if err != nil {
		return runner.Info{}, fmt.Errorf("encode job request: %w", err)
	}
	const maxRetries = 10
	for attempt := 0; ; attempt++ {
		status, resp, err := c.post(ctx, worker+"/v1/jobs", body)
		if err != nil {
			return runner.Info{}, err // already a *transportError
		}
		if status == http.StatusServiceUnavailable && attempt < maxRetries {
			select {
			case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
				continue
			case <-ctx.Done():
				return runner.Info{}, &transportError{err: ctx.Err()}
			}
		}
		var jr jobResponse
		if err := json.Unmarshal(resp, &jr); err != nil {
			return runner.Info{}, fmt.Errorf("worker answered %d with unparseable body: %.200s", status, resp)
		}
		if status != http.StatusOK {
			return runner.Info{}, fmt.Errorf("worker answered %d: %s", status, jr.Error)
		}
		if len(jr.Jobs) != 1 {
			return runner.Info{}, fmt.Errorf("worker returned %d jobs for one cell", len(jr.Jobs))
		}
		return jr.Jobs[0], nil
	}
}

// fetchEntry retrieves a finished cell's full entry from worker.
// A missing key is (nil, nil).
func (c *Coordinator) fetchEntry(ctx context.Context, worker, key string) (*results.Entry, error) {
	status, resp, err := c.get(ctx, worker+"/v1/results/"+key)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("worker answered %d fetching %.12s", status, key)
	}
	var entry results.Entry
	if err := json.Unmarshal(resp, &entry); err != nil || entry.Table == nil {
		return nil, fmt.Errorf("worker served unparseable entry for %.12s", key)
	}
	return &entry, nil
}

// probeEntry tries every live worker for a key during resume. Errors
// are swallowed: the probe is opportunistic, and a cell it cannot
// satisfy just runs normally.
func (c *Coordinator) probeEntry(ctx context.Context, key string) *results.Entry {
	c.mu.Lock()
	live := c.liveWorkersLocked()
	c.mu.Unlock()
	for _, w := range live {
		if entry, err := c.fetchEntry(ctx, w, key); err == nil && entry != nil {
			return entry
		}
	}
	return nil
}

// replicate pushes a finished entry to peer via POST /v1/results.
// Only transport failures are returned (they declare the peer down); a
// peer that answers with an error keeps running, it just missed this
// entry — reads fall back to whichever worker computed it.
func (c *Coordinator) replicate(ctx context.Context, peer string, entry *results.Entry) error {
	body, err := json.Marshal(entry)
	if err != nil {
		return nil // unserializable entry: nothing transport-related
	}
	status, _, err := c.post(ctx, peer+"/v1/results", body)
	if err != nil {
		return err
	}
	if status != http.StatusCreated {
		c.logf("fed: replicate %.12s to %s: status %d", entry.Key, peer, status)
		return nil
	}
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Replications.With(peer).Inc()
	}
	return nil
}

// post issues a JSON POST; the returned error is always a
// *transportError (HTTP-level failures come back as a status).
func (c *Coordinator) post(ctx context.Context, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, &transportError{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

func (c *Coordinator) get(ctx context.Context, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, &transportError{err: err}
	}
	return c.do(req)
}

func (c *Coordinator) do(req *http.Request) (int, []byte, error) {
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, &transportError{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, &transportError{err: err}
	}
	return resp.StatusCode, body, nil
}

// SweepInfo snapshots the coordinator's sweep in the same shape a
// worker daemon serves for GET /v1/sweeps/{id}; ok is false before Run
// has expanded a spec.
func (c *Coordinator) SweepInfo(withCells bool) (sweep.Info, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sweepID == "" {
		return sweep.Info{}, false
	}
	info := sweep.Info{
		ID:      c.sweepID,
		Created: c.started.UTC().Format(time.RFC3339Nano),
		Total:   len(c.cells),
	}
	for _, cell := range c.cells {
		st := c.states[cell.Key]
		ci := sweep.CellInfo{Experiment: cell.Experiment, Profile: cell.Profile.Name, Key: cell.Key}
		switch {
		case st.done:
			ci.Status, ci.CacheHit = runner.StatusDone, st.cacheHit
			info.Done++
			if st.cacheHit {
				info.Hits++
			}
		case st.err != "":
			ci.Status, ci.Error = runner.StatusFailed, st.err
			info.Failed++
		case st.running:
			ci.Status = runner.StatusRunning
			info.Running++
		default:
			ci.Status = runner.StatusQueued
			info.Queued++
		}
		if withCells {
			info.Cells = append(info.Cells, ci)
		}
	}
	return info, true
}

// Handler serves the coordinator's observation surface: /healthz,
// /metrics (when reg is non-nil), and the sweep in the same
// GET /v1/sweeps and GET /v1/sweeps/{id} shapes a worker daemon
// exposes — a dashboard pointed at a worker works unchanged against
// the coordinator.
func (c *Coordinator) Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		c.fedWriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			c.fedWriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "metrics registry not configured"})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			c.respWriteErrs.Add(1)
		}
	})
	mux.HandleFunc("GET /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		infos := []sweep.Info{}
		if info, ok := c.SweepInfo(false); ok {
			infos = append(infos, info)
		}
		c.fedWriteJSON(w, http.StatusOK, map[string]any{"sweeps": infos})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := c.SweepInfo(true)
		if !ok || info.ID != r.PathValue("id") {
			c.fedWriteJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown sweep %q", r.PathValue("id"))})
			return
		}
		c.fedWriteJSON(w, http.StatusOK, info)
	})
	return mux
}

// fedWriteJSON emits v with indentation, mirroring the worker daemon's
// writer; a failed body write is tallied on the coordinator — the
// client is gone, so a counter is the only place the error can land.
func (c *Coordinator) fedWriteJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, "encode response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(b, '\n')); err != nil {
		c.respWriteErrs.Add(1)
	}
}
