package fed

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/daemon"
	"imagebench/internal/obs"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

var registerFedOnce sync.Once

// registerFedFakes registers six fast deterministic experiments: the
// result depends only on the derived profile, so any worker (or a
// single-node run) computes byte-identical tables for the same cell.
func registerFedFakes() {
	registerFedOnce.Do(func() {
		for _, id := range []string{"zz-fed-a", "zz-fed-b", "zz-fed-c", "zz-fed-d", "zz-fed-e", "zz-fed-f"} {
			id := id
			core.Register(&core.Experiment{
				ID: id, Title: "fake fed " + id, Paper: "n/a",
				Run: func(ctx context.Context, p core.Profile) (*core.Table, error) {
					time.Sleep(5 * time.Millisecond) // long enough to kill a worker mid-sweep
					t := core.NewTable("fed "+id, "virtual s", []string{"r"}, []string{"c"})
					t.Set("r", "c", float64(p.ClusterNodes[0]))
					return t, nil
				},
				Check: func(*core.Table) error { return nil },
			})
		}
	})
}

// startWorkers boots n in-process worker daemons.
func startWorkers(t *testing.T, n int) []*daemon.Local {
	t.Helper()
	registerFedFakes()
	workers := make([]*daemon.Local, n)
	for i := range workers {
		w, err := daemon.StartLocal(daemon.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		t.Cleanup(w.Stop)
	}
	return workers
}

func workerURLs(workers []*daemon.Local) []string {
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.BaseURL
	}
	return urls
}

// nodeOverrides builds n single-point ClusterNodes override axes.
func nodeOverrides(n int) []core.Overrides {
	out := make([]core.Overrides, n)
	for i := range out {
		out[i] = core.Overrides{ClusterNodes: []int{i + 1}}
	}
	return out
}

// singleNodeCanonical runs the same spec through an in-process sweep
// manager (no federation) and returns the canonical artifact bytes.
func singleNodeCanonical(t *testing.T, spec sweep.Spec) []byte {
	t.Helper()
	d, err := daemon.New(daemon.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s, _, err := d.Sweeps.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = sweep.WriteCanonicalArtifact(&buf, s.ID, spec, s.Cells, func(c *sweep.Cell) *core.Table {
		tab, _ := s.Result(c, d.Cache)
		return tab
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJournalRoundTripAndDoneKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "assign.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := sweep.Spec{Experiments: []string{"zz-fed-a"}}
	recs := []Record{
		{Op: OpSpec, Sweep: "sw-aaa", Spec: &spec},
		{Op: OpAssign, Key: "k1", Worker: "w1"},
		{Op: OpAssign, Key: "k2", Worker: "w2"},
		{Op: OpSteal, Key: "k2", Worker: "w1", From: "w2"},
		{Op: OpDone, Key: "k1", Worker: "w1"},
		{Op: OpFail, Key: "k2", Worker: "w1", Error: "boom"},
		{Op: OpWorkerDown, Worker: "w2"},
	}
	for _, r := range recs {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Op != recs[i].Op || r.Key != recs[i].Key || r.Worker != recs[i].Worker || r.Time == "" {
			t.Errorf("record %d = %+v", i, r)
		}
	}
	done := DoneKeys(got, "sw-aaa")
	// k1 is done; k2 failed (stays pending, retried on restart).
	if !done["k1"] || done["k2"] || len(done) != 1 {
		t.Errorf("DoneKeys = %v, want only k1", done)
	}
	// Records scoped to a different sweep are invisible.
	if d := DoneKeys(got, "sw-bbb"); len(d) != 0 {
		t.Errorf("DoneKeys for foreign sweep = %v, want empty", d)
	}
}

func TestFederatedSweepRunsAllCells(t *testing.T) {
	workers := startWorkers(t, 2)
	reg := obs.NewRegistry()
	fm := obs.NewFedMetrics(reg)
	coord, err := New(Config{Workers: workerURLs(workers), Metrics: fm})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	spec := sweep.Spec{Experiments: []string{"zz-fed-a", "zz-fed-b", "zz-fed-c"}, Overrides: nodeOverrides(2)}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := coord.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed cells: %v", res.Failed)
	}
	if len(res.Entries) != 6 {
		t.Fatalf("got %d entries, want 6", len(res.Entries))
	}
	for key, e := range res.Entries {
		if e == nil || e.Table == nil || e.Key != key {
			t.Fatalf("entry %s = %+v", key, e)
		}
	}
	// Replication: every worker serves every key.
	for i, w := range workers {
		if got := len(w.Cache.Keys()); got != 6 {
			t.Errorf("worker %d caches %d keys after replication, want 6", i, got)
		}
	}
	// Per-worker counters on /metrics: all 6 assignments and
	// completions accounted, and replication fanned out.
	var assigned, done, replicated float64
	for _, u := range workerURLs(workers) {
		assigned += fm.Assigned.With(u).Value()
		done += fm.Done.With(u).Value()
		replicated += fm.Replications.With(u).Value()
	}
	if assigned < 6 || done != 6 || replicated != 6 {
		t.Errorf("counters: assigned=%v done=%v replicated=%v, want >=6 / 6 / 6", assigned, done, replicated)
	}
	// The federated artifact matches a single-node run byte for byte.
	var fedArt bytes.Buffer
	if err := res.WriteArtifact(&fedArt); err != nil {
		t.Fatal(err)
	}
	if single := singleNodeCanonical(t, spec); !bytes.Equal(fedArt.Bytes(), single) {
		t.Errorf("federated artifact (%d bytes) differs from single-node artifact (%d bytes)",
			fedArt.Len(), len(single))
	}
}

// TestFederationSmokeKillWorker is the acceptance smoke: coordinator +
// 3 in-process workers, a 60-cell sweep, one worker killed (-9 at the
// network layer) mid-flight. The killed worker's cells must migrate to
// the survivors and the combined artifact must be byte-identical to a
// single-node run of the same spec.
func TestFederationSmokeKillWorker(t *testing.T) {
	workers := startWorkers(t, 3)
	reg := obs.NewRegistry()
	fm := obs.NewFedMetrics(reg)
	journal := filepath.Join(t.TempDir(), "assign.jsonl")
	coord, err := New(Config{Workers: workerURLs(workers), Metrics: fm, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// 6 experiments × 10 cluster sizes = 60 cells.
	spec := sweep.Spec{Experiments: []string{"zz-fed-*"}, Overrides: nodeOverrides(10)}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type outcome struct {
		res *Result
		err error
	}
	runC := make(chan outcome, 1)
	go func() {
		res, err := coord.Run(ctx, spec)
		runC <- outcome{res, err}
	}()

	// Kill worker 0 once the sweep is demonstrably mid-flight: some
	// cells done, many not.
	killed := false
	deadline := time.Now().Add(time.Minute)
	for !killed {
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached mid-flight")
		}
		info, ok := coord.SweepInfo(false)
		if ok && info.Done >= 5 {
			if info.Done > 50 {
				t.Fatalf("sweep nearly finished (done=%d) before the kill; slow the fakes down", info.Done)
			}
			workers[0].Kill()
			killed = true
		}
		time.Sleep(time.Millisecond)
	}

	out := <-runC
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.res.Failed) != 0 {
		t.Fatalf("failed cells after worker kill: %v", out.res.Failed)
	}
	if len(out.res.Entries) != 60 {
		t.Fatalf("got %d entries, want 60", len(out.res.Entries))
	}

	// The kill was observed and the dead worker's cells migrated: the
	// survivors were assigned more than their initial 2/3 share.
	if v := fm.WorkerFailures.With(workers[0].BaseURL).Value(); v < 1 {
		t.Errorf("worker 0 kill not recorded: failures=%v", v)
	}
	survivors := fm.Assigned.With(workers[1].BaseURL).Value() + fm.Assigned.With(workers[2].BaseURL).Value()
	if survivors <= 40 {
		t.Errorf("survivors were assigned %v cells total, want > 40 (their initial share)", survivors)
	}
	// Every surviving worker can serve every key (replication held up).
	for i, w := range workers[1:] {
		if got := len(w.Cache.Keys()); got != 60 {
			t.Errorf("survivor %d caches %d keys, want 60", i+1, got)
		}
	}

	// Byte-identical to the single-node run.
	var fedArt bytes.Buffer
	if err := out.res.WriteArtifact(&fedArt); err != nil {
		t.Fatal(err)
	}
	single := singleNodeCanonical(t, spec)
	if !bytes.Equal(fedArt.Bytes(), single) {
		t.Fatalf("federated artifact (%d bytes) differs from single-node artifact (%d bytes)",
			fedArt.Len(), len(single))
	}

	// The journal recorded the death and the migration.
	recs, err := ReadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	var sawDown, sawDone bool
	for _, r := range recs {
		if r.Op == OpWorkerDown && r.Worker == workers[0].BaseURL {
			sawDown = true
		}
		if r.Op == OpDone {
			sawDone = true
		}
	}
	if !sawDown || !sawDone {
		t.Errorf("journal missing worker-down (%v) or done (%v) records", sawDown, sawDone)
	}
}

// TestCoordinatorResume proves journal-backed exactly-once: a second
// coordinator over the same journal re-runs nothing — every cell is
// satisfied from the journal's done set and the workers' caches.
func TestCoordinatorResume(t *testing.T) {
	workers := startWorkers(t, 2)
	journal := filepath.Join(t.TempDir(), "assign.jsonl")
	spec := sweep.Spec{Experiments: []string{"zz-fed-a", "zz-fed-b"}, Overrides: nodeOverrides(3)}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	first, err := New(Config{Workers: workerURLs(workers), JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	res, err := first.Run(ctx, spec)
	first.Close()
	if err != nil || len(res.Failed) != 0 {
		t.Fatalf("first run: err=%v failed=%v", err, res.Failed)
	}

	// Worker-side execution counts before the resume.
	before := make([]int64, len(workers))
	for i, w := range workers {
		before[i] = w.Sched.Stats().Submitted
	}

	second, err := New(Config{Workers: workerURLs(workers), JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	res2, err := second.Run(ctx, spec)
	if err != nil || len(res2.Failed) != 0 {
		t.Fatalf("resumed run: err=%v failed=%v", err, res2.Failed)
	}
	if len(res2.Entries) != 6 {
		t.Fatalf("resumed run returned %d entries, want 6", len(res2.Entries))
	}
	info, ok := second.SweepInfo(false)
	if !ok || info.Hits != 6 || info.Done != 6 {
		t.Errorf("resumed sweep info = %+v, want all 6 cells as journal/cache hits", info)
	}
	for i, w := range workers {
		if got := w.Sched.Stats().Submitted; got != before[i] {
			t.Errorf("worker %d executed %d new jobs during resume, want 0", i, got-before[i])
		}
	}
}

// TestServeHandler drives the coordinator's -serve surface: the same
// GET /v1/sweeps/{id} shape a worker daemon exposes.
func TestServeHandler(t *testing.T) {
	workers := startWorkers(t, 2)
	reg := obs.NewRegistry()
	fm := obs.NewFedMetrics(reg)
	coord, err := New(Config{Workers: workerURLs(workers), Metrics: fm})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ts := httptest.NewServer(coord.Handler(reg))
	defer ts.Close()

	// Before any sweep: list is empty, get is 404.
	resp, err := http.Get(ts.URL + "/v1/sweeps/sw-000000000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep = %d, want 404", resp.StatusCode)
	}

	spec := sweep.Spec{Experiments: []string{"zz-fed-a"}, Overrides: nodeOverrides(2)}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := coord.Run(ctx, spec)
	if err != nil || len(res.Failed) != 0 {
		t.Fatalf("run: err=%v failed=%v", err, res.Failed)
	}

	var info sweep.Info
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + res.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep fetch = %d", resp.StatusCode)
	}
	if info.ID != res.SweepID || info.Total != 2 || info.Done != 2 || !info.Finished() {
		t.Errorf("served info = %+v, want 2/2 done", info)
	}
	if len(info.Cells) != 2 || info.Cells[0].Status != runner.StatusDone {
		t.Errorf("served cells = %+v", info.Cells)
	}

	// /metrics exposes the per-worker federation counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := copyBody(&sb, resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "imagebench_fed_cells_done_total") {
		t.Error("metrics output missing imagebench_fed_cells_done_total")
	}
}

func copyBody(sb *strings.Builder, resp *http.Response) (int64, error) {
	defer resp.Body.Close()
	buf := make([]byte, 64<<10)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}
