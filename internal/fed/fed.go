package fed

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// Config configures a Coordinator.
type Config struct {
	// Workers are the base URLs of the imagebenchd daemons to federate
	// over, e.g. "http://10.0.0.1:7080". At least one is required.
	Workers []string
	// PerWorker is the number of cells kept in flight on each worker
	// concurrently; 0 means 2. Higher values pipeline the per-cell HTTP
	// round trip but let more work strand on a killed worker.
	PerWorker int
	// JournalPath, when non-empty, is the coordinator's append-only
	// assignment journal. A restarted coordinator replays it and
	// resubmits only cells that never reached done.
	JournalPath string
	// Client is the HTTP client used for all worker traffic; nil means
	// a dedicated client with no overall timeout (per-cell waits are
	// bounded by the workers' own write timeouts).
	Client *http.Client
	// Metrics, when non-nil, receives the per-worker counters.
	Metrics *obs.FedMetrics
	// Logf, when non-nil, receives progress lines (worker deaths,
	// steals, resume decisions).
	Logf func(format string, args ...any)
}

// cellState tracks one cell through the federation: queued on a
// worker, running, and finally done (with its fetched entry) or
// failed. All fields are guarded by Coordinator.mu.
type cellState struct {
	cell     *sweep.Cell
	worker   string // current assignee
	running  bool
	done     bool
	cacheHit bool // satisfied without execution (resume fetch)
	err      string
	entry    *results.Entry
}

// Coordinator partitions a sweep's cell grid across workers, steals
// work back from stragglers, and journals every assignment so a
// restart resubmits only unfinished cells.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	journal *Journal

	mu         sync.Mutex
	cond       *sync.Cond
	sweepID    string
	spec       sweep.Spec
	cells      []*sweep.Cell
	states     map[string]*cellState
	queues     map[string][]*cellState
	dead       map[string]bool
	started    time.Time
	journalErr error // first journal append failure, reported by Run

	// respWriteErrs counts observation-surface responses the
	// coordinator failed to write (client gone mid-response); the
	// connection is dead, so accounting is the only reporting left.
	respWriteErrs atomic.Int64
}

// New validates cfg and opens the assignment journal (if configured).
// Call Close when done with the coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fed: no workers configured")
	}
	seen := make(map[string]bool, len(cfg.Workers))
	for _, w := range cfg.Workers {
		if w == "" {
			return nil, fmt.Errorf("fed: empty worker URL")
		}
		if seen[w] {
			return nil, fmt.Errorf("fed: duplicate worker %s", w)
		}
		seen[w] = true
	}
	if cfg.PerWorker <= 0 {
		cfg.PerWorker = 2
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.cond = sync.NewCond(&c.mu)
	if cfg.JournalPath != "" {
		j, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		c.journal = j
	}
	return c, nil
}

// Close closes the assignment journal. It does not interrupt a running
// Run; cancel its context for that.
func (c *Coordinator) Close() error {
	if c.journal != nil {
		return c.journal.Close()
	}
	return nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// record appends to the assignment journal, remembering the first
// failure: the sweep keeps executing (availability over durability),
// and Run surfaces the degraded exactly-once guarantee at the end.
func (c *Coordinator) record(r Record) {
	if c.journal == nil {
		return
	}
	if err := c.journal.Record(r); err != nil && c.journalErr == nil {
		c.journalErr = err
	}
}

// Result is a completed federated sweep.
type Result struct {
	SweepID string
	Spec    sweep.Spec
	Cells   []*sweep.Cell
	// Entries holds every finished cell's fetched entry, by result key.
	Entries map[string]*results.Entry
	// Failed maps the keys of cells that terminally failed to their
	// errors. Empty on a fully successful sweep.
	Failed map[string]string
}

// WriteArtifact writes the canonical combined artifact: byte-identical
// to a single-node canonical run of the same grid.
func (r *Result) WriteArtifact(w io.Writer) error {
	return sweep.WriteCanonicalArtifact(w, r.SweepID, r.Spec, r.Cells, func(c *sweep.Cell) *core.Table {
		if e := r.Entries[c.Key]; e != nil {
			return e.Table
		}
		return nil
	})
}

// Run executes the sweep across the configured workers and blocks
// until every cell is terminal or ctx is canceled. The returned error
// covers coordinator-level problems (spec expansion, context
// cancellation, journal write failures); per-cell failures are
// reported in Result.Failed.
func (c *Coordinator) Run(ctx context.Context, spec sweep.Spec) (*Result, error) {
	cells, err := sweep.Expand(spec)
	if err != nil {
		return nil, err
	}
	sid := sweep.GridID(cells)

	// Resume: cells the journal already proved done are not re-run if
	// any worker still serves their table.
	var doneBefore map[string]bool
	if c.cfg.JournalPath != "" {
		recs, err := ReadJournal(c.cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		doneBefore = DoneKeys(recs, sid)
	}

	c.mu.Lock()
	c.sweepID, c.spec, c.cells = sid, spec, cells
	c.started = time.Now()
	c.states = make(map[string]*cellState, len(cells))
	c.queues = make(map[string][]*cellState, len(c.cfg.Workers))
	c.dead = make(map[string]bool)
	for _, w := range c.cfg.Workers {
		c.queues[w] = nil
	}
	for _, cell := range cells {
		c.states[cell.Key] = &cellState{cell: cell}
	}
	c.mu.Unlock()

	c.record(Record{Op: OpSpec, Sweep: sid, Spec: &spec})

	// Opportunistic resume fetch, outside the lock: journal-done cells
	// whose table any worker still serves are finished without
	// re-execution. A table no worker can produce anymore falls back to
	// a normal run — the journal optimizes, the cache decides.
	resumed := 0
	for _, cell := range cells {
		if !doneBefore[cell.Key] {
			continue
		}
		if entry := c.probeEntry(ctx, cell.Key); entry != nil {
			st := c.states[cell.Key]
			c.mu.Lock()
			st.done, st.cacheHit, st.entry = true, true, entry
			c.mu.Unlock()
			resumed++
		}
	}
	if resumed > 0 {
		c.logf("fed: resumed %d of %d cells from the journal", resumed, len(cells))
	}

	// Initial partition: remaining cells round-robin across workers in
	// expansion order, so adjacent grid points land on different
	// workers and a straggler holds a spread of the grid, not a stripe.
	c.mu.Lock()
	i := 0
	for _, cell := range cells {
		st := c.states[cell.Key]
		if st.done {
			continue
		}
		w := c.cfg.Workers[i%len(c.cfg.Workers)]
		i++
		st.worker = w
		c.queues[w] = append(c.queues[w], st)
		c.record(Record{Op: OpAssign, Key: cell.Key, Worker: w})
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.Assigned.With(w).Inc()
		}
	}
	c.mu.Unlock()

	// Wake blocked executors if the context dies.
	stopWake := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stopWake()

	var wg sync.WaitGroup
	for _, w := range c.cfg.Workers {
		for s := 0; s < c.cfg.PerWorker; s++ {
			wg.Add(1)
			go func(worker string) {
				defer wg.Done()
				for {
					st := c.next(ctx, worker)
					if st == nil {
						return
					}
					c.execute(ctx, worker, st)
				}
			}(w)
		}
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{SweepID: sid, Spec: spec, Cells: cells,
		Entries: make(map[string]*results.Entry), Failed: make(map[string]string)}
	c.mu.Lock()
	for key, st := range c.states {
		switch {
		case st.done:
			res.Entries[key] = st.entry
		default:
			res.Failed[key] = st.err
		}
	}
	jerr := c.journalErr
	c.mu.Unlock()
	if jerr != nil {
		return res, fmt.Errorf("fed: sweep completed but journal writes failed (restart will re-run cells): %w", jerr)
	}
	return res, nil
}

// next returns the worker's next cell: its own queue first, then a
// steal from the slowest live peer (the longest remaining queue,
// popped from the tail — the victim keeps working its head). When
// nothing is available but cells are still in flight it blocks, since
// any in-flight cell may yet be re-queued by a worker death. It
// returns nil when the worker should exit: dead, canceled, or every
// cell terminal.
func (c *Coordinator) next(ctx context.Context, worker string) *cellState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if ctx.Err() != nil || c.dead[worker] || c.allTerminalLocked() {
			return nil
		}
		if q := c.queues[worker]; len(q) > 0 {
			st := q[0]
			c.queues[worker] = q[1:]
			st.running = true
			return st
		}
		if st := c.stealLocked(worker); st != nil {
			return st
		}
		c.cond.Wait()
	}
}

// stealLocked pulls the tail cell of the longest live peer queue;
// c.mu must be held. Returns nil when no peer has queued work.
func (c *Coordinator) stealLocked(thief string) *cellState {
	victim, max := "", 0
	for w, q := range c.queues {
		if w == thief || c.dead[w] {
			continue
		}
		if len(q) > max {
			victim, max = w, len(q)
		}
	}
	if victim == "" {
		return nil
	}
	q := c.queues[victim]
	st := q[len(q)-1]
	c.queues[victim] = q[:len(q)-1]
	st.worker = thief
	st.running = true
	c.record(Record{Op: OpSteal, Key: st.cell.Key, Worker: thief, From: victim})
	c.record(Record{Op: OpAssign, Key: st.cell.Key, Worker: thief})
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Stolen.With(victim).Inc()
		c.cfg.Metrics.Assigned.With(thief).Inc()
	}
	c.logf("fed: %s stole %s/%s from %s (%d cells remained)",
		thief, st.cell.Experiment, st.cell.Profile.Name, victim, max)
	return st
}

// allTerminalLocked reports whether every cell is done or failed;
// c.mu must be held.
func (c *Coordinator) allTerminalLocked() bool {
	for _, st := range c.states {
		if !st.done && st.err == "" {
			return false
		}
	}
	return true
}

// execute runs one cell on worker: submit with wait=true, fetch the
// finished table, journal done, and replicate the entry to every other
// live worker. A transport failure declares the worker down and
// re-queues the cell on the survivors.
func (c *Coordinator) execute(ctx context.Context, worker string, st *cellState) {
	cell := st.cell
	info, err := c.submitCell(ctx, worker, cell)
	if err != nil {
		if isTransport(err) {
			c.workerDown(worker, st)
		} else {
			c.failCell(worker, st, err.Error())
		}
		return
	}
	if info.Status != runner.StatusDone {
		c.failCell(worker, st, fmt.Sprintf("job %s: %s", info.Status, info.Error))
		return
	}
	if info.ResultKey != cell.Key {
		// The worker derived a different key for the same (experiment,
		// profile): registry or key-scheme drift. Its table would be
		// filed under the wrong address — fail loudly instead.
		c.failCell(worker, st, fmt.Sprintf("worker computed key %.12s, coordinator expected %.12s", info.ResultKey, cell.Key))
		return
	}
	entry, err := c.fetchEntry(ctx, worker, cell.Key)
	if err != nil {
		if isTransport(err) {
			c.workerDown(worker, st)
		} else {
			c.failCell(worker, st, err.Error())
		}
		return
	}
	if entry == nil {
		c.failCell(worker, st, "worker reported done but serves no result")
		return
	}

	c.mu.Lock()
	st.running, st.done, st.entry = false, true, entry
	c.record(Record{Op: OpDone, Key: cell.Key, Worker: worker})
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Done.With(worker).Inc()
	}
	peers := c.liveWorkersLocked()
	c.mu.Unlock()
	c.cond.Broadcast()

	// Replicate so any worker can serve any key. The source already
	// has it; push to everyone else still alive.
	for _, peer := range peers {
		if peer == worker {
			continue
		}
		if err := c.replicate(ctx, peer, entry); err != nil {
			c.workerDown(peer, nil)
		}
	}
}

// failCell marks a cell terminally failed.
func (c *Coordinator) failCell(worker string, st *cellState, msg string) {
	c.mu.Lock()
	st.running = false
	st.err = msg
	c.record(Record{Op: OpFail, Key: st.cell.Key, Worker: worker, Error: msg})
	c.mu.Unlock()
	c.cond.Broadcast()
	c.logf("fed: cell %s/%s failed on %s: %s", st.cell.Experiment, st.cell.Profile.Name, worker, msg)
}

// workerDown declares a worker dead after a transport failure and
// redistributes its remaining queue — plus the in-flight cell that
// exposed the failure, if any — across the survivors. With no
// survivors the stranded cells fail terminally.
func (c *Coordinator) workerDown(worker string, inflight *cellState) {
	c.mu.Lock()
	if !c.dead[worker] {
		c.dead[worker] = true
		c.record(Record{Op: OpWorkerDown, Worker: worker})
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.WorkerFailures.With(worker).Inc()
		}
		c.logf("fed: worker %s down, redistributing %d queued cells", worker, len(c.queues[worker]))
	}
	orphans := c.queues[worker]
	c.queues[worker] = nil
	if inflight != nil {
		inflight.running = false
		orphans = append(orphans, inflight)
	}
	live := c.liveWorkersLocked()
	for i, st := range orphans {
		if st.done || st.err != "" {
			continue
		}
		if len(live) == 0 {
			st.err = "no live workers"
			c.record(Record{Op: OpFail, Key: st.cell.Key, Worker: worker, Error: st.err})
			continue
		}
		w := live[i%len(live)]
		st.worker = w
		c.queues[w] = append(c.queues[w], st)
		c.record(Record{Op: OpAssign, Key: st.cell.Key, Worker: w})
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.Assigned.With(w).Inc()
		}
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// liveWorkersLocked returns the workers not declared dead, in config
// order; c.mu must be held.
func (c *Coordinator) liveWorkersLocked() []string {
	var live []string
	for _, w := range c.cfg.Workers {
		if !c.dead[w] {
			live = append(live, w)
		}
	}
	return live
}
