// Package fed is the federation layer: a coordinator that expands a
// sweep spec, partitions its cell grid across N imagebenchd workers
// over the existing HTTP API, steals work back from stragglers, and
// replicates every finished cell's table to every worker so any of
// them can serve any key. The coordinator keeps its own append-only
// JSONL assignment journal (same crash-safety mechanics as the
// scheduler's job journal, via internal/jsonl): a restarted
// coordinator replays it and resubmits only cells that never reached
// "done". Exactly-once composes across the layers — a cell re-sent to
// a worker that already computed it is answered from the worker's
// content-addressed cache, never re-simulated.
package fed

import (
	"encoding/json"
	"fmt"
	"time"

	"imagebench/internal/jsonl"
	"imagebench/internal/sweep"
)

// Op is the assignment-journal record type.
type Op string

const (
	// OpSpec opens a sweep: it records the sweep ID and the spec, so a
	// restarted coordinator can verify it is resuming the same grid.
	OpSpec Op = "spec"
	// OpAssign records a cell handed to a worker — the initial
	// partition, a post-failure reassignment, or the receiving side of
	// a steal.
	OpAssign Op = "assign"
	// OpSteal records an idle worker pulling a cell from a peer's
	// remaining queue; Worker is the thief, From the victim.
	OpSteal Op = "steal"
	// OpDone records a cell completed on a worker. Replay treats done
	// as terminal: the result is in the workers' caches.
	OpDone Op = "done"
	// OpFail records a cell-level failure (the worker answered, the
	// job failed). Failed cells are retried by a restarted coordinator,
	// mirroring the scheduler journal's failures-stay-pending policy.
	OpFail Op = "fail"
	// OpWorkerDown records a worker declared dead after a transport
	// failure; its remaining cells are reassigned.
	OpWorkerDown Op = "worker-down"
)

// Record is one assignment-journal line.
type Record struct {
	Time   string      `json:"time"`
	Op     Op          `json:"op"`
	Sweep  string      `json:"sweep,omitempty"`
	Spec   *sweep.Spec `json:"spec,omitempty"` // spec records only
	Key    string      `json:"key,omitempty"`
	Worker string      `json:"worker,omitempty"`
	From   string      `json:"from,omitempty"` // steal records only
	Error  string      `json:"error,omitempty"`
}

// Journal is the coordinator's append-only JSONL assignment journal.
type Journal struct {
	f *jsonl.File
}

// OpenJournal opens (creating if needed) the journal at path,
// repairing a torn trailing line left by a crash.
func OpenJournal(path string) (*Journal, error) {
	f, err := jsonl.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fed: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.f.Path() }

// Record appends one line via a single write.
func (j *Journal) Record(r Record) error {
	if r.Time == "" {
		r.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("fed: encode journal record: %w", err)
	}
	return j.f.Append(b)
}

// Close closes the underlying file; further Records fail.
func (j *Journal) Close() error { return j.f.Close() }

// ReadJournal parses every record in the journal at path. A missing
// file is an empty journal; a torn final line is skipped.
func ReadJournal(path string) ([]Record, error) {
	var recs []Record
	err := jsonl.Read(path, func(line []byte) bool {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Op == "" {
			return false
		}
		recs = append(recs, r)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("fed: read journal: %w", err)
	}
	return recs, nil
}

// DoneKeys replays records and returns the set of cell keys that
// reached OpDone for the given sweep — the cells a restarted
// coordinator must NOT resubmit. Assignments and failures without a
// later done stay pending (failures are retried, like the scheduler
// journal), so only done retires a key.
func DoneKeys(recs []Record, sweepID string) map[string]bool {
	done := make(map[string]bool)
	current := ""
	for _, r := range recs {
		if r.Op == OpSpec {
			current = r.Sweep
			continue
		}
		if r.Op == OpDone && current == sweepID && r.Key != "" {
			done[r.Key] = true
		}
	}
	return done
}
