// Package objstore implements an S3-like object store: a flat key space of
// immutable byte blobs with prefix listing. It stands in for the Amazon S3
// staging area the paper keeps its input data in.
//
// Each object carries two sizes: len(Data), the real bytes of the scaled
// synthetic dataset, and ModelBytes, the size the object's real-world
// counterpart would have. Engines charge virtual ingest time from
// ModelBytes while decoding the real payload.
package objstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Object is an immutable stored blob.
type Object struct {
	Key        string
	Data       []byte
	ModelBytes int64 // paper-scale size; 0 means len(Data)
}

// Size returns the paper-scale size of the object.
func (o Object) Size() int64 {
	if o.ModelBytes > 0 {
		return o.ModelBytes
	}
	return int64(len(o.Data))
}

// Store is an in-memory object store. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string]Object
}

// New returns an empty store.
func New() *Store {
	return &Store{objects: make(map[string]Object)}
}

// Put stores data under key with an explicit paper-scale size. A modelBytes
// of 0 means the real size. Existing objects are overwritten, as in S3.
func (s *Store) Put(key string, data []byte, modelBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[key] = Object{Key: key, Data: data, ModelBytes: modelBytes}
}

// Get returns the object at key.
func (s *Store) Get(key string) (Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[key]
	if !ok {
		return Object{}, fmt.Errorf("objstore: no such key %q", key)
	}
	return o, nil
}

// List returns the keys with the given prefix in lexical order. This is the
// operation Spark's master performs to enumerate input files before
// scheduling parallel downloads (Section 5.2.1 of the paper).
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delete removes key if present.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, key)
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// TotalModelBytes sums the paper-scale sizes of all objects under prefix.
func (s *Store) TotalModelBytes(prefix string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for k, o := range s.objects {
		if strings.HasPrefix(k, prefix) {
			n += o.Size()
		}
	}
	return n
}
