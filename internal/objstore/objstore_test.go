package objstore

import (
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	s := New()
	s.Put("a/b", []byte("hello"), 1000)
	o, err := s.Get("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(o.Data) != "hello" || o.Size() != 1000 {
		t.Errorf("object %+v", o)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("missing key accepted")
	}
	// Zero ModelBytes falls back to the real size.
	s.Put("c", []byte("xyz"), 0)
	if o, _ := s.Get("c"); o.Size() != 3 {
		t.Errorf("size %d", o.Size())
	}
}

func TestListSortedPrefix(t *testing.T) {
	s := New()
	for _, k := range []string{"n/2", "n/1", "a/3", "n/10"} {
		s.Put(k, nil, 1)
	}
	got := s.List("n/")
	want := []string{"n/1", "n/10", "n/2"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestTotalModelBytesAndDelete(t *testing.T) {
	s := New()
	s.Put("x/1", nil, 10)
	s.Put("x/2", nil, 20)
	s.Put("y/1", nil, 40)
	if n := s.TotalModelBytes("x/"); n != 30 {
		t.Errorf("total %d", n)
	}
	s.Delete("x/1")
	if s.Len() != 2 {
		t.Errorf("len %d", s.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%4))
			s.Put(key, []byte{byte(i)}, int64(i))
			s.Get(key)
			s.List("")
		}(i)
	}
	wg.Wait()
}
