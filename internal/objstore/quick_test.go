package objstore

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Put then Get round-trips data and model bytes for arbitrary
// keys and payloads.
func TestPutGetRoundTripProperty(t *testing.T) {
	f := func(key string, data []byte, model uint32) bool {
		if key == "" {
			return true // empty keys are not meaningful object names
		}
		s := New()
		s.Put(key, data, int64(model))
		obj, err := s.Get(key)
		if err != nil {
			return false
		}
		if obj.Key != key || len(obj.Data) != len(data) {
			return false
		}
		for i := range data {
			if obj.Data[i] != data[i] {
				return false
			}
		}
		wantSize := int64(model)
		if wantSize == 0 {
			wantSize = int64(len(data))
		}
		return obj.Size() == wantSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: List(prefix) returns exactly the stored keys with that
// prefix, sorted.
func TestListPrefixProperty(t *testing.T) {
	f := func(keys []string, prefix string) bool {
		s := New()
		want := map[string]bool{}
		for _, k := range keys {
			if k == "" {
				continue
			}
			s.Put(k, nil, 1)
			if strings.HasPrefix(k, prefix) {
				want[k] = true
			}
		}
		got := s.List(prefix)
		if !sort.StringsAreSorted(got) {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for _, k := range got {
			if !want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TotalModelBytes equals the sum of sizes under the prefix.
func TestTotalModelBytesProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := New()
		var want int64
		for i, sz := range sizes {
			key := "p/" + string(rune('a'+i%26)) + strings.Repeat("x", i%5)
			// Overwrites replace: track the final value per key.
			s.Put(key, nil, int64(sz)+1)
		}
		for _, k := range s.List("p/") {
			obj, err := s.Get(k)
			if err != nil {
				return false
			}
			want += obj.Size()
		}
		return s.TotalModelBytes("p/") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Delete removes exactly the named key.
func TestDeleteProperty(t *testing.T) {
	f := func(n uint8) bool {
		s := New()
		keys := make([]string, 0, int(n%20)+2)
		for i := 0; i < cap(keys); i++ {
			k := "k/" + strings.Repeat("a", i+1)
			s.Put(k, nil, 1)
			keys = append(keys, k)
		}
		s.Delete(keys[0])
		if _, err := s.Get(keys[0]); err == nil {
			return false
		}
		return s.Len() == len(keys)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
