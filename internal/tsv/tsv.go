// Package tsv implements the tab- and comma-separated volume codecs
// SciDB's boundaries impose: the stream() interface hands chunk data to
// external processes as TSV (Section 4.1: "assumes that TSV can be
// easily digested by the external process"), and the aio_input() ingest
// path parses CSV ("we first convert the NIfTI files into
// Comma-Separated Value files"). One line per cell: x, y, z
// coordinates and the value.
package tsv

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"imagebench/internal/volume"
)

// Encode serializes a volume as TSV: one "x\ty\tz\tvalue" line per cell.
func Encode(v *volume.V3) []byte {
	return encode(v, '\t')
}

// EncodeCSV serializes a volume as CSV: one "x,y,z,value" line per cell.
func EncodeCSV(v *volume.V3) []byte {
	return encode(v, ',')
}

func encode(v *volume.V3, sep byte) []byte {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				w.WriteString(strconv.Itoa(x))
				w.WriteByte(sep)
				w.WriteString(strconv.Itoa(y))
				w.WriteByte(sep)
				w.WriteString(strconv.Itoa(z))
				w.WriteByte(sep)
				w.WriteString(strconv.FormatFloat(v.At(x, y, z), 'g', -1, 64))
				w.WriteByte('\n')
			}
		}
	}
	w.Flush()
	return buf.Bytes()
}

// Decode parses a TSV volume stream back into a volume. The grid extent
// is inferred from the maximum coordinates; cells may appear in any
// order, and every cell of the grid must be present exactly once.
func Decode(data []byte) (*volume.V3, error) {
	return decode(data, "\t")
}

// DecodeCSV parses a CSV volume stream.
func DecodeCSV(data []byte) (*volume.V3, error) {
	return decode(data, ",")
}

func decode(data []byte, sep string) (*volume.V3, error) {
	type cell struct {
		x, y, z int
		v       float64
	}
	var cells []cell
	nx, ny, nz := 0, 0, 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, sep)
		if len(parts) != 4 {
			return nil, fmt.Errorf("tsv: line %d: %d fields, want 4", line, len(parts))
		}
		x, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("tsv: line %d: bad x %q", line, parts[0])
		}
		y, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("tsv: line %d: bad y %q", line, parts[1])
		}
		z, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("tsv: line %d: bad z %q", line, parts[2])
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("tsv: line %d: bad value %q", line, parts[3])
		}
		if x < 0 || y < 0 || z < 0 {
			return nil, fmt.Errorf("tsv: line %d: negative coordinate", line)
		}
		if x+1 > nx {
			nx = x + 1
		}
		if y+1 > ny {
			ny = y + 1
		}
		if z+1 > nz {
			nz = z + 1
		}
		cells = append(cells, cell{x, y, z, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsv: %w", err)
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("tsv: empty stream")
	}
	if len(cells) != nx*ny*nz {
		return nil, fmt.Errorf("tsv: %d cells for a %d×%d×%d grid", len(cells), nx, ny, nz)
	}
	out := volume.New3(nx, ny, nz)
	seen := make([]bool, nx*ny*nz)
	for _, c := range cells {
		idx := out.Idx(c.x, c.y, c.z)
		if seen[idx] {
			return nil, fmt.Errorf("tsv: duplicate cell (%d,%d,%d)", c.x, c.y, c.z)
		}
		seen[idx] = true
		out.Data[idx] = c.v
	}
	return out, nil
}

// Expansion reports the measured text-to-binary size ratio for a volume,
// the quantity the cost model's TSV/CSV taxes are calibrated against.
func Expansion(v *volume.V3) float64 {
	if v.Len() == 0 {
		return 0
	}
	return float64(len(Encode(v))) / float64(8*v.Len())
}
