package tsv

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"imagebench/internal/volume"
)

func randomVol(rng *rand.Rand, nx, ny, nz int) *volume.V3 {
	v := volume.New3(nx, ny, nz)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64() * 100
	}
	return v
}

func TestRoundTripTSV(t *testing.T) {
	v := randomVol(rand.New(rand.NewSource(1)), 5, 4, 3)
	got, err := Decode(Encode(v))
	if err != nil {
		t.Fatal(err)
	}
	if d := volume.MaxAbsDiff(got, v); d != 0 {
		t.Fatalf("TSV round trip differs by %g", d)
	}
}

func TestRoundTripCSV(t *testing.T) {
	v := randomVol(rand.New(rand.NewSource(2)), 3, 6, 2)
	got, err := DecodeCSV(EncodeCSV(v))
	if err != nil {
		t.Fatal(err)
	}
	if d := volume.MaxAbsDiff(got, v); d != 0 {
		t.Fatalf("CSV round trip differs by %g", d)
	}
}

func TestDecodeAnyOrder(t *testing.T) {
	// Cells may arrive in any order (SciDB chunk iteration order is the
	// engine's business, not the consumer's).
	lines := []string{
		"1\t0\t0\t2.5",
		"0\t0\t0\t1.5",
		"1\t1\t0\t4.5",
		"0\t1\t0\t3.5",
	}
	v, err := Decode([]byte(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v.NX != 2 || v.NY != 2 || v.NZ != 1 {
		t.Fatalf("shape %d×%d×%d", v.NX, v.NY, v.NZ)
	}
	if v.At(0, 0, 0) != 1.5 || v.At(1, 1, 0) != 4.5 {
		t.Fatalf("values: %v", v.Data)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"short line":     "1\t2\t3\n",
		"bad x":          "a\t0\t0\t1\n",
		"bad value":      "0\t0\t0\tx\n",
		"negative coord": "-1\t0\t0\t1\n",
		"duplicate":      "0\t0\t0\t1\n0\t0\t0\t2\n0\t1\t0\t1\n0\t1\t0\t2\n",
		"missing cell":   "0\t0\t0\t1\n5\t5\t5\t2\n",
	}
	for name, src := range cases {
		if _, err := Decode([]byte(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeSkipsBlankLines(t *testing.T) {
	v, err := Decode([]byte("\n0\t0\t0\t7\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v.At(0, 0, 0) != 7 {
		t.Fatalf("value %v", v.At(0, 0, 0))
	}
}

func TestExpansionRatio(t *testing.T) {
	// The cost model charges TSV at ~2.5× the binary size; the real codec
	// should land in that regime for realistic signal magnitudes.
	v := randomVol(rand.New(rand.NewSource(3)), 8, 8, 8)
	e := Expansion(v)
	if e < 1.5 || e > 4.5 {
		t.Errorf("TSV expansion %.2f outside the plausible [1.5, 4.5] band", e)
	}
}

// Property: TSV and CSV round trips are exact for arbitrary finite
// values on arbitrary small grids.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, dims [3]uint8) bool {
		nx, ny, nz := int(dims[0]%4)+1, int(dims[1]%4)+1, int(dims[2]%4)+1
		rng := rand.New(rand.NewSource(seed))
		v := volume.New3(nx, ny, nz)
		for i := range v.Data {
			v.Data[i] = math.Ldexp(rng.NormFloat64(), rng.Intn(60)-30)
		}
		t1, err := Decode(Encode(v))
		if err != nil || volume.MaxAbsDiff(t1, v) != 0 {
			return false
		}
		c1, err := DecodeCSV(EncodeCSV(v))
		return err == nil && volume.MaxAbsDiff(c1, v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes.
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		_, _ = DecodeCSV(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
