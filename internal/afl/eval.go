package afl

import (
	"fmt"
	"math"

	"imagebench/internal/cost"
	"imagebench/internal/scidb"
)

// Kernel is a registered per-chunk operator (the body of apply, window,
// or stream calls): the calibrated cost operation plus the real chunk
// transformation.
type Kernel struct {
	Op cost.Op
	F  func(scidb.Chunk) scidb.Chunk
}

// AggKernel is a registered grouped aggregate (the body of aggregate
// calls, e.g. avg over the volume dimension).
type AggKernel struct {
	Op cost.Op
	F  func(key string, group []scidb.Chunk) scidb.Chunk
}

// IterKernel is a registered iteration body for iterate calls (one
// sigma-clipping pass of the co-addition, for example).
type IterKernel struct {
	Op cost.Op
	F  func(iter int, chunks []scidb.Chunk) []scidb.Chunk
}

// Env binds the names an AFL program references: dimension extractors
// for filter predicates and kernels for the operator bodies.
type Env struct {
	dims    func(scidb.Chunk) map[string]float64
	aligned map[string]bool
	kernels map[string]Kernel
	aggs    map[string]AggKernel
	iters   map[string]IterKernel
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{
		aligned: make(map[string]bool),
		kernels: make(map[string]Kernel),
		aggs:    make(map[string]AggKernel),
		iters:   make(map[string]IterKernel),
	}
}

// DefineDims registers the dimension extractor filter predicates read:
// chunk → dimension values. alignedDims lists the dimensions the chunk
// layout is aligned with; a predicate touching any other dimension cuts
// across chunks and pays reorganization (Fig 12a, Section 5.2.2).
func (e *Env) DefineDims(f func(scidb.Chunk) map[string]float64, alignedDims ...string) {
	e.dims = f
	for _, d := range alignedDims {
		e.aligned[d] = true
	}
}

// DefineKernel registers a per-chunk kernel for apply/window/stream.
func (e *Env) DefineKernel(name string, op cost.Op, f func(scidb.Chunk) scidb.Chunk) {
	e.kernels[name] = Kernel{Op: op, F: f}
}

// DefineAggregate registers a grouped aggregate kernel.
func (e *Env) DefineAggregate(name string, op cost.Op, f func(key string, group []scidb.Chunk) scidb.Chunk) {
	e.aggs[name] = AggKernel{Op: op, F: f}
}

// DefineIteration registers an iteration body for iterate().
func (e *Env) DefineIteration(name string, op cost.Op, f func(iter int, chunks []scidb.Chunk) []scidb.Chunk) {
	e.iters[name] = IterKernel{Op: op, F: f}
}

// Result is the outcome of evaluating an AFL program: arrays named by
// store() calls, and the value of the final statement.
type Result struct {
	Stored map[string]*scidb.Array
	Last   *scidb.Array
}

// Run parses and evaluates an AFL program against eng.
func Run(eng *scidb.Engine, src string, env *Env) (*Result, error) {
	exprs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{eng: eng, env: env, res: &Result{Stored: make(map[string]*scidb.Array)}}
	for _, e := range exprs {
		a, err := ev.eval(e)
		if err != nil {
			return nil, err
		}
		ev.res.Last = a
	}
	return ev.res, nil
}

type evaluator struct {
	eng *scidb.Engine
	env *Env
	res *Result
}

func (ev *evaluator) eval(e Expr) (*scidb.Array, error) {
	call, ok := e.(*Call)
	if !ok {
		return nil, fmt.Errorf("afl: statement must be an operator call, got %s", e)
	}
	switch call.Fn {
	case "scan":
		return ev.scan(call)
	case "filter":
		return ev.filter(call)
	case "aggregate":
		return ev.aggregate(call)
	case "apply", "window":
		return ev.apply(call)
	case "stream":
		return ev.stream(call)
	case "iterate":
		return ev.iterate(call)
	case "store":
		return ev.store(call)
	}
	return nil, fmt.Errorf("afl: line %d: unknown operator %q", call.Line, call.Fn)
}

func (ev *evaluator) argc(c *Call, n int) error {
	if len(c.Args) != n {
		return fmt.Errorf("afl: line %d: %s takes %d arguments, got %d", c.Line, c.Fn, n, len(c.Args))
	}
	return nil
}

func (ev *evaluator) scan(c *Call) (*scidb.Array, error) {
	if err := ev.argc(c, 1); err != nil {
		return nil, err
	}
	id, ok := c.Args[0].(*Ident)
	if !ok {
		return nil, fmt.Errorf("afl: line %d: scan takes an array name", c.Line)
	}
	return ev.eng.Lookup(id.Name)
}

func (ev *evaluator) filter(c *Call) (*scidb.Array, error) {
	if err := ev.argc(c, 2); err != nil {
		return nil, err
	}
	in, err := ev.eval(c.Args[0])
	if err != nil {
		return nil, err
	}
	if ev.env.dims == nil {
		return nil, fmt.Errorf("afl: line %d: filter needs DefineDims", c.Line)
	}
	pred, dims, err := compilePred(c.Args[1])
	if err != nil {
		return nil, err
	}
	aligned := true
	for _, d := range dims {
		if !ev.env.aligned[d] {
			aligned = false
		}
	}
	return in.Filter("filter", aligned, func(ch scidb.Chunk) bool {
		return pred(ev.env.dims(ch))
	}), nil
}

// compilePred builds a predicate over dimension values and reports which
// dimensions it references.
func compilePred(e Expr) (func(map[string]float64) bool, []string, error) {
	switch x := e.(type) {
	case *And:
		l, dl, err := compilePred(x.L)
		if err != nil {
			return nil, nil, err
		}
		r, dr, err := compilePred(x.R)
		if err != nil {
			return nil, nil, err
		}
		return func(d map[string]float64) bool { return l(d) && r(d) }, append(dl, dr...), nil
	case *Cmp:
		lv, ld, err := compileOperand(x.Left)
		if err != nil {
			return nil, nil, err
		}
		rv, rd, err := compileOperand(x.Right)
		if err != nil {
			return nil, nil, err
		}
		op := x.Op
		return func(d map[string]float64) bool {
			a, aok := lv(d)
			b, bok := rv(d)
			if !aok || !bok {
				return false
			}
			switch op {
			case "=":
				return a == b
			case "<>":
				return a != b
			case "<":
				return a < b
			case "<=":
				return a <= b
			case ">":
				return a > b
			case ">=":
				return a >= b
			}
			return false
		}, append(ld, rd...), nil
	}
	return nil, nil, fmt.Errorf("afl: filter predicate must be a comparison, got %s", e)
}

func compileOperand(e Expr) (func(map[string]float64) (float64, bool), []string, error) {
	switch x := e.(type) {
	case *Ident:
		name := x.Name
		return func(d map[string]float64) (float64, bool) {
			v, ok := d[name]
			return v, ok
		}, []string{name}, nil
	case *Num:
		v := x.V
		return func(map[string]float64) (float64, bool) { return v, true }, nil, nil
	}
	return nil, nil, fmt.Errorf("afl: predicate operand must be a dimension or number, got %s", e)
}

func (ev *evaluator) aggregate(c *Call) (*scidb.Array, error) {
	if len(c.Args) < 2 {
		return nil, fmt.Errorf("afl: line %d: aggregate(expr, kernel(...), dims...)", c.Line)
	}
	in, err := ev.eval(c.Args[0])
	if err != nil {
		return nil, err
	}
	kcall, ok := c.Args[1].(*Call)
	if !ok {
		return nil, fmt.Errorf("afl: line %d: aggregate kernel must be a call like avg(value)", c.Line)
	}
	agg, ok := ev.env.aggs[kcall.Fn]
	if !ok {
		return nil, fmt.Errorf("afl: line %d: unknown aggregate %q (DefineAggregate it first)", c.Line, kcall.Fn)
	}
	var groupDims []string
	for _, a := range c.Args[2:] {
		id, ok := a.(*Ident)
		if !ok {
			return nil, fmt.Errorf("afl: line %d: aggregate grouping must be dimension names", c.Line)
		}
		groupDims = append(groupDims, id.Name)
	}
	if len(groupDims) > 0 && ev.env.dims == nil {
		return nil, fmt.Errorf("afl: line %d: grouped aggregate needs DefineDims", c.Line)
	}
	groupKey := func(ch scidb.Chunk) string {
		if len(groupDims) == 0 {
			return "all"
		}
		d := ev.env.dims(ch)
		key := ""
		for _, g := range groupDims {
			if v, ok := d[g]; ok && v == math.Trunc(v) {
				key += fmt.Sprintf("%s=%d/", g, int64(v))
			} else {
				key += fmt.Sprintf("%s=%g/", g, d[g])
			}
		}
		return key
	}
	return in.Aggregate("aggregate:"+kcall.Fn, agg.Op, groupKey, agg.F), nil
}

func (ev *evaluator) apply(c *Call) (*scidb.Array, error) {
	if err := ev.argc(c, 2); err != nil {
		return nil, err
	}
	in, err := ev.eval(c.Args[0])
	if err != nil {
		return nil, err
	}
	id, ok := c.Args[1].(*Ident)
	if !ok {
		return nil, fmt.Errorf("afl: line %d: %s kernel must be a name", c.Line, c.Fn)
	}
	k, ok := ev.env.kernels[id.Name]
	if !ok {
		return nil, fmt.Errorf("afl: line %d: unknown kernel %q (DefineKernel it first)", c.Line, id.Name)
	}
	return in.MapChunks(c.Fn+":"+id.Name, k.Op, k.F), nil
}

func (ev *evaluator) stream(c *Call) (*scidb.Array, error) {
	if err := ev.argc(c, 2); err != nil {
		return nil, err
	}
	in, err := ev.eval(c.Args[0])
	if err != nil {
		return nil, err
	}
	id, ok := c.Args[1].(*Ident)
	if !ok {
		return nil, fmt.Errorf("afl: line %d: stream kernel must be a name", c.Line)
	}
	k, ok := ev.env.kernels[id.Name]
	if !ok {
		return nil, fmt.Errorf("afl: line %d: unknown kernel %q (DefineKernel it first)", c.Line, id.Name)
	}
	return in.Stream("stream:"+id.Name, k.Op, k.F), nil
}

func (ev *evaluator) iterate(c *Call) (*scidb.Array, error) {
	if err := ev.argc(c, 3); err != nil {
		return nil, err
	}
	in, err := ev.eval(c.Args[0])
	if err != nil {
		return nil, err
	}
	n, ok := c.Args[1].(*Num)
	if !ok || n.V != math.Trunc(n.V) || n.V < 1 {
		return nil, fmt.Errorf("afl: line %d: iterate count must be a positive integer", c.Line)
	}
	id, ok := c.Args[2].(*Ident)
	if !ok {
		return nil, fmt.Errorf("afl: line %d: iterate body must be a name", c.Line)
	}
	k, ok := ev.env.iters[id.Name]
	if !ok {
		return nil, fmt.Errorf("afl: line %d: unknown iteration %q (DefineIteration it first)", c.Line, id.Name)
	}
	return in.IterativeAQL("iterate:"+id.Name, int(n.V), k.Op, k.F), nil
}

func (ev *evaluator) store(c *Call) (*scidb.Array, error) {
	if err := ev.argc(c, 2); err != nil {
		return nil, err
	}
	in, err := ev.eval(c.Args[0])
	if err != nil {
		return nil, err
	}
	id, ok := c.Args[1].(*Ident)
	if !ok {
		return nil, fmt.Errorf("afl: line %d: store target must be a name", c.Line)
	}
	ev.eng.Register(id.Name, in)
	ev.res.Stored[id.Name] = in
	return in, nil
}
