// Package afl implements a frontend for AFL, SciDB's Array Functional
// Language. The paper's SciDB implementations are written in AQL/AFL
// (Section 4.1: Step 1N in AFL via SciDB-py, co-addition in 180 lines of
// AQL); this package parses the functional operator-composition syntax
// and evaluates it against the internal/scidb engine:
//
//	scan(A)                      → stored-array lookup
//	filter(E, pred)              → native selection; predicates over
//	                               chunk-aligned dimensions drop whole
//	                               chunks, others pay reorganization
//	                               (Fig 12a)
//	aggregate(E, k(...), d, …)   → native grouped aggregate over the
//	                               listed dimensions (Fig 12b)
//	apply(E, k) / window(E, k)   → native per-chunk operator
//	stream(E, k)                 → external-process UDF via TSV (Fig 12c)
//	iterate(E, n, k)             → n AQL iterations, each materialized
//	                               (Fig 12d)
//	store(E, Name)               → program output
//
// Statements are separated by semicolons and evaluated in order. Kernel
// names bind to registered Go functions carrying both the real
// computation and the calibrated cost operation, mirroring how AFL
// operators name built-in C++ kernels.
package afl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a parsed AFL expression.
type Expr interface {
	fmt.Stringer
	expr()
}

// Call is an operator application: fn(args...).
type Call struct {
	Line int
	Fn   string
	Args []Expr
}

func (c *Call) expr() {}
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// Ident is a bare identifier: an array name, dimension, or kernel name.
type Ident struct {
	Line int
	Name string
}

func (i *Ident) expr()          {}
func (i *Ident) String() string { return i.Name }

// Num is a numeric literal.
type Num struct {
	Line int
	V    float64
}

func (n *Num) expr()          {}
func (n *Num) String() string { return strconv.FormatFloat(n.V, 'g', -1, 64) }

// Str is a quoted string literal.
type Str struct {
	Line int
	S    string
}

func (s *Str) expr()          {}
func (s *Str) String() string { return fmt.Sprintf("%q", s.S) }

// Cmp is a comparison inside a filter predicate: left op right with
// op ∈ {=, <>, <, <=, >, >=}.
type Cmp struct {
	Left  Expr
	Op    string
	Right Expr
}

func (c *Cmp) expr()          {}
func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right) }

// And is a conjunction of two predicates.
type And struct {
	L, R Expr
}

func (a *And) expr()          {}
func (a *And) String() string { return fmt.Sprintf("%s and %s", a.L, a.R) }

// --- lexer ---------------------------------------------------------------

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tLParen
	tRParen
	tComma
	tSemi
	tOp // = <> < <= > >=
	tAnd
)

type tok struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]tok, error) {
	var out []tok
	line := 1
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '-' && i+1 < len(rs) && rs[i+1] == '-':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_') {
				i++
			}
			text := string(rs[start:i])
			if strings.EqualFold(text, "and") {
				out = append(out, tok{tAnd, "and", line})
			} else {
				out = append(out, tok{tIdent, text, line})
			}
		case unicode.IsDigit(r):
			start := i
			for i < len(rs) && (unicode.IsDigit(rs[i]) || rs[i] == '.' || rs[i] == 'e' || rs[i] == '-' && i > start && (rs[i-1] == 'e')) {
				i++
			}
			out = append(out, tok{tNum, string(rs[start:i]), line})
		case r == '\'' || r == '"':
			quote := r
			i++
			start := i
			for i < len(rs) && rs[i] != quote {
				if rs[i] == '\n' {
					return nil, fmt.Errorf("afl: line %d: unterminated string", line)
				}
				i++
			}
			if i >= len(rs) {
				return nil, fmt.Errorf("afl: line %d: unterminated string", line)
			}
			out = append(out, tok{tStr, string(rs[start:i]), line})
			i++
		case r == '(':
			out = append(out, tok{tLParen, "(", line})
			i++
		case r == ')':
			out = append(out, tok{tRParen, ")", line})
			i++
		case r == ',':
			out = append(out, tok{tComma, ",", line})
			i++
		case r == ';':
			out = append(out, tok{tSemi, ";", line})
			i++
		case r == '=':
			out = append(out, tok{tOp, "=", line})
			i++
		case r == '<':
			switch {
			case i+1 < len(rs) && rs[i+1] == '>':
				out = append(out, tok{tOp, "<>", line})
				i += 2
			case i+1 < len(rs) && rs[i+1] == '=':
				out = append(out, tok{tOp, "<=", line})
				i += 2
			default:
				out = append(out, tok{tOp, "<", line})
				i++
			}
		case r == '>':
			if i+1 < len(rs) && rs[i+1] == '=' {
				out = append(out, tok{tOp, ">=", line})
				i += 2
			} else {
				out = append(out, tok{tOp, ">", line})
				i++
			}
		default:
			return nil, fmt.Errorf("afl: line %d: unexpected character %q", line, r)
		}
	}
	out = append(out, tok{tEOF, "", line})
	return out, nil
}

// --- parser --------------------------------------------------------------

// Parse parses a semicolon-separated sequence of AFL expressions.
func Parse(src string) ([]Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Expr
	for p.peek().kind != tEOF {
		e, err := p.pred()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		switch p.peek().kind {
		case tSemi:
			p.next()
		case tEOF:
		default:
			return nil, p.errf(p.peek(), "expected ';' between statements, found %q", p.peek().text)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("afl: empty program")
	}
	return out, nil
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok { return p.toks[p.pos] }

func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t tok, format string, args ...any) error {
	return fmt.Errorf("afl: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// pred := cmp ('and' cmp)*
func (p *parser) pred() (Expr, error) {
	left, err := p.cmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tAnd {
		p.next()
		right, err := p.cmp()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

// cmp := primary (op primary)?
func (p *parser) cmp() (Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tOp {
		op := p.next()
		right, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &Cmp{Left: left, Op: op.text, Right: right}, nil
	}
	return left, nil
}

// primary := call | ident | number | string
func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tIdent:
		if p.peek().kind != tLParen {
			return &Ident{Line: t.line, Name: t.text}, nil
		}
		p.next() // (
		call := &Call{Line: t.line, Fn: strings.ToLower(t.text)}
		if p.peek().kind == tRParen {
			p.next()
			return call, nil
		}
		for {
			a, err := p.pred()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			switch p.peek().kind {
			case tComma:
				p.next()
				continue
			case tRParen:
				p.next()
				return call, nil
			default:
				return nil, p.errf(p.peek(), "expected ',' or ')', found %q", p.peek().text)
			}
		}
	case tNum:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		return &Num{Line: t.line, V: v}, nil
	case tStr:
		return &Str{Line: t.line, S: t.text}, nil
	}
	return nil, p.errf(t, "expected expression, found %q", t.text)
}
