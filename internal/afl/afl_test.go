package afl

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/scidb"
)

// --- parser --------------------------------------------------------------

func TestParseNestedCalls(t *testing.T) {
	exprs, err := Parse(`store(aggregate(filter(scan(images), vol < 18), avg(value), subj), mean_b0)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 1 {
		t.Fatalf("got %d statements, want 1", len(exprs))
	}
	store, ok := exprs[0].(*Call)
	if !ok || store.Fn != "store" || len(store.Args) != 2 {
		t.Fatalf("outer call: %v", exprs[0])
	}
	agg := store.Args[0].(*Call)
	if agg.Fn != "aggregate" || len(agg.Args) != 3 {
		t.Fatalf("aggregate: %v", agg)
	}
	filt := agg.Args[0].(*Call)
	if filt.Fn != "filter" {
		t.Fatalf("filter: %v", filt)
	}
	cmp, ok := filt.Args[1].(*Cmp)
	if !ok || cmp.Op != "<" {
		t.Fatalf("predicate: %v", filt.Args[1])
	}
}

func TestParseMultiStatement(t *testing.T) {
	exprs, err := Parse(`
		-- a comment
		store(scan(a), b);
		store(apply(scan(b), clean), c)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 2 {
		t.Fatalf("got %d statements, want 2", len(exprs))
	}
}

func TestParseConjunction(t *testing.T) {
	exprs, err := Parse(`filter(scan(a), vol >= 3 and vol <= 7 and subj = 2)`)
	if err != nil {
		t.Fatal(err)
	}
	filt := exprs[0].(*Call)
	and, ok := filt.Args[1].(*And)
	if !ok {
		t.Fatalf("want And, got %T", filt.Args[1])
	}
	if _, ok := and.L.(*And); !ok {
		t.Fatalf("left-nested conjunction expected, got %T", and.L)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"scan(a",
		"scan(a))",
		"scan(a) scan(b)",
		"'open",
		"filter(scan(a), x !! 3)",
		"scan(,)",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseStringStability(t *testing.T) {
	src := `store(window(filter(scan(a), x < 3.5 and y = 2), smooth), out)`
	e1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Parse(e1[0].String())
	if err != nil {
		t.Fatalf("reparse %q: %v", e1[0], err)
	}
	if e1[0].String() != e2[0].String() {
		t.Errorf("unstable print: %q vs %q", e1[0], e2[0])
	}
}

func TestLexNoPanic(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- evaluation ----------------------------------------------------------

// volChunk is the decoded value of a test chunk: one image volume.
type volChunk struct {
	subj, vol int
	pixels    []float64
}

// testEngine ingests nSubj×nVols chunks via the aio path and returns the
// engine plus a ready environment with dims (subj aligned, vol not —
// mirroring the paper: chunking is aligned with subjects, the b0 filter
// cuts along the volume dimension).
func testEngine(t *testing.T, nSubj, nVols int) (*scidb.Engine, *Env) {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cl := cluster.New(cfg)
	eng := scidb.New(cl, objstore.New(), nil, scidb.DefaultConfig())
	var chunks []scidb.Chunk
	for s := 0; s < nSubj; s++ {
		for v := 0; v < nVols; v++ {
			chunks = append(chunks, scidb.Chunk{
				Coords: fmt.Sprintf("s%02d/v%03d", s, v),
				Value:  volChunk{subj: s, vol: v, pixels: []float64{float64(v), float64(v + 1)}},
				Size:   1 << 20,
			})
		}
	}
	if _, err := eng.IngestAio("images", chunks, 2.5); err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.DefineDims(func(c scidb.Chunk) map[string]float64 {
		v := c.Value.(volChunk)
		return map[string]float64{"subj": float64(v.subj), "vol": float64(v.vol)}
	}, "subj")
	return eng, env
}

func TestRunFilterAndAggregate(t *testing.T) {
	const nSubj, nVols, nB0 = 2, 8, 3
	eng, env := testEngine(t, nSubj, nVols)
	env.DefineAggregate("avg", cost.Mean, func(key string, group []scidb.Chunk) scidb.Chunk {
		var sum float64
		var n int
		for _, c := range group {
			for _, p := range c.Value.(volChunk).pixels {
				sum += p
				n++
			}
		}
		return scidb.Chunk{Coords: key, Value: sum / float64(n), Size: group[0].Size}
	})

	res, err := Run(eng, fmt.Sprintf(
		`store(aggregate(filter(scan(images), vol < %d), avg(value), subj), mean_b0)`, nB0), env)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Stored["mean_b0"]
	if out == nil {
		t.Fatal("mean_b0 not stored")
	}
	if out.NChunks() != nSubj {
		t.Fatalf("got %d result chunks, want %d", out.NChunks(), nSubj)
	}
	// mean of pixels {0,1, 1,2, 2,3} = 1.5 for vols 0..2.
	for _, c := range out.Chunks {
		if got := c.Value.(float64); got != 1.5 {
			t.Errorf("chunk %s mean = %v, want 1.5", c.Coords, got)
		}
	}
	// The stored array is registered: a later program can scan it.
	if _, err := eng.Lookup("mean_b0"); err != nil {
		t.Errorf("stored array not in catalog: %v", err)
	}
}

func TestMisalignedFilterCostsMore(t *testing.T) {
	// The same selection along an aligned vs a misaligned dimension:
	// misaligned pays chunk reorganization (Fig 12a).
	run := func(pred string) float64 {
		eng, env := testEngine(t, 4, 6)
		res, err := Run(eng, fmt.Sprintf(`filter(scan(images), %s)`, pred), env)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Last.Done().End)
	}
	aligned := run("subj < 2")
	misaligned := run("vol < 3")
	if misaligned <= aligned {
		t.Errorf("misaligned filter (%v) should cost more than aligned (%v)", misaligned, aligned)
	}
}

func TestRunApplyAndStream(t *testing.T) {
	eng, env := testEngine(t, 1, 4)
	double := func(c scidb.Chunk) scidb.Chunk {
		v := c.Value.(volChunk)
		out := make([]float64, len(v.pixels))
		for i, p := range v.pixels {
			out[i] = 2 * p
		}
		return scidb.Chunk{Coords: c.Coords, Value: volChunk{v.subj, v.vol, out}, Size: c.Size}
	}
	env.DefineKernel("double", cost.Denoise, double)

	applyRes, err := Run(eng, `apply(scan(images), double)`, env)
	if err != nil {
		t.Fatal(err)
	}
	streamRes, err := Run(eng, `stream(scan(images), double)`, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{applyRes, streamRes} {
		if res.Last.NChunks() != 4 {
			t.Fatalf("got %d chunks, want 4", res.Last.NChunks())
		}
		c0 := res.Last.Chunks[0].Value.(volChunk)
		if c0.pixels[1] != 2 {
			t.Errorf("kernel did not run: %v", c0.pixels)
		}
	}
}

func TestStreamSlowerThanApply(t *testing.T) {
	// stream() pays TSV encode/decode and the process boundary both ways
	// on top of the same computation (Fig 12c).
	run := func(op string) float64 {
		eng, env := testEngine(t, 2, 4)
		env.DefineKernel("id", cost.Denoise, func(c scidb.Chunk) scidb.Chunk { return c })
		res, err := Run(eng, fmt.Sprintf(`%s(scan(images), id)`, op), env)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Last.Done().End)
	}
	if s, a := run("stream"), run("apply"); s <= a {
		t.Errorf("stream (%v) should be slower than apply (%v)", s, a)
	}
}

func TestRunIterate(t *testing.T) {
	eng, env := testEngine(t, 1, 3)
	var iterations []int
	env.DefineIteration("clip", cost.CoaddIter, func(it int, chunks []scidb.Chunk) []scidb.Chunk {
		iterations = append(iterations, it)
		return chunks
	})
	res, err := Run(eng, `store(iterate(scan(images), 2, clip), coadd)`, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(iterations) != 2 || iterations[0] != 0 || iterations[1] != 1 {
		t.Fatalf("iterations ran %v, want [0 1]", iterations)
	}
	if res.Stored["coadd"].NChunks() != 3 {
		t.Fatalf("coadd has %d chunks, want 3", res.Stored["coadd"].NChunks())
	}
}

func TestRunErrors(t *testing.T) {
	eng, env := testEngine(t, 1, 2)
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown array", `scan(nope)`, "unknown array"},
		{"unknown op", `frobnicate(scan(images))`, "unknown operator"},
		{"unknown kernel", `apply(scan(images), nope)`, "unknown kernel"},
		{"unknown agg", `aggregate(scan(images), nope(v), subj)`, "unknown aggregate"},
		{"unknown iter", `iterate(scan(images), 2, nope)`, "unknown iteration"},
		{"bad iterate count", `iterate(scan(images), 0, nope)`, "positive integer"},
		{"bad store target", `store(scan(images), 3)`, "store target"},
		{"bare ident", `images`, "operator call"},
		{"scan argc", `scan(a, b)`, "takes 1 arguments"},
		{"bad predicate", `filter(scan(images), double(vol))`, "comparison"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(eng, tc.src, env)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestFilterWithoutDims(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	eng := scidb.New(cluster.New(cfg), objstore.New(), nil, scidb.DefaultConfig())
	if _, err := eng.IngestAio("a", []scidb.Chunk{{Coords: "c0", Size: 1}}, 2.5); err != nil {
		t.Fatal(err)
	}
	_, err := Run(eng, `filter(scan(a), x < 1)`, NewEnv())
	if err == nil || !strings.Contains(err.Error(), "DefineDims") {
		t.Fatalf("expected DefineDims error, got %v", err)
	}
}
