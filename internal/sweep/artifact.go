package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"imagebench/internal/core"
	"imagebench/internal/results"
	"imagebench/internal/runner"
)

// ArtifactCell is one cell of the combined sweep artifact.
type ArtifactCell struct {
	Experiment string      `json:"experiment"`
	Profile    string      `json:"profile"`
	Key        string      `json:"key"`
	Status     string      `json:"status"`
	CacheHit   bool        `json:"cacheHit,omitempty"`
	Error      string      `json:"error,omitempty"`
	ElapsedSec float64     `json:"elapsedSec"`
	Table      *core.Table `json:"table,omitempty"`
}

// artifactDoc is the materialized shape of the combined artifact; the
// streaming writer reproduces json.MarshalIndent of exactly this value
// byte for byte (see TestArtifactWriterMatchesMarshal).
type artifactDoc struct {
	Cells   []ArtifactCell `json:"cells"`
	ID      string         `json:"id"`
	Spec    Spec           `json:"spec"`
	Summary Info           `json:"summary"`
}

// ArtifactWriter streams the combined sweep artifact to an io.Writer
// one cell at a time. The document's top-level keys sort as cells, id,
// spec, summary — the cells array comes first — so completed cells can
// be appended as they finish and the summary written last, without
// ever materializing every cell's table in memory. The byte output is
// identical to marshaling the whole document at once with
// json.MarshalIndent, so downstream consumers cannot tell which path
// produced a given artifact.
type ArtifactWriter struct {
	w     io.Writer
	cells int
	err   error
}

// NewArtifactWriter starts an artifact on w.
func NewArtifactWriter(w io.Writer) *ArtifactWriter {
	return &ArtifactWriter{w: w}
}

func (aw *ArtifactWriter) write(s string) {
	if aw.err == nil {
		_, aw.err = io.WriteString(aw.w, s)
	}
}

// Cell appends one cell. Cells must arrive in final document order;
// the caller may release the cell's table as soon as Cell returns.
func (aw *ArtifactWriter) Cell(c ArtifactCell) error {
	if aw.cells == 0 {
		aw.write("{\n  \"cells\": [\n")
	} else {
		aw.write(",\n")
	}
	// Indent with the element's prefix so the embedded bytes match what
	// MarshalIndent of the enclosing document would emit at this depth.
	b, err := json.MarshalIndent(c, "    ", "  ")
	if err != nil && aw.err == nil {
		aw.err = err
	}
	aw.write("    ")
	if aw.err == nil {
		_, aw.err = aw.w.Write(b)
	}
	aw.cells++
	return aw.err
}

// Finish writes the trailing id, spec, and summary and closes the
// document. No methods may be called afterwards.
func (aw *ArtifactWriter) Finish(id string, spec Spec, summary Info) error {
	summary.Cells = nil
	if aw.cells == 0 {
		aw.write("{\n  \"cells\": [],\n")
	} else {
		aw.write("\n  ],\n")
	}
	for _, kv := range []struct {
		key string
		val any
	}{{"id", id}, {"spec", spec}, {"summary", summary}} {
		b, err := json.MarshalIndent(kv.val, "  ", "  ")
		if err != nil && aw.err == nil {
			aw.err = err
		}
		aw.write("  \"" + kv.key + "\": ")
		if aw.err == nil {
			_, aw.err = aw.w.Write(b)
		}
		if kv.key != "summary" {
			aw.write(",\n")
		}
	}
	aw.write("\n}\n")
	return aw.err
}

// StreamArtifact writes the sweep's combined artifact to w as the
// sweep runs: it waits for each cell in document order, appends the
// cell with its table the moment it is terminal, releases the cell's
// retained table, and finishes with the aggregate summary once every
// cell is written. At most the scheduler's in-flight results are live
// at any instant — the artifact's memory footprint is O(workers), not
// O(cells). It returns the sweep's final Info (summary fields only).
//
// Releasing means a cell's Result is no longer available from its job
// after its line is written (it remains available from the cache when
// one is attached), so StreamArtifact is for batch consumers that own
// the sweep, like the CLI.
func (s *Sweep) StreamArtifact(ctx context.Context, w io.Writer, cache *results.Cache) (Info, error) {
	aw := NewArtifactWriter(w)
	for _, c := range s.Cells {
		if c.job != nil {
			select {
			case <-c.job.Done():
			case <-ctx.Done():
				return Info{}, ctx.Err()
			}
		}
		ci := s.cellInfo(c)
		ac := ArtifactCell{
			Experiment: c.Experiment, Profile: c.Profile.Name, Key: c.Key,
			Status: string(ci.Status), CacheHit: ci.CacheHit,
			Error: ci.Error, ElapsedSec: ci.ElapsedSec,
		}
		if tab, ok := s.Result(c, cache); ok {
			ac.Table = tab
		}
		err := aw.Cell(ac)
		if c.job != nil {
			c.job.ReleaseTable()
		}
		if err != nil {
			return Info{}, fmt.Errorf("sweep: writing artifact cell %s: %w", c.Key, err)
		}
	}
	final := s.Info(false)
	if err := aw.Finish(s.ID, s.Spec, final); err != nil {
		return Info{}, fmt.Errorf("sweep: writing artifact summary: %w", err)
	}
	return final, nil
}

// WriteCanonicalArtifact writes the deterministic form of the combined
// artifact for an expanded cell set: the same document shape as
// StreamArtifact, with every volatile field zeroed — elapsed seconds,
// cache-hit provenance, creation time — so two runs of the same grid
// produce byte-identical artifacts no matter where or when the cells
// executed. This is the federation acceptance check: a sweep scattered
// across workers (some of them killed mid-flight) must reduce to
// exactly the bytes a single-node run produces.
//
// lookup supplies each cell's table; a cell whose table cannot be
// produced is recorded as failed. Cells are written in the given order,
// which Expand makes deterministic for a given spec.
func WriteCanonicalArtifact(w io.Writer, id string, spec Spec, cells []*Cell, lookup func(*Cell) *core.Table) error {
	aw := NewArtifactWriter(w)
	sum := Info{ID: id, Total: len(cells)}
	for _, c := range cells {
		ac := ArtifactCell{
			Experiment: c.Experiment, Profile: c.Profile.Name, Key: c.Key,
			Status: string(runner.StatusDone),
		}
		if tab := lookup(c); tab != nil {
			ac.Table = tab
			sum.Done++
		} else {
			ac.Status = string(runner.StatusFailed)
			ac.Error = "no result table"
			sum.Failed++
		}
		if err := aw.Cell(ac); err != nil {
			return fmt.Errorf("sweep: writing canonical artifact cell %s: %w", c.Key, err)
		}
	}
	if err := aw.Finish(id, spec, sum); err != nil {
		return fmt.Errorf("sweep: writing canonical artifact summary: %w", err)
	}
	return nil
}

// cellInfo snapshots one cell (the per-cell body of Info).
func (s *Sweep) cellInfo(c *Cell) CellInfo {
	ci := CellInfo{Experiment: c.Experiment, Profile: c.Profile.Name, Key: c.Key}
	switch {
	case c.job != nil:
		js := c.job.Snapshot()
		ci.Status, ci.CacheHit, ci.Error, ci.ElapsedSec = js.Status, js.CacheHit, js.Error, js.ElapsedSec
		ci.Unsupported = js.Unsupported
	case c.cached:
		// Completed before this process started; rehydrated from the
		// result cache during recovery, nothing re-executed.
		ci.Status, ci.CacheHit = runner.StatusDone, true
	default:
		// Neither a job nor a cache entry backs this cell: it was lost in
		// the recovery window between the rehydration scan and resubmit
		// (the cache entry evicted in between). Nothing will ever change
		// its state, so it is terminal — reporting it Queued would make
		// Info.Finished() false forever while Wait, which has nothing to
		// wait on, returns "finished". Recovery repairs such cells
		// (Manager.repairOrphans); this is the consistent account of one
		// that slipped through.
		ci.Status = runner.StatusFailed
		ci.Error = "cell lost during recovery (result evicted before resubmission); resubmit the sweep"
	}
	return ci
}
