package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/results"
	"imagebench/internal/runner"
)

// The tests register three synthetic experiments (IDs "zz-sw-a/b/c") so
// grids stay fast and executions are countable; grid expansion over the
// real registry is covered through core.ExpandIDs's own tests.

var (
	runsA, runsB, runsC atomic.Int64
	registerO           sync.Once
)

func registerFakes() {
	registerO.Do(func() {
		mk := func(counter *atomic.Int64) func(context.Context, core.Profile) (*core.Table, error) {
			return func(ctx context.Context, p core.Profile) (*core.Table, error) {
				counter.Add(1)
				time.Sleep(5 * time.Millisecond)
				t := core.NewTable("fake", "virtual s", []string{"r"}, []string{"c"})
				t.Set("r", "c", float64(p.ClusterNodes[0]))
				return t, nil
			}
		}
		for id, c := range map[string]*atomic.Int64{"zz-sw-a": &runsA, "zz-sw-b": &runsB, "zz-sw-c": &runsC} {
			core.Register(&core.Experiment{
				ID: id, Title: "fake " + id, Paper: "n/a",
				Run: mk(c), Check: func(*core.Table) error { return nil },
			})
		}
	})
}

func resetRuns() { runsA.Store(0); runsB.Store(0); runsC.Store(0) }

func totalRuns() int64 { return runsA.Load() + runsB.Load() + runsC.Load() }

func newTestManager(t *testing.T, cacheDir, sweepDir string) (*Manager, *runner.Scheduler, *results.Cache) {
	t.Helper()
	registerFakes()
	cache, err := results.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	sched := runner.New(runner.Options{Workers: 2, Cache: cache})
	t.Cleanup(sched.Close)
	m, err := NewManager(sched, cache, sweepDir, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	return m, sched, cache
}

func TestExpandGrid(t *testing.T) {
	registerFakes()
	spec := Spec{
		Experiments: []string{"zz-sw-*"},
		Profiles:    []string{"quick"},
		Overrides:   []core.Overrides{{ClusterNodes: []int{4}}, {ClusterNodes: []int{8}}},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 { // 3 experiments × 1 profile × 2 overrides
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	// Deterministic order: sorted by experiment, then spec axis order.
	for i := 1; i < len(cells); i++ {
		a, b := cells[i-1], cells[i]
		if a.Experiment > b.Experiment || (a.Experiment == b.Experiment && a.axis > b.axis) {
			t.Errorf("cells out of order at %d: %s/%s then %s/%s", i, a.Experiment, a.Profile.Name, b.Experiment, b.Profile.Name)
		}
	}
	// Keys are unique and derived profiles are named after the override.
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key] {
			t.Errorf("duplicate cell key %s", c.Key)
		}
		seen[c.Key] = true
		if !strings.HasPrefix(c.Profile.Name, "quick+nodes=") {
			t.Errorf("cell profile name = %q", c.Profile.Name)
		}
	}
	// The same grid written differently has the same identity.
	same, err := Expand(Spec{
		Experiments: []string{"zz-sw-a", "zz-sw-b", "zz-sw-c", "zz-sw-a"},
		Overrides:   []core.Overrides{{ClusterNodes: []int{4}}, {ClusterNodes: []int{8}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id(cells) != id(same) {
		t.Error("equivalent specs expanded to different sweep IDs")
	}
}

func TestExpandDefaultsAndErrors(t *testing.T) {
	registerFakes()
	cells, err := Expand(Spec{Experiments: []string{"zz-sw-a"}})
	if err != nil || len(cells) != 1 || cells[0].Profile.Name != "quick" {
		t.Fatalf("default expansion = %v cells, err %v", len(cells), err)
	}
	for _, bad := range []Spec{
		{},
		{Experiments: []string{"no-such-*"}},
		{Experiments: []string{"zz-sw-a"}, Profiles: []string{"huge"}},
		{Experiments: []string{"zz-sw-a"}, Overrides: []core.Overrides{{ClusterNodes: []int{-1}}}},
	} {
		if _, err := Expand(bad); err == nil {
			t.Errorf("spec %+v expanded without error", bad)
		}
	}
}

func TestSweepCompletesAndAggregates(t *testing.T) {
	m, _, _ := newTestManager(t, "", "")
	resetRuns()

	s, existing, err := m.Submit(Spec{
		Experiments: []string{"zz-sw-*"},
		Overrides:   []core.Overrides{{ClusterNodes: []int{4}}, {ClusterNodes: []int{8}}},
	})
	if err != nil || existing {
		t.Fatalf("submit: existing=%v err=%v", existing, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	info := s.Info(true)
	if !info.Finished() || info.Done != 6 || info.Failed != 0 || info.Total != 6 {
		t.Fatalf("info = %+v, want 6/6 done", info)
	}
	if len(info.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(info.Cells))
	}
	if got := totalRuns(); got != 6 {
		t.Errorf("executed %d cells, want 6", got)
	}
	// Each cell's table reflects its override (the fake emits the node count).
	cell, ok := s.CellAt("zz-sw-b", "quick+nodes=8")
	if !ok {
		t.Fatal("missing cell zz-sw-b/quick+nodes=8")
	}
	tab, ok := s.Result(cell, nil)
	if !ok || tab.Get("r", "c") != 8 {
		t.Errorf("cell table = %v, %v; want node count 8", tab, ok)
	}
	rows, cols := s.GridLabels()
	if len(rows) != 3 || len(cols) != 2 {
		t.Errorf("grid = %v × %v, want 3 × 2", rows, cols)
	}

	// Resubmitting the same grid is idempotent and runs nothing new.
	s2, existing, err := m.Submit(Spec{Experiments: []string{"zz-sw-a", "zz-sw-b", "zz-sw-c"},
		Overrides: []core.Overrides{{ClusterNodes: []int{4}}, {ClusterNodes: []int{8}}}})
	if err != nil || !existing || s2.ID != s.ID {
		t.Fatalf("resubmit: %v existing=%v err=%v", s2, existing, err)
	}
	if got := totalRuns(); got != 6 {
		t.Errorf("idempotent resubmit re-executed: %d runs", got)
	}
	if m.Len() != 1 {
		t.Errorf("manager holds %d sweeps, want 1", m.Len())
	}
}

// TestRecoverRehydratesCompletedCells is the restart contract at the
// engine level: a second manager over the same cache and sweep dirs
// adopts the sweep, serves completed cells from the cache without
// re-executing them, and resubmits only the missing ones.
func TestRecoverRehydratesCompletedCells(t *testing.T) {
	dir := t.TempDir()
	cacheDir, sweepDir := filepath.Join(dir, "cache"), filepath.Join(dir, "sweeps")

	m1, _, cache1 := newTestManager(t, cacheDir, sweepDir)
	resetRuns()
	s1, _, err := m1.Submit(Spec{Experiments: []string{"zz-sw-a", "zz-sw-b"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Simulate a partially-complete sweep on disk: drop one cell's
	// cached result, as if the crash happened before it ran.
	dropped := s1.Cells[1]
	if err := os.Remove(filepath.Join(cacheDir, dropped.Key+".json")); err != nil {
		t.Fatal(err)
	}
	_ = cache1 // first process's memory view is discarded with it

	// "Restart": fresh scheduler, cache, manager over the same dirs.
	m2, _, _ := newTestManager(t, cacheDir, sweepDir)
	resetRuns()
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d sweeps, want 1", n)
	}
	s2, ok := m2.Get(s1.ID)
	if !ok {
		t.Fatalf("sweep %s not adopted", s1.ID)
	}
	if err := s2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	info := s2.Info(true)
	if !info.Finished() || info.Done != 2 {
		t.Fatalf("recovered info = %+v, want 2/2 done", info)
	}
	if got := totalRuns(); got != 1 {
		t.Errorf("recovery executed %d cells, want exactly the 1 dropped cell", got)
	}
	// The surviving cell reads as a cache-served completion...
	for _, ci := range info.Cells {
		if ci.Key != dropped.Key && !ci.CacheHit {
			t.Errorf("surviving cell %s/%s not marked cache-served: %+v", ci.Experiment, ci.Profile, ci)
		}
	}
	// ...and its table is retrievable through the recovered sweep.
	kept := s2.Cells[0]
	if kept.Key == dropped.Key {
		kept = s2.Cells[1]
	}
	if tab, ok := s2.Result(kept, m2.cache); !ok || tab == nil {
		t.Error("rehydrated cell's table not retrievable")
	}

	// Recover again: idempotent, nothing new adopted or run.
	if n, err := m2.Recover(); err != nil || n != 0 {
		t.Errorf("second recover adopted %d sweeps, err %v; want 0 (already known)", n, err)
	}
	if m2.Len() != 1 {
		t.Errorf("manager holds %d sweeps after double recovery", m2.Len())
	}
}

func TestManagerListOrder(t *testing.T) {
	m, _, _ := newTestManager(t, "", "")
	a, _, err := m.Submit(Spec{Experiments: []string{"zz-sw-a"}})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Submit(Spec{Experiments: []string{"zz-sw-b"}})
	if err != nil {
		t.Fatal(err)
	}
	list := m.List()
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Errorf("list = %v", list)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	a.Wait(ctx)
	b.Wait(ctx)
}

// TestExpandKeepsAxisOrder pins the grid-axis contract: columns follow
// the spec's override order, not lexicographic profile names (where
// "nodes=16" would sort before "nodes=4").
func TestExpandKeepsAxisOrder(t *testing.T) {
	registerFakes()
	cells, err := Expand(Spec{
		Experiments: []string{"zz-sw-a"},
		Overrides:   []core.Overrides{{ClusterNodes: []int{16}}, {ClusterNodes: []int{4}}, {ClusterNodes: []int{8}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"quick+nodes=16", "quick+nodes=4", "quick+nodes=8"}
	for i, c := range cells {
		if c.Profile.Name != want[i] {
			t.Errorf("cell %d profile = %s, want %s", i, c.Profile.Name, want[i])
		}
	}
	// A reordered axis list is a different presentation of the same
	// grid: same sweep ID (content address over sorted keys).
	reordered, err := Expand(Spec{
		Experiments: []string{"zz-sw-a"},
		Overrides:   []core.Overrides{{ClusterNodes: []int{4}}, {ClusterNodes: []int{8}}, {ClusterNodes: []int{16}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id(cells) != id(reordered) {
		t.Error("axis order changed the sweep's content address")
	}
}

// TestManagerEvictsFinishedSweeps pins the retention bound: the oldest
// finished sweeps are dropped past maxSweeps while their results stay
// in the cache.
func TestManagerEvictsFinishedSweeps(t *testing.T) {
	m, _, cache := newTestManager(t, "", "")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var first *Sweep
	for i := 0; i < maxSweeps+3; i++ {
		s, _, err := m.Submit(Spec{
			Experiments: []string{"zz-sw-a"},
			Overrides:   []core.Overrides{{ClusterNodes: []int{i + 1}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = s
		}
	}
	if m.Len() > maxSweeps {
		t.Errorf("manager retains %d sweeps, want <= %d", m.Len(), maxSweeps)
	}
	if _, ok := m.Get(first.ID); ok {
		t.Error("oldest finished sweep survived past maxSweeps")
	}
	// The evicted sweep's cell result is still served from the cache.
	if !cache.Contains(first.Cells[0].Key) {
		t.Error("evicted sweep's result missing from cache")
	}
}
