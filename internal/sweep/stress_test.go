package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/runner"
)

// TestConcurrentCellsBitIdentical is the pooled-buffer aliasing stress
// at the sweep level (run under -race in CI): cells executing
// concurrently on a multi-worker scheduler share the process-wide
// scratch arena, and every cell's table must still be byte-identical
// to the one a serial run produces — no cell may ever observe another
// cell's recycled scratch data.
func TestConcurrentCellsBitIdentical(t *testing.T) {
	spec := Spec{
		Experiments: []string{"fig10f"},
		Profiles:    []string{"quick"},
	}
	for i := 0; i < 4; i++ {
		spec.Overrides = append(spec.Overrides, core.Overrides{ClusterNodes: []int{i + 1}})
	}
	run := func(workers int) map[string][]byte {
		sched := runner.New(runner.Options{Workers: workers})
		defer sched.Close()
		mgr, err := NewManager(sched, nil, "", time.Now)
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := mgr.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		final, err := s.StreamArtifact(context.Background(), &buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.Done != len(spec.Overrides) {
			t.Fatalf("workers=%d: %d/%d cells done, %d failed", workers, final.Done, len(spec.Overrides), final.Failed)
		}
		var doc artifactDoc
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(doc.Cells))
		for _, c := range doc.Cells {
			tab, err := json.Marshal(c.Table)
			if err != nil {
				t.Fatal(err)
			}
			out[c.Key] = tab
		}
		return out
	}
	serial := run(1)
	concurrent := run(4)
	if len(serial) != len(concurrent) {
		t.Fatalf("cell sets differ: %d serial, %d concurrent", len(serial), len(concurrent))
	}
	for key, want := range serial {
		got, ok := concurrent[key]
		if !ok {
			t.Fatalf("cell %s missing from concurrent run", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cell %s differs between serial and concurrent runs:\nserial:     %s\nconcurrent: %s", key, want, got)
		}
	}
}
