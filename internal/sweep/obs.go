package sweep

import (
	"strconv"

	"imagebench/internal/obs"
)

// watchSweep ends the sweep's root span once every cell job terminates,
// stamping the final cell-state tally. It is a no-op without a tracer
// (nil root span).
func watchSweep(root *obs.Span, s *Sweep) {
	if root == nil {
		return
	}
	go func() {
		for _, c := range s.Cells {
			if c.job != nil {
				<-c.job.Done()
			}
		}
		info := s.Info(false)
		root.SetAttr("done", itoa(info.Done))
		root.SetAttr("failed", itoa(info.Failed))
		root.SetAttr("unsupported", itoa(info.Unsupported))
		root.End()
	}()
}

func itoa(n int) string { return strconv.Itoa(n) }

// RegisterMetrics publishes the manager's sweep and cell-state gauges
// on r. Cell states are computed on scrape by walking the retained
// sweeps — cheap at the manager's bounded index size, and always
// consistent with /v1/sweeps.
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	r.NewGaugeFunc("imagebench_sweeps",
		"Sweeps retained in the manager's index.",
		func() float64 { return float64(m.Len()) })
	state := func(pick func(Info) int) func() float64 {
		return func() float64 {
			total := 0
			for _, s := range m.List() {
				total += pick(s.Info(false))
			}
			return float64(total)
		}
	}
	r.NewGaugeFunc("imagebench_sweep_cells_pending",
		"Sweep cells queued or running.",
		state(func(i Info) int { return i.Queued + i.Running }))
	r.NewGaugeFunc("imagebench_sweep_cells_done",
		"Sweep cells completed successfully.",
		state(func(i Info) int { return i.Done }))
	r.NewGaugeFunc("imagebench_sweep_cells_failed",
		"Sweep cells that failed.",
		state(func(i Info) int { return i.Failed }))
	r.NewGaugeFunc("imagebench_sweep_cells_unsupported",
		"Sweep cells not applicable under their engine filter.",
		state(func(i Info) int { return i.Unsupported }))
}
