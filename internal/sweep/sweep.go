// Package sweep is the parameter-grid batch engine of the experiment
// service: it expands a declarative spec — experiment IDs or globs ×
// profiles × overrides (cluster sizes, subject counts, visit counts) —
// into a deduplicated set of grid cells, submits every cell through the
// shared worker-pool scheduler (internal/runner), and aggregates
// per-cell status and results. This is the paper's own methodology as a
// service: every system × workload × cluster-size combination, re-run
// under many configurations, with already-computed cells answered from
// the content-addressed result cache instead of re-simulated.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/results"
	"imagebench/internal/runner"
)

// Spec declares a sweep grid. Experiments are exact IDs, path globs
// ("fig10*"), or "all". Profiles are built-in profile names (default
// ["quick"]). Each override set is one grid axis point applied to each
// profile; an empty list means one axis point with no overrides.
type Spec struct {
	Experiments []string         `json:"experiments"`
	Profiles    []string         `json:"profiles,omitempty"`
	Overrides   []core.Overrides `json:"overrides,omitempty"`
}

// Cell is one grid point: an experiment under a fully-derived profile.
// Exactly one of job/cached backs a cell's status: job when the cell
// was submitted in this process, cached when a recovered sweep found
// the cell's result already in the cache (so no job was minted and
// nothing re-executed).
type Cell struct {
	Experiment string
	Profile    core.Profile
	Key        string

	// Base and Override record how Profile was derived — the base
	// profile's name and the applied override set — so a federation
	// coordinator can re-derive the exact profile on a remote worker
	// through POST /v1/jobs, where derived profiles have no standalone
	// name to submit by.
	Base     string
	Override core.Overrides

	axis   int // position of (profile, override) in the spec's axis order
	job    *runner.Job
	cached bool
}

// CellInfo is a cell's point-in-time state, shaped for JSON.
type CellInfo struct {
	Experiment string        `json:"experiment"`
	Profile    string        `json:"profile"`
	Key        string        `json:"key"`
	Status     runner.Status `json:"status"`
	CacheHit   bool          `json:"cacheHit,omitempty"`
	Error      string        `json:"error,omitempty"`
	// Unsupported marks a cell whose experiment is not applicable under
	// the cell's engine filter (engine.ErrUnsupported) — expected when a
	// systems axis crosses per-engine experiments, so it is counted
	// apart from real failures.
	Unsupported bool    `json:"unsupported,omitempty"`
	ElapsedSec  float64 `json:"elapsedSec"`
}

// Info aggregates a sweep's progress.
type Info struct {
	ID      string `json:"id"`
	Created string `json:"created"`
	Total   int    `json:"total"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	// Unsupported counts not-applicable cells (see CellInfo.Unsupported);
	// they are terminal but excluded from Failed.
	Unsupported int        `json:"unsupported,omitempty"`
	Hits        int        `json:"cacheHits"`
	Cells       []CellInfo `json:"cells,omitempty"`
}

// Finished reports whether every cell is terminal.
func (i Info) Finished() bool { return i.Done+i.Failed+i.Unsupported == i.Total }

// Sweep is one submitted grid. Cells are immutable after construction;
// their status lives in the underlying jobs.
type Sweep struct {
	ID      string
	Spec    Spec
	Cells   []*Cell
	created time.Time
	index   map[string]*Cell // (experiment, profile name) → cell, for CellAt
}

// newSweep assembles a Sweep over its expanded cells, building the
// coordinate index that makes CellAt O(1) — grid rendering looks up
// rows×cols cells, and a linear scan made that O(rows×cols×cells).
func newSweep(id string, spec Spec, cells []*Cell, created time.Time) *Sweep {
	s := &Sweep{ID: id, Spec: spec, Cells: cells, created: created,
		index: make(map[string]*Cell, len(cells))}
	for _, c := range cells {
		s.index[cellCoord(c.Experiment, c.Profile.Name)] = c
	}
	return s
}

// cellCoord is the CellAt index key. Experiment IDs and profile names
// never contain NUL, so the pair is unambiguous.
func cellCoord(experiment, profileName string) string {
	return experiment + "\x00" + profileName
}

// Expand resolves the spec into its deduplicated, deterministically
// ordered cell set (no jobs attached). Two textually different specs
// that denote the same grid expand to the same cells, and therefore the
// same sweep ID.
func Expand(spec Spec) ([]*Cell, error) {
	ids, err := core.ExpandIDs(spec.Experiments)
	if err != nil {
		return nil, err
	}
	profiles := spec.Profiles
	if len(profiles) == 0 {
		profiles = []string{"quick"}
	}
	overrides := spec.Overrides
	if len(overrides) == 0 {
		overrides = []core.Overrides{{}}
	}
	for _, o := range overrides {
		if err := o.Validate(); err != nil {
			return nil, err
		}
	}
	var cells []*Cell
	seen := make(map[string]bool)
	axis := 0
	for _, name := range profiles {
		base, err := core.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		for _, o := range overrides {
			p := base.Apply(o)
			for _, id := range ids {
				key := results.Key(id, p)
				if seen[key] {
					continue
				}
				seen[key] = true
				cells = append(cells, &Cell{Experiment: id, Profile: p, Key: key, Base: name, Override: o, axis: axis})
			}
			axis++
		}
	}
	// Rows sort by experiment; columns keep the spec's axis order, so
	// "-nodes 4,8,16" renders 4, 8, 16 — not the lexicographic 16, 4, 8.
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Experiment != cells[j].Experiment {
			return cells[i].Experiment < cells[j].Experiment
		}
		return cells[i].axis < cells[j].axis
	})
	return cells, nil
}

// GridID exposes the content-addressed sweep ID for an expanded cell
// set. The federation coordinator derives its sweep IDs through this,
// so a grid has the same ID whether it runs single-node or federated —
// which is what lets GET /v1/sweeps/{id} mean the same thing on a
// worker daemon and on a coordinator.
func GridID(cells []*Cell) string { return id(cells) }

// id derives the sweep's content address from its sorted cell keys:
// the same grid always gets the same ID — across processes, restarts,
// and axis orderings — which is what lets a restarted daemon re-adopt
// its persisted sweeps and makes POST /v1/sweeps idempotent.
func id(cells []*Cell) string {
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.Key
	}
	sort.Strings(keys)
	h := sha256.New()
	h.Write([]byte("imagebench/sweep/v1"))
	for _, k := range keys {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return "sw-" + hex.EncodeToString(h.Sum(nil))[:12]
}

// Info returns the sweep's aggregate progress; withCells includes the
// per-cell states.
func (s *Sweep) Info(withCells bool) Info {
	info := Info{
		ID:      s.ID,
		Created: s.created.UTC().Format(time.RFC3339Nano),
		Total:   len(s.Cells),
	}
	for _, c := range s.Cells {
		ci := s.cellInfo(c)
		switch {
		case ci.Status == runner.StatusDone:
			info.Done++
			if ci.CacheHit {
				info.Hits++
			}
		case ci.Status == runner.StatusFailed && ci.Unsupported:
			info.Unsupported++
		case ci.Status == runner.StatusFailed:
			info.Failed++
		case ci.Status == runner.StatusRunning:
			info.Running++
		default:
			info.Queued++
		}
		if withCells {
			info.Cells = append(info.Cells, ci)
		}
	}
	return info
}

// Wait blocks until every cell is terminal or ctx is canceled. Cell
// failures are not an error here — they are visible in Info — so a
// sweep with failed cells still "finishes".
func (s *Sweep) Wait(ctx context.Context) error {
	for _, c := range s.Cells {
		if c.job == nil {
			// Rehydrated (cached) or orphaned — both terminal in Info
			// (done / failed respectively), so skipping keeps Wait and
			// Info.Finished consistent: whenever Wait returns without a
			// context error, Finished() is true.
			continue
		}
		select {
		case <-c.job.Done():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Result returns one cell's table: from its job if it ran here, from
// the cache if it was rehydrated or the job's table was released after
// streaming. The boolean is false while the cell is still pending or
// if it failed.
func (s *Sweep) Result(c *Cell, cache *results.Cache) (*core.Table, bool) {
	if c.job != nil {
		tab, err := c.job.Result()
		if err != nil {
			return nil, false
		}
		if tab != nil {
			return tab, true
		}
		// Done but released (ReleaseTable): fall through to the cache.
	} else if !c.cached {
		return nil, false
	}
	if cache != nil {
		if e, ok := cache.Peek(c.Key); ok {
			return e.Table, true
		}
	}
	return nil, false
}

// GridLabels returns the sweep's axes for rendering: sorted experiment
// IDs (rows) and derived profile names in first-appearance order
// (columns).
func (s *Sweep) GridLabels() (rows, cols []string) {
	seenRow := map[string]bool{}
	seenCol := map[string]bool{}
	for _, c := range s.Cells {
		if !seenRow[c.Experiment] {
			seenRow[c.Experiment] = true
			rows = append(rows, c.Experiment)
		}
		if !seenCol[c.Profile.Name] {
			seenCol[c.Profile.Name] = true
			cols = append(cols, c.Profile.Name)
		}
	}
	sort.Strings(rows)
	return rows, cols
}

// CellAt returns the cell for (experiment, profile name), if any. On a
// Sweep built by newSweep this is one map lookup; the scan fallback
// covers zero-value Sweeps constructed in tests.
func (s *Sweep) CellAt(experiment, profileName string) (*Cell, bool) {
	if s.index != nil {
		c, ok := s.index[cellCoord(experiment, profileName)]
		return c, ok
	}
	for _, c := range s.Cells {
		if c.Experiment == experiment && c.Profile.Name == profileName {
			return c, true
		}
	}
	return nil, false
}
