package sweep

import (
	"testing"
	"time"

	"imagebench/internal/core"
)

// thousandCellSweep expands a ~1k-cell grid (3 experiments × 334
// override points) without running anything — CellAt performance is
// about lookup, not execution.
func thousandCellSweep(b *testing.B) *Sweep {
	b.Helper()
	registerFakes()
	overrides := make([]core.Overrides, 334)
	for i := range overrides {
		overrides[i] = core.Overrides{ClusterNodes: []int{i + 1}}
	}
	spec := Spec{Experiments: []string{"zz-sw-*"}, Overrides: overrides}
	cells, err := Expand(spec)
	if err != nil {
		b.Fatal(err)
	}
	if len(cells) != 1002 {
		b.Fatalf("expanded %d cells, want 1002", len(cells))
	}
	return newSweep(id(cells), spec, cells, time.Now())
}

// BenchmarkCellAt measures the indexed lookup; BenchmarkCellAtScan is
// the pre-fix linear scan over the same grid for comparison. Grid
// rendering calls CellAt once per (row, col), so on a 1k-cell sweep
// the scan made rendering O(cells²).
func BenchmarkCellAt(b *testing.B) {
	s := thousandCellSweep(b)
	benchmarkLookup(b, s.CellAt)
}

func BenchmarkCellAtScan(b *testing.B) {
	s := thousandCellSweep(b)
	scan := func(experiment, profileName string) (*Cell, bool) {
		for _, c := range s.Cells {
			if c.Experiment == experiment && c.Profile.Name == profileName {
				return c, true
			}
		}
		return nil, false
	}
	benchmarkLookup(b, scan)
}

func benchmarkLookup(b *testing.B, lookup func(experiment, profileName string) (*Cell, bool)) {
	// Probe the full spread of the grid, including its far corner, the
	// scan's worst case.
	probes := [][2]string{
		{"zz-sw-a", "quick+nodes=1"},
		{"zz-sw-b", "quick+nodes=167"},
		{"zz-sw-c", "quick+nodes=334"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		if _, ok := lookup(p[0], p[1]); !ok {
			b.Fatalf("cell %s/%s not found", p[0], p[1])
		}
	}
}

// TestCellAtIndexMatchesScan cross-checks the index against the linear
// scan on every coordinate of a multi-axis grid, plus misses.
func TestCellAtIndexMatchesScan(t *testing.T) {
	registerFakes()
	overrides := make([]core.Overrides, 12)
	for i := range overrides {
		overrides[i] = core.Overrides{ClusterNodes: []int{i + 1}}
	}
	spec := Spec{Experiments: []string{"zz-sw-*"}, Overrides: overrides}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := newSweep(id(cells), spec, cells, time.Now())
	for _, c := range cells {
		got, ok := s.CellAt(c.Experiment, c.Profile.Name)
		if !ok || got != c {
			t.Fatalf("CellAt(%s, %s) = %v, %v; want the expanded cell", c.Experiment, c.Profile.Name, got, ok)
		}
	}
	for _, probe := range [][2]string{
		{"zz-sw-a", "quick+nodes=99"},
		{"zz-no-such", "quick+nodes=1"},
		{"", ""},
	} {
		if _, ok := s.CellAt(probe[0], probe[1]); ok {
			t.Errorf("CellAt(%q, %q) found a cell, want miss", probe[0], probe[1])
		}
	}
}
