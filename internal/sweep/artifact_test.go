package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/runner"
)

// artifactFixture builds a representative cell set: a done cell with a
// table (including a NaN cell, which marshals as null), a cache hit, a
// failed cell with an error, and an unsupported one.
func artifactFixture() []ArtifactCell {
	tab := core.NewTable("t", "s", []string{"r"}, []string{"a", "b"})
	tab.Set("r", "a", 1.25)
	tab.Set("r", "b", math.NaN())
	return []ArtifactCell{
		{Experiment: "fig10f", Profile: "quick", Key: "k0", Status: "done", ElapsedSec: 0.25, Table: tab},
		{Experiment: "fig10f", Profile: "quick", Key: "k1", Status: "done", CacheHit: true, ElapsedSec: 0},
		{Experiment: "fig11", Profile: "quick", Key: "k2", Status: "failed", Error: "boom", ElapsedSec: 1.5},
	}
}

// TestArtifactWriterMatchesMarshal is the byte-identity contract: the
// streaming writer's output must equal json.MarshalIndent of the
// materialized document plus a trailing newline — the exact bytes the
// pre-streaming CLI wrote — for both populated and empty cell sets.
func TestArtifactWriterMatchesMarshal(t *testing.T) {
	spec := Spec{Experiments: []string{"fig10f", "fig11"}, Profiles: []string{"quick"}}
	summary := Info{ID: "sw1", Created: "2026-01-01T00:00:00Z", Total: 3, Done: 2, Failed: 1, Hits: 1}
	for _, tc := range []struct {
		name  string
		cells []ArtifactCell
	}{
		{"populated", artifactFixture()},
		{"empty", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			aw := NewArtifactWriter(&buf)
			for _, c := range tc.cells {
				if err := aw.Cell(c); err != nil {
					t.Fatal(err)
				}
			}
			if err := aw.Finish("sw1", spec, summary); err != nil {
				t.Fatal(err)
			}
			doc := artifactDoc{Cells: tc.cells, ID: "sw1", Spec: spec, Summary: summary}
			if doc.Cells == nil {
				doc.Cells = []ArtifactCell{}
			}
			want, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n')
			if got := buf.Bytes(); !bytes.Equal(got, want) {
				t.Fatalf("streamed artifact differs from one-shot marshal:\n--- streamed ---\n%s\n--- marshal ---\n%s", got, want)
			}
		})
	}
}

// TestArtifactWriterFinishScrubsSummaryCells guards the summary shape:
// the per-cell list is redundant with the cells array and must not be
// duplicated into the summary object.
func TestArtifactWriterFinishScrubsSummaryCells(t *testing.T) {
	var buf bytes.Buffer
	aw := NewArtifactWriter(&buf)
	sum := Info{ID: "x", Total: 1, Cells: []CellInfo{{Key: "k"}}}
	if err := aw.Finish("x", Spec{Experiments: []string{"e"}}, sum); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"cells"`+`: [`+"\n    {") {
		t.Fatalf("summary leaked its cells list:\n%s", buf.String())
	}
	var doc artifactDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Summary.Cells != nil {
		t.Fatal("summary.cells must be omitted from the artifact")
	}
}

// TestStreamArtifactReleasesTables runs a real sweep end to end and
// checks the O(workers) contract: the streamed artifact carries every
// cell's table, and after streaming the jobs no longer retain them.
func TestStreamArtifactReleasesTables(t *testing.T) {
	sched := runner.New(runner.Options{Workers: 1})
	defer sched.Close()
	mgr, err := NewManager(sched, nil, "", time.Now)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Experiments: []string{"fig10a", "fig10b"},
		Profiles:    []string{"quick"},
	}
	s, _, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	final, err := s.StreamArtifact(context.Background(), &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Done != 2 || final.Failed != 0 {
		t.Fatalf("sweep summary = %+v, want 2 done", final)
	}
	var doc artifactDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("streamed artifact is not valid JSON: %v", err)
	}
	if len(doc.Cells) != 2 {
		t.Fatalf("artifact has %d cells, want 2", len(doc.Cells))
	}
	for _, c := range doc.Cells {
		if c.Table == nil {
			t.Fatalf("cell %s streamed without its table", c.Key)
		}
	}
	// With no cache attached, a released job has nothing to serve.
	for _, c := range s.Cells {
		if _, ok := s.Result(c, nil); ok {
			t.Fatalf("cell %s still retains its table after streaming", c.Key)
		}
	}
}
