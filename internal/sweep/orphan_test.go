package sweep

import (
	"context"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/runner"
)

// Regression tests for the Wait/Finished divergence: a cell with
// neither a job nor a cache entry — the recovery race where the cache
// entry is evicted between the rehydration scan and the resubmit loop
// — made Wait return "finished" while Info counted the cell Queued
// forever.

// orphanedSweep constructs the raced state directly: an adopted sweep
// whose cells were all skipped by the rehydration scan (cached results
// "existed") and whose backing entries then vanished before any job
// was minted. Every cell ends up with job == nil and cached == false.
func orphanedSweep(t *testing.T) *Sweep {
	t.Helper()
	registerFakes()
	spec := Spec{
		Experiments: []string{"zz-sw-a", "zz-sw-b"},
		Overrides:   []core.Overrides{{ClusterNodes: []int{4}}},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	return newSweep(id(cells), spec, cells, time.Now())
}

// TestWaitFinishedConsistentOnOrphanCells is the divergence itself.
// Pre-fix: Wait returned immediately (nothing to block on) while
// Info.Finished() stayed false forever — the sweep was simultaneously
// "finished" and "never finishing" depending on which API you asked.
func TestWaitFinishedConsistentOnOrphanCells(t *testing.T) {
	s := orphanedSweep(t)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	info := s.Info(true)
	if !info.Finished() {
		t.Fatalf("Wait returned but Finished() is false: %+v", info)
	}
	// The orphans are accounted terminal-failed with a diagnosis, not
	// silently queued.
	if info.Failed != info.Total || info.Queued != 0 {
		t.Errorf("orphan accounting = %+v, want all %d cells failed", info, info.Total)
	}
	for _, ci := range info.Cells {
		if ci.Status != runner.StatusFailed || ci.Error == "" {
			t.Errorf("orphan cell = %+v, want failed with an explanatory error", ci)
		}
	}
}

// TestRepairOrphansResubmits proves recovery repairs the raced state:
// every orphan cell gets a job (or a fresh cache entry) and the sweep
// then genuinely finishes with done cells.
func TestRepairOrphansResubmits(t *testing.T) {
	s := orphanedSweep(t)
	m, _, _ := newTestManager(t, "", "")

	if err := m.repairOrphans(s); err != nil {
		t.Fatalf("repairOrphans: %v", err)
	}
	for _, c := range s.Cells {
		if c.job == nil && !c.cached {
			t.Fatalf("cell %s/%s still orphaned after repair", c.Experiment, c.Profile.Name)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	info := s.Info(false)
	if !info.Finished() || info.Done != info.Total {
		t.Errorf("after repair: %+v, want all %d cells done", info, info.Total)
	}

	// Repair is idempotent: a second pass touches nothing.
	if err := m.repairOrphans(s); err != nil {
		t.Fatal(err)
	}
	if got := s.Info(false); got.Done != info.Total {
		t.Errorf("second repair changed state: %+v", got)
	}
}
