package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"imagebench/internal/fsatomic"
	"imagebench/internal/obs"
	"imagebench/internal/results"
	"imagebench/internal/runner"
)

// Manager owns the live sweeps of one process and, when given a
// directory, persists each sweep's spec so a restarted daemon can
// re-adopt it: completed cells rehydrate from the result cache (no
// re-execution), unfinished cells resubmit through the scheduler.
//
// maxSweeps bounds the retained index: once exceeded, the oldest
// fully-finished sweeps are evicted. Their specs stay on disk (a
// re-POST of the same grid re-adopts them via the cache) and their
// cells' tables stay in the result cache; what eviction releases is
// the in-memory Sweep whose job pointers pin every cell's table.
type Manager struct {
	sched *runner.Scheduler
	cache *results.Cache // may be nil (no rehydration, every cell re-runs)
	dir   string         // "" = memory only

	now func() time.Time // injected wall clock (timestamps are metadata, not identity)

	mu          sync.Mutex
	sweeps      map[string]*Sweep
	order       []*Sweep
	unpersisted map[string]bool // sweeps whose spec write failed; retried on resubmit
}

// NewManager returns a manager submitting through sched and consulting
// cache; dir, when non-empty, is created and used to persist sweep
// specs (one JSON file per sweep). now supplies creation timestamps
// (callers outside this package pass time.Now): sweep identity is
// content-addressed, so the clock is injected metadata and this
// package itself never reads wall time. A nil now stamps the zero
// time.
func NewManager(sched *runner.Scheduler, cache *results.Cache, dir string, now func() time.Time) (*Manager, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: create %s: %w", dir, err)
		}
	}
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}
	return &Manager{
		sched: sched, cache: cache, dir: dir, now: now,
		sweeps:      make(map[string]*Sweep),
		unpersisted: make(map[string]bool),
	}, nil
}

// persisted is the on-disk form of a sweep: the spec plus identity.
// Cell status is deliberately not persisted — it is derivable from the
// scheduler's journal and the result cache, which are the durable
// sources of truth.
type persisted struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Spec    Spec      `json:"spec"`
}

// Submit expands the spec, registers the sweep, and schedules every
// cell. Submitting a spec that denotes an already-known grid returns
// the existing sweep (existing=true) without re-submitting anything:
// the sweep ID is a content address, so POST /v1/sweeps is idempotent.
//
// If the sweep runs but its spec cannot be persisted (disk full), both
// the sweep AND an error are returned: the grid is executing and
// queryable, it just will not survive a restart. Callers must check
// err before assuming durability, and s before assuming failure.
func (m *Manager) Submit(spec Spec) (s *Sweep, existing bool, err error) {
	cells, err := Expand(spec)
	if err != nil {
		return nil, false, err
	}
	sid := id(cells)

	m.mu.Lock()
	if s, ok := m.sweeps[sid]; ok {
		m.mu.Unlock()
		return s, true, m.ensurePersisted(s)
	}
	m.mu.Unlock()

	// The sweep root span parents every cell's job span; it ends (in a
	// watcher goroutine) when the last cell terminates.
	sctx, root := obs.StartSpan(m.sched.ObsContext(), "sweep")
	root.SetAttr("sweep", sid)
	root.SetAttr("cells", fmt.Sprintf("%d", len(cells)))

	// Submit outside the lock: Submit can block briefly and other
	// sweeps' status reads should not stall behind it. A concurrent
	// identical Submit is resolved below; its duplicate jobs are
	// deduplicated by the scheduler anyway.
	for i, c := range cells {
		j, err := m.sched.SubmitWithContext(sctx, c.Experiment, c.Profile)
		if err != nil {
			root.SetAttr("error", err.Error())
			root.End()
			// Not transactional: the first i cells are already running.
			// That work is not lost — they land in the cache, and a
			// retry of the same spec joins them in flight — but until
			// then they are visible only under /v1/jobs.
			return nil, false, fmt.Errorf(
				"sweep: submit cell %s/%s (%d of %d cells already scheduled; retrying the same spec adopts them): %w",
				c.Experiment, c.Profile.Name, i, len(cells), err)
		}
		c.job = j
	}
	s = newSweep(sid, spec, cells, m.now())

	watchSweep(root, s)

	m.mu.Lock()
	if prior, ok := m.sweeps[sid]; ok {
		m.mu.Unlock()
		return prior, true, m.ensurePersisted(prior)
	}
	m.sweeps[sid] = s
	m.order = append(m.order, s)
	// Marked unpersisted in the same critical section that registers
	// the sweep: a concurrent identical Submit that finds it via the
	// early return must not report durable success before the spec file
	// actually exists.
	if m.dir != "" {
		m.unpersisted[sid] = true
	}
	m.evictLocked()
	m.mu.Unlock()

	if err := m.persist(s); err != nil {
		return s, false, fmt.Errorf("sweep %s is running but not persisted: %w", s.ID, err)
	}
	m.mu.Lock()
	delete(m.unpersisted, sid)
	m.mu.Unlock()
	return s, false, nil
}

// ensurePersisted retries a previously-failed spec write, so a client
// retrying POST /v1/sweeps after freeing disk space actually restores
// restart durability instead of getting a hollow 200.
func (m *Manager) ensurePersisted(s *Sweep) error {
	m.mu.Lock()
	pending := m.unpersisted[s.ID]
	m.mu.Unlock()
	if !pending {
		return nil
	}
	if err := m.persist(s); err != nil {
		return fmt.Errorf("sweep %s is running but not persisted: %w", s.ID, err)
	}
	m.mu.Lock()
	delete(m.unpersisted, s.ID)
	m.mu.Unlock()
	return nil
}

// persist writes the sweep's spec file atomically (temp + rename).
func (m *Manager) persist(s *Sweep) error {
	if m.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(persisted{ID: s.ID, Created: s.created, Spec: s.Spec}, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode %s: %w", s.ID, err)
	}
	return fsatomic.WriteFile(filepath.Join(m.dir, s.ID+".json"), b)
}

// Recover re-adopts every persisted sweep: cells whose results are in
// the cache are marked rehydrated (status done, nothing scheduled);
// the rest are resubmitted. It returns the number of sweeps adopted.
// Files that no longer expand (an experiment deregistered, a corrupt
// spec) are skipped and reported in the combined error after all
// recoverable sweeps are adopted.
func (m *Manager) Recover() (int, error) {
	if m.dir == "" {
		return 0, nil
	}
	names, err := os.ReadDir(m.dir)
	if err != nil {
		return 0, fmt.Errorf("sweep: scan %s: %w", m.dir, err)
	}
	var errs []string
	adopted := 0
	for _, f := range names {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		path := filepath.Join(m.dir, f.Name())
		ok, err := m.recoverOne(path)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		if ok {
			adopted++
		}
	}
	if len(errs) > 0 {
		return adopted, fmt.Errorf("sweep: recover: %s", strings.Join(errs, "; "))
	}
	return adopted, nil
}

// recoverOne adopts one persisted sweep file; the boolean reports
// whether a new sweep was adopted (false when it is already known).
func (m *Manager) recoverOne(path string) (bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	var p persisted
	if err := json.Unmarshal(b, &p); err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	cells, err := Expand(p.Spec)
	if err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	if got := id(cells); got != p.ID {
		// The registry or key scheme changed under the persisted spec;
		// adopting it under the old ID would serve a different grid.
		return false, fmt.Errorf("%s: grid now expands to %s, persisted as %s", path, got, p.ID)
	}

	m.mu.Lock()
	_, known := m.sweeps[p.ID]
	m.mu.Unlock()
	if known {
		return false, nil
	}

	// Rehydration scan: cells whose results are already cached need no
	// job. Peek, not Contains: Contains only consults the filename index,
	// so a corrupt entry would mark the cell done with no table behind
	// it. Peek validates the entry actually loads (and skips the
	// hit/miss counters); a corrupt file falls through to a resubmit,
	// matching the cache's corrupt-entries-regenerate policy.
	if m.cache != nil {
		for _, c := range cells {
			if _, ok := m.cache.Peek(c.Key); ok {
				c.cached = true // rehydrated: served from cache, never re-run
			}
		}
	}
	s := newSweep(p.ID, p.Spec, cells, p.Created)
	// Everything the scan did not rehydrate is resubmitted — including
	// any cell whose cache entry vanished after the scan above, which
	// repairOrphans re-checks cell by cell.
	if err := m.repairOrphans(s); err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	m.mu.Lock()
	if _, dup := m.sweeps[p.ID]; !dup {
		m.sweeps[p.ID] = s
		m.order = append(m.order, s)
		m.evictLocked()
	}
	m.mu.Unlock()
	return true, nil
}

// repairOrphans backs every orphan cell — job == nil and not cached —
// with a job, re-checking the cache first. An orphan is a cell the
// rehydration scan skipped whose state then changed (classically: its
// cache entry evicted between the scan and the resubmit loop). Without
// repair such a cell is stuck — no job will ever run it, yet nothing
// marks it terminal — which is exactly the Wait/Finished divergence:
// Wait has nothing to block on and returns, while Info would count the
// cell Queued forever. Cells already backed by a job or a cache entry
// are untouched, so repairing an adopted sweep is idempotent.
func (m *Manager) repairOrphans(s *Sweep) error {
	for _, c := range s.Cells {
		if c.job != nil || c.cached {
			continue
		}
		if m.cache != nil {
			if _, ok := m.cache.Peek(c.Key); ok {
				c.cached = true
				continue
			}
		}
		j, err := m.sched.Submit(c.Experiment, c.Profile)
		if err != nil {
			return fmt.Errorf("resubmit %s/%s: %v", c.Experiment, c.Profile.Name, err)
		}
		c.job = j
	}
	return nil
}

// maxSweeps is the retained-sweep bound enforced by evictLocked.
const maxSweeps = 256

// evictLocked trims the oldest fully-finished sweeps once the index
// exceeds maxSweeps; m.mu must be held. Unfinished sweeps are never
// evicted, so the index can exceed the bound while that many grids are
// genuinely live.
func (m *Manager) evictLocked() {
	if len(m.sweeps) <= maxSweeps {
		return
	}
	kept := m.order[:0]
	for _, s := range m.order {
		if len(m.sweeps) > maxSweeps && s.Info(false).Finished() {
			delete(m.sweeps, s.ID)
			delete(m.unpersisted, s.ID)
			continue
		}
		kept = append(kept, s)
	}
	for i := len(kept); i < len(m.order); i++ {
		m.order[i] = nil // release evicted sweeps (and their job tables) to the GC
	}
	m.order = kept
}

// Get returns the sweep with the given ID.
func (m *Manager) Get(sid string) (*Sweep, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sweeps[sid]
	return s, ok
}

// List returns all sweeps in adoption order: the order they were
// submitted to (or recovered by) this process. Recovered sweeps keep
// their original creation timestamp in Info, but their list position
// reflects when this process adopted them.
func (m *Manager) List() []*Sweep {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Sweep(nil), m.order...)
}

// Len returns the number of known sweeps.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sweeps)
}
