package dask

import (
	"errors"
	"fmt"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

func session(nodes int) (*Session, *cluster.Cluster, *objstore.Store) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cl := cluster.New(cfg)
	store := objstore.New()
	return NewSession(cl, store, nil), cl, store
}

func TestComputeChain(t *testing.T) {
	s, _, store := session(2)
	store.Put("k", []byte("abc"), 1000)
	fetch := s.Fetch("k", 0, func(obj objstore.Object) (any, int64, error) {
		return string(obj.Data), obj.Size(), nil
	})
	upper := s.Delayed("upper", cost.Filter, []*Delayed{fetch}, func(args []any) (any, int64, error) {
		return args[0].(string) + "!", 1000, nil
	})
	if _, err := s.Compute(upper); err != nil {
		t.Fatal(err)
	}
	if upper.Value().(string) != "abc!" {
		t.Errorf("value %v", upper.Value())
	}
	if upper.Size() != 1000 {
		t.Errorf("size %d", upper.Size())
	}
}

func TestValueBeforeComputePanics(t *testing.T) {
	s, _, _ := session(1)
	d := s.Delayed("x", cost.Filter, nil, func([]any) (any, int64, error) { return 1, 1, nil })
	defer func() {
		if recover() == nil {
			t.Error("Value() before Compute should panic (the paper's missing-barrier bug)")
		}
	}()
	d.Value()
}

func TestErrorPropagates(t *testing.T) {
	s, _, _ := session(1)
	boom := errors.New("boom")
	bad := s.Delayed("bad", cost.Filter, nil, func([]any) (any, int64, error) { return nil, 0, boom })
	dep := s.Delayed("dep", cost.Filter, []*Delayed{bad}, func(args []any) (any, int64, error) {
		t.Error("dependent ran despite failure")
		return nil, 0, nil
	})
	if _, err := s.Compute(dep); !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
}

func TestWorkStealingSpreadsLoad(t *testing.T) {
	s, cl, _ := session(4)
	var roots []*Delayed
	for i := 0; i < 32; i++ {
		roots = append(roots, s.DelayedCost(fmt.Sprintf("t%d", i),
			func(int64) vtime.Duration { return cost.Default().AlgTime(cost.Denoise, 16<<20) },
			nil,
			func([]any) (any, int64, error) { return nil, 1 << 20, nil }))
	}
	if _, err := s.Compute(roots...); err != nil {
		t.Fatal(err)
	}
	nodes := map[int]int{}
	for _, r := range roots {
		nodes[r.node]++
	}
	if len(nodes) != 4 {
		t.Errorf("tasks used %d nodes, want 4 (stealing should spread)", len(nodes))
	}
	// Utilization is depressed by the 25s startup idle period; 32 tasks
	// of ~10s on 32 slots should still exceed 25%.
	if cl.Utilization() < 0.25 {
		t.Errorf("utilization %.2f too low for independent tasks", cl.Utilization())
	}
}

func TestReplicaCachedOnce(t *testing.T) {
	s, cl, _ := session(2)
	big := s.DelayedCost("big", func(int64) vtime.Duration { return 0 }, nil,
		func([]any) (any, int64, error) { return "data", 100 << 20, nil })
	big.pinNode = 0
	// Two consumers pinned to node 1: the 100 MB input ships once.
	c1 := s.Delayed("c1", cost.Filter, []*Delayed{big}, func(args []any) (any, int64, error) { return nil, 1, nil })
	c1.pinNode = 1
	c2 := s.Delayed("c2", cost.Filter, []*Delayed{big}, func(args []any) (any, int64, error) { return nil, 1, nil })
	c2.pinNode = 1
	if _, err := s.Compute(c1, c2); err != nil {
		t.Fatal(err)
	}
	if cl.NetBytes() != 100<<20 {
		t.Errorf("moved %d bytes, want one 100MB replica", cl.NetBytes())
	}
}

func TestSchedulerCostGrowsWithCluster(t *testing.T) {
	m := cost.Default()
	if m.SchedTime(cost.Dask, 64) <= m.SchedTime(cost.Dask, 16) {
		t.Error("Dask dispatch cost should grow with cluster size")
	}
}
