// Package dask implements a Dask-like parallel computing library: users
// build explicit delayed compute graphs over plain values; calling Compute
// introduces a barrier at which a dynamic, locality-aware scheduler with
// work stealing assigns tasks to machines.
//
// Properties the paper's results hinge on, implemented explicitly:
//
//   - No stage barriers inside a graph: a per-subject chain proceeds as
//     soon as its own inputs are ready, hiding skew that Spark and Myria
//     barriers amplify (Fig 10c: slower at 1 subject, fastest at 25).
//   - A centralized scheduler pays a per-task dispatch cost that grows
//     with cluster size (work-stealing chatter), degrading speedup at 64
//     nodes (Fig 10g).
//   - The largest startup overhead of the three Python-friendly systems.
//   - Results stay on the machine that computed them; consuming them
//     elsewhere pays pickling plus network transfer.
//   - No data persistence and no automatic partitioning: callers decide
//     task granularity (the manual tuning Section 4.4 describes).
package dask

import (
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

// debugTasks enables task-level tracing for development.
var debugTasks = false

// SetDebug toggles task tracing.
func SetDebug(v bool) { debugTasks = v }

// Session is a Dask distributed client connected to a scheduler and a
// simulated cluster.
type Session struct {
	cl      *cluster.Cluster
	model   *cost.Model
	store   *objstore.Store
	sched   vtime.GapTimeline // centralized scheduler: serial dispatch
	startup *cluster.Handle
	// StealLocality is how much later a local (data-holding) node may
	// start a task before the scheduler steals it to an idle machine.
	// Zero means aggressive stealing (the default behaviour the paper
	// observed); larger values approximate locality-sticky scheduling.
	StealLocality vtime.Duration

	// Fusion state (see fuse.go).
	fuse       bool
	fusedTasks int
	dependents map[*Delayed]int
	rootSet    map[*Delayed]bool
}

// NewSession connects a client, charging Dask's startup cost. A nil model
// uses cost.Default().
func NewSession(cl *cluster.Cluster, store *objstore.Store, model *cost.Model) *Session {
	if model == nil {
		model = cost.Default()
	}
	s := &Session{cl: cl, model: model, store: store}
	s.startup = cl.Submit(0, nil, model.Startup[cost.Dask], nil)
	return s
}

// Cluster returns the underlying simulated cluster.
func (s *Session) Cluster() *cluster.Cluster { return s.cl }

// Delayed is a node in a compute graph: a function application whose
// evaluation is postponed until Compute. After evaluation it records the
// real result, its paper-scale size, and where it lives.
type Delayed struct {
	s    *Session
	name string
	deps []*Delayed
	// costFn models the task duration given total input bytes.
	costFn func(inBytes int64) vtime.Duration
	// f computes the real value from dependency values, returning the
	// value and its paper-scale size.
	f func(args []any) (any, int64, error)
	// pinNode forces execution on one machine (used by ingest tasks the
	// paper assigns manually; -1 means scheduler's choice).
	pinNode int

	done   bool
	value  any
	size   int64
	node   int
	handle *cluster.Handle
	// replicas records nodes the result has already been shipped to
	// (workers cache received data), so repeated consumers on one
	// machine pay the transfer once.
	replicas map[int]*cluster.Handle
	// notBefore anchors a resubmitted task after the worker death that
	// lost its previous result: recomputation is only possible once the
	// scheduler has detected the failure.
	notBefore vtime.Time
}

// Delayed wraps f as a graph node computing from deps, with task duration
// modeled by the calibrated throughput of op over the input bytes.
func (s *Session) Delayed(name string, op cost.Op, deps []*Delayed, f func(args []any) (any, int64, error)) *Delayed {
	return s.DelayedCost(name, func(in int64) vtime.Duration { return s.model.AlgTime(op, in) }, deps, f)
}

// DelayedCost is Delayed with an explicit cost function.
func (s *Session) DelayedCost(name string, costFn func(inBytes int64) vtime.Duration, deps []*Delayed, f func(args []any) (any, int64, error)) *Delayed {
	return &Delayed{s: s, name: name, deps: deps, costFn: costFn, f: f, pinNode: -1}
}

// Fetch creates a graph node that downloads one object from the store and
// decodes it with decode. pinNode ≥ 0 forces the download to a specific
// machine (the paper pins subjects to nodes because Dask does not know
// download sizes in advance, Section 5.2.1).
func (s *Session) Fetch(key string, pinNode int, decode func(objstore.Object) (any, int64, error)) *Delayed {
	d := s.DelayedCost("fetch:"+key,
		func(int64) vtime.Duration { return 0 }, // real cost computed from object size below
		nil,
		func([]any) (any, int64, error) {
			obj, err := s.store.Get(key)
			if err != nil {
				return nil, 0, err
			}
			return decode(obj)
		})
	d.pinNode = pinNode
	d.costFn = func(int64) vtime.Duration {
		if obj, err := s.store.Get(key); err == nil {
			return s.model.S3Fetch(1, obj.Size()) + s.model.FormatTime(obj.Size())
		}
		return 0
	}
	return d
}

// Value returns the computed result. It panics if the node has not been
// computed: calling it before Compute is the "missing barrier" bug the
// paper's Section 4.4 warns about.
func (d *Delayed) Value() any {
	if !d.done {
		panic(fmt.Sprintf("dask: Value() on uncomputed node %q — missing Compute barrier", d.name))
	}
	return d.value
}

// Size returns the computed result's paper-scale size.
func (d *Delayed) Size() int64 {
	if !d.done {
		panic(fmt.Sprintf("dask: Size() on uncomputed node %q — missing Compute barrier", d.name))
	}
	return d.size
}

// Compute evaluates the graphs rooted at the given nodes and blocks until
// all are done (the result()/compute() barrier). It returns a handle for
// the barrier completion.
func (s *Session) Compute(roots ...*Delayed) (*cluster.Handle, error) {
	if s.fuse {
		s.prepareFusion(roots)
		defer func() { s.dependents, s.rootSet = nil, nil }()
	}
	var handles []*cluster.Handle
	for _, r := range roots {
		if err := s.eval(r); err != nil {
			return nil, err
		}
		handles = append(handles, r.handle)
	}
	return s.cl.Barrier(handles...), nil
}

// eval runs one node (and its dependencies) through the dynamic
// scheduler, resubmitting work lost to worker deaths: when a task (or a
// transfer feeding it) fails on a killed machine, results that machine
// hosted are invalidated so their tasks re-run on survivors — Dask's
// scheduler holds the whole graph during execution and resubmits lost
// keys, without lineage or data persistence.
func (s *Session) eval(d *Delayed) error {
	if d.done {
		return nil
	}
	for attempt := 0; ; attempt++ {
		var err error
		if chain := s.fusibleChain(d); chain != nil {
			err = s.evalChain(chain)
		} else {
			err = s.evalOnce(d)
		}
		if err == nil {
			return nil
		}
		nd, ok := cluster.DownAt(err)
		if !ok || nd.Node == 0 || attempt >= s.cl.Nodes() {
			return err // not a worker death, the scheduler host died, or out of retries
		}
		s.invalidateLost(d, nd.At, map[*Delayed]bool{})
		if nd.At > d.notBefore {
			d.notBefore = nd.At
		}
	}
}

// invalidateLost walks d's dependency graph and marks every computed
// result hosted on a node dead by time at as uncomputed, so the next
// eval resubmits its task on a surviving worker. Cached replicas on dead
// nodes are dropped from live results.
func (s *Session) invalidateLost(d *Delayed, at vtime.Time, seen map[*Delayed]bool) {
	if seen[d] {
		return
	}
	seen[d] = true
	for _, dep := range d.deps {
		s.invalidateLost(dep, at, seen)
	}
	if !d.done {
		return
	}
	if kt, killed := s.cl.KillTime(d.node); killed && !at.Before(kt) {
		d.done = false
		d.handle = nil
		d.replicas = nil
		if at > d.notBefore {
			d.notBefore = at
		}
		return
	}
	for n := range d.replicas {
		if kt, killed := s.cl.KillTime(n); killed && !at.Before(kt) {
			delete(d.replicas, n)
		}
	}
}

// evalOnce is one scheduling attempt for d: evaluate dependencies, pay
// the dispatch, pick a machine, move inputs, run.
func (s *Session) evalOnce(d *Delayed) error {
	var depHandles []*cluster.Handle
	var prefer []int
	args := make([]any, len(d.deps))
	var inBytes int64
	for i, dep := range d.deps {
		if err := s.eval(dep); err != nil {
			return err
		}
		args[i] = dep.value
		inBytes += dep.size
		depHandles = append(depHandles, dep.handle)
		prefer = append(prefer, dep.node)
	}
	// Every task also waits for the session to be up; include it before
	// probing node availability so the probe and the booking agree.
	depHandles = append(depHandles, s.startup)
	if d.notBefore > 0 {
		// Resubmission of work lost to a dead worker: not schedulable
		// before the failure was detectable.
		depHandles = append(depHandles, &cluster.Handle{End: d.notBefore})
	}
	// Centralized scheduler dispatch: a serial cost per task that grows
	// with cluster size (work-stealing coordination).
	ready := cluster.After(depHandles...)
	_, dispatched := s.sched.Reserve(ready, s.model.SchedTime(cost.Dask, s.cl.Nodes()))
	depHandles = append(depHandles, &cluster.Handle{End: dispatched})

	dur := s.model.Jitter(d.name, d.costFn(inBytes))

	run := func() error {
		v, size, err := d.f(args)
		if err != nil {
			return fmt.Errorf("dask: task %q: %w", d.name, err)
		}
		d.value, d.size = v, size
		return nil
	}
	// Pick the machine first (stealing threshold: moving the task is
	// worth it only if the remote start beats local availability by more
	// than the input transfer time), then move remote inputs to it, then
	// run.
	node := d.pinNode % max(1, s.cl.Nodes())
	if d.pinNode < 0 {
		locality := s.StealLocality + s.transferDur(inBytes)
		node = s.cl.PickNode(prefer, locality, cluster.After(depHandles...), dur)
	} else if !s.cl.CanHost(node, cluster.After(depHandles...), dur) {
		// The pinned worker is gone: the scheduler reassigns the task to
		// whichever survivor can run it earliest.
		node = s.cl.PickNode(nil, 0, cluster.After(depHandles...), dur)
	}
	for _, dep := range d.deps {
		if dep.node != node && dep.size > 0 {
			depHandles = append(depHandles, s.replicate(dep, node))
		}
	}
	h := s.cl.Submit(node, depHandles, dur, run)
	if h.Err != nil {
		return h.Err
	}
	if debugTasks {
		fmt.Printf("DASKDBG %-28s node=%d ready=%v end=%v dur=%v\n", d.name, node, cluster.After(depHandles...), h.End, dur)
	}
	d.node = h.Node
	d.handle = h
	d.done = true
	return nil
}

// replicate makes dep's result available on node, paying pickling and
// network once per (value, node) pair — workers keep received data.
func (s *Session) replicate(dep *Delayed, node int) *cluster.Handle {
	if h, ok := dep.replicas[node]; ok {
		return h
	}
	ser := s.model.GobTime(dep.size)
	x := s.cl.Transfer(dep.node, node, dep.size, dep.handle)
	h := s.cl.Submit(node, []*cluster.Handle{x}, ser, nil)
	if dep.replicas == nil {
		dep.replicas = make(map[int]*cluster.Handle)
	}
	dep.replicas[node] = h
	return h
}

// transferDur estimates moving nbytes between machines, used as the
// work-stealing break-even threshold.
func (s *Session) transferDur(nbytes int64) vtime.Duration {
	return s.model.GobTime(nbytes)*2 + cost.Dur(nbytes, s.cl.Config().NetBandwidth)
}
