package dask

import (
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/vtime"
)

// Task fusion, dask.optimization.fuse: a linear chain of tasks — each
// consumed only by the next — collapses into a single task, paying one
// scheduler dispatch instead of one per stage and never moving the
// intermediates off the executing machine. Fusion is the optimization
// that keeps Dask's per-subject pipelines cheap despite its per-task
// scheduler overhead; the ablation bench quantifies what it saves.

// EnableFusion turns on linear-chain fusion for subsequent Compute calls.
func (s *Session) EnableFusion() { s.fuse = true }

// FusedTasks reports how many task dispatches fusion has eliminated.
func (s *Session) FusedTasks() int { return s.fusedTasks }

// prepareFusion builds the dependent-count map for the graphs rooted at
// roots, and marks the roots themselves (roots must stay materialized).
func (s *Session) prepareFusion(roots []*Delayed) {
	s.dependents = make(map[*Delayed]int)
	s.rootSet = make(map[*Delayed]bool, len(roots))
	for _, r := range roots {
		s.rootSet[r] = true
	}
	seen := make(map[*Delayed]bool)
	var walk func(d *Delayed)
	walk = func(d *Delayed) {
		if seen[d] {
			return
		}
		seen[d] = true
		for _, dep := range d.deps {
			s.dependents[dep]++
			walk(dep)
		}
	}
	for _, r := range roots {
		walk(r)
	}
}

// fusibleChain returns the maximal linear chain ending at d, deepest
// stage first, or nil when d heads no chain. A stage is fusible into its
// consumer when it is that consumer's only input, the consumer is its
// only dependent, neither is pinned to a device, it is not itself a
// Compute root, and it is not already computed.
func (s *Session) fusibleChain(d *Delayed) []*Delayed {
	if s.dependents == nil || d.pinNode >= 0 {
		return nil
	}
	var chain []*Delayed // built consumer-first, reversed below
	cur := d
	for len(cur.deps) == 1 {
		dep := cur.deps[0]
		if dep.done || dep.pinNode >= 0 || s.dependents[dep] != 1 || s.rootSet[dep] {
			break
		}
		chain = append(chain, cur)
		cur = dep
	}
	if len(chain) == 0 {
		return nil
	}
	// cur is the deepest fused stage; chain holds its consumers.
	out := []*Delayed{cur}
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i])
	}
	return out
}

// evalChain executes a fused chain as one task: one dispatch, one node,
// intermediates never leave the machine. Every stage's value is recorded
// so Value() still works on intermediates.
func (s *Session) evalChain(chain []*Delayed) error {
	head := chain[0]
	var depHandles []*cluster.Handle
	var prefer []int
	args := make([]any, len(head.deps))
	var inBytes int64
	for i, dep := range head.deps {
		if err := s.eval(dep); err != nil {
			return err
		}
		args[i] = dep.value
		inBytes += dep.size
		depHandles = append(depHandles, dep.handle)
		prefer = append(prefer, dep.node)
	}
	depHandles = append(depHandles, s.startup)
	// Resubmitted (previously lost) stages anchor the fused task after
	// the worker death that invalidated them.
	var notBefore vtime.Time
	for _, stage := range chain {
		if stage.notBefore > notBefore {
			notBefore = stage.notBefore
		}
	}
	if notBefore > 0 {
		depHandles = append(depHandles, &cluster.Handle{End: notBefore})
	}
	// One scheduler dispatch for the whole chain.
	ready := cluster.After(depHandles...)
	_, dispatched := s.sched.Reserve(ready, s.model.SchedTime(cost.Dask, s.cl.Nodes()))
	depHandles = append(depHandles, &cluster.Handle{End: dispatched})

	// Run the stages in order, summing their modeled durations over the
	// true intermediate sizes.
	var dur vtime.Duration
	curArgs := args
	curBytes := inBytes
	for _, stage := range chain {
		dur += s.model.Jitter(stage.name, stage.costFn(curBytes))
		v, size, err := stage.f(curArgs)
		if err != nil {
			return fmt.Errorf("dask: task %q: %w", stage.name, err)
		}
		stage.value, stage.size = v, size
		curArgs = []any{v}
		curBytes = size
	}
	s.fusedTasks += len(chain) - 1

	locality := s.StealLocality + s.transferDur(inBytes)
	node := s.cl.PickNode(prefer, locality, cluster.After(depHandles...), dur)
	for _, dep := range head.deps {
		if dep.node != node && dep.size > 0 {
			depHandles = append(depHandles, s.replicate(dep, node))
		}
	}
	h := s.cl.Submit(node, depHandles, dur, nil)
	if h.Err != nil {
		return h.Err
	}
	for _, stage := range chain {
		stage.node = h.Node
		stage.handle = h
		stage.done = true
	}
	if debugTasks {
		fmt.Printf("DASKDBG fused×%d %-20s node=%d end=%v dur=%v\n", len(chain), chain[len(chain)-1].name, node, h.End, dur)
	}
	return nil
}
