package dask

import (
	"fmt"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

func fuseSession(nodes int) *Session {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	return NewSession(cluster.New(cfg), objstore.New(), nil)
}

// buildChains constructs nChains independent linear pipelines of depth
// stages each (the per-subject pipeline shape of the neuroscience use
// case) and returns the roots.
func buildChains(s *Session, nChains, depth int) []*Delayed {
	var roots []*Delayed
	for c := 0; c < nChains; c++ {
		cur := s.Delayed(fmt.Sprintf("src%d", c), cost.Filter, nil, func([]any) (any, int64, error) {
			return 1.0, 64 << 20, nil
		})
		for st := 0; st < depth; st++ {
			prev := cur
			cur = s.Delayed(fmt.Sprintf("c%d/s%d", c, st), cost.Denoise, []*Delayed{prev},
				func(args []any) (any, int64, error) {
					return args[0].(float64) + 1, 64 << 20, nil
				})
		}
		roots = append(roots, cur)
	}
	return roots
}

func TestFusionCorrectness(t *testing.T) {
	s := fuseSession(4)
	s.EnableFusion()
	roots := buildChains(s, 3, 5)
	if _, err := s.Compute(roots...); err != nil {
		t.Fatal(err)
	}
	for i, r := range roots {
		if got := r.Value().(float64); got != 6 {
			t.Errorf("chain %d: value %v, want 6", i, got)
		}
	}
	// Each chain of depth 5 stages + source: the 5 stages fuse onto the
	// source's consumer chain — 5 dispatches saved per chain... the
	// source is fusible into stage 0 too, so 5 of 6 tasks fuse.
	if s.FusedTasks() != 3*5 {
		t.Errorf("fused %d tasks, want 15", s.FusedTasks())
	}
}

func TestFusionSavesSchedulerTime(t *testing.T) {
	run := func(fuse bool) vtime.Time {
		s := fuseSession(4)
		if fuse {
			s.EnableFusion()
		}
		roots := buildChains(s, 4, 6)
		h, err := s.Compute(roots...)
		if err != nil {
			t.Fatal(err)
		}
		return h.End
	}
	plain := run(false)
	fused := run(true)
	if fused >= plain {
		t.Errorf("fusion should reduce makespan: fused=%v plain=%v", fused, plain)
	}
}

func TestFusionPreservesSharedNodes(t *testing.T) {
	// A node consumed by two consumers must not fuse into either.
	s := fuseSession(2)
	s.EnableFusion()
	src := s.Delayed("src", cost.Filter, nil, func([]any) (any, int64, error) {
		return 10.0, 1 << 20, nil
	})
	a := s.Delayed("a", cost.Filter, []*Delayed{src}, func(args []any) (any, int64, error) {
		return args[0].(float64) * 2, 1 << 20, nil
	})
	b := s.Delayed("b", cost.Filter, []*Delayed{src}, func(args []any) (any, int64, error) {
		return args[0].(float64) + 5, 1 << 20, nil
	})
	if _, err := s.Compute(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Value().(float64) != 20 || b.Value().(float64) != 15 {
		t.Errorf("values: a=%v b=%v", a.Value(), b.Value())
	}
	if s.FusedTasks() != 0 {
		t.Errorf("fused %d tasks across a shared node, want 0", s.FusedTasks())
	}
}

func TestFusionRespectsRoots(t *testing.T) {
	// An intermediate that is itself a Compute root must stay a task
	// boundary (its value is requested).
	s := fuseSession(2)
	s.EnableFusion()
	src := s.Delayed("src", cost.Filter, nil, func([]any) (any, int64, error) {
		return 1.0, 1 << 20, nil
	})
	mid := s.Delayed("mid", cost.Filter, []*Delayed{src}, func(args []any) (any, int64, error) {
		return args[0].(float64) + 1, 1 << 20, nil
	})
	top := s.Delayed("top", cost.Filter, []*Delayed{mid}, func(args []any) (any, int64, error) {
		return args[0].(float64) + 1, 1 << 20, nil
	})
	if _, err := s.Compute(top, mid); err != nil {
		t.Fatal(err)
	}
	if mid.Value().(float64) != 2 || top.Value().(float64) != 3 {
		t.Errorf("mid=%v top=%v", mid.Value(), top.Value())
	}
	// src may fuse into mid, but mid must not fuse into top.
	if s.FusedTasks() > 1 {
		t.Errorf("fused %d tasks, want ≤1", s.FusedTasks())
	}
}

func TestFusionRespectsPinning(t *testing.T) {
	s := fuseSession(3)
	s.EnableFusion()
	store := s.store
	store.Put("obj/a", []byte{1}, 1<<20)
	fetch := s.Fetch("obj/a", 1, func(o objstore.Object) (any, int64, error) {
		return 1.0, o.Size(), nil
	})
	top := s.Delayed("top", cost.Filter, []*Delayed{fetch}, func(args []any) (any, int64, error) {
		return args[0].(float64) + 1, 1 << 20, nil
	})
	if _, err := s.Compute(top); err != nil {
		t.Fatal(err)
	}
	if s.FusedTasks() != 0 {
		t.Errorf("pinned fetch fused: %d", s.FusedTasks())
	}
	if fetch.node != 1 {
		t.Errorf("pinned fetch ran on node %d, want 1", fetch.node)
	}
}

func TestFusionErrorPropagates(t *testing.T) {
	s := fuseSession(2)
	s.EnableFusion()
	src := s.Delayed("src", cost.Filter, nil, func([]any) (any, int64, error) {
		return 1.0, 1 << 20, nil
	})
	bad := s.Delayed("bad", cost.Filter, []*Delayed{src}, func([]any) (any, int64, error) {
		return nil, 0, fmt.Errorf("boom")
	})
	top := s.Delayed("top", cost.Filter, []*Delayed{bad}, func(args []any) (any, int64, error) {
		return args[0], 0, nil
	})
	if _, err := s.Compute(top); err == nil {
		t.Fatal("expected error from fused chain")
	}
}
