package dask

import (
	"fmt"
	"testing"
	"time"

	"imagebench/internal/cluster"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

// buildFanGraph stages a wide graph of slow independent tasks feeding a
// final sum, returning the root. Values are real so recovery can be
// checked for correctness, not just timing.
func buildFanGraph(s *Session, n int) *Delayed {
	leaves := make([]*Delayed, n)
	for i := 0; i < n; i++ {
		i := i
		leaves[i] = s.DelayedCost(fmt.Sprintf("leaf/%02d", i),
			func(int64) vtime.Duration { return 2 * time.Second },
			nil,
			func([]any) (any, int64, error) { return i + 1, 1 << 20, nil })
	}
	return s.DelayedCost("sum",
		func(int64) vtime.Duration { return time.Second },
		leaves,
		func(args []any) (any, int64, error) {
			total := 0
			for _, a := range args {
				total += a.(int)
			}
			return total, 8, nil
		})
}

// TestWorkerDeathResubmitsTasks kills a node mid-graph: Dask holds the
// graph during execution, so tasks (and results) lost with the worker
// are resubmitted on survivors and the computed value is unchanged.
func TestWorkerDeathResubmitsTasks(t *testing.T) {
	mk := func() *cluster.Cluster {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		return cluster.New(cfg)
	}
	const n = 24
	want := n * (n + 1) / 2

	bcl := mk()
	base := NewSession(bcl, objstore.New(), nil)
	if _, err := base.Compute(buildFanGraph(base, n)); err != nil {
		t.Fatal(err)
	}
	baseline := vtime.Duration(bcl.Makespan())

	fcl := mk()
	// Startup is 25s; the 2s leaves run from ~25s, so a kill at 26s
	// lands while the first wave is executing everywhere.
	if err := fcl.Inject(cluster.Fault{Kind: cluster.FaultKill, Node: 2, At: vtime.Time(26 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	s := NewSession(fcl, objstore.New(), nil)
	root := buildFanGraph(s, n)
	if _, err := s.Compute(root); err != nil {
		t.Fatalf("compute with scheduled kill: %v", err)
	}
	if got := root.Value().(int); got != want {
		t.Errorf("recovered sum = %d, want %d", got, want)
	}
	recovered := vtime.Duration(fcl.Makespan())
	if recovered <= baseline {
		t.Errorf("worker death was free: makespan %v vs baseline %v", recovered, baseline)
	}
	if recovered >= 2*baseline {
		t.Errorf("resubmission recomputed too much: %v vs baseline %v", recovered, baseline)
	}
}
