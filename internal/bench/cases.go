package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"imagebench/internal/core"
	"imagebench/internal/imaging"
	"imagebench/internal/volume"
)

// The default case set: every registered experiment (the paper
// artifacts, timed end to end under one profile) plus kernel
// microbenchmarks for the real-compute hot paths, in sequential and
// parallel variants so the artifact itself carries the before/after
// numbers for the tiled worker pool.

// ExperimentCase wraps one registered experiment. Beyond the harness's
// wall/allocation metrics it reports the table's total virtual seconds
// and virtual seconds per populated cell — deterministic simulator
// outputs the comparator gates exactly.
func ExperimentCase(e *core.Experiment, p core.Profile) Case {
	return Case{
		Name: "exp/" + e.ID,
		Run: func(ctx context.Context) (map[string]float64, error) {
			tab, err := e.RunContext(ctx, p)
			if err != nil {
				return nil, err
			}
			if err := e.Check(tab); err != nil {
				return nil, fmt.Errorf("shape check: %w", err)
			}
			extra := map[string]float64{MetricVirtualSeconds: tab.VirtualSeconds()}
			if cells := tab.NonNACells(); cells > 0 {
				extra[MetricVSPerCell] = tab.VirtualSeconds() / float64(cells)
			}
			return extra, nil
		},
	}
}

// Kernel microbenchmark geometry: large enough that one repetition is
// dominated by kernel arithmetic, small enough that a 1-rep CI smoke
// stays cheap. The volumes are regenerated deterministically per
// repetition from a fixed seed.
const (
	nlmNX, nlmNY, nlmNZ    = 24, 24, 16
	convNX, convNY, convNZ = 64, 64, 48
	convSigma              = 1.5
)

func kernelVolume(nx, ny, nz int) *volume.V3 {
	rng := rand.New(rand.NewSource(97))
	v := volume.New3(nx, ny, nz)
	for i := range v.Data {
		v.Data[i] = 100 + 10*rng.NormFloat64()
	}
	return v
}

// nlmeansCase benchmarks NLMeans3 with the pipeline's denoise settings
// on a synthetic volume; workers=1 is the sequential baseline, 0 the
// GOMAXPROCS-wide tiled pool.
func nlmeansCase(name string, workers int) Case {
	return Case{
		Name: name,
		Run: func(ctx context.Context) (map[string]float64, error) {
			v := kernelVolume(nlmNX, nlmNY, nlmNZ)
			opts := imaging.NLMeansOpts{PatchRadius: 1, SearchRadius: 2, Workers: workers}
			out, err := imaging.NLMeans3Ctx(ctx, v, nil, opts)
			if err != nil {
				return nil, err
			}
			if out.Len() != v.Len() {
				return nil, fmt.Errorf("nlmeans output shape mismatch")
			}
			return nil, nil
		},
	}
}

// sepconvCase benchmarks the separable Gaussian convolution (the
// TensorFlow-model denoise substitute).
func sepconvCase(name string, workers int) Case {
	return Case{
		Name: name,
		Run: func(ctx context.Context) (map[string]float64, error) {
			v := kernelVolume(convNX, convNY, convNZ)
			k := imaging.GaussianKernel(convSigma)
			out, err := imaging.SeparableConv3Ctx(ctx, v, k, k, k, workers)
			if err != nil {
				return nil, err
			}
			if out.Len() != v.Len() {
				return nil, fmt.Errorf("conv output shape mismatch")
			}
			return nil, nil
		},
	}
}

// KernelCases returns the hot-path microbenchmarks.
func KernelCases() []Case {
	return []Case{
		nlmeansCase("kernel/nlmeans3/seq", 1),
		nlmeansCase("kernel/nlmeans3/par", 0),
		sepconvCase("kernel/sepconv3/seq", 1),
		sepconvCase("kernel/sepconv3/par", 0),
	}
}

// DefaultCases returns every registered experiment under p plus the
// kernel microbenchmarks and the serving-path cases.
func DefaultCases(p core.Profile) []Case {
	var out []Case
	for _, e := range core.All() {
		out = append(out, ExperimentCase(e, p))
	}
	out = append(out, KernelCases()...)
	out = append(out, SweepCases()...)
	return append(out, ServeCases()...)
}

// SelectCases filters the default set by name. Each selector matches a
// case name exactly, or every case when it is "all", or all cases under
// a prefix when it ends in "/..." (e.g. "kernel/...", "exp/fig10...").
func SelectCases(p core.Profile, selectors []string) ([]Case, error) {
	all := DefaultCases(p)
	if len(selectors) == 0 {
		return all, nil
	}
	byName := make(map[string]Case, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	seen := make(map[string]bool)
	var out []Case
	for _, sel := range selectors {
		switch {
		case sel == "all":
			for _, c := range all {
				if !seen[c.Name] {
					seen[c.Name] = true
					out = append(out, c)
				}
			}
		case strings.HasSuffix(sel, "..."):
			prefix := strings.TrimSuffix(sel, "...")
			matched := false
			for _, c := range all {
				if strings.HasPrefix(c.Name, prefix) {
					matched = true
					if !seen[c.Name] {
						seen[c.Name] = true
						out = append(out, c)
					}
				}
			}
			if !matched {
				return nil, fmt.Errorf("bench: no cases match %q", sel)
			}
		default:
			c, ok := byName[sel]
			if !ok {
				return nil, fmt.Errorf("bench: unknown case %q (try \"all\", \"exp/...\", or \"kernel/...\")", sel)
			}
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c)
			}
		}
	}
	return out, nil
}
