// Package bench is the measured-performance subsystem: a regression
// harness that runs a set of registered benchmark cases for N
// repetitions, records wall time, allocations, and virtual-time metrics
// into a versioned JSON artifact, and a comparator that diffs a run
// against a committed baseline with configurable tolerances.
//
// The paper's contribution is a *measured* comparison of systems; this
// package gives the reproduction the same discipline about itself.
// Deterministic metrics (virtual seconds from the simulator) are gated
// tightly — any drift means the simulation semantics changed — while
// wall time and allocations are gated by a configurable relative
// tolerance because they vary across machines.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Metric names the harness records for every case. Cases may add their
// own (the experiment cases add virtual_seconds and vs_per_cell).
const (
	MetricWallNS     = "wall_ns"
	MetricAllocs     = "allocs"
	MetricAllocBytes = "alloc_bytes"
	// MetricHeapBytes is the peak live-heap growth during a repetition
	// (max sampled HeapAlloc minus HeapAlloc at rep start). Unlike
	// alloc_bytes, which counts churn, this is the case's working-set
	// high-water mark — the number the streaming pipelines bound.
	MetricHeapBytes = "heap_bytes"
	// MetricVirtualSeconds and MetricVSPerCell are deterministic
	// simulator outputs: identical on every machine for a given code
	// version, so the comparator holds them to an exact tolerance.
	MetricVirtualSeconds = "virtual_seconds"
	MetricVSPerCell      = "vs_per_cell"
)

// MetricClass reports how the comparator gates a metric: "exact"
// (deterministic virtual-time metrics, held to zero drift),
// "noise-gated" (wall time and allocations, allowed CompareOpts.
// Tolerance of relative increase), or "informational" (recorded in
// the artifact but never gated).
func MetricClass(name string) string {
	switch {
	case exactMetrics[name]:
		return "exact"
	case gatedMetrics[name]:
		return "noise-gated"
	}
	return "informational"
}

// StandardMetrics lists the metrics the harness records for every
// case, in display order.
func StandardMetrics() []string {
	return []string{MetricWallNS, MetricAllocs, MetricAllocBytes, MetricHeapBytes, MetricVirtualSeconds, MetricVSPerCell}
}

// exactMetrics are the deterministic metrics gated by CompareOpts.Exact
// rather than the wall/alloc tolerances.
var exactMetrics = map[string]bool{
	MetricVirtualSeconds: true,
	MetricVSPerCell:      true,
	// Serving-path accounting: deterministic under the serve/... cases'
	// fixed seed and fresh per-rep daemon (see internal/loadgen).
	MetricServeRequests:  true,
	MetricServe5xx:       true,
	MetricServeTransport: true,
	MetricServeReuseHits: true,
	MetricServeExecuted:  true,
}

// Case is one benchmarked unit: a registered experiment or a kernel
// microbenchmark. Run executes one repetition and returns any extra
// metrics beyond the wall/allocation ones the harness records itself.
type Case struct {
	Name string
	Run  func(ctx context.Context) (extra map[string]float64, err error)
}

// Dist summarizes a metric's distribution over the repetitions.
type Dist struct {
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// distOf folds samples into a Dist.
func distOf(samples []float64) Dist {
	d := Dist{N: len(samples)}
	if len(samples) == 0 {
		return d
	}
	d.Min, d.Max = samples[0], samples[0]
	var sum float64
	for _, s := range samples {
		if s < d.Min {
			d.Min = s
		}
		if s > d.Max {
			d.Max = s
		}
		sum += s
	}
	d.Mean = sum / float64(len(samples))
	return d
}

// CaseResult is one case's metric distributions.
type CaseResult struct {
	Metrics map[string]Dist `json:"metrics"`
}

// Options configures a harness run.
type Options struct {
	Reps    int    // repetitions per case; <=0 means 1
	Profile string // recorded in the artifact metadata
	// Progress, when non-nil, is called once per completed case.
	Progress func(name string, res CaseResult)
}

// Run executes every case Reps times, sequentially and in name order
// (one case at a time, so wall-time samples are not polluted by sibling
// cases), and returns the artifact. A case that fails aborts the run:
// a benchmark of broken code is not a measurement.
func Run(ctx context.Context, cases []Case, opts Options) (*Artifact, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 1
	}
	sorted := append([]Case(nil), cases...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	art := &Artifact{
		Schema:     SchemaVersion,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Profile:    opts.Profile,
		Reps:       reps,
		Results:    make(map[string]CaseResult, len(sorted)),
	}
	for _, c := range sorted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		samples := make(map[string][]float64)
		for rep := 0; rep < reps; rep++ {
			// Collect before the baseline read so heap_bytes measures
			// growth above the *live* heap, not above whatever garbage
			// the previous repetition left uncollected.
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			heap := StartHeapSampler(0)
			start := time.Now()
			extra, err := c.Run(ctx)
			wall := time.Since(start)
			_, heapDelta := heap.Stop()
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, fmt.Errorf("bench: case %s rep %d: %w", c.Name, rep, err)
			}
			samples[MetricWallNS] = append(samples[MetricWallNS], float64(wall.Nanoseconds()))
			samples[MetricAllocs] = append(samples[MetricAllocs], float64(after.Mallocs-before.Mallocs))
			samples[MetricAllocBytes] = append(samples[MetricAllocBytes], float64(after.TotalAlloc-before.TotalAlloc))
			samples[MetricHeapBytes] = append(samples[MetricHeapBytes], float64(heapDelta))
			for name, v := range extra {
				samples[name] = append(samples[name], v)
			}
		}
		res := CaseResult{Metrics: make(map[string]Dist, len(samples))}
		for name, vals := range samples {
			res.Metrics[name] = distOf(vals)
		}
		art.Results[c.Name] = res
		if opts.Progress != nil {
			opts.Progress(c.Name, res)
		}
	}
	return art, nil
}
