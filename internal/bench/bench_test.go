package bench

import (
	"context"
	"errors"
	"testing"

	"imagebench/internal/core"
)

// allocSink defeats dead-store elimination in allocation tests.
var allocSink []byte

func TestRunRecordsMetrics(t *testing.T) {
	calls := 0
	cases := []Case{
		{Name: "b", Run: func(ctx context.Context) (map[string]float64, error) {
			calls++
			return map[string]float64{MetricVirtualSeconds: 7}, nil
		}},
		{Name: "a", Run: func(ctx context.Context) (map[string]float64, error) {
			// Allocate something measurable; the package-level sink
			// keeps the compiler from eliding it.
			allocSink = make([]byte, 1<<16)
			return nil, nil
		}},
	}
	var order []string
	art, err := Run(context.Background(), cases, Options{
		Reps:     3,
		Profile:  "quick",
		Progress: func(name string, res CaseResult) { order = append(order, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("case b ran %d times, want 3", calls)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("cases must run in name order, got %v", order)
	}
	if art.Schema != SchemaVersion || art.Reps != 3 || art.Profile != "quick" {
		t.Fatalf("artifact metadata wrong: %+v", art)
	}
	b := art.Results["b"].Metrics
	if b[MetricVirtualSeconds].Mean != 7 || b[MetricVirtualSeconds].N != 3 {
		t.Fatalf("virtual_seconds dist = %+v", b[MetricVirtualSeconds])
	}
	for _, m := range []string{MetricWallNS, MetricAllocs, MetricAllocBytes} {
		if d, ok := art.Results["a"].Metrics[m]; !ok || d.N != 3 {
			t.Fatalf("metric %s missing or wrong n: %+v", m, d)
		}
	}
	if art.Results["a"].Metrics[MetricAllocBytes].Min < 1<<16 {
		t.Fatalf("alloc_bytes did not see the 64KiB allocation: %+v",
			art.Results["a"].Metrics[MetricAllocBytes])
	}
}

func TestRunAbortsOnCaseError(t *testing.T) {
	boom := errors.New("boom")
	cases := []Case{
		{Name: "bad", Run: func(ctx context.Context) (map[string]float64, error) { return nil, boom }},
	}
	if _, err := Run(context.Background(), cases, Options{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []Case{{Name: "x", Run: func(ctx context.Context) (map[string]float64, error) {
		t.Fatal("case must not run under a canceled context")
		return nil, nil
	}}}
	if _, err := Run(ctx, cases, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestInjectedRegressionFailsGate is the end-to-end regression drill:
// measure a real kernel case, then diff it against a baseline whose
// wall time is synthetically 100x faster — i.e. the current code is an
// injected slowdown — and require the comparator to fail the gate.
func TestInjectedRegressionFailsGate(t *testing.T) {
	// The fake baseline claims the case used to run 100x faster with
	// 100x fewer allocations: even on hardware fast enough that the
	// wall delta falls under the noise floor, the floor-less alloc gate
	// still trips.
	const name = "kernel/nlmeans3/seq"
	cases, err := SelectCases(core.Quick(), []string{name})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Run(context.Background(), cases, Options{Reps: 1, Profile: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	wall := cur.Results[name].Metrics[MetricWallNS]
	allocs := cur.Results[name].Metrics[MetricAllocs]
	base := art(map[string]map[string]float64{name: {
		MetricWallNS: wall.Min / 100,
		MetricAllocs: allocs.Mean / 100,
	}})
	rep := Compare(base, cur, CompareOpts{Tolerance: 0.25})
	if rep.OK() {
		t.Fatalf("a 100x slowdown vs baseline must fail the gate:\n%s", rep.Render())
	}
	// And the same run against its own numbers passes.
	if rep := Compare(cur, cur, CompareOpts{Tolerance: 0.25}); !rep.OK() {
		t.Fatalf("self-comparison must pass:\n%s", rep.Render())
	}
}

func TestSelectCases(t *testing.T) {
	p := core.Quick()
	all, err := SelectCases(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := len(core.All()) + len(KernelCases()) + len(SweepCases()) + len(ServeCases())
	if len(all) != wantLen {
		t.Fatalf("default set has %d cases, want %d", len(all), wantLen)
	}
	kern, err := SelectCases(p, []string{"kernel/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(kern) != len(KernelCases()) {
		t.Fatalf("kernel/... selected %d cases, want %d", len(kern), len(KernelCases()))
	}
	one, err := SelectCases(p, []string{"exp/fig11", "exp/fig11"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Name != "exp/fig11" {
		t.Fatalf("exact selection = %v", names(one))
	}
	if _, err := SelectCases(p, []string{"exp/nope"}); err == nil {
		t.Fatal("unknown case must error")
	}
	if _, err := SelectCases(p, []string{"zzz/..."}); err == nil {
		t.Fatal("unmatched prefix must error")
	}
}

func names(cs []Case) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Name)
	}
	return out
}

// TestExperimentCaseMetrics runs the cheapest experiment end to end
// through the case wrapper and checks the deterministic extras.
func TestExperimentCaseMetrics(t *testing.T) {
	e, err := core.Lookup("table1")
	if err != nil {
		t.Fatal(err)
	}
	c := ExperimentCase(e, core.Quick())
	if c.Name != "exp/table1" {
		t.Fatalf("case name %q", c.Name)
	}
	extra, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// table1 reports lines of code, not virtual seconds: the metric is
	// present and zero, and vs_per_cell follows it.
	if vs := extra[MetricVirtualSeconds]; vs != 0 {
		t.Fatalf("table1 virtual_seconds = %v, want 0 (unit is LoC)", vs)
	}
	if _, ok := extra[MetricVSPerCell]; !ok {
		t.Fatal("vs_per_cell missing despite populated cells")
	}
}
