package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CompareOpts configures the baseline diff.
type CompareOpts struct {
	// Tolerance is the allowed relative increase for noisy,
	// higher-is-worse metrics (wall time, allocations): current may be
	// up to baseline*(1+Tolerance). Zero means no relative allowance
	// (wall time still keeps its absolute noise floor); negative means
	// the default 0.25. CI runs on different hardware than the
	// committed baseline, so its smoke gate passes a large value and
	// relies on the exact metrics.
	Tolerance float64
	// Exact is the allowed relative difference (either direction) for
	// deterministic metrics (virtual seconds). <=0 means 1e-9. Drift
	// here means the simulation's semantics changed: that can be
	// intentional, but then the baseline must be regenerated in the
	// same change.
	Exact float64
	// WallFloorNS is the absolute wall-time noise floor: a wall_ns
	// increase only gates when the delta also exceeds this many
	// nanoseconds, because on short cases scheduler jitter and CPU
	// steal routinely exceed any sane relative tolerance (a 20ms case
	// drifts ±30% run to run on a busy host). <=0 means the default
	// 25ms; semantic drift on short cases is still caught exactly by
	// the virtual-seconds metrics.
	WallFloorNS float64
}

func (o CompareOpts) withDefaults() CompareOpts {
	if o.Tolerance < 0 {
		o.Tolerance = 0.25
	}
	if o.Exact <= 0 {
		o.Exact = 1e-9
	}
	if o.WallFloorNS <= 0 {
		o.WallFloorNS = 25e6
	}
	return o
}

// Finding is one comparator observation.
type Finding struct {
	Case   string
	Metric string  // empty for case-level findings (missing case, new case)
	Base   float64 // baseline value (NaN when not applicable)
	Cur    float64 // current value (NaN when not applicable)
	// Regression marks findings that fail the gate; the rest are
	// informational (improvements, new cases).
	Regression bool
	Detail     string
}

// Report is the outcome of a comparison.
type Report struct {
	Findings []Finding
}

// OK reports whether the comparison found no regressions.
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if f.Regression {
			return false
		}
	}
	return true
}

// Regressions returns only the failing findings.
func (r *Report) Regressions() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Regression {
			out = append(out, f)
		}
	}
	return out
}

// Render formats the report for terminal output: regressions first,
// then informational findings.
func (r *Report) Render() string {
	var b strings.Builder
	for _, pass := range []bool{true, false} {
		for _, f := range r.Findings {
			if f.Regression != pass {
				continue
			}
			tag := "note"
			if f.Regression {
				tag = "REGRESSION"
			}
			if f.Metric == "" {
				fmt.Fprintf(&b, "%-10s %s: %s\n", tag, f.Case, f.Detail)
			} else {
				fmt.Fprintf(&b, "%-10s %s/%s: %s\n", tag, f.Case, f.Metric, f.Detail)
			}
		}
	}
	if r.OK() {
		b.WriteString("bench: no regressions\n")
	}
	return b.String()
}

// gatedMetrics are the noisy metrics the comparator gates with
// Tolerance. Other non-exact metrics a case emits are recorded in the
// artifact but not compared, so cases can export purely informational
// numbers.
var gatedMetrics = map[string]bool{
	MetricWallNS:     true,
	MetricAllocs:     true,
	MetricAllocBytes: true,
	// Peak-heap deltas move with GC scheduling, so they share the noisy
	// tolerance rather than the exact gate.
	MetricHeapBytes: true,
}

// Compare diffs current against baseline. Cases present in the
// baseline but absent from the current run are regressions (the
// benchmark surface shrank — usually a renamed case without a baseline
// refresh), as are baseline metrics a case no longer reports. Cases
// only in the current run are informational: they get gated once they
// are committed into the next baseline.
func Compare(baseline, current *Artifact, opts CompareOpts) *Report {
	opts = opts.withDefaults()
	rep := &Report{}
	if baseline.Profile != "" && current.Profile != "" && baseline.Profile != current.Profile {
		// Different profiles measure different workloads: every exact
		// metric would "drift" and send the user hunting for a
		// nonexistent simulator regression. Fail with the real cause
		// instead of comparing anything.
		rep.Findings = append(rep.Findings, Finding{
			Case: "(artifact)", Regression: true, Base: math.NaN(), Cur: math.NaN(),
			Detail: fmt.Sprintf("profile mismatch: baseline recorded under %q, this run under %q — rerun with -profile %s or regenerate the baseline",
				baseline.Profile, current.Profile, baseline.Profile),
		})
		return rep
	}
	for _, name := range sortedCases(baseline) {
		base := baseline.Results[name]
		cur, ok := current.Results[name]
		if !ok {
			rep.Findings = append(rep.Findings, Finding{
				Case: name, Regression: true,
				Base: math.NaN(), Cur: math.NaN(),
				Detail: "case in baseline but missing from this run",
			})
			continue
		}
		for _, metric := range sortedMetrics(base.Metrics) {
			bd := base.Metrics[metric]
			cd, ok := cur.Metrics[metric]
			if !ok {
				// Only gated and exact metrics are contractual; an
				// informational extra a case stopped emitting is not a
				// regression (it was never compared to begin with).
				if gatedMetrics[metric] || exactMetrics[metric] {
					rep.Findings = append(rep.Findings, Finding{
						Case: name, Metric: metric, Regression: true,
						Base: bd.Mean, Cur: math.NaN(),
						Detail: "metric in baseline but missing from this run",
					})
				}
				continue
			}
			rep.Findings = append(rep.Findings, compareMetric(name, metric, bd, cd, opts)...)
		}
	}
	for _, name := range sortedCases(current) {
		if _, ok := baseline.Results[name]; !ok {
			rep.Findings = append(rep.Findings, Finding{
				Case: name, Base: math.NaN(), Cur: math.NaN(),
				Detail: "new case (not in baseline; refresh the baseline to gate it)",
			})
		}
	}
	return rep
}

// compareMetric gates one metric. Wall time compares via the minimum
// over repetitions (the least-noisy location statistic for a
// lower-bounded timing distribution); allocation counts and exact
// metrics compare via the mean.
func compareMetric(cse, metric string, base, cur Dist, opts CompareOpts) []Finding {
	if exactMetrics[metric] {
		b, c := base.Mean, cur.Mean
		if relDiff(b, c) > opts.Exact {
			return []Finding{{
				Case: cse, Metric: metric, Regression: true, Base: b, Cur: c,
				Detail: fmt.Sprintf("deterministic metric drifted: baseline %.9g, got %.9g (semantics changed — regenerate the baseline if intentional)", b, c),
			}}
		}
		return nil
	}
	if !gatedMetrics[metric] {
		return nil
	}
	b, c := base.Mean, cur.Mean
	if metric == MetricWallNS {
		b, c = base.Min, cur.Min
	}
	if b <= 0 {
		// A zero baseline cannot anchor a relative gate; surface a
		// nonzero current value as a note so the growth is at least
		// visible, and let the next baseline refresh start gating it.
		if c > 0 {
			return []Finding{{
				Case: cse, Metric: metric, Base: b, Cur: c,
				Detail: fmt.Sprintf("baseline is zero, current is %.4g: ungated until the baseline is refreshed", c),
			}}
		}
		return nil
	}
	ratio := c / b
	switch {
	case ratio > 1+opts.Tolerance:
		if metric == MetricWallNS && c-b <= opts.WallFloorNS {
			// Sub-floor wall deltas are indistinguishable from
			// scheduler jitter: never gate on them.
			return nil
		}
		return []Finding{{
			Case: cse, Metric: metric, Regression: true, Base: b, Cur: c,
			Detail: fmt.Sprintf("%.4g -> %.4g (%.2fx, tolerance %.2fx)", b, c, ratio, 1+opts.Tolerance),
		}}
	case ratio < 1/(1+opts.Tolerance):
		return []Finding{{
			Case: cse, Metric: metric, Base: b, Cur: c,
			Detail: fmt.Sprintf("improved %.4g -> %.4g (%.2fx)", b, c, ratio),
		}}
	}
	return nil
}

// relDiff is the symmetric relative difference |a-b|/max(|a|,|b|),
// zero when both are zero.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func sortedCases(a *Artifact) []string {
	out := make([]string, 0, len(a.Results))
	for name := range a.Results {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func sortedMetrics(m map[string]Dist) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
