package bench

import (
	"runtime"
	"sync"
	"time"
)

// HeapSampler polls runtime.ReadMemStats on a background goroutine and
// tracks the peak HeapAlloc observed — the measurement behind the
// heap_bytes metric and the sweep CLI's -mem-stats flag. Peak live
// heap is the number the streaming-pipeline work is accountable to:
// TotalAlloc-style churn counters cannot distinguish "allocated and
// released per block" from "held the whole dataset", but peak
// HeapAlloc can.
type HeapSampler struct {
	base uint64

	mu   sync.Mutex
	peak uint64

	stop chan struct{}
	done chan struct{}
}

// StartHeapSampler begins sampling every interval (<=0 means 5ms). The
// baseline for Delta is HeapAlloc at this call.
func StartHeapSampler(interval time.Duration) *HeapSampler {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h := &HeapSampler{
		base: ms.HeapAlloc,
		peak: ms.HeapAlloc,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				h.sample()
				return
			case <-t.C:
				h.sample()
			}
		}
	}()
	return h
}

func (h *HeapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.mu.Lock()
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	h.mu.Unlock()
}

// Stop takes a final sample, ends the sampler, and returns the peak
// HeapAlloc observed plus its delta over the baseline at start (zero
// if the heap only shrank). Sampling is periodic, so a spike shorter
// than the interval can be missed — peaks are a floor, not an exact
// high-water mark.
func (h *HeapSampler) Stop() (peak, delta uint64) {
	close(h.stop)
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.peak < h.base {
		return h.peak, 0
	}
	return h.peak, h.peak - h.base
}
