package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"imagebench/internal/fsatomic"
)

// SchemaVersion is the artifact schema this package reads and writes.
// Bump it when the JSON layout changes incompatibly; the reader rejects
// artifacts from other versions so a stale baseline fails loudly
// instead of comparing garbage.
const SchemaVersion = 1

// Artifact is one harness run: metadata identifying the machine and
// configuration, plus per-case metric distributions. It is the on-disk
// BENCH_*.json format.
type Artifact struct {
	Schema     int                   `json:"schema"`
	CreatedAt  string                `json:"created_at"`
	GoVersion  string                `json:"go_version"`
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Profile    string                `json:"profile"`
	Reps       int                   `json:"reps"`
	Results    map[string]CaseResult `json:"results"`
}

// WriteFile atomically writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal artifact: %w", err)
	}
	return fsatomic.WriteFile(path, append(data, '\n'))
}

// Restrict returns a shallow copy of the artifact containing only the
// named cases. The comparator treats a baseline case missing from the
// current run as a regression; when a run deliberately executes a
// subset (e.g. `imagebench bench ... kernel/...`), the caller restricts
// the baseline to that subset first so only attempted cases are gated.
func (a *Artifact) Restrict(names []string) *Artifact {
	out := *a
	out.Results = make(map[string]CaseResult, len(names))
	for _, name := range names {
		if res, ok := a.Results[name]; ok {
			out.Results[name] = res
		}
	}
	return &out
}

// ReadFile loads and validates an artifact. It rejects unparseable
// files and schema versions this package does not understand.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("bench: malformed artifact %s: %w", path, err)
	}
	if a.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: artifact %s has schema %d, this binary reads schema %d (regenerate the baseline)",
			path, a.Schema, SchemaVersion)
	}
	if a.Results == nil {
		return nil, fmt.Errorf("bench: artifact %s has no results", path)
	}
	return &a, nil
}
