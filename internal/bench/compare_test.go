package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// art builds a minimal artifact from case → metric → mean (min/max set
// equal to mean, n=1).
func art(cases map[string]map[string]float64) *Artifact {
	a := &Artifact{Schema: SchemaVersion, Reps: 1, Results: make(map[string]CaseResult)}
	for name, metrics := range cases {
		cr := CaseResult{Metrics: make(map[string]Dist)}
		for m, v := range metrics {
			cr.Metrics[m] = Dist{N: 1, Min: v, Mean: v, Max: v}
		}
		a.Results[name] = cr
	}
	return a
}

func TestCompareToleranceMath(t *testing.T) {
	// Baseline wall of 1s keeps every relative exceedance far above the
	// absolute wall noise floor, so these cases exercise pure ratio math.
	base := art(map[string]map[string]float64{
		"exp/a": {MetricWallNS: 1e9, MetricAllocs: 100},
	})
	for _, tc := range []struct {
		name    string
		wall    float64
		tol     float64
		wantReg bool
	}{
		{"within tolerance", 1.24e9, 0.25, false},
		{"exactly at bound", 1.25e9, 0.25, false},
		{"just over bound", 1.251e9, 0.25, true},
		{"zero tolerance is strict", 1.1e9, 0, true},
		{"negative means default", 1.251e9, -1, true},
		{"negative default forgives", 1.24e9, -1, false},
		{"big tolerance forgives", 3e9, 5, false},
		{"improvement never fails", 0.2e9, 0.25, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cur := art(map[string]map[string]float64{
				"exp/a": {MetricWallNS: tc.wall, MetricAllocs: 100},
			})
			rep := Compare(base, cur, CompareOpts{Tolerance: tc.tol})
			if got := !rep.OK(); got != tc.wantReg {
				t.Fatalf("wall %v tol %v: regression=%v, want %v\n%s",
					tc.wall, tc.tol, got, tc.wantReg, rep.Render())
			}
		})
	}
}

func TestCompareWallNoiseFloor(t *testing.T) {
	// A microsecond-scale case can blow any relative tolerance on pure
	// scheduler jitter; the absolute floor keeps it from gating.
	base := art(map[string]map[string]float64{"exp/tiny": {MetricWallNS: 3.2e5}})
	cur := art(map[string]map[string]float64{"exp/tiny": {MetricWallNS: 4.1e5}}) // 1.28x, delta 90µs
	if rep := Compare(base, cur, CompareOpts{Tolerance: 0.25}); !rep.OK() {
		t.Fatalf("sub-floor wall delta must not gate:\n%s", rep.Render())
	}
	// But a genuine above-floor slowdown still does, and the floor is
	// configurable.
	cur = art(map[string]map[string]float64{"exp/tiny": {MetricWallNS: 3.2e5 + 30e6}})
	if rep := Compare(base, cur, CompareOpts{Tolerance: 0.25}); rep.OK() {
		t.Fatal("above-floor slowdown must gate")
	}
	cur = art(map[string]map[string]float64{"exp/tiny": {MetricWallNS: 4.1e5}})
	if rep := Compare(base, cur, CompareOpts{Tolerance: 0.25, WallFloorNS: 1e3}); rep.OK() {
		t.Fatal("tightened floor must gate the 90µs delta")
	}
	// The floor is wall-only: allocation counts are deterministic, so
	// small relative growth gates regardless of absolute size.
	base = art(map[string]map[string]float64{"exp/tiny": {MetricAllocs: 10}})
	cur = art(map[string]map[string]float64{"exp/tiny": {MetricAllocs: 14}})
	if rep := Compare(base, cur, CompareOpts{Tolerance: 0.25}); rep.OK() {
		t.Fatal("alloc growth has no noise floor and must gate")
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := art(map[string]map[string]float64{"exp/a": {MetricAllocs: 100}})
	cur := art(map[string]map[string]float64{"exp/a": {MetricAllocs: 200}})
	rep := Compare(base, cur, CompareOpts{Tolerance: 0.25})
	if rep.OK() {
		t.Fatal("2x alloc growth must regress")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != MetricAllocs {
		t.Fatalf("unexpected findings: %+v", regs)
	}
}

func TestCompareExactMetricGatesBothDirections(t *testing.T) {
	base := art(map[string]map[string]float64{"exp/a": {MetricVirtualSeconds: 500}})
	// A faster wall time would pass; a *different* virtual time must
	// not, in either direction: the simulation semantics changed.
	for _, vs := range []float64{499, 501} {
		cur := art(map[string]map[string]float64{"exp/a": {MetricVirtualSeconds: vs}})
		rep := Compare(base, cur, CompareOpts{Tolerance: 10})
		if rep.OK() {
			t.Fatalf("virtual_seconds drift %v -> %v must regress even under huge tolerance", 500.0, vs)
		}
	}
	// Identical values pass, as does sub-epsilon float noise.
	cur := art(map[string]map[string]float64{"exp/a": {MetricVirtualSeconds: 500 + 1e-10}})
	if rep := Compare(base, cur, CompareOpts{}); !rep.OK() {
		t.Fatalf("sub-epsilon drift must pass:\n%s", rep.Render())
	}
}

func TestCompareMissingCaseAndMetric(t *testing.T) {
	base := art(map[string]map[string]float64{
		"exp/a": {MetricWallNS: 1000, MetricVirtualSeconds: 5},
		"exp/b": {MetricWallNS: 1000},
	})
	// exp/b vanished; exp/a lost its virtual_seconds metric.
	cur := art(map[string]map[string]float64{
		"exp/a": {MetricWallNS: 1000},
	})
	rep := Compare(base, cur, CompareOpts{})
	regs := rep.Regressions()
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (missing case, missing metric), got %+v", regs)
	}
	out := rep.Render()
	if !strings.Contains(out, "missing from this run") {
		t.Errorf("render should explain the missing entries:\n%s", out)
	}
}

func TestCompareNewCaseIsInformational(t *testing.T) {
	base := art(map[string]map[string]float64{"exp/a": {MetricWallNS: 1000}})
	cur := art(map[string]map[string]float64{
		"exp/a": {MetricWallNS: 1000},
		"exp/c": {MetricWallNS: 999999},
	})
	rep := Compare(base, cur, CompareOpts{})
	if !rep.OK() {
		t.Fatalf("a new case must not fail the gate:\n%s", rep.Render())
	}
	if !strings.Contains(rep.Render(), "new case") {
		t.Errorf("render should mention the new case:\n%s", rep.Render())
	}
}

func TestCompareUngatedExtraMetric(t *testing.T) {
	// Metrics outside the gated/exact sets are informational: recorded
	// but never compared — not when they grow, and not when they vanish.
	base := art(map[string]map[string]float64{"exp/a": {"custom_score": 1}})
	cur := art(map[string]map[string]float64{"exp/a": {"custom_score": 100}})
	if rep := Compare(base, cur, CompareOpts{}); !rep.OK() {
		t.Fatalf("ungated metric must not regress:\n%s", rep.Render())
	}
	cur = art(map[string]map[string]float64{"exp/a": {MetricWallNS: 1}})
	base.Results["exp/a"].Metrics[MetricWallNS] = Dist{N: 1, Min: 1, Mean: 1, Max: 1}
	if rep := Compare(base, cur, CompareOpts{}); !rep.OK() {
		t.Fatalf("a vanished ungated metric must not regress:\n%s", rep.Render())
	}
}

func TestArtifactRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	a := art(map[string]map[string]float64{"exp/a": {MetricWallNS: 42}})
	a.Profile, a.GoVersion = "quick", "go-test"
	path := filepath.Join(dir, "BENCH.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results["exp/a"].Metrics[MetricWallNS].Mean != 42 || got.Profile != "quick" {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// Malformed JSON.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("malformed artifact: err = %v", err)
	}

	// Old/unknown schema version.
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, []byte(`{"schema": 0, "results": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(old); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("old-schema artifact: err = %v", err)
	}

	// Schema from the future.
	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"schema": 99, "results": {"x":{"metrics":{}}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(future); err == nil {
		t.Fatal("future-schema artifact must be rejected")
	}

	// No results at all.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(empty); err == nil {
		t.Fatal("artifact without results must be rejected")
	}
}

func TestCompareProfileMismatch(t *testing.T) {
	base := art(map[string]map[string]float64{"exp/a": {MetricVirtualSeconds: 5}})
	base.Profile = "quick"
	cur := art(map[string]map[string]float64{"exp/a": {MetricVirtualSeconds: 50}})
	cur.Profile = "full"
	rep := Compare(base, cur, CompareOpts{})
	regs := rep.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0].Detail, "profile mismatch") {
		t.Fatalf("want a single profile-mismatch finding, got:\n%s", rep.Render())
	}
	// Same profile (or artifacts without one, e.g. hand-built) compare
	// normally.
	cur.Profile = "quick"
	if rep := Compare(base, cur, CompareOpts{}); len(rep.Regressions()) != 1 {
		t.Fatalf("same-profile comparison must gate the vs drift:\n%s", rep.Render())
	}
}

func TestCompareZeroBaselineIsNoted(t *testing.T) {
	base := art(map[string]map[string]float64{"exp/a": {MetricAllocs: 0}})
	cur := art(map[string]map[string]float64{"exp/a": {MetricAllocs: 5000}})
	rep := Compare(base, cur, CompareOpts{})
	if !rep.OK() {
		t.Fatalf("zero baseline cannot anchor a relative gate:\n%s", rep.Render())
	}
	if !strings.Contains(rep.Render(), "ungated until the baseline is refreshed") {
		t.Fatalf("nonzero growth over a zero baseline must at least be noted:\n%s", rep.Render())
	}
}

func TestArtifactRestrict(t *testing.T) {
	a := art(map[string]map[string]float64{
		"exp/a": {MetricWallNS: 1},
		"exp/b": {MetricWallNS: 2},
	})
	r := a.Restrict([]string{"exp/b", "exp/zzz"})
	if len(r.Results) != 1 {
		t.Fatalf("restricted to %d cases, want 1", len(r.Results))
	}
	if _, ok := r.Results["exp/b"]; !ok {
		t.Fatal("exp/b dropped by Restrict")
	}
	if len(a.Results) != 2 {
		t.Fatal("Restrict mutated the original")
	}
}

func TestDistOf(t *testing.T) {
	d := distOf([]float64{3, 1, 2})
	if d.N != 3 || d.Min != 1 || d.Max != 3 || d.Mean != 2 {
		t.Fatalf("distOf = %+v", d)
	}
	if z := distOf(nil); z.N != 0 {
		t.Fatalf("empty distOf = %+v", z)
	}
}
