package bench

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/runner"
	"imagebench/internal/sweep"
)

// Sweep memory cases: the same experiment swept across axisPoints
// cluster-size points, streamed to a discarded artifact on a
// single-worker pool. The point is heap_bytes, not wall time: the
// artifact streams cells out (and releases their tables) as they
// finish, so the 10x grid's peak heap must stay in the same band as
// the 1x grid's — O(workers) footprint, not O(cells). The two cases
// exist precisely so the committed baseline carries that ratio.
const (
	sweepCaseExperiment = "fig10f"
	sweepCase1xPoints   = 4
	sweepCase10xPoints  = 40
)

func sweepMemCase(name string, axisPoints int) Case {
	return Case{
		Name: name,
		Run: func(ctx context.Context) (map[string]float64, error) {
			// Tighten GC pacing for the duration of the case: with the
			// default GOGC the pacer lets dead cell churn pile up in
			// proportion to how long the sweep runs, which would make
			// peak heap scale with cell count even though the *live*
			// working set does not. At GOGC=10 the sampled peak tracks
			// the live set, which is the thing these cases bound.
			prevGC := debug.SetGCPercent(10)
			defer debug.SetGCPercent(prevGC)
			spec := sweep.Spec{
				Experiments: []string{sweepCaseExperiment},
				Profiles:    []string{"quick"},
			}
			for i := 0; i < axisPoints; i++ {
				spec.Overrides = append(spec.Overrides, core.Overrides{ClusterNodes: []int{i + 1}})
			}
			sched := runner.New(runner.Options{Workers: 1})
			defer sched.Close()
			mgr, err := sweep.NewManager(sched, nil, "", time.Now)
			if err != nil {
				return nil, err
			}
			s, _, err := mgr.Submit(spec)
			if err != nil {
				return nil, err
			}
			final, err := s.StreamArtifact(ctx, io.Discard, nil)
			if err != nil {
				return nil, err
			}
			if final.Done != axisPoints {
				return nil, fmt.Errorf("sweep case: %d/%d cells done, %d failed", final.Done, axisPoints, final.Failed)
			}
			return nil, nil
		},
	}
}

// SweepCases returns the batch-engine footprint cases.
func SweepCases() []Case {
	return []Case{
		sweepMemCase("sweep/mem/1x", sweepCase1xPoints),
		sweepMemCase("sweep/mem/10x", sweepCase10xPoints),
	}
}
