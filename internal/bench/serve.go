package bench

import (
	"context"
	"fmt"

	"imagebench/internal/daemon"
	"imagebench/internal/loadgen"
)

// The serving-path metrics. Request and reuse accounting is a pure
// function of the loadgen seed on a fresh daemon (see the loadgen
// package doc), so the comparator holds those to zero drift — a
// change in executed or reuse_hits means the dedup or cache semantics
// changed, not that the machine was busy. Latency stays informational
// here; wall_ns (the whole rep, noise-floored) is the gated speed
// signal.
const (
	MetricServeRequests  = "requests"
	MetricServe5xx       = "errors_5xx"
	MetricServeTransport = "transport_errors"
	MetricServeReuseHits = "reuse_hits"
	MetricServeExecuted  = "executed"
	MetricServeP99Ms     = "p99_ms"
)

// ServeMetrics lists the extra metrics the serve/... cases record, in
// display order.
func ServeMetrics() []string {
	return []string{MetricServeRequests, MetricServe5xx, MetricServeTransport,
		MetricServeReuseHits, MetricServeExecuted, MetricServeP99Ms}
}

// serveExperiments are cheap quick-profile experiments (each well
// under the serving overhead being measured) so serve/... reps are
// dominated by the HTTP path, not the simulations.
var serveExperiments = []string{
	"fig10a", "fig10b", "fig10d", "fig10f", "table1",
	"abl-spark-pytax", "abl-myria-pushdown", "abl-dask-stealing",
}

// ServeCases benchmarks the daemon's serving path end to end: each rep
// boots a fresh in-process daemon and drives it with the loadgen
// harness under a fixed seed. Two skew points: cold is near-uniform
// over the experiment list (cache misses dominate), hot concentrates
// on a few keys (dedup + cache hits dominate). Always quick-profile —
// the simulations are scenery here.
func ServeCases() []Case {
	return []Case{
		serveCase("serve/cold", 1.01),
		// s=4 concentrates ~99.7% of the draw mass on the top four
		// ranks, so the hot case executes strictly fewer distinct keys
		// than cold even at this request volume.
		serveCase("serve/hot", 4.0),
	}
}

func serveCase(name string, zipfS float64) Case {
	return Case{
		Name: name,
		Run: func(ctx context.Context) (map[string]float64, error) {
			d, err := daemon.StartLocal(daemon.Config{Workers: 4})
			if err != nil {
				return nil, err
			}
			defer d.Stop()
			sum, err := loadgen.Run(ctx, loadgen.Config{
				BaseURL:     d.BaseURL,
				Agents:      8,
				Requests:    25,
				Seed:        73,
				ZipfS:       zipfS,
				Experiments: serveExperiments,
				Profile:     "quick",
			})
			if err != nil {
				return nil, err
			}
			var errs5xx, transport, p99 float64
			for _, cs := range sum.Classes {
				errs5xx += float64(cs.Errors5xx)
				transport += float64(cs.TransportErrors)
				if cs.P99Ms > p99 {
					p99 = cs.P99Ms
				}
			}
			if errs5xx > 0 {
				// A 5xx under this tiny fixed load is a daemon bug, not
				// a regression to trend: fail the rep loudly.
				return nil, fmt.Errorf("%s: %v 5xx responses under fixed load", name, errs5xx)
			}
			return map[string]float64{
				MetricServeRequests:  float64(sum.TotalRequests),
				MetricServe5xx:       errs5xx,
				MetricServeTransport: transport,
				MetricServeReuseHits: float64(sum.Daemon.ReuseHits),
				MetricServeExecuted:  float64(sum.Daemon.Executed),
				MetricServeP99Ms:     p99,
			}, nil
		},
	}
}
