package bench

import (
	"context"
	"testing"
)

// The serve/... cases promise their accounting metrics are exact: two
// reps against fresh daemons under the same seed must produce
// identical request counts, executed keys, and reuse hits — that is
// what lets the comparator hold them to zero drift.
func TestServeCaseRepExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("boots daemons")
	}
	cases := ServeCases()
	art, err := Run(context.Background(), cases, Options{Reps: 2, Profile: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		res, ok := art.Results[c.Name]
		if !ok {
			t.Fatalf("no result for %s", c.Name)
		}
		for _, m := range []string{MetricServeRequests, MetricServe5xx,
			MetricServeTransport, MetricServeReuseHits, MetricServeExecuted} {
			d, ok := res.Metrics[m]
			if !ok {
				t.Errorf("%s: metric %s missing", c.Name, m)
				continue
			}
			if d.Min != d.Max {
				t.Errorf("%s: metric %s varies across reps (min %v, max %v) — not exact-gateable",
					c.Name, m, d.Min, d.Max)
			}
			if MetricClass(m) != "exact" {
				t.Errorf("metric %s classed %q, want exact", m, MetricClass(m))
			}
		}
		if res.Metrics[MetricServe5xx].Max != 0 {
			t.Errorf("%s: 5xx responses recorded", c.Name)
		}
	}
	// Skew must show in the execution count: the hot workload touches
	// strictly fewer distinct keys, so more of its submissions reuse.
	hot := art.Results["serve/hot"].Metrics
	cold := art.Results["serve/cold"].Metrics
	if hot[MetricServeExecuted].Mean >= cold[MetricServeExecuted].Mean {
		t.Errorf("hot executed %v distinct keys, cold %v — skew had no effect",
			hot[MetricServeExecuted].Mean, cold[MetricServeExecuted].Mean)
	}
}
