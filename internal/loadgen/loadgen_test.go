package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/daemon"
)

// The e2e tests register instant synthetic experiments so the load
// they generate is dominated by the serving path, not the simulations.
var registerOnce sync.Once

func lgExperiments() []string {
	ids := make([]string, 8)
	registerOnce.Do(func() {
		for i := range ids {
			id := fmt.Sprintf("zz-lg-%d", i)
			core.Register(&core.Experiment{
				ID: id, Title: "loadgen fake " + id, Paper: "n/a",
				Run: func(context.Context, core.Profile) (*core.Table, error) {
					t := core.NewTable("fake", "virtual s", []string{"r"}, []string{"c"})
					t.Set("r", "c", 1)
					return t, nil
				},
				Check: func(*core.Table) error { return nil },
			})
		}
	})
	for i := range ids {
		ids[i] = fmt.Sprintf("zz-lg-%d", i)
	}
	return ids
}

func runOnFreshDaemon(t *testing.T, cfg Config) *Summary {
	t.Helper()
	d, err := daemon.StartLocal(daemon.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	cfg.BaseURL = d.BaseURL
	sum, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func baseConfig() Config {
	return Config{
		Agents:      8,
		Requests:    40,
		Seed:        7,
		ZipfS:       1.01,
		Experiments: nil, // filled per test
		Profile:     "quick",
	}
}

// With a fixed seed and per-agent request counts, two runs against
// fresh daemons must agree exactly on every per-class request count
// and on the daemon's reuse accounting: reuse_hits = submitted −
// executed (no failures), and executed = distinct keys drawn — all
// pure functions of the seed even though the dedup/cache-hit split
// inside reuse_hits is timing-dependent.
func TestDeterministicSeedExactCounts(t *testing.T) {
	cfg := baseConfig()
	cfg.Experiments = lgExperiments()

	a := runOnFreshDaemon(t, cfg)
	b := runOnFreshDaemon(t, cfg)

	if a.TotalRequests != int64(cfg.Agents*cfg.Requests) {
		t.Errorf("total requests = %d, want %d", a.TotalRequests, cfg.Agents*cfg.Requests)
	}
	for _, c := range []string{ClassSubmit, ClassResult, ClassJobPoll, ClassSweepPoll} {
		ca, cb := a.Classes[c], b.Classes[c]
		if ca.Requests != cb.Requests {
			t.Errorf("class %s: run A made %d requests, run B %d — seed not deterministic", c, ca.Requests, cb.Requests)
		}
		if ca.Errors5xx != 0 || cb.Errors5xx != 0 {
			t.Errorf("class %s: 5xx responses (A=%d B=%d), want none", c, ca.Errors5xx, cb.Errors5xx)
		}
		if ca.TransportErrors != 0 || cb.TransportErrors != 0 {
			t.Errorf("class %s: transport errors (A=%d B=%d), want none", c, ca.TransportErrors, cb.TransportErrors)
		}
	}
	// Executed (distinct keys drawn) and ReuseHits (attempts − executed)
	// are the exact invariants; Submitted alone is timing-dependent
	// because a dedup-coalesced attempt lands in Deduped instead.
	if a.Daemon.Executed != b.Daemon.Executed || a.Daemon.ReuseHits != b.Daemon.ReuseHits {
		t.Errorf("daemon accounting diverged:\nA: %+v\nB: %+v", a.Daemon, b.Daemon)
	}
	if a.Daemon.Failed != 0 {
		t.Errorf("daemon reported %d failed jobs, want 0", a.Daemon.Failed)
	}
	posts := a.Classes[ClassSubmit].Requests
	if got := a.Daemon.Submitted + a.Daemon.Deduped; got != posts {
		t.Errorf("daemon saw %d submission attempts, loadgen sent %d", got, posts)
	}
	if got, want := a.Daemon.ReuseHits, posts-a.Daemon.Executed; got != want {
		t.Errorf("reuse_hits = %d, want attempts−executed = %d", got, want)
	}
}

// Hot-key skew must show up in the daemon's reuse accounting: a
// sharply Zipfian workload concentrates submissions on few distinct
// keys, so fewer executions and more dedup/cache reuse than a
// near-uniform workload of the same size.
func TestHotSkewIncreasesReuse(t *testing.T) {
	cold := baseConfig()
	cold.Experiments = lgExperiments()
	hot := cold
	hot.ZipfS = 3.0

	cs := runOnFreshDaemon(t, cold)
	hs := runOnFreshDaemon(t, hot)

	if hs.Daemon.Executed >= cs.Daemon.Executed {
		t.Errorf("hot skew executed %d distinct keys, cold %d — skew had no effect",
			hs.Daemon.Executed, cs.Daemon.Executed)
	}
	if hs.Daemon.ReuseRatio <= cs.Daemon.ReuseRatio {
		t.Errorf("hot reuse ratio %.3f not above cold %.3f",
			hs.Daemon.ReuseRatio, cs.Daemon.ReuseRatio)
	}
}

// Timed mode is the operator-facing smoke: it must complete, stay
// 5xx-free, and produce a well-formed summary file.
func TestTimedRunAndSummaryFile(t *testing.T) {
	cfg := baseConfig()
	cfg.Experiments = lgExperiments()
	cfg.Requests = 0
	cfg.Duration = 300 * time.Millisecond
	cfg.Agents = 4

	sum := runOnFreshDaemon(t, cfg)
	if sum.TotalRequests == 0 {
		t.Fatal("timed run made no requests")
	}
	for c, cs := range sum.Classes {
		if cs.Errors5xx != 0 {
			t.Errorf("class %s: %d 5xx responses", c, cs.Errors5xx)
		}
	}
	out := filepath.Join(t.TempDir(), "sub", "summary.json")
	if err := WriteSummary(out, sum); err != nil {
		t.Fatal(err)
	}
	if sum.Render() == "" {
		t.Error("empty render")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("4/3/2/1")
	if err != nil || m != DefaultMix() {
		t.Fatalf("ParseMix(4/3/2/1) = %+v, %v", m, err)
	}
	if m.String() != "4/3/2/1" {
		t.Errorf("round trip: %s", m.String())
	}
	m, err = ParseMix("4/3/2/1/5")
	if err != nil || m.FedPoll != 5 {
		t.Fatalf("ParseMix(4/3/2/1/5) = %+v, %v", m, err)
	}
	if m.String() != "4/3/2/1/5" {
		t.Errorf("5-weight round trip: %s", m.String())
	}
	for _, bad := range []string{"", "1/2/3", "1/2/3/4/5/6", "1/2/3/x", "-1/2/3/4", "0/0/0/0", "0/0/0/0/0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// The fedpoll class polls a federation coordinator, not the worker
// daemon, and requires a coordinator URL up front.
func TestFedPollClass(t *testing.T) {
	var polls atomic.Int64
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/v1/sweeps/sw-feedfeedfeed" {
			t.Errorf("coordinator saw %s %s", r.Method, r.URL.Path)
		}
		polls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"id":"sw-feedfeedfeed","total":4,"done":4}`)
	}))
	defer coord.Close()

	cfg := baseConfig()
	cfg.Experiments = lgExperiments()
	cfg.Requests = 20
	cfg.Agents = 4
	cfg.Mix = Mix{Submit: 1, Result: 1, JobPoll: 1, SweepPoll: 1, FedPoll: 4}
	cfg.FedURL = coord.URL
	cfg.FedSweepID = "sw-feedfeedfeed"

	sum := runOnFreshDaemon(t, cfg)
	fp := sum.Classes[ClassFedPoll]
	if fp == nil || fp.Requests == 0 {
		t.Fatalf("fedpoll class made no requests: %+v", sum.Classes)
	}
	if fp.Requests != polls.Load() {
		t.Errorf("loadgen counted %d fedpolls, coordinator saw %d", fp.Requests, polls.Load())
	}
	if fp.Errors5xx != 0 || fp.TransportErrors != 0 {
		t.Errorf("fedpoll errors: 5xx=%d transport=%d", fp.Errors5xx, fp.TransportErrors)
	}
	if sum.Mix != "1/1/1/1/4" {
		t.Errorf("summary mix = %q, want 1/1/1/1/4", sum.Mix)
	}

	// Without a coordinator URL the weighted mix is rejected up front.
	cfg.FedURL = ""
	if _, err := Run(context.Background(), Config{
		BaseURL: "http://127.0.0.1:1", Agents: 1, Requests: 1,
		Experiments: lgExperiments(), Mix: cfg.Mix,
	}); err == nil {
		t.Error("FedPoll weight without FedURL accepted")
	}
}
