// Package loadgen drives a running imagebench daemon with a
// configurable mix of API traffic and reports throughput and latency
// quantiles per request class. It is the serving-path counterpart of
// the simulation benchmarks: the experiments themselves are modelled,
// but the daemon's queueing, deduplication, caching, and HTTP handling
// are real code with real concurrency, and this harness is what puts
// them under enough pressure to regress visibly.
//
// Experiment selection is Zipf-distributed, so a hot-key workload
// hammers a few (experiment, profile) pairs — exercising the
// single-flight dedup and the result cache — while a near-uniform
// workload spreads across the registry. With a fixed seed and a fixed
// per-agent request count, each agent's draw sequence is a pure
// function of the seed, which makes request counts and the daemon's
// reuse accounting exactly reproducible on a fresh daemon; the bench
// serve/... cases gate on that.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"imagebench/internal/core"
	"imagebench/internal/fsatomic"
	"imagebench/internal/obs"
	"imagebench/internal/results"
)

// The request classes, in report order. Submits create work; the read
// classes model dashboards and pollers riding on the same daemon (or,
// for fedpoll, on a federation coordinator).
const (
	ClassSubmit    = "submit"    // POST /v1/jobs
	ClassResult    = "result"    // GET /v1/results/{key}
	ClassJobPoll   = "jobpoll"   // GET /v1/jobs/{id} (or the job list)
	ClassSweepPoll = "sweeppoll" // GET /v1/sweeps
	ClassFedPoll   = "fedpoll"   // GET {FedURL}/v1/sweeps/{id} on a coordinator
)

var classes = []string{ClassSubmit, ClassResult, ClassJobPoll, ClassSweepPoll, ClassFedPoll}

// Mix weights the request classes. Zero-valued weights drop the class.
// FedPoll defaults to zero everywhere (including DefaultMix), and a
// zero weight adds no rng draws, so existing seeded runs keep their
// exact request sequences.
type Mix struct {
	Submit    int `json:"submit"`
	Result    int `json:"result"`
	JobPoll   int `json:"jobpoll"`
	SweepPoll int `json:"sweeppoll"`
	FedPoll   int `json:"fedpoll,omitempty"`
}

// DefaultMix is submit-heavy but read-dominated in aggregate, shaped
// like a small fleet of clients each submitting and then watching.
func DefaultMix() Mix { return Mix{Submit: 4, Result: 3, JobPoll: 2, SweepPoll: 1} }

func (m Mix) weights() [5]int {
	return [5]int{m.Submit, m.Result, m.JobPoll, m.SweepPoll, m.FedPoll}
}

func (m Mix) total() int { return m.Submit + m.Result + m.JobPoll + m.SweepPoll + m.FedPoll }

// String renders the mix as submit/result/jobpoll/sweeppoll weights,
// with a fifth fedpoll weight only when one is set — so summaries from
// non-federated runs are unchanged.
func (m Mix) String() string {
	if m.FedPoll > 0 {
		return fmt.Sprintf("%d/%d/%d/%d/%d", m.Submit, m.Result, m.JobPoll, m.SweepPoll, m.FedPoll)
	}
	return fmt.Sprintf("%d/%d/%d/%d", m.Submit, m.Result, m.JobPoll, m.SweepPoll)
}

// ParseMix parses "4/3/2/1" (submit/result/jobpoll/sweeppoll) or
// "4/3/2/1/2" with a fifth fedpoll weight.
func ParseMix(s string) (Mix, error) {
	var m Mix
	parts := strings.Split(s, "/")
	if len(parts) != 4 && len(parts) != 5 {
		return m, fmt.Errorf("mix %q: want 4 or 5 weights submit/result/jobpoll/sweeppoll[/fedpoll]", s)
	}
	fields := []*int{&m.Submit, &m.Result, &m.JobPoll, &m.SweepPoll, &m.FedPoll}
	fields = fields[:len(parts)]
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%d", fields[i]); err != nil || *fields[i] < 0 {
			return m, fmt.Errorf("mix %q: bad weight %q", s, p)
		}
	}
	if m.total() == 0 {
		return m, fmt.Errorf("mix %q: all weights are zero", s)
	}
	return m, nil
}

// Config parameterises one load run.
type Config struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Agents is the number of concurrent client goroutines.
	Agents int
	// Requests per agent. When set, the run is closed-loop and exactly
	// Agents*Requests requests fire — the deterministic mode the bench
	// gates use. Mutually exclusive with Duration.
	Requests int
	// Duration bounds an open-ended run: agents fire until it elapses.
	Duration time.Duration
	// Seed fixes every agent's draw sequence (agent i uses Seed+i).
	Seed int64
	// ZipfS is the Zipf skew exponent, > 1. Near 1 (say 1.01) is close
	// to uniform over the experiment list; 1.5 and up concentrates the
	// mass on a few hot keys, which is what stresses dedup + cache.
	ZipfS float64
	// Experiments to draw from, already resolved to concrete IDs.
	Experiments []string
	// Profile name for submissions and result-key derivation.
	Profile string
	// Mix weights the request classes; zero value means DefaultMix.
	Mix Mix
	// FedURL is the federation coordinator's base URL, required when
	// Mix.FedPoll is set; the fedpoll class polls it instead of BaseURL.
	FedURL string
	// FedSweepID targets GET /v1/sweeps/{id} on the coordinator; empty
	// polls the coordinator's sweep list.
	FedSweepID string
	// DrainTimeout bounds the post-run wait for in-flight jobs to
	// settle before the daemon counters are scraped (default 30s).
	DrainTimeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one sized
	// for Agents concurrent connections.
	Client *http.Client
}

// ClassStats aggregates one request class.
type ClassStats struct {
	Requests        int64            `json:"requests"`
	Errors5xx       int64            `json:"errors5xx"`
	TransportErrors int64            `json:"transportErrors"`
	StatusCounts    map[string]int64 `json:"statusCounts"`
	TPS             float64          `json:"tps"`
	MeanMs          float64          `json:"meanMs"`
	P50Ms           float64          `json:"p50Ms"`
	P95Ms           float64          `json:"p95Ms"`
	P99Ms           float64          `json:"p99Ms"`
}

// DaemonStats is the daemon's own accounting, scraped from
// /metrics.json after the run drains. On a fresh daemon these cover
// exactly this run's traffic; against a long-lived daemon they are
// lifetime counters and only the deltas would be attributable.
type DaemonStats struct {
	// Submitted is the scheduler's count of jobs it created; a
	// submission coalesced onto an identical in-flight job counts in
	// Deduped instead, so Submitted+Deduped is the total attempts.
	Submitted int64 `json:"submitted"`
	Executed  int64 `json:"executed"`
	Failed    int64 `json:"failed"`
	Deduped   int64 `json:"deduped"`
	CacheHits int64 `json:"cacheHits"`
	// ReuseHits = Deduped + CacheHits: submissions answered without a
	// fresh execution. The dedup/cache split depends on timing, but on
	// a fresh daemon the sum is deterministic for a fixed seed —
	// every key's first submission executes, every other one reuses,
	// so ReuseHits = attempts − Executed − Failed.
	ReuseHits int64 `json:"reuseHits"`
	// ReuseRatio is ReuseHits over total submission attempts.
	ReuseRatio float64 `json:"reuseRatio"`
}

// SummarySchema versions the on-disk summary layout.
const SummarySchema = 1

// Summary is the run report, written via fsatomic as versioned JSON.
type Summary struct {
	Schema      int      `json:"schema"`
	BaseURL     string   `json:"baseURL"`
	Agents      int      `json:"agents"`
	Requests    int      `json:"requestsPerAgent,omitempty"`
	DurationSec float64  `json:"durationSec,omitempty"`
	Seed        int64    `json:"seed"`
	ZipfS       float64  `json:"zipfS"`
	Profile     string   `json:"profile"`
	Mix         string   `json:"mix"`
	Experiments []string `json:"experiments"`

	WallSec       float64                `json:"wallSec"`
	TotalRequests int64                  `json:"totalRequests"`
	TPS           float64                `json:"tps"`
	Classes       map[string]*ClassStats `json:"classes"`
	Daemon        DaemonStats            `json:"daemon"`
}

// agentTallies is one agent's private accounting — no shared counters
// on the hot path, merged once at the end. (Latency observations go to
// the shared sharded histograms, which are contention-free by design.)
type agentTallies struct {
	requests  [5]int64
	errors5xx [5]int64
	transport [5]int64
	status    [5]map[int]int64
}

// Run fires the configured load and returns its summary. Request-level
// failures (non-2xx, transport errors) are counted, not returned;
// errors are reserved for a run that cannot start or cannot drain.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Agents <= 0 {
		cfg.Agents = 8
	}
	if (cfg.Requests <= 0) == (cfg.Duration <= 0) {
		return nil, fmt.Errorf("loadgen: set exactly one of Requests (closed-loop) or Duration (timed)")
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.01
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("loadgen: ZipfS must be > 1 (got %v)", cfg.ZipfS)
	}
	if len(cfg.Experiments) == 0 {
		return nil, fmt.Errorf("loadgen: no experiments to draw from")
	}
	if cfg.Profile == "" {
		cfg.Profile = "quick"
	}
	profile, err := core.ProfileByName(cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.Mix.FedPoll > 0 && cfg.FedURL == "" {
		return nil, fmt.Errorf("loadgen: Mix.FedPoll is set but FedURL is empty")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Agents
		client = &http.Client{Transport: tr, Timeout: time.Minute}
	}

	// Result-fetch keys are derived, not discovered: the cache is
	// content-addressed, so a client that knows (experiment, profile)
	// knows the key without a prior submit round-trip.
	keys := make([]string, len(cfg.Experiments))
	for i, id := range cfg.Experiments {
		keys[i] = results.Key(id, profile)
	}

	// One sharded histogram per class; agents observe concurrently
	// without contending (that is the point of the sharding).
	reg := obs.NewRegistry()
	hists := make([]*obs.Histogram, len(classes))
	for i, c := range classes {
		hists[i] = reg.NewHistogram("loadgen_"+c+"_seconds",
			"Request latency for the "+c+" class.", obs.FineLatencyBuckets)
	}

	runCtx := ctx
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	tallies := make([]agentTallies, cfg.Agents)
	start := time.Now()
	var wg sync.WaitGroup
	for a := 0; a < cfg.Agents; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runAgent(runCtx, &cfg, client, keys, hists, &tallies[id], id)
		}(a)
	}
	wg.Wait()
	wall := time.Since(start)

	sum := &Summary{
		Schema:      SummarySchema,
		BaseURL:     cfg.BaseURL,
		Agents:      cfg.Agents,
		Requests:    cfg.Requests,
		DurationSec: cfg.Duration.Seconds(),
		Seed:        cfg.Seed,
		ZipfS:       cfg.ZipfS,
		Profile:     cfg.Profile,
		Mix:         cfg.Mix.String(),
		Experiments: append([]string(nil), cfg.Experiments...),
		WallSec:     wall.Seconds(),
		Classes:     make(map[string]*ClassStats, len(classes)),
	}
	for ci, c := range classes {
		cs := &ClassStats{StatusCounts: map[string]int64{}}
		for a := range tallies {
			cs.Requests += tallies[a].requests[ci]
			cs.Errors5xx += tallies[a].errors5xx[ci]
			cs.TransportErrors += tallies[a].transport[ci]
			for code, n := range tallies[a].status[ci] {
				cs.StatusCounts[fmt.Sprintf("%d", code)] += n
			}
		}
		cs.TPS = float64(cs.Requests) / wall.Seconds()
		// Quantiles over an empty histogram are NaN, which is not
		// marshalable JSON — a class with no traffic reports zeros.
		if cs.Requests > 0 {
			snap := hists[ci].Snapshot()
			cs.MeanMs = 1000 * snap.Mean()
			cs.P50Ms = 1000 * snap.Quantile(0.50)
			cs.P95Ms = 1000 * snap.Quantile(0.95)
			cs.P99Ms = 1000 * snap.Quantile(0.99)
		}
		sum.TotalRequests += cs.Requests
		sum.Classes[c] = cs
	}
	sum.TPS = float64(sum.TotalRequests) / wall.Seconds()

	// Drain before scraping: submits are async, so the daemon's
	// executed/reuse split is only final once nothing is in flight.
	if err := drain(ctx, client, cfg.BaseURL, cfg.DrainTimeout); err != nil {
		return sum, err
	}
	ds, err := scrapeDaemon(ctx, client, cfg.BaseURL)
	if err != nil {
		return sum, err
	}
	sum.Daemon = ds
	return sum, nil
}

// runAgent is one closed-loop client. Every random draw comes from a
// private rand.Rand seeded with Seed+agentID, so in Requests mode the
// full (class, experiment) sequence is reproducible.
func runAgent(ctx context.Context, cfg *Config, client *http.Client,
	keys []string, hists []*obs.Histogram, tal *agentTallies, agentID int) {

	rng := rand.New(rand.NewSource(cfg.Seed + int64(agentID)))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Experiments)-1))
	weights := cfg.Mix.weights()
	total := cfg.Mix.total()
	for i := range tal.status {
		tal.status[i] = make(map[int]int64)
	}
	// Recent job IDs this agent created, for the jobpoll class; a
	// fixed-size ring so long runs poll fresh jobs, not just the first 64.
	var ring []string
	ringNext := 0

	for n := 0; cfg.Requests == 0 || n < cfg.Requests; n++ {
		if ctx.Err() != nil {
			return
		}
		// Weighted class pick, then the class-specific draws — all from
		// the agent's rng, in a fixed order per iteration.
		w := rng.Intn(total)
		ci := 0
		for w >= weights[ci] {
			w -= weights[ci]
			ci++
		}
		var (
			method, url string
			body        string
		)
		switch classes[ci] {
		case ClassSubmit:
			exp := cfg.Experiments[zipf.Uint64()]
			method, url = http.MethodPost, cfg.BaseURL+"/v1/jobs"
			body = fmt.Sprintf(`{"experiments":[%q],"profile":%q}`, exp, cfg.Profile)
		case ClassResult:
			method, url = http.MethodGet, cfg.BaseURL+"/v1/results/"+keys[zipf.Uint64()]
		case ClassJobPoll:
			if len(ring) > 0 {
				method, url = http.MethodGet, cfg.BaseURL+"/v1/jobs/"+ring[rng.Intn(len(ring))]
			} else {
				method, url = http.MethodGet, cfg.BaseURL+"/v1/jobs"
			}
		case ClassSweepPoll:
			method, url = http.MethodGet, cfg.BaseURL+"/v1/sweeps"
		case ClassFedPoll:
			if cfg.FedSweepID != "" {
				method, url = http.MethodGet, cfg.FedURL+"/v1/sweeps/"+cfg.FedSweepID
			} else {
				method, url = http.MethodGet, cfg.FedURL+"/v1/sweeps"
			}
		}

		req, err := http.NewRequestWithContext(ctx, method, url, strings.NewReader(body))
		if err != nil {
			tal.transport[ci]++
			continue
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		hists[ci].Observe(time.Since(t0).Seconds())
		tal.requests[ci]++
		if err != nil {
			// A timed run's deadline tearing down an in-flight request
			// is shutdown, not a daemon failure.
			if ctx.Err() != nil {
				tal.requests[ci]--
				return
			}
			tal.transport[ci]++
			continue
		}
		tal.status[ci][resp.StatusCode]++
		if resp.StatusCode >= 500 {
			tal.errors5xx[ci]++
		}
		if classes[ci] == ClassSubmit && resp.StatusCode < 300 {
			if id := firstJobID(resp.Body); id != "" {
				if len(ring) < 64 {
					ring = append(ring, id)
				} else {
					ring[ringNext] = id
					ringNext = (ringNext + 1) % len(ring)
				}
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// firstJobID pulls jobs[0].id out of a submit response without
// decoding the whole Info.
func firstJobID(r io.Reader) string {
	var out struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(r).Decode(&out); err != nil || len(out.Jobs) == 0 {
		return ""
	}
	return out.Jobs[0].ID
}

// daemonMetrics mirrors the subset of GET /metrics.json loadgen needs.
type daemonMetrics struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsExecuted  int64 `json:"jobs_executed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsDeduped   int64 `json:"jobs_deduped"`
	JobsCacheHits int64 `json:"jobs_cache_hits"`
	JobsInFlight  int   `json:"jobs_in_flight"`
}

func fetchMetrics(ctx context.Context, client *http.Client, baseURL string) (daemonMetrics, error) {
	var m daemonMetrics
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics.json", nil)
	if err != nil {
		return m, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("metrics.json: status %d", resp.StatusCode)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

func drain(ctx context.Context, client *http.Client, baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		m, err := fetchMetrics(ctx, client, baseURL)
		if err == nil && m.JobsInFlight == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: drain: %w", err)
			}
			return fmt.Errorf("loadgen: drain: %d job(s) still in flight after %s", m.JobsInFlight, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func scrapeDaemon(ctx context.Context, client *http.Client, baseURL string) (DaemonStats, error) {
	m, err := fetchMetrics(ctx, client, baseURL)
	if err != nil {
		return DaemonStats{}, fmt.Errorf("loadgen: scrape: %w", err)
	}
	ds := DaemonStats{
		Submitted: m.JobsSubmitted,
		Executed:  m.JobsExecuted,
		Failed:    m.JobsFailed,
		Deduped:   m.JobsDeduped,
		CacheHits: m.JobsCacheHits,
	}
	ds.ReuseHits = ds.Deduped + ds.CacheHits
	if attempts := ds.Submitted + ds.Deduped; attempts > 0 {
		ds.ReuseRatio = float64(ds.ReuseHits) / float64(attempts)
	}
	return ds, nil
}

// WriteSummary writes s as indented JSON via an atomic rename,
// creating the parent directory if needed.
func WriteSummary(path string, s *Summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return fsatomic.WriteFile(path, append(data, '\n'))
}

// Render formats the summary as a terminal table.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d agents, seed %d, zipf s=%.2f, mix %s, %d experiments, profile %s\n",
		s.Agents, s.Seed, s.ZipfS, s.Mix, len(s.Experiments), s.Profile)
	fmt.Fprintf(&b, "wall %.2fs   total %d req   %.0f req/s\n\n", s.WallSec, s.TotalRequests, s.TPS)
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s %6s %7s\n",
		"class", "requests", "tps", "p50(ms)", "p95(ms)", "p99(ms)", "5xx", "neterr")
	for _, c := range classes {
		cs := s.Classes[c]
		if cs == nil || cs.Requests == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %9d %9.0f %9.3f %9.3f %9.3f %6d %7d\n",
			c, cs.Requests, cs.TPS, cs.P50Ms, cs.P95Ms, cs.P99Ms, cs.Errors5xx, cs.TransportErrors)
	}
	d := s.Daemon
	fmt.Fprintf(&b, "\ndaemon: submitted=%d executed=%d deduped=%d cacheHits=%d failed=%d reuse=%.1f%%\n",
		d.Submitted, d.Executed, d.Deduped, d.CacheHits, d.Failed, 100*d.ReuseRatio)
	statuses := s.statusLine()
	if statuses != "" {
		fmt.Fprintf(&b, "status codes: %s\n", statuses)
	}
	return b.String()
}

// statusLine folds all classes' status counts into one sorted line.
func (s *Summary) statusLine() string {
	merged := map[string]int64{}
	for _, cs := range s.Classes {
		for code, n := range cs.StatusCounts {
			merged[code] += n
		}
	}
	codes := make([]string, 0, len(merged))
	for code := range merged {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	parts := make([]string, 0, len(codes))
	for _, code := range codes {
		parts = append(parts, fmt.Sprintf("%s:%d", code, merged[code]))
	}
	return strings.Join(parts, " ")
}
