package cost

import (
	"math"
	"testing"
	"testing/quick"

	"imagebench/internal/vtime"
)

// Property: every modeled time is non-negative and monotone in bytes,
// for every operation.
func TestAlgTimeMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		for op := Op(0); op < numOps; op++ {
			tl, th := m.AlgTime(op, lo), m.AlgTime(op, hi)
			if tl < 0 || th < 0 || tl > th {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization models are non-negative and monotone too.
func TestSerializationMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		type pair struct{ l, h int64 }
		checks := []pair{
			{int64(m.GobTime(lo)), int64(m.GobTime(hi))},
			{int64(m.TSVTime(lo)), int64(m.TSVTime(hi))},
			{int64(m.CSVTime(lo)), int64(m.CSVTime(hi))},
			{int64(m.TensorTime(lo)), int64(m.TensorTime(hi))},
			{int64(m.PyIPCTime(lo)), int64(m.PyIPCTime(hi))},
			{int64(m.FormatTime(lo)), int64(m.FormatTime(hi))},
			{int64(m.S3Time(lo)), int64(m.S3Time(hi))},
		}
		for _, c := range checks {
			if c.l < 0 || c.l > c.h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Jitter is deterministic per key and bounded by the
// configured fraction.
func TestJitterBoundedDeterministicProperty(t *testing.T) {
	m := Default()
	f := func(key string, durMs uint16) bool {
		d := int64(durMs) * 1e6
		j1 := m.Jitter(key, vtime.Duration(d))
		j2 := m.Jitter(key, vtime.Duration(d))
		if j1 != j2 {
			return false
		}
		if d == 0 {
			return j1 == 0
		}
		ratio := float64(j1) / float64(d)
		return ratio >= 1-m.JitterFrac-1e-9 && ratio <= 1+m.JitterFrac+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dur is linear: doubling the bytes doubles the duration (to
// rounding).
func TestDurLinearProperty(t *testing.T) {
	f := func(n uint32) bool {
		if n == 0 {
			return Dur(0, 1e9) == 0
		}
		d1 := float64(Dur(int64(n), 1e9))
		d2 := float64(Dur(int64(n)*2, 1e9))
		return math.Abs(d2-2*d1) <= 2 // ns rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
