package cost

import (
	"testing"
	"time"

	"imagebench/internal/vtime"
)

func TestDur(t *testing.T) {
	if d := Dur(100e6, 100e6); d != time.Second {
		t.Errorf("Dur = %v", d)
	}
	if Dur(0, 100) != 0 || Dur(100, 0) != 0 || Dur(-5, 100) != 0 {
		t.Error("degenerate Dur not zero")
	}
}

func TestModelTimes(t *testing.T) {
	m := Default()
	if m.AlgTime(Denoise, 1_600_000) != time.Second {
		t.Errorf("denoise time %v", m.AlgTime(Denoise, 1_600_000))
	}
	if m.S3Fetch(2, 0) != 2*m.S3GetLatency {
		t.Error("S3Fetch latency accounting")
	}
	if m.SchedTime(Dask, 10) <= m.SchedTime(Dask, 1) {
		t.Error("Dask sched cost should grow with cluster size")
	}
	if m.SchedTime(Myria, 64) >= m.SchedTime(Dask, 64) {
		t.Error("Myria dispatch should be cheaper than Dask's")
	}
}

func TestJitterDeterministicBounded(t *testing.T) {
	m := Default()
	base := vtime.Duration(10 * time.Second)
	a := m.Jitter("key1", base)
	b := m.Jitter("key1", base)
	if a != b {
		t.Error("jitter not deterministic")
	}
	lo := time.Duration(float64(base) * (1 - m.JitterFrac))
	hi := time.Duration(float64(base) * (1 + m.JitterFrac))
	for _, key := range []string{"a", "b", "c", "d", "e", "f"} {
		d := m.Jitter(key, base)
		if d < lo || d > hi {
			t.Errorf("jitter %v outside [%v,%v]", d, lo, hi)
		}
	}
	m.JitterFrac = 0
	if m.Jitter("x", base) != base {
		t.Error("zero jitter should be identity")
	}
}

func TestStringers(t *testing.T) {
	if Denoise.String() != "denoise" || Spark.String() != "Spark" {
		t.Error("stringers wrong")
	}
}
