// Package cost is the calibrated cost model behind the cluster simulator.
//
// Every virtual duration charged by an engine comes from this package:
// algorithm throughputs (how fast one worker core chews through bytes of a
// given operation), serialization taxes (gob, TSV/CSV, tensor conversion,
// the Python-process IPC boundary), and per-system constants (startup
// latency, scheduler cost per task).
//
// Throughputs are expressed against *paper-scale* byte counts: the synthetic
// datasets are small, but every item carries the size its real-world
// counterpart would have (e.g. a 145×145×174 float32 dMRI volume is
// ~14.6 MB), so modeled runtimes land in the paper's regime. Absolute values
// are calibration choices; the experiments in EXPERIMENTS.md compare
// *shapes* (who wins, by what factor, where crossovers fall), which derive
// from the engines' architecture, not from these constants.
package cost

import (
	"hash/fnv"
	"time"

	"imagebench/internal/vtime"
)

// Op identifies a pipeline operation with a calibrated per-worker throughput.
type Op int

// Operations used by the two use cases. Neuroscience: Filter through FitDTM.
// Astronomy: Preprocess through DetectSources.
const (
	// Neuroscience pipeline ops.
	Filter  Op = iota // select b0 volumes (IO-bound scan)
	Mean              // per-voxel mean across volumes
	Otsu              // histogram threshold on one volume
	Denoise           // 3D non-local means (compute-bound)
	Regroup           // voxel-block regrouping for model fit
	FitDTM            // per-voxel diffusion tensor fit

	// Astronomy pipeline ops.
	Preprocess    // background estimation, cosmic-ray repair, calibration
	PatchMap      // exposure → patch flatmap and regrouping
	CoaddIter     // one sigma-clipping iteration over a patch stack
	DetectSources // threshold + connected components on a coadd

	numOps
)

var opNames = [...]string{
	Filter: "filter", Mean: "mean", Otsu: "otsu", Denoise: "denoise",
	Regroup: "regroup", FitDTM: "fit-dtm", Preprocess: "preprocess",
	PatchMap: "patch-map", CoaddIter: "coadd-iter", DetectSources: "detect-sources",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// System identifies one of the five evaluated engines.
type System int

// The five systems evaluated by the paper, plus Reference for the
// single-node baseline implementations.
const (
	Myria System = iota
	Spark
	SciDB
	Dask
	TensorFlow
	Reference
	numSystems
)

var sysNames = [...]string{
	Myria: "Myria", Spark: "Spark", SciDB: "SciDB",
	Dask: "Dask", TensorFlow: "TensorFlow", Reference: "Reference",
}

func (s System) String() string {
	if int(s) < len(sysNames) {
		return sysNames[s]
	}
	return "system?"
}

// Model gathers every tunable constant. Construct with Default and override
// fields in tests or ablation benches.
type Model struct {
	// AlgBytesPerSec is the per-worker throughput of each operation,
	// in paper-scale bytes per virtual second.
	AlgBytesPerSec [numOps]float64

	// Serialization and conversion throughputs, bytes per virtual second.
	GobBytesPerSec    float64 // language-native serialization (pickling)
	TSVBytesPerSec    float64 // TSV encode/decode (SciDB stream interface)
	CSVBytesPerSec    float64 // CSV parse (SciDB aio_input)
	TensorBytesPerSec float64 // NumPy array ↔ tensor conversion (TensorFlow)
	PyIPCBytesPerSec  float64 // crossing the Python-process boundary, each way
	FormatBytesPerSec float64 // NIfTI/FITS decode into in-memory arrays

	// S3BytesPerSec is the per-connection object-store throughput.
	S3BytesPerSec float64
	// S3GetLatency is the fixed per-object GET latency.
	S3GetLatency vtime.Duration
	// S3ListPerKey is the per-key cost of enumerating a bucket listing
	// (paid serially by Spark's driver before scheduling downloads).
	S3ListPerKey vtime.Duration

	// Startup is the fixed virtual cost of bringing up each system's
	// runtime (JVM start, scheduler connect, catalog load, ...).
	Startup [numSystems]vtime.Duration

	// SchedPerTask is the centralized scheduler's serial cost to dispatch
	// one task. It is charged on a single scheduler timeline, so it bounds
	// scalability (Amdahl): Dask's dynamic scheduler pays the most.
	SchedPerTask [numSystems]vtime.Duration

	// StealPerTaskPerNode is extra per-task scheduler cost proportional to
	// cluster size, modeling work-stealing chatter. Only Dask sets it.
	StealPerTaskPerNode [numSystems]vtime.Duration

	// JitterFrac is the half-width of the deterministic per-task duration
	// jitter (e.g. 0.2 → task costs vary in [0.8,1.2]× of nominal). Jitter
	// models data skew; stage barriers amplify it, pipelining hides it.
	JitterFrac float64
}

// Default returns the calibrated model. Calibration notes:
//   - Denoise (3D non-local means) dominates the neuroscience pipeline,
//     ~1.6 MB/s/core, matching tens of seconds per 14.6 MB volume.
//   - Filter and Mean are scan-speed operations.
//   - Preprocess (background + CR repair) is the astronomy hot spot.
//   - The Python IPC tax is what separates Spark's filter from Myria's
//     pushed-down selection (Fig 12a).
func Default() *Model {
	m := &Model{
		GobBytesPerSec:    300e6,
		TSVBytesPerSec:    60e6,
		CSVBytesPerSec:    80e6,
		TensorBytesPerSec: 120e6,
		PyIPCBytesPerSec:  200e6,
		FormatBytesPerSec: 500e6,
		S3BytesPerSec:     60e6,
		S3GetLatency:      50 * time.Millisecond,
		S3ListPerKey:      15 * time.Millisecond,
		JitterFrac:        0.25,
	}
	m.AlgBytesPerSec = [numOps]float64{
		Filter:        800e6,
		Mean:          300e6,
		Otsu:          400e6,
		Denoise:       1.6e6,
		Regroup:       250e6,
		FitDTM:        6e6,
		Preprocess:    12e6,
		PatchMap:      150e6,
		CoaddIter:     80e6,
		DetectSources: 60e6,
	}
	m.Startup = [numSystems]vtime.Duration{
		Myria:      4 * time.Second,
		Spark:      8 * time.Second,
		SciDB:      6 * time.Second,
		Dask:       25 * time.Second,
		TensorFlow: 15 * time.Second,
		Reference:  0,
	}
	m.SchedPerTask = [numSystems]vtime.Duration{
		Myria:      100 * time.Microsecond,
		Spark:      800 * time.Microsecond,
		SciDB:      150 * time.Microsecond,
		Dask:       1500 * time.Microsecond,
		TensorFlow: 500 * time.Microsecond,
	}
	m.StealPerTaskPerNode = [numSystems]vtime.Duration{
		Dask: 60 * time.Microsecond,
	}
	return m
}

// AlgTime returns the virtual duration for one worker to run op over nbytes
// of paper-scale data.
func (m *Model) AlgTime(op Op, nbytes int64) vtime.Duration {
	return Dur(nbytes, m.AlgBytesPerSec[op])
}

// GobTime models language-native (de)serialization of nbytes.
func (m *Model) GobTime(nbytes int64) vtime.Duration { return Dur(nbytes, m.GobBytesPerSec) }

// TSVTime models TSV conversion of nbytes (one direction).
func (m *Model) TSVTime(nbytes int64) vtime.Duration { return Dur(nbytes, m.TSVBytesPerSec) }

// CSVTime models CSV parsing of nbytes.
func (m *Model) CSVTime(nbytes int64) vtime.Duration { return Dur(nbytes, m.CSVBytesPerSec) }

// TensorTime models array↔tensor conversion of nbytes (one direction).
func (m *Model) TensorTime(nbytes int64) vtime.Duration { return Dur(nbytes, m.TensorBytesPerSec) }

// PyIPCTime models moving nbytes across the Python process boundary once.
func (m *Model) PyIPCTime(nbytes int64) vtime.Duration { return Dur(nbytes, m.PyIPCBytesPerSec) }

// FormatTime models decoding nbytes of NIfTI/FITS into arrays.
func (m *Model) FormatTime(nbytes int64) vtime.Duration { return Dur(nbytes, m.FormatBytesPerSec) }

// S3Time models one connection fetching nbytes from the object store.
func (m *Model) S3Time(nbytes int64) vtime.Duration { return Dur(nbytes, m.S3BytesPerSec) }

// S3Fetch models fetching nObjects totalling nbytes over one connection,
// including per-object GET latency.
func (m *Model) S3Fetch(nObjects int, nbytes int64) vtime.Duration {
	return vtime.Duration(nObjects)*m.S3GetLatency + m.S3Time(nbytes)
}

// SchedTime returns the scheduler dispatch cost for one task of sys on a
// cluster with the given node count.
func (m *Model) SchedTime(sys System, nodes int) vtime.Duration {
	return m.SchedPerTask[sys] + vtime.Duration(nodes)*m.StealPerTaskPerNode[sys]
}

// Jitter deterministically perturbs d by up to ±JitterFrac based on key,
// modeling per-task data skew. The same key always yields the same factor.
func (m *Model) Jitter(key string, d vtime.Duration) vtime.Duration {
	if m.JitterFrac <= 0 || d <= 0 {
		return d
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	u := float64(h.Sum64()%1_000_000) / 1_000_000 // [0,1)
	f := 1 - m.JitterFrac + 2*m.JitterFrac*u
	return vtime.Duration(float64(d) * f)
}

// Dur converts nbytes at a bytes-per-second rate to a duration.
func Dur(nbytes int64, bytesPerSec float64) vtime.Duration {
	if nbytes <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return vtime.Duration(float64(nbytes) / bytesPerSec * 1e9)
}
