package npy

import (
	"testing"
	"testing/quick"

	"imagebench/internal/volume"
)

func TestRoundTrip(t *testing.T) {
	v := volume.New3(3, 4, 5)
	for i := range v.Data {
		v.Data[i] = float64(i) * 0.25
	}
	got, err := Decode(Encode(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.NX != 3 || got.NY != 4 || got.NZ != 5 {
		t.Fatalf("shape %dx%dx%d", got.NX, got.NY, got.NZ)
	}
	if volume.MaxAbsDiff(got, v) != 0 {
		t.Error("round trip differs")
	}
}

func TestHeaderAlignment(t *testing.T) {
	data := Encode(volume.New3(1, 1, 1))
	// Data section must start 64-byte aligned per the .npy spec.
	hlen := int(data[8]) | int(data[9])<<8
	if (10+hlen)%64 != 0 {
		t.Errorf("data offset %d not 64-aligned", 10+hlen)
	}
}

func TestDecodeValidation(t *testing.T) {
	data := Encode(volume.New3(2, 2, 2))
	if _, err := Decode(data[:4]); err == nil {
		t.Error("short file accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(data[:len(data)-8]); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals [12]float64, dims uint8) bool {
		nx := int(dims%3) + 1
		v := volume.New3(nx, 2, 2)
		for i := range v.Data {
			v.Data[i] = vals[i%12]
		}
		got, err := Decode(Encode(v))
		return err == nil && volume.MaxAbsDiff(got, v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
