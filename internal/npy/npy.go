// Package npy implements the minimal NumPy .npy v1.0 format for 3-D
// float64 arrays. The paper's Spark and Myria implementations stage
// per-volume pickled NumPy arrays in S3; this package is the Go equivalent
// of that staging format.
package npy

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"regexp"
	"strconv"

	"imagebench/internal/volume"
)

var magic = []byte("\x93NUMPY\x01\x00")

// Encode serializes a 3-D volume as a .npy v1.0 file with dtype <f8.
func Encode(v *volume.V3) []byte {
	header := fmt.Sprintf("{'descr': '<f8', 'fortran_order': False, 'shape': (%d, %d, %d), }",
		v.NZ, v.NY, v.NX) // NumPy C-order: shape (z,y,x) for x-fastest data
	// Pad header with spaces so that len(magic)+2+len(header) ≡ 0 mod 64,
	// ending with a newline, per the .npy spec.
	total := len(magic) + 2 + len(header) + 1
	pad := (64 - total%64) % 64
	header += string(bytes.Repeat([]byte{' '}, pad)) + "\n"

	// The output size is known exactly, so build it in place: one
	// allocation instead of the log(n) doubling copies (and per-voxel
	// Write calls) a bytes.Buffer would cost on this hot path.
	out := make([]byte, 0, len(magic)+2+len(header)+len(v.Data)*8)
	out = append(out, magic...)
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	out = append(out, hlen[:]...)
	out = append(out, header...)
	for _, x := range v.Data {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
	}
	return out
}

var shapeRe = regexp.MustCompile(`'shape':\s*\((\d+),\s*(\d+),\s*(\d+)\s*,?\s*\)`)

// Decode parses a .npy file written by Encode back into a volume.
func Decode(data []byte) (*volume.V3, error) {
	return DecodeArena(data, nil)
}

// DecodeArena is Decode with the output volume drawn from arena (nil
// means a plain allocation). Every voxel is overwritten, so a pooled
// buffer needs no clearing; callers that release the volume back to
// the arena make repeated decodes allocation-free in steady state.
func DecodeArena(data []byte, arena *volume.Arena) (*volume.V3, error) {
	if len(data) < len(magic)+2 || !bytes.Equal(data[:len(magic)], magic) {
		return nil, fmt.Errorf("npy: bad magic")
	}
	hlen := int(binary.LittleEndian.Uint16(data[len(magic):]))
	hdrStart := len(magic) + 2
	if len(data) < hdrStart+hlen {
		return nil, fmt.Errorf("npy: truncated header")
	}
	header := string(data[hdrStart : hdrStart+hlen])
	if !bytes.Contains([]byte(header), []byte("'<f8'")) {
		return nil, fmt.Errorf("npy: unsupported dtype in %q", header)
	}
	m := shapeRe.FindStringSubmatch(header)
	if m == nil {
		return nil, fmt.Errorf("npy: cannot parse shape in %q", header)
	}
	nz, _ := strconv.Atoi(m[1])
	ny, _ := strconv.Atoi(m[2])
	nx, _ := strconv.Atoi(m[3])
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("npy: bad shape %dx%dx%d", nx, ny, nz)
	}
	v := arena.Get(nx, ny, nz)
	off := hdrStart + hlen
	need := off + len(v.Data)*8
	if len(data) < need {
		return nil, fmt.Errorf("npy: truncated data: have %d, need %d", len(data), need)
	}
	for i := range v.Data {
		v.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	return v, nil
}
