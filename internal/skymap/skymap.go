// Package skymap implements the sky geometry of the astronomy use case:
// sensor exposures positioned on a pixel sky plane (a linearized WCS), the
// rectangular patch grid, the exposure→patch overlap flatmap (Step 2A),
// patch-exposure assembly, and sigma-clipped co-addition (Step 3A).
package skymap

import (
	"fmt"
	"math"
	"sort"

	"imagebench/internal/imaging"
)

// Mask plane bits carried with each exposure pixel.
const (
	MaskBad       uint8 = 1 << 0 // cosmetic defect
	MaskCosmicRay uint8 = 1 << 1 // repaired cosmic-ray hit
	MaskClipped   uint8 = 1 << 2 // nulled by co-addition outlier clipping
)

// Exposure is one sensor read-out placed on the sky: a flux plane, a
// per-pixel variance plane, and a mask plane, with pixel (0,0) at sky
// position (X0,Y0). This mirrors the FITS structure in the paper's data
// (header + three 2-D arrays).
type Exposure struct {
	Visit  int
	Sensor int
	X0, Y0 int
	Flux   *imaging.Image
	Var    *imaging.Image
	Mask   []uint8
}

// NewExposure allocates an exposure of the given geometry.
func NewExposure(visit, sensor, x0, y0, w, h int) *Exposure {
	return &Exposure{
		Visit: visit, Sensor: sensor, X0: x0, Y0: y0,
		Flux: imaging.NewImage(w, h),
		Var:  imaging.NewImage(w, h),
		Mask: make([]uint8, w*h),
	}
}

// Bytes returns the in-memory size of the exposure's pixel data.
func (e *Exposure) Bytes() int64 {
	return e.Flux.Bytes() + e.Var.Bytes() + int64(len(e.Mask))
}

// Clone returns a deep copy.
func (e *Exposure) Clone() *Exposure {
	c := *e
	c.Flux = e.Flux.Clone()
	c.Var = e.Var.Clone()
	c.Mask = append([]uint8(nil), e.Mask...)
	return &c
}

// Patch identifies one rectangular sky region in the patch grid.
type Patch struct{ PX, PY int }

func (p Patch) String() string { return fmt.Sprintf("patch(%d,%d)", p.PX, p.PY) }

// Grid partitions the sky plane into PatchW×PatchH-pixel patches.
type Grid struct {
	PatchW, PatchH int
}

// Overlaps returns the patches a rectangle at (x0,y0) of size w×h touches,
// in row-major order. In the paper each exposure lands in 1–6 patches.
func (g Grid) Overlaps(x0, y0, w, h int) []Patch {
	if w <= 0 || h <= 0 {
		return nil
	}
	px0 := floorDiv(x0, g.PatchW)
	px1 := floorDiv(x0+w-1, g.PatchW)
	py0 := floorDiv(y0, g.PatchH)
	py1 := floorDiv(y0+h-1, g.PatchH)
	var out []Patch
	for py := py0; py <= py1; py++ {
		for px := px0; px <= px1; px++ {
			out = append(out, Patch{PX: px, PY: py})
		}
	}
	return out
}

// ExposureOverlaps returns the patches e touches.
func (g Grid) ExposureOverlaps(e *Exposure) []Patch {
	return g.Overlaps(e.X0, e.Y0, e.Flux.W, e.Flux.H)
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// PatchExposure is the pixels one visit contributes to one patch: a
// patch-sized flux/variance raster with a validity plane (pixels outside
// the contributing sensors are invalid).
type PatchExposure struct {
	Patch Patch
	Visit int
	Flux  *imaging.Image
	Var   *imaging.Image
	Valid []bool
}

// NewPatchExposure allocates an all-invalid patch exposure.
func NewPatchExposure(g Grid, p Patch, visit int) *PatchExposure {
	return &PatchExposure{
		Patch: p, Visit: visit,
		Flux:  imaging.NewImage(g.PatchW, g.PatchH),
		Var:   imaging.NewImage(g.PatchW, g.PatchH),
		Valid: make([]bool, g.PatchW*g.PatchH),
	}
}

// Bytes returns the in-memory size of the patch exposure's pixel data.
func (pe *PatchExposure) Bytes() int64 {
	return pe.Flux.Bytes() + pe.Var.Bytes() + int64(len(pe.Valid))
}

// ValidCount returns the number of valid pixels.
func (pe *PatchExposure) ValidCount() int {
	n := 0
	for _, v := range pe.Valid {
		if v {
			n++
		}
	}
	return n
}

// Project copies the pixels of e that fall inside patch p into a new
// PatchExposure. Pixels masked MaskBad are left invalid.
func (g Grid) Project(e *Exposure, p Patch) *PatchExposure {
	pe := NewPatchExposure(g, p, e.Visit)
	baseX, baseY := p.PX*g.PatchW, p.PY*g.PatchH
	for y := 0; y < e.Flux.H; y++ {
		sy := e.Y0 + y - baseY
		if sy < 0 || sy >= g.PatchH {
			continue
		}
		for x := 0; x < e.Flux.W; x++ {
			sx := e.X0 + x - baseX
			if sx < 0 || sx >= g.PatchW {
				continue
			}
			if e.Mask[y*e.Flux.W+x]&MaskBad != 0 {
				continue
			}
			di := sy*g.PatchW + sx
			pe.Flux.Pix[di] = e.Flux.At(x, y)
			pe.Var.Pix[di] = e.Var.At(x, y)
			pe.Valid[di] = true
		}
	}
	return pe
}

// Merge unions the valid pixels of src into dst (same patch and visit).
// Overlapping sensor pixels keep dst's value; sensors within a visit abut
// rather than overlap, so ties are rare and benign.
func Merge(dst, src *PatchExposure) error {
	if dst.Patch != src.Patch || dst.Visit != src.Visit {
		return fmt.Errorf("skymap: merging %v/visit %d into %v/visit %d",
			src.Patch, src.Visit, dst.Patch, dst.Visit)
	}
	for i, v := range src.Valid {
		if v && !dst.Valid[i] {
			dst.Flux.Pix[i] = src.Flux.Pix[i]
			dst.Var.Pix[i] = src.Var.Pix[i]
			dst.Valid[i] = true
		}
	}
	return nil
}

// AssemblePatches groups a visit's projected pieces by patch and merges
// each group into one PatchExposure per (patch, visit) — the grouping half
// of Step 2A. The input may contain pieces from many visits.
func AssemblePatches(pieces []*PatchExposure) ([]*PatchExposure, error) {
	type key struct {
		p     Patch
		visit int
	}
	byKey := make(map[key]*PatchExposure)
	var order []key
	for _, pc := range pieces {
		k := key{pc.Patch, pc.Visit}
		if cur, ok := byKey[k]; ok {
			if err := Merge(cur, pc); err != nil {
				return nil, err
			}
		} else {
			byKey[k] = pc
			order = append(order, k)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.p.PY != b.p.PY {
			return a.p.PY < b.p.PY
		}
		if a.p.PX != b.p.PX {
			return a.p.PX < b.p.PX
		}
		return a.visit < b.visit
	})
	out := make([]*PatchExposure, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out, nil
}

// Coadd is the co-added image of one patch across visits.
type Coadd struct {
	Patch   Patch
	Flux    *imaging.Image // per-pixel sum of clipped stack
	NVisits *imaging.Image // per-pixel count of contributing visits
}

// CoaddPatch stacks the given patch exposures (all for the same patch,
// different visits) with iterative outlier rejection: in each of iters
// rounds it computes the per-pixel mean and standard deviation across
// visits and nulls samples more than nsigma standard deviations from the
// mean; it then sums the surviving samples (the paper's Step 3A, with
// iters=2, nsigma=3).
func CoaddPatch(stack []*PatchExposure, nsigma float64, iters int) (*Coadd, error) {
	st, err := NewCoaddState(stack)
	if err != nil {
		return nil, err
	}
	for it := 0; it < iters; it++ {
		st.ClipIteration(nsigma)
	}
	return st.Sum(), nil
}

// CoaddState exposes co-addition one clipping iteration at a time, for
// engines whose iteration is driven externally (SciDB's AQL statements run
// one materialized pass per iteration).
type CoaddState struct {
	stack []*PatchExposure
	alive [][]bool
}

// NewCoaddState starts a stepwise co-addition over the stack.
func NewCoaddState(stack []*PatchExposure) (*CoaddState, error) {
	if len(stack) == 0 {
		return nil, fmt.Errorf("skymap: empty coadd stack")
	}
	p := stack[0].Patch
	for _, pe := range stack {
		if pe.Patch != p || pe.Flux.W != stack[0].Flux.W || pe.Flux.H != stack[0].Flux.H {
			return nil, fmt.Errorf("skymap: inconsistent stack for %v", p)
		}
	}
	st := &CoaddState{stack: stack}
	for _, pe := range stack {
		st.alive = append(st.alive, append([]bool(nil), pe.Valid...))
	}
	return st, nil
}

// ClipIteration performs one mean/std outlier-rejection pass.
func (st *CoaddState) ClipIteration(nsigma float64) {
	clipOnce(st.stack, st.alive, nsigma)
}

// Sum produces the final coadd from the surviving samples.
func (st *CoaddState) Sum() *Coadd {
	w, h := st.stack[0].Flux.W, st.stack[0].Flux.H
	co := &Coadd{
		Patch:   st.stack[0].Patch,
		Flux:    imaging.NewImage(w, h),
		NVisits: imaging.NewImage(w, h),
	}
	for v, pe := range st.stack {
		for i, ok := range st.alive[v] {
			if ok {
				co.Flux.Pix[i] += pe.Flux.Pix[i]
				co.NVisits.Pix[i]++
			}
		}
	}
	return co
}

// clipOnce performs one mean/std pass and nulls >nsigma outliers.
func clipOnce(stack []*PatchExposure, alive [][]bool, nsigma float64) {
	n := len(stack[0].Valid)
	for i := 0; i < n; i++ {
		var sum, sq float64
		var cnt int
		for v := range stack {
			if alive[v][i] {
				f := stack[v].Flux.Pix[i]
				sum += f
				sq += f * f
				cnt++
			}
		}
		if cnt < 3 {
			continue // too few samples to clip meaningfully
		}
		mean := sum / float64(cnt)
		variance := sq/float64(cnt) - mean*mean
		if variance <= 0 {
			continue
		}
		std := math.Sqrt(variance)
		for v := range stack {
			if alive[v][i] && math.Abs(stack[v].Flux.Pix[i]-mean) > nsigma*std {
				alive[v][i] = false
			}
		}
	}
}

// GroupByPatch buckets patch exposures by patch, preserving visit order
// within each bucket, returning patches in row-major order.
func GroupByPatch(pes []*PatchExposure) (patches []Patch, groups map[Patch][]*PatchExposure) {
	groups = make(map[Patch][]*PatchExposure)
	for _, pe := range pes {
		if _, ok := groups[pe.Patch]; !ok {
			patches = append(patches, pe.Patch)
		}
		groups[pe.Patch] = append(groups[pe.Patch], pe)
	}
	sort.Slice(patches, func(i, j int) bool {
		if patches[i].PY != patches[j].PY {
			return patches[i].PY < patches[j].PY
		}
		return patches[i].PX < patches[j].PX
	})
	return patches, groups
}
