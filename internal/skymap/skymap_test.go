package skymap

import (
	"testing"
	"testing/quick"
)

func TestOverlapsCounts(t *testing.T) {
	g := Grid{PatchW: 10, PatchH: 10}
	// Fully inside one patch.
	if ps := g.Overlaps(1, 1, 5, 5); len(ps) != 1 || ps[0] != (Patch{0, 0}) {
		t.Errorf("inside: %v", ps)
	}
	// Straddling a vertical boundary.
	if ps := g.Overlaps(8, 0, 5, 5); len(ps) != 2 {
		t.Errorf("straddle: %v", ps)
	}
	// Straddling a corner: 4 patches.
	if ps := g.Overlaps(8, 8, 5, 5); len(ps) != 4 {
		t.Errorf("corner: %v", ps)
	}
	// Negative coordinates use floor division.
	if ps := g.Overlaps(-3, -3, 2, 2); len(ps) != 1 || ps[0] != (Patch{-1, -1}) {
		t.Errorf("negative: %v", ps)
	}
	// A sensor wider than 2 patches can hit 6 (3×2).
	if ps := g.Overlaps(5, 5, 21, 10); len(ps) != 6 {
		t.Errorf("wide: %d patches", len(ps))
	}
}

func TestOverlapsCoverProperty(t *testing.T) {
	// Property: every pixel of the rectangle falls in exactly one of the
	// returned patches.
	g := Grid{PatchW: 7, PatchH: 5}
	f := func(x0r, y0r int8, wr, hr uint8) bool {
		x0, y0 := int(x0r), int(y0r)
		w, h := int(wr%20)+1, int(hr%20)+1
		patches := map[Patch]bool{}
		for _, p := range g.Overlaps(x0, y0, w, h) {
			patches[p] = true
		}
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				p := Patch{PX: floorDiv(x, g.PatchW), PY: floorDiv(y, g.PatchH)}
				if !patches[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectPlacesPixels(t *testing.T) {
	g := Grid{PatchW: 10, PatchH: 10}
	e := NewExposure(0, 0, 8, 2, 6, 4) // spans patches (0,0) and (1,0)
	for i := range e.Flux.Pix {
		e.Flux.Pix[i] = float64(i + 1)
	}
	left := g.Project(e, Patch{0, 0})
	right := g.Project(e, Patch{1, 0})
	if left.ValidCount() != 2*4 || right.ValidCount() != 4*4 {
		t.Fatalf("valid counts %d, %d", left.ValidCount(), right.ValidCount())
	}
	// Pixel (0,0) of the exposure is sky (8,2) → patch (0,0) local (8,2).
	if left.Flux.At(8, 2) != 1 {
		t.Errorf("pixel placement wrong: %v", left.Flux.At(8, 2))
	}
	// Masked-bad pixels stay invalid.
	e.Mask[0] = MaskBad
	left2 := g.Project(e, Patch{0, 0})
	if left2.Valid[2*10+8] {
		t.Error("bad pixel projected as valid")
	}
}

func TestMergeAndAssemble(t *testing.T) {
	g := Grid{PatchW: 10, PatchH: 10}
	a := NewPatchExposure(g, Patch{0, 0}, 3)
	b := NewPatchExposure(g, Patch{0, 0}, 3)
	a.Flux.Pix[0], a.Valid[0] = 5, true
	b.Flux.Pix[1], b.Valid[1] = 7, true
	if err := Merge(a, b); err != nil {
		t.Fatal(err)
	}
	if !a.Valid[0] || !a.Valid[1] || a.Flux.Pix[1] != 7 {
		t.Error("merge lost pixels")
	}
	// Mismatched visits refuse to merge.
	c := NewPatchExposure(g, Patch{0, 0}, 4)
	if err := Merge(a, c); err == nil {
		t.Error("merged different visits")
	}
	out, err := AssemblePatches([]*PatchExposure{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("assembled %d, want 2 (visits kept separate)", len(out))
	}
}

func TestCoaddClipsOutliers(t *testing.T) {
	// A single outlier among n samples is at most (n-1)/sqrt(n) sigma
	// from the mean, so 3-sigma clipping needs n >= 11 to fire — use 12
	// visits (the paper's largest run has 24).
	g := Grid{PatchW: 4, PatchH: 4}
	const visits = 12
	var stack []*PatchExposure
	for v := 0; v < visits; v++ {
		pe := NewPatchExposure(g, Patch{0, 0}, v)
		for i := range pe.Flux.Pix {
			pe.Flux.Pix[i] = 10 + float64(v%3) // mild real variation
			pe.Valid[i] = true
		}
		stack = append(stack, pe)
	}
	// One visit has a huge outlier at pixel 5 (a cosmic ray the
	// pre-processing missed).
	stack[3].Flux.Pix[5] = 10000
	co, err := CoaddPatch(stack, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if co.NVisits.Pix[5] != visits-1 {
		t.Errorf("outlier pixel visits %v, want %d", co.NVisits.Pix[5], visits-1)
	}
	if co.Flux.Pix[5] > 200 {
		t.Errorf("outlier pixel coadd %v still contains the cosmic ray", co.Flux.Pix[5])
	}
	if co.NVisits.Pix[0] != visits {
		t.Errorf("clean pixel visits %v", co.NVisits.Pix[0])
	}
}

func TestCoaddStateStepwiseMatchesCoaddPatch(t *testing.T) {
	g := Grid{PatchW: 3, PatchH: 3}
	var stack []*PatchExposure
	for v := 0; v < 5; v++ {
		pe := NewPatchExposure(g, Patch{0, 0}, v)
		for i := range pe.Flux.Pix {
			pe.Flux.Pix[i] = float64(v*7+i) * 1.5
			pe.Valid[i] = true
		}
		stack = append(stack, pe)
	}
	want, err := CoaddPatch(stack, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewCoaddState(stack)
	if err != nil {
		t.Fatal(err)
	}
	st.ClipIteration(3)
	st.ClipIteration(3)
	got := st.Sum()
	for i := range want.Flux.Pix {
		if got.Flux.Pix[i] != want.Flux.Pix[i] {
			t.Fatalf("pixel %d: stepwise %v vs direct %v", i, got.Flux.Pix[i], want.Flux.Pix[i])
		}
	}
}

func TestCoaddFewSamplesNotClipped(t *testing.T) {
	g := Grid{PatchW: 2, PatchH: 2}
	var stack []*PatchExposure
	for v := 0; v < 2; v++ {
		pe := NewPatchExposure(g, Patch{0, 0}, v)
		for i := range pe.Flux.Pix {
			pe.Flux.Pix[i] = float64(100 * (v + 1))
			pe.Valid[i] = true
		}
		stack = append(stack, pe)
	}
	co, err := CoaddPatch(stack, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if co.NVisits.Pix[0] != 2 {
		t.Errorf("with <3 samples nothing should be clipped: %v", co.NVisits.Pix[0])
	}
}

func TestGroupByPatchOrder(t *testing.T) {
	g := Grid{PatchW: 4, PatchH: 4}
	pes := []*PatchExposure{
		NewPatchExposure(g, Patch{1, 1}, 0),
		NewPatchExposure(g, Patch{0, 0}, 1),
		NewPatchExposure(g, Patch{1, 1}, 1),
	}
	patches, groups := GroupByPatch(pes)
	if len(patches) != 2 || patches[0] != (Patch{0, 0}) || patches[1] != (Patch{1, 1}) {
		t.Errorf("patch order %v", patches)
	}
	if len(groups[Patch{1, 1}]) != 2 {
		t.Errorf("grouping wrong")
	}
}
