package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"imagebench/internal/vtime"
)

// Chrome trace-event export: one JSON object loadable in Perfetto or
// chrome://tracing. The dual clocks map to two synthetic processes —
// pid 1 is wall time (timestamps relative to the earliest span start),
// pid 2 is virtual time (timestamps are positions on the simulated
// cluster's timeline) — so the same trace answers both "where did the
// Go code spend wall time" and "where did the simulation spend virtual
// seconds". Within each process, tid groups a span tree under its root
// span's ID.

const (
	chromePidWall    = 1
	chromePidVirtual = 2
)

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func attrArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// WriteChromeTrace renders every finished span as Chrome trace-event
// JSON. Wall timestamps are microseconds since the earliest span start;
// virtual timestamps are microseconds of simulated time since cluster
// start.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	var epoch time.Time
	for _, s := range spans {
		start, _ := s.Wall()
		if epoch.IsZero() || start.Before(epoch) {
			epoch = start
		}
	}
	wallUS := func(at time.Time) int64 { return at.Sub(epoch).Microseconds() }
	virtUS := func(at vtime.Time) int64 { return int64(at) / int64(time.Microsecond) }

	events := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePidWall,
			Args: map[string]any{"name": "wall clock"}},
		{Name: "process_name", Ph: "M", Pid: chromePidVirtual,
			Args: map[string]any{"name": "virtual (simulated) clock"}},
	}
	for _, s := range spans {
		s.mu.Lock()
		name, root := s.Name, s.RootID
		start, end := s.start, s.end
		vstart, vend, hasVirtual := s.vstart, s.vend, s.hasVirtual
		virtualOnly := s.virtualOnly
		attrs := append([]Attr(nil), s.attrs...)
		evs := append([]Event(nil), s.events...)
		s.mu.Unlock()

		args := attrArgs(attrs)
		if !virtualOnly {
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts: wallUS(start), Dur: end.Sub(start).Microseconds(),
				Pid: chromePidWall, Tid: root, Args: args,
			})
		}
		if hasVirtual {
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts: virtUS(vstart), Dur: virtUS(vend) - virtUS(vstart),
				Pid: chromePidVirtual, Tid: root, Args: args,
			})
		}
		for _, ev := range evs {
			args := attrArgs(ev.Attrs)
			if ev.HasVirtual {
				events = append(events, chromeEvent{
					Name: ev.Name, Ph: "i", Ts: virtUS(ev.Virtual),
					Pid: chromePidVirtual, Tid: root, S: "t", Args: args,
				})
				continue
			}
			events = append(events, chromeEvent{
				Name: ev.Name, Ph: "i", Ts: wallUS(ev.Wall),
				Pid: chromePidWall, Tid: root, S: "t", Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}
