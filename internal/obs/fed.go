package obs

// FedMetrics are the federation coordinator's per-worker counters,
// exported on the coordinator's /metrics. Every family is labeled by
// worker (the worker's base URL) so a straggling or flapping worker is
// visible as its own series: assignments that pile up on one worker,
// steals that drain it, replications fanning results back out, and the
// transport failures that precede a worker being declared down.
type FedMetrics struct {
	// Assigned counts cells handed to a worker, initial partition and
	// reassignments after a worker death alike.
	Assigned *CounterVec
	// Stolen counts cells an idle worker pulled from the labeled
	// worker's remaining queue (the label is the victim; the thief is
	// visible through its Assigned series).
	Stolen *CounterVec
	// Done counts cells the worker completed successfully.
	Done *CounterVec
	// Replications counts finished-cell tables pushed to the labeled
	// worker via POST /v1/results.
	Replications *CounterVec
	// WorkerFailures counts transport-level failures talking to the
	// worker; the first one marks it down.
	WorkerFailures *CounterVec
}

// NewFedMetrics registers the federation counter families on r.
func NewFedMetrics(r *Registry) *FedMetrics {
	return &FedMetrics{
		Assigned: r.NewCounterVec("imagebench_fed_cells_assigned_total",
			"Sweep cells assigned to a worker (including reassignment after failure).", "worker"),
		Stolen: r.NewCounterVec("imagebench_fed_cells_stolen_total",
			"Sweep cells stolen from a worker's remaining queue by an idle peer.", "worker"),
		Done: r.NewCounterVec("imagebench_fed_cells_done_total",
			"Sweep cells completed by a worker.", "worker"),
		Replications: r.NewCounterVec("imagebench_fed_replications_total",
			"Finished-cell results replicated to a worker via POST /v1/results.", "worker"),
		WorkerFailures: r.NewCounterVec("imagebench_fed_worker_failures_total",
			"Transport failures talking to a worker.", "worker"),
	}
}
