package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"imagebench/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock is a deterministic wall clock stepping 1ms per reading.
func fakeClock() func() time.Time {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "noop")
	if s != nil {
		t.Fatal("StartSpan without tracer returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without tracer changed the context")
	}
	// Every method must be a nil-receiver no-op.
	s.SetAttr("k", "v")
	s.SetVirtual(0, 0)
	s.SetVirtualOnly()
	s.AddEvent("e")
	s.AddVirtualEvent("e", 0)
	s.End()
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	if child.ParentID != root.ID || grand.ParentID != child.ID {
		t.Errorf("parent chain broken: root=%d child.parent=%d grand.parent=%d",
			root.ID, child.ParentID, grand.ParentID)
	}
	if root.RootID != root.ID || child.RootID != root.ID || grand.RootID != root.ID {
		t.Errorf("RootID not propagated: %d %d %d", root.RootID, child.RootID, grand.RootID)
	}
	if got := len(tr.Spans()); got != 3 {
		t.Errorf("tracer holds %d spans, want 3", got)
	}
}

// TestConcurrentSpans drives many goroutines through one tracer; the
// -race CI step is the real assertion here.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	base := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, s := StartSpan(base, "work")
				s.SetAttr("k", "v")
				s.AddEvent("tick")
				_, c := StartSpan(ctx, "inner")
				c.SetVirtual(0, vtime.Time(time.Second))
				c.End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*50*2 {
		t.Errorf("tracer holds %d spans, want %d", got, 8*50*2)
	}
	ids := make(map[uint64]bool)
	for _, s := range tr.Spans() {
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		ids[s.ID] = true
	}
}

// TestGoldenChromeTrace pins the exporter's byte-exact output for a
// deterministic span tree covering both clocks, virtual-only stage
// spans, and instant events.
func TestGoldenChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock())
	ctx := WithTracer(context.Background(), tr)

	ctx, job := StartSpan(ctx, "job ftneuro")
	job.SetAttr("experiment", "ftneuro")
	ectx, exec := StartSpan(ctx, "execute")

	_, run := StartSpan(ectx, "Spark neuro")
	run.SetAttr("engine", "Spark")
	run.SetVirtual(0, vtime.Time(90*time.Second))
	rctx := ContextWithSpan(ectx, run)

	_, stage := StartSpan(rctx, "ingest")
	stage.SetAttr("kind", "stage")
	stage.SetVirtual(0, vtime.Time(30*time.Second))
	stage.SetVirtualOnly()
	stage.End()

	_, stage2 := StartSpan(rctx, "fit")
	stage2.SetAttr("kind", "stage")
	stage2.SetVirtual(vtime.Time(30*time.Second), vtime.Time(90*time.Second))
	stage2.SetVirtualOnly()
	stage2.End()

	run.AddVirtualEvent("kill", vtime.Time(45*time.Second), Attr{Key: "node", Value: "1"})
	run.End()
	exec.End()
	job.AddEvent("cache-write")
	job.End()

	var got bytes.Buffer
	if err := tr.WriteChromeTrace(&got); err != nil {
		t.Fatal(err)
	}

	// The trace must be valid JSON with the dual-clock process metadata.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	golden := filepath.Join("testdata", "chrome_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("chrome trace drifted from %s (run with -update if intentional)\ngot:\n%s", golden, got.String())
	}
}
