// Package obs is the observability spine of the reproduction: a
// span-based tracer that is dual-clock aware (every span carries wall
// time and, when opened inside the cluster simulator, a virtual-time
// window) plus a stdlib-only metrics registry that serves the
// Prometheus text exposition format. The daemon scrapes the registry at
// GET /metrics; the CLI dumps the tracer as Chrome trace-event JSON
// loadable in Perfetto. Nothing here perturbs the simulation: spans are
// allocated only when a Tracer is present in the context, and metrics
// are atomics sampled at scrape time.
package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic add/load, for counters and sums
// updated from concurrent workers without a lock.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// metricFamily is one named metric with HELP/TYPE metadata and any
// number of label-distinguished series.
type metricFamily interface {
	meta() (name, help, typ string)
	// sample appends "name{labels} value" exposition lines (without the
	// trailing newline handled by the writer) via emit.
	sample(emit func(suffix, labels string, value float64))
}

// Registry holds metric families and serves them in Prometheus text
// exposition format. Registration is get-or-create: asking twice for
// the same name with the same shape returns the same metric; asking
// with a conflicting shape panics (a programming error, like expvar).
type Registry struct {
	mu       sync.Mutex
	families map[string]metricFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]metricFamily)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register installs fresh or returns the existing family under name.
// The check callback vets an existing family for shape compatibility.
func (r *Registry) register(name string, fresh func() metricFamily, check func(metricFamily) (metricFamily, bool)) metricFamily {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		got, ok := check(f)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return got
	}
	f := fresh()
	r.families[name] = f
	return f
}

// Counter is a monotonically increasing value.
type Counter struct {
	name, help string
	v          atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; v must be non-negative (not enforced, counters are trusted
// in-process callers).
func (c *Counter) Add(v float64) { c.v.Add(v) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

func (c *Counter) meta() (string, string, string) { return c.name, c.help, "counter" }
func (c *Counter) sample(emit func(string, string, float64)) {
	emit("", "", c.v.Load())
}

// NewCounter returns the counter registered under name.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name,
		func() metricFamily { return &Counter{name: name, help: help} },
		func(f metricFamily) (metricFamily, bool) { c, ok := f.(*Counter); return c, ok })
	return f.(*Counter)
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

func (g *Gauge) meta() (string, string, string) { return g.name, g.help, "gauge" }
func (g *Gauge) sample(emit func(string, string, float64)) {
	emit("", "", g.v.Load())
}

// NewGauge returns the gauge registered under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name,
		func() metricFamily { return &Gauge{name: name, help: help} },
		func(f metricFamily) (metricFamily, bool) { g, ok := f.(*Gauge); return g, ok })
	return f.(*Gauge)
}

// funcMetric samples a callback at scrape time: the value lives in the
// instrumented package's own atomics and is read here, so existing
// counters need no double bookkeeping.
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

func (m *funcMetric) meta() (string, string, string) { return m.name, m.help, m.typ }
func (m *funcMetric) sample(emit func(string, string, float64)) {
	emit("", "", m.fn())
}

// NewCounterFunc registers a counter whose value is fn() at scrape time.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(name,
		func() metricFamily { return &funcMetric{name: name, help: help, typ: "counter", fn: fn} },
		func(f metricFamily) (metricFamily, bool) {
			m, ok := f.(*funcMetric)
			return m, ok && m.typ == "counter"
		})
}

// NewGaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name,
		func() metricFamily { return &funcMetric{name: name, help: help, typ: "gauge", fn: fn} },
		func(f metricFamily) (metricFamily, bool) {
			m, ok := f.(*funcMetric)
			return m, ok && m.typ == "gauge"
		})
}

// vec is the label machinery shared by CounterVec and GaugeVec.
type vec struct {
	name, help, typ string
	labels          []string

	mu       sync.Mutex
	children map[string]*vecChild
}

type vecChild struct {
	labels string // pre-rendered {k="v",...}
	v      atomicFloat
	fn     func() float64 // non-nil: sampled at scrape instead of v
}

func (v *vec) child(values []string) *vecChild {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range v.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	key := b.String()

	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &vecChild{labels: key}
		v.children[key] = c
	}
	return c
}

func (v *vec) meta() (string, string, string) { return v.name, v.help, v.typ }
func (v *vec) sample(emit func(string, string, float64)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*vecChild, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	fns := make([]func() float64, len(children))
	for i, c := range children {
		fns[i] = c.fn
	}
	v.mu.Unlock()
	for i, c := range children {
		if fns[i] != nil {
			emit("", c.labels, fns[i]())
			continue
		}
		emit("", c.labels, c.v.Load())
	}
}

func sameLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Series is one labeled series of a CounterVec or GaugeVec, sharing
// the family's storage.
type Series struct{ v *atomicFloat }

// Inc adds one.
func (s *Series) Inc() { s.v.Add(1) }

// Add adds d.
func (s *Series) Add(d float64) { s.v.Add(d) }

// Set stores d (gauge series only, by convention).
func (s *Series) Set(d float64) { s.v.Store(d) }

// Value returns the current value.
func (s *Series) Value() float64 { return s.v.Load() }

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ *vec }

// With returns the series for the given label values (created on first
// use), in the order the labels were declared.
func (cv CounterVec) With(values ...string) *Series {
	return &Series{v: &cv.child(values).v}
}

// WithFunc binds the series for the given label values to a callback
// sampled at scrape time — the labeled analogue of NewCounterFunc, for
// counters whose truth lives in another package's atomics.
func (cv CounterVec) WithFunc(fn func() float64, values ...string) {
	c := cv.child(values)
	cv.mu.Lock()
	c.fn = fn
	cv.mu.Unlock()
}

// NewCounterVec returns the labeled counter family registered under name.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	f := r.register(name,
		func() metricFamily {
			return &vec{name: name, help: help, typ: "counter", labels: labels, children: make(map[string]*vecChild)}
		},
		func(f metricFamily) (metricFamily, bool) {
			v, ok := f.(*vec)
			return v, ok && v.typ == "counter" && sameLabels(v.labels, labels)
		})
	return &CounterVec{f.(*vec)}
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ *vec }

// With returns the series for the given label values (created on first
// use), in the order the labels were declared.
func (gv GaugeVec) With(values ...string) *Series {
	return &Series{v: &gv.child(values).v}
}

// NewGaugeVec returns the labeled gauge family registered under name.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	f := r.register(name,
		func() metricFamily {
			return &vec{name: name, help: help, typ: "gauge", labels: labels, children: make(map[string]*vecChild)}
		},
		func(f metricFamily) (metricFamily, bool) {
			v, ok := f.(*vec)
			return v, ok && v.typ == "gauge" && sameLabels(v.labels, labels)
		})
	return &GaugeVec{f.(*vec)}
}

// Histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style: observations land in the first bucket whose upper
// bound is >= the value, and exposition emits cumulative counts with an
// implicit +Inf bucket, plus _sum and _count series.
//
// Storage is sharded: Observe borrows a shard through a sync.Pool (the
// pool's per-P caches hand each OS thread its own shard almost every
// time), so concurrent observers from many goroutines do not fight over
// one set of cache lines. Shard fields are still atomics — a scrape
// reads them while observers write — but uncontended atomic adds are
// cheap; it is the cross-core contention this removes. Exposition
// merges the shards, so the wire format is byte-identical to the
// unsharded layout.
type Histogram struct {
	name, help string
	bounds     []float64 // sorted upper bounds, +Inf implicit

	pool      sync.Pool
	mu        sync.Mutex   // guards shards growth and rr
	shards    []*histShard // every shard ever created; never dropped
	rr        int          // round-robin cursor once maxShards is hit
	maxShards int
}

// histShard is one observer's slice of the histogram's storage.
type histShard struct {
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	sh, _ := h.pool.Get().(*histShard)
	if sh == nil {
		sh = h.takeShard()
	}
	i := sort.SearchFloat64s(h.bounds, v)
	sh.counts[i].Add(1)
	sh.sum.Add(v)
	sh.count.Add(1)
	h.pool.Put(sh)
}

// takeShard returns a shard for an observer whose pool came up empty:
// a fresh one while under the cap, a round-robin pick of the existing
// ones after (a GC purges the pool's caches, and unbounded regrowth
// would leak a shard per purge). A recycled shard may be concurrently
// owned by another observer; that is safe, the fields are atomic.
func (h *Histogram) takeShard() *histShard {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.shards) < h.maxShards {
		sh := &histShard{counts: make([]atomic.Uint64, len(h.bounds)+1)}
		h.shards = append(h.shards, sh)
		return sh
	}
	sh := h.shards[h.rr%len(h.shards)]
	h.rr++
	return sh
}

// HistSnapshot is a point-in-time merge of a histogram's shards, the
// raw material for quantile estimates and summary artifacts. Counts is
// per-bucket (not cumulative) with the +Inf overflow last, so
// len(Counts) == len(Bounds)+1.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot merges the shards. Concurrent observers keep writing while
// the merge runs, so the totals are advisory to within the in-flight
// handful — the same guarantee the unsharded exposition had.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	shards := append([]*histShard(nil), h.shards...)
	h.mu.Unlock()
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for _, sh := range shards {
		for i := range sh.counts {
			s.Counts[i] += sh.counts[i].Load()
		}
		s.Sum += sh.sum.Load()
		s.Count += sh.count.Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket that crosses the target rank, the
// same estimate PromQL's histogram_quantile gives. The first bucket
// interpolates from zero (latencies are non-negative); ranks landing
// in the +Inf overflow clamp to the highest finite bound. Returns NaN
// for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, b := range s.Bounds {
		c := float64(s.Counts[i])
		if cum+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			if c == 0 {
				return b
			}
			return lower + (b-lower)*(rank-cum)/c
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observation, NaN when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

func (h *Histogram) meta() (string, string, string) { return h.name, h.help, "histogram" }
func (h *Histogram) sample(emit func(string, string, float64)) {
	s := h.Snapshot()
	var cum uint64
	for i, b := range h.bounds {
		cum += s.Counts[i]
		emit("_bucket", `{le="`+formatFloat(b)+`"}`, float64(cum))
	}
	emit("_bucket", `{le="+Inf"}`, float64(s.Count))
	emit("_sum", "", s.Sum)
	emit("_count", "", float64(s.Count))
}

// DefLatencyBuckets are the default upper bounds (seconds) for job and
// request latency histograms.
var DefLatencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// FineLatencyBuckets are finer upper bounds (seconds) for HTTP
// request latencies, where the interesting mass sits well under a
// millisecond: the loadgen harness needs sub-millisecond resolution to
// report a meaningful p50 for cache-hit responses.
var FineLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NewHistogram returns the histogram registered under name with the
// given bucket upper bounds (ascending; +Inf is implicit and must not
// be listed).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := range bounds {
		if math.IsInf(bounds[i], 0) || math.IsNaN(bounds[i]) {
			panic(fmt.Sprintf("obs: histogram %q has non-finite bound", name))
		}
		if i > 0 && bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	f := r.register(name,
		func() metricFamily {
			h := &Histogram{name: name, help: help, bounds: append([]float64(nil), bounds...)}
			// Enough shards that every P can hold one with headroom for
			// pool churn; past the cap, observers share round-robin.
			h.maxShards = 4 * runtime.GOMAXPROCS(0)
			return h
		},
		func(f metricFamily) (metricFamily, bool) {
			h, ok := f.(*Histogram)
			if !ok || len(h.bounds) != len(bounds) {
				return nil, false
			}
			for i := range bounds {
				if h.bounds[i] != bounds[i] {
					return nil, false
				}
			}
			return h, true
		})
	return f.(*Histogram)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]metricFamily, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		name, help, typ := f.meta()
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		f.sample(func(suffix, labels string, value float64) {
			b.WriteString(name)
			b.WriteString(suffix)
			b.WriteString(labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(value))
			b.WriteByte('\n')
		})
	}
	_, err := io.WriteString(w, b.String())
	return err
}
