package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramShardedSemantics pins that sharding changed nothing
// observable: a deterministic set of observations produces exactly the
// exposition the unsharded layout produced — cumulative buckets, +Inf,
// _sum, and _count.
func TestHistogramShardedSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_lat", "help", []float64{0.25, 0.5, 1})
	for _, v := range []float64{0.125, 0.25, 0.5, 2, 1} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_lat help
# TYPE t_lat histogram
t_lat_bucket{le="0.25"} 2
t_lat_bucket{le="0.5"} 3
t_lat_bucket{le="1"} 4
t_lat_bucket{le="+Inf"} 5
t_lat_sum 3.875
t_lat_count 5
`
	if got := b.String(); got != want {
		t.Errorf("exposition changed under sharding:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race in CI) and checks that no observation is
// lost or double-counted across the shards.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_conc", "", DefLatencyBuckets)
	const (
		goroutines = 16
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != goroutines*perG {
		t.Errorf("bucket counts sum to %d, want %d", sum, goroutines*perG)
	}
	// Per goroutine: perG/100 full cycles of sum(0..99)/1000.
	wantSum := float64(goroutines) * (perG / 100) * (99 * 100 / 2) / 1000
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramShardCap proves shard growth is bounded even when the
// pool is drained (as a GC purge would): takeShard past the cap
// recycles existing shards instead of allocating forever.
func TestHistogramShardCap(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_cap", "", []float64{1})
	for i := 0; i < 10*h.maxShards; i++ {
		sh := h.takeShard() // never returned to the pool
		sh.count.Add(1)
	}
	h.mu.Lock()
	n := len(h.shards)
	h.mu.Unlock()
	if n > h.maxShards {
		t.Errorf("grew %d shards, cap is %d", n, h.maxShards)
	}
	if s := h.Snapshot(); s.Count != uint64(10*h.maxShards) {
		t.Errorf("recycled shards lost counts: %d, want %d", s.Count, 10*h.maxShards)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_q", "", []float64{0.1, 0.2, 0.4, 0.8})

	if q := h.Snapshot().Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram quantile = %v, want NaN", q)
	}
	if m := h.Snapshot().Mean(); !math.IsNaN(m) {
		t.Errorf("empty histogram mean = %v, want NaN", m)
	}

	// 100 observations uniformly into the (0.1, 0.2] bucket: the median
	// interpolates to the bucket midpoint region.
	for i := 0; i < 100; i++ {
		h.Observe(0.15)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0.1 || q > 0.2 {
		t.Errorf("p50 = %v, want within (0.1, 0.2]", q)
	}
	// Exact interpolation: rank 50 of 100 in a bucket spanning
	// (0.1, 0.2] with all 100 counts → 0.1 + 0.1*50/100 = 0.15.
	if q := s.Quantile(0.5); math.Abs(q-0.15) > 1e-12 {
		t.Errorf("p50 = %v, want 0.15 by linear interpolation", q)
	}
	if q := s.Quantile(1); math.Abs(q-0.2) > 1e-12 {
		t.Errorf("p100 = %v, want bucket upper bound 0.2", q)
	}
	if m := s.Mean(); math.Abs(m-0.15) > 1e-12 {
		t.Errorf("mean = %v, want 0.15", m)
	}

	// Overflow observations clamp to the highest finite bound.
	h2 := r.NewHistogram("t_q2", "", []float64{0.1, 0.2})
	for i := 0; i < 10; i++ {
		h2.Observe(99)
	}
	if q := h2.Snapshot().Quantile(0.99); q != 0.2 {
		t.Errorf("overflow quantile = %v, want clamp to 0.2", q)
	}
}

// BenchmarkHistogramObserveParallel measures the Observe hot path under
// the loadgen's concurrency shape: every P observing in a tight loop.
// Before sharding this serialized all cores on one cache line's CAS
// loop; after, each P mostly owns a pool-local shard.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("b_lat", "", FineLatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v += 0.0001
			if v > 1 {
				v = 0.0001
			}
		}
	})
	if s := h.Snapshot(); s.Count != uint64(b.N) {
		b.Fatalf("count = %d, want %d", s.Count, b.N)
	}
}
