package obs

import (
	"strings"
	"testing"
)

// expose renders the registry and returns its exposition text.
func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// mustLine asserts the exposition contains the exact line.
func mustLine(t *testing.T, text, line string) {
	t.Helper()
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return
		}
	}
	t.Errorf("exposition missing line %q:\n%s", line, text)
}

func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("req_seconds", "Request latency.", []float64{1, 2, 5})

	// Boundary values are inclusive (Prometheus le semantics): an
	// observation equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.5, 1, 1.5, 2, 10} {
		h.Observe(v)
	}

	text := expose(t, r)
	mustLine(t, text, `req_seconds_bucket{le="1"} 2`)
	mustLine(t, text, `req_seconds_bucket{le="2"} 4`)
	mustLine(t, text, `req_seconds_bucket{le="5"} 4`)
	mustLine(t, text, `req_seconds_bucket{le="+Inf"} 5`)
	mustLine(t, text, `req_seconds_sum 15`)
	mustLine(t, text, `req_seconds_count 5`)
	mustLine(t, text, `# TYPE req_seconds histogram`)
}

func TestHistogramValidation(t *testing.T) {
	r := NewRegistry()
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"infinite":   {1, inf()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%s bounds) did not panic", name)
				}
			}()
			r.NewHistogram("bad_"+name, "", bounds)
		}()
	}
}

func inf() float64  { return 1.0 / zero() }
func zero() float64 { return 0 }

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("ops_total", "Ops with\nnewline and back\\slash.", "op")
	cv.With("quote\"back\\slash\nnewline").Add(3)

	text := expose(t, r)
	mustLine(t, text, `# HELP ops_total Ops with\nnewline and back\\slash.`)
	mustLine(t, text, `ops_total{op="quote\"back\\slash\nnewline"} 3`)
}

func TestRegistryGetOrCreateAndShapePanic(t *testing.T) {
	r := NewRegistry()
	c1 := r.NewCounter("jobs_total", "x")
	c2 := r.NewCounter("jobs_total", "x")
	c1.Inc()
	c2.Add(2)
	if got := c1.Value(); got != 3 {
		t.Errorf("re-registered counter not shared: %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering jobs_total as a gauge did not panic")
		}
	}()
	r.NewGauge("jobs_total", "x")
}

func TestVecSeriesShareStorage(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("hits_total", "h", "layer")
	cv.With("memory").Inc()
	cv.With("memory").Add(2)
	cv.With("disk").Inc()
	if got := cv.With("memory").Value(); got != 3 {
		t.Errorf("memory series = %v, want 3", got)
	}
	text := expose(t, r)
	mustLine(t, text, `hits_total{layer="disk"} 1`)
	mustLine(t, text, `hits_total{layer="memory"} 3`)
}

func TestCounterVecWithFunc(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("cache_hits_total", "h", "layer")
	n := 7.0
	cv.WithFunc(func() float64 { return n }, "memory")
	text := expose(t, r)
	mustLine(t, text, `cache_hits_total{layer="memory"} 7`)
	n = 9
	mustLine(t, expose(t, r), `cache_hits_total{layer="memory"} 9`)
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zzz_total", "")
	r.NewCounter("aaa_total", "")
	text := expose(t, r)
	if strings.Index(text, "aaa_total") > strings.Index(text, "zzz_total") {
		t.Errorf("families not sorted:\n%s", text)
	}
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.NewCounter("bad-name", "")
}
