package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// DebugHandler returns the opt-in profiling mux served behind the
// daemon's -debug-addr flag: the standard net/http/pprof endpoints,
// registered explicitly so nothing leaks onto the default serve mux or
// the public API listener.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterGoMetrics adds Go runtime gauges and counters to r, sampled
// at scrape time (one ReadMemStats per scrape).
func RegisterGoMetrics(r *Registry) {
	r.NewGaugeFunc("go_goroutines", "Number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	read := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return f(&ms)
		}
	}
	r.NewGaugeFunc("go_memstats_alloc_bytes", "Bytes of allocated heap objects.",
		read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	r.NewGaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapObjects) }))
	r.NewCounterFunc("go_memstats_mallocs_total", "Cumulative count of heap objects allocated.",
		read(func(ms *runtime.MemStats) float64 { return float64(ms.Mallocs) }))
	r.NewCounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		read(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
}
