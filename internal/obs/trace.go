package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"imagebench/internal/vtime"
)

// Tracer collects finished spans. It is safe for concurrent use; span
// IDs are assigned from an atomic counter, so a single-goroutine run
// (the CLI's deterministic quick profile) always numbers spans the
// same way, which is what makes the Chrome-trace golden stable.
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	spans []*Span
	clock func() time.Time
}

// NewTracer returns an empty tracer on the real clock.
func NewTracer() *Tracer { return &Tracer{} }

// SetClock replaces the wall clock (tests pin it for golden traces).
func (t *Tracer) SetClock(fn func() time.Time) {
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

func (t *Tracer) now() time.Time {
	t.mu.Lock()
	fn := t.clock
	t.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return time.Now()
}

// Spans returns the finished spans in completion order.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value string
}

// Event is a point-in-time annotation on a span: wall-stamped always,
// virtual-stamped when it happened inside the cluster simulator (a
// kill, a straggler onset, a detected node failure).
type Event struct {
	Name       string
	Wall       time.Time
	Virtual    vtime.Time
	HasVirtual bool
	Attrs      []Attr
}

// Span is one timed operation. Every span has a wall-clock window;
// spans opened inside the simulator additionally carry a virtual-time
// window [VStart, VEnd] on the owning cluster's timeline. All methods
// are nil-receiver safe, so call sites never branch on whether tracing
// is enabled.
type Span struct {
	tracer *Tracer

	ID       uint64
	ParentID uint64 // 0 for roots
	RootID   uint64 // own ID for roots
	Name     string

	mu          sync.Mutex
	start, end  time.Time
	vstart      vtime.Time
	vend        vtime.Time
	hasVirtual  bool
	virtualOnly bool
	attrs       []Attr
	events      []Event
	ended       bool
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	registryKey
	spanKey
)

// WithTracer returns ctx carrying t; StartSpan under it records spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRegistry returns ctx carrying r, for call sites that bump
// metrics without holding a registry reference themselves.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the metrics registry carried by ctx, or nil.
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// ContextWithSpan returns ctx with s as the current span, so children
// started under it parent correctly.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom returns the current span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a span named name as a child of the current span in
// ctx. When ctx carries no tracer it returns (ctx, nil): the nil span
// accepts every method as a no-op, so instrumentation costs nothing in
// untraced runs.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		ID:     t.nextID.Add(1),
		Name:   name,
		start:  t.now(),
	}
	if parent := SpanFrom(ctx); parent != nil {
		s.ParentID = parent.ID
		s.RootID = parent.RootID
	} else {
		s.RootID = s.ID
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetVirtual records the span's window on the simulator's virtual
// timeline.
func (s *Span) SetVirtual(start, end vtime.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.vstart, s.vend, s.hasVirtual = start, end, true
	s.mu.Unlock()
}

// SetVirtualOnly marks the span as meaningful only on the virtual
// timeline (its wall window is an artifact of when it was synthesized);
// the Chrome export then emits it on the virtual process only.
func (s *Span) SetVirtualOnly() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.virtualOnly = true
	s.mu.Unlock()
}

// AddEvent records a wall-stamped point event.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Name: name, Wall: s.tracer.now(), Attrs: attrs}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// AddVirtualEvent records an event stamped with a virtual timestamp
// (and the wall time it was observed at).
func (s *Span) AddVirtualEvent(name string, at vtime.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Name: name, Wall: s.tracer.now(), Virtual: at, HasVirtual: true, Attrs: attrs}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// End closes the span and hands it to the tracer. Ending twice is a
// no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = now
	s.mu.Unlock()
	s.tracer.mu.Lock()
	s.tracer.spans = append(s.tracer.spans, s)
	s.tracer.mu.Unlock()
}

// Wall returns the span's wall-clock window (end is zero until End).
func (s *Span) Wall() (start, end time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start, s.end
}

// Virtual returns the span's virtual window; ok is false when the span
// never entered the simulator.
func (s *Span) Virtual() (start, end vtime.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vstart, s.vend, s.hasVirtual
}

// Attrs returns the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value of the first annotation with the given key.
func (s *Span) Attr(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Events returns the span's point events in insertion order.
func (s *Span) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
