package fits

import (
	"testing"

	"imagebench/internal/skymap"
)

func sample() *skymap.Exposure {
	e := skymap.NewExposure(3, 7, -12, 40, 8, 6)
	for i := range e.Flux.Pix {
		e.Flux.Pix[i] = float64(float32(i) * 1.5)
		e.Var.Pix[i] = float64(float32(i % 5))
	}
	e.Mask[5] = skymap.MaskCosmicRay
	return e
}

func TestExposureRoundTrip(t *testing.T) {
	e := sample()
	data := EncodeExposure(e)
	if len(data)%2880 != 0 {
		t.Errorf("FITS file length %d not a multiple of 2880", len(data))
	}
	got, err := DecodeExposure(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Visit != 3 || got.Sensor != 7 || got.X0 != -12 || got.Y0 != 40 {
		t.Errorf("metadata %+v", got)
	}
	for i := range e.Flux.Pix {
		if got.Flux.Pix[i] != e.Flux.Pix[i] || got.Var.Pix[i] != e.Var.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
	if got.Mask[5] != skymap.MaskCosmicRay {
		t.Error("mask plane lost")
	}
}

func TestDecodeValidation(t *testing.T) {
	data := EncodeExposure(sample())
	if _, err := Decode(data[:100]); err == nil {
		t.Error("short file accepted")
	}
	// Corrupt SIMPLE card.
	bad := append([]byte(nil), data...)
	copy(bad[:6], "BROKEN")
	if _, err := Decode(bad); err == nil {
		t.Error("missing SIMPLE accepted")
	}
	// Truncated data block.
	if _, err := Decode(data[:2880+16]); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestHeaderKeywords(t *testing.T) {
	f, err := Decode(EncodeExposure(sample()))
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{
		{"SIMPLE", "T"}, {"BITPIX", "-32"}, {"NAXIS", "3"},
		{"NAXIS1", "8"}, {"NAXIS2", "6"}, {"NAXIS3", "3"},
		{"VISIT", "3"}, {"SENSOR", "7"},
	} {
		if f.Keywords[kv[0]] != kv[1] {
			t.Errorf("%s = %q, want %q", kv[0], f.Keywords[kv[0]], kv[1])
		}
	}
	if len(f.Planes) != 3 {
		t.Errorf("%d planes", len(f.Planes))
	}
}
