package fits

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"imagebench/internal/imaging"
)

// This file adds the parts of FITS the LSST stack writes alongside
// images: a typed 80-character header-card API (strings, logicals,
// integers, reals, comments) and BINTABLE extensions, which is how
// source catalogs — the output of the astronomy pipeline's Step 4A —
// are distributed.

// Card is one parsed 80-character header card.
type Card struct {
	Key     string
	Value   string // canonical FITS text (quotes stripped for strings)
	IsStr   bool
	Comment string
}

// FormatCard renders a typed value as a FITS card: strings are quoted
// with doubled internal quotes, booleans render as T/F, numbers
// right-justify in columns 11–30, and an optional comment follows " / ".
func FormatCard(key string, value any, comment string) string {
	var val string
	switch v := value.(type) {
	case string:
		val = fmt.Sprintf("%-20s", "'"+strings.ReplaceAll(v, "'", "''")+"'")
	case bool:
		t := "F"
		if v {
			t = "T"
		}
		val = fmt.Sprintf("%20s", t)
	case int:
		val = fmt.Sprintf("%20d", v)
	case int64:
		val = fmt.Sprintf("%20d", v)
	case float64:
		val = fmt.Sprintf("%20s", strconv.FormatFloat(v, 'G', 14, 64))
	default:
		val = fmt.Sprintf("%20v", v)
	}
	s := fmt.Sprintf("%-8s= %s", key, val)
	if comment != "" {
		s += " / " + comment
	}
	if len(s) > cardSize {
		s = s[:cardSize]
	}
	return s + strings.Repeat(" ", cardSize-len(s))
}

// ParseCard parses one 80-character card into its key, value, and
// comment. COMMENT/HISTORY/blank cards return a Card with an empty Key.
func ParseCard(s string) (Card, error) {
	if len(s) != cardSize {
		return Card{}, fmt.Errorf("fits: card is %d bytes, want %d", len(s), cardSize)
	}
	key := strings.TrimSpace(s[:8])
	if key == "" || key == "COMMENT" || key == "HISTORY" || s[8:10] != "= " {
		return Card{Comment: strings.TrimSpace(s[8:])}, nil
	}
	rest := s[10:]
	c := Card{Key: key}
	trimmed := strings.TrimLeft(rest, " ")
	if strings.HasPrefix(trimmed, "'") {
		// Quoted string: scan for the closing quote, honoring doubled
		// quotes as escapes.
		c.IsStr = true
		var sb strings.Builder
		i := 1
		for i < len(trimmed) {
			if trimmed[i] == '\'' {
				if i+1 < len(trimmed) && trimmed[i+1] == '\'' {
					sb.WriteByte('\'')
					i += 2
					continue
				}
				i++
				break
			}
			sb.WriteByte(trimmed[i])
			i++
		}
		c.Value = strings.TrimRight(sb.String(), " ")
		if idx := strings.Index(trimmed[i:], "/"); idx >= 0 {
			c.Comment = strings.TrimSpace(trimmed[i+idx+1:])
		}
		return c, nil
	}
	if idx := strings.Index(rest, "/"); idx >= 0 {
		c.Comment = strings.TrimSpace(rest[idx+1:])
		rest = rest[:idx]
	}
	c.Value = strings.TrimSpace(rest)
	if c.Value == "" {
		return Card{}, fmt.Errorf("fits: card %q has no value", key)
	}
	return c, nil
}

// Column describes one BINTABLE column: a name and its TFORM code.
// Supported forms: J (32-bit int), K (64-bit int), E (32-bit float),
// D (64-bit float).
type Column struct {
	Name string
	Form string
}

func (c Column) width() (int, error) {
	switch c.Form {
	case "J", "E":
		return 4, nil
	case "K", "D":
		return 8, nil
	}
	return 0, fmt.Errorf("fits: unsupported TFORM %q", c.Form)
}

// Table is an in-memory BINTABLE: typed columns and float64-valued rows
// (integer columns round on write).
type Table struct {
	Name string // EXTNAME
	Cols []Column
	Rows [][]float64
}

// EncodeTable serializes the table as a complete FITS file: a minimal
// primary HDU followed by one BINTABLE extension.
func EncodeTable(t *Table) ([]byte, error) {
	rowBytes := 0
	for _, c := range t.Cols {
		w, err := c.width()
		if err != nil {
			return nil, err
		}
		rowBytes += w
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Cols) {
			return nil, fmt.Errorf("fits: row %d has %d values, want %d", i, len(r), len(t.Cols))
		}
	}

	var buf bytes.Buffer
	// Primary HDU: header only.
	buf.WriteString(FormatCard("SIMPLE", true, "conforms to FITS"))
	buf.WriteString(FormatCard("BITPIX", 8, ""))
	buf.WriteString(FormatCard("NAXIS", 0, "no primary data"))
	buf.WriteString(FormatCard("EXTEND", true, ""))
	buf.WriteString("END" + strings.Repeat(" ", cardSize-3))
	pad(&buf)

	// BINTABLE header.
	buf.WriteString(FormatCard("XTENSION", "BINTABLE", "binary table"))
	buf.WriteString(FormatCard("BITPIX", 8, ""))
	buf.WriteString(FormatCard("NAXIS", 2, ""))
	buf.WriteString(FormatCard("NAXIS1", rowBytes, "bytes per row"))
	buf.WriteString(FormatCard("NAXIS2", len(t.Rows), "rows"))
	buf.WriteString(FormatCard("PCOUNT", 0, ""))
	buf.WriteString(FormatCard("GCOUNT", 1, ""))
	buf.WriteString(FormatCard("TFIELDS", len(t.Cols), ""))
	if t.Name != "" {
		buf.WriteString(FormatCard("EXTNAME", t.Name, ""))
	}
	for i, c := range t.Cols {
		buf.WriteString(FormatCard(fmt.Sprintf("TTYPE%d", i+1), c.Name, ""))
		buf.WriteString(FormatCard(fmt.Sprintf("TFORM%d", i+1), c.Form, ""))
	}
	buf.WriteString("END" + strings.Repeat(" ", cardSize-3))
	pad(&buf)

	// Row data, big-endian.
	scratch := make([]byte, 8)
	for _, row := range t.Rows {
		for ci, c := range t.Cols {
			switch c.Form {
			case "J":
				binary.BigEndian.PutUint32(scratch, uint32(int32(math.Round(row[ci]))))
				buf.Write(scratch[:4])
			case "K":
				binary.BigEndian.PutUint64(scratch, uint64(int64(math.Round(row[ci]))))
				buf.Write(scratch[:8])
			case "E":
				binary.BigEndian.PutUint32(scratch, math.Float32bits(float32(row[ci])))
				buf.Write(scratch[:4])
			case "D":
				binary.BigEndian.PutUint64(scratch, math.Float64bits(row[ci]))
				buf.Write(scratch[:8])
			}
		}
	}
	padZero(&buf)
	return buf.Bytes(), nil
}

func padZero(buf *bytes.Buffer) {
	if r := buf.Len() % blockSize; r != 0 {
		buf.Write(make([]byte, blockSize-r))
	}
}

// readHeader parses header blocks starting at off and returns the cards
// plus the offset of the data that follows.
func readHeader(data []byte, off int) (map[string]Card, int, error) {
	cards := make(map[string]Card)
	for {
		if off+blockSize > len(data) {
			return nil, 0, fmt.Errorf("fits: header runs past end of file")
		}
		for c := 0; c < blockSize/cardSize; c++ {
			s := string(data[off+c*cardSize : off+(c+1)*cardSize])
			if strings.TrimSpace(s[:8]) == "END" {
				return cards, off + blockSize, nil
			}
			card, err := ParseCard(s)
			if err != nil || card.Key == "" {
				continue
			}
			cards[card.Key] = card
		}
		off += blockSize
	}
}

// DecodeTable parses a FITS file produced by EncodeTable (or any file
// whose first extension is a BINTABLE of supported column forms).
func DecodeTable(data []byte) (*Table, error) {
	primary, off, err := readHeader(data, 0)
	if err != nil {
		return nil, err
	}
	if primary["SIMPLE"].Value != "T" {
		return nil, fmt.Errorf("fits: missing SIMPLE=T")
	}
	// Primary data would follow here; EncodeTable writes none (NAXIS=0).
	if primary["NAXIS"].Value != "0" {
		return nil, fmt.Errorf("fits: expected headerless primary HDU, NAXIS=%s", primary["NAXIS"].Value)
	}
	ext, off, err := readHeader(data, off)
	if err != nil {
		return nil, err
	}
	if ext["XTENSION"].Value != "BINTABLE" {
		return nil, fmt.Errorf("fits: first extension is %q, want BINTABLE", ext["XTENSION"].Value)
	}
	intVal := func(key string) (int, error) {
		c, ok := ext[key]
		if !ok {
			return 0, fmt.Errorf("fits: missing %s", key)
		}
		n, err := strconv.Atoi(c.Value)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("fits: bad %s=%q", key, c.Value)
		}
		return n, nil
	}
	rowBytes, err := intVal("NAXIS1")
	if err != nil {
		return nil, err
	}
	nRows, err := intVal("NAXIS2")
	if err != nil {
		return nil, err
	}
	nFields, err := intVal("TFIELDS")
	if err != nil {
		return nil, err
	}
	t := &Table{Name: ext["EXTNAME"].Value}
	width := 0
	for i := 1; i <= nFields; i++ {
		col := Column{
			Name: ext[fmt.Sprintf("TTYPE%d", i)].Value,
			Form: ext[fmt.Sprintf("TFORM%d", i)].Value,
		}
		w, err := col.width()
		if err != nil {
			return nil, err
		}
		width += w
		t.Cols = append(t.Cols, col)
	}
	if width != rowBytes {
		return nil, fmt.Errorf("fits: NAXIS1=%d does not match column widths (%d)", rowBytes, width)
	}
	if off+nRows*rowBytes > len(data) {
		return nil, fmt.Errorf("fits: truncated table data")
	}
	for r := 0; r < nRows; r++ {
		row := make([]float64, nFields)
		for ci, c := range t.Cols {
			switch c.Form {
			case "J":
				row[ci] = float64(int32(binary.BigEndian.Uint32(data[off:])))
				off += 4
			case "K":
				row[ci] = float64(int64(binary.BigEndian.Uint64(data[off:])))
				off += 8
			case "E":
				row[ci] = float64(math.Float32frombits(binary.BigEndian.Uint32(data[off:])))
				off += 4
			case "D":
				row[ci] = math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
				off += 8
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SourceCatalog builds the standard LSST-style catalog table from
// detected sources (the pipeline's Step 4A output).
func SourceCatalog(sources []imaging.Source) *Table {
	t := &Table{
		Name: "SRC",
		Cols: []Column{
			{Name: "id", Form: "J"},
			{Name: "x", Form: "D"},
			{Name: "y", Form: "D"},
			{Name: "flux", Form: "D"},
			{Name: "npix", Form: "J"},
			{Name: "peak", Form: "D"},
		},
	}
	for _, s := range sources {
		t.Rows = append(t.Rows, []float64{
			float64(s.ID), s.X, s.Y, s.Flux, float64(s.NPix), s.PeakFlux,
		})
	}
	return t
}

// CatalogSources converts a decoded catalog table back into sources.
func CatalogSources(t *Table) ([]imaging.Source, error) {
	idx := make(map[string]int, len(t.Cols))
	for i, c := range t.Cols {
		idx[c.Name] = i
	}
	for _, need := range []string{"id", "x", "y", "flux", "npix", "peak"} {
		if _, ok := idx[need]; !ok {
			return nil, fmt.Errorf("fits: catalog missing column %q", need)
		}
	}
	out := make([]imaging.Source, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = imaging.Source{
			ID:       int(r[idx["id"]]),
			X:        r[idx["x"]],
			Y:        r[idx["y"]],
			Flux:     r[idx["flux"]],
			NPix:     int(r[idx["npix"]]),
			PeakFlux: r[idx["peak"]],
		}
	}
	return out, nil
}
