// Package fits reads and writes FITS image files (the astronomy format of
// the paper's inputs): 2880-byte header blocks of 80-character keyword
// cards followed by big-endian image data padded to 2880 bytes. Each file
// holds one 3-plane image (flux, variance, mask as NAXIS3=3) plus the
// metadata the pipeline needs (visit, sensor, sky position).
package fits

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"imagebench/internal/imaging"
	"imagebench/internal/skymap"
)

const blockSize = 2880
const cardSize = 80

// File is a decoded single-HDU FITS image.
type File struct {
	Keywords map[string]string
	Planes   []*imaging.Image // NAXIS3 planes, each NAXIS1×NAXIS2
}

// card formats one 80-byte header card.
func card(key, value string) string {
	s := fmt.Sprintf("%-8s= %20s", key, value)
	if len(s) > cardSize {
		s = s[:cardSize]
	}
	return s + strings.Repeat(" ", cardSize-len(s))
}

// EncodeExposure serializes an exposure as a FITS file with three planes:
// flux, variance, and mask (mask bits stored as float values, as the HiTS
// files do via a separate integer plane).
func EncodeExposure(e *skymap.Exposure) []byte {
	w, h := e.Flux.W, e.Flux.H
	var hdr bytes.Buffer
	hdr.WriteString(card("SIMPLE", "T"))
	hdr.WriteString(card("BITPIX", "-32"))
	hdr.WriteString(card("NAXIS", "3"))
	hdr.WriteString(card("NAXIS1", strconv.Itoa(w)))
	hdr.WriteString(card("NAXIS2", strconv.Itoa(h)))
	hdr.WriteString(card("NAXIS3", "3"))
	hdr.WriteString(card("VISIT", strconv.Itoa(e.Visit)))
	hdr.WriteString(card("SENSOR", strconv.Itoa(e.Sensor)))
	hdr.WriteString(card("CRVAL1", strconv.Itoa(e.X0)))
	hdr.WriteString(card("CRVAL2", strconv.Itoa(e.Y0)))
	hdr.WriteString("END" + strings.Repeat(" ", cardSize-3))
	pad(&hdr)

	var data bytes.Buffer
	writePlane(&data, e.Flux)
	writePlane(&data, e.Var)
	b4 := make([]byte, 4)
	for _, m := range e.Mask {
		binary.BigEndian.PutUint32(b4, math.Float32bits(float32(m)))
		data.Write(b4)
	}
	pad(&data)
	return append(hdr.Bytes(), data.Bytes()...)
}

func writePlane(buf *bytes.Buffer, im *imaging.Image) {
	b4 := make([]byte, 4)
	for _, p := range im.Pix {
		binary.BigEndian.PutUint32(b4, math.Float32bits(float32(p)))
		buf.Write(b4)
	}
}

func pad(buf *bytes.Buffer) {
	if r := buf.Len() % blockSize; r != 0 {
		buf.Write(bytes.Repeat([]byte{' '}, blockSize-r))
	}
}

// Decode parses a single-HDU FITS image file.
func Decode(data []byte) (*File, error) {
	if len(data) < blockSize {
		return nil, fmt.Errorf("fits: file too short (%d bytes)", len(data))
	}
	kw := make(map[string]string)
	off := 0
	done := false
	for !done {
		if off+blockSize > len(data) {
			return nil, fmt.Errorf("fits: header runs past end of file")
		}
		for c := 0; c < blockSize/cardSize; c++ {
			cardStr := string(data[off+c*cardSize : off+(c+1)*cardSize])
			key := strings.TrimSpace(cardStr[:8])
			if key == "END" {
				done = true
				break
			}
			if key == "" || !strings.Contains(cardStr, "=") {
				continue
			}
			val := strings.TrimSpace(cardStr[strings.Index(cardStr, "=")+1:])
			kw[key] = val
		}
		off += blockSize
	}
	if kw["SIMPLE"] != "T" {
		return nil, fmt.Errorf("fits: missing SIMPLE=T")
	}
	if kw["BITPIX"] != "-32" {
		return nil, fmt.Errorf("fits: unsupported BITPIX %q", kw["BITPIX"])
	}
	w, err := atoi(kw, "NAXIS1")
	if err != nil {
		return nil, err
	}
	h, err := atoi(kw, "NAXIS2")
	if err != nil {
		return nil, err
	}
	nplanes := 1
	if kw["NAXIS"] == "3" {
		if nplanes, err = atoi(kw, "NAXIS3"); err != nil {
			return nil, err
		}
	}
	need := off + w*h*nplanes*4
	if len(data) < need {
		return nil, fmt.Errorf("fits: truncated data: have %d bytes, need %d", len(data), need)
	}
	f := &File{Keywords: kw}
	for p := 0; p < nplanes; p++ {
		im := imaging.NewImage(w, h)
		for i := range im.Pix {
			im.Pix[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(data[off:])))
			off += 4
		}
		f.Planes = append(f.Planes, im)
	}
	return f, nil
}

func atoi(kw map[string]string, key string) (int, error) {
	v, ok := kw[key]
	if !ok {
		return 0, fmt.Errorf("fits: missing %s", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("fits: bad %s=%q", key, v)
	}
	return n, nil
}

// DecodeExposure parses a FITS file written by EncodeExposure back into an
// exposure.
func DecodeExposure(data []byte) (*skymap.Exposure, error) {
	f, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if len(f.Planes) != 3 {
		return nil, fmt.Errorf("fits: expected 3 planes, got %d", len(f.Planes))
	}
	visit, _ := strconv.Atoi(f.Keywords["VISIT"])
	sensor, _ := strconv.Atoi(f.Keywords["SENSOR"])
	x0, _ := strconv.Atoi(f.Keywords["CRVAL1"])
	y0, _ := strconv.Atoi(f.Keywords["CRVAL2"])
	e := &skymap.Exposure{
		Visit: visit, Sensor: sensor, X0: x0, Y0: y0,
		Flux: f.Planes[0],
		Var:  f.Planes[1],
		Mask: make([]uint8, len(f.Planes[2].Pix)),
	}
	for i, m := range f.Planes[2].Pix {
		e.Mask[i] = uint8(m)
	}
	return e, nil
}
