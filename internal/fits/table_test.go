package fits

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"imagebench/internal/imaging"
)

func TestFormatCardTypes(t *testing.T) {
	cases := []struct {
		key     string
		value   any
		wantSub string
	}{
		{"SIMPLE", true, "= " + strings.Repeat(" ", 19) + "T"},
		{"NAXIS", 3, "3"},
		{"EXTNAME", "SRC", "'SRC'"},
		{"CRVAL1", 12.5, "12.5"},
		{"QUOTED", "it's", "'it''s'"},
	}
	for _, tc := range cases {
		s := FormatCard(tc.key, tc.value, "")
		if len(s) != 80 {
			t.Errorf("%s: card length %d", tc.key, len(s))
		}
		if !strings.Contains(s, tc.wantSub) {
			t.Errorf("%s: card %q missing %q", tc.key, s, tc.wantSub)
		}
	}
}

func TestCardRoundTrip(t *testing.T) {
	cases := []struct {
		key   string
		value any
	}{
		{"EXTNAME", "SRC"},
		{"OBSERVER", "O'Neill"},
		{"NAXIS1", 2880},
		{"GAIN", 1.75},
		{"SIMPLE", true},
	}
	for _, tc := range cases {
		s := FormatCard(tc.key, tc.value, "a comment")
		c, err := ParseCard(s)
		if err != nil {
			t.Fatalf("%s: %v", tc.key, err)
		}
		if c.Key != tc.key {
			t.Errorf("key: %q != %q", c.Key, tc.key)
		}
		if c.Comment != "a comment" {
			t.Errorf("%s: comment %q", tc.key, c.Comment)
		}
		switch v := tc.value.(type) {
		case string:
			if !c.IsStr || c.Value != v {
				t.Errorf("%s: value %q (str=%v), want %q", tc.key, c.Value, c.IsStr, v)
			}
		case bool:
			if c.Value != "T" {
				t.Errorf("%s: value %q, want T", tc.key, c.Value)
			}
		case int:
			if c.Value != "2880" {
				t.Errorf("%s: value %q", tc.key, c.Value)
			}
		}
	}
}

func TestParseCardSpecials(t *testing.T) {
	comment, err := ParseCard("COMMENT this is free text" + strings.Repeat(" ", 80-25))
	if err != nil || comment.Key != "" {
		t.Errorf("COMMENT card: %+v, %v", comment, err)
	}
	if _, err := ParseCard("short"); err == nil {
		t.Error("short card should error")
	}
	if _, err := ParseCard("BADVAL  = " + strings.Repeat(" ", 70)); err == nil {
		t.Error("valueless card should error")
	}
}

func TestCardStringRoundTripProperty(t *testing.T) {
	f := func(raw string) bool {
		// Printable subset that fits a card.
		var sb strings.Builder
		for _, r := range raw {
			if r >= 32 && r < 127 {
				sb.WriteRune(r)
			}
		}
		s := sb.String()
		if len(s) > 16 {
			s = s[:16]
		}
		s = strings.TrimRight(s, " ") // FITS strips trailing spaces
		c, err := ParseCard(FormatCard("KEY", s, ""))
		return err == nil && c.Value == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sampleTable() *Table {
	return &Table{
		Name: "SRC",
		Cols: []Column{
			{Name: "id", Form: "J"},
			{Name: "ra", Form: "D"},
			{Name: "flux", Form: "E"},
			{Name: "count", Form: "K"},
		},
		Rows: [][]float64{
			{1, 123.456789, 10.5, 1 << 40},
			{2, -0.25, 0, -7},
			{3, 1e100, -2.5, 0},
		},
	}
}

func TestTableRoundTrip(t *testing.T) {
	enc, err := EncodeTable(sampleTable())
	if err != nil {
		t.Fatal(err)
	}
	if len(enc)%2880 != 0 {
		t.Errorf("file size %d not a multiple of 2880", len(enc))
	}
	got, err := DecodeTable(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "SRC" || len(got.Cols) != 4 || len(got.Rows) != 3 {
		t.Fatalf("table shape: %+v", got)
	}
	want := sampleTable()
	for r := range want.Rows {
		for c := range want.Cols {
			w := want.Rows[r][c]
			if want.Cols[c].Form == "E" {
				w = float64(float32(w))
			}
			if got.Rows[r][c] != w {
				t.Errorf("row %d col %s: %v != %v", r, want.Cols[c].Name, got.Rows[r][c], w)
			}
		}
	}
}

func TestTableEmptyRows(t *testing.T) {
	tbl := &Table{Cols: []Column{{Name: "x", Form: "D"}}}
	enc, err := EncodeTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 {
		t.Fatalf("got %d rows, want 0", len(got.Rows))
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := EncodeTable(&Table{Cols: []Column{{Name: "x", Form: "Z"}}}); err == nil {
		t.Error("unsupported TFORM should error")
	}
	if _, err := EncodeTable(&Table{
		Cols: []Column{{Name: "x", Form: "D"}},
		Rows: [][]float64{{1, 2}},
	}); err == nil {
		t.Error("ragged row should error")
	}
	enc, err := EncodeTable(sampleTable())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTable(enc[:2880]); err == nil {
		t.Error("truncated file should error")
	}
	// An image file is not a table.
	if _, err := DecodeTable(enc[2880:]); err == nil {
		t.Error("missing primary HDU should error")
	}
}

func TestSourceCatalogRoundTrip(t *testing.T) {
	srcs := []imaging.Source{
		{ID: 1, X: 10.25, Y: 20.5, Flux: 500.75, NPix: 12, PeakFlux: 99.5},
		{ID: 2, X: 0, Y: 0, Flux: 1.5, NPix: 5, PeakFlux: 1.5},
	}
	enc, err := EncodeTable(SourceCatalog(srcs))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := DecodeTable(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CatalogSources(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d sources, want 2", len(got))
	}
	for i := range srcs {
		if got[i] != srcs[i] {
			t.Errorf("source %d: %+v != %+v", i, got[i], srcs[i])
		}
	}
}

func TestCatalogSourcesMissingColumn(t *testing.T) {
	tbl := &Table{Cols: []Column{{Name: "id", Form: "J"}}}
	if _, err := CatalogSources(tbl); err == nil {
		t.Error("missing columns should error")
	}
}

// Property: tables of random doubles round-trip bit-exactly through the
// D column form.
func TestTableDoubleRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		tbl := &Table{Cols: []Column{{Name: "v", Form: "D"}}}
		for _, v := range vals {
			if math.IsNaN(v) {
				v = 0 // NaN != NaN would fail equality, not the codec
			}
			tbl.Rows = append(tbl.Rows, []float64{v})
		}
		enc, err := EncodeTable(tbl)
		if err != nil {
			return false
		}
		got, err := DecodeTable(enc)
		if err != nil || len(got.Rows) != len(tbl.Rows) {
			return false
		}
		for i := range tbl.Rows {
			if got.Rows[i][0] != tbl.Rows[i][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the FITS decoders never panic on arbitrary input.
func TestFitsDecodeRobustnessProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		_, _ = DecodeTable(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutating one byte of a valid table file either errors or
// yields a structurally consistent table — never a panic.
func TestFitsTableMutationProperty(t *testing.T) {
	base, err := EncodeTable(sampleTable())
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, val byte) bool {
		data := append([]byte(nil), base...)
		data[int(off)%len(data)] = val
		tbl, err := DecodeTable(data)
		if err != nil {
			return true
		}
		for _, r := range tbl.Rows {
			if len(r) != len(tbl.Cols) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
