package imaging

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"imagebench/internal/volume"
)

// TestParallelKernelStress hammers the tile worker pool with many
// concurrent kernel invocations — most racing a context cancellation —
// and asserts two invariants (run under -race in CI):
//
//   - a canceled call returns (nil, ctx.Err()) — no partially written
//     volume ever leaks out to the caller;
//   - a successful call returns exactly the sequential result, no
//     matter how many sibling invocations were running or canceled.
func TestParallelKernelStress(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	v := volume.New3(12, 11, 10)
	for i := range v.Data {
		v.Data[i] = 100 + 10*rng.NormFloat64()
	}
	mask := volume.New3(v.NX, v.NY, v.NZ)
	for i := range mask.Data {
		if i%3 != 0 {
			mask.Data[i] = 1
		}
	}
	opts := NLMeansOpts{PatchRadius: 1, SearchRadius: 2}
	wantNLM := naiveNLMeans3(v, mask, opts)
	k := GaussianKernel(0.8)
	wantConv := naiveSeparableConv3(v, k, k, k)

	const goroutines = 24
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			workers := 1 + g%5
			ctx := context.Background()
			cancelled := g%2 == 0
			if cancelled {
				// Cancel at a random point: sometimes before the call,
				// sometimes mid-flight.
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				if g%4 == 0 {
					cancel()
				} else {
					go func() {
						time.Sleep(time.Duration(g%7) * 100 * time.Microsecond)
						cancel()
					}()
				}
				defer cancel()
			}
			var got *volume.V3
			var err error
			if g%3 == 0 {
				got, err = SeparableConv3Ctx(ctx, v, k, k, k, workers)
			} else {
				o := opts
				o.Workers = workers
				got, err = NLMeans3Ctx(ctx, v, mask, o)
			}
			switch {
			case err != nil:
				if !errors.Is(err, context.Canceled) {
					t.Errorf("goroutine %d: unexpected error %v", g, err)
				}
				if got != nil {
					t.Errorf("goroutine %d: canceled call leaked a partial volume", g)
				}
			default:
				want := wantNLM
				if g%3 == 0 {
					want = wantConv
				}
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("goroutine %d: voxel %d = %v, want %v (must be bit-identical)",
							g, i, got.Data[i], want.Data[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// The shared input must be untouched by any invocation, canceled or
	// not: kernels only ever read it.
	check := volume.New3(v.NX, v.NY, v.NZ)
	rng2 := rand.New(rand.NewSource(31))
	for i := range check.Data {
		check.Data[i] = 100 + 10*rng2.NormFloat64()
	}
	for i := range v.Data {
		if v.Data[i] != check.Data[i] {
			t.Fatalf("input voxel %d mutated by a kernel invocation", i)
		}
	}
}
