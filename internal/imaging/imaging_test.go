package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imagebench/internal/volume"
)

func TestOtsuBimodal(t *testing.T) {
	var samples []float64
	for i := 0; i < 500; i++ {
		samples = append(samples, 10+float64(i%5))  // background ~10
		samples = append(samples, 100+float64(i%5)) // foreground ~100
	}
	th := Otsu(samples)
	if th < 14 || th >= 100 {
		t.Errorf("threshold %v not between modes", th)
	}
	for _, s := range samples {
		if s < 50 && s > th {
			t.Errorf("background sample %v above threshold %v", s, th)
		}
		if s > 50 && s <= th {
			t.Errorf("foreground sample %v below threshold %v", s, th)
		}
	}
}

func TestOtsuDegenerate(t *testing.T) {
	if th := Otsu([]float64{5, 5, 5}); th != 5 {
		t.Errorf("constant input threshold %v", th)
	}
	if th := Otsu(nil); th != 0 {
		t.Errorf("empty input threshold %v", th)
	}
}

func TestOtsuMaskSeparates(t *testing.T) {
	v := volume.New3(4, 4, 4)
	for i := range v.Data {
		if i%2 == 0 {
			v.Data[i] = 100
		} else {
			v.Data[i] = 5
		}
	}
	m := OtsuMask(v)
	for i := range v.Data {
		want := 0.0
		if v.Data[i] == 100 {
			want = 1
		}
		if m.Data[i] != want {
			t.Fatalf("voxel %d: mask %v for value %v", i, m.Data[i], v.Data[i])
		}
	}
}

func TestMedianFilterRemovesSpike(t *testing.T) {
	v := volume.New3(5, 5, 5)
	for i := range v.Data {
		v.Data[i] = 10
	}
	v.Set(2, 2, 2, 1000)
	out := MedianFilter3(v, 1)
	if out.At(2, 2, 2) != 10 {
		t.Errorf("spike survived: %v", out.At(2, 2, 2))
	}
	if r0 := MedianFilter3(v, 0); volume.MaxAbsDiff(r0, v) != 0 {
		t.Error("radius 0 should be identity")
	}
}

func TestNLMeansPreservesConstant(t *testing.T) {
	v := volume.New3(6, 6, 6)
	for i := range v.Data {
		v.Data[i] = 42
	}
	out := NLMeans3(v, nil, NLMeansOpts{H: 10})
	if volume.MaxAbsDiff(out, v) > 1e-9 {
		t.Error("constant volume changed by denoising")
	}
}

func TestNLMeansMaskRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := volume.New3(6, 6, 6)
	for i := range v.Data {
		v.Data[i] = 100 + rng.NormFloat64()*10
	}
	mask := volume.New3(6, 6, 6) // all zero: nothing to denoise
	out := NLMeans3(v, mask, NLMeansOpts{})
	if volume.MaxAbsDiff(out, v) != 0 {
		t.Error("masked-out voxels were modified")
	}
}

func TestSigmaClippedStats(t *testing.T) {
	// A single outlier among n samples can be at most (n-1)/sqrt(n) sigma
	// out, so use enough inliers that 3-sigma clipping can fire.
	xs := []float64{10, 11, 9, 10, 12, 8, 10, 11, 9, 10, 11, 9, 10, 12, 8, 10, 11, 9, 10, 10, 10000}
	m, s := SigmaClippedStats(xs, 3, 3)
	if m < 8 || m > 12 {
		t.Errorf("clipped mean %v should ignore the outlier", m)
	}
	if s > 3 {
		t.Errorf("clipped std %v too large", s)
	}
	if m2, s2 := SigmaClippedStats(nil, 3, 3); m2 != 0 || s2 != 0 {
		t.Error("empty input should give zeros")
	}
}

func TestEstimateBackgroundGradient(t *testing.T) {
	im := NewImage(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			im.Set(x, y, 100+float64(x)) // smooth ramp
		}
	}
	// Add one bright star the background estimate must ignore.
	im.Set(32, 32, 1e6)
	bg := EstimateBackground(im, 16)
	var worst float64
	for y := 8; y < 56; y++ {
		for x := 8; x < 56; x++ {
			if x == 32 && y == 32 {
				continue
			}
			d := math.Abs(bg.At(x, y) - (100 + float64(x)))
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 25 {
		t.Errorf("background deviates by %v from the ramp", worst)
	}
}

func TestDetectAndRepairCosmicRays(t *testing.T) {
	flux := NewImage(32, 32)
	variance := NewImage(32, 32)
	for i := range flux.Pix {
		flux.Pix[i] = 100
		variance.Pix[i] = 100
	}
	flux.Set(10, 10, 5000)
	flux.Set(20, 5, 4000)
	hits := DetectCosmicRays(flux, variance, 6)
	if len(hits) != 2 {
		t.Fatalf("detected %d cosmic rays, want 2", len(hits))
	}
	mask := make([]uint8, len(flux.Pix))
	RepairPixels(flux, mask, hits, 2)
	if flux.At(10, 10) != 100 || flux.At(20, 5) != 100 {
		t.Error("repair did not restore neighbourhood value")
	}
	if mask[10*32+10]&2 == 0 {
		t.Error("repaired pixel not flagged")
	}
}

func TestDetectSourcesFindsInjected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := NewImage(64, 64)
	for i := range im.Pix {
		im.Pix[i] = rng.NormFloat64() * 2
	}
	// Two bright 3×3 sources.
	centers := [][2]int{{16, 20}, {45, 40}}
	for _, c := range centers {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				im.Set(c[0]+dx, c[1]+dy, 200)
			}
		}
	}
	srcs := DetectSources(im, 5, 3)
	if len(srcs) != 2 {
		t.Fatalf("detected %d sources, want 2", len(srcs))
	}
	for _, c := range centers {
		found := false
		for _, s := range srcs {
			if math.Hypot(s.X-float64(c[0]), s.Y-float64(c[1])) < 1.5 {
				found = true
			}
		}
		if !found {
			t.Errorf("source at %v not recovered (got %+v)", c, srcs)
		}
	}
	// Sources are sorted by decreasing flux.
	if len(srcs) == 2 && srcs[0].Flux < srcs[1].Flux {
		t.Error("sources not sorted by flux")
	}
}

func TestDetectSourcesEmptyField(t *testing.T) {
	im := NewImage(32, 32)
	rng := rand.New(rand.NewSource(3))
	for i := range im.Pix {
		im.Pix[i] = rng.NormFloat64()
	}
	if srcs := DetectSources(im, 8, 3); len(srcs) != 0 {
		t.Errorf("detected %d sources in pure noise at 8σ", len(srcs))
	}
}

func TestSigmaClipIdempotentProperty(t *testing.T) {
	// Property: clipping twice with the same sigma gives the same mean as
	// running more iterations (convergence), and mean stays within data
	// range.
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m3, _ := SigmaClippedStats(xs, 3, 3)
		m6, _ := SigmaClippedStats(xs, 3, 6)
		return m3 >= lo-1e-9 && m3 <= hi+1e-9 && math.Abs(m3-m6) < math.Max(1, (hi-lo))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
