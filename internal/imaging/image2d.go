package imaging

import (
	"fmt"
	"math"
	"sort"
)

// Image is a dense 2-D raster in row-major layout, used for astronomy
// sensor exposures (one plane each for flux, variance, and mask).
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage returns a zeroed w×h image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid image dims %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x,y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set assigns the pixel at (x,y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// In reports whether (x,y) is inside the image.
func (im *Image) In(x, y int) bool { return x >= 0 && x < im.W && y >= 0 && y < im.H }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Bytes returns the in-memory pixel bytes.
func (im *Image) Bytes() int64 { return int64(len(im.Pix)) * 8 }

// SigmaClippedStats returns the mean and standard deviation of xs after
// iteratively discarding samples more than nsigma standard deviations from
// the mean, for the given number of iterations.
func SigmaClippedStats(xs []float64, nsigma float64, iters int) (mean, std float64) {
	kept := append([]float64(nil), xs...)
	for it := 0; it <= iters; it++ {
		if len(kept) == 0 {
			return 0, 0
		}
		var sum, sq float64
		for _, x := range kept {
			sum += x
			sq += x * x
		}
		n := float64(len(kept))
		mean = sum / n
		variance := sq/n - mean*mean
		if variance > 0 {
			std = math.Sqrt(variance)
		} else {
			std = 0
		}
		if it == iters || std == 0 {
			return mean, std
		}
		next := kept[:0]
		for _, x := range kept {
			if math.Abs(x-mean) <= nsigma*std {
				next = append(next, x)
			}
		}
		if len(next) == len(kept) {
			return mean, std
		}
		kept = next
	}
	return mean, std
}

// EstimateBackground estimates the smooth sky background of an image by
// computing sigma-clipped means over a mesh of cells (cell×cell pixels) and
// bilinearly interpolating between cell centers — the standard SExtractor /
// LSST-stack approach used in the paper's Step 1A.
func EstimateBackground(im *Image, cell int) *Image {
	if cell <= 0 {
		cell = 32
	}
	gw := (im.W + cell - 1) / cell
	gh := (im.H + cell - 1) / cell
	if gw < 1 {
		gw = 1
	}
	if gh < 1 {
		gh = 1
	}
	meshVal := make([]float64, gw*gh)
	meshX := make([]float64, gw)
	meshY := make([]float64, gh)
	buf := make([]float64, 0, cell*cell)
	for gy := 0; gy < gh; gy++ {
		y0, y1 := gy*cell, min((gy+1)*cell, im.H)
		meshY[gy] = (float64(y0) + float64(y1-1)) / 2
		for gx := 0; gx < gw; gx++ {
			x0, x1 := gx*cell, min((gx+1)*cell, im.W)
			meshX[gx] = (float64(x0) + float64(x1-1)) / 2
			buf = buf[:0]
			for y := y0; y < y1; y++ {
				buf = append(buf, im.Pix[y*im.W+x0:y*im.W+x1]...)
			}
			m, _ := SigmaClippedStats(buf, 3, 3)
			meshVal[gy*gw+gx] = m
		}
	}
	bg := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		gy := locate(meshY, float64(y))
		for x := 0; x < im.W; x++ {
			gx := locate(meshX, float64(x))
			bg.Set(x, y, bilinear(meshVal, meshX, meshY, gw, gx, gy, float64(x), float64(y)))
		}
	}
	return bg
}

// locate returns i such that centers[i] <= v < centers[i+1], clamped to
// [0, len-2]; for a single-cell mesh it returns 0.
func locate(centers []float64, v float64) int {
	if len(centers) == 1 {
		return 0
	}
	i := sort.SearchFloat64s(centers, v) - 1
	if i < 0 {
		i = 0
	}
	if i > len(centers)-2 {
		i = len(centers) - 2
	}
	return i
}

func bilinear(mesh, xs, ys []float64, gw, gx, gy int, x, y float64) float64 {
	if len(xs) == 1 && len(ys) == 1 {
		return mesh[0]
	}
	x1, y1 := gx, gy
	x2, y2 := gx, gy
	if len(xs) > 1 {
		x2 = gx + 1
	}
	if len(ys) > 1 {
		y2 = gy + 1
	}
	fx := 0.0
	if x2 != x1 {
		fx = (x - xs[x1]) / (xs[x2] - xs[x1])
		fx = math.Max(0, math.Min(1, fx))
	}
	fy := 0.0
	if y2 != y1 {
		fy = (y - ys[y1]) / (ys[y2] - ys[y1])
		fy = math.Max(0, math.Min(1, fy))
	}
	v11 := mesh[y1*gw+x1]
	v21 := mesh[y1*gw+x2]
	v12 := mesh[y2*gw+x1]
	v22 := mesh[y2*gw+x2]
	return v11*(1-fx)*(1-fy) + v21*fx*(1-fy) + v12*(1-fx)*fy + v22*fx*fy
}

// DetectCosmicRays flags pixels that stand out sharply from their 8
// neighbours: value > neighbour median + nsigma·sqrt(variance). It returns
// the flagged pixel indices. Cosmic rays hit single pixels or tight clumps,
// unlike real sources which are PSF-spread.
func DetectCosmicRays(flux, variance *Image, nsigma float64) []int {
	var hits []int
	nb := make([]float64, 0, 8)
	for y := 0; y < flux.H; y++ {
		for x := 0; x < flux.W; x++ {
			nb = nb[:0]
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if flux.In(x+dx, y+dy) {
						nb = append(nb, flux.At(x+dx, y+dy))
					}
				}
			}
			m := median(nb)
			sigma := math.Sqrt(math.Max(variance.At(x, y), 1e-12))
			if flux.At(x, y) > m+nsigma*sigma {
				hits = append(hits, y*flux.W+x)
			}
		}
	}
	return hits
}

// RepairPixels replaces each listed pixel with the median of its
// non-flagged 8-neighbours, and marks it in mask with the given flag bit.
func RepairPixels(flux *Image, mask []uint8, hits []int, flag uint8) {
	bad := make(map[int]bool, len(hits))
	for _, i := range hits {
		bad[i] = true
	}
	nb := make([]float64, 0, 8)
	for _, i := range hits {
		x, y := i%flux.W, i/flux.W
		nb = nb[:0]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				xx, yy := x+dx, y+dy
				if flux.In(xx, yy) && !bad[yy*flux.W+xx] {
					nb = append(nb, flux.At(xx, yy))
				}
			}
		}
		if len(nb) > 0 {
			flux.Set(x, y, median(nb))
		}
		if mask != nil {
			mask[i] |= flag
		}
	}
}

// Source is a detected pixel cluster in a coadded image.
type Source struct {
	ID       int
	X, Y     float64 // flux-weighted centroid
	Flux     float64 // total flux above threshold
	NPix     int
	PeakFlux float64
}

// DetectSources finds connected clusters (8-connectivity) of pixels whose
// flux exceeds background + nsigma·std, with at least minPix pixels — the
// paper's Step 4A. Sources are returned in decreasing flux order.
func DetectSources(flux *Image, nsigma float64, minPix int) []Source {
	bg := EstimateBackground(flux, 32)
	resid := make([]float64, len(flux.Pix))
	for i := range resid {
		resid[i] = flux.Pix[i] - bg.Pix[i]
	}
	_, std := SigmaClippedStats(resid, 3, 3)
	thresh := nsigma * std
	if thresh == 0 {
		thresh = 1e-12
	}
	labels := make([]int, len(flux.Pix))
	var sources []Source
	var stack []int
	next := 0
	for start, r := range resid {
		if r <= thresh || labels[start] != 0 {
			continue
		}
		next++
		src := Source{ID: next}
		stack = append(stack[:0], start)
		labels[start] = next
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%flux.W, i/flux.W
			f := resid[i]
			src.Flux += f
			src.NPix++
			src.X += f * float64(x)
			src.Y += f * float64(y)
			if f > src.PeakFlux {
				src.PeakFlux = f
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy := x+dx, y+dy
					if !flux.In(xx, yy) {
						continue
					}
					j := yy*flux.W + xx
					if labels[j] == 0 && resid[j] > thresh {
						labels[j] = next
						stack = append(stack, j)
					}
				}
			}
		}
		if src.NPix >= minPix && src.Flux > 0 {
			src.X /= src.Flux
			src.Y /= src.Flux
			sources = append(sources, src)
		}
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].Flux > sources[j].Flux })
	return sources
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
