package imaging

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"imagebench/internal/volume"
)

func streamTestVolume(seed int64, nx, ny, nz int) *volume.V3 {
	rng := rand.New(rand.NewSource(seed))
	v := volume.New3(nx, ny, nz)
	for i := range v.Data {
		v.Data[i] = 100 + 10*rng.NormFloat64()
	}
	return v
}

// TestNLMeans3StreamBitIdentical pins the streaming denoise to the
// materialized kernel voxel for voxel, across worker counts including
// more workers than tiles, and with buffers recycled through a shared
// arena between runs (Release-then-reuse).
func TestNLMeans3StreamBitIdentical(t *testing.T) {
	v := streamTestVolume(41, 9, 8, 10)
	mask := volume.New3(v.NX, v.NY, v.NZ)
	for i := range mask.Data {
		if i%4 != 0 {
			mask.Data[i] = 1
		}
	}
	opts := NLMeansOpts{PatchRadius: 1, SearchRadius: 2}
	want := NLMeans3(v, mask, opts)
	ar := volume.NewArena() // shared across subtests: later runs get dirty buffers
	for _, workers := range []int{1, 4, v.NZ + 6} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := opts
			o.Workers = workers
			s := NLMeans3Stream(context.Background(), v, mask, o, ar, 1)
			got := volume.Collect(v.NX, v.NY, v.NZ, s)
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("voxel %d = %v, want %v (stream must be bit-identical)", i, got.Data[i], want.Data[i])
				}
			}
		})
	}
	st := ar.Stats()
	if st.Puts != st.Gets {
		t.Fatalf("stream leaked arena buffers: gets=%d puts=%d", st.Gets, st.Puts)
	}
}

// TestSeparableConv3StreamBitIdentical does the same for the separable
// convolution's streamed z-pass.
func TestSeparableConv3StreamBitIdentical(t *testing.T) {
	v := streamTestVolume(43, 10, 9, 12)
	k := GaussianKernel(1.1)
	want, err := SeparableConv3Ctx(context.Background(), v, k, k, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	ar := volume.NewArena()
	for _, workers := range []int{1, 4, v.NZ + 6} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s, err := SeparableConv3Stream(context.Background(), v, k, k, k, workers, ar, 2)
			if err != nil {
				t.Fatal(err)
			}
			got := volume.Collect(v.NX, v.NY, v.NZ, s)
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("voxel %d = %v, want %v (stream must be bit-identical)", i, got.Data[i], want.Data[i])
				}
			}
		})
	}
}

// TestStreamsShareScratchConcurrently is the satellite aliasing stress
// (run under -race in CI): several full streaming pipelines recycle
// blocks through the process-wide volume.Scratch arena at once, each
// with a distinct input, and every one must still produce exactly its
// own sequential result — no pipeline may ever observe another's
// scratch data.
func TestStreamsShareScratchConcurrently(t *testing.T) {
	opts := NLMeansOpts{PatchRadius: 1, SearchRadius: 1}
	const pipelines = 6
	inputs := make([]*volume.V3, pipelines)
	wants := make([]*volume.V3, pipelines)
	for p := range inputs {
		inputs[p] = streamTestVolume(int64(100+p), 7, 6, 8)
		wants[p] = NLMeans3(inputs[p], nil, opts)
	}
	var wg sync.WaitGroup
	errs := make([]error, pipelines)
	for p := 0; p < pipelines; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			o := opts
			o.Workers = 1 + p%3
			v := inputs[p]
			s := NLMeans3Stream(context.Background(), v, nil, o, volume.Scratch, 1)
			got := volume.Collect(v.NX, v.NY, v.NZ, s)
			for i := range got.Data {
				if got.Data[i] != wants[p].Data[i] {
					errs[p] = fmt.Errorf("pipeline %d voxel %d = %v, want %v (cross-pipeline scratch contamination)",
						p, i, got.Data[i], wants[p].Data[i])
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
