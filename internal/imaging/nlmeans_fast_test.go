package imaging

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"imagebench/internal/volume"
)

// naivePatchDist2 is the original clamped triple loop, kept as the
// reference the optimized patchDist2 must match bit-for-bit.
func naivePatchDist2(v *volume.V3, x, y, z, cx, cy, cz, r int) float64 {
	var sum float64
	var n int
	for pz := -r; pz <= r; pz++ {
		for py := -r; py <= r; py++ {
			for px := -r; px <= r; px++ {
				ax, ay, az := clamp(x+px, v.NX), clamp(y+py, v.NY), clamp(z+pz, v.NZ)
				bx, by, bz := clamp(cx+px, v.NX), clamp(cy+py, v.NY), clamp(cz+pz, v.NZ)
				d := v.At(ax, ay, az) - v.At(bx, by, bz)
				sum += d * d
				n++
			}
		}
	}
	return sum / float64(n)
}

// TestPatchDist2FastPathExact proves the interior fast path is
// bit-identical to the clamped reference: the NLMeans results feed
// deterministic, content-addressed experiment tables, so even
// last-ulp drift would be a cache-key regression.
func TestPatchDist2FastPathExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := volume.New3(9, 8, 7)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	for r := 1; r <= 2; r++ {
		for trial := 0; trial < 2000; trial++ {
			x, y, z := rng.Intn(v.NX), rng.Intn(v.NY), rng.Intn(v.NZ)
			cx, cy, cz := rng.Intn(v.NX), rng.Intn(v.NY), rng.Intn(v.NZ)
			got := patchDist2(v, x, y, z, cx, cy, cz, r)
			want := naivePatchDist2(v, x, y, z, cx, cy, cz, r)
			if got != want {
				t.Fatalf("patchDist2(%d,%d,%d ~ %d,%d,%d, r=%d) = %v, want %v (exact)",
					x, y, z, cx, cy, cz, r, got, want)
			}
		}
	}
}

// TestNLMeans3WindowClampExact pins the whole denoiser: the clamped
// search window and fast patch distance must reproduce the original
// implementation exactly, including at volume boundaries.
func TestNLMeans3WindowClampExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := volume.New3(10, 9, 8)
	for i := range v.Data {
		v.Data[i] = 100 + 10*rng.NormFloat64()
	}
	got := NLMeans3(v, nil, NLMeansOpts{})
	want := naiveNLMeans3(v, nil, NLMeansOpts{})
	if !got.SameShape(want) {
		t.Fatal("shape mismatch")
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("voxel %d: %v != %v (must be bit-identical)", i, got.Data[i], want.Data[i])
		}
	}
}

// TestNLMeans3WorkersExact proves the tiled parallel path is
// byte-identical to the sequential reference across randomized volume
// sizes, mask patterns, and worker counts — including workers=1 and
// workers far beyond the tile count.
func TestNLMeans3WorkersExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		nx, ny, nz := 3+rng.Intn(10), 3+rng.Intn(9), 1+rng.Intn(11)
		v := volume.New3(nx, ny, nz)
		for i := range v.Data {
			v.Data[i] = 50 + 20*rng.NormFloat64()
		}
		// Mask pattern: nil (unmasked), random sparse, or all-zero.
		var mask *volume.V3
		switch trial % 3 {
		case 1:
			mask = volume.New3(nx, ny, nz)
			for i := range mask.Data {
				if rng.Intn(3) == 0 {
					mask.Data[i] = 1
				}
			}
		case 2:
			mask = volume.New3(nx, ny, nz) // all background
		}
		opts := NLMeansOpts{PatchRadius: 1 + rng.Intn(2), SearchRadius: 1 + rng.Intn(2)}
		want := naiveNLMeans3(v, mask, opts)
		for _, workers := range []int{0, 1, 2, 3, 7, nz, nz + 13, 64} {
			opts.Workers = workers
			got := NLMeans3(v, mask, opts)
			if !got.SameShape(want) {
				t.Fatalf("trial %d workers=%d: shape mismatch", trial, workers)
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("trial %d (%dx%dx%d) workers=%d: voxel %d = %v, want %v (must be bit-identical)",
						trial, nx, ny, nz, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// naiveSeparableConv3 is the pre-optimization separable convolution:
// one freshly allocated volume per 1-D pass, sequential. The parallel
// scratch-reusing path must reproduce it bit-for-bit.
func naiveSeparableConv3(v *volume.V3, kx, ky, kz []float64) *volume.V3 {
	conv := func(u *volume.V3, kernel []float64, ax axis) *volume.V3 {
		out := volume.New3(u.NX, u.NY, u.NZ)
		convAxisInto(out, u, kernel, ax, 0, 0, u.NZ)
		return out
	}
	out := conv(v, kx, axisX)
	out = conv(out, ky, axisY)
	return conv(out, kz, axisZ)
}

// TestSeparableConv3WorkersExact pins the parallel convolution against
// the sequential reference across randomized sizes, kernels, and worker
// counts, including the workers>tiles edge case.
func TestSeparableConv3WorkersExact(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	randKernel := func() []float64 {
		k := GaussianKernel(0.4 + rng.Float64()*1.2)
		return k
	}
	for trial := 0; trial < 12; trial++ {
		nx, ny, nz := 2+rng.Intn(12), 2+rng.Intn(11), 1+rng.Intn(10)
		v := volume.New3(nx, ny, nz)
		for i := range v.Data {
			v.Data[i] = rng.NormFloat64()
		}
		kx, ky, kz := randKernel(), randKernel(), randKernel()
		want := naiveSeparableConv3(v, kx, ky, kz)
		for _, workers := range []int{0, 1, 2, 5, nz + 17, 64} {
			got, err := SeparableConv3Ctx(context.Background(), v, kx, ky, kz, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("trial %d (%dx%dx%d) workers=%d: voxel %d = %v, want %v (must be bit-identical)",
						trial, nx, ny, nz, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// naiveNLMeans3 is the pre-optimization denoiser loop.
func naiveNLMeans3(v *volume.V3, mask *volume.V3, opts NLMeansOpts) *volume.V3 {
	opts = opts.withDefaults()
	h := opts.H
	if h <= 0 {
		h = 0.7 * v.Summarize().Std
		if h == 0 {
			h = 1
		}
	}
	h2 := h * h
	pr, sr := opts.PatchRadius, opts.SearchRadius
	out := v.Clone()
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				if mask != nil && mask.At(x, y, z) == 0 {
					continue
				}
				var wsum, vsum float64
				for dz := -sr; dz <= sr; dz++ {
					for dy := -sr; dy <= sr; dy++ {
						for dx := -sr; dx <= sr; dx++ {
							cx, cy, cz := x+dx, y+dy, z+dz
							if !v.In(cx, cy, cz) {
								continue
							}
							d2 := naivePatchDist2(v, x, y, z, cx, cy, cz, pr)
							w := math.Exp(-d2 / h2)
							wsum += w
							vsum += w * v.At(cx, cy, cz)
						}
					}
				}
				if wsum > 0 {
					out.Set(x, y, z, vsum/wsum)
				}
			}
		}
	}
	return out
}
