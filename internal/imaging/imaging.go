// Package imaging implements the image-processing algorithms both use
// cases invoke: Otsu thresholding and median filtering (segmentation),
// 3-D non-local means (denoising), sigma-clipped background estimation,
// cosmic-ray detection and repair (astronomy pre-processing), and
// threshold-based connected-component extraction (source detection).
//
// These replace the Dipy and LSST-stack routines the paper's reference
// implementations call.
package imaging

import (
	"context"
	"math"
	"sort"

	"imagebench/internal/volume"
)

// Otsu computes Otsu's threshold for the given samples: the value that
// maximizes between-class variance of the two-class split (Otsu 1975,
// as used by the paper's segmentation step).
func Otsu(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		return lo
	}
	const bins = 256
	hist := make([]int, bins)
	scale := float64(bins-1) / (hi - lo)
	for _, s := range samples {
		hist[int((s-lo)*scale)]++
	}
	total := len(samples)
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var wB, sumB float64
	bestVar, bestT := -1.0, 0
	for t := 0; t < bins; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar, bestT = between, t
		}
	}
	return lo + (float64(bestT)+1)/scale
}

// OtsuMask thresholds a volume with Otsu's method, returning a binary mask
// (1 = foreground). This is the final sub-step of the paper's Step 1N.
func OtsuMask(v *volume.V3) *volume.V3 {
	t := Otsu(v.Data)
	out := volume.New3(v.NX, v.NY, v.NZ)
	for i, x := range v.Data {
		if x > t {
			out.Data[i] = 1
		}
	}
	return out
}

// MedianFilter3Into applies MedianFilter3 into dst, which must match
// v's shape and not alias it; existing contents are overwritten, so
// dst may come from an arena. Output is bit-identical to MedianFilter3.
func MedianFilter3Into(dst, v *volume.V3, radius int) {
	if radius <= 0 {
		copy(dst.Data, v.Data)
		return
	}
	medianFilter3(dst, v, radius)
}

// MedianFilter3 applies a 3-D median filter with the given radius
// (window edge = 2r+1), clamping at boundaries. Dipy's median_otsu applies
// this smoothing before thresholding.
func MedianFilter3(v *volume.V3, radius int) *volume.V3 {
	if radius <= 0 {
		return v.Clone()
	}
	out := volume.New3(v.NX, v.NY, v.NZ)
	medianFilter3(out, v, radius)
	return out
}

func medianFilter3(out, v *volume.V3, radius int) {
	win := make([]float64, 0, (2*radius+1)*(2*radius+1)*(2*radius+1))
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				win = win[:0]
				for dz := -radius; dz <= radius; dz++ {
					for dy := -radius; dy <= radius; dy++ {
						for dx := -radius; dx <= radius; dx++ {
							xx, yy, zz := clamp(x+dx, v.NX), clamp(y+dy, v.NY), clamp(z+dz, v.NZ)
							win = append(win, v.At(xx, yy, zz))
						}
					}
				}
				out.Set(x, y, z, median(win))
			}
		}
	}
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// NLMeansOpts configures non-local means denoising.
type NLMeansOpts struct {
	PatchRadius  int     // radius of the comparison patch (default 1)
	SearchRadius int     // radius of the search window (default 2)
	H            float64 // filtering strength; <=0 means auto from noise std
	// Workers bounds the tile worker pool: 0 means GOMAXPROCS, 1 forces
	// the sequential path. The output is bit-identical for every value.
	Workers int
}

func (o NLMeansOpts) withDefaults() NLMeansOpts {
	if o.PatchRadius <= 0 {
		o.PatchRadius = 1
	}
	if o.SearchRadius <= 0 {
		o.SearchRadius = 2
	}
	return o
}

// NLMeans3 denoises a 3-D volume with the blockwise non-local means
// algorithm (Coupé et al. 2008, the paper's Step 2N). When mask is non-nil,
// only voxels with mask≠0 are denoised (the paper uses the segmentation
// mask to skip background); other voxels pass through unchanged.
//
// The work is tiled across opts.Workers goroutines (0 = GOMAXPROCS);
// every voxel depends only on the read-only input and each tile writes
// a disjoint output slab, so the result is bit-identical for any worker
// count.
func NLMeans3(v *volume.V3, mask *volume.V3, opts NLMeansOpts) *volume.V3 {
	out, err := NLMeans3Ctx(context.Background(), v, mask, opts)
	if err != nil {
		// Background context cannot be canceled and the kernel has no
		// other failure mode.
		panic("imaging: NLMeans3: " + err.Error())
	}
	return out
}

// NLMeans3Ctx is NLMeans3 with cooperative cancellation: workers stop
// at the next tile boundary once ctx is canceled, the partially written
// volume is discarded, and (nil, ctx.Err()) is returned.
func NLMeans3Ctx(ctx context.Context, v *volume.V3, mask *volume.V3, opts NLMeansOpts) (*volume.V3, error) {
	out := volume.New3(v.NX, v.NY, v.NZ)
	if err := NLMeans3IntoCtx(ctx, out, v, mask, opts); err != nil {
		return nil, err
	}
	return out, nil
}

// NLMeans3IntoCtx denoises v into dst, which must match v's shape and
// not alias it. Existing contents of dst are overwritten (pass-through
// voxels copy from v, exactly as NLMeans3's initial clone does), so dst
// may come from an arena; output is bit-identical to NLMeans3 for any
// worker count. On cancellation dst is partially written and must be
// discarded or reused, never read.
func NLMeans3IntoCtx(ctx context.Context, dst, v, mask *volume.V3, opts NLMeansOpts) error {
	if !dst.SameShape(v) {
		panic("imaging: NLMeans3IntoCtx shape mismatch")
	}
	opts = opts.withDefaults()
	h := opts.H
	if h <= 0 {
		h = 0.7 * v.Summarize().Std
		if h == 0 {
			h = 1
		}
	}
	copy(dst.Data, v.Data)
	return runTiles(ctx, v.NZ, opts.Workers, func(z0, z1 int) {
		nlmeansSlab(v, mask, dst, 0, opts, h, z0, z1)
	})
}

// NLMeans3Stream is the stream-producing form of the kernel: it
// returns a stream of denoised z-slab blocks of at most rows planes
// each, computed lazily on opts.Workers goroutines with output buffers
// drawn from arena. Every voxel is the same expression as NLMeans3's
// (the input stays materialized; only the output is streamed), so a
// Collect of the stream is bit-identical to NLMeans3 — but a consumer
// that reduces each block and releases it never holds the full
// denoised volume, which is how the reference pipelines fuse Step 2N
// into Step 3N. Blocks arrive in ascending Z0 order; the consumer owns
// each block and should Release it when done, or Drain the stream on
// early exit.
func NLMeans3Stream(ctx context.Context, v, mask *volume.V3, opts NLMeansOpts, arena *volume.Arena, rows int) volume.Stream {
	opts = opts.withDefaults()
	h := opts.H
	if h <= 0 {
		h = 0.7 * v.Summarize().Std
		if h == 0 {
			h = 1
		}
	}
	plane := v.NX * v.NY
	return volume.Map(ctx, volume.Slabs(v, rows), arena, opts.Workers, func(in volume.BlockVol, out *volume.V3) {
		// Pass-through voxels copy the input, exactly as NLMeans3's
		// up-front clone does; masked-in voxels are then overwritten.
		copy(out.Data, v.Data[in.B.Z0*plane:in.B.Z1*plane])
		nlmeansSlab(v, mask, out, in.B.Z0, opts, h, in.B.Z0, in.B.Z1)
	})
}

// nlmeansSlab denoises the z-planes [z0,z1) of v into out, whose plane
// z0 sits at out z-index z0-outZ0 (0 for a full-shape output, z0 for a
// slab-shaped block buffer). It is the body of the original sequential
// loop, unchanged except for the slab bounds: per-voxel candidate
// sets, iteration order, and accumulation order are identical, so any
// tile decomposition reproduces the sequential result bit-for-bit.
func nlmeansSlab(v, mask, out *volume.V3, outZ0 int, opts NLMeansOpts, h float64, z0, z1 int) {
	h2 := h * h
	pr, sr := opts.PatchRadius, opts.SearchRadius
	for z := z0; z < z1; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				if mask != nil && mask.At(x, y, z) == 0 {
					continue
				}
				// Clamp the search window to the volume up front; the
				// candidate set and iteration order are unchanged, so
				// results are bit-identical to the bounds-checked loop.
				zlo, zhi := max(-sr, -z), min(sr, v.NZ-1-z)
				ylo, yhi := max(-sr, -y), min(sr, v.NY-1-y)
				xlo, xhi := max(-sr, -x), min(sr, v.NX-1-x)
				var wsum, vsum float64
				for dz := zlo; dz <= zhi; dz++ {
					for dy := ylo; dy <= yhi; dy++ {
						for dx := xlo; dx <= xhi; dx++ {
							cx, cy, cz := x+dx, y+dy, z+dz
							d2 := patchDist2(v, x, y, z, cx, cy, cz, pr)
							w := math.Exp(-d2 / h2)
							wsum += w
							vsum += w * v.At(cx, cy, cz)
						}
					}
				}
				if wsum > 0 {
					out.Set(x, y, z-outZ0, vsum/wsum)
				}
			}
		}
	}
}

// patchDist2 returns the mean squared difference between patches centered
// at (x,y,z) and (cx,cy,cz), clamped at the boundary.
func patchDist2(v *volume.V3, x, y, z, cx, cy, cz, r int) float64 {
	// Fast path: both patches fully interior. The patches then sit at a
	// constant linear offset from each other, so the comparison walks
	// the data slice row by row with no per-voxel index math or
	// clamping. Summation order matches the general path below, so the
	// result is bit-identical.
	if x >= r && x+r < v.NX && y >= r && y+r < v.NY && z >= r && z+r < v.NZ &&
		cx >= r && cx+r < v.NX && cy >= r && cy+r < v.NY && cz >= r && cz+r < v.NZ {
		side := 2*r + 1
		delta := v.Idx(cx, cy, cz) - v.Idx(x, y, z)
		var sum float64
		for pz := -r; pz <= r; pz++ {
			for py := -r; py <= r; py++ {
				a := v.Idx(x-r, y+py, z+pz)
				rowA := v.Data[a : a+side]
				rowB := v.Data[a+delta : a+delta+side : a+delta+side]
				for i, av := range rowA {
					d := av - rowB[i]
					sum += d * d
				}
			}
		}
		return sum / float64(side*side*side)
	}
	var sum float64
	var n int
	for pz := -r; pz <= r; pz++ {
		for py := -r; py <= r; py++ {
			for px := -r; px <= r; px++ {
				ax, ay, az := clamp(x+px, v.NX), clamp(y+py, v.NY), clamp(z+pz, v.NZ)
				bx, by, bz := clamp(cx+px, v.NX), clamp(cy+py, v.NY), clamp(cz+pz, v.NZ)
				d := v.At(ax, ay, az) - v.At(bx, by, bz)
				sum += d * d
				n++
			}
		}
	}
	return sum / float64(n)
}
