package imaging

import (
	"context"

	"imagebench/internal/volume"
)

// The kernels' tiled worker pool is a stage over the volume streaming
// layer: work arrives as a pull-based stream of z-slab blocks
// (volume.Tiles), a bounded worker set consumes it (volume.ForEach),
// and scratch buffers come from the shared volume.Scratch arena. Every
// voxel is computed by exactly the same expression as the sequential
// loop and each tile writes a disjoint output slab, so results are
// bit-identical to the sequential path for any worker count and any
// tile size.

// tileRows is the tile height in z-planes. One plane per tile keeps
// load balancing fine-grained enough for masked kernels, where whole
// slabs of background cost almost nothing.
const tileRows = 1

// resolveWorkers maps a Workers option to an effective pool size:
// non-positive means GOMAXPROCS, and the pool never exceeds the tile
// count (workers > tiles would idle).
func resolveWorkers(workers, tiles int) int {
	workers = volume.ResolveWorkers(workers)
	if workers > tiles {
		workers = tiles
	}
	return workers
}

// runTiles applies fn to each tile of nz z-planes using the given
// worker count. It returns ctx.Err() if the context is canceled;
// workers stop picking up new tiles at the next tile boundary, so a
// nonzero error means the output may be incomplete and must be
// discarded by the caller.
func runTiles(ctx context.Context, nz, workers int, fn func(z0, z1 int)) error {
	tiles := volume.TileZ(nz, tileRows)
	workers = resolveWorkers(workers, len(tiles))
	return volume.ForEach(ctx, volume.Tiles(nz, tileRows), workers, func(bv volume.BlockVol) {
		fn(bv.B.Z0, bv.B.Z1)
	})
}

// getScratch returns an nx×ny×nz volume from the shared arena whose
// contents are arbitrary — callers must write every voxel before
// reading any.
func getScratch(nx, ny, nz int) *volume.V3 {
	return volume.Scratch.Get(nx, ny, nz)
}

// putScratch returns a volume obtained from getScratch to the arena.
func putScratch(v *volume.V3) {
	volume.Scratch.Put(v)
}
