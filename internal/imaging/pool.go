package imaging

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"imagebench/internal/volume"
)

// Tiled worker pool shared by the parallel kernel fast paths. Work is
// split into z-slab tiles (volume.TileZ) and consumed by a bounded set
// of goroutines pulling tiles off an atomic counter. Every voxel is
// computed by exactly the same expression as the sequential loop and
// each tile writes a disjoint output slab, so results are bit-identical
// to the sequential path for any worker count and any tile size.

// tileRows is the tile height in z-planes. One plane per tile keeps
// load balancing fine-grained enough for masked kernels, where whole
// slabs of background cost almost nothing.
const tileRows = 1

// resolveWorkers maps a Workers option to an effective pool size:
// non-positive means GOMAXPROCS, and the pool never exceeds the tile
// count (workers > tiles would idle).
func resolveWorkers(workers, tiles int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tiles {
		workers = tiles
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runTiles applies fn to each tile of nz z-planes using the given
// worker count. It returns ctx.Err() if the context is canceled;
// workers stop picking up new tiles at the next tile boundary, so a
// nonzero error means the output may be incomplete and must be
// discarded by the caller.
func runTiles(ctx context.Context, nz, workers int, fn func(z0, z1 int)) error {
	tiles := volume.TileZ(nz, tileRows)
	workers = resolveWorkers(workers, len(tiles))
	if workers == 1 {
		for _, tl := range tiles {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(tl.Z0, tl.Z1)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(tiles) {
					return
				}
				fn(tiles[i].Z0, tiles[i].Z1)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// volPool recycles intermediate volumes between kernel invocations:
// the separable convolution ping-pongs through two full-size scratch
// volumes per call, and reusing them cuts steady-state allocations of
// the TensorFlow-model denoise path to the single output volume.
var volPool sync.Pool

// getScratch returns an nx×ny×nz volume whose contents are arbitrary —
// callers must write every voxel before reading any. Volumes of a
// different shape than the pooled one are allocated fresh.
func getScratch(nx, ny, nz int) *volume.V3 {
	if v, _ := volPool.Get().(*volume.V3); v != nil {
		if v.NX == nx && v.NY == ny && v.NZ == nz {
			return v
		}
		// Wrong shape: reuse the backing array when it is big enough.
		if cap(v.Data) >= nx*ny*nz {
			return &volume.V3{NX: nx, NY: ny, NZ: nz, Data: v.Data[:nx*ny*nz]}
		}
	}
	return volume.New3(nx, ny, nz)
}

// putScratch returns a volume obtained from getScratch to the pool.
func putScratch(v *volume.V3) {
	if v != nil {
		volPool.Put(v)
	}
}
