package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imagebench/internal/volume"
)

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5} {
		k := GaussianKernel(sigma)
		if len(k)%2 != 1 {
			t.Errorf("sigma %v: even kernel length %d", sigma, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("sigma %v: kernel sums to %v", sigma, sum)
		}
		// Symmetry and peak at center.
		for i := range k {
			if k[i] != k[len(k)-1-i] {
				t.Errorf("sigma %v: asymmetric kernel", sigma)
			}
		}
		if k[len(k)/2] < k[0] {
			t.Errorf("sigma %v: center not the peak", sigma)
		}
	}
	if k := GaussianKernel(0); len(k) != 1 || k[0] != 1 {
		t.Errorf("sigma 0 kernel: %v", k)
	}
}

func randomVol(rng *rand.Rand, nx, ny, nz int) *volume.V3 {
	v := volume.New3(nx, ny, nz)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	return v
}

// SeparableConv3 must equal the dense 3-D convolution with the outer
// product kernel.
func TestSeparableMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := randomVol(rng, 6, 5, 4)
	kx := []float64{0.25, 0.5, 0.25}
	ky := []float64{0.1, 0.8, 0.1}
	kz := []float64{0.3, 0.4, 0.3}
	dense := make([][][]float64, 3)
	for dz := 0; dz < 3; dz++ {
		dense[dz] = make([][]float64, 3)
		for dy := 0; dy < 3; dy++ {
			dense[dz][dy] = make([]float64, 3)
			for dx := 0; dx < 3; dx++ {
				dense[dz][dy][dx] = kz[dz] * ky[dy] * kx[dx]
			}
		}
	}
	sep := SeparableConv3(v, kx, ky, kz)
	ref := Conv3(v, dense)
	if d := volume.MaxAbsDiff(sep, ref); d > 1e-12 {
		t.Errorf("separable vs dense conv differ by %g", d)
	}
}

// Property: convolution with a normalized kernel preserves the mean of a
// constant volume exactly, for any constant.
func TestConvPreservesConstantProperty(t *testing.T) {
	f := func(c float64, sigmaBits uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		sigma := 0.5 + float64(sigmaBits%3)
		v := volume.New3(4, 4, 4)
		for i := range v.Data {
			v.Data[i] = c
		}
		out := GaussianSmooth3(v, sigma)
		for _, x := range out.Data {
			if math.Abs(x-c) > 1e-9*math.Max(1, math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianSmoothReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	v := randomVol(rng, 12, 12, 12)
	sm := GaussianSmooth3(v, 1)
	varOf := func(u *volume.V3) float64 {
		var mean float64
		for _, x := range u.Data {
			mean += x
		}
		mean /= float64(len(u.Data))
		var s float64
		for _, x := range u.Data {
			s += (x - mean) * (x - mean)
		}
		return s / float64(len(u.Data))
	}
	if varOf(sm) >= varOf(v)/2 {
		t.Errorf("smoothing barely reduced noise: %v -> %v", varOf(v), varOf(sm))
	}
}

func TestConvInteriorImpulsePreservesMass(t *testing.T) {
	// An impulse far enough from the borders keeps exactly its mass (the
	// kernel is normalized and lies fully inside the volume).
	v := volume.New3(9, 9, 9)
	v.Set(4, 4, 4, 1)
	out := GaussianSmooth3(v, 0.8) // radius 3 ≤ 4
	var sum float64
	for _, x := range out.Data {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("impulse mass after interior conv = %v, want 1", sum)
	}
	// At a corner, replicate padding re-reads border voxels: mass may
	// exceed 1 but the output stays bounded by the input max.
	c := volume.New3(3, 3, 3)
	c.Set(0, 0, 0, 1)
	for _, x := range GaussianSmooth3(c, 0.8).Data {
		if x < 0 || x > 1 {
			t.Fatalf("clamped conv out of range: %v", x)
		}
	}
}
