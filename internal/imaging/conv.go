package imaging

import (
	"math"

	"imagebench/internal/volume"
)

// 3-D convolution. The paper's TensorFlow implementation could not
// express non-local means and "rewrote Step 2N using convolutions"
// (Section 4.5): a Gaussian smoothing pass expressed as tensor ops.
// Separable evaluation applies the 1-D kernel along each axis in turn —
// the form a dataflow engine would run it in — and is mathematically
// identical to the dense 3-D product kernel.

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation, truncated at ±3σ (at least radius 1).
func GaussianKernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// axis identifies a convolution direction.
type axis int

const (
	axisX axis = iota
	axisY
	axisZ
)

// convAxis convolves v with the 1-D kernel along one axis, clamping at
// the borders (replicate padding).
func convAxis(v *volume.V3, kernel []float64, ax axis) *volume.V3 {
	out := volume.New3(v.NX, v.NY, v.NZ)
	r := len(kernel) / 2
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				var acc float64
				for k := -r; k <= r; k++ {
					xx, yy, zz := x, y, z
					switch ax {
					case axisX:
						xx = clamp(x+k, v.NX)
					case axisY:
						yy = clamp(y+k, v.NY)
					case axisZ:
						zz = clamp(z+k, v.NZ)
					}
					acc += kernel[k+r] * v.At(xx, yy, zz)
				}
				out.Set(x, y, z, acc)
			}
		}
	}
	return out
}

// SeparableConv3 convolves v with the outer product kernel kx⊗ky⊗kz,
// evaluated as three 1-D passes.
func SeparableConv3(v *volume.V3, kx, ky, kz []float64) *volume.V3 {
	out := convAxis(v, kx, axisX)
	out = convAxis(out, ky, axisY)
	return convAxis(out, kz, axisZ)
}

// Conv3 convolves v with a dense 3-D kernel (odd-sized in each
// dimension), clamping at the borders. It is the reference for
// SeparableConv3 and supports non-separable kernels.
func Conv3(v *volume.V3, kernel [][][]float64) *volume.V3 {
	rz := len(kernel) / 2
	ry := len(kernel[0]) / 2
	rx := len(kernel[0][0]) / 2
	out := volume.New3(v.NX, v.NY, v.NZ)
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				var acc float64
				for dz := -rz; dz <= rz; dz++ {
					for dy := -ry; dy <= ry; dy++ {
						for dx := -rx; dx <= rx; dx++ {
							w := kernel[dz+rz][dy+ry][dx+rx]
							acc += w * v.At(clamp(x+dx, v.NX), clamp(y+dy, v.NY), clamp(z+dz, v.NZ))
						}
					}
				}
				out.Set(x, y, z, acc)
			}
		}
	}
	return out
}

// GaussianSmooth3 is the convolution-based denoiser the paper's
// TensorFlow implementation substitutes for non-local means: an
// isotropic Gaussian blur, unmasked (TensorFlow cannot apply the mask,
// Section 5.2.3).
func GaussianSmooth3(v *volume.V3, sigma float64) *volume.V3 {
	k := GaussianKernel(sigma)
	return SeparableConv3(v, k, k, k)
}
