package imaging

import (
	"context"
	"math"

	"imagebench/internal/volume"
)

// 3-D convolution. The paper's TensorFlow implementation could not
// express non-local means and "rewrote Step 2N using convolutions"
// (Section 4.5): a Gaussian smoothing pass expressed as tensor ops.
// Separable evaluation applies the 1-D kernel along each axis in turn —
// the form a dataflow engine would run it in — and is mathematically
// identical to the dense 3-D product kernel.

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation, truncated at ±3σ (at least radius 1).
func GaussianKernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// axis identifies a convolution direction.
type axis int

const (
	axisX axis = iota
	axisY
	axisZ
)

// convAxisInto convolves v with the 1-D kernel along one axis, clamping
// at the borders (replicate padding), writing the z-planes [z0,z1) of
// dst at dst z-index z-dstZ0 (dstZ0 is 0 for a full-shape dst, z0 for
// a slab-shaped block buffer). dst must not alias v.
func convAxisInto(dst, v *volume.V3, kernel []float64, ax axis, dstZ0, z0, z1 int) {
	r := len(kernel) / 2
	for z := z0; z < z1; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				var acc float64
				for k := -r; k <= r; k++ {
					xx, yy, zz := x, y, z
					switch ax {
					case axisX:
						xx = clamp(x+k, v.NX)
					case axisY:
						yy = clamp(y+k, v.NY)
					case axisZ:
						zz = clamp(z+k, v.NZ)
					}
					acc += kernel[k+r] * v.At(xx, yy, zz)
				}
				dst.Set(x, y, z-dstZ0, acc)
			}
		}
	}
}

// SeparableConv3 convolves v with the outer product kernel kx⊗ky⊗kz,
// evaluated as three 1-D passes.
func SeparableConv3(v *volume.V3, kx, ky, kz []float64) *volume.V3 {
	out, err := SeparableConv3Ctx(context.Background(), v, kx, ky, kz, 0)
	if err != nil {
		// Background context cannot be canceled and the kernel has no
		// other failure mode.
		panic("imaging: SeparableConv3: " + err.Error())
	}
	return out
}

// SeparableConv3Ctx is SeparableConv3 with an explicit worker count
// (0 = GOMAXPROCS, 1 = sequential; the output is bit-identical for any
// value) and cooperative cancellation. Each 1-D pass is tiled across
// the pool and barriers before the next, because the Y and Z passes
// read planes the previous pass wrote. The two intermediate volumes
// come from a scratch pool, so a call allocates only the output volume
// in steady state. On cancellation the partial result is discarded and
// (nil, ctx.Err()) is returned.
func SeparableConv3Ctx(ctx context.Context, v *volume.V3, kx, ky, kz []float64, workers int) (*volume.V3, error) {
	out := volume.New3(v.NX, v.NY, v.NZ)
	if err := SeparableConv3IntoCtx(ctx, out, v, kx, ky, kz, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// SeparableConv3IntoCtx convolves v into dst, which must match v's
// shape and not alias it. Existing contents of dst are overwritten, so
// dst may come from an arena; output is bit-identical to
// SeparableConv3 for any worker count. On cancellation dst is
// partially written and must be discarded or reused, never read.
func SeparableConv3IntoCtx(ctx context.Context, dst, v *volume.V3, kx, ky, kz []float64, workers int) error {
	if !dst.SameShape(v) {
		panic("imaging: SeparableConv3IntoCtx shape mismatch")
	}
	a := getScratch(v.NX, v.NY, v.NZ)
	defer putScratch(a)
	b := getScratch(v.NX, v.NY, v.NZ)
	defer putScratch(b)
	passes := []struct {
		dst, src *volume.V3
		kernel   []float64
		ax       axis
	}{
		{a, v, kx, axisX},
		{b, a, ky, axisY},
		{dst, b, kz, axisZ},
	}
	for _, p := range passes {
		p := p
		err := runTiles(ctx, v.NZ, workers, func(z0, z1 int) {
			convAxisInto(p.dst, p.src, p.kernel, p.ax, 0, z0, z1)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// SeparableConv3Stream is the stream-producing form of the kernel: it
// runs the X and Y passes into pooled scratch eagerly (they are
// barriers — the next pass reads planes the previous one wrote), then
// streams the Z-pass output as z-slab blocks of at most rows planes
// each, computed lazily in arena-backed buffers. A Collect of the
// stream is bit-identical to SeparableConv3; a consumer that reduces
// each block and releases it never holds the full output volume. The
// consumer must exhaust the stream (Drain on early exit, or cancel
// ctx) so the scratch volumes return to their pool.
func SeparableConv3Stream(ctx context.Context, v *volume.V3, kx, ky, kz []float64, workers int, arena *volume.Arena, rows int) (volume.Stream, error) {
	a := getScratch(v.NX, v.NY, v.NZ)
	b := getScratch(v.NX, v.NY, v.NZ)
	release := func() { putScratch(a); putScratch(b) }
	for _, p := range []struct {
		dst, src *volume.V3
		kernel   []float64
		ax       axis
	}{{a, v, kx, axisX}, {b, a, ky, axisY}} {
		p := p
		err := runTiles(ctx, v.NZ, workers, func(z0, z1 int) {
			convAxisInto(p.dst, p.src, p.kernel, p.ax, 0, z0, z1)
		})
		if err != nil {
			release()
			return nil, err
		}
	}
	zPass := volume.Map(ctx, volume.Slabs(b, rows), arena, workers, func(in volume.BlockVol, out *volume.V3) {
		convAxisInto(out, b, kz, axisZ, in.B.Z0, in.B.Z0, in.B.Z1)
	})
	return volume.OnDrained(zPass, release), nil
}

// Conv3 convolves v with a dense 3-D kernel (odd-sized in each
// dimension), clamping at the borders. It is the reference for
// SeparableConv3 and supports non-separable kernels.
func Conv3(v *volume.V3, kernel [][][]float64) *volume.V3 {
	rz := len(kernel) / 2
	ry := len(kernel[0]) / 2
	rx := len(kernel[0][0]) / 2
	out := volume.New3(v.NX, v.NY, v.NZ)
	for z := 0; z < v.NZ; z++ {
		for y := 0; y < v.NY; y++ {
			for x := 0; x < v.NX; x++ {
				var acc float64
				for dz := -rz; dz <= rz; dz++ {
					for dy := -ry; dy <= ry; dy++ {
						for dx := -rx; dx <= rx; dx++ {
							w := kernel[dz+rz][dy+ry][dx+rx]
							acc += w * v.At(clamp(x+dx, v.NX), clamp(y+dy, v.NY), clamp(z+dz, v.NZ))
						}
					}
				}
				out.Set(x, y, z, acc)
			}
		}
	}
	return out
}

// GaussianSmooth3 is the convolution-based denoiser the paper's
// TensorFlow implementation substitutes for non-local means: an
// isotropic Gaussian blur, unmasked (TensorFlow cannot apply the mask,
// Section 5.2.3).
func GaussianSmooth3(v *volume.V3, sigma float64) *volume.V3 {
	k := GaussianKernel(sigma)
	return SeparableConv3(v, k, k, k)
}
