package nifti

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imagebench/internal/volume"
)

func randomSeries(rng *rand.Rand, nx, ny, nz, nt int, scale float64) *volume.V4 {
	vols := make([]*volume.V3, nt)
	for t := range vols {
		v := volume.New3(nx, ny, nz)
		for i := range v.Data {
			v.Data[i] = scale * rng.Float64()
		}
		vols[t] = v
	}
	return volume.New4(vols)
}

func TestGzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := randomSeries(rng, 5, 4, 3, 6, 1000)
	gz := Encode4Gz(v)
	if !IsGz(gz) {
		t.Fatal("Encode4Gz output lacks gzip magic")
	}
	plain := Encode4(v)
	if len(gz) >= len(plain) {
		t.Logf("note: gzip did not shrink random data (%d vs %d)", len(gz), len(plain))
	}
	got, err := DecodeAuto(gz)
	if err != nil {
		t.Fatal(err)
	}
	if got.T() != 6 {
		t.Fatalf("got %d volumes, want 6", got.T())
	}
	for ti, vol := range got.Vols {
		for i := range vol.Data {
			want := float64(float32(v.Vols[ti].Data[i])) // float32 storage
			if vol.Data[i] != want {
				t.Fatalf("vol %d voxel %d: %v != %v", ti, i, vol.Data[i], want)
			}
		}
	}
}

func TestDecodeAutoPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := randomSeries(rng, 3, 3, 3, 2, 1)
	got, err := DecodeAuto(Encode4(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.T() != 2 {
		t.Fatalf("got %d volumes, want 2", got.T())
	}
}

func TestGunzipErrors(t *testing.T) {
	if _, err := Gunzip([]byte{0x1f, 0x8b, 0xff}); err == nil {
		t.Error("truncated gzip should error")
	}
	if _, err := Gunzip([]byte("not gzip at all")); err == nil {
		t.Error("non-gzip input should error")
	}
	if _, err := DecodeAuto(append([]byte{0x1f, 0x8b}, make([]byte, 10)...)); err == nil {
		t.Error("bad gz container should error")
	}
}

func TestEncodeAsInt16Quantization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randomSeries(rng, 6, 5, 4, 3, 2000)
	data, err := Encode4As(v, DTInt16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.Datatype != DTInt16 || h.SclSlope == 0 {
		t.Fatalf("header: datatype=%d slope=%v", h.Datatype, h.SclSlope)
	}
	got, err := Decode4(data)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization error is bounded by one step (slope).
	step := float64(h.SclSlope)
	for ti, vol := range got.Vols {
		for i := range vol.Data {
			if d := math.Abs(vol.Data[i] - v.Vols[ti].Data[i]); d > step {
				t.Fatalf("vol %d voxel %d: error %v exceeds one quantization step %v", ti, i, d, step)
			}
		}
	}
	// int16 storage is half the size of float32.
	f32, _ := Encode4As(v, DTFloat32)
	if len(data) >= len(f32) {
		t.Errorf("int16 file (%d) not smaller than float32 (%d)", len(data), len(f32))
	}
}

func TestEncodeAsUInt8MaskRoundTrip(t *testing.T) {
	// Binary masks survive uint8 quantization exactly.
	v3 := volume.New3(4, 4, 4)
	for i := range v3.Data {
		if i%3 == 0 {
			v3.Data[i] = 1
		}
	}
	data, err := Encode4As(volume.New4([]*volume.V3{v3}), DTUInt8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode4(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range got.Vols[0].Data {
		// Exactness up to float32 header precision: thresholding at 0.5
		// recovers the binary mask, and the error is ≪ one mask level.
		if math.Abs(x-v3.Data[i]) > 1e-6 {
			t.Fatalf("mask voxel %d: %v != %v", i, x, v3.Data[i])
		}
	}
}

func TestEncodeAsConstantData(t *testing.T) {
	v3 := volume.New3(2, 2, 2)
	for i := range v3.Data {
		v3.Data[i] = 7
	}
	data, err := Encode4As(volume.New4([]*volume.V3{v3}), DTInt16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode4(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range got.Vols[0].Data {
		if x != 7 {
			t.Fatalf("voxel %d: %v != 7", i, x)
		}
	}
}

func TestEncodeAsBadDatatype(t *testing.T) {
	if _, err := Encode4As(volume.New4([]*volume.V3{volume.New3(1, 1, 1)}), 99); err == nil {
		t.Error("unsupported datatype should error")
	}
}

func TestHeaderPixDimAndQOffset(t *testing.T) {
	v := randomSeries(rand.New(rand.NewSource(4)), 2, 2, 2, 1, 1)
	data, err := Encode4As(v, DTFloat32)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	dx, dy, dz := h.VoxelSize()
	if dx != 1.25 || dy != 1.25 || dz != 1.25 {
		t.Errorf("voxel size = %v,%v,%v, want 1.25 (HCP spacing)", dx, dy, dz)
	}
	// Zero pixdims fall back to 1.
	var zero Header
	if dx, _, _ := zero.VoxelSize(); dx != 1 {
		t.Errorf("zero pixdim voxel size = %v, want 1", dx)
	}
}

// Property: gzip round trip is the identity on arbitrary payloads.
func TestGzRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		out, err := Gunzip(EncodeGz(payload))
		if err != nil {
			return false
		}
		if len(out) != len(payload) {
			return false
		}
		for i := range out {
			if out[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: int16 quantization error never exceeds one step, for any
// data scale.
func TestQuantizationErrorBoundProperty(t *testing.T) {
	f := func(seed int64, scaleBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := math.Ldexp(1, int(scaleBits%40)) // scales 1 .. 2^39
		v := randomSeries(rng, 3, 3, 2, 2, scale)
		data, err := Encode4As(v, DTInt16)
		if err != nil {
			return false
		}
		h, err := DecodeHeader(data)
		if err != nil {
			return false
		}
		got, err := Decode4(data)
		if err != nil {
			return false
		}
		step := math.Max(float64(h.SclSlope), 1e-12)
		for ti, vol := range got.Vols {
			for i := range vol.Data {
				if math.Abs(vol.Data[i]-v.Vols[ti].Data[i]) > step*1.0001 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoders never panic on arbitrary input — they return
// errors.
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeHeader(data)
		_, _ = Decode4(data)
		_, _ = DecodeAuto(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoders reject arbitrary mutations of a valid file's header
// bytes or decode them to a structurally valid result — never panic.
func TestDecodeMutatedHeaderProperty(t *testing.T) {
	base := Encode4(randomSeries(rand.New(rand.NewSource(9)), 3, 3, 3, 2, 1))
	f := func(off uint16, val byte) bool {
		data := append([]byte(nil), base...)
		data[int(off)%352] = val
		v, err := Decode4(data)
		if err != nil {
			return true
		}
		return v != nil && v.T() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
