// Package nifti reads and writes NIfTI-1 files (the neuroimaging format of
// the paper's dMRI inputs): the 348-byte fixed header with the "n+1" magic,
// followed by a float32 or float64 voxel block. Only the fields the
// pipelines need are interpreted, but files are valid NIfTI-1 and
// round-trip exactly.
package nifti

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"imagebench/internal/volume"
)

// NIfTI-1 datatype codes (subset).
const (
	DTUInt8   int16 = 2
	DTInt16   int16 = 4
	DTFloat32 int16 = 16
	DTFloat64 int16 = 64
)

// elemSize returns the storage bytes per voxel for a datatype code.
func elemSize(dt int16) int {
	switch dt {
	case DTUInt8:
		return 1
	case DTInt16:
		return 2
	case DTFloat32:
		return 4
	case DTFloat64:
		return 8
	}
	return 0
}

const (
	headerSize = 348
	voxOffset  = 352 // header + 4-byte extension flag
	magicOff   = 344
)

// Header carries the subset of NIfTI-1 metadata the pipelines use.
type Header struct {
	Dim      [8]int16 // dim[0]=rank, dim[1..4]=nx,ny,nz,nt
	Datatype int16
	// PixDim holds the grid spacings: pixdim[1..3] are voxel sizes in mm
	// (1.25 for the HCP data), pixdim[4] the repetition time.
	PixDim [8]float32
	// SclSlope and SclInter map stored values to real values:
	// real = stored×slope + inter. A zero slope means unscaled.
	SclSlope, SclInter float32
	// QOffset is the qform translation (scanner-space position of voxel
	// (0,0,0)).
	QOffset [3]float32
}

// VoxelSize returns the spatial voxel dimensions in mm (zero pixdims
// default to 1, as NIfTI readers conventionally assume).
func (h *Header) VoxelSize() (dx, dy, dz float64) {
	get := func(i int) float64 {
		if h.PixDim[i] > 0 {
			return float64(h.PixDim[i])
		}
		return 1
	}
	return get(1), get(2), get(3)
}

// Rank returns the number of dimensions.
func (h *Header) Rank() int { return int(h.Dim[0]) }

// Voxels returns the total number of data elements.
func (h *Header) Voxels() int {
	n := 1
	for i := 1; i <= h.Rank(); i++ {
		n *= int(h.Dim[i])
	}
	return n
}

// Encode4 serializes a 4-D volume series as a float32 NIfTI-1 file
// (float32 matches the HCP release format).
func Encode4(v *volume.V4) []byte {
	nx, ny, nz := v.Shape()
	h := Header{Datatype: DTFloat32}
	h.Dim = [8]int16{4, int16(nx), int16(ny), int16(nz), int16(v.T()), 1, 1, 1}
	var buf bytes.Buffer
	writeHeader(&buf, &h)
	b4 := make([]byte, 4)
	for _, vol := range v.Vols {
		for _, x := range vol.Data {
			binary.LittleEndian.PutUint32(b4, math.Float32bits(float32(x)))
			buf.Write(b4)
		}
	}
	return buf.Bytes()
}

// Encode3 serializes one 3-D volume as a float32 NIfTI-1 file.
func Encode3(v *volume.V3) []byte {
	h := Header{Datatype: DTFloat32}
	h.Dim = [8]int16{3, int16(v.NX), int16(v.NY), int16(v.NZ), 1, 1, 1, 1}
	var buf bytes.Buffer
	writeHeader(&buf, &h)
	b4 := make([]byte, 4)
	for _, x := range v.Data {
		binary.LittleEndian.PutUint32(b4, math.Float32bits(float32(x)))
		buf.Write(b4)
	}
	return buf.Bytes()
}

func writeHeader(buf *bytes.Buffer, h *Header) {
	hdr := make([]byte, voxOffset)
	binary.LittleEndian.PutUint32(hdr[0:], headerSize)
	for i, d := range h.Dim {
		binary.LittleEndian.PutUint16(hdr[40+2*i:], uint16(d))
	}
	binary.LittleEndian.PutUint16(hdr[70:], uint16(h.Datatype))
	bitpix := int16(8 * elemSize(h.Datatype))
	binary.LittleEndian.PutUint16(hdr[72:], uint16(bitpix))
	for i, p := range h.PixDim {
		binary.LittleEndian.PutUint32(hdr[76+4*i:], math.Float32bits(p))
	}
	binary.LittleEndian.PutUint32(hdr[108:], math.Float32bits(voxOffset)) // vox_offset
	binary.LittleEndian.PutUint32(hdr[112:], math.Float32bits(h.SclSlope))
	binary.LittleEndian.PutUint32(hdr[116:], math.Float32bits(h.SclInter))
	for i, q := range h.QOffset {
		binary.LittleEndian.PutUint32(hdr[268+4*i:], math.Float32bits(q))
	}
	copy(hdr[magicOff:], "n+1\x00")
	buf.Write(hdr)
}

// DecodeHeader parses and validates the NIfTI-1 header.
func DecodeHeader(data []byte) (*Header, error) {
	if len(data) < voxOffset {
		return nil, fmt.Errorf("nifti: file too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != headerSize {
		return nil, fmt.Errorf("nifti: bad sizeof_hdr")
	}
	if string(data[magicOff:magicOff+4]) != "n+1\x00" {
		return nil, fmt.Errorf("nifti: bad magic %q", data[magicOff:magicOff+4])
	}
	var h Header
	for i := range h.Dim {
		h.Dim[i] = int16(binary.LittleEndian.Uint16(data[40+2*i:]))
	}
	h.Datatype = int16(binary.LittleEndian.Uint16(data[70:]))
	if elemSize(h.Datatype) == 0 {
		return nil, fmt.Errorf("nifti: unsupported datatype %d", h.Datatype)
	}
	for i := range h.PixDim {
		h.PixDim[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[76+4*i:]))
	}
	h.SclSlope = math.Float32frombits(binary.LittleEndian.Uint32(data[112:]))
	h.SclInter = math.Float32frombits(binary.LittleEndian.Uint32(data[116:]))
	for i := range h.QOffset {
		h.QOffset[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[268+4*i:]))
	}
	if h.Rank() < 3 || h.Rank() > 4 {
		return nil, fmt.Errorf("nifti: unsupported rank %d", h.Rank())
	}
	for i := 1; i <= h.Rank(); i++ {
		if h.Dim[i] <= 0 {
			return nil, fmt.Errorf("nifti: non-positive dim[%d]=%d", i, h.Dim[i])
		}
	}
	return &h, nil
}

// Decode4 parses a 3-D or 4-D NIfTI-1 file into a volume series (a 3-D file
// yields a single-volume series).
func Decode4(data []byte) (*volume.V4, error) {
	return Decode4Arena(data, nil)
}

// Decode4Arena is Decode4 with the component volumes drawn from arena
// (nil means plain allocations). Every voxel is overwritten, so pooled
// buffers need no clearing; callers that release the volumes back to
// the arena make repeated subject decodes allocation-free in steady
// state.
func Decode4Arena(data []byte, arena *volume.Arena) (*volume.V4, error) {
	h, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	elem := elemSize(h.Datatype)
	need := voxOffset + h.Voxels()*elem
	if len(data) < need {
		return nil, fmt.Errorf("nifti: truncated data: have %d bytes, need %d", len(data), need)
	}
	slope, inter := float64(h.SclSlope), float64(h.SclInter)
	if slope == 0 {
		slope, inter = 1, 0
	}
	nx, ny, nz := int(h.Dim[1]), int(h.Dim[2]), int(h.Dim[3])
	nt := 1
	if h.Rank() == 4 {
		nt = int(h.Dim[4])
	}
	per := nx * ny * nz
	vols := make([]*volume.V3, nt)
	off := voxOffset
	for t := 0; t < nt; t++ {
		v := arena.Get(nx, ny, nz)
		for i := 0; i < per; i++ {
			var raw float64
			switch h.Datatype {
			case DTUInt8:
				raw = float64(data[off])
			case DTInt16:
				raw = float64(int16(binary.LittleEndian.Uint16(data[off:])))
			case DTFloat32:
				raw = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off:])))
			case DTFloat64:
				raw = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			}
			v.Data[i] = raw*slope + inter
			off += elem
		}
		vols[t] = v
	}
	return volume.New4(vols), nil
}

// Decode3 parses a 3-D NIfTI-1 file into a single volume.
func Decode3(data []byte) (*volume.V3, error) {
	v4, err := Decode4(data)
	if err != nil {
		return nil, err
	}
	if v4.T() != 1 {
		return nil, fmt.Errorf("nifti: expected 3-D file, got %d volumes", v4.T())
	}
	return v4.Vols[0], nil
}
