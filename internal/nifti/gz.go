package nifti

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"imagebench/internal/volume"
)

// The HCP release ships subjects as .nii.gz: a 4.2 GB uncompressed 4-D
// series compressed to ~1.4 GB (Section 3.1.1). This file adds the gzip
// layer and the quantized integer datatypes such archives commonly use.

// EncodeGz compresses an encoded NIfTI byte stream into .nii.gz form.
func EncodeGz(data []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(data) // bytes.Buffer writes cannot fail
	zw.Close()
	return buf.Bytes()
}

// IsGz reports whether data begins with the gzip magic.
func IsGz(data []byte) bool {
	return len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

// Gunzip decompresses a .nii.gz byte stream.
func Gunzip(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("nifti: bad gzip stream: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("nifti: gunzip: %w", err)
	}
	return out, nil
}

// DecodeAuto decodes a NIfTI file that may or may not be gzipped.
func DecodeAuto(data []byte) (*volume.V4, error) {
	if IsGz(data) {
		raw, err := Gunzip(data)
		if err != nil {
			return nil, err
		}
		return Decode4(raw)
	}
	return Decode4(data)
}

// Encode4Gz serializes a 4-D series as float32 .nii.gz.
func Encode4Gz(v *volume.V4) []byte { return EncodeGz(Encode4(v)) }

// Encode4As serializes a 4-D series with the given datatype. Integer
// datatypes quantize the data range into the type's span and record the
// scl_slope/scl_inter mapping in the header so decoders recover real
// values (to within quantization error).
func Encode4As(v *volume.V4, datatype int16) ([]byte, error) {
	elem := elemSize(datatype)
	if elem == 0 {
		return nil, fmt.Errorf("nifti: unsupported datatype %d", datatype)
	}
	nx, ny, nz := v.Shape()
	h := Header{Datatype: datatype}
	h.Dim = [8]int16{4, int16(nx), int16(ny), int16(nz), int16(v.T()), 1, 1, 1}
	h.PixDim = [8]float32{0, 1.25, 1.25, 1.25, 1, 1, 1, 1} // HCP spacing

	var slope, inter float64
	var span float64
	switch datatype {
	case DTUInt8:
		span = 255
	case DTInt16:
		span = 32767
	}
	if span > 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, vol := range v.Vols {
			for _, x := range vol.Data {
				lo = math.Min(lo, x)
				hi = math.Max(hi, x)
			}
		}
		if math.IsInf(lo, 1) { // empty data
			lo, hi = 0, 0
		}
		inter = lo
		if hi > lo {
			slope = (hi - lo) / span
		} else {
			// Constant data: every voxel stores 0 and decodes to inter.
			slope = 1
		}
		h.SclSlope = float32(slope)
		h.SclInter = float32(inter)
	}

	var buf bytes.Buffer
	writeHeader(&buf, &h)
	scratch := make([]byte, 8)
	for _, vol := range v.Vols {
		for _, x := range vol.Data {
			switch datatype {
			case DTUInt8:
				buf.WriteByte(uint8(math.Round((x - inter) / slope)))
			case DTInt16:
				binary.LittleEndian.PutUint16(scratch, uint16(int16(math.Round((x-inter)/slope))))
				buf.Write(scratch[:2])
			case DTFloat32:
				binary.LittleEndian.PutUint32(scratch, math.Float32bits(float32(x)))
				buf.Write(scratch[:4])
			case DTFloat64:
				binary.LittleEndian.PutUint64(scratch, math.Float64bits(x))
				buf.Write(scratch[:8])
			}
		}
	}
	return buf.Bytes(), nil
}
