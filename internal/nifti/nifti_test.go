package nifti

import (
	"testing"
	"testing/quick"

	"imagebench/internal/volume"
)

func TestRoundTrip4D(t *testing.T) {
	vols := make([]*volume.V3, 3)
	for i := range vols {
		vols[i] = volume.New3(4, 5, 6)
		for j := range vols[i].Data {
			// Values exactly representable in float32.
			vols[i].Data[j] = float64(float32(i*1000 + j))
		}
	}
	v4 := volume.New4(vols)
	data := Encode4(v4)
	got, err := Decode4(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.T() != 3 {
		t.Fatalf("T=%d", got.T())
	}
	for i := range vols {
		if volume.MaxAbsDiff(got.Vols[i], vols[i]) != 0 {
			t.Errorf("volume %d differs", i)
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	v := volume.New3(3, 3, 3)
	v.Data[13] = 42
	got, err := Decode3(Encode3(v))
	if err != nil {
		t.Fatal(err)
	}
	if volume.MaxAbsDiff(got, v) != 0 {
		t.Error("3-D round trip differs")
	}
}

func TestHeaderValidation(t *testing.T) {
	v := volume.New3(2, 2, 2)
	data := Encode3(v)
	// Corrupt the magic.
	bad := append([]byte(nil), data...)
	copy(bad[magicOff:], "nope")
	if _, err := Decode3(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated voxel data.
	if _, err := Decode3(data[:len(data)-4]); err == nil {
		t.Error("truncated data accepted")
	}
	// Too short for a header at all.
	if _, err := DecodeHeader(data[:100]); err == nil {
		t.Error("short header accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: encode→decode is identity for float32-representable data.
	f := func(vals [24]float32) bool {
		v := volume.New3(2, 3, 4)
		for i := range v.Data {
			v.Data[i] = float64(vals[i])
		}
		got, err := Decode3(Encode3(v))
		if err != nil {
			return false
		}
		return volume.MaxAbsDiff(got, v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
