// Streaming plumbing for the reference pipeline: the one-at-a-time
// exposure loader Steps 1A/2A pull from. This is harness-side memory
// machinery, not per-system pipeline code, so it lives outside
// astro.go (the file Table 1 measures as the reference implementation).

package astro

import (
	"fmt"

	"imagebench/internal/fits"
	"imagebench/internal/objstore"
	"imagebench/internal/skymap"
)

// EachExposure decodes the staged FITS exposures one at a time in key
// order and hands each to fn, so only one sensor image is materialized
// at once. fn owns the exposure and may mutate or retain it.
func EachExposure(store *objstore.Store, fn func(e *skymap.Exposure) error) error {
	for _, key := range store.List("astro/fits/") {
		obj, err := store.Get(key)
		if err != nil {
			return err
		}
		e, err := fits.DecodeExposure(obj.Data)
		if err != nil {
			return fmt.Errorf("astro: decoding %s: %w", key, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}
