package astro

import (
	"fmt"
	"sort"

	"imagebench/internal/afl"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/scidb"
	"imagebench/internal/skymap"
)

// RunAFLCoadd executes Step 3A as an AFL program against the SciDB
// engine — the frontend counterpart of the paper's 180-line AQL
// co-addition (Section 4.1):
//
//	store(iterate(scan(PatchStacks), ClipIters, clip), Coadds)
//
// Each clip iteration runs the real sigma-clipping over the patch
// stacks while the engine charges the per-statement materialization
// that makes AQL iteration slow (Fig 12d); opts.Incremental switches on
// the Soroush et al. optimization.
func RunAFLCoadd(w *Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, opts SciDBOpts) (map[skymap.Patch]*skymap.Coadd, error) {
	if model == nil {
		model = cost.Default()
	}
	cfg := scidb.DefaultConfig()
	if opts.ChunkBytes > 0 {
		cfg.ChunkBytes = opts.ChunkBytes
	}
	cfg.Incremental = opts.Incremental
	eng := scidb.New(cl, w.Store, model, cfg)
	if _, err := eng.IngestAio("PatchStacks", coaddChunks(w, cfg.ChunkBytes, stacks), 2.5); err != nil {
		return nil, err
	}

	states := make(map[skymap.Patch]*skymap.CoaddState)
	env := afl.NewEnv()
	env.DefineIteration("clip", cost.CoaddIter, func(iter int, cs []scidb.Chunk) []scidb.Chunk {
		if iter == 0 {
			byPatch := make(map[skymap.Patch][]*skymap.PatchExposure)
			for _, c := range cs {
				if pe, ok := c.Value.(*skymap.PatchExposure); ok {
					byPatch[pe.Patch] = append(byPatch[pe.Patch], pe)
				}
			}
			for p, stack := range byPatch {
				sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
				st, err := skymap.NewCoaddState(stack)
				if err == nil {
					states[p] = st
				}
			}
		}
		for _, st := range states {
			st.ClipIteration(ClipSigma)
		}
		return cs
	})

	program := fmt.Sprintf(`store(iterate(scan(PatchStacks), %d, clip), Coadds)`, ClipIters)
	res, err := afl.Run(eng, program, env)
	if err != nil {
		return nil, err
	}
	if h := res.Stored["Coadds"].Done(); h.Err != nil {
		return nil, h.Err
	}
	out := make(map[skymap.Patch]*skymap.Coadd, len(states))
	for p, st := range states {
		out[p] = st.Sum()
	}
	return out, nil
}
