package astro

import (
	"fmt"
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
	"imagebench/internal/skymap"
	"imagebench/internal/spark"
	"imagebench/internal/vtime"
)

// This file provides the co-addition step runners behind Fig 12d. The
// input patch stacks come from the reference pipeline's Steps 1A+2A
// (setup outside the timed region), matching the paper's per-step
// methodology.

// BuildStacks runs the reference Steps 1A+2A to produce the patch
// exposures that the co-addition step consumes.
func BuildStacks(w *Workload) ([]*skymap.PatchExposure, error) {
	exposures, err := LoadExposures(w.Store)
	if err != nil {
		return nil, err
	}
	for i, e := range exposures {
		exposures[i] = Preprocess(e)
	}
	return CreatePatches(w.Grid(), exposures)
}

// CoaddStepTime measures Step 3A on one system. sysVariant is "Spark",
// "Myria", "SciDB", or "SciDB-incremental" (the Soroush et al.
// optimization the paper cites as a 6× improvement).
func CoaddStepTime(w *Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, sysVariant string) (vtime.Duration, error) {
	if model == nil {
		model = cost.Default()
	}
	patchBytes := w.PatchModelBytes()
	// Each case below builds a different simulator (Spark session, Myria
	// plan, SciDB AQL/AFL) — this is the per-system modeling layer the
	// registry adapters delegate to, not dispatch an adapter could absorb.
	//lint:allow enginedispatch per-system simulation models live here; adapters delegate in
	switch sysVariant {
	case "Spark":
		sess := spark.NewSession(cl, w.Store, model)
		var pairs []spark.Pair
		for _, pe := range stacks {
			pairs = append(pairs, spark.Pair{Key: PatchKey(pe.Patch), Value: pe, Size: patchBytes})
		}
		rdd := sess.Parallelize("stacks", pairs, cl.Workers())
		t0 := cl.Makespan()
		co := rdd.GroupByKey("coadd", cost.CoaddIter, 0, func(key string, values []spark.Pair) []spark.Pair {
			stack := make([]*skymap.PatchExposure, 0, len(values))
			for _, v := range values {
				stack = append(stack, v.Value.(*skymap.PatchExposure))
			}
			sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
			coadd, err := skymap.CoaddPatch(stack, ClipSigma, ClipIters)
			if err != nil {
				return nil
			}
			return []spark.Pair{{Key: key, Value: coadd, Size: patchBytes}}
		})
		if _, err := co.Materialize(); err != nil {
			return 0, err
		}
		return cl.Makespan().Sub(t0), nil
	case "Myria":
		eng := myria.New(cl, w.Store, model, myria.DefaultConfig())
		q := eng.NewQuery()
		var tuples []myria.Tuple
		for _, pe := range stacks {
			tuples = append(tuples, myria.Tuple{Key: VisitPatchKey(pe.Patch, pe.Visit), Value: pe, Size: patchBytes})
		}
		rel := eng.RelationFromTuples(q, "PatchStacks", tuples)
		t0 := cl.Makespan()
		q.GroupByApply(rel,
			func(t myria.Tuple) string { return t.Key[:len(t.Key)-len("/v00")] },
			myria.PyUDA{Name: "coadd", Op: cost.CoaddIter, F: func(key string, group []myria.Tuple) []myria.Tuple {
				stack := make([]*skymap.PatchExposure, 0, len(group))
				for _, t := range group {
					stack = append(stack, t.Value.(*skymap.PatchExposure))
				}
				sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
				coadd, err := skymap.CoaddPatch(stack, ClipSigma, ClipIters)
				if err != nil {
					return nil
				}
				return []myria.Tuple{{Key: key, Value: coadd, Size: patchBytes}}
			}})
		if _, err := q.Finish(); err != nil {
			return 0, err
		}
		return cl.Makespan().Sub(t0), nil
	case "SciDB", "SciDB-incremental":
		// Ingest happens outside the timed region in the other systems'
		// runs too; here we time only the AQL iteration.
		opts := SciDBOpts{Incremental: sysVariant == "SciDB-incremental"}
		// RunSciDBCoadd ingests then iterates; to isolate the step we run
		// the ingest first on the same cluster via a dry call on a copy
		// of the stack timing: measure total and subtract ingest.
		return scidbCoaddStep(w, cl, model, stacks, opts)
	}
	return 0, fmt.Errorf("astro: unknown coadd variant %q", sysVariant)
}

// SciDBCoaddChunkTime measures the AQL co-addition with an explicit
// deployment chunk size (the Section 5.3.1 chunk-size sweep).
func SciDBCoaddChunkTime(w *Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, chunkBytes int64) (vtime.Duration, error) {
	if model == nil {
		model = cost.Default()
	}
	return scidbCoaddStep(w, cl, model, stacks, SciDBOpts{ChunkBytes: chunkBytes})
}

// scidbCoaddStep measures only the AQL co-addition by observing the
// makespan before and after the iterative query (ingest completes first).
func scidbCoaddStep(w *Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, opts SciDBOpts) (vtime.Duration, error) {
	// RunSciDBCoadd performs ingest + iterate; the ingest settles the
	// makespan at its completion because the iterative query's first
	// pass depends on the last ingest write on each instance.
	type phases struct{ afterIngest vtime.Time }
	var ph phases
	coadds, err := runSciDBCoaddPhased(w, cl, model, stacks, opts, func(t vtime.Time) { ph.afterIngest = t })
	if err != nil {
		return 0, err
	}
	if len(coadds) == 0 {
		return 0, fmt.Errorf("astro: scidb coadd produced nothing")
	}
	return cl.Makespan().Sub(ph.afterIngest), nil
}
