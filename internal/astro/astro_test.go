package astro

import (
	"math"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/imaging"
	"imagebench/internal/myria"
	"imagebench/internal/skymap"
	"imagebench/internal/synth"
)

func testCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.WorkersPerNode = 4
	return cluster.New(cfg)
}

func smallWorkload(t *testing.T, visits int) *Workload {
	t.Helper()
	cfg := synth.DefaultAstro(visits)
	cfg.Sensors, cfg.W, cfg.H, cfg.Sources = 4, 32, 32, 10
	w, err := NewWorkloadCfg(cfg)
	if err != nil {
		t.Fatalf("NewWorkloadCfg: %v", err)
	}
	return w
}

func TestReferenceDetectsTrueSources(t *testing.T) {
	w := smallWorkload(t, 6)
	res, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	if len(res.Patches) == 0 {
		t.Fatal("no patches produced")
	}
	// Every detected source should be near a true source, and most true
	// sources should be recovered (they are bright against the noise).
	g := w.Grid()
	matched := 0
	for _, src := range w.Truth {
		found := false
		for _, pr := range res.Patches {
			baseX := float64(pr.Patch.PX * g.PatchW)
			baseY := float64(pr.Patch.PY * g.PatchH)
			for _, d := range pr.Sources {
				dx := baseX + d.X - src.X
				dy := baseY + d.Y - src.Y
				if math.Hypot(dx, dy) < 2.5 {
					found = true
				}
			}
		}
		if found {
			matched++
		}
	}
	if frac := float64(matched) / float64(len(w.Truth)); frac < 0.7 {
		t.Errorf("recovered %d/%d true sources (%.0f%%), want >= 70%%", matched, len(w.Truth), frac*100)
	}
}

func coaddsEqual(t *testing.T, name string, got, want *skymap.Coadd) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: missing coadd for %v", name, want.Patch)
	}
	var maxd float64
	for i := range want.Flux.Pix {
		d := math.Abs(got.Flux.Pix[i] - want.Flux.Pix[i])
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		t.Errorf("%s: coadd %v flux differs by %g", name, want.Patch, maxd)
	}
}

func resultsMatch(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.Patches) != len(want.Patches) {
		t.Fatalf("%s: got %d patches, want %d", name, len(got.Patches), len(want.Patches))
	}
	for p, wp := range want.Patches {
		gp, ok := got.Patches[p]
		if !ok {
			t.Fatalf("%s: missing patch %v", name, p)
		}
		coaddsEqual(t, name, gp.Coadd, wp.Coadd)
		if len(gp.Sources) != len(wp.Sources) {
			t.Errorf("%s: patch %v has %d sources, want %d", name, p, len(gp.Sources), len(wp.Sources))
		}
	}
}

func TestSparkMatchesReference(t *testing.T) {
	w := smallWorkload(t, 4)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunSpark(w, testCluster(), nil, SparkOpts{Partitions: 8})
	if err != nil {
		t.Fatalf("RunSpark: %v", err)
	}
	resultsMatch(t, "spark", got, ref)
}

func TestMyriaMatchesReference(t *testing.T) {
	w := smallWorkload(t, 4)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunMyria(w, testCluster(), nil, MyriaOpts{})
	if err != nil {
		t.Fatalf("RunMyria: %v", err)
	}
	resultsMatch(t, "myria", got, ref)
}

func TestDaskMatchesReference(t *testing.T) {
	w := smallWorkload(t, 4)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunDask(w, testCluster(), nil)
	if err != nil {
		t.Fatalf("RunDask: %v", err)
	}
	resultsMatch(t, "dask", got, ref)
}

func TestSciDBCoaddMatchesReference(t *testing.T) {
	w := smallWorkload(t, 4)
	// Build the patch stacks with the reference Steps 1A+2A.
	exposures, err := LoadExposures(w.Store)
	if err != nil {
		t.Fatalf("LoadExposures: %v", err)
	}
	for i, e := range exposures {
		exposures[i] = Preprocess(e)
	}
	pes, err := CreatePatches(w.Grid(), exposures)
	if err != nil {
		t.Fatalf("CreatePatches: %v", err)
	}
	want, err := CoaddAll(pes)
	if err != nil {
		t.Fatalf("CoaddAll: %v", err)
	}
	got, err := RunSciDBCoadd(w, testCluster(), nil, pes, SciDBOpts{})
	if err != nil {
		t.Fatalf("RunSciDBCoadd: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d coadds, want %d", len(got), len(want))
	}
	for p, co := range want {
		coaddsEqual(t, "scidb", got[p], co)
	}
}

func TestMyriaMultiQueryMatches(t *testing.T) {
	w := smallWorkload(t, 4)
	ref, err := Reference(w)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	got, err := RunMyria(w, testCluster(), nil, MyriaOpts{Mode: myria.MultiQuery, ChunkVisits: 2})
	if err != nil {
		t.Fatalf("RunMyria multi-query: %v", err)
	}
	resultsMatch(t, "myria-multiquery", got, ref)
}

func TestPreprocessRemovesCosmicRays(t *testing.T) {
	w := smallWorkload(t, 1)
	exposures, err := LoadExposures(w.Store)
	if err != nil {
		t.Fatalf("LoadExposures: %v", err)
	}
	e := exposures[0]
	cal := Preprocess(e)
	repaired := 0
	for _, m := range cal.Mask {
		if m&skymap.MaskCosmicRay != 0 {
			repaired++
		}
	}
	if repaired == 0 {
		t.Error("no cosmic rays repaired; the synthetic data injects ~0.2%")
	}
	// Background subtraction should drop the sky level to ~0.
	m, _ := imaging.SigmaClippedStats(cal.Flux.Pix, 3, 3)
	if math.Abs(m) > 5 {
		t.Errorf("background-subtracted sky mean %.2f, want ~0", m)
	}
}
