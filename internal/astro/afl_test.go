package astro

import (
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/imaging"
)

func aflCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	return cluster.New(cfg)
}

// TestRunAFLCoaddMatchesReference validates the AFL-frontend co-addition
// against the reference pipeline's coadds, patch by patch.
func TestRunAFLCoaddMatchesReference(t *testing.T) {
	w, err := NewWorkload(2)
	if err != nil {
		t.Fatal(err)
	}
	stacks, err := BuildStacks(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAFLCoadd(w, aflCluster(), nil, stacks, SciDBOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("AFL coadd produced no patches")
	}
	for p, co := range got {
		want, ok := ref.Patches[p]
		if !ok {
			t.Fatalf("patch %v not in reference", p)
		}
		if d := maxPixDiff(co.Flux, want.Coadd.Flux); d != 0 {
			t.Errorf("patch %v: AFL coadd flux differs from reference by %g", p, d)
		}
	}
}

func maxPixDiff(a, b *imaging.Image) float64 {
	var m float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestRunAFLCoaddIncrementalFaster checks the frontend path preserves
// the incremental-iteration speedup (Fig 12d's 6× recovery).
func TestRunAFLCoaddIncrementalFaster(t *testing.T) {
	w, err := NewWorkload(2)
	if err != nil {
		t.Fatal(err)
	}
	stacks, err := BuildStacks(w)
	if err != nil {
		t.Fatal(err)
	}
	run := func(inc bool) float64 {
		cl := aflCluster()
		if _, err := RunAFLCoadd(w, cl, nil, stacks, SciDBOpts{Incremental: inc}); err != nil {
			t.Fatal(err)
		}
		return float64(cl.Makespan())
	}
	plain := run(false)
	incremental := run(true)
	if incremental >= plain {
		t.Errorf("incremental (%v) should beat per-statement materialization (%v)", incremental, plain)
	}
}
