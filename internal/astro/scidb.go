package astro

import (
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/scidb"
	"imagebench/internal/skymap"
	"imagebench/internal/vtime"
)

// SciDBOpts tunes the SciDB co-addition.
type SciDBOpts struct {
	// ChunkBytes overrides the deployment chunk size (Section 5.3.1
	// sweeps it; 0 keeps the tuned [1000×1000] default).
	ChunkBytes int64
	// Incremental enables the incremental iterative-processing
	// optimization (Soroush et al.), recovering ~6× on this step.
	Incremental bool
}

// RunSciDBCoadd executes the parts of the astronomy use case the paper
// could implement on SciDB: ingesting the (externally assembled) patch
// exposures via aio_input and running Step 3A entirely in AQL, where each
// clipping iteration materializes the full intermediate array (Fig 12d).
// Pre-processing, patch creation, and detection were not implementable
// (Table 1: "X"/"NA"); the input stacks therefore come from the reference
// pipeline's Step 2A output.
func RunSciDBCoadd(w *Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, opts SciDBOpts) (map[skymap.Patch]*skymap.Coadd, error) {
	return runSciDBCoaddPhased(w, cl, model, stacks, opts, nil)
}

// runSciDBCoaddPhased is RunSciDBCoadd with a hook observing the virtual
// time at which ingest completed (used for step-only timing, Fig 12d).
func runSciDBCoaddPhased(w *Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, opts SciDBOpts, afterIngest func(vtime.Time)) (map[skymap.Patch]*skymap.Coadd, error) {
	if model == nil {
		model = cost.Default()
	}
	cfg := scidb.DefaultConfig()
	if opts.ChunkBytes > 0 {
		cfg.ChunkBytes = opts.ChunkBytes
	}
	cfg.Incremental = opts.Incremental
	eng := scidb.New(cl, w.Store, model, cfg)

	arr, err := eng.IngestAio("PatchStacks", coaddChunks(w, cfg.ChunkBytes, stacks), 2.5)
	if err != nil {
		return nil, err
	}
	if h := arr.Done(); h.Err != nil {
		return nil, h.Err
	}
	if afterIngest != nil {
		afterIngest(cl.Makespan())
	}

	// Step 3A in AQL: iterative clipping with per-statement
	// materialization. The real clipping runs through CoaddState; the
	// final pass sums the survivors.
	states := make(map[skymap.Patch]*skymap.CoaddState)
	final := arr.IterativeAQL("coadd-aql", ClipIters, cost.CoaddIter, func(iter int, cs []scidb.Chunk) []scidb.Chunk {
		if iter == 0 {
			byPatch := make(map[skymap.Patch][]*skymap.PatchExposure)
			for _, c := range cs {
				if pe, ok := c.Value.(*skymap.PatchExposure); ok {
					byPatch[pe.Patch] = append(byPatch[pe.Patch], pe)
				}
			}
			for p, stack := range byPatch {
				sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
				st, err := skymap.NewCoaddState(stack)
				if err == nil {
					states[p] = st
				}
			}
		}
		for _, st := range states {
			st.ClipIteration(ClipSigma)
		}
		return cs
	})
	if h := final.Done(); h.Err != nil {
		return nil, h.Err
	}
	out := make(map[skymap.Patch]*skymap.Coadd, len(states))
	for p, st := range states {
		out[p] = st.Sum()
	}
	return out, nil
}

// coaddChunks lays the patch stacks out as stored chunks: one chunk run
// per (patch, visit) plane, with the paper-scale plane size split into
// deployment-sized chunks for cost purposes (ceil(plane/chunk) chunk
// units; the real data rides on the first chunk of each plane).
func coaddChunks(w *Workload, chunkBytes int64, stacks []*skymap.PatchExposure) []scidb.Chunk {
	patchBytes := w.PatchModelBytes()
	var chunks []scidb.Chunk
	sorted := append([]*skymap.PatchExposure(nil), stacks...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Patch != b.Patch {
			if a.Patch.PY != b.Patch.PY {
				return a.Patch.PY < b.Patch.PY
			}
			return a.Patch.PX < b.Patch.PX
		}
		return a.Visit < b.Visit
	})
	for _, pe := range sorted {
		remaining := patchBytes
		first := true
		for remaining > 0 {
			size := chunkBytes
			if size > remaining {
				size = remaining
			}
			c := scidb.Chunk{Coords: VisitPatchKey(pe.Patch, pe.Visit), Size: size}
			if first {
				c.Value = pe // real data rides on the first chunk
				first = false
			}
			chunks = append(chunks, c)
			remaining -= size
		}
	}
	return chunks
}
