package astro

import (
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/fits"
	"imagebench/internal/objstore"
	"imagebench/internal/skymap"
	"imagebench/internal/spark"
	"imagebench/internal/synth"
)

// SparkOpts tunes the Spark implementation.
type SparkOpts struct {
	// Partitions is the input partition count; 0 uses the HDFS-block
	// default.
	Partitions int
}

// RunSpark executes the astronomy pipeline on the Spark engine: FITS
// objects → map(pre-process) → flatMap(patch projection) →
// groupBy(patch, visit) merge → groupBy(patch) co-addition with
// UDF-internal clipping iterations → map(detect).
func RunSpark(w *Workload, cl *cluster.Cluster, model *cost.Model, opts SparkOpts) (*Result, error) {
	if model == nil {
		model = cost.Default()
	}
	sess := spark.NewSession(cl, w.Store, model)
	patchBytes := w.PatchModelBytes()
	grid := w.Grid()

	exposures := sess.Objects("astro/fits/", opts.Partitions, func(obj objstore.Object) []spark.Pair {
		e, err := fits.DecodeExposure(obj.Data)
		if err != nil {
			return nil
		}
		return []spark.Pair{{Key: obj.Key, Value: e, Size: synth.PaperSensorBytes}}
	})

	calibrated := exposures.Map(spark.UDF{Name: "preprocess", Op: cost.Preprocess, F: func(p spark.Pair) []spark.Pair {
		return []spark.Pair{{Key: p.Key, Value: Preprocess(p.Value.(*skymap.Exposure)), Size: p.Size}}
	}})

	// Step 2A: the flatmap replicating each exposure per overlapping
	// patch, then grouping per (patch, visit).
	pieces := calibrated.Map(spark.UDF{Name: "patch-project", Op: cost.PatchMap, F: func(p spark.Pair) []spark.Pair {
		e := p.Value.(*skymap.Exposure)
		var out []spark.Pair
		for _, pt := range grid.ExposureOverlaps(e) {
			out = append(out, spark.Pair{
				Key:   VisitPatchKey(pt, e.Visit),
				Value: grid.Project(e, pt),
				Size:  patchBytes,
			})
		}
		return out
	}})
	perVisit := pieces.GroupByKey("patch-assemble", cost.PatchMap, 0, func(key string, values []spark.Pair) []spark.Pair {
		pes := make([]*skymap.PatchExposure, 0, len(values))
		for _, v := range values {
			pes = append(pes, v.Value.(*skymap.PatchExposure))
		}
		sortPatchExposures(pes)
		merged, err := skymap.AssemblePatches(pes)
		if err != nil || len(merged) != 1 {
			return nil
		}
		return []spark.Pair{{Key: key, Value: merged[0], Size: patchBytes}}
	})

	// Step 3A: re-key by patch and co-add across visits; the clipping
	// iterations run inside the UDF, in memory (the paper's fast path).
	byPatch := perVisit.Map(spark.UDF{Name: "rekey-patch", Op: cost.Filter, F: func(p spark.Pair) []spark.Pair {
		pe := p.Value.(*skymap.PatchExposure)
		return []spark.Pair{{Key: PatchKey(pe.Patch), Value: pe, Size: p.Size}}
	}})
	coadds := byPatch.GroupByKey("coadd", cost.CoaddIter, 0, func(key string, values []spark.Pair) []spark.Pair {
		stack := make([]*skymap.PatchExposure, 0, len(values))
		for _, v := range values {
			stack = append(stack, v.Value.(*skymap.PatchExposure))
		}
		sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
		co, err := skymap.CoaddPatch(stack, ClipSigma, ClipIters)
		if err != nil {
			return nil
		}
		return []spark.Pair{{Key: key, Value: co, Size: patchBytes}}
	})

	// Step 4A: detection per coadd.
	detected := coadds.Map(spark.UDF{Name: "detect", Op: cost.DetectSources, F: func(p spark.Pair) []spark.Pair {
		co := p.Value.(*skymap.Coadd)
		return []spark.Pair{{Key: p.Key, Value: &PatchResult{Patch: co.Patch, Coadd: co, Sources: Detect(co)}, Size: p.Size / 100}}
	}})

	results, _, err := detected.Collect()
	if err != nil {
		return nil, err
	}
	cl.MarkStage("pipeline")
	res := &Result{Patches: make(map[skymap.Patch]*PatchResult, len(results))}
	for _, p := range results {
		pr := p.Value.(*PatchResult)
		res.Patches[pr.Patch] = pr
	}
	return res, nil
}

// sortPatchExposures orders pieces deterministically (by valid-pixel count
// then first valid index) so merge results are reproducible regardless of
// shuffle arrival order.
func sortPatchExposures(pes []*skymap.PatchExposure) {
	firstValid := func(pe *skymap.PatchExposure) int {
		for i, v := range pe.Valid {
			if v {
				return i
			}
		}
		return len(pe.Valid)
	}
	sort.Slice(pes, func(i, j int) bool {
		if pes[i].Visit != pes[j].Visit {
			return pes[i].Visit < pes[j].Visit
		}
		return firstValid(pes[i]) < firstValid(pes[j])
	})
}
