// Package astro implements the paper's astronomy use case (Section 3.2):
// an abridged LSST processing pipeline over HiTS-style survey exposures —
// Step 1A pre-processing (background subtraction, cosmic-ray repair,
// aperture correction), Step 2A patch creation (exposure→patch flatmap and
// regrouping), Step 3A sigma-clipped co-addition, and Step 4A source
// detection — as a single-node reference implementation plus Spark, Myria,
// Dask, and SciDB (co-addition only) implementations, mirroring the
// paper's per-system structure.
package astro

import (
	"fmt"
	"math"
	"sort"

	"imagebench/internal/imaging"
	"imagebench/internal/objstore"
	"imagebench/internal/skymap"
	"imagebench/internal/synth"
)

// Co-addition parameters from the paper: two outlier-removal iterations at
// three standard deviations.
const (
	ClipSigma = 3.0
	ClipIters = 2
	// DetectSigma and DetectMinPix parameterize Step 4A.
	DetectSigma  = 5.0
	DetectMinPix = 3
	// BackgroundCell is the background-mesh cell size in pixels.
	BackgroundCell = 16
	// CRSigma is the cosmic-ray detection threshold.
	CRSigma = 6.0
)

// Workload bundles the staged dataset and its geometry.
type Workload struct {
	Store  *objstore.Store
	Cfg    synth.AstroConfig
	Truth  []synth.TrueSource
	Visits int
}

// NewWorkload generates the synthetic dataset for n visits.
func NewWorkload(n int) (*Workload, error) {
	return NewWorkloadCfg(synth.DefaultAstro(n))
}

// NewWorkloadCfg is NewWorkload with explicit geometry.
func NewWorkloadCfg(cfg synth.AstroConfig) (*Workload, error) {
	store := objstore.New()
	truth, err := synth.GenAstro(store, cfg)
	if err != nil {
		return nil, err
	}
	return &Workload{Store: store, Cfg: cfg, Truth: truth, Visits: cfg.Visits}, nil
}

// Grid returns the patch grid for this workload.
func (w *Workload) Grid() skymap.Grid { return w.Cfg.Grid() }

// InputModelBytes returns the paper-scale input size: each scaled sensor
// stands for one full 80 MB HiTS sensor, so a visit with S sensors models
// S paper sensors.
func (w *Workload) InputModelBytes() int64 {
	return synth.PaperSensorBytes * int64(w.Cfg.Sensors) * int64(w.Visits)
}

// LargestIntermediateModelBytes returns the paper-scale size of the
// largest intermediate: the patch-replicated exposures, ~2.5× the input
// (the paper's Fig 10b).
func (w *Workload) LargestIntermediateModelBytes() int64 {
	return w.InputModelBytes() * 5 / 2
}

// PatchModelBytes is the paper-scale size of one patch exposure.
func (w *Workload) PatchModelBytes() int64 {
	g := w.Grid()
	frac := float64(g.PatchW*g.PatchH) / float64(w.Cfg.W*w.Cfg.H)
	return int64(float64(synth.PaperSensorBytes) * frac)
}

// PatchKey formats the record key for a patch, and VisitPatchKey for one
// visit's contribution to a patch.
func PatchKey(p skymap.Patch) string { return fmt.Sprintf("p%d_%d", p.PX, p.PY) }

// VisitPatchKey keys one visit's patch exposure.
func VisitPatchKey(p skymap.Patch, visit int) string {
	return fmt.Sprintf("%s/v%02d", PatchKey(p), visit)
}

// ParsePatchKey inverts PatchKey (ignoring any /vNN suffix).
func ParsePatchKey(key string) (skymap.Patch, error) {
	var p skymap.Patch
	if _, err := fmt.Sscanf(key, "p%d_%d", &p.PX, &p.PY); err != nil {
		return p, fmt.Errorf("astro: bad patch key %q", key)
	}
	return p, nil
}

// PatchResult is the per-patch output of the pipeline.
type PatchResult struct {
	Patch   skymap.Patch
	Coadd   *skymap.Coadd
	Sources []imaging.Source
}

// Result is the output of one pipeline run.
type Result struct {
	Patches map[skymap.Patch]*PatchResult
}

// Preprocess runs Step 1A on one exposure: estimate and subtract the sky
// background, detect and repair cosmic rays, and apply the aperture
// correction. It returns a new calibrated exposure.
func Preprocess(e *skymap.Exposure) *skymap.Exposure {
	out := e.Clone()
	bg := imaging.EstimateBackground(out.Flux, BackgroundCell)
	for i := range out.Flux.Pix {
		out.Flux.Pix[i] -= bg.Pix[i]
	}
	hits := imaging.DetectCosmicRays(out.Flux, out.Var, CRSigma)
	imaging.RepairPixels(out.Flux, out.Mask, hits, skymap.MaskCosmicRay)
	corr := ApertureCorrection(out.Flux)
	if corr != 1 {
		for i := range out.Flux.Pix {
			out.Flux.Pix[i] *= corr
		}
		for i := range out.Var.Pix {
			out.Var.Pix[i] *= corr * corr
		}
	}
	return out
}

// ApertureCorrection estimates the photometric aperture correction from
// the brightest star's curve of growth: the ratio of flux inside a wide
// aperture to flux inside the measurement aperture. A flat or empty image
// yields 1.
func ApertureCorrection(flux *imaging.Image) float64 {
	// Locate the brightest pixel.
	best, bi := math.Inf(-1), -1
	for i, f := range flux.Pix {
		if f > best {
			best, bi = f, i
		}
	}
	if bi < 0 || best <= 0 {
		return 1
	}
	cx, cy := bi%flux.W, bi/flux.W
	aper := func(r int) float64 {
		var sum float64
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx*dx+dy*dy > r*r || !flux.In(cx+dx, cy+dy) {
					continue
				}
				if f := flux.At(cx+dx, cy+dy); f > 0 {
					sum += f
				}
			}
		}
		return sum
	}
	narrow, wide := aper(2), aper(5)
	if narrow <= 0 || wide <= narrow {
		return 1
	}
	corr := wide / narrow
	if corr > 2 { // a crowded or pathological field; stay conservative
		return 1
	}
	return corr
}

// CreatePatches runs Step 2A for a set of calibrated exposures: the
// flatmap projecting each exposure onto the 1–6 patches it overlaps,
// followed by per-(patch, visit) assembly.
func CreatePatches(g skymap.Grid, exposures []*skymap.Exposure) ([]*skymap.PatchExposure, error) {
	var pieces []*skymap.PatchExposure
	for _, e := range exposures {
		for _, p := range g.ExposureOverlaps(e) {
			pieces = append(pieces, g.Project(e, p))
		}
	}
	return skymap.AssemblePatches(pieces)
}

// CoaddAll runs Step 3A over assembled patch exposures, grouping by patch
// and stacking across visits with iterative outlier clipping.
func CoaddAll(pes []*skymap.PatchExposure) (map[skymap.Patch]*skymap.Coadd, error) {
	patches, groups := skymap.GroupByPatch(pes)
	out := make(map[skymap.Patch]*skymap.Coadd, len(patches))
	for _, p := range patches {
		stack := groups[p]
		sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
		co, err := skymap.CoaddPatch(stack, ClipSigma, ClipIters)
		if err != nil {
			return nil, err
		}
		out[p] = co
	}
	return out, nil
}

// Detect runs Step 4A on one coadd.
func Detect(co *skymap.Coadd) []imaging.Source {
	return imaging.DetectSources(co.Flux, DetectSigma, DetectMinPix)
}

// LoadExposures decodes every staged FITS exposure, sorted by key.
func LoadExposures(store *objstore.Store) ([]*skymap.Exposure, error) {
	var out []*skymap.Exposure
	err := EachExposure(store, func(e *skymap.Exposure) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Reference runs the single-node reference implementation (the Python +
// LSST-stack baseline): all four steps. Exposures stream through Steps
// 1A and 2A one at a time — load, calibrate, project onto overlapping
// patches, discard — so the pipeline holds the patch pieces (the
// co-addition input) but never the full exposure set. Piece order, and
// therefore every downstream result, is identical to the materialized
// form's.
func Reference(w *Workload) (*Result, error) {
	g := w.Grid()
	var pieces []*skymap.PatchExposure
	err := EachExposure(w.Store, func(e *skymap.Exposure) error {
		cal := Preprocess(e)
		for _, p := range g.ExposureOverlaps(cal) {
			piece := g.Project(cal, p)
			pieces = append(pieces, piece)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pes, err := skymap.AssemblePatches(pieces)
	if err != nil {
		return nil, err
	}
	coadds, err := CoaddAll(pes)
	if err != nil {
		return nil, err
	}
	res := &Result{Patches: make(map[skymap.Patch]*PatchResult, len(coadds))}
	for p, co := range coadds {
		res.Patches[p] = &PatchResult{Patch: p, Coadd: co, Sources: Detect(co)}
	}
	return res, nil
}
