package astro

import (
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/fits"
	"imagebench/internal/myria"
	"imagebench/internal/objstore"
	"imagebench/internal/skymap"
	"imagebench/internal/synth"
)

// MyriaOpts tunes the Myria implementation.
type MyriaOpts struct {
	// WorkersPerNode is the Myria worker-process count per machine
	// (0 uses the tuned default of 4).
	WorkersPerNode int
	// Mode selects the memory-management strategy (Fig 15).
	Mode myria.MemoryMode
	// ChunkVisits splits the work into multi-query chunks of this many
	// visits each; 0 runs a single query (used with Mode=MultiQuery).
	ChunkVisits int
}

// RunMyria executes the astronomy pipeline on the Myria engine: ingest
// into an Exposures relation, then a MyriaL query applying pre-process,
// patch projection, assembly, co-addition (UDF-internal iteration), and
// detection via Python UDFs/UDAs. In MultiQuery mode the visits are split
// into chunks processed as separate queries, with per-patch partial stacks
// co-added in a final query — the paper's "executing multiple queries"
// strategy (Fig 15).
func RunMyria(w *Workload, cl *cluster.Cluster, model *cost.Model, opts MyriaOpts) (*Result, error) {
	if model == nil {
		model = cost.Default()
	}
	eng := myria.New(cl, w.Store, model, myria.Config{WorkersPerNode: opts.WorkersPerNode, Mode: opts.Mode})
	exposures, err := eng.Ingest("Exposures", "astro/fits/", func(obj objstore.Object) []myria.Tuple {
		e, err := fits.DecodeExposure(obj.Data)
		if err != nil {
			return nil
		}
		return []myria.Tuple{{Key: obj.Key, Value: e, Size: synth.PaperSensorBytes}}
	})
	if err != nil {
		return nil, err
	}
	cl.MarkStage("ingest")

	chunks := [][2]int{{0, w.Visits}} // visit ranges, half-open
	if opts.Mode == myria.MultiQuery && opts.ChunkVisits > 0 {
		chunks = chunks[:0]
		for v := 0; v < w.Visits; v += opts.ChunkVisits {
			end := v + opts.ChunkVisits
			if end > w.Visits {
				end = w.Visits
			}
			chunks = append(chunks, [2]int{v, end})
		}
	}

	stacks := make(map[skymap.Patch][]*skymap.PatchExposure)
	var prev *cluster.Handle
	for _, vr := range chunks {
		q := eng.NewQuery(prev)
		part, err := runMyriaChunk(w, q, exposures, vr[0], vr[1])
		if err != nil {
			return nil, err
		}
		h, err := q.Finish()
		if err != nil {
			return nil, err
		}
		prev = h
		for p, pes := range part {
			stacks[p] = append(stacks[p], pes...)
		}
	}

	// Final query: co-add each patch stack and detect sources.
	patchBytes := w.PatchModelBytes()
	qf := eng.NewQuery(prev)
	stackRel := relFromStacks(eng, qf, stacks, patchBytes)
	coadds := qf.GroupByApply(stackRel,
		func(t myria.Tuple) string { return t.Key[:len(t.Key)-len("/v00")] },
		myria.PyUDA{Name: "coadd", Op: cost.CoaddIter, F: func(key string, group []myria.Tuple) []myria.Tuple {
			stack := make([]*skymap.PatchExposure, 0, len(group))
			for _, t := range group {
				stack = append(stack, t.Value.(*skymap.PatchExposure))
			}
			sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
			co, err := skymap.CoaddPatch(stack, ClipSigma, ClipIters)
			if err != nil {
				return nil
			}
			return []myria.Tuple{{Key: key, Value: co, Size: patchBytes}}
		}})
	detected := qf.Apply(coadds, myria.PyUDF{Name: "detect", Op: cost.DetectSources, F: func(t myria.Tuple) []myria.Tuple {
		co := t.Value.(*skymap.Coadd)
		return []myria.Tuple{{Key: t.Key, Value: &PatchResult{Patch: co.Patch, Coadd: co, Sources: Detect(co)}, Size: t.Size / 100}}
	}})
	tuples, _ := qf.Collect(detected)
	if _, err := qf.Finish(); err != nil {
		return nil, err
	}
	cl.MarkStage("coadd+detect")

	res := &Result{Patches: make(map[skymap.Patch]*PatchResult, len(tuples))}
	for _, t := range tuples {
		pr := t.Value.(*PatchResult)
		res.Patches[pr.Patch] = pr
	}
	return res, nil
}

// runMyriaChunk pre-processes and patch-assembles the exposures of visits
// [v0,v1) inside query q, returning per-patch per-visit exposures.
func runMyriaChunk(w *Workload, q *myria.Query, exposures *myria.Relation, v0, v1 int) (map[skymap.Patch][]*skymap.PatchExposure, error) {
	grid := w.Grid()
	patchBytes := w.PatchModelBytes()
	scan := q.ScanWhere(exposures, func(t myria.Tuple) bool {
		e := t.Value.(*skymap.Exposure)
		return e.Visit >= v0 && e.Visit < v1
	})
	calibrated := q.Apply(scan, myria.PyUDF{Name: "preprocess", Op: cost.Preprocess, F: func(t myria.Tuple) []myria.Tuple {
		return []myria.Tuple{{Key: t.Key, Value: Preprocess(t.Value.(*skymap.Exposure)), Size: t.Size}}
	}})
	pieces := q.Apply(calibrated, myria.PyUDF{Name: "patch-project", Op: cost.PatchMap, F: func(t myria.Tuple) []myria.Tuple {
		e := t.Value.(*skymap.Exposure)
		var out []myria.Tuple
		for _, pt := range grid.ExposureOverlaps(e) {
			out = append(out, myria.Tuple{Key: VisitPatchKey(pt, e.Visit), Value: grid.Project(e, pt), Size: patchBytes})
		}
		return out
	}})
	assembled := q.GroupByApply(pieces,
		func(t myria.Tuple) string { return t.Key },
		myria.PyUDA{Name: "patch-assemble", Op: cost.PatchMap, F: func(key string, group []myria.Tuple) []myria.Tuple {
			pes := make([]*skymap.PatchExposure, 0, len(group))
			for _, t := range group {
				pes = append(pes, t.Value.(*skymap.PatchExposure))
			}
			sortPatchExposures(pes)
			merged, err := skymap.AssemblePatches(pes)
			if err != nil || len(merged) != 1 {
				return nil
			}
			return []myria.Tuple{{Key: key, Value: merged[0], Size: patchBytes}}
		}})
	if q.Err() != nil {
		return nil, q.Err()
	}
	out := make(map[skymap.Patch][]*skymap.PatchExposure)
	for _, t := range assembled.Tuples() {
		pe := t.Value.(*skymap.PatchExposure)
		out[pe.Patch] = append(out[pe.Patch], pe)
	}
	return out, nil
}

// relFromStacks rebuilds a relation from assembled per-patch stacks for
// the final co-addition query.
func relFromStacks(eng *myria.Engine, q *myria.Query, stacks map[skymap.Patch][]*skymap.PatchExposure, patchBytes int64) *myria.Relation {
	var patches []skymap.Patch
	for p := range stacks {
		patches = append(patches, p)
	}
	sort.Slice(patches, func(i, j int) bool {
		if patches[i].PY != patches[j].PY {
			return patches[i].PY < patches[j].PY
		}
		return patches[i].PX < patches[j].PX
	})
	var tuples []myria.Tuple
	for _, p := range patches {
		for _, pe := range stacks[p] {
			tuples = append(tuples, myria.Tuple{Key: VisitPatchKey(p, pe.Visit), Value: pe, Size: patchBytes})
		}
	}
	return eng.RelationFromTuples(q, "PatchStacks", tuples)
}
