package astro

import (
	"fmt"
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/dask"
	"imagebench/internal/fits"
	"imagebench/internal/objstore"
	"imagebench/internal/skymap"
	"imagebench/internal/synth"
	"imagebench/internal/vtime"
)

// RunDask executes the astronomy pipeline as a Dask compute graph:
// per-sensor fetch + pre-process chains feeding per-patch assembly,
// co-addition, and detection tasks.
//
// The paper implemented this but could not benchmark it: "the
// implementation freezes once deployed on a cluster and we found it
// surprisingly difficult to track down the cause of the problem"
// (Section 4.4). Our implementation runs — the experiment registry keeps
// Dask out of the headline astronomy figures to match the paper, but the
// tests exercise this code for correctness.
func RunDask(w *Workload, cl *cluster.Cluster, model *cost.Model) (*Result, error) {
	if model == nil {
		model = cost.Default()
	}
	sess := dask.NewSession(cl, w.Store, model)
	grid := w.Grid()
	patchBytes := w.PatchModelBytes()

	// Fetch + pre-process each sensor exposure, pinned round-robin.
	keys := w.Store.List("astro/fits/")
	calibrated := make([]*dask.Delayed, len(keys))
	for i, key := range keys {
		fetch := sess.Fetch(key, i%cl.Nodes(), func(obj objstore.Object) (any, int64, error) {
			e, err := fits.DecodeExposure(obj.Data)
			if err != nil {
				return nil, 0, err
			}
			return e, synth.PaperSensorBytes, nil
		})
		calibrated[i] = sess.Delayed("preprocess/"+key, cost.Preprocess,
			[]*dask.Delayed{fetch},
			func(args []any) (any, int64, error) {
				return Preprocess(args[0].(*skymap.Exposure)), synth.PaperSensorBytes, nil
			})
	}
	// A barrier to learn each exposure's patch footprint (the geometry
	// drives graph construction, as subject counts did in neuroscience).
	if _, err := sess.Compute(calibrated...); err != nil {
		return nil, err
	}
	cl.MarkStage("preprocess")

	// Group calibrated exposures per (patch, visit), then per patch.
	type pv struct {
		patch skymap.Patch
		visit int
	}
	contributors := make(map[pv][]*dask.Delayed)
	for _, c := range calibrated {
		e := c.Value().(*skymap.Exposure)
		for _, p := range grid.ExposureOverlaps(e) {
			k := pv{p, e.Visit}
			contributors[k] = append(contributors[k], c)
		}
	}
	pvKeys := make([]pv, 0, len(contributors))
	for k := range contributors {
		pvKeys = append(pvKeys, k)
	}
	sort.Slice(pvKeys, func(i, j int) bool {
		a, b := pvKeys[i], pvKeys[j]
		if a.patch != b.patch {
			if a.patch.PY != b.patch.PY {
				return a.patch.PY < b.patch.PY
			}
			return a.patch.PX < b.patch.PX
		}
		return a.visit < b.visit
	})

	perPatch := make(map[skymap.Patch][]*dask.Delayed)
	for _, k := range pvKeys {
		k := k
		deps := contributors[k]
		assembled := sess.Delayed("assemble/"+VisitPatchKey(k.patch, k.visit), cost.PatchMap, deps,
			func(args []any) (any, int64, error) {
				var pieces []*skymap.PatchExposure
				for _, a := range args {
					e := a.(*skymap.Exposure)
					pieces = append(pieces, grid.Project(e, k.patch))
				}
				sortPatchExposures(pieces)
				merged, err := skymap.AssemblePatches(pieces)
				if err != nil {
					return nil, 0, err
				}
				if len(merged) != 1 {
					return nil, 0, fmt.Errorf("astro/dask: %d merged exposures for %v", len(merged), k.patch)
				}
				return merged[0], patchBytes, nil
			})
		perPatch[k.patch] = append(perPatch[k.patch], assembled)
	}

	var roots []*dask.Delayed
	resultNodes := make(map[skymap.Patch]*dask.Delayed)
	var patches []skymap.Patch
	for p := range perPatch {
		patches = append(patches, p)
	}
	sort.Slice(patches, func(i, j int) bool {
		if patches[i].PY != patches[j].PY {
			return patches[i].PY < patches[j].PY
		}
		return patches[i].PX < patches[j].PX
	})
	for _, p := range patches {
		p := p
		deps := perPatch[p]
		stackBytes := patchBytes * int64(len(deps))
		coadd := sess.DelayedCost("coadd/"+PatchKey(p),
			func(int64) vtime.Duration { return model.AlgTime(cost.CoaddIter, stackBytes) },
			deps,
			func(args []any) (any, int64, error) {
				stack := make([]*skymap.PatchExposure, len(args))
				for i, a := range args {
					stack[i] = a.(*skymap.PatchExposure)
				}
				sort.Slice(stack, func(i, j int) bool { return stack[i].Visit < stack[j].Visit })
				co, err := skymap.CoaddPatch(stack, ClipSigma, ClipIters)
				if err != nil {
					return nil, 0, err
				}
				return co, patchBytes, nil
			},
		)
		detect := sess.Delayed("detect/"+PatchKey(p), cost.DetectSources,
			[]*dask.Delayed{coadd},
			func(args []any) (any, int64, error) {
				co := args[0].(*skymap.Coadd)
				return &PatchResult{Patch: co.Patch, Coadd: co, Sources: Detect(co)}, patchBytes / 100, nil
			})
		resultNodes[p] = detect
		roots = append(roots, detect)
	}
	if _, err := sess.Compute(roots...); err != nil {
		return nil, err
	}
	cl.MarkStage("coadd")
	res := &Result{Patches: make(map[skymap.Patch]*PatchResult, len(resultNodes))}
	for p, n := range resultNodes {
		res.Patches[p] = n.Value().(*PatchResult)
	}
	return res, nil
}
