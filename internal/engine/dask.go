package engine

import (
	"context"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/neuro"
	"imagebench/internal/vtime"
)

// daskEngine adapts the Dask implementations (internal/neuro/dask.go,
// internal/astro/dask.go). Dask runs the neuroscience pipeline in every
// comparison; its astronomy run exists (astro.RunDask) and is wired
// through RunAstro, but the paper's Dask froze on the astronomy
// workload, so it holds no CapAstroE2E and stays out of the headline
// astronomy sweeps — its astronomy LoC is still counted in Table 1,
// exactly as the paper does.
type daskEngine struct{}

func init() { Register(daskEngine{}) }

func (daskEngine) Name() string { return "Dask" }

func (daskEngine) Capabilities() CapSet {
	return CapSet{
		CapNeuroE2E:       1,
		CapNeuroIngest:    3,
		CapNeuroStep:      1,
		CapFaultTolerance: 3,
		CapLoC:            1,
	}
}

// RecoveryKind: Dask resubmits the lost tasks on survivors.
func (daskEngine) RecoveryKind() RecoveryKind { return RecoverResubmit }

func (daskEngine) RunNeuro(ctx context.Context, w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	err := TraceRun(ctx, "Dask", "neuro", cl, func() error {
		_, err := neuro.RunDask(w, cl, model)
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

func (daskEngine) RunAstro(ctx context.Context, w *astro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	err := TraceRun(ctx, "Dask", "astro", cl, func() error {
		_, err := astro.RunDask(w, cl, model)
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

// RunWithFaults: task resubmission happens inside the scheduler, so
// the run needs no external wrapper.
func (daskEngine) RunWithFaults(cl *cluster.Cluster, run func() error) (int, error) {
	return 0, run()
}

func (e daskEngine) IngestVariants() []string { return []string{e.Name()} }

func (e daskEngine) NeuroIngest(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, variant string) (vtime.Duration, error) {
	return neuro.IngestTime(w, cl, model, variant)
}

func (e daskEngine) NeuroStep(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	return neuro.StepTime(w, cl, model, e.Name(), step)
}

func (daskEngine) SourceFiles() map[string]string {
	return map[string]string{
		UseNeuro: "neuro/dask.go",
		UseAstro: "astro/dask.go",
	}
}
