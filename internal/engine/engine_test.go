package engine

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/neuro"
)

// fakeEngine is a minimal Engine for registry tests. The name sorts
// after the real engines and it holds no capabilities, so its presence
// in the global registry cannot disturb any Supporting set.
type fakeEngine struct{ name string }

func (f fakeEngine) Name() string             { return f.name }
func (fakeEngine) Capabilities() CapSet       { return CapSet{} }
func (fakeEngine) RecoveryKind() RecoveryKind { return RecoverManualRerun }
func (f fakeEngine) RunNeuro(context.Context, *neuro.Workload, *cluster.Cluster, *cost.Model, Opts) (Result, error) {
	return Result{}, Unsupported("engine %s: fake", f.name)
}
func (f fakeEngine) RunAstro(context.Context, *astro.Workload, *cluster.Cluster, *cost.Model, Opts) (Result, error) {
	return Result{}, Unsupported("engine %s: fake", f.name)
}
func (fakeEngine) RunWithFaults(cl *cluster.Cluster, run func() error) (int, error) {
	return 0, run()
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeEngine{name: "zz-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("registering a duplicate engine name should panic")
		}
	}()
	Register(fakeEngine{name: "zz-dup"})
}

func TestLookupUnknownIsErrUnsupported(t *testing.T) {
	_, err := Lookup("Flink")
	if err == nil {
		t.Fatal("Lookup of an unregistered engine should fail")
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Lookup error %v should wrap ErrUnsupported", err)
	}
}

func TestLookupFindsTheFiveSystems(t *testing.T) {
	for _, name := range []string{"Spark", "Myria", "Dask", "SciDB", "TensorFlow"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if e.Name() != name {
			t.Fatalf("Lookup(%s) returned engine named %s", name, e.Name())
		}
	}
}

func TestAllIsSortedByName(t *testing.T) {
	names := Names(All())
	if !sort.StringsAreSorted(names) {
		t.Fatalf("All() not sorted: %v", names)
	}
	if len(names) < 5 {
		t.Fatalf("All() = %v, want at least the five evaluated systems", names)
	}
}

// TestSupportingPaperOrder pins the comparison sets and their paper
// order — the row labels of the reproduced tables. Any change here is
// a change to every golden file that lists systems.
func TestSupportingPaperOrder(t *testing.T) {
	want := map[Cap][]string{
		CapNeuroE2E:       {"Dask", "Myria", "Spark"},
		CapAstroE2E:       {"Spark", "Myria"},
		CapNeuroIngest:    {"Myria", "Spark", "Dask", "TensorFlow", "SciDB"},
		CapNeuroStep:      {"Dask", "Myria", "Spark", "SciDB", "TensorFlow"},
		CapAstroCoadd:     {"Spark", "Myria", "SciDB"},
		CapFaultTolerance: {"Spark", "Myria", "Dask", "TensorFlow", "SciDB"},
		CapLoC:            {"Dask", "SciDB", "Spark", "Myria", "TensorFlow"},
	}
	for cap, wantNames := range want {
		if got := Names(Supporting(cap)); !reflect.DeepEqual(got, wantNames) {
			t.Errorf("Supporting(%s) = %v, want %v", cap, got, wantNames)
		}
	}
}

// TestCapabilityInterfaces verifies every capability claim is backed by
// the matching behavior interface, so a registry-driven experiment can
// assert the cast instead of crashing mid-table.
func TestCapabilityInterfaces(t *testing.T) {
	for _, e := range All() {
		caps := e.Capabilities()
		if _, ok := e.(NeuroIngester); caps.Has(CapNeuroIngest) && !ok {
			t.Errorf("%s claims %s but is no NeuroIngester", e.Name(), CapNeuroIngest)
		}
		if _, ok := e.(NeuroStepper); caps.Has(CapNeuroStep) && !ok {
			t.Errorf("%s claims %s but is no NeuroStepper", e.Name(), CapNeuroStep)
		}
		if _, ok := e.(AstroCoadder); caps.Has(CapAstroCoadd) && !ok {
			t.Errorf("%s claims %s but is no AstroCoadder", e.Name(), CapAstroCoadd)
		}
		if _, ok := e.(SourceFiler); caps.Has(CapLoC) && !ok {
			t.Errorf("%s claims %s but is no SourceFiler", e.Name(), CapLoC)
		}
	}
}

// TestRecoveryKinds pins each engine's recovery classification (the ft*
// experiments' qualitative axis) and the partial/total split that
// checkFT relies on.
func TestRecoveryKinds(t *testing.T) {
	want := map[string]RecoveryKind{
		"Spark":      RecoverLineage,
		"Dask":       RecoverResubmit,
		"TensorFlow": RecoverCheckpoint,
		"Myria":      RecoverRestart,
		"SciDB":      RecoverManualRerun,
	}
	for name, kind := range want {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.RecoveryKind(); got != kind {
			t.Errorf("%s recovery = %s, want %s", name, got, kind)
		}
	}
	for kind, partial := range map[RecoveryKind]bool{
		RecoverLineage:     true,
		RecoverResubmit:    true,
		RecoverCheckpoint:  false,
		RecoverRestart:     false,
		RecoverManualRerun: false,
	} {
		if kind.Partial() != partial {
			t.Errorf("%s.Partial() = %v, want %v", kind, kind.Partial(), partial)
		}
	}
}

// TestMemFloor pins the per-node memory floor of the end-to-end
// experiment clusters: 10× the input model bytes spread across nodes.
// The ft* and fig10 experiments both size clusters through this helper,
// so a drift here shifts every end-to-end golden file.
func TestMemFloor(t *testing.T) {
	cases := []struct {
		inputBytes int64
		nodes      int
		want       int64
	}{
		{inputBytes: 160 << 20, nodes: 4, want: 419430400},  // 10*160MiB/4 = 400 MiB
		{inputBytes: 160 << 20, nodes: 16, want: 104857600}, // 100 MiB
		{inputBytes: 7, nodes: 3, want: 23},                 // integer division, like the inlined original
	}
	for _, c := range cases {
		if got := MemFloor(c.inputBytes, c.nodes); got != c.want {
			t.Errorf("MemFloor(%d, %d) = %d, want %d", c.inputBytes, c.nodes, got, c.want)
		}
	}
}

func TestCapSetNames(t *testing.T) {
	s := CapSet{CapFaultTolerance: 1, CapNeuroE2E: 3}
	want := []string{"neuro-e2e", "fault-tolerance"} // declaration order, not rank order
	if got := s.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if s.Has(CapAstroE2E) {
		t.Fatal("Has(CapAstroE2E) on a set without it")
	}
}
