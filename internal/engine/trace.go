package engine

import (
	"context"
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/obs"
	"imagebench/internal/vtime"
)

// TraceRun wraps one engine run on cl with a dual-clock span. The span
// records the run's wall window and its virtual window on cl's
// timeline; the stage marks the pipelines drop (cluster.MarkStage) are
// turned into child spans — one per inter-mark interval — whose
// virtual durations partition the run's virtual window exactly, so
// summing a cluster's stage spans reproduces its makespan with no
// residue. Injected faults land on the run span as virtual-stamped
// events. With no tracer in ctx the run executes bare except for one
// per-engine run counter when a metrics registry is present.
//
// The partition invariant holds across retries: ft experiments rerun
// failed attempts on the same cluster, and because each attempt closes
// its window with a mark at the then-current makespan, the next
// attempt's window begins exactly where the previous one ended.
func TraceRun(ctx context.Context, engineName, workload string, cl *cluster.Cluster, f func() error) error {
	if reg := obs.RegistryFrom(ctx); reg != nil {
		reg.NewCounterVec("imagebench_engine_runs_total",
			"Engine runs started, by engine and workload.",
			"engine", "workload").With(engineName, workload).Inc()
	}
	ctx, span := obs.StartSpan(ctx, engineName+" "+workload)
	if span == nil {
		return f()
	}
	span.SetAttr("engine", engineName)
	span.SetAttr("workload", workload)

	// The run's virtual window opens where the previous run on this
	// cluster closed its window (the last mark), or at 0 on a fresh
	// cluster.
	vstart := vtime.Time(0)
	preMarks := cl.StageMarkCount()
	if marks := cl.StageMarks(); len(marks) > 0 {
		vstart = marks[len(marks)-1].At
	}

	err := f()

	vend := cl.Makespan()
	marks := cl.StageMarks()
	interior := len(marks) > preMarks
	// Close the window with a mark at the final makespan, so the next
	// attempt on this cluster starts where we ended and the intervals
	// stay a partition.
	if len(marks) == 0 || marks[len(marks)-1].At != vend {
		switch {
		case err != nil:
			cl.MarkStage("aborted")
		case interior:
			cl.MarkStage("tail")
		default:
			cl.MarkStage("run")
		}
		marks = cl.StageMarks()
	}

	// Emit one virtual-only child span per inter-mark interval inside
	// this run's window, skipping zero-length intervals.
	prev := vstart
	for _, m := range marks[preMarks:] {
		if m.At > prev {
			_, stage := obs.StartSpan(ctx, m.Name)
			stage.SetAttr("kind", "stage")
			stage.SetAttr("engine", engineName)
			stage.SetAttr("workload", workload)
			stage.SetVirtual(prev, m.At)
			stage.SetVirtualOnly()
			stage.End()
		}
		prev = m.At
	}

	// Fault injections whose onset falls inside this run's window.
	for _, fe := range cl.FaultEvents() {
		if fe.At.After(vstart) && !fe.At.After(vend) || (vstart == 0 && fe.At == 0) {
			attrs := []obs.Attr{
				{Key: "node", Value: fmt.Sprintf("%d", fe.Node)},
			}
			if fe.Factor > 0 {
				attrs = append(attrs, obs.Attr{Key: "factor", Value: fmt.Sprintf("%g", fe.Factor)})
			}
			span.AddVirtualEvent(fe.Kind, fe.At, attrs...)
		}
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		if nd, ok := cluster.DownAt(err); ok {
			span.AddVirtualEvent("node-down-detected", nd.At,
				obs.Attr{Key: "node", Value: fmt.Sprintf("%d", nd.Node)})
		}
	}
	span.SetVirtual(vstart, vend)
	span.End()
	return err
}
