package engine

import (
	"context"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/neuro"
	"imagebench/internal/vtime"
)

// tfEngine adapts the TensorFlow implementation (internal/neuro/tf.go).
// TensorFlow runs the neuroscience pipeline (checkpoint-based recovery
// in the ft experiments) and is measured on ingest and per-step timing,
// but it is absent from the Fig 10 end-to-end sweeps and — as the
// paper's Table 1 marks NA — the astronomy workload is not
// implementable on it at all.
type tfEngine struct{}

func init() { Register(tfEngine{}) }

func (tfEngine) Name() string { return "TensorFlow" }

func (tfEngine) Capabilities() CapSet {
	return CapSet{
		CapNeuroIngest:    4,
		CapNeuroStep:      5,
		CapFaultTolerance: 4,
		CapLoC:            5,
	}
}

// RecoveryKind: TensorFlow restarts from its last checkpoint.
func (tfEngine) RecoveryKind() RecoveryKind { return RecoverCheckpoint }

func (tfEngine) RunNeuro(ctx context.Context, w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	err := TraceRun(ctx, "TensorFlow", "neuro", cl, func() error {
		_, err := neuro.RunTF(w, cl, model, neuro.TFOpts{})
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

func (e tfEngine) RunAstro(ctx context.Context, w *astro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	return Result{}, Unsupported("engine %s: astronomy workload not implementable (paper Table 1 NA)", e.Name())
}

// RunWithFaults: checkpoint-and-restart happens inside RunStep, so the
// run needs no external wrapper.
func (tfEngine) RunWithFaults(cl *cluster.Cluster, run func() error) (int, error) {
	return 0, run()
}

func (e tfEngine) IngestVariants() []string { return []string{e.Name()} }

func (e tfEngine) NeuroIngest(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, variant string) (vtime.Duration, error) {
	return neuro.IngestTime(w, cl, model, variant)
}

func (e tfEngine) NeuroStep(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	return neuro.StepTime(w, cl, model, e.Name(), step)
}

func (tfEngine) SourceFiles() map[string]string {
	return map[string]string{
		UseNeuro: "neuro/tf.go",
	}
}
