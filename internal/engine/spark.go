package engine

import (
	"context"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/neuro"
	"imagebench/internal/skymap"
	"imagebench/internal/vtime"
)

// sparkEngine adapts the Spark implementations (internal/neuro/spark.go,
// internal/astro/spark.go) to the Engine API. Spark participates in
// every comparison: both end-to-end pipelines, ingest, per-step timing,
// co-addition, fault tolerance, and Table 1.
type sparkEngine struct{}

func init() { Register(sparkEngine{}) }

func (sparkEngine) Name() string { return "Spark" }

func (sparkEngine) Capabilities() CapSet {
	return CapSet{
		CapNeuroE2E:       3,
		CapAstroE2E:       1,
		CapNeuroIngest:    2,
		CapNeuroStep:      3,
		CapAstroCoadd:     1,
		CapFaultTolerance: 1,
		CapLoC:            3,
	}
}

// RecoveryKind: Spark recomputes only the lost partitions from lineage.
func (sparkEngine) RecoveryKind() RecoveryKind { return RecoverLineage }

func (sparkEngine) RunNeuro(ctx context.Context, w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	parts := opts.Partitions
	if parts == 0 {
		parts = cl.Workers()
	}
	err := TraceRun(ctx, "Spark", "neuro", cl, func() error {
		_, err := neuro.RunSpark(w, cl, model, neuro.SparkOpts{Partitions: parts, CacheInput: opts.CacheInput})
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

func (sparkEngine) RunAstro(ctx context.Context, w *astro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	parts := opts.Partitions
	if parts == 0 {
		parts = cl.Workers()
	}
	err := TraceRun(ctx, "Spark", "astro", cl, func() error {
		_, err := astro.RunSpark(w, cl, model, astro.SparkOpts{Partitions: parts})
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

// RunWithFaults: lineage recovery happens inside the engine's task
// paths, so the run needs no external wrapper.
func (sparkEngine) RunWithFaults(cl *cluster.Cluster, run func() error) (int, error) {
	return 0, run()
}

func (e sparkEngine) IngestVariants() []string { return []string{e.Name()} }

func (e sparkEngine) NeuroIngest(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, variant string) (vtime.Duration, error) {
	return neuro.IngestTime(w, cl, model, variant)
}

func (e sparkEngine) NeuroStep(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	return neuro.StepTime(w, cl, model, e.Name(), step)
}

func (e sparkEngine) CoaddVariants() []string { return []string{e.Name()} }

func (e sparkEngine) AstroCoadd(w *astro.Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, variant string) (vtime.Duration, error) {
	return astro.CoaddStepTime(w, cl, model, stacks, variant)
}

func (sparkEngine) SourceFiles() map[string]string {
	return map[string]string{
		UseNeuro: "neuro/spark.go",
		UseAstro: "astro/spark.go",
	}
}
