// Package engine is the unified driver API over the five evaluated
// systems. The paper's contribution is a *comparative* evaluation —
// every experiment runs the same workload on several systems — and this
// package makes that comparison first-class: each system implements the
// Engine interface once, registers itself, and the experiment harness
// (internal/core) iterates the registry instead of switching on system
// names. Which engine participates in which comparison is data (the
// capability set it registers), so adding a sixth engine or a new
// workload is one adapter file, not an edit to every experiment.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/neuro"
	"imagebench/internal/skymap"
	"imagebench/internal/vtime"
)

// Cap names one comparison an engine can participate in. Capabilities
// mirror the paper's evaluation matrix: an engine holds a capability
// when the paper (and this reproduction) includes it in that
// experiment family.
type Cap uint8

const (
	// CapNeuroE2E: runs the neuroscience pipeline end-to-end in the
	// headline data-size and cluster-size sweeps (Fig 10c/e/g).
	CapNeuroE2E Cap = iota
	// CapAstroE2E: runs the astronomy pipeline end-to-end (Fig 10d/f/h).
	CapAstroE2E
	// CapNeuroIngest: measured on the data-ingest path (Fig 11).
	CapNeuroIngest
	// CapNeuroStep: measured per neuroscience pipeline step (Fig 12a–c).
	CapNeuroStep
	// CapAstroCoadd: measured on the co-addition step (Fig 12d).
	CapAstroCoadd
	// CapFaultTolerance: compared under fault injection (the ft*
	// recovery-overhead experiments).
	CapFaultTolerance
	// CapLoC: its per-use-case implementation files are counted in the
	// lines-of-code comparison (Table 1).
	CapLoC

	numCaps
)

var capNames = [numCaps]string{
	CapNeuroE2E:       "neuro-e2e",
	CapAstroE2E:       "astro-e2e",
	CapNeuroIngest:    "neuro-ingest",
	CapNeuroStep:      "neuro-step",
	CapAstroCoadd:     "astro-coadd",
	CapFaultTolerance: "fault-tolerance",
	CapLoC:            "loc-table",
}

// String returns the capability's wire name (used by /v1/engines and
// the `imagebench engines` listing).
func (c Cap) String() string {
	if int(c) < len(capNames) {
		return capNames[c]
	}
	return fmt.Sprintf("cap(%d)", int(c))
}

// CapSet maps each capability an engine supports to its paper rank:
// the 1-based position of the engine in the corresponding figure's
// legend (Fig 10c lists Dask, Myria, Spark — so Dask registers rank 1
// there). Supporting() orders engines by that rank, which is what
// keeps every reproduced table's rows in the paper's order while the
// row *set* comes from the registry.
type CapSet map[Cap]int

// Has reports whether the set contains c.
func (s CapSet) Has(c Cap) bool {
	_, ok := s[c]
	return ok
}

// Names returns the set's capability names in declaration order
// (stable across runs — maps iterate randomly, figure ranks don't).
func (s CapSet) Names() []string {
	var out []string
	for c := Cap(0); c < numCaps; c++ {
		if s.Has(c) {
			out = append(out, c.String())
		}
	}
	return out
}

// RecoveryKind classifies what an engine does when a node dies mid-run
// (the qualitative axis of the ft* experiments).
type RecoveryKind string

const (
	// RecoverLineage recomputes only the lost partitions from lineage
	// (Spark).
	RecoverLineage RecoveryKind = "lineage-recompute"
	// RecoverResubmit resubmits the lost tasks on survivors (Dask).
	RecoverResubmit RecoveryKind = "task-resubmit"
	// RecoverCheckpoint restarts from the last checkpoint (TensorFlow).
	RecoverCheckpoint RecoveryKind = "checkpoint-restart"
	// RecoverRestart restarts the whole query (Myria).
	RecoverRestart RecoveryKind = "query-restart"
	// RecoverManualRerun has no mid-query recovery: the query fails and
	// the operator reruns it by hand (SciDB).
	RecoverManualRerun RecoveryKind = "manual-rerun"
)

// Partial reports whether the kind recovers at task granularity — a
// kill landing where survivors have slack can cost ~nothing, which is
// the paper's qualitative point about Spark and Dask.
func (k RecoveryKind) Partial() bool {
	return k == RecoverLineage || k == RecoverResubmit
}

// Opts carries the cross-engine run knobs the harness varies. Engines
// ignore knobs they have no equivalent for.
type Opts struct {
	// Partitions overrides the data-parallel width; 0 means one
	// partition per worker slot.
	Partitions int
	// CacheInput asks engines with an input-cache hint (Spark) to cache
	// the ingested input.
	CacheInput bool
}

// Result is what the harness needs back from an end-to-end run: the
// cluster makespan in virtual time. Domain results (decoded volumes,
// coadds) stay behind the per-system entry points.
type Result struct {
	Makespan vtime.Duration
}

// Engine is one evaluated system. Run methods execute a workload
// end-to-end on the given cluster and return the virtual makespan; a
// workload the engine does not support fails with ErrUnsupported.
type Engine interface {
	// Name is the registry key and the row label in reproduced tables.
	Name() string
	// Capabilities reports which comparisons the engine participates
	// in, each with its paper rank.
	Capabilities() CapSet
	// RecoveryKind classifies the engine's mid-run fault recovery.
	RecoveryKind() RecoveryKind
	// RunNeuro executes the end-to-end neuroscience pipeline.
	RunNeuro(ctx context.Context, w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error)
	// RunAstro executes the end-to-end astronomy pipeline.
	RunAstro(ctx context.Context, w *astro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error)
	// RunWithFaults wraps run with the engine's recovery policy on a
	// fault-injected cluster: engines with internal recovery just run;
	// Myria restarts the whole program; SciDB reports failure and pays
	// the operator's manual rerun. reruns counts fully failed attempts
	// (manual-rerun engines only).
	RunWithFaults(cl *cluster.Cluster, run func() error) (reruns int, err error)
}

// NeuroIngester is implemented by engines measured on the Fig 11
// data-ingest path. IngestVariants returns the row labels — usually
// just the engine name, but SciDB exposes its two ingest paths
// ("SciDB-1" from_array, "SciDB-2" aio_input).
type NeuroIngester interface {
	IngestVariants() []string
	NeuroIngest(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, variant string) (vtime.Duration, error)
}

// NeuroStepper is implemented by engines measured per neuroscience
// pipeline step (Fig 12a–c). step is "filter", "mean", or "denoise".
type NeuroStepper interface {
	NeuroStep(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error)
}

// AstroCoadder is implemented by engines measured on the astronomy
// co-addition step (Fig 12d). CoaddVariants returns the row labels —
// SciDB exposes its incremental-iteration variant alongside the plain
// AQL one.
type AstroCoadder interface {
	CoaddVariants() []string
	AstroCoadd(w *astro.Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, variant string) (vtime.Duration, error)
}

// SourceFiler is implemented by engines whose implementation size is
// counted in Table 1: use case ("Neuroscience", "Astronomy") → source
// file relative to internal/. A missing use case is the paper's NA.
type SourceFiler interface {
	SourceFiles() map[string]string
}

// UseNeuro and UseAstro are the Table 1 use-case keys.
const (
	UseNeuro = "Neuroscience"
	UseAstro = "Astronomy"
)

// ErrUnsupported is the typed "this engine does not do that" error:
// unknown engine names, (engine, workload) pairs outside the
// capability matrix, and system filters that empty an experiment's
// engine set all wrap it, so callers can distinguish "not applicable"
// from a real failure with errors.Is.
var ErrUnsupported = errors.New("engine: unsupported")

// Unsupported wraps ErrUnsupported with context.
func Unsupported(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrUnsupported)...)
}

// MemFloor is the per-node memory floor for end-to-end experiment
// clusters: 10× the workload's input model bytes spread across the
// nodes. Speedup experiments scale task counts beyond the paper's
// data:memory ratio, so the budget grows with the workload instead of
// starving large sweeps (fig15 studies memory pressure explicitly with
// its own budget).
func MemFloor(inputModelBytes int64, nodes int) int64 {
	return 10 * inputModelBytes / int64(nodes)
}

var registry = map[string]Engine{}

// Register adds an engine to the registry; it panics on a duplicate
// name (two adapters claiming one system is a build bug, not a data
// condition).
func Register(e Engine) {
	if _, dup := registry[e.Name()]; dup {
		panic("engine: duplicate engine " + e.Name())
	}
	registry[e.Name()] = e
}

// Lookup returns the named engine, or an ErrUnsupported-wrapped error
// naming the registered engines.
func Lookup(name string) (Engine, error) {
	if e, ok := registry[name]; ok {
		return e, nil
	}
	names := make([]string, 0, len(registry))
	for _, e := range All() {
		names = append(names, e.Name())
	}
	return nil, Unsupported("engine: unknown engine %q (registered: %v)", name, names)
}

// All returns every registered engine sorted by name.
func All() []Engine {
	out := make([]Engine, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Supporting returns the engines holding cap, ordered by their paper
// rank for that capability (name as tiebreak) — the order the paper's
// corresponding figure lists them.
func Supporting(c Cap) []Engine {
	var out []Engine
	for _, e := range registry {
		if e.Capabilities().Has(c) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Capabilities()[c], out[j].Capabilities()[c]
		if ri != rj {
			return ri < rj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// Names flattens engines to their names (table row labels).
func Names(engines []Engine) []string {
	out := make([]string, len(engines))
	for i, e := range engines {
		out[i] = e.Name()
	}
	return out
}

// Info is the wire form of one registered engine, shared by the
// daemon's GET /v1/engines and the CLI's `imagebench engines` so the
// two surfaces cannot drift apart.
type Info struct {
	Name         string   `json:"name"`
	Capabilities []string `json:"capabilities"`
	Recovery     string   `json:"recovery"`
}

// Describe returns every registered engine's Info, sorted by name.
func Describe() []Info {
	all := All()
	out := make([]Info, 0, len(all))
	for _, e := range all {
		out = append(out, Info{
			Name:         e.Name(),
			Capabilities: e.Capabilities().Names(),
			Recovery:     string(e.RecoveryKind()),
		})
	}
	return out
}
