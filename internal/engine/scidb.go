package engine

import (
	"context"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/neuro"
	"imagebench/internal/scidb"
	"imagebench/internal/skymap"
	"imagebench/internal/vtime"
)

// scidbEngine adapts the SciDB implementations (internal/neuro/scidb.go,
// internal/astro/scidb.go). SciDB runs the neuroscience pipeline (via
// the aio_input ingest), exposes two ingest variants and an incremental
// co-addition variant, and offers no mid-query recovery — the paper's
// "failure plus manual rerun" row. It has no end-to-end astronomy run
// (only the co-addition step was expressible), so it holds neither
// CapNeuroE2E (it is absent from Fig 10's sweeps) nor CapAstroE2E.
type scidbEngine struct{}

func init() { Register(scidbEngine{}) }

func (scidbEngine) Name() string { return "SciDB" }

func (scidbEngine) Capabilities() CapSet {
	return CapSet{
		CapNeuroIngest:    5,
		CapNeuroStep:      4,
		CapAstroCoadd:     3,
		CapFaultTolerance: 5,
		CapLoC:            2,
	}
}

// RecoveryKind: SciDB has no mid-query recovery; the operator reruns
// the failed query by hand.
func (scidbEngine) RecoveryKind() RecoveryKind { return RecoverManualRerun }

func (scidbEngine) RunNeuro(ctx context.Context, w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	err := TraceRun(ctx, "SciDB", "neuro", cl, func() error {
		_, err := neuro.RunSciDB(w, cl, model, neuro.SciDBAio)
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

func (e scidbEngine) RunAstro(ctx context.Context, w *astro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	return Result{}, Unsupported("engine %s: no end-to-end astronomy run (only the co-addition step is expressible)", e.Name())
}

// RunWithFaults pays one full failed attempt per kill, then the manual
// rerun, and reports how many attempts failed.
func (scidbEngine) RunWithFaults(cl *cluster.Cluster, run func() error) (int, error) {
	return scidb.RerunOnFailure(cl, cl.Kills(), run)
}

// IngestVariants: "SciDB-1" is the serial SciDB-py from_array() path,
// "SciDB-2" the accelerated aio_input load (Fig 11's two SciDB bars).
//
//lint:allow enginedispatch adapter-local labels for SciDB's own two ingest paths, not a cross-engine set
func (scidbEngine) IngestVariants() []string { return []string{"SciDB-1", "SciDB-2"} }

func (scidbEngine) NeuroIngest(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, variant string) (vtime.Duration, error) {
	return neuro.IngestTime(w, cl, model, variant)
}

func (e scidbEngine) NeuroStep(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	return neuro.StepTime(w, cl, model, e.Name(), step)
}

// CoaddVariants: the plain materialize-per-statement AQL iteration and
// the incremental-iteration optimization the paper cites as ~6×.
func (e scidbEngine) CoaddVariants() []string { return []string{e.Name(), "SciDB-incremental"} }

func (scidbEngine) AstroCoadd(w *astro.Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, variant string) (vtime.Duration, error) {
	return astro.CoaddStepTime(w, cl, model, stacks, variant)
}

func (scidbEngine) SourceFiles() map[string]string {
	return map[string]string{
		UseNeuro: "neuro/scidb.go",
		UseAstro: "astro/scidb.go",
	}
}
