package engine

import (
	"context"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
	"imagebench/internal/neuro"
	"imagebench/internal/skymap"
	"imagebench/internal/vtime"
)

// myriaEngine adapts the Myria implementations (internal/neuro/myria.go,
// internal/astro/myria.go). Like Spark it participates in every
// comparison; its recovery policy is a full-query restart.
type myriaEngine struct{}

func init() { Register(myriaEngine{}) }

func (myriaEngine) Name() string { return "Myria" }

func (myriaEngine) Capabilities() CapSet {
	return CapSet{
		CapNeuroE2E:       2,
		CapAstroE2E:       2,
		CapNeuroIngest:    1,
		CapNeuroStep:      2,
		CapAstroCoadd:     2,
		CapFaultTolerance: 2,
		CapLoC:            4,
	}
}

// RecoveryKind: Myria restarts the whole query after a worker dies.
func (myriaEngine) RecoveryKind() RecoveryKind { return RecoverRestart }

func (myriaEngine) RunNeuro(ctx context.Context, w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	err := TraceRun(ctx, "Myria", "neuro", cl, func() error {
		_, err := neuro.RunMyria(w, cl, model, neuro.MyriaOpts{})
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

func (myriaEngine) RunAstro(ctx context.Context, w *astro.Workload, cl *cluster.Cluster, model *cost.Model, opts Opts) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	err := TraceRun(ctx, "Myria", "astro", cl, func() error {
		_, err := astro.RunMyria(w, cl, model, astro.MyriaOpts{})
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: vtime.Duration(cl.Makespan())}, nil
}

// RunWithFaults restarts the whole program once per injected kill, on
// the surviving nodes.
func (myriaEngine) RunWithFaults(cl *cluster.Cluster, run func() error) (int, error) {
	return 0, myria.RunWithRestart(cl, cl.Kills(), run)
}

func (e myriaEngine) IngestVariants() []string { return []string{e.Name()} }

func (e myriaEngine) NeuroIngest(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, variant string) (vtime.Duration, error) {
	return neuro.IngestTime(w, cl, model, variant)
}

func (e myriaEngine) NeuroStep(w *neuro.Workload, cl *cluster.Cluster, model *cost.Model, step string) (vtime.Duration, error) {
	return neuro.StepTime(w, cl, model, e.Name(), step)
}

func (e myriaEngine) CoaddVariants() []string { return []string{e.Name()} }

func (e myriaEngine) AstroCoadd(w *astro.Workload, cl *cluster.Cluster, model *cost.Model, stacks []*skymap.PatchExposure, variant string) (vtime.Duration, error) {
	return astro.CoaddStepTime(w, cl, model, stacks, variant)
}

func (myriaEngine) SourceFiles() map[string]string {
	return map[string]string{
		UseNeuro: "neuro/myria.go",
		UseAstro: "astro/myria.go",
	}
}
