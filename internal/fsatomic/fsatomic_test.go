package fsatomic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
}

func TestIncrementalCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "art.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != path {
		t.Fatalf("Name() = %q, want %q", f.Name(), path)
	}
	for _, chunk := range []string{"part1,", "part2,", "part3"} {
		if _, err := f.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-write, readers still see the previous content.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous" {
		t.Fatalf("target mutated before Commit: %q", got)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Abort() // post-Commit Abort is the documented defer pattern: no-op
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "part1,part2,part3" {
		t.Fatalf("content = %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestAbortLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "art.json")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted write left the target: %v", err)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
