// Package fsatomic is the one place the repo writes files atomically:
// the data lands in a temp file in the target's directory and is
// renamed into place, so readers (and a crash at any instant) see
// either the old content or the new, never a torn write. The result
// cache and the sweep-spec store both persist through it, which keeps
// their durability guarantees identical.
package fsatomic

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temp file is
// created in path's directory so the final rename never crosses a
// filesystem boundary.
func WriteFile(path string, data []byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// File is an incrementally written atomic file: data accumulates in a
// temp file in the target's directory, and Commit flushes and renames
// it into place in one step. Until Commit returns, readers of the
// target path see the previous content (or absence) untouched — which
// is what lets a producer append output as it is computed (the
// streaming sweep artifact) while keeping WriteFile's all-or-nothing
// guarantee.
type File struct {
	tmp  *os.File
	path string
	done bool
}

// Name returns the target path the pending content will replace.
func (f *File) Name() string { return f.path }

// Create opens an incremental atomic write targeting path. The caller
// must finish with exactly one of Commit or Abort.
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, err
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write appends to the pending content (io.Writer).
func (f *File) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Commit flushes the pending content and atomically renames it over
// the target path.
func (f *File) Commit() error {
	if f.done {
		return nil
	}
	f.done = true
	if err := f.tmp.Chmod(0o644); err != nil {
		f.tmp.Close()
		os.Remove(f.tmp.Name())
		return err
	}
	// Flush data before the rename is journaled, or a power loss could
	// leave the destination as an empty file — exactly the torn state
	// the rename is supposed to rule out.
	if err := f.tmp.Sync(); err != nil {
		f.tmp.Close()
		os.Remove(f.tmp.Name())
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	return nil
}

// Abort discards the pending content, leaving the target untouched.
// Safe to call after Commit (no-op), so it can run in a defer.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}
