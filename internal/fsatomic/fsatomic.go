// Package fsatomic is the one place the repo writes files atomically:
// the data lands in a temp file in the target's directory and is
// renamed into place, so readers (and a crash at any instant) see
// either the old content or the new, never a torn write. The result
// cache and the sweep-spec store both persist through it, which keeps
// their durability guarantees identical.
package fsatomic

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temp file is
// created in path's directory so the final rename never crosses a
// filesystem boundary.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Flush data before the rename is journaled, or a power loss could
	// leave the destination as an empty file — exactly the torn state
	// the rename is supposed to rule out.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
