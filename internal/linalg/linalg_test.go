package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMat(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	x, err := Solve(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Errorf("x[%d]=%v", i, x[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x=1, y=3
	a := NewMat(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("got %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMat(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestSolveRandomProperty(t *testing.T) {
	// Property: for diagonally dominant random systems, a·x = b holds.
	f := func(seed [12]int8) bool {
		n := 3
		a := NewMat(n, n)
		b := make([]float64, n)
		k := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, float64(seed[k]%7))
				k++
			}
			a.Set(i, i, a.At(i, i)+25) // dominance → nonsingular
			b[i] = float64(seed[k%12])
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := MulVec(a, x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2t + 1 sampled at 4 points.
	a := NewMat(4, 2)
	b := make([]float64, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i))
		a.Set(i, 1, 1)
		b[i] = 2*float64(i) + 1
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Errorf("fit %v, want [2 1]", x)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewMat(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("expected underdetermined error")
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := NewMat(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Errorf("vals = %v", vals)
		}
	}
}

func TestSymEigKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMat(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("vals = %v", vals)
	}
	// Verify a·v = λ·v for the first eigenvector.
	v := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	av := MulVec(a, v)
	for i := range v {
		if math.Abs(av[i]-3*v[i]) > 1e-10 {
			t.Errorf("a·v != λv: %v vs %v", av, v)
		}
	}
}

func TestSymEigTraceProperty(t *testing.T) {
	// Property: eigenvalues of a random symmetric matrix sum to its trace.
	f := func(seed [6]int8) bool {
		a := NewMat(3, 3)
		k := 0
		for i := 0; i < 3; i++ {
			for j := i; j < 3; j++ {
				v := float64(seed[k] % 9)
				a.Set(i, j, v)
				a.Set(j, i, v)
				k++
			}
		}
		vals, _, err := SymEig(a)
		if err != nil {
			return false
		}
		trace := a.At(0, 0) + a.At(1, 1) + a.At(2, 2)
		return math.Abs(vals[0]+vals[1]+vals[2]-trace) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatHelpers(t *testing.T) {
	a := NewMat(2, 3)
	a.Set(0, 1, 7)
	tt := a.T()
	if tt.Rows != 3 || tt.Cols != 2 || tt.At(1, 0) != 7 {
		t.Error("transpose wrong")
	}
	c := a.Clone()
	c.Set(0, 1, 9)
	if a.At(0, 1) != 7 {
		t.Error("clone aliases data")
	}
	// Mul dimensions and content: (1x2)·(2x1).
	x := NewMat(1, 2)
	x.Set(0, 0, 2)
	x.Set(0, 1, 3)
	y := NewMat(2, 1)
	y.Set(0, 0, 4)
	y.Set(1, 0, 5)
	if got := Mul(x, y).At(0, 0); got != 23 {
		t.Errorf("Mul = %v, want 23", got)
	}
}
