// Package linalg provides the small dense linear algebra the pipelines
// need: general least squares via normal equations, Gaussian elimination
// with partial pivoting, and symmetric eigendecomposition by cyclic Jacobi
// rotations. It replaces the NumPy/SciPy routines the reference Python
// implementations call.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dims %dx%d", r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul dims %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Mat, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for j := 0; j < a.Cols; j++ {
			s += a.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves a·x = b by Gaussian elimination with partial pivoting.
// a and b are not modified.
func Solve(a *Mat, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: solve dims %dx%d with rhs %d", a.Rows, a.Cols, len(b))
	}
	n := a.Rows
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m.At(r, col)) > math.Abs(m.At(p, col)) {
				p = r
			}
		}
		if math.Abs(m.At(p, col)) < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				m.Data[p*n+j], m.Data[col*n+j] = m.Data[col*n+j], m.Data[p*n+j]
			}
			x[p], x[col] = x[col], x[p]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ‖a·x − b‖₂ via the normal equations aᵀa·x = aᵀb.
// It requires a.Rows ≥ a.Cols and full column rank.
func LeastSquares(a *Mat, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: lstsq dims %dx%d with rhs %d", a.Rows, a.Cols, len(b))
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	at := a.T()
	ata := Mul(at, a)
	atb := MulVec(at, b)
	return Solve(ata, atb)
}

// SymEig computes the eigenvalues and eigenvectors of a symmetric matrix by
// the cyclic Jacobi method. Eigenvalues are returned in descending order;
// column j of the returned matrix is the eigenvector for eigenvalue j.
// The input must be symmetric; only its lower triangle is trusted.
func SymEig(a *Mat) (vals []float64, vecs *Mat, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: symeig of %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	m := a.Clone()
	// Symmetrize from the lower triangle for robustness.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	v := NewMat(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort eigenvalues (and vector columns) descending by selection sort;
	// n is tiny (3 for the diffusion tensor).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for k := 0; k < n; k++ {
				vi, vb := v.At(k, i), v.At(k, best)
				v.Set(k, i, vb)
				v.Set(k, best, vi)
			}
		}
	}
	return vals, v, nil
}
