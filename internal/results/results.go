// Package results is the content-addressed result cache of the
// experiment service. Every experiment run is keyed by a stable hash of
// (experiment ID, profile); the cache stores the resulting core.Table
// as JSON in memory and, optionally, on disk, so that identical
// requests — across jobs, processes, and restarts — are answered
// without re-simulating. This is the provenance-style result reuse the
// ROADMAP calls for: the simulator is deterministic, so a key fully
// determines its table.
package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"imagebench/internal/core"
	"imagebench/internal/fsatomic"
)

// Key returns the content address for one (experiment, profile) run:
// a hex SHA-256 over a versioned encoding of the experiment ID and the
// profile fingerprint. Bump the version prefix when the simulation
// semantics change incompatibly.
func Key(experimentID string, p core.Profile) string {
	h := sha256.New()
	fmt.Fprintf(h, "imagebench/result/v1\x00%s\x00%s", experimentID, p.Fingerprint())
	return hex.EncodeToString(h.Sum(nil))
}

// Entry is one cached result with enough provenance to list and
// re-render it without consulting the scheduler.
type Entry struct {
	Key        string       `json:"key"`
	Experiment string       `json:"experiment"`
	Profile    core.Profile `json:"profile"`
	Table      *core.Table  `json:"table"`
}

// Stats reports cache traffic since the process started. Hits is
// always MemHits+DiskHits: the per-layer split says which tier served
// the entry (memory, or a lazy read-through from disk).
type Stats struct {
	Hits     int64 `json:"hits"`
	MemHits  int64 `json:"memHits"`
	DiskHits int64 `json:"diskHits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
}

// Cache is a concurrency-safe result cache. The in-memory map is the
// source of truth; when opened with a directory, entries are also
// written through as one JSON file per key and lazily re-read on miss,
// so a restarted daemon warms itself from disk on demand.
type Cache struct {
	dir string // "" = memory only

	mu   sync.RWMutex
	mem  map[string]*Entry
	disk map[string]bool // keys present on disk: seeded at Open, maintained by Put/load

	memHits  atomic.Int64
	diskHits atomic.Int64
	misses   atomic.Int64
}

// Open returns a cache backed by dir, creating it if needed. An empty
// dir yields a memory-only cache. The directory is scanned once here;
// afterwards Keys and Stats never touch the disk, so files added to the
// directory by another process are found by Get (which reads through)
// but not listed.
func Open(dir string) (*Cache, error) {
	c := &Cache{dir: dir, mem: make(map[string]*Entry)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("results: open %s: %w", dir, err)
		}
		c.disk = make(map[string]bool)
		names, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("results: scan %s: %w", dir, err)
		}
		for _, f := range names {
			k := strings.TrimSuffix(f.Name(), ".json")
			if validKey(k) && k != f.Name() {
				c.disk[k] = true
			}
		}
	}
	return c, nil
}

// Get returns the entry for key, consulting memory first and then disk.
// The boolean reports whether the key was found; hit/miss counters are
// updated either way, and hits are attributed to the layer that served
// them (memory, or a disk read-through).
func (c *Cache) Get(key string) (*Entry, bool) {
	e, layer, ok := c.peek(key)
	if ok {
		if layer == layerMem {
			c.memHits.Add(1)
		} else {
			c.diskHits.Add(1)
		}
		return e, true
	}
	c.misses.Add(1)
	return nil, false
}

// Contains reports whether key is cached without touching the counters —
// for introspection endpoints that should not skew hit rates.
func (c *Cache) Contains(key string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mem[key] != nil || c.disk[key]
}

// Peek is Get without the traffic counters: recovery and sweep-status
// paths rehydrate completed results through it after a restart, so
// hit/miss rates keep reflecting client traffic only.
func (c *Cache) Peek(key string) (*Entry, bool) {
	e, _, ok := c.peek(key)
	return e, ok
}

// Cache layers, for hit attribution.
const (
	layerMem  = "memory"
	layerDisk = "disk"
)

// peek is the shared lookup: memory first, then a disk read-through.
// It reports which layer served the entry.
func (c *Cache) peek(key string) (*Entry, string, bool) {
	c.mu.RLock()
	e, ok := c.mem[key]
	c.mu.RUnlock()
	if ok {
		return e, layerMem, true
	}
	if c.dir != "" {
		if e, ok := c.load(key); ok {
			return e, layerDisk, true
		}
	}
	return nil, "", false
}

// Put stores the entry in memory and, if the cache is disk-backed,
// writes it through atomically (temp file + rename).
func (c *Cache) Put(e *Entry) error {
	if !validKey(e.Key) || e.Table == nil {
		return fmt.Errorf("results: refusing to cache entry with malformed key %q or nil table", e.Key)
	}
	c.mu.Lock()
	c.mem[e.Key] = e
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("results: encode %s: %w", e.Key, err)
	}
	if err := fsatomic.WriteFile(c.path(e.Key), b); err != nil {
		return err
	}
	c.mu.Lock()
	c.disk[e.Key] = true
	c.mu.Unlock()
	return nil
}

// load reads one entry from disk into memory. A corrupt or unreadable
// file is treated as a miss: the simulator can always regenerate it.
func (c *Cache) load(key string) (*Entry, bool) {
	if !validKey(key) {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key || e.Table == nil {
		return nil, false
	}
	c.mu.Lock()
	c.mem[key] = &e
	c.disk[key] = true
	c.mu.Unlock()
	return &e, true
}

// Keys returns every cached key, sorted: the union of memory and the
// disk keys known since Open (no directory scan).
func (c *Cache) Keys() []string {
	c.mu.RLock()
	set := make(map[string]bool, len(c.mem)+len(c.disk))
	for k := range c.mem {
		set[k] = true
	}
	for k := range c.disk {
		set[k] = true
	}
	c.mu.RUnlock()
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats returns traffic counters and the current entry count.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	n := len(c.disk)
	for k := range c.mem {
		if !c.disk[k] {
			n++
		}
	}
	c.mu.RUnlock()
	mem, disk := c.memHits.Load(), c.diskHits.Load()
	return Stats{
		Hits:     mem + disk,
		MemHits:  mem,
		DiskHits: disk,
		Misses:   c.misses.Load(),
		Entries:  n,
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// validKey guards the disk paths: keys are lowercase hex SHA-256, so
// anything else (path traversal, stray files) is rejected.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
