package results

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"imagebench/internal/core"
)

func sampleTable() *core.Table {
	t := core.NewTable("sample", "virtual s", []string{"a", "b"}, []string{"1", "2"})
	t.Set("a", "1", 1.5)
	t.Set("b", "2", 3000)
	t.Notes = append(t.Notes, "a note")
	return t
}

func TestKeyStableAndDiscriminating(t *testing.T) {
	q := core.Quick()
	if Key("fig11", q) != Key("fig11", core.Quick()) {
		t.Error("identical (experiment, profile) must produce identical keys")
	}
	if Key("fig11", q) == Key("fig12a", q) {
		t.Error("different experiments must produce different keys")
	}
	if Key("fig11", q) == Key("fig11", core.Full()) {
		t.Error("different profiles must produce different keys")
	}
	mutated := core.Quick()
	mutated.NeuroT++
	if Key("fig11", q) == Key("fig11", mutated) {
		t.Error("any profile parameter change must change the key")
	}
	if k := Key("fig11", q); !validKey(k) {
		t.Errorf("key %q is not 64 hex chars", k)
	}
}

func TestMemoryCache(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	key := Key("fig11", core.Quick())
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	e := &Entry{Key: key, Experiment: "fig11", Profile: core.Quick(), Table: sampleTable()}
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || got.Table.Get("a", "1") != 1.5 {
		t.Fatalf("Get after Put: ok=%v table=%+v", ok, got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if !c.Contains(key) || c.Contains(Key("fig12a", core.Quick())) {
		t.Error("Contains disagrees with cache contents")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("Contains must not touch counters; stats = %+v", st)
	}
}

func TestDiskRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("fig10c", core.Quick())
	if err := c.Put(&Entry{Key: key, Experiment: "fig10c", Profile: core.Quick(), Table: sampleTable()}); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves the entry from disk,
	// NaN cells intact.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("reopened cache missed a persisted entry")
	}
	if !math.IsNaN(got.Table.Get("a", "2")) {
		t.Error("NA cell did not round-trip as NaN")
	}
	if got.Table.Get("b", "2") != 3000 {
		t.Errorf("cell = %v, want 3000", got.Table.Get("b", "2"))
	}
	if got.Experiment != "fig10c" || got.Profile.Name != "quick" {
		t.Errorf("provenance lost: %+v", got)
	}
	if keys := c2.Keys(); len(keys) != 1 || keys[0] != key {
		t.Errorf("Keys() = %v, want [%s]", keys, key)
	}
}

func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("fig11", core.Quick())
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupt file served as a hit")
	}
}

func TestInvalidKeysNeverTouchDisk(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "../../etc/passwd", "ZZZZ", "abc"} {
		if _, ok := c.Get(k); ok {
			t.Errorf("Get(%q) reported a hit", k)
		}
	}
	if err := c.Put(&Entry{Key: "", Table: sampleTable()}); err == nil {
		t.Error("Put with empty key must fail")
	}
}

// TestPeekDoesNotSkewCounters pins the recovery contract: Peek serves
// entries from memory and disk exactly like Get but leaves the traffic
// counters untouched, so restart rehydration does not inflate hit rates.
func TestPeekDoesNotSkewCounters(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("fig11", core.Quick())
	if _, ok := c.Peek(key); ok {
		t.Fatal("peek hit on empty cache")
	}
	if err := c.Put(&Entry{Key: key, Experiment: "fig11", Profile: core.Quick(), Table: sampleTable()}); err != nil {
		t.Fatal(err)
	}
	if e, ok := c.Peek(key); !ok || e.Experiment != "fig11" {
		t.Fatalf("peek after put = %v, %v", e, ok)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("peek moved counters: %+v", st)
	}
	// Peek also reads through from disk on a fresh cache over the same dir.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := c2.Peek(key); !ok || e.Table.Get("a", "1") != 1.5 {
		t.Fatalf("disk peek = %v, %v", e, ok)
	}
	if st := c2.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("disk peek moved counters: %+v", st)
	}
}
