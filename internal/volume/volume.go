// Package volume provides dense 3-D and 4-D floating point arrays — the
// in-memory representation of image volumes in both use cases — together
// with the slicing, averaging and block-partitioning operations the
// pipelines are built from.
package volume

import (
	"fmt"
	"math"
)

// V3 is a dense 3-D volume in x-fastest (column-major by x) layout:
// element (x,y,z) lives at index x + NX*(y + NY*z).
type V3 struct {
	NX, NY, NZ int
	Data       []float64
}

// New3 returns a zeroed nx×ny×nz volume.
func New3(nx, ny, nz int) *V3 {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("volume: invalid dims %dx%dx%d", nx, ny, nz))
	}
	return &V3{NX: nx, NY: ny, NZ: nz, Data: make([]float64, nx*ny*nz)}
}

// Len returns the number of voxels.
func (v *V3) Len() int { return v.NX * v.NY * v.NZ }

// Idx returns the linear index of (x,y,z).
func (v *V3) Idx(x, y, z int) int { return x + v.NX*(y+v.NY*z) }

// At returns the voxel at (x,y,z).
func (v *V3) At(x, y, z int) float64 { return v.Data[v.Idx(x, y, z)] }

// Set assigns the voxel at (x,y,z).
func (v *V3) Set(x, y, z int, val float64) { v.Data[v.Idx(x, y, z)] = val }

// In reports whether (x,y,z) lies inside the volume.
func (v *V3) In(x, y, z int) bool {
	return x >= 0 && x < v.NX && y >= 0 && y < v.NY && z >= 0 && z < v.NZ
}

// Clone returns a deep copy.
func (v *V3) Clone() *V3 {
	c := New3(v.NX, v.NY, v.NZ)
	copy(c.Data, v.Data)
	return c
}

// SameShape reports whether v and u have identical dimensions.
func (v *V3) SameShape(u *V3) bool {
	return v.NX == u.NX && v.NY == u.NY && v.NZ == u.NZ
}

// Bytes returns the in-memory size of the voxel data in bytes.
func (v *V3) Bytes() int64 { return int64(v.Len()) * 8 }

// Stats summarizes a volume.
type Stats struct {
	Min, Max, Mean, Std float64
	NonZero             int
}

// Summarize computes Stats over the volume.
func (v *V3) Summarize() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sq float64
	for _, x := range v.Data {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x != 0 {
			s.NonZero++
		}
		sum += x
		sq += x * x
	}
	n := float64(v.Len())
	s.Mean = sum / n
	variance := sq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two same-shaped volumes. It panics on shape mismatch.
func MaxAbsDiff(a, b *V3) float64 {
	if !a.SameShape(b) {
		panic("volume: shape mismatch")
	}
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// Mean3 returns the per-voxel mean of the given same-shaped volumes.
func Mean3(vols []*V3) *V3 {
	if len(vols) == 0 {
		panic("volume: mean of no volumes")
	}
	out := New3(vols[0].NX, vols[0].NY, vols[0].NZ)
	Mean3Into(out, vols)
	return out
}

// Mean3Into computes the per-voxel mean of vols into dst, which must
// match their shape. Existing contents of dst are overwritten, so dst
// may come from an arena. Accumulation order matches Mean3 exactly.
func Mean3Into(dst *V3, vols []*V3) {
	if len(vols) == 0 {
		panic("volume: mean of no volumes")
	}
	if !dst.SameShape(vols[0]) {
		panic("volume: shape mismatch in mean")
	}
	clear(dst.Data)
	for _, v := range vols {
		if !v.SameShape(dst) {
			panic("volume: shape mismatch in mean")
		}
		for i, x := range v.Data {
			dst.Data[i] += x
		}
	}
	inv := 1 / float64(len(vols))
	for i := range dst.Data {
		dst.Data[i] *= inv
	}
}

// ApplyMask zeroes voxels of v where mask is zero, in place. The mask uses
// the convention 0 = background, nonzero = keep.
func (v *V3) ApplyMask(mask *V3) {
	if !v.SameShape(mask) {
		panic("volume: mask shape mismatch")
	}
	for i := range v.Data {
		if mask.Data[i] == 0 {
			v.Data[i] = 0
		}
	}
}

// V4 is a time/volume series: T same-shaped 3-D volumes (one per dMRI
// measurement). Volumes are stored individually so they can be distributed.
type V4 struct {
	Vols []*V3
}

// New4 wraps the given volumes, checking that shapes match.
func New4(vols []*V3) *V4 {
	if len(vols) == 0 {
		panic("volume: empty 4-D volume")
	}
	for _, v := range vols[1:] {
		if !v.SameShape(vols[0]) {
			panic("volume: shape mismatch in 4-D volume")
		}
	}
	return &V4{Vols: vols}
}

// T returns the number of 3-D volumes.
func (v *V4) T() int { return len(v.Vols) }

// Shape returns the spatial dimensions.
func (v *V4) Shape() (nx, ny, nz int) {
	return v.Vols[0].NX, v.Vols[0].NY, v.Vols[0].NZ
}

// Select returns the volumes at the indices where keep is true, sharing
// underlying data (no copy) — a filter along the fourth dimension.
func (v *V4) Select(keep []bool) *V4 {
	if len(keep) != v.T() {
		panic("volume: select mask length mismatch")
	}
	// Count first so the slice is allocated once at its exact size,
	// instead of log(n) append growths per call on the ingest hot path.
	n := 0
	for _, k := range keep {
		if k {
			n++
		}
	}
	out := make([]*V3, 0, n)
	for i, k := range keep {
		if k {
			out = append(out, v.Vols[i])
		}
	}
	return New4(out)
}

// Bytes returns the total in-memory voxel bytes.
func (v *V4) Bytes() int64 {
	var n int64
	for _, x := range v.Vols {
		n += x.Bytes()
	}
	return n
}

// Block identifies a contiguous z-slab of voxels: a unit of parallelism for
// the model-fitting step (the paper partitions by blocks of voxels).
type Block struct {
	Z0, Z1 int // half-open z range
}

// Blocks splits nz z-planes into n near-equal slabs. Fewer than n blocks
// are returned when nz < n.
func Blocks(nz, n int) []Block {
	if n <= 0 {
		panic("volume: non-positive block count")
	}
	if n > nz {
		n = nz
	}
	var out []Block
	for i := 0; i < n; i++ {
		z0 := i * nz / n
		z1 := (i + 1) * nz / n
		if z1 > z0 {
			out = append(out, Block{Z0: z0, Z1: z1})
		}
	}
	return out
}

// TileZ splits nz z-planes into fixed-height tiles of at most rows
// planes each — the unit of work the imaging kernels hand to their
// worker pools. Unlike Blocks (which targets a worker count), TileZ
// targets a tile size, so the tile boundaries are independent of how
// many workers consume them.
func TileZ(nz, rows int) []Block {
	if rows <= 0 {
		rows = 1
	}
	out := make([]Block, 0, (nz+rows-1)/rows)
	for z0 := 0; z0 < nz; z0 += rows {
		z1 := z0 + rows
		if z1 > nz {
			z1 = nz
		}
		out = append(out, Block{Z0: z0, Z1: z1})
	}
	return out
}

// ExtractBlock copies the z-slab [b.Z0,b.Z1) of v into a new volume.
func ExtractBlock(v *V3, b Block) *V3 {
	nz := b.Z1 - b.Z0
	out := New3(v.NX, v.NY, nz)
	plane := v.NX * v.NY
	copy(out.Data, v.Data[b.Z0*plane:b.Z1*plane])
	return out
}

// InsertBlock copies block data (shaped by b) back into dst at slab b.
func InsertBlock(dst *V3, b Block, src *V3) {
	plane := dst.NX * dst.NY
	copy(dst.Data[b.Z0*plane:b.Z1*plane], src.Data)
}
