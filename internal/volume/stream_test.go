package volume

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func rampVolume(nx, ny, nz int) *V3 {
	v := New3(nx, ny, nz)
	for i := range v.Data {
		v.Data[i] = float64(i) * 0.5
	}
	return v
}

func TestSlabsCoverAndAlias(t *testing.T) {
	v := rampVolume(3, 4, 10)
	src := Slabs(v, 3)
	covered := 0
	for {
		bv, ok := src.Next()
		if !ok {
			break
		}
		if bv.V.NZ != bv.B.Z1-bv.B.Z0 {
			t.Fatalf("slab %v has NZ=%d", bv.B, bv.V.NZ)
		}
		// The view aliases v: writing through it must write v.
		bv.V.Set(0, 0, 0, -1)
		if v.At(0, 0, bv.B.Z0) != -1 {
			t.Fatalf("slab %v does not alias the source", bv.B)
		}
		v.Set(0, 0, bv.B.Z0, 0)
		covered += bv.V.NZ
		bv.Release() // no-op for views: must not panic or pool v's data
	}
	if covered != v.NZ {
		t.Fatalf("slabs covered %d planes, want %d", covered, v.NZ)
	}
}

func TestForEachDeliversExactlyOnce(t *testing.T) {
	const nz = 23
	for _, workers := range []int{1, 4, nz + 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var hits [nz]atomic.Int32
			err := ForEach(context.Background(), Tiles(nz, 2), workers, func(bv BlockVol) {
				for z := bv.B.Z0; z < bv.B.Z1; z++ {
					hits[z].Add(1)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for z := range hits {
				if n := hits[z].Load(); n != 1 {
					t.Fatalf("plane %d delivered %d times", z, n)
				}
			}
		})
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForEach(ctx, Tiles(8, 1), 1, func(BlockVol) { calls++ })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times under a pre-canceled context", calls)
	}
}

// TestMapCollectIdentity is the core streaming invariant: Map over
// slabs followed by Collect must reproduce exactly the volume a direct
// whole-volume transform produces, at any worker count, including
// workers > number of tiles.
func TestMapCollectIdentity(t *testing.T) {
	v := rampVolume(5, 4, 17)
	want := New3(v.NX, v.NY, v.NZ)
	for i, x := range v.Data {
		want.Data[i] = 3*x + 1
	}
	tiles := len(TileZ(v.NZ, 2))
	for _, workers := range []int{1, 4, tiles + 5} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ar := NewArena()
			out := Collect(v.NX, v.NY, v.NZ, Map(context.Background(), Slabs(v, 2), ar, workers,
				func(in BlockVol, o *V3) {
					for i, x := range in.V.Data {
						o.Data[i] = 3*x + 1
					}
				}))
			if d := MaxAbsDiff(out, want); d != 0 {
				t.Fatalf("streamed transform differs from direct: max |Δ| = %g", d)
			}
			st := ar.Stats()
			if st.Gets != int64(tiles) {
				t.Fatalf("arena gets = %d, want %d (one per tile)", st.Gets, tiles)
			}
			if st.Puts != st.Gets {
				t.Fatalf("arena leaked buffers: gets=%d puts=%d", st.Gets, st.Puts)
			}
		})
	}
}

// TestMapEmitsInOrder pins the reorder buffer: downstream consumers see
// ascending Z0 regardless of which worker finishes first.
func TestMapEmitsInOrder(t *testing.T) {
	v := rampVolume(2, 2, 32)
	s := Map(context.Background(), Slabs(v, 1), NewArena(), 8, func(in BlockVol, o *V3) {
		copy(o.Data, in.V.Data)
	})
	last := -1
	for {
		bv, ok := s.Next()
		if !ok {
			break
		}
		if bv.B.Z0 <= last {
			t.Fatalf("block Z0=%d emitted after Z0=%d", bv.B.Z0, last)
		}
		last = bv.B.Z0
		bv.Release()
	}
	if last != v.NZ-1 {
		t.Fatalf("last block Z0=%d, want %d", last, v.NZ-1)
	}
}

func TestOnDrainedRunsOnce(t *testing.T) {
	runs := 0
	s := OnDrained(Tiles(3, 1), func() { runs++ })
	for i := 0; i < 3; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("stream ended early at block %d", i)
		}
		if runs != 0 {
			t.Fatal("drain hook ran before exhaustion")
		}
	}
	for i := 0; i < 3; i++ { // repeated Next after exhaustion
		if _, ok := s.Next(); ok {
			t.Fatal("exhausted stream yielded a block")
		}
	}
	if runs != 1 {
		t.Fatalf("drain hook ran %d times, want 1", runs)
	}
}

func TestDrainReleasesRemaining(t *testing.T) {
	ar := NewArena()
	v := rampVolume(2, 2, 6)
	s := Map(context.Background(), Slabs(v, 1), ar, 2, func(in BlockVol, o *V3) {
		copy(o.Data, in.V.Data)
	})
	if _, ok := s.Next(); !ok { // consume one, abandon the rest
		t.Fatal("empty stream")
	}
	Drain(s)
	st := ar.Stats()
	if st.Puts != st.Gets-1 { // the one un-Released block we kept
		t.Fatalf("drain left buffers stranded: gets=%d puts=%d", st.Gets, st.Puts)
	}
}

// TestSharedArenaConcurrentPipelines is the aliasing stress for the
// process-wide scratch arena: many pipelines recycling buffers through
// one arena concurrently must each still produce exactly their own
// result (run under -race in CI).
func TestSharedArenaConcurrentPipelines(t *testing.T) {
	ar := NewArena()
	const pipelines = 8
	var wg sync.WaitGroup
	errs := make([]error, pipelines)
	for p := 0; p < pipelines; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := New3(4, 3, 9)
			for i := range v.Data {
				v.Data[i] = float64(p*1000 + i)
			}
			out := Collect(v.NX, v.NY, v.NZ, Map(context.Background(), Slabs(v, 2), ar, 3,
				func(in BlockVol, o *V3) {
					for i, x := range in.V.Data {
						o.Data[i] = x + 1
					}
				}))
			for i := range v.Data {
				if out.Data[i] != v.Data[i]+1 {
					errs[p] = fmt.Errorf("pipeline %d voxel %d = %g, want %g (cross-pipeline scribble)",
						p, i, out.Data[i], v.Data[i]+1)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestArenaReuseAndReshape(t *testing.T) {
	ar := NewArena()
	a := ar.Get(4, 4, 4)
	for i := range a.Data {
		a.Data[i] = 7
	}
	ar.Put(a)
	// Same shape: the pooled buffer comes back dirty.
	b := ar.Get(4, 4, 4)
	if &b.Data[0] != &a.Data[0] {
		t.Fatal("same-shape Get did not reuse the pooled buffer")
	}
	ar.Put(b)
	// Smaller shape: reshaped in place, no fresh allocation.
	c := ar.Get(2, 2, 2)
	if c.NX != 2 || c.NY != 2 || c.NZ != 2 || len(c.Data) != 8 {
		t.Fatalf("reshaped volume has wrong geometry: %d×%d×%d len %d", c.NX, c.NY, c.NZ, len(c.Data))
	}
	if &c.Data[0] != &a.Data[0] {
		t.Fatal("smaller Get did not reshape the pooled buffer")
	}
	ar.Put(c)
	// GetZeroed must scrub the dirty pooled contents.
	d := ar.GetZeroed(2, 2, 2)
	for i, x := range d.Data {
		if x != 0 {
			t.Fatalf("GetZeroed voxel %d = %g", i, x)
		}
	}
	st := ar.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (only the first Get allocates)", st.Misses)
	}
}

func TestNilArenaDegradesToAllocation(t *testing.T) {
	var ar *Arena
	v := ar.Get(2, 3, 4)
	if v.NX != 2 || v.NY != 3 || v.NZ != 4 {
		t.Fatalf("nil-arena Get shape %d×%d×%d", v.NX, v.NY, v.NZ)
	}
	for _, x := range v.Data {
		if x != 0 {
			t.Fatal("nil-arena Get must be a plain zeroed allocation")
		}
	}
	ar.Put(v) // no-op, must not panic
	if st := ar.Stats(); st != (ArenaStats{}) {
		t.Fatalf("nil-arena stats = %+v", st)
	}
	bv := BlockVol{}
	bv.Release() // zero-value release is a no-op
}
