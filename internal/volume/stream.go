package volume

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pull-based block streams: the composable streaming layer the compute
// stack is built on. A Stream yields z-slab blocks of a conceptual
// volume one at a time; stages (ForEach, Map) consume them on a bounded
// worker pool with pooled scratch buffers; sinks (Collect, MeanOf)
// reduce them back into a materialized result. The decomposition only
// changes *when* memory exists — every block is computed by the same
// expression as the materialized loop and written to disjoint output
// ranges, so any composition is bit-identical to the one-shot form.

// BlockVol is one z-slab in flight through a stream: the slab's
// coordinates in the conceptual volume plus the backing data for planes
// [B.Z0, B.Z1). V may be a zero-copy view into a larger volume (Slab)
// or an arena-backed buffer a stage filled; Release returns it to its
// arena, and is a no-op for views and plain allocations.
type BlockVol struct {
	B Block
	V *V3

	arena *Arena
}

// Release returns the block's buffer to the arena it came from. The
// caller must not touch V afterwards. Safe to call on views and
// zero-value blocks.
func (bv *BlockVol) Release() {
	if bv.arena != nil {
		bv.arena.Put(bv.V)
		bv.arena, bv.V = nil, nil
	}
}

// Stream is a pull-based sequence of blocks. Next returns the next
// block and true, or a zero block and false after the last one.
// Streams are single-consumer: callers that fan out to a worker pool
// must serialize Next (ForEach does).
type Stream interface {
	Next() (BlockVol, bool)
}

// sliceStream yields a fixed set of prepared blocks.
type sliceStream struct {
	blocks []BlockVol
	next   int
}

func (s *sliceStream) Next() (BlockVol, bool) {
	if s.next >= len(s.blocks) {
		return BlockVol{}, false
	}
	bv := s.blocks[s.next]
	s.next++
	return bv, true
}

// Slab returns a zero-copy view of the z-slab [b.Z0,b.Z1): a V3 that
// shares v's backing array. Mutating the view mutates v. A view must
// never be Put into an arena while v is live.
func (v *V3) Slab(b Block) *V3 {
	plane := v.NX * v.NY
	return &V3{NX: v.NX, NY: v.NY, NZ: b.Z1 - b.Z0, Data: v.Data[b.Z0*plane : b.Z1*plane : b.Z1*plane]}
}

// Slabs streams v as zero-copy tile views of at most rows z-planes
// each. The blocks carry v's data; nothing is copied and Release is a
// no-op.
func Slabs(v *V3, rows int) Stream {
	tiles := TileZ(v.NZ, rows)
	blocks := make([]BlockVol, len(tiles))
	for i, t := range tiles {
		blocks[i] = BlockVol{B: t, V: v.Slab(t)}
	}
	return &sliceStream{blocks: blocks}
}

// Tiles streams bare block descriptors (V == nil) covering nz z-planes
// in tiles of at most rows planes: the source for stages that index a
// shared input themselves, like the imaging kernels' tiled writers.
func Tiles(nz, rows int) Stream {
	tiles := TileZ(nz, rows)
	blocks := make([]BlockVol, len(tiles))
	for i, t := range tiles {
		blocks[i] = BlockVol{B: t}
	}
	return &sliceStream{blocks: blocks}
}

// ResolveWorkers maps a workers option to an effective pool size:
// non-positive means GOMAXPROCS, anything else is itself.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach is the parallel consumption stage: it pulls every block from
// src and calls fn once per block on a pool of workers goroutines
// (<=0 = GOMAXPROCS). Each block is delivered to exactly one call; fn
// must confine its writes to per-block-disjoint state so that, like the
// tiled kernels, the result is bit-identical for any worker count. It
// returns ctx.Err() if the context is canceled; workers stop pulling at
// the next block boundary, so a nonzero error means the downstream
// state may be incomplete and must be discarded.
func ForEach(ctx context.Context, src Stream, workers int, fn func(BlockVol)) error {
	workers = ResolveWorkers(workers)
	if workers == 1 {
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			bv, ok := src.Next()
			if !ok {
				return nil
			}
			fn(bv)
		}
	}
	var mu sync.Mutex // serializes Next: Stream is single-consumer
	pull := func() (BlockVol, bool) {
		mu.Lock()
		defer mu.Unlock()
		return src.Next()
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				bv, ok := pull()
				if !ok {
					return
				}
				fn(bv)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Map is the transform stage: it pulls blocks from src and applies fn
// to each on a worker pool, producing one output block per input block
// in an arena-backed buffer of the same shape. fn receives the input
// block and the output buffer (contents arbitrary — write every voxel)
// and the input is released afterwards if it is arena-backed. The
// returned stream yields output blocks in ascending Z0 order as they
// complete, so a downstream Collect assembles exactly the volume the
// materialized form would produce; the consumer owns each block and
// should Release it when done. Map processes ahead of the consumer by
// at most the worker count, so a pipeline's footprint is O(workers)
// blocks regardless of stream length.
func Map(ctx context.Context, src Stream, arena *Arena, workers int, fn func(in BlockVol, out *V3)) Stream {
	workers = ResolveWorkers(workers)
	out := make(chan BlockVol)
	go func() {
		defer close(out)
		// Completed blocks are emitted in input order: a small reorder
		// buffer keyed by sequence number keeps the sink sequential
		// while the stage itself runs unordered.
		var emitMu sync.Mutex
		pending := make(map[int]BlockVol)
		nextEmit := 0
		emit := func(seq int, bv BlockVol) {
			emitMu.Lock()
			pending[seq] = bv
			var ready []BlockVol
			for {
				b, ok := pending[nextEmit]
				if !ok {
					break
				}
				delete(pending, nextEmit)
				nextEmit++
				ready = append(ready, b)
			}
			emitMu.Unlock()
			for _, b := range ready {
				select {
				case out <- b:
				case <-ctx.Done():
					b.Release()
				}
			}
		}
		var seq atomic.Int64
		var mu sync.Mutex
		pull := func() (BlockVol, int, bool) {
			mu.Lock()
			defer mu.Unlock()
			bv, ok := src.Next()
			if !ok {
				return BlockVol{}, 0, false
			}
			return bv, int(seq.Add(1)) - 1, true
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					in, sq, ok := pull()
					if !ok {
						return
					}
					o := arena.Get(in.V.NX, in.V.NY, in.V.NZ)
					fn(in, o)
					in.Release()
					emit(sq, BlockVol{B: in.B, V: o, arena: arena})
				}
			}()
		}
		wg.Wait()
	}()
	return &chanStream{ch: out}
}

// OnDrained wraps src so that fn runs exactly once, when src reports
// exhaustion — the hook stages use to return scratch buffers their
// blocks were computed from.
func OnDrained(src Stream, fn func()) Stream {
	return &drainHookStream{src: src, fn: fn}
}

type drainHookStream struct {
	src Stream
	fn  func()
}

func (s *drainHookStream) Next() (BlockVol, bool) {
	bv, ok := s.src.Next()
	if !ok && s.fn != nil {
		s.fn()
		s.fn = nil
	}
	return bv, ok
}

// chanStream adapts a channel of blocks to the Stream interface.
type chanStream struct{ ch <-chan BlockVol }

func (s *chanStream) Next() (BlockVol, bool) {
	bv, ok := <-s.ch
	return bv, ok
}

// Collect is the materializing sink: it drains src into a fresh
// nx×ny×nz volume, copying each block into its z-slab and releasing
// it. Blocks must tile [0,nz) disjointly.
func Collect(nx, ny, nz int, src Stream) *V3 {
	out := New3(nx, ny, nz)
	for {
		bv, ok := src.Next()
		if !ok {
			return out
		}
		InsertBlock(out, bv.B, bv.V)
		bv.Release()
	}
}

// Drain pulls and releases every remaining block of src: the cleanup
// path when a pipeline aborts mid-stream, so arena-backed blocks are
// not stranded.
func Drain(src Stream) {
	for {
		bv, ok := src.Next()
		if !ok {
			return
		}
		bv.Release()
	}
}
