package volume

import (
	"sync"
	"sync/atomic"
)

// Arena is a sync.Pool-backed scratch allocator for volumes: the shared
// buffer supply behind the streaming pipelines. Stages Get a volume,
// fill every voxel, hand it downstream, and the consumer returns it
// with Put once the data has been reduced or written out — so a
// pipeline's steady-state footprint is its live blocks, not one fresh
// allocation per stage per call.
//
// Volumes returned by Get have arbitrary contents (use GetZeroed when
// the algorithm reads before writing). A volume whose backing array is
// large enough is reshaped rather than reallocated, so one arena serves
// mixed geometries. All methods are safe for concurrent use, and a nil
// *Arena degrades to plain allocation (Get == New3, Put == no-op), so
// APIs can take an optional arena without branching.
type Arena struct {
	pool sync.Pool

	gets   atomic.Int64
	puts   atomic.Int64
	misses atomic.Int64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Scratch is the process-wide shared arena: the imaging kernels, the
// synthetic generators, and the reference pipelines all recycle their
// intermediates through it, so a sweep's cells reuse each other's
// buffers instead of each allocating a private working set.
var Scratch = NewArena()

// Get returns an nx×ny×nz volume whose contents are arbitrary — the
// caller must write every voxel before reading any. On a nil arena it
// simply allocates.
func (a *Arena) Get(nx, ny, nz int) *V3 {
	if a == nil {
		return New3(nx, ny, nz)
	}
	a.gets.Add(1)
	if v, _ := a.pool.Get().(*V3); v != nil {
		if v.NX == nx && v.NY == ny && v.NZ == nz {
			return v
		}
		// Wrong shape: reshape the backing array when it is big enough.
		if cap(v.Data) >= nx*ny*nz {
			return &V3{NX: nx, NY: ny, NZ: nz, Data: v.Data[:nx*ny*nz]}
		}
	}
	a.misses.Add(1)
	return New3(nx, ny, nz)
}

// GetZeroed is Get with every voxel set to zero, matching New3's
// contract for algorithms that accumulate into the buffer.
func (a *Arena) GetZeroed(nx, ny, nz int) *V3 {
	v := a.Get(nx, ny, nz)
	if a != nil {
		clear(v.Data)
	}
	return v
}

// Put returns a volume to the arena for reuse. The caller must not
// touch v afterwards: another goroutine may already be filling it.
// Put(nil) and Put on a nil arena are no-ops. Never Put a volume whose
// Data is shared with a retained volume (a Slab view, a Select alias):
// the next Get would scribble over live results.
func (a *Arena) Put(v *V3) {
	if a == nil || v == nil {
		return
	}
	a.puts.Add(1)
	a.pool.Put(v)
}

// ArenaStats reports arena traffic: Gets/Puts are calls, Misses the
// Gets that had to allocate because the pool was empty or too small.
// Steady-state pipelines should show Misses ≪ Gets.
type ArenaStats struct {
	Gets, Puts, Misses int64
}

// Stats returns a snapshot of the arena's counters (zero on nil).
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return ArenaStats{Gets: a.gets.Load(), Puts: a.puts.Load(), Misses: a.misses.Load()}
}
