package volume

import (
	"testing"
	"testing/quick"
)

func TestIndexRoundTrip(t *testing.T) {
	v := New3(3, 4, 5)
	n := 0
	for z := 0; z < 5; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 3; x++ {
				if v.Idx(x, y, z) != n {
					t.Fatalf("Idx(%d,%d,%d)=%d, want %d", x, y, z, v.Idx(x, y, z), n)
				}
				n++
			}
		}
	}
	v.Set(2, 3, 4, 7)
	if v.At(2, 3, 4) != 7 {
		t.Error("Set/At mismatch")
	}
	if !v.In(0, 0, 0) || v.In(3, 0, 0) || v.In(0, -1, 0) {
		t.Error("In() bounds wrong")
	}
}

func TestSummarize(t *testing.T) {
	v := New3(2, 2, 1)
	copy(v.Data, []float64{1, 2, 3, 4})
	s := v.Summarize()
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.NonZero != 4 {
		t.Errorf("stats %+v", s)
	}
	if s.Std < 1.11 || s.Std > 1.12 { // sqrt(1.25)
		t.Errorf("std %v", s.Std)
	}
}

func TestMean3(t *testing.T) {
	a := New3(2, 1, 1)
	b := New3(2, 1, 1)
	a.Data[0], a.Data[1] = 2, 4
	b.Data[0], b.Data[1] = 4, 8
	m := Mean3([]*V3{a, b})
	if m.Data[0] != 3 || m.Data[1] != 6 {
		t.Errorf("mean %v", m.Data)
	}
}

func TestApplyMask(t *testing.T) {
	v := New3(2, 1, 1)
	v.Data[0], v.Data[1] = 5, 7
	mask := New3(2, 1, 1)
	mask.Data[1] = 1
	v.ApplyMask(mask)
	if v.Data[0] != 0 || v.Data[1] != 7 {
		t.Errorf("mask applied wrong: %v", v.Data)
	}
}

func TestV4Select(t *testing.T) {
	vols := []*V3{New3(1, 1, 1), New3(1, 1, 1), New3(1, 1, 1)}
	for i, v := range vols {
		v.Data[0] = float64(i)
	}
	v4 := New4(vols)
	sel := v4.Select([]bool{true, false, true})
	if sel.T() != 2 || sel.Vols[0].Data[0] != 0 || sel.Vols[1].Data[0] != 2 {
		t.Errorf("select wrong")
	}
	if v4.Bytes() != 3*8 {
		t.Errorf("bytes %d", v4.Bytes())
	}
}

func TestBlocksPartitionProperty(t *testing.T) {
	// Property: Blocks(nz, n) tiles [0,nz) exactly, in order, no overlap.
	f := func(nzRaw, nRaw uint8) bool {
		nz := int(nzRaw%40) + 1
		n := int(nRaw%10) + 1
		bs := Blocks(nz, n)
		next := 0
		for _, b := range bs {
			if b.Z0 != next || b.Z1 <= b.Z0 {
				return false
			}
			next = b.Z1
		}
		return next == nz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTileZPartitionProperty(t *testing.T) {
	// Property: TileZ(nz, rows) tiles [0,nz) exactly, in order, no
	// overlap, and every tile but the last has exactly rows planes.
	f := func(nzRaw, rowsRaw uint8) bool {
		nz := int(nzRaw%40) + 1
		rows := int(rowsRaw % 8) // includes 0, which must behave as 1
		ts := TileZ(nz, rows)
		wantRows := rows
		if wantRows <= 0 {
			wantRows = 1
		}
		next := 0
		for i, b := range ts {
			if b.Z0 != next || b.Z1 <= b.Z0 {
				return false
			}
			if i < len(ts)-1 && b.Z1-b.Z0 != wantRows {
				return false
			}
			if b.Z1-b.Z0 > wantRows {
				return false
			}
			next = b.Z1
		}
		return next == nz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExtractInsertBlockRoundTrip(t *testing.T) {
	v := New3(3, 3, 6)
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	out := New3(3, 3, 6)
	for _, b := range Blocks(6, 4) {
		InsertBlock(out, b, ExtractBlock(v, b))
	}
	if MaxAbsDiff(v, out) != 0 {
		t.Error("extract/insert round trip lost data")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New3(2, 1, 1)
	b := New3(2, 1, 1)
	b.Data[1] = -3
	if d := MaxAbsDiff(a, b); d != 3 {
		t.Errorf("diff %v", d)
	}
}
