package core

import (
	"context"
	"math"
	"strings"
	"testing"
)

// TestAllExperimentsQuickProfile runs every registered experiment under
// the quick profile and validates its shape check — the repository's
// central regression test: it asserts that the qualitative findings of
// every paper table and figure still hold. Each experiment runs exactly
// once, in parallel with the others (the simulations are deterministic
// and share no mutable state), and all of its checks reuse that one
// run's table.
func TestAllExperimentsQuickProfile(t *testing.T) {
	p := Quick()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := e.Run(context.Background(), p)
			if err != nil {
				t.Fatalf("%s: run: %v", e.ID, err)
			}
			if tab == nil || len(tab.RowNames) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			if err := e.Check(tab); err != nil {
				t.Errorf("%s: shape check failed: %v\n%s", e.ID, err, tab.Render())
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl-dask-fusion", "abl-dask-stealing", "abl-myria-pushdown",
		"abl-spark-pytax",
		"fig10a", "fig10b", "fig10c", "fig10d", "fig10e", "fig10f",
		"fig10g", "fig10h", "fig11", "fig12a", "fig12b", "fig12c",
		"fig12d", "fig13", "fig14", "fig15", "ftastro", "ftneuro",
		"sec531scidb", "sec531tf", "sec533", "table1",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil || e.Check == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig11"); err != nil {
		t.Errorf("Lookup(fig11): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) should fail")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("T", "s", []string{"a", "b"}, []string{"1", "2"})
	tab.Set("a", "1", 1.5)
	tab.Set("b", "2", 2000)
	out := tab.Render()
	for _, want := range []string{"T", "[s]", "1.50", "2000", "NA"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := tab.Get("a", "2"); !math.IsNaN(got) {
		t.Errorf("unset cell = %v, want NaN", got)
	}
}
