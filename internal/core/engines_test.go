package core

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"imagebench/internal/engine"
)

// readGoldenRows returns the committed row labels of one golden file —
// the source of truth the registry-derived row sets are checked
// against.
func readGoldenRows(t *testing.T, id string) []string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var tab Table
	if err := json.Unmarshal(b, &tab); err != nil {
		t.Fatal(err)
	}
	return tab.RowNames
}

// TestFaultCapableSetMatchesGoldenRows pins the registry against the
// committed artifacts: the engines claiming CapFaultTolerance, in
// paper order, are exactly the row labels of the ft* golden files. A
// new engine that registers the capability without a golden refresh —
// or a rank shuffle that silently reorders rows — fails here with a
// readable diff instead of inside a byte comparison.
func TestFaultCapableSetMatchesGoldenRows(t *testing.T) {
	ftEngines, err := Quick().engines(engine.CapFaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := engine.Names(ftEngines), readGoldenRows(t, "ftneuro"); !reflect.DeepEqual(got, want) {
		t.Errorf("Supporting(CapFaultTolerance) = %v, golden ftneuro rows = %v", got, want)
	}
	astroFT, err := ftAstroEngines(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := engine.Names(astroFT), readGoldenRows(t, "ftastro"); !reflect.DeepEqual(got, want) {
		t.Errorf("fault∩astro engines = %v, golden ftastro rows = %v", got, want)
	}
}

// TestEndToEndSetsMatchGoldenRows does the same pinning for the
// headline comparison sets and the variant-expanded rows.
func TestEndToEndSetsMatchGoldenRows(t *testing.T) {
	cases := []struct {
		golden string
		rows   func() ([]string, error)
	}{
		{"fig10c", func() ([]string, error) {
			engs, err := Quick().engines(engine.CapNeuroE2E)
			return engine.Names(engs), err
		}},
		{"fig10d", func() ([]string, error) {
			engs, err := Quick().engines(engine.CapAstroE2E)
			return engine.Names(engs), err
		}},
		{"fig11", func() ([]string, error) {
			rows, err := ingestRows(Quick())
			if err != nil {
				return nil, err
			}
			var names []string
			for _, r := range rows {
				names = append(names, r.label)
			}
			return names, nil
		}},
		{"fig12d", func() ([]string, error) {
			rows, err := coaddRows(Quick())
			if err != nil {
				return nil, err
			}
			var names []string
			for _, r := range rows {
				names = append(names, r.label)
			}
			return names, nil
		}},
	}
	for _, c := range cases {
		got, err := c.rows()
		if err != nil {
			t.Fatalf("%s: %v", c.golden, err)
		}
		if want := readGoldenRows(t, c.golden); !reflect.DeepEqual(got, want) {
			t.Errorf("%s registry rows = %v, golden rows = %v", c.golden, got, want)
		}
	}
}

// TestSystemsFilter exercises the -systems allowlist: rows shrink to
// the allowed engines, and an experiment whose engine set empties
// reports engine.ErrUnsupported rather than an ad-hoc failure.
func TestSystemsFilter(t *testing.T) {
	p := Quick().Apply(Overrides{Systems: []string{"Spark", "Myria"}})
	e, err := Lookup("fig10c")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Myria", "Spark"}; !reflect.DeepEqual(tab.RowNames, want) {
		t.Errorf("filtered fig10c rows = %v, want %v", tab.RowNames, want)
	}

	// TensorFlow runs no end-to-end neuro sweep: the filter empties the
	// set and the typed unsupported error surfaces.
	tfOnly := Quick().Apply(Overrides{Systems: []string{"TensorFlow"}})
	if _, err := e.Run(context.Background(), tfOnly); !errors.Is(err, engine.ErrUnsupported) {
		t.Errorf("fig10c under TensorFlow-only filter: err = %v, want ErrUnsupported", err)
	}

	// Per-engine tuning studies skip the same way.
	fig13, err := Lookup("fig13")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fig13.Run(context.Background(), Quick().Apply(Overrides{Systems: []string{"Spark"}})); !errors.Is(err, engine.ErrUnsupported) {
		t.Errorf("fig13 under Spark-only filter: err = %v, want ErrUnsupported", err)
	}
}

// TestSystemsFilterFingerprint: a filtered profile must never share a
// result-cache identity with the unfiltered one.
func TestSystemsFilterFingerprint(t *testing.T) {
	base := Quick()
	filtered := base.Apply(Overrides{Systems: []string{"Spark"}})
	if filtered.Name != "quick+systems=Spark" {
		t.Errorf("derived name = %q", filtered.Name)
	}
	if filtered.Fingerprint() == base.Fingerprint() {
		t.Error("systems filter did not change the profile fingerprint")
	}
}

// TestOverridesSystemsValidate covers the systems axis validation.
func TestOverridesSystemsValidate(t *testing.T) {
	if err := (Overrides{Systems: []string{"Spark", "Myria"}}).Validate(); err != nil {
		t.Errorf("valid systems override rejected: %v", err)
	}
	if err := (Overrides{Systems: []string{}}).Validate(); err == nil {
		t.Error("empty systems list accepted")
	}
	err := (Overrides{Systems: []string{"Flink"}}).Validate()
	if err == nil {
		t.Error("unknown engine name accepted")
	}
	if !errors.Is(err, engine.ErrUnsupported) {
		t.Errorf("unknown engine error %v should wrap ErrUnsupported", err)
	}
	o := Overrides{Systems: []string{"Dask"}}
	if got := o.Label(); got != "systems=Dask" {
		t.Errorf("label = %q", got)
	}
	if o.IsZero() {
		t.Error("systems override reported as zero")
	}
}

// TestRunClusterMemoryFloor pins the hoisted cluster-sizing rule at the
// point of use: the end-to-end cluster's per-node memory is
// max(default, engine.MemFloor). Before the hoist the 10×/nodes floor
// was duplicated in neuroEndToEnd and astroEndToEnd; this locks the
// single shared path.
func TestRunClusterMemoryFloor(t *testing.T) {
	def := newCluster(4).Config().MemPerNode

	// A small input: the floor is below the default and must not lower it.
	small := runCluster(4, def/100)
	if got := small.Config().MemPerNode; got != def {
		t.Errorf("small input: MemPerNode = %d, want default %d", got, def)
	}

	// A large input: the floor takes over at exactly 10×input/nodes.
	input := def * 2 // floor = 10*2*def/4 = 5*def
	big := runCluster(4, input)
	if got, want := big.Config().MemPerNode, engine.MemFloor(input, 4); got != want {
		t.Errorf("large input: MemPerNode = %d, want floor %d", got, want)
	}
	if want := 5 * def; engine.MemFloor(input, 4) != want {
		t.Errorf("MemFloor(%d, 4) = %d, want %d", input, engine.MemFloor(input, 4), want)
	}
}
