package core

import (
	"context"
	"fmt"

	"imagebench/internal/astro"
	"imagebench/internal/neuro"
	"imagebench/internal/vtime"
)

// Section 5.3.1 tuning studies that are described in text rather than
// figures: TensorFlow's manual work assignment and SciDB's chunk-size
// sensitivity. Per-engine tuning studies register through
// registerForEngine, so they follow their engine in and out of the
// registry and respect the profile's Systems filter.

func init() {
	registerForEngine("TensorFlow", &Experiment{
		ID:    "sec531tf",
		Title: "TensorFlow: volume-to-worker assignments (filter step)",
		Paper: "Different manual assignments of image volumes to workers differ by ~2× in total runtime.",
		Run:   runSec531TF,
		Check: func(t *Table) error {
			col := t.ColNames[0]
			return wantRatioAtLeast("worst ≥ 1.5× best",
				t.Get("blocked", col), t.Get("round-robin", col), 1.5)
		},
	})

	registerForEngine("SciDB", &Experiment{
		ID:    "sec531scidb",
		Title: "SciDB: chunk-size sensitivity (co-addition)",
		Paper: "[1000×1000] chunks are best; [500×500] is ~3× slower (per-chunk overhead), [1500×1500] +22%, [2000×2000] +55%.",
		Run:   runSec531SciDB,
		Check: func(t *Table) error {
			col := t.ColNames[0]
			best := t.Get("1000x1000", col)
			if err := wantRatioAtLeast("500² ≥ 2× slower", t.Get("500x500", col), best, 2); err != nil {
				return err
			}
			if err := wantRatioAtLeast("1500² slower", t.Get("1500x1500", col), best, 1.05); err != nil {
				return err
			}
			if err := wantRatioAtLeast("2000² slower still", t.Get("2000x2000", col), t.Get("1500x1500", col), 1.02); err != nil {
				return err
			}
			return nil
		},
	})
}

func runSec531TF(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("TensorFlow"); err != nil {
		return nil, err
	}
	n := p.NeuroSubjects[len(p.NeuroSubjects)-1]
	w, err := neuroWorkload(p, n)
	if err != nil {
		return nil, err
	}
	nodes := defaultNodes(p)
	nItems := n * p.NeuroT
	strategies := map[string][]int{
		"round-robin":  nil, // engine default
		"half-devices": assignment(nItems, nodes, func(i int) int { return i % maxInt(1, nodes/2) }),
		"blocked":      assignment(nItems, nodes, func(i int) int { return i * nodes / nItems }),
	}
	rows := []string{"round-robin", "half-devices", "blocked"}
	t := NewTable(fmt.Sprintf("Sec 5.3.1: TensorFlow assignments, filter step (%d subjects)", n), "virtual s", rows, []string{"runtime"})
	for _, name := range rows {
		cl := newCluster(nodes)
		d, err := neuro.TFFilterTime(w, cl, nil, strategies[name])
		if err != nil {
			return nil, fmt.Errorf("tf %s: %w", name, err)
		}
		t.Set(name, "runtime", seconds(vtime.Duration(d)))
	}
	return t, nil
}

func assignment(n, devices int, f func(i int) int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = f(i) % devices
	}
	return out
}

// chunk edge → paper-scale bytes: edge² pixels × 3 planes × 4 bytes.
func chunkBytesForEdge(edge int) int64 { return int64(edge) * int64(edge) * 3 * 4 }

func runSec531SciDB(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("SciDB"); err != nil {
		return nil, err
	}
	n := p.AstroVisits[len(p.AstroVisits)-1]
	w, err := astroWorkload(p, n)
	if err != nil {
		return nil, err
	}
	stacks, err := astro.BuildStacks(w)
	if err != nil {
		return nil, err
	}
	edges := []int{500, 1000, 1500, 2000}
	var rows []string
	for _, e := range edges {
		rows = append(rows, fmt.Sprintf("%dx%d", e, e))
	}
	t := NewTable(fmt.Sprintf("Sec 5.3.1: SciDB chunk sizes (%d visits)", n), "virtual s", rows, []string{"runtime"})
	for i, e := range edges {
		cl := newCluster(defaultNodes(p))
		dur, err := astro.SciDBCoaddChunkTime(w, cl, nil, stacks, chunkBytesForEdge(e))
		if err != nil {
			return nil, fmt.Errorf("scidb chunk %d: %w", e, err)
		}
		t.Set(rows[i], "runtime", seconds(dur))
	}
	return t, nil
}
