package core

import (
	"context"
	"fmt"
	"math"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/myria"
	"imagebench/internal/neuro"
	"imagebench/internal/vtime"
)

// Figures 13–15 and the Section 5.3 tuning studies. These are
// per-engine tuning sweeps (one engine, one knob), so they register
// through registerForEngine and call the engine's own entry points
// directly — the cross-engine comparisons live in fig10–fig12/ft*.

func init() {
	registerForEngine("Myria", &Experiment{
		ID:    "fig13",
		Title: "Myria: workers per node (neuroscience, largest dataset)",
		Paper: "4 workers per 8-core node is optimal; 1–2 under-utilize, 8 contend for memory/CPU/disk.",
		Run:   runFig13,
		Check: func(t *Table) error {
			col := t.ColNames[0]
			best := t.Get("4", col)
			for _, w := range []string{"1", "2", "8"} {
				if err := wantLess("4 workers beat "+w, best, t.Get(w, col)); err != nil {
					return err
				}
			}
			return nil
		},
	})

	registerForEngine("Spark", &Experiment{
		ID:    "fig14",
		Title: "Spark: input data partitions (neuroscience, 1 subject)",
		Paper: "Dramatic improvement from 1 to ~cluster-slot partitions; ≥50% gain from 16 to 97; flat beyond 128 (= 16 nodes × 8 cores).",
		Run:   runFig14,
		Check: checkFig14,
	})

	registerForEngine("Myria", &Experiment{
		ID:    "fig15",
		Title: "Myria: memory-management strategies (astronomy)",
		Paper: "Pipelined fastest (8–11% over materialized, 15–23% over multi-query) while data fits; fails with OOM under pressure, where materialized wins; at the largest scale only chunked multi-query execution survives.",
		Run:   runFig15,
		Check: checkFig15,
	})

	registerForEngine("Spark", &Experiment{
		ID:    "sec533",
		Title: "Spark: input caching (neuroscience end-to-end)",
		Paper: "Caching the input RDD yields a consistent ~7–8% improvement across input sizes.",
		Run:   runSec533,
		Check: checkSec533,
	})
}

func runFig13(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Myria"); err != nil {
		return nil, err
	}
	// The sweep only makes sense when there is enough work to saturate
	// 8 workers per node: ensure at least 2 volumes per worker slot.
	nodes := defaultNodes(p)
	n := p.NeuroSubjects[len(p.NeuroSubjects)-1]
	if minSubj := (2*nodes*8 + p.NeuroT - 1) / p.NeuroT; n < minSubj {
		n = minSubj
	}
	w, err := neuroWorkload(p, n)
	if err != nil {
		return nil, err
	}
	workerCounts := []string{"1", "2", "4", "8"}
	t := NewTable(fmt.Sprintf("Fig 13: Myria workers per node (%d subjects)", n),
		"virtual s", workerCounts, []string{"runtime"})
	for _, wc := range workerCounts {
		cl := newCluster(nodes)
		_, err := neuro.RunMyria(w, cl, nil, neuro.MyriaOpts{WorkersPerNode: parseInt(wc)})
		if err != nil {
			return nil, fmt.Errorf("myria %s workers: %w", wc, err)
		}
		t.Set(wc, "runtime", seconds(vtime.Duration(cl.Makespan())))
	}
	return t, nil
}

func runFig14(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Spark"); err != nil {
		return nil, err
	}
	w, err := neuroWorkload(p, 1)
	if err != nil {
		return nil, err
	}
	parts := []int{1, 4, 16, 32, 64, 97, 128, 256}
	if p.Name == "quick" {
		parts = []int{1, 4, 16, 32, 64}
	}
	var rows []string
	for _, n := range parts {
		rows = append(rows, colLabel(n))
	}
	t := NewTable("Fig 14: Spark input partitions (1 subject)", "virtual s", rows, []string{"runtime"})
	for _, n := range parts {
		cl := newCluster(defaultNodes(p))
		_, err := neuro.RunSpark(w, cl, nil, neuro.SparkOpts{Partitions: n})
		if err != nil {
			return nil, fmt.Errorf("spark %d partitions: %w", n, err)
		}
		t.Set(colLabel(n), "runtime", seconds(vtime.Duration(cl.Makespan())))
	}
	return t, nil
}

func checkFig14(t *Table) error {
	one := t.Get("1", "runtime")
	sixteen := t.Get("16", "runtime")
	if err := wantRatioAtLeast("1 partition ≫ 16 partitions", one, sixteen, 1.5); err != nil {
		return err
	}
	// More partitions than tasks×slots stops helping: the last two sweep
	// points are within 20% of each other.
	last := t.RowNames[len(t.RowNames)-1]
	prev := t.RowNames[len(t.RowNames)-2]
	return wantWithin("flat tail", t.Get(last, "runtime"), t.Get(prev, "runtime"), 0.2)
}

var fig15Modes = []string{"pipelined", "materialized", "multi-query"}

func runFig15(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Myria"); err != nil {
		return nil, err
	}
	t := NewTable("Fig 15: Myria memory-management strategies (astronomy)", "virtual s",
		fig15Modes, labels(p.AstroVisits))
	nodes := defaultNodes(p)
	// Shrink per-node memory so the largest sweep point exceeds what
	// pipelined execution can hold (the paper grows data against fixed
	// 61 GB nodes; we scale memory against the sweep instead).
	maxVisits := p.AstroVisits[len(p.AstroVisits)-1]
	// Probe the pipelined peak memory at the smallest and largest sweep
	// points with an effectively unlimited budget, then set the node
	// budget between them: small inputs fit, the largest does not — the
	// same pressure regime the paper creates by growing data against
	// fixed 61 GB nodes.
	probe := func(visits int) (int64, error) {
		w, err := astroWorkload(p, visits)
		if err != nil {
			return 0, err
		}
		cfg := cluster.DefaultConfig()
		cfg.Nodes = nodes
		cfg.MemPerNode = 1 << 50
		cl := cluster.New(cfg)
		if _, err := astro.RunMyria(w, cl, nil, astro.MyriaOpts{}); err != nil {
			return 0, err
		}
		return cl.MaxHighWater(), nil
	}
	hwFirst, err := probe(p.AstroVisits[0])
	if err != nil {
		return nil, err
	}
	hwLast, err := probe(maxVisits)
	if err != nil {
		return nil, err
	}
	memPerNode := (hwFirst + hwLast) / 2
	for _, n := range p.AstroVisits {
		w, err := astroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		for _, mode := range fig15Modes {
			cfg := cluster.DefaultConfig()
			cfg.Nodes = nodes
			cfg.MemPerNode = memPerNode
			cl := cluster.New(cfg)
			opts := astro.MyriaOpts{}
			switch mode {
			case "materialized":
				opts.Mode = myria.Materialized
			case "multi-query":
				opts.Mode = myria.MultiQuery
				opts.ChunkVisits = maxInt(1, n/4)
			}
			_, err := astro.RunMyria(w, cl, nil, opts)
			if err != nil {
				if errorsIsOOM(err) {
					// FAIL cell, like the paper's missing bars.
					continue
				}
				return nil, fmt.Errorf("myria %s at %d visits: %w", mode, n, err)
			}
			t.Set(mode, colLabel(n), seconds(vtime.Duration(cl.Makespan())))
		}
	}
	t.Notes = append(t.Notes, "NA = query failed with out-of-memory (pipelined under pressure)")
	return t, nil
}

func errorsIsOOM(err error) bool {
	for e := err; e != nil; {
		if e == cluster.ErrOOM {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func checkFig15(t *Table) error {
	first := t.ColNames[0]
	last := t.ColNames[len(t.ColNames)-1]
	// When memory is plentiful, pipelined is fastest and multi-query
	// slowest.
	if err := wantLess("pipelined < materialized (small)", t.Get("pipelined", first), t.Get("materialized", first)); err != nil {
		return err
	}
	if err := wantLess("materialized < multi-query (small)", t.Get("materialized", first), t.Get("multi-query", first)); err != nil {
		return err
	}
	// Under pressure, pipelined fails while materialized completes.
	if !math.IsNaN(t.Get("pipelined", last)) {
		return fmt.Errorf("pipelined should OOM at %s visits", last)
	}
	if math.IsNaN(t.Get("materialized", last)) {
		return fmt.Errorf("materialized should survive at %s visits", last)
	}
	if math.IsNaN(t.Get("multi-query", last)) {
		return fmt.Errorf("multi-query should survive at %s visits", last)
	}
	return nil
}

func runSec533(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Spark"); err != nil {
		return nil, err
	}
	t := NewTable("Sec 5.3.3: Spark input caching", "virtual s",
		[]string{"cached", "uncached"}, labels(p.NeuroSubjects))
	for _, n := range p.NeuroSubjects {
		w, err := neuroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		for _, variant := range []string{"cached", "uncached"} {
			cl := newCluster(defaultNodes(p))
			_, err := neuro.RunSpark(w, cl, nil, neuro.SparkOpts{
				Partitions: cl.Workers(),
				CacheInput: variant == "cached",
			})
			if err != nil {
				return nil, fmt.Errorf("spark %s at %d subjects: %w", variant, n, err)
			}
			t.Set(variant, colLabel(n), seconds(vtime.Duration(cl.Makespan())))
		}
	}
	return t, nil
}

func checkSec533(t *Table) error {
	// Caching wins consistently, by a modest margin.
	for _, c := range t.ColNames {
		if err := wantLess("cached < uncached at "+c, t.Get("cached", c), t.Get("uncached", c)); err != nil {
			return err
		}
		gain := (t.Get("uncached", c) - t.Get("cached", c)) / t.Get("uncached", c)
		if gain > 0.5 {
			return fmt.Errorf("caching gain %.0f%% at %s subjects implausibly large", gain*100, c)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ensure cost import is used even if future refactors drop other uses.
var _ = cost.Default
