package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// FuzzTableJSONRoundTrip fuzzes the Table wire format (serialize.go):
// any JSON that Unmarshal accepts must re-marshal successfully, survive
// a second decode, and stabilize — decode(encode(t)) is byte-identical
// to encode(t) and cell-identical under NaN↔null equivalence. This is
// the invariant the result cache, the job journal, and the golden files
// all lean on.
func FuzzTableJSONRoundTrip(f *testing.F) {
	// Seed corpus: hand-written wire forms covering NA cells, notes,
	// empty tables, and degenerate shapes...
	seeds := []string{
		`{"title":"t","unit":"virtual s","columns":["1","2"],"rows":["a"],"cells":[[1.5,null]]}`,
		`{"title":"","unit":"","columns":[],"rows":[],"cells":[]}`,
		`{"title":"n","unit":"GB","columns":["x"],"rows":["r1","r2"],"cells":[[null],[2e10]],"notes":["a note",""]}`,
		`{"columns":null,"rows":null,"cells":null}`,
		`{"title":"mismatch","columns":["a","b"],"rows":["r"],"cells":[[1]]}`,
		`[1,2,3]`,
		`{"cells":[[1e999]]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// ...plus a real experiment table, so the corpus always contains
	// the exact shape production emits.
	real := NewTable("seed", "virtual s", []string{"r1", "r2"}, []string{"c1", "c2"})
	real.Set("r1", "c1", 3.25) // r2/c2 stays NaN, exercising the null path
	real.Notes = append(real.Notes, "seeded")
	if b, err := json.Marshal(real); err == nil {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var tab Table
		if err := json.Unmarshal(data, &tab); err != nil {
			t.Skip() // rejected input: not this fuzzer's concern
		}
		enc, err := json.Marshal(&tab)
		if err != nil {
			t.Fatalf("accepted input failed to re-marshal: %v\ninput: %s", err, data)
		}
		var back Table
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("own encoding rejected: %v\nencoding: %s", err, enc)
		}
		enc2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not stable:\nfirst:  %s\nsecond: %s", enc, enc2)
		}
		if !tablesEqualNaN(&tab, &back) {
			t.Fatalf("cells drifted through the round trip:\ninput: %s\nencoding: %s", data, enc)
		}
	})
}

// tablesEqualNaN compares tables treating NaN cells as equal to each
// other (reflect.DeepEqual would report NaN != NaN).
func tablesEqualNaN(a, b *Table) bool {
	if a.Title != b.Title || a.Unit != b.Unit ||
		len(a.ColNames) != len(b.ColNames) || len(a.RowNames) != len(b.RowNames) ||
		len(a.Cells) != len(b.Cells) || len(a.Notes) != len(b.Notes) {
		return false
	}
	for i := range a.ColNames {
		if a.ColNames[i] != b.ColNames[i] {
			return false
		}
	}
	for i := range a.RowNames {
		if a.RowNames[i] != b.RowNames[i] {
			return false
		}
	}
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			return false
		}
	}
	for i := range a.Cells {
		if len(a.Cells[i]) != len(b.Cells[i]) {
			return false
		}
		for j := range a.Cells[i] {
			x, y := a.Cells[i][j], b.Cells[i][j]
			if math.IsNaN(x) != math.IsNaN(y) {
				return false
			}
			if !math.IsNaN(x) && x != y {
				return false
			}
		}
	}
	return true
}
