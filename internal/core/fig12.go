package core

import (
	"context"
	"fmt"

	"imagebench/internal/astro"
	"imagebench/internal/engine"
	"imagebench/internal/vtime"
)

// Figures 12a–12d: individual step performance on the largest dataset
// (16 nodes, log scale in the paper). The step rows come from
// engine.Supporting(CapNeuroStep); the co-addition rows from
// engine.Supporting(CapAstroCoadd) expanded through each engine's
// variants (SciDB contributes its incremental-iteration bar).

func init() {
	Register(&Experiment{
		ID:    "fig12a",
		Title: "Filter step (neuroscience segmentation)",
		Paper: "Myria (pushdown) and Dask (in-memory) fastest; Spark ~10× slower (Python serialization); SciDB pays chunk reconstruction; TensorFlow orders of magnitude slower (flatten/reshape).",
		Run:   makeStepRun("filter"),
		Check: func(t *Table) error {
			last := t.ColNames[len(t.ColNames)-1]
			if err := wantLess("Myria < Spark", t.Get("Myria", last), t.Get("Spark", last)); err != nil {
				return err
			}
			if err := wantLess("Dask < Spark", t.Get("Dask", last), t.Get("Spark", last)); err != nil {
				return err
			}
			if err := wantRatioAtLeast("Spark ≫ Myria", t.Get("Spark", last), t.Get("Myria", last), 1.3); err != nil {
				return err
			}
			if err := wantRatioAtLeast("TensorFlow ≫ Spark", t.Get("TensorFlow", last), t.Get("Spark", last), 3); err != nil {
				return err
			}
			if err := wantLess("Myria < SciDB", t.Get("Myria", last), t.Get("SciDB", last)); err != nil {
				return err
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig12b",
		Title: "Mean step (neuroscience segmentation)",
		Paper: "SciDB fastest at small scale (specialized array aggregate); Spark/Myria catch up at larger scale; Dask slower at small scale (startup + work stealing); TensorFlow ~10× slower (tensor conversion).",
		Run:   makeStepRun("mean"),
		Check: func(t *Table) error {
			first := t.ColNames[0]
			last := t.ColNames[len(t.ColNames)-1]
			// SciDB's specialized aggregate wins over the other DBMS-path
			// systems at the smallest scale. (The paper also reports Dask
			// behind SciDB here, attributing it to startup overhead; our
			// per-step timing excludes session startup by construction,
			// so Dask's in-memory mean is competitive — see
			// EXPERIMENTS.md.)
			for _, sys := range t.RowNames {
				if sys == "SciDB" || sys == "Dask" {
					continue
				}
				if err := wantLess("small scale: SciDB < "+sys, t.Get("SciDB", first), t.Get(sys, first)); err != nil {
					return err
				}
			}
			if err := wantRatioAtLeast("TensorFlow ≫ Myria", t.Get("TensorFlow", last), t.Get("Myria", last), 3); err != nil {
				return err
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig12c",
		Title: "Denoise step (neuroscience)",
		Paper: "Dask, Myria, Spark, and SciDB-stream comparable (same UDF dominates); SciDB slightly slower (TSV through stream()); TensorFlow slower (conversions, no mask).",
		Run:   makeStepRun("denoise"),
		Check: func(t *Table) error {
			last := t.ColNames[len(t.ColNames)-1]
			// The UDF dominates: Dask/Myria/Spark within ~35%.
			if err := wantWithin("Dask vs Myria", t.Get("Dask", last), t.Get("Myria", last), 0.35); err != nil {
				return err
			}
			if err := wantWithin("Myria vs Spark", t.Get("Myria", last), t.Get("Spark", last), 0.35); err != nil {
				return err
			}
			// SciDB's stream() TSV tax makes it slower than Myria.
			if err := wantLess("Myria < SciDB", t.Get("Myria", last), t.Get("SciDB", last)); err != nil {
				return err
			}
			// TensorFlow is the slowest (conversion + unmasked denoise).
			for _, sys := range t.RowNames {
				if sys == "TensorFlow" || sys == "SciDB" {
					continue
				}
				if err := wantLess(sys+" < TensorFlow", t.Get(sys, last), t.Get("TensorFlow", last)); err != nil {
					return err
				}
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig12d",
		Title: "Co-addition step (astronomy)",
		Paper: "Spark and Myria comparable (UDF-internal iteration); SciDB's AQL >10× slower (per-iteration materialization); incremental iterative processing recovers ~6×.",
		Run:   runFig12d,
		Check: checkFig12d,
	})
}

// stepRow is one Fig 12a–c row: an engine's per-step measurement path.
type stepRow struct {
	name    string
	stepper engine.NeuroStepper
}

// stepRows validates the registry's step-capable engines up front (a
// capability claim without the backing interface fails before any
// simulation runs), in paper order.
func stepRows(p Profile) ([]stepRow, error) {
	engines, err := p.engines(engine.CapNeuroStep)
	if err != nil {
		return nil, err
	}
	rows := make([]stepRow, len(engines))
	for i, e := range engines {
		stepper, ok := e.(engine.NeuroStepper)
		if !ok {
			return nil, fmt.Errorf("core: engine %s claims %s but implements no step path", e.Name(), engine.CapNeuroStep)
		}
		rows[i] = stepRow{name: e.Name(), stepper: stepper}
	}
	return rows, nil
}

func makeStepRun(step string) func(context.Context, Profile) (*Table, error) {
	return func(ctx context.Context, p Profile) (*Table, error) {
		rows, err := stepRows(p)
		if err != nil {
			return nil, err
		}
		rowNames := make([]string, len(rows))
		for i, r := range rows {
			rowNames[i] = r.name
		}
		t := NewTable(fmt.Sprintf("Fig 12: %s step", step), "virtual s", rowNames, labels(p.NeuroSubjects))
		for _, n := range p.NeuroSubjects {
			w, err := neuroWorkload(p, n)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				cl := newCluster(defaultNodes(p))
				var d vtime.Duration
				err := engine.TraceRun(ctx, r.name, "neuro", cl, func() error {
					var err error
					d, err = r.stepper.NeuroStep(w, cl, nil, step)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s/%s at %d subjects: %w", r.name, step, n, err)
				}
				t.Set(r.name, colLabel(n), seconds(d))
			}
		}
		return t, nil
	}
}

// coaddRow is one Fig 12d bar: a co-addition variant of one engine.
type coaddRow struct {
	label string
	co    engine.AstroCoadder
}

// coaddRows expands the registry's coadd-capable engines into their
// variant rows, in paper order.
func coaddRows(p Profile) ([]coaddRow, error) {
	engines, err := p.engines(engine.CapAstroCoadd)
	if err != nil {
		return nil, err
	}
	var rows []coaddRow
	for _, e := range engines {
		co, ok := e.(engine.AstroCoadder)
		if !ok {
			return nil, fmt.Errorf("core: engine %s claims %s but implements no coadd path", e.Name(), engine.CapAstroCoadd)
		}
		for _, v := range co.CoaddVariants() {
			rows = append(rows, coaddRow{label: v, co: co})
		}
	}
	return rows, nil
}

func runFig12d(ctx context.Context, p Profile) (*Table, error) {
	rows, err := coaddRows(p)
	if err != nil {
		return nil, err
	}
	rowNames := make([]string, len(rows))
	for i, r := range rows {
		rowNames[i] = r.label
	}
	t := NewTable("Fig 12d: co-addition step", "virtual s", rowNames, labels(p.AstroVisits))
	for _, n := range p.AstroVisits {
		w, err := astroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		stacks, err := astro.BuildStacks(w)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			cl := newCluster(defaultNodes(p))
			var d vtime.Duration
			err := engine.TraceRun(ctx, r.label, "astro", cl, func() error {
				var err error
				d, err = r.co.AstroCoadd(w, cl, nil, stacks, r.label)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("coadd %s at %d visits: %w", r.label, n, err)
			}
			t.Set(r.label, colLabel(n), seconds(d))
		}
	}
	return t, nil
}

func checkFig12d(t *Table) error {
	last := t.ColNames[len(t.ColNames)-1]
	// Spark and Myria are in the same regime (UDF-internal iteration).
	if err := wantRatioAtLeast("Spark/Myria same regime", 3*t.Get("Myria", last), t.Get("Spark", last), 1); err != nil {
		return err
	}
	// SciDB's materialize-per-statement AQL is far behind both (the
	// paper reports >10×; the quick profile compresses the gap — see
	// EXPERIMENTS.md).
	if err := wantRatioAtLeast("SciDB ≫ Myria", t.Get("SciDB", last), t.Get("Myria", last), 4); err != nil {
		return err
	}
	if err := wantRatioAtLeast("SciDB ≫ Spark", t.Get("SciDB", last), t.Get("Spark", last), 1.8); err != nil {
		return err
	}
	if err := wantRatioAtLeast("incremental recovers ≥3×", t.Get("SciDB", last), t.Get("SciDB-incremental", last), 2.5); err != nil {
		return err
	}
	return nil
}
