package core

import (
	"fmt"

	"imagebench/internal/astro"
	"imagebench/internal/neuro"
	"imagebench/internal/vtime"
)

// Figures 12a–12d: individual step performance on the largest dataset
// (16 nodes, log scale in the paper).

var stepSystems = []string{"Dask", "Myria", "Spark", "SciDB", "TensorFlow"}

func init() {
	Register(&Experiment{
		ID:    "fig12a",
		Title: "Filter step (neuroscience segmentation)",
		Paper: "Myria (pushdown) and Dask (in-memory) fastest; Spark ~10× slower (Python serialization); SciDB pays chunk reconstruction; TensorFlow orders of magnitude slower (flatten/reshape).",
		Run:   makeStepRun("filter"),
		Check: func(t *Table) error {
			last := t.ColNames[len(t.ColNames)-1]
			for _, fast := range []string{"Myria", "Dask"} {
				if err := wantLess(fast+" < Spark", t.Get(fast, last), t.Get("Spark", last)); err != nil {
					return err
				}
			}
			if err := wantRatioAtLeast("Spark ≫ Myria", t.Get("Spark", last), t.Get("Myria", last), 1.3); err != nil {
				return err
			}
			if err := wantRatioAtLeast("TensorFlow ≫ Spark", t.Get("TensorFlow", last), t.Get("Spark", last), 3); err != nil {
				return err
			}
			if err := wantLess("Myria < SciDB", t.Get("Myria", last), t.Get("SciDB", last)); err != nil {
				return err
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig12b",
		Title: "Mean step (neuroscience segmentation)",
		Paper: "SciDB fastest at small scale (specialized array aggregate); Spark/Myria catch up at larger scale; Dask slower at small scale (startup + work stealing); TensorFlow ~10× slower (tensor conversion).",
		Run:   makeStepRun("mean"),
		Check: func(t *Table) error {
			first := t.ColNames[0]
			last := t.ColNames[len(t.ColNames)-1]
			// SciDB's specialized aggregate wins over the other DBMS-path
			// systems at the smallest scale. (The paper also reports Dask
			// behind SciDB here, attributing it to startup overhead; our
			// per-step timing excludes session startup by construction,
			// so Dask's in-memory mean is competitive — see
			// EXPERIMENTS.md.)
			for _, sys := range []string{"Spark", "Myria", "TensorFlow"} {
				if err := wantLess("small scale: SciDB < "+sys, t.Get("SciDB", first), t.Get(sys, first)); err != nil {
					return err
				}
			}
			if err := wantRatioAtLeast("TensorFlow ≫ Myria", t.Get("TensorFlow", last), t.Get("Myria", last), 3); err != nil {
				return err
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig12c",
		Title: "Denoise step (neuroscience)",
		Paper: "Dask, Myria, Spark, and SciDB-stream comparable (same UDF dominates); SciDB slightly slower (TSV through stream()); TensorFlow slower (conversions, no mask).",
		Run:   makeStepRun("denoise"),
		Check: func(t *Table) error {
			last := t.ColNames[len(t.ColNames)-1]
			// The UDF dominates: Dask/Myria/Spark within ~35%.
			for _, pair := range [][2]string{{"Dask", "Myria"}, {"Myria", "Spark"}} {
				if err := wantWithin(pair[0]+" vs "+pair[1], t.Get(pair[0], last), t.Get(pair[1], last), 0.35); err != nil {
					return err
				}
			}
			// SciDB's stream() TSV tax makes it slower than Myria.
			if err := wantLess("Myria < SciDB", t.Get("Myria", last), t.Get("SciDB", last)); err != nil {
				return err
			}
			// TensorFlow is the slowest (conversion + unmasked denoise).
			for _, sys := range []string{"Dask", "Myria", "Spark"} {
				if err := wantLess(sys+" < TensorFlow", t.Get(sys, last), t.Get("TensorFlow", last)); err != nil {
					return err
				}
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig12d",
		Title: "Co-addition step (astronomy)",
		Paper: "Spark and Myria comparable (UDF-internal iteration); SciDB's AQL >10× slower (per-iteration materialization); incremental iterative processing recovers ~6×.",
		Run:   runFig12d,
		Check: checkFig12d,
	})
}

func makeStepRun(step string) func(Profile) (*Table, error) {
	return func(p Profile) (*Table, error) {
		t := NewTable(fmt.Sprintf("Fig 12: %s step", step), "virtual s", stepSystems, labels(p.NeuroSubjects))
		for _, n := range p.NeuroSubjects {
			w, err := neuroWorkload(p, n)
			if err != nil {
				return nil, err
			}
			for _, sys := range stepSystems {
				cl := newCluster(defaultNodes(p))
				d, err := neuro.StepTime(w, cl, nil, sys, step)
				if err != nil {
					return nil, fmt.Errorf("%s/%s at %d subjects: %w", sys, step, n, err)
				}
				t.Set(sys, colLabel(n), seconds(vtime.Duration(d)))
			}
		}
		return t, nil
	}
}

var coaddVariants = []string{"Spark", "Myria", "SciDB", "SciDB-incremental"}

func runFig12d(p Profile) (*Table, error) {
	t := NewTable("Fig 12d: co-addition step", "virtual s", coaddVariants, labels(p.AstroVisits))
	for _, n := range p.AstroVisits {
		w, err := astroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		stacks, err := astro.BuildStacks(w)
		if err != nil {
			return nil, err
		}
		for _, sys := range coaddVariants {
			cl := newCluster(defaultNodes(p))
			d, err := astro.CoaddStepTime(w, cl, nil, stacks, sys)
			if err != nil {
				return nil, fmt.Errorf("coadd %s at %d visits: %w", sys, n, err)
			}
			t.Set(sys, colLabel(n), seconds(vtime.Duration(d)))
		}
	}
	return t, nil
}

func checkFig12d(t *Table) error {
	last := t.ColNames[len(t.ColNames)-1]
	// Spark and Myria are in the same regime (UDF-internal iteration).
	if err := wantRatioAtLeast("Spark/Myria same regime", 3*t.Get("Myria", last), t.Get("Spark", last), 1); err != nil {
		return err
	}
	// SciDB's materialize-per-statement AQL is far behind both (the
	// paper reports >10×; the quick profile compresses the gap — see
	// EXPERIMENTS.md).
	if err := wantRatioAtLeast("SciDB ≫ Myria", t.Get("SciDB", last), t.Get("Myria", last), 4); err != nil {
		return err
	}
	if err := wantRatioAtLeast("SciDB ≫ Spark", t.Get("SciDB", last), t.Get("Spark", last), 1.8); err != nil {
		return err
	}
	if err := wantRatioAtLeast("incremental recovers ≥3×", t.Get("SciDB", last), t.Get("SciDB-incremental", last), 2.5); err != nil {
		return err
	}
	return nil
}
