package core

import (
	"context"
	"fmt"

	"imagebench/internal/engine"
	"imagebench/internal/synth"
)

// Figure 10: the paper's headline end-to-end results — data-size tables,
// runtime vs. data size, normalized per-unit runtimes, and cluster-size
// speedups. The system rows come from the engine registry
// (engine.Supporting(CapNeuroE2E/CapAstroE2E) in paper order), so the
// comparison set is data, not code.

func init() {
	Register(&Experiment{
		ID:    "fig10a",
		Title: "Neuroscience data sizes (GB)",
		Paper: "Input 4.1–105 GB for 1–25 subjects; largest intermediate is 2× the input.",
		Run: func(ctx context.Context, p Profile) (*Table, error) {
			cols := labels(p.NeuroSubjects)
			t := NewTable("Fig 10a: neuroscience data sizes", "GB", []string{"Input", "Largest Intermediate"}, cols)
			for _, n := range p.NeuroSubjects {
				in := float64(int64(n)*synth.PaperSubjectBytes) / 1e9
				t.Set("Input", colLabel(n), in)
				t.Set("Largest Intermediate", colLabel(n), 2*in)
			}
			return t, nil
		},
		Check: func(t *Table) error {
			for j := range t.ColNames {
				if err := wantRatioAtLeast("intermediate vs input", t.Cells[1][j], t.Cells[0][j], 1.9); err != nil {
					return err
				}
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig10b",
		Title: "Astronomy data sizes (GB)",
		Paper: "Input 9.6–115 GB for 2–24 visits; largest intermediate is ~2.5× the input.",
		Run: func(ctx context.Context, p Profile) (*Table, error) {
			cols := labels(p.AstroVisits)
			t := NewTable("Fig 10b: astronomy data sizes", "GB", []string{"Input", "Largest Intermediate"}, cols)
			for _, n := range p.AstroVisits {
				in := float64(int64(n)*synth.PaperVisitBytes) / 1e9
				t.Set("Input", colLabel(n), in)
				t.Set("Largest Intermediate", colLabel(n), 2.5*in)
			}
			return t, nil
		},
		Check: func(t *Table) error {
			for j := range t.ColNames {
				if err := wantRatioAtLeast("intermediate vs input", t.Cells[1][j], t.Cells[0][j], 2.4); err != nil {
					return err
				}
			}
			return nil
		},
	})

	Register(&Experiment{
		ID:    "fig10c",
		Title: "Neuroscience: end-to-end runtime vs data size (16 nodes)",
		Paper: "All three systems comparable; Dask ~60% slower at 1 subject (startup) but fastest (≤14%) at 25 (pipelining).",
		Run:   runFig10c,
		Check: checkFig10c,
	})

	Register(&Experiment{
		ID:    "fig10d",
		Title: "Astronomy: end-to-end runtime vs data size (16 nodes)",
		Paper: "Spark and Myria comparable across visit counts (Dask froze; SciDB/TF not implementable end-to-end).",
		Run:   runFig10d,
		Check: checkFig10d,
	})

	Register(&Experiment{
		ID:    "fig10e",
		Title: "Neuroscience: normalized runtime per subject",
		Paper: "Ratios drop with scale (amortized startup); Dask drops most (largest startup overhead).",
		Run:   runFig10e,
		Check: checkFig10e,
	})

	Register(&Experiment{
		ID:    "fig10f",
		Title: "Astronomy: normalized runtime per visit",
		Paper: "Ratios drop below 1 with scale for both Spark and Myria.",
		Run:   runFig10f,
		Check: checkFig10f,
	})

	Register(&Experiment{
		ID:    "fig10g",
		Title: "Neuroscience: end-to-end runtime vs cluster size (largest dataset)",
		Paper: "Near-linear speedup for all; Myria closest to perfect; Dask best at small clusters but degrades at 64 nodes (scheduler/work stealing).",
		Run:   runFig10g,
		Check: checkFig10g,
	})

	Register(&Experiment{
		ID:    "fig10h",
		Title: "Astronomy: end-to-end runtime vs cluster size (largest dataset)",
		Paper: "Near-linear speedup; Myria faster than Spark when memory is plentiful (Spark's conservative spilling).",
		Run:   runFig10h,
		Check: checkFig10h,
	})
}

func labels(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = colLabel(n)
	}
	return out
}

func runFig10c(ctx context.Context, p Profile) (*Table, error) {
	engines, err := p.engines(engine.CapNeuroE2E)
	if err != nil {
		return nil, err
	}
	t := NewTable("Fig 10c: neuroscience end-to-end runtime", "virtual s", engine.Names(engines), labels(p.NeuroSubjects))
	for _, n := range p.NeuroSubjects {
		w, err := neuroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		for _, eng := range engines {
			d, err := neuroEndToEnd(ctx, w, defaultNodes(p), eng)
			if err != nil {
				return nil, fmt.Errorf("%s at %d subjects: %w", eng.Name(), n, err)
			}
			t.Set(eng.Name(), colLabel(n), seconds(d))
		}
	}
	return t, nil
}

func checkFig10c(t *Table) error {
	first, last := t.ColNames[0], t.ColNames[len(t.ColNames)-1]
	// Dask pays its startup at the smallest scale: slowest there.
	for _, sys := range t.RowNames {
		if sys == "Dask" {
			continue
		}
		if err := wantLess("small scale: "+sys+" < Dask", t.Get(sys, first), t.Get("Dask", first)); err != nil {
			return err
		}
	}
	// At the largest scale Dask's pipelining wins, and all three systems
	// land within ~25% of each other (paper: within 14%).
	for _, sys := range t.RowNames {
		if sys == "Dask" {
			continue
		}
		if err := wantLess("large scale: Dask < "+sys, t.Get("Dask", last), t.Get(sys, last)); err != nil {
			return err
		}
		if err := wantWithin("large scale spread", t.Get(sys, last), t.Get("Dask", last), 0.4); err != nil {
			return err
		}
	}
	return nil
}

func runFig10d(ctx context.Context, p Profile) (*Table, error) {
	engines, err := p.engines(engine.CapAstroE2E)
	if err != nil {
		return nil, err
	}
	t := NewTable("Fig 10d: astronomy end-to-end runtime", "virtual s", engine.Names(engines), labels(p.AstroVisits))
	for _, n := range p.AstroVisits {
		w, err := astroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		for _, eng := range engines {
			d, err := astroEndToEnd(ctx, w, defaultNodes(p), eng)
			if err != nil {
				return nil, fmt.Errorf("%s at %d visits: %w", eng.Name(), n, err)
			}
			t.Set(eng.Name(), colLabel(n), seconds(d))
		}
	}
	return t, nil
}

func checkFig10d(t *Table) error {
	// Myria stays ahead of Spark (the paper's Fig 10h discussion: Spark's
	// conservative spilling and scheduling make it slower when memory is
	// plentiful), with both in the same regime. Our Myria model's
	// multi-threaded workers widen the gap at small scale relative to the
	// paper; see EXPERIMENTS.md.
	for _, c := range t.ColNames {
		if err := wantLess("Myria <= Spark at "+c+" visits", t.Get("Myria", c), t.Get("Spark", c)); err != nil {
			return err
		}
		if err := wantRatioAtLeast("same regime at "+c+" visits", 3*t.Get("Myria", c), t.Get("Spark", c), 1); err != nil {
			return err
		}
	}
	return nil
}

func normalizedPerUnit(src *Table, units []string) *Table {
	t := NewTable(src.Title+" (normalized per unit)", "ratio", src.RowNames, units)
	for i, sys := range src.RowNames {
		base := src.Cells[i][0]
		for j, c := range units {
			n0 := parseInt(units[0])
			n := parseInt(c)
			t.Set(sys, c, src.Cells[i][j]/(base*float64(n)/float64(n0)))
		}
	}
	return t
}

func parseInt(s string) int {
	var n int
	fmt.Sscanf(s, "%d", &n)
	return n
}

func runFig10e(ctx context.Context, p Profile) (*Table, error) {
	src, err := runFig10c(ctx, p)
	if err != nil {
		return nil, err
	}
	t := normalizedPerUnit(src, src.ColNames)
	t.Title = "Fig 10e: neuroscience normalized runtime per subject"
	return t, nil
}

func checkFig10e(t *Table) error {
	last := t.ColNames[len(t.ColNames)-1]
	for _, sys := range t.RowNames {
		if err := wantLess(sys+" amortizes startup", t.Get(sys, last), 1.0); err != nil {
			return err
		}
	}
	// Dask's drop is the most pronounced (largest startup overhead).
	for _, sys := range t.RowNames {
		if sys == "Dask" {
			continue
		}
		if err := wantLess("Dask drop deepest vs "+sys, t.Get("Dask", last), t.Get(sys, last)); err != nil {
			return err
		}
	}
	return nil
}

func runFig10f(ctx context.Context, p Profile) (*Table, error) {
	src, err := runFig10d(ctx, p)
	if err != nil {
		return nil, err
	}
	t := normalizedPerUnit(src, src.ColNames)
	t.Title = "Fig 10f: astronomy normalized runtime per visit"
	return t, nil
}

func checkFig10f(t *Table) error {
	last := t.ColNames[len(t.ColNames)-1]
	for _, sys := range t.RowNames {
		if err := wantLess(sys+" amortizes startup", t.Get(sys, last), 1.0); err != nil {
			return err
		}
	}
	return nil
}

func runFig10g(ctx context.Context, p Profile) (*Table, error) {
	engines, err := p.engines(engine.CapNeuroE2E)
	if err != nil {
		return nil, err
	}
	// Speedup is only observable while work outnumbers worker slots:
	// keep at least 4 volumes per slot at the largest cluster (the
	// paper's 25 × 288-volume subjects easily exceed 512 slots; our
	// scaled subjects have fewer volumes, so the count is raised).
	maxNodes := p.ClusterNodes[len(p.ClusterNodes)-1]
	n := p.NeuroSubjects[len(p.NeuroSubjects)-1]
	if minSubj := (4*maxNodes*8 + p.NeuroT - 1) / p.NeuroT; n < minSubj {
		n = minSubj
	}
	w, err := neuroWorkload(p, n)
	if err != nil {
		return nil, err
	}
	t := NewTable(fmt.Sprintf("Fig 10g: neuroscience runtime vs cluster size (%d subjects)", n),
		"virtual s", engine.Names(engines), labels(p.ClusterNodes))
	for _, nodes := range p.ClusterNodes {
		for _, eng := range engines {
			d, err := neuroEndToEnd(ctx, w, nodes, eng)
			if err != nil {
				return nil, fmt.Errorf("%s at %d nodes: %w", eng.Name(), nodes, err)
			}
			t.Set(eng.Name(), colLabel(nodes), seconds(d))
		}
	}
	return t, nil
}

func checkFig10g(t *Table) error {
	first, last := t.ColNames[0], t.ColNames[len(t.ColNames)-1]
	scale := float64(parseInt(last)) / float64(parseInt(first))
	for _, sys := range t.RowNames {
		sp := t.Get(sys, first) / t.Get(sys, last)
		if sp < scale*0.4 {
			return fmt.Errorf("%s speedup %.2f at %.0f× nodes: not near-linear", sys, sp, scale)
		}
	}
	// Myria's speedup is closest to perfect, and better than Dask's
	// (work-stealing overhead grows with the cluster).
	myria := t.Get("Myria", first) / t.Get("Myria", last)
	dask := t.Get("Dask", first) / t.Get("Dask", last)
	if err := wantLess("Dask speedup < Myria speedup", dask, myria); err != nil {
		return err
	}
	return nil
}

func runFig10h(ctx context.Context, p Profile) (*Table, error) {
	engines, err := p.engines(engine.CapAstroE2E)
	if err != nil {
		return nil, err
	}
	// As in fig10g, keep at least 4 exposures per slot at the largest
	// cluster by raising the per-visit sensor count (the paper's visits
	// have 60 sensors; the scaled default has fewer).
	maxNodes := p.ClusterNodes[len(p.ClusterNodes)-1]
	n := p.AstroVisits[len(p.AstroVisits)-1]
	cfg := p
	if minSensors := (4*maxNodes*8 + n - 1) / n; cfg.AstroSensors < minSensors {
		cfg.AstroSensors = minSensors
	}
	w, err := astroWorkload(cfg, n)
	if err != nil {
		return nil, err
	}
	t := NewTable(fmt.Sprintf("Fig 10h: astronomy runtime vs cluster size (%d visits)", n),
		"virtual s", engine.Names(engines), labels(p.ClusterNodes))
	for _, nodes := range p.ClusterNodes {
		for _, eng := range engines {
			d, err := astroEndToEnd(ctx, w, nodes, eng)
			if err != nil {
				return nil, fmt.Errorf("%s at %d nodes: %w", eng.Name(), nodes, err)
			}
			t.Set(eng.Name(), colLabel(nodes), seconds(d))
		}
	}
	return t, nil
}

func checkFig10h(t *Table) error {
	first, last := t.ColNames[0], t.ColNames[len(t.ColNames)-1]
	scale := float64(parseInt(last)) / float64(parseInt(first))
	for _, sys := range t.RowNames {
		sp := t.Get(sys, first) / t.Get(sys, last)
		if sp < scale*0.4 {
			return fmt.Errorf("%s speedup %.2f at %.0f× nodes: not near-linear", sys, sp, scale)
		}
	}
	return nil
}
