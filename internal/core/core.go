// Package core is the benchmark harness — the paper's primary
// contribution is its comparative evaluation, and this package reproduces
// it: a registry with one experiment per table and figure (Table 1,
// Figures 10–15, and the Section 5.3 tuning studies), each producing the
// same rows/series the paper reports, plus a shape check verifying that
// the qualitative result (who wins, by what factor, where crossovers
// fall) matches the paper.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is one experiment's output: rows (usually systems or parameter
// values) × columns (usually sweep points), with float cells in the unit
// named by Unit. NaN marks combinations that are not applicable (the
// paper's "NA"/"X" entries).
type Table struct {
	Title    string
	Unit     string
	ColNames []string
	RowNames []string
	Cells    [][]float64
	Notes    []string
}

// NewTable allocates a rows×cols table filled with NaN.
func NewTable(title, unit string, rows, cols []string) *Table {
	t := &Table{Title: title, Unit: unit, RowNames: rows, ColNames: cols}
	t.Cells = make([][]float64, len(rows))
	for i := range t.Cells {
		t.Cells[i] = make([]float64, len(cols))
		for j := range t.Cells[i] {
			t.Cells[i][j] = math.NaN()
		}
	}
	return t
}

// Set assigns a cell by row and column name. Unknown names panic: they
// are experiment bugs, not data conditions.
func (t *Table) Set(row, col string, v float64) {
	t.Cells[t.rowIdx(row)][t.colIdx(col)] = v
}

// Get returns a cell by row and column name.
func (t *Table) Get(row, col string) float64 {
	return t.Cells[t.rowIdx(row)][t.colIdx(col)]
}

// Row returns the named row's cells.
func (t *Table) Row(row string) []float64 { return t.Cells[t.rowIdx(row)] }

func (t *Table) rowIdx(name string) int {
	for i, r := range t.RowNames {
		if r == name {
			return i
		}
	}
	panic(fmt.Sprintf("core: unknown row %q in %q", name, t.Title))
}

func (t *Table) colIdx(name string) int {
	for i, c := range t.ColNames {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("core: unknown column %q in %q", name, t.Title))
}

// Render formats the table as fixed-width text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, "  [%s]", t.Unit)
	}
	b.WriteByte('\n')
	w := 12
	for _, r := range t.RowNames {
		if len(r)+2 > w {
			w = len(r) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", w, "")
	for _, c := range t.ColNames {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.RowNames {
		fmt.Fprintf(&b, "%-*s", w, r)
		for j := range t.ColNames {
			v := t.Cells[i][j]
			switch {
			case math.IsNaN(v):
				fmt.Fprintf(&b, "%12s", "NA")
			case v >= 1000:
				fmt.Fprintf(&b, "%12.0f", v)
			default:
				fmt.Fprintf(&b, "%12.2f", v)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Profile scales an experiment run. Quick keeps everything small for
// tests; Full uses the paper's sweep points with the default scaled
// geometry.
type Profile struct {
	Name          string
	NeuroSubjects []int
	AstroVisits   []int
	ClusterNodes  []int
	// Geometry scale for the synthetic data (see synth package).
	NeuroNX, NeuroNY, NeuroNZ, NeuroT, NeuroB0 int
	AstroSensors, AstroW, AstroH, AstroSources int
	// FaultScenarios are the fault-injection scenarios the ft*
	// experiments compare, in cluster.ParseScenario syntax ("baseline",
	// "kill:1@30%", "slow:1@25%*4", ...). Empty falls back to
	// DefaultFaultScenarios.
	FaultScenarios []string
	// Systems restricts experiments to the named engines (the CLI's
	// -systems flag and the sweep's systems axis); empty means every
	// registered engine. omitempty keeps the fingerprint of unfiltered
	// profiles identical to versions that predate the field.
	Systems []string `json:",omitempty"`
}

// DefaultFaultScenarios returns the canonical recovery-overhead grid:
// fault-free baseline, one kill, two kills, and a straggler. Fault times
// are fractions of each system's own baseline makespan, so every
// scenario lands mid-run on every system; the straggler degrades early
// (5%) so it catches each system's long-running tasks before they start.
func DefaultFaultScenarios() []string {
	return []string{"baseline", "kill:1@30%", "kill:1@30%+kill:2@55%", "slow:1@5%*4"}
}

// Quick is the test/CI profile.
func Quick() Profile {
	return Profile{
		Name:          "quick",
		NeuroSubjects: []int{1, 4, 12},
		AstroVisits:   []int{2, 4},
		ClusterNodes:  []int{4, 8, 16},
		NeuroNX:       8, NeuroNY: 8, NeuroNZ: 10, NeuroT: 48, NeuroB0: 3,
		AstroSensors: 4, AstroW: 32, AstroH: 32, AstroSources: 10,
		FaultScenarios: DefaultFaultScenarios(),
	}
}

// Full is the paper-sweep profile.
func Full() Profile {
	return Profile{
		Name:          "full",
		NeuroSubjects: []int{1, 2, 4, 8, 12, 25},
		AstroVisits:   []int{2, 4, 8, 12, 24},
		ClusterNodes:  []int{16, 32, 48, 64},
		NeuroNX:       12, NeuroNY: 12, NeuroNZ: 14, NeuroT: 48, NeuroB0: 3,
		AstroSensors: 6, AstroW: 48, AstroH: 48, AstroSources: 24,
		FaultScenarios: DefaultFaultScenarios(),
	}
}

// faultScenarios returns the profile's scenario set, defaulting for
// hand-rolled profiles that leave it empty.
func (p Profile) faultScenarios() []string {
	if len(p.FaultScenarios) == 0 {
		return DefaultFaultScenarios()
	}
	return p.FaultScenarios
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	ID    string // e.g. "fig10c"
	Title string
	// Paper summarizes the shape the paper reports.
	Paper string
	// Run executes the experiment under the profile. The context
	// carries cancellation plus the observability plumbing (obs tracer,
	// metrics registry, parent span); deterministic simulations must not
	// let it change their results.
	Run func(ctx context.Context, p Profile) (*Table, error)
	// Check validates that the table's shape matches the paper's
	// finding. It is run by tests against both profiles.
	Check func(t *Table) error
}

var registry []*Experiment

// Register adds an experiment; it panics on duplicate IDs.
func Register(e *Experiment) {
	for _, x := range registry {
		if x.ID == e.ID {
			panic("core: duplicate experiment " + e.ID)
		}
	}
	registry = append(registry, e)
}

// All returns the experiments sorted by ID.
func All() []*Experiment {
	out := append([]*Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("core: unknown experiment %q (use -list)", id)
}

// shape-check helpers shared by the experiment files.

// wantLess reports an error unless a < b.
func wantLess(what string, a, b float64) error {
	if math.IsNaN(a) || math.IsNaN(b) || a >= b {
		return fmt.Errorf("%s: want %.3g < %.3g", what, a, b)
	}
	return nil
}

// wantRatioAtLeast reports an error unless a/b ≥ r.
func wantRatioAtLeast(what string, a, b, r float64) error {
	if math.IsNaN(a) || math.IsNaN(b) || b == 0 || a/b < r {
		return fmt.Errorf("%s: want %.3g/%.3g >= %.2f (got %.2f)", what, a, b, r, a/b)
	}
	return nil
}

// wantWithin reports an error unless a is within frac of b.
func wantWithin(what string, a, b, frac float64) error {
	if math.IsNaN(a) || math.IsNaN(b) || b == 0 {
		return fmt.Errorf("%s: missing values", what)
	}
	if r := math.Abs(a-b) / b; r > frac {
		return fmt.Errorf("%s: %.3g vs %.3g differ by %.0f%% (want <= %.0f%%)", what, a, b, r*100, frac*100)
	}
	return nil
}
