package core

import (
	"context"
	"fmt"
	"time"

	"imagebench/internal/cost"
	"imagebench/internal/dask"
	"imagebench/internal/myria"
	"imagebench/internal/objstore"
	"imagebench/internal/spark"
	"imagebench/internal/vtime"
)

// Ablations: DESIGN.md attributes each engine's performance results to a
// specific design property. These experiments switch the properties off
// one at a time and measure what each is worth, on synthetic workloads
// shaped like the pipelines' steps. They are extensions beyond the
// paper's artifacts (the paper asserts the mechanisms; the ablations
// quantify them in this reproduction). Each ablation belongs to one
// engine and registers through registerForEngine, so it follows its
// engine in and out of the registry and respects the profile's Systems
// filter.

func init() {
	registerForEngine("Spark", &Experiment{
		ID:    "abl-spark-pytax",
		Title: "Ablation: Spark Python-worker serialization tax",
		Paper: "Section 5.2.2 attributes Spark's ~10× filter gap to serializing Python code and data; this ablation runs the same map with and without the Python boundary.",
		Run:   runAblSparkPyTax,
		Check: func(t *Table) error {
			last := t.ColNames[len(t.ColNames)-1]
			return wantRatioAtLeast("python ≫ native", t.Get("Python UDF", last), t.Get("Native op", last), 1.5)
		},
	})

	registerForEngine("Dask", &Experiment{
		ID:    "abl-dask-fusion",
		Title: "Ablation: Dask linear-chain task fusion",
		Paper: "Dask's per-task scheduler dispatch grows with cluster size (Section 5.1); fusing per-subject chains removes most dispatches. Extension: the paper's Dask version fuses by default.",
		Run:   runAblDaskFusion,
		Check: func(t *Table) error {
			last := t.ColNames[len(t.ColNames)-1]
			return wantLess("fused < unfused", t.Get("Fused", last), t.Get("Unfused", last))
		},
	})

	registerForEngine("Dask", &Experiment{
		ID:    "abl-dask-stealing",
		Title: "Ablation: Dask work stealing",
		Paper: "Section 5.1: Dask's scheduler 'attempts to move tasks among different machines via aggressive work stealing'. With data born on one node, stealing buys parallelism; sticky scheduling serializes on the data's host.",
		Run:   runAblDaskStealing,
		Check: func(t *Table) error {
			last := t.ColNames[len(t.ColNames)-1]
			return wantLess("stealing < sticky", t.Get("Stealing", last), t.Get("Sticky", last))
		},
	})

	registerForEngine("Myria", &Experiment{
		ID:    "abl-myria-pushdown",
		Title: "Ablation: Myria selection pushdown",
		Paper: "Section 5.2.2: 'Myria pushes the selection down to PostgreSQL' — the reason it wins the filter step. The alternative routes every tuple through the Python boundary.",
		Run:   runAblMyriaPushdown,
		Check: func(t *Table) error {
			for _, col := range t.ColNames {
				if err := wantLess("pushdown < UDF filter @ "+col, t.Get("Pushdown", col), t.Get("UDF filter", col)); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// runAblSparkPyTax maps the same records once through a Python lambda
// and once through a native (JVM) operator.
func runAblSparkPyTax(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Spark"); err != nil {
		return nil, err
	}
	sizes := []int{16, 32, 64}
	cols := make([]string, len(sizes))
	for i, n := range sizes {
		cols[i] = fmt.Sprintf("%d recs", n)
	}
	t := NewTable("Ablation: Spark Python tax (identity map)", "virtual s", []string{"Python UDF", "Native op"}, cols)
	for _, n := range sizes {
		for _, native := range []bool{false, true} {
			cl := newCluster(defaultNodes(p))
			s := spark.NewSession(cl, objstore.New(), nil)
			recs := make([]spark.Pair, n)
			for i := range recs {
				recs[i] = spark.Pair{Key: fmt.Sprintf("k%03d", i), Value: i, Size: 64 << 20}
			}
			// A chain of narrow maps, as a multi-step pipeline would run:
			// the Python variant crosses the worker boundary both ways at
			// every step, the native variant never does.
			rdd := s.Parallelize("xs", recs, defaultNodes(p)*8)
			for step := 0; step < 6; step++ {
				rdd = rdd.Map(spark.UDF{
					Name: fmt.Sprintf("identity%d", step), Op: cost.Filter, Native: native,
					F: func(pr spark.Pair) []spark.Pair { return []spark.Pair{pr} },
				})
			}
			h, err := rdd.Materialize()
			if err != nil {
				return nil, err
			}
			row := "Python UDF"
			if native {
				row = "Native op"
			}
			t.Set(row, fmt.Sprintf("%d recs", n), seconds(vtime.Duration(h.End)))
		}
	}
	return t, nil
}

// ablChains builds nChains independent linear pipelines of the given
// depth, sources pinned to pinNode (or free when negative). A zero
// stageCost uses the calibrated denoise throughput over the 64 MB
// intermediates (compute-bound chains); a non-zero stageCost makes every
// stage that cheap fixed duration (dispatch-bound chains).
func ablChains(s *dask.Session, nChains, depth, pinNode int, stageCost vtime.Duration) []*dask.Delayed {
	var roots []*dask.Delayed
	for c := 0; c < nChains; c++ {
		cur := s.DelayedCost(fmt.Sprintf("src%d", c),
			func(int64) vtime.Duration { return 50 * time.Millisecond },
			nil,
			func([]any) (any, int64, error) { return 0.0, 64 << 20, nil })
		if pinNode >= 0 {
			// Pinning is only available through Fetch in the public API;
			// emulate by a fetch-like source via the session store.
			cur = s.Fetch(fmt.Sprintf("abl/%03d", c), pinNode, func(o objstore.Object) (any, int64, error) {
				return 0.0, o.Size(), nil
			})
		}
		for st := 0; st < depth; st++ {
			prev := cur
			name := fmt.Sprintf("c%d/s%d", c, st)
			next := func(args []any) (any, int64, error) { return args[0], 64 << 20, nil }
			if stageCost > 0 {
				cur = s.DelayedCost(name, func(int64) vtime.Duration { return stageCost }, []*dask.Delayed{prev}, next)
			} else {
				cur = s.Delayed(name, cost.Denoise, []*dask.Delayed{prev}, next)
			}
		}
		roots = append(roots, cur)
	}
	return roots
}

func runAblDaskFusion(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Dask"); err != nil {
		return nil, err
	}
	depths := []int{2, 4, 8}
	cols := make([]string, len(depths))
	for i, d := range depths {
		cols[i] = fmt.Sprintf("depth %d", d)
	}
	// Many cheap tasks: the regime where the serial per-task dispatch
	// (1.5 ms + 60 µs/node) is the bottleneck fusion removes.
	t := NewTable("Ablation: Dask task fusion (256 cheap chains)", "virtual s", []string{"Fused", "Unfused"}, cols)
	for _, depth := range depths {
		for _, fuse := range []bool{true, false} {
			cl := newCluster(defaultNodes(p))
			s := dask.NewSession(cl, objstore.New(), nil)
			if fuse {
				s.EnableFusion()
			}
			roots := ablChains(s, 256, depth, -1, 5*time.Millisecond)
			h, err := s.Compute(roots...)
			if err != nil {
				return nil, err
			}
			row := "Unfused"
			if fuse {
				row = "Fused"
			}
			t.Set(row, fmt.Sprintf("depth %d", depth), seconds(vtime.Duration(h.End)))
		}
	}
	return t, nil
}

func runAblDaskStealing(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Dask"); err != nil {
		return nil, err
	}
	counts := []int{8, 16, 32}
	cols := make([]string, len(counts))
	for i, n := range counts {
		cols[i] = fmt.Sprintf("%d chains", n)
	}
	t := NewTable("Ablation: Dask work stealing (data born on node 0)", "virtual s", []string{"Stealing", "Sticky"}, cols)
	for _, n := range counts {
		for _, sticky := range []bool{false, true} {
			cl := newCluster(defaultNodes(p))
			store := objstore.New()
			for c := 0; c < n; c++ {
				store.Put(fmt.Sprintf("abl/%03d", c), nil, 64<<20)
			}
			s := dask.NewSession(cl, store, nil)
			if sticky {
				s.StealLocality = vtime.Duration(time.Hour)
			}
			roots := ablChains(s, n, 4, 0, 0)
			h, err := s.Compute(roots...)
			if err != nil {
				return nil, err
			}
			row := "Stealing"
			if sticky {
				row = "Sticky"
			}
			t.Set(row, fmt.Sprintf("%d chains", n), seconds(vtime.Duration(h.End)))
		}
	}
	return t, nil
}

func runAblMyriaPushdown(_ context.Context, p Profile) (*Table, error) {
	if _, err := p.requireEngine("Myria"); err != nil {
		return nil, err
	}
	selectivities := []int{10, 50, 90}
	cols := make([]string, len(selectivities))
	for i, s := range selectivities {
		cols[i] = fmt.Sprintf("keep %d%%", s)
	}
	t := NewTable("Ablation: Myria selection pushdown", "virtual s", []string{"Pushdown", "UDF filter"}, cols)
	for _, sel := range selectivities {
		for _, push := range []bool{true, false} {
			cl := newCluster(defaultNodes(p))
			store := objstore.New()
			const nObjs = 64
			for i := 0; i < nObjs; i++ {
				store.Put(fmt.Sprintf("abl/%03d", i), []byte{byte(i)}, 16<<20)
			}
			e := myria.New(cl, store, nil, myria.DefaultConfig())
			rel, err := e.Ingest("Images", "abl/", func(o objstore.Object) []myria.Tuple {
				return []myria.Tuple{{Key: o.Key, Value: int(o.Data[0]), Size: o.ModelBytes}}
			})
			if err != nil {
				return nil, err
			}
			keep := func(tp myria.Tuple) bool { return tp.Value.(int)*100 < sel*nObjs }
			q := e.NewQuery()
			if push {
				q.ScanWhere(rel, keep)
			} else {
				q.Apply(q.Scan(rel), myria.PyUDF{Name: "filter", Op: cost.Filter, F: func(tp myria.Tuple) []myria.Tuple {
					if keep(tp) {
						return []myria.Tuple{tp}
					}
					return nil
				}})
			}
			h, err := q.Finish()
			if err != nil {
				return nil, err
			}
			row := "UDF filter"
			if push {
				row = "Pushdown"
			}
			t.Set(row, fmt.Sprintf("keep %d%%", sel), seconds(vtime.Duration(h.End)))
		}
	}
	return t, nil
}
