package core

import (
	"strings"
	"testing"
)

func TestOverridesApply(t *testing.T) {
	base := Quick()
	derived := base.Apply(Overrides{ClusterNodes: []int{4, 8}})
	if derived.Name != "quick+nodes=4,8" {
		t.Errorf("derived name = %q", derived.Name)
	}
	if got := derived.ClusterNodes; len(got) != 2 || got[0] != 4 || got[1] != 8 {
		t.Errorf("derived nodes = %v", got)
	}
	// The base profile and the other knobs are untouched.
	if base.Name != "quick" || len(base.ClusterNodes) != 3 {
		t.Errorf("base mutated: %+v", base)
	}
	if len(derived.NeuroSubjects) != len(base.NeuroSubjects) {
		t.Errorf("unrelated knob changed: %v", derived.NeuroSubjects)
	}
	// Distinct overrides must fingerprint distinctly, identical ones
	// identically — the sweep grid and result cache both key on this.
	same := base.Apply(Overrides{ClusterNodes: []int{4, 8}})
	if derived.Fingerprint() != same.Fingerprint() {
		t.Error("identical overrides produced different fingerprints")
	}
	other := base.Apply(Overrides{ClusterNodes: []int{16}})
	if derived.Fingerprint() == other.Fingerprint() {
		t.Error("different overrides produced identical fingerprints")
	}
	// Mutating the override slice afterwards must not leak into the
	// derived profile.
	o := Overrides{NeuroSubjects: []int{1, 2}}
	d2 := base.Apply(o)
	o.NeuroSubjects[0] = 99
	if d2.NeuroSubjects[0] == 99 {
		t.Error("Apply shared the override slice instead of copying")
	}
}

func TestOverridesZeroApply(t *testing.T) {
	base := Quick()
	if got := base.Apply(Overrides{}); got.Name != "quick" || got.Fingerprint() != base.Fingerprint() {
		t.Errorf("zero overrides changed the profile: %+v", got)
	}
}

func TestOverridesValidate(t *testing.T) {
	if err := (Overrides{ClusterNodes: []int{4}}).Validate(); err != nil {
		t.Errorf("valid overrides rejected: %v", err)
	}
	if err := (Overrides{ClusterNodes: []int{}}).Validate(); err == nil {
		t.Error("empty clusterNodes accepted")
	}
	if err := (Overrides{AstroVisits: []int{2, 0}}).Validate(); err == nil {
		t.Error("non-positive visit count accepted")
	}
	if err := (Overrides{Failures: []string{"baseline", "kill:1@30%"}}).Validate(); err != nil {
		t.Errorf("valid failures override rejected: %v", err)
	}
	if err := (Overrides{Failures: []string{}}).Validate(); err == nil {
		t.Error("empty failures list accepted")
	}
	if err := (Overrides{Failures: []string{"kill:1@soon"}}).Validate(); err == nil {
		t.Error("malformed fault scenario accepted")
	}
}

func TestOverridesFailuresApply(t *testing.T) {
	base := Quick()
	o := Overrides{Failures: []string{"baseline", "kill:1@40%"}}
	derived := base.Apply(o)
	if derived.Name != "quick+failures=baseline;kill:1@40%" {
		t.Errorf("derived name = %q", derived.Name)
	}
	if len(derived.FaultScenarios) != 2 || derived.FaultScenarios[1] != "kill:1@40%" {
		t.Errorf("derived scenarios = %v", derived.FaultScenarios)
	}
	if len(base.FaultScenarios) != 4 {
		t.Errorf("base profile scenarios mutated: %v", base.FaultScenarios)
	}
	if derived.Fingerprint() == base.Fingerprint() {
		t.Error("failures override did not change the fingerprint")
	}
	// Mutating the override slice afterwards must not leak in.
	o.Failures[1] = "kill:9@90%"
	if derived.FaultScenarios[1] != "kill:1@40%" {
		t.Error("Apply shared the failures slice instead of copying")
	}
}

func TestOverridesLabel(t *testing.T) {
	o := Overrides{ClusterNodes: []int{4, 8}, AstroVisits: []int{2}}
	if got := o.Label(); got != "nodes=4,8 visits=2" {
		t.Errorf("label = %q", got)
	}
	if got := (Overrides{}).Label(); got != "" {
		t.Errorf("zero label = %q", got)
	}
}

func TestExpandIDs(t *testing.T) {
	all, err := ExpandIDs([]string{"all"})
	if err != nil || len(all) < 24 {
		t.Fatalf("all = %d ids, err %v", len(all), err)
	}
	figs, err := ExpandIDs([]string{"fig10*"})
	if err != nil || len(figs) != 8 {
		t.Fatalf("fig10* = %v, err %v", figs, err)
	}
	for _, id := range figs {
		if !strings.HasPrefix(id, "fig10") {
			t.Errorf("fig10* matched %q", id)
		}
	}
	// Overlapping patterns deduplicate; exact IDs pass through.
	both, err := ExpandIDs([]string{"fig11", "fig1*", "fig11"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, id := range both {
		seen[id]++
	}
	if seen["fig11"] != 1 {
		t.Errorf("fig11 appears %d times: %v", seen["fig11"], both)
	}
	if _, err := ExpandIDs([]string{"nope-*"}); err == nil {
		t.Error("pattern matching nothing accepted")
	}
	if _, err := ExpandIDs(nil); err == nil {
		t.Error("empty pattern list accepted")
	}
	if _, err := ExpandIDs([]string{"fig[10"}); err == nil {
		t.Error("malformed glob accepted")
	}
}
