package core

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"imagebench/internal/cluster"
	"imagebench/internal/engine"
)

// This file is the profile-override and experiment-pattern plumbing used
// by the sweep engine (internal/sweep): a small set of overridable
// profile knobs, applied as copy-on-write derivations of the built-in
// profiles, and glob expansion over the experiment registry.

// Overrides adjusts the sweep-relevant knobs of a Profile. Nil slices
// mean "keep the profile's value"; a non-nil slice replaces it. These
// are exactly the axes the paper varies between runs: cluster sizes,
// neuroscience subject counts, and astronomy visit counts.
type Overrides struct {
	ClusterNodes  []int `json:"clusterNodes,omitempty"`
	NeuroSubjects []int `json:"neuroSubjects,omitempty"`
	AstroVisits   []int `json:"astroVisits,omitempty"`
	// Failures replaces the profile's fault-scenario set for the ft*
	// experiments (cluster.ParseScenario syntax). One sweep axis point
	// per scenario set lets a single batch grid over fault scenarios —
	// the `imagebench sweep -kill-at ...` axis.
	Failures []string `json:"failures,omitempty"`
	// Systems restricts experiments to the named engines. One sweep
	// axis point per engine set lets a single batch grid over engines —
	// the `imagebench sweep -systems ...` axis.
	Systems []string `json:"systems,omitempty"`
}

// IsZero reports whether the overrides change nothing.
func (o Overrides) IsZero() bool {
	return o.ClusterNodes == nil && o.NeuroSubjects == nil && o.AstroVisits == nil && o.Failures == nil && o.Systems == nil
}

// Validate rejects empty or non-positive sweep points: they would make
// experiments loop over nothing or build degenerate clusters.
func (o Overrides) Validate() error {
	check := func(what string, vs []int) error {
		if vs != nil && len(vs) == 0 {
			return fmt.Errorf("core: override %s is empty (omit it to keep the profile's value)", what)
		}
		for _, v := range vs {
			if v <= 0 {
				return fmt.Errorf("core: override %s contains non-positive value %d", what, v)
			}
		}
		return nil
	}
	if err := check("clusterNodes", o.ClusterNodes); err != nil {
		return err
	}
	if err := check("neuroSubjects", o.NeuroSubjects); err != nil {
		return err
	}
	if err := check("astroVisits", o.AstroVisits); err != nil {
		return err
	}
	if o.Failures != nil && len(o.Failures) == 0 {
		return fmt.Errorf("core: override failures is empty (omit it to keep the profile's scenarios)")
	}
	for _, sc := range o.Failures {
		if _, err := cluster.ParseScenario(sc); err != nil {
			return fmt.Errorf("core: override failures: %w", err)
		}
	}
	if o.Systems != nil && len(o.Systems) == 0 {
		return fmt.Errorf("core: override systems is empty (omit it to run every engine)")
	}
	for _, name := range o.Systems {
		if _, err := engine.Lookup(name); err != nil {
			return fmt.Errorf("core: override systems: %w", err)
		}
	}
	return nil
}

// Label renders the overrides as a stable, human-readable suffix
// ("nodes=4,8 subjects=1"), empty for zero overrides. Derived profile
// names embed it, so two cells of a sweep grid are distinguishable at a
// glance.
func (o Overrides) Label() string {
	var parts []string
	add := func(name string, vs []int) {
		if vs == nil {
			return
		}
		ss := make([]string, len(vs))
		for i, v := range vs {
			ss[i] = fmt.Sprintf("%d", v)
		}
		parts = append(parts, name+"="+strings.Join(ss, ","))
	}
	add("nodes", o.ClusterNodes)
	add("subjects", o.NeuroSubjects)
	add("visits", o.AstroVisits)
	if o.Failures != nil {
		parts = append(parts, "failures="+strings.Join(o.Failures, ";"))
	}
	if o.Systems != nil {
		parts = append(parts, "systems="+strings.Join(o.Systems, ","))
	}
	return strings.Join(parts, " ")
}

// Apply returns a copy of p with the overrides applied. The derived
// profile's Name gains the override label ("quick+nodes=4"), so result
// keys, journals, and sweep grids all distinguish it from the base
// profile; the slices are copied, never shared.
func (p Profile) Apply(o Overrides) Profile {
	if o.IsZero() {
		return p
	}
	out := p
	if o.ClusterNodes != nil {
		out.ClusterNodes = append([]int(nil), o.ClusterNodes...)
	}
	if o.NeuroSubjects != nil {
		out.NeuroSubjects = append([]int(nil), o.NeuroSubjects...)
	}
	if o.AstroVisits != nil {
		out.AstroVisits = append([]int(nil), o.AstroVisits...)
	}
	if o.Failures != nil {
		out.FaultScenarios = append([]string(nil), o.Failures...)
	}
	if o.Systems != nil {
		out.Systems = append([]string(nil), o.Systems...)
	}
	out.Name = p.Name + "+" + strings.ReplaceAll(o.Label(), " ", "+")
	return out
}

// ExpandIDs resolves experiment patterns — exact IDs, path.Match globs
// ("fig10*"), or the special pattern "all" — against the registry,
// returning the matching IDs sorted and deduplicated. A pattern that
// matches nothing is an error: a sweep cell silently dropped by a typo
// would otherwise look like a passing sweep.
func ExpandIDs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("core: no experiment patterns given")
	}
	set := make(map[string]bool)
	for _, pat := range patterns {
		if pat == "all" {
			for _, e := range All() {
				set[e.ID] = true
			}
			continue
		}
		matched := false
		for _, e := range All() {
			ok, err := path.Match(pat, e.ID)
			if err != nil {
				return nil, fmt.Errorf("core: bad experiment pattern %q: %w", pat, err)
			}
			if ok {
				set[e.ID] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("core: experiment pattern %q matches nothing (use -list)", pat)
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}
