package core

import (
	"context"
	"fmt"

	"imagebench/internal/engine"
	"imagebench/internal/vtime"
)

// Figure 11: data-ingest times for the neuroscience benchmark on the
// 16-node cluster, log-scale in the paper. The rows come from the
// engine registry: every engine holding CapNeuroIngest, expanded
// through its ingest variants (SciDB contributes two bars — from_array
// and aio_input).

func init() {
	Register(&Experiment{
		ID:    "fig11",
		Title: "Data ingest times (neuroscience)",
		Paper: "Order-of-magnitude spread: Myria fastest (CSV file list, parallel), Spark close (master enumerates bucket first), Dask constant until >16 subjects, TensorFlow slow (all data through the master), SciDB-1 (from_array) slowest by ~10×, SciDB-2 (aio_input) on par with Spark/Myria but pays NIfTI→CSV conversion.",
		Run:   runFig11,
		Check: checkFig11,
	})
}

// ingestRow is one Fig 11 bar: an ingest variant of one engine.
type ingestRow struct {
	label string
	ing   engine.NeuroIngester
}

// ingestRows expands the registry's ingest-capable engines into their
// variant rows, in paper order.
func ingestRows(p Profile) ([]ingestRow, error) {
	engines, err := p.engines(engine.CapNeuroIngest)
	if err != nil {
		return nil, err
	}
	var rows []ingestRow
	for _, e := range engines {
		ing, ok := e.(engine.NeuroIngester)
		if !ok {
			return nil, fmt.Errorf("core: engine %s claims %s but implements no ingest path", e.Name(), engine.CapNeuroIngest)
		}
		for _, v := range ing.IngestVariants() {
			rows = append(rows, ingestRow{label: v, ing: ing})
		}
	}
	return rows, nil
}

func runFig11(ctx context.Context, p Profile) (*Table, error) {
	rows, err := ingestRows(p)
	if err != nil {
		return nil, err
	}
	rowNames := make([]string, len(rows))
	for i, r := range rows {
		rowNames[i] = r.label
	}
	t := NewTable("Fig 11: data ingest times", "virtual s", rowNames, labels(p.NeuroSubjects))
	for _, n := range p.NeuroSubjects {
		w, err := neuroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			cl := newCluster(defaultNodes(p))
			var d vtime.Duration
			err := engine.TraceRun(ctx, r.label, "neuro", cl, func() error {
				var err error
				d, err = r.ing.NeuroIngest(w, cl, nil, r.label)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("ingest %s at %d subjects: %w", r.label, n, err)
			}
			t.Set(r.label, colLabel(n), seconds(d))
		}
	}
	return t, nil
}

func checkFig11(t *Table) error {
	last := t.ColNames[len(t.ColNames)-1]
	// Myria is fastest; Spark within reach; SciDB-1 an order of magnitude
	// slower than SciDB-2; TensorFlow slower than the parallel ingesters.
	if err := wantLess("Myria < Spark", t.Get("Myria", last), t.Get("Spark", last)); err != nil {
		return err
	}
	if err := wantRatioAtLeast("SciDB-1 ~10× SciDB-2", t.Get("SciDB-1", last), t.Get("SciDB-2", last), 5); err != nil {
		return err
	}
	if err := wantRatioAtLeast("TensorFlow slower than Spark", t.Get("TensorFlow", last), t.Get("Spark", last), 1.5); err != nil {
		return err
	}
	// SciDB-2's conversion overhead keeps it behind Spark and Myria.
	if err := wantLess("Spark < SciDB-2", t.Get("Spark", last), t.Get("SciDB-2", last)); err != nil {
		return err
	}
	return nil
}
