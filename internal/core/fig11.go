package core

import (
	"fmt"

	"imagebench/internal/neuro"
	"imagebench/internal/vtime"
)

// Figure 11: data-ingest times for the neuroscience benchmark across all
// five systems (two SciDB variants), on the 16-node cluster, log-scale in
// the paper.

var ingestVariants = []string{"Myria", "Spark", "Dask", "TensorFlow", "SciDB-1", "SciDB-2"}

func init() {
	Register(&Experiment{
		ID:    "fig11",
		Title: "Data ingest times (neuroscience)",
		Paper: "Order-of-magnitude spread: Myria fastest (CSV file list, parallel), Spark close (master enumerates bucket first), Dask constant until >16 subjects, TensorFlow slow (all data through the master), SciDB-1 (from_array) slowest by ~10×, SciDB-2 (aio_input) on par with Spark/Myria but pays NIfTI→CSV conversion.",
		Run:   runFig11,
		Check: checkFig11,
	})
}

func runFig11(p Profile) (*Table, error) {
	t := NewTable("Fig 11: data ingest times", "virtual s", ingestVariants, labels(p.NeuroSubjects))
	for _, n := range p.NeuroSubjects {
		w, err := neuroWorkload(p, n)
		if err != nil {
			return nil, err
		}
		for _, sys := range ingestVariants {
			cl := newCluster(defaultNodes(p))
			d, err := neuro.IngestTime(w, cl, nil, sys)
			if err != nil {
				return nil, fmt.Errorf("ingest %s at %d subjects: %w", sys, n, err)
			}
			t.Set(sys, colLabel(n), seconds(vtime.Duration(d)))
		}
	}
	return t, nil
}

func checkFig11(t *Table) error {
	last := t.ColNames[len(t.ColNames)-1]
	// Myria is fastest; Spark within reach; SciDB-1 an order of magnitude
	// slower than SciDB-2; TensorFlow slower than the parallel ingesters.
	if err := wantLess("Myria < Spark", t.Get("Myria", last), t.Get("Spark", last)); err != nil {
		return err
	}
	if err := wantRatioAtLeast("SciDB-1 ~10× SciDB-2", t.Get("SciDB-1", last), t.Get("SciDB-2", last), 5); err != nil {
		return err
	}
	if err := wantRatioAtLeast("TensorFlow slower than Spark", t.Get("TensorFlow", last), t.Get("Spark", last), 1.5); err != nil {
		return err
	}
	// SciDB-2's conversion overhead keeps it behind Spark and Myria.
	if err := wantLess("Spark < SciDB-2", t.Get("Spark", last), t.Get("SciDB-2", last)); err != nil {
		return err
	}
	return nil
}
