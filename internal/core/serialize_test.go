package core

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
)

func TestProfileFingerprint(t *testing.T) {
	if Quick().Fingerprint() != Quick().Fingerprint() {
		t.Error("fingerprint of identical profiles differs")
	}
	if Quick().Fingerprint() == Full().Fingerprint() {
		t.Error("quick and full profiles share a fingerprint")
	}
	mutated := Quick()
	mutated.AstroW++
	if mutated.Fingerprint() == Quick().Fingerprint() {
		t.Error("parameter change did not change the fingerprint")
	}
	if len(Quick().Fingerprint()) != 64 {
		t.Errorf("fingerprint %q is not hex SHA-256", Quick().Fingerprint())
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"quick", "full"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%s) = %+v, %v", name, p, err)
		}
	}
	if _, err := ProfileByName("huge"); err == nil {
		t.Error("ProfileByName(huge) should fail")
	}
}

// TestTableJSONRoundTrip proves NaN (the paper's NA cells) survives the
// JSON encoding the result cache uses, as null.
func TestTableJSONRoundTrip(t *testing.T) {
	tab := NewTable("rt", "virtual s", []string{"a", "b"}, []string{"1", "2"})
	tab.Set("a", "1", 1.5)
	tab.Set("b", "2", 2e6)
	tab.Notes = []string{"note"}

	b, err := json.Marshal(tab)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var raw map[string]any
	json.Unmarshal(b, &raw)
	cells := raw["cells"].([]any)[0].([]any)
	if cells[1] != nil {
		t.Errorf("NA cell encoded as %v, want null", cells[1])
	}

	var got Table
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Title != "rt" || got.Unit != "virtual s" {
		t.Errorf("metadata lost: %+v", got)
	}
	if got.Get("a", "1") != 1.5 || got.Get("b", "2") != 2e6 {
		t.Error("cell values lost")
	}
	if !math.IsNaN(got.Get("a", "2")) || !math.IsNaN(got.Get("b", "1")) {
		t.Error("null cells did not come back as NaN")
	}
	if len(got.Notes) != 1 || got.Notes[0] != "note" {
		t.Errorf("notes lost: %v", got.Notes)
	}
}

func TestTableUnmarshalRejectsRagged(t *testing.T) {
	var tab Table
	bad := `{"title":"x","unit":"s","columns":["1","2"],"rows":["a"],"cells":[[1]]}`
	if err := json.Unmarshal([]byte(bad), &tab); err == nil {
		t.Error("ragged cells accepted")
	}
	bad = `{"title":"x","unit":"s","columns":["1"],"rows":["a","b"],"cells":[[1]]}`
	if err := json.Unmarshal([]byte(bad), &tab); err == nil {
		t.Error("missing row accepted")
	}
}

func TestVirtualSeconds(t *testing.T) {
	tab := NewTable("v", "virtual s", []string{"a"}, []string{"1", "2"})
	tab.Set("a", "1", 10)
	if got := tab.VirtualSeconds(); got != 10 {
		t.Errorf("VirtualSeconds = %v, want 10 (NA cells excluded)", got)
	}
	gb := NewTable("g", "GB", []string{"a"}, []string{"1"})
	gb.Set("a", "1", 99)
	if got := gb.VirtualSeconds(); got != 0 {
		t.Errorf("non-time table reported %v virtual seconds", got)
	}
}

func TestRunContext(t *testing.T) {
	ran := 0
	e := &Experiment{
		ID: "ctx-test", Title: "t", Paper: "p",
		Run: func(ctx context.Context, p Profile) (*Table, error) {
			ran++
			return NewTable("t", "s", []string{"a"}, []string{"1"}), nil
		},
	}
	if _, err := e.RunContext(context.Background(), Quick()); err != nil || ran != 1 {
		t.Fatalf("RunContext = %v (ran %d)", err, ran)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(canceled, Quick()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled RunContext = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Errorf("canceled context still ran the experiment (%d runs)", ran)
	}

	// Cancellation arriving mid-run is reported once the run returns.
	midway := &Experiment{
		ID: "ctx-mid", Title: "t", Paper: "p",
		Run: func(ctx context.Context, p Profile) (*Table, error) {
			cancelSelf()
			return NewTable("t", "s", []string{"a"}, []string{"1"}), nil
		},
	}
	ctx, c2 := context.WithCancel(context.Background())
	cancelSelf = c2
	if _, err := midway.RunContext(ctx, Quick()); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancellation = %v, want context.Canceled", err)
	}
}

// cancelSelf lets the mid-run cancellation test cancel its own context
// from inside Run.
var cancelSelf context.CancelFunc
