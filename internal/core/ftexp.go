package core

import (
	"context"
	"fmt"
	"strings"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/engine"
	"imagebench/internal/vtime"
)

// The ft* experiments reproduce the qualitative fault-tolerance axis of
// the paper's evaluation (Section 4 discussion; Zaharia et al. for the
// Spark mechanism): how each system degrades when nodes die or straggle
// mid-run. Each engine's recovery policy lives behind its
// engine.RunWithFaults hook — Spark recomputes only the lost partitions
// from lineage, Dask resubmits the lost tasks on survivors, TensorFlow
// restarts from its last checkpoint, Myria restarts the whole query,
// and SciDB offers no mid-query recovery at all: the operator reruns
// the query by hand. Each cell is the end-to-end virtual makespan
// including all recovery work, on the same deterministic fault
// schedule. The system rows come from
// engine.Supporting(CapFaultTolerance), so a sixth engine joins these
// tables by registering the capability, not by editing this file.

func init() {
	Register(&Experiment{
		ID:    "ftneuro",
		Title: "Neuroscience: recovery overhead under fault injection",
		Paper: "Spark recomputes only lost partitions (smallest overhead); Dask resubmits lost tasks; TensorFlow restarts from checkpoint; Myria restarts the whole query; SciDB fails and pays a full manual rerun.",
		Run:   runFTNeuro,
		Check: checkFT,
	})
	Register(&Experiment{
		ID:    "ftastro",
		Title: "Astronomy: recovery overhead under fault injection",
		Paper: "Same qualitative ordering as ftneuro on the astronomy pipeline: Spark's lineage recovery is partial, Myria pays a full-query restart.",
		Run:   runFTAstro,
		Check: checkFT,
	})
}

// ftNeuroEngines returns the fault-tolerance comparison set.
func ftNeuroEngines(p Profile) ([]engine.Engine, error) {
	return p.engines(engine.CapFaultTolerance)
}

// ftAstroEngines returns the fault-capable engines that also run the
// astronomy pipeline end-to-end, in fault-comparison order.
func ftAstroEngines(p Profile) ([]engine.Engine, error) {
	all, err := p.engines(engine.CapFaultTolerance)
	if err != nil {
		return nil, err
	}
	var out []engine.Engine
	for _, e := range all {
		if e.Capabilities().Has(engine.CapAstroE2E) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, engine.Unsupported("core: no allowed fault-tolerant engine runs astronomy end-to-end (systems filter %v)", p.Systems)
	}
	return out, nil
}

// ftCluster builds a fresh experiment cluster with the scenario's faults
// injected (resolved against the system's own baseline makespan).
func ftCluster(nodes int, minMem int64, sc cluster.Scenario, ref vtime.Duration) (*cluster.Cluster, error) {
	cl := newClusterMem(nodes, minMem)
	if len(sc) > 0 {
		if err := cl.Inject(sc.Faults(ref)...); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// ftScenarios parses and validates the profile's scenario set against
// the cluster size: node 0 hosts every system's driver/coordinator/
// master and cannot be faulted recoverably.
func ftScenarios(p Profile, nodes int) ([]string, []cluster.Scenario, error) {
	names := p.faultScenarios()
	parsed := make([]cluster.Scenario, len(names))
	for i, name := range names {
		sc, err := cluster.ParseScenario(name)
		if err != nil {
			return nil, nil, err
		}
		if sc.TouchesNode(0) {
			return nil, nil, fmt.Errorf("core: fault scenario %q touches node 0, which hosts the driver/coordinator", name)
		}
		if sc.MaxNode() >= nodes {
			return nil, nil, fmt.Errorf("core: fault scenario %q touches node %d but the cluster has %d nodes", name, sc.MaxNode(), nodes)
		}
		parsed[i] = sc
	}
	return names, parsed, nil
}

// runFTTable drives one domain's recovery-overhead table: per engine, a
// fault-free reference run fixes the scenario kill times, then each
// scenario runs on a fresh cluster with those faults injected under the
// engine's recovery policy (engine.RunWithFaults).
func runFTTable(title string, p Profile, nodes int, engines []engine.Engine,
	run func(eng engine.Engine, cl *cluster.Cluster) error, minMem int64) (*Table, error) {
	names, parsed, err := ftScenarios(p, nodes)
	if err != nil {
		return nil, err
	}
	t := NewTable(title, "virtual s", engine.Names(engines), names)
	for _, eng := range engines {
		sys := eng.Name()
		cl := newClusterMem(nodes, minMem)
		if err := run(eng, cl); err != nil {
			return nil, fmt.Errorf("%s baseline: %w", sys, err)
		}
		ref := vtime.Duration(cl.Makespan())
		for i, sc := range parsed {
			if len(sc) == 0 {
				t.Set(sys, names[i], seconds(ref))
				continue
			}
			fcl, err := ftCluster(nodes, minMem, sc, ref)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", sys, names[i], err)
			}
			reruns, err := eng.RunWithFaults(fcl, func() error { return run(eng, fcl) })
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", sys, names[i], err)
			}
			t.Set(sys, names[i], seconds(vtime.Duration(fcl.Makespan())))
			if reruns > 0 {
				t.Notes = append(t.Notes, fmt.Sprintf("%s %s: query failed %d time(s); cell includes the manual rerun (no mid-query recovery)",
					sys, names[i], reruns))
			}
		}
	}
	t.Notes = append(t.Notes,
		"kill/slow times are fractions of each system's own fault-free makespan",
		"cells are end-to-end makespans including all recovery work")
	return t, nil
}

func runFTNeuro(ctx context.Context, p Profile) (*Table, error) {
	engines, err := ftNeuroEngines(p)
	if err != nil {
		return nil, err
	}
	nodes := defaultNodes(p)
	n := p.NeuroSubjects[0] // recovery shape, not scale: the smallest dataset
	w, err := neuroWorkload(p, n)
	if err != nil {
		return nil, err
	}
	model := cost.Default()
	run := func(eng engine.Engine, cl *cluster.Cluster) error {
		_, err := eng.RunNeuro(ctx, w, cl, model, engine.Opts{CacheInput: true})
		return err
	}
	return runFTTable(fmt.Sprintf("ftneuro: neuroscience recovery overhead (%d subject(s), %d nodes)", n, nodes),
		p, nodes, engines, run, engine.MemFloor(w.InputModelBytes(), nodes))
}

func runFTAstro(ctx context.Context, p Profile) (*Table, error) {
	engines, err := ftAstroEngines(p)
	if err != nil {
		return nil, err
	}
	nodes := defaultNodes(p)
	n := p.AstroVisits[0]
	w, err := astroWorkload(p, n)
	if err != nil {
		return nil, err
	}
	model := cost.Default()
	run := func(eng engine.Engine, cl *cluster.Cluster) error {
		_, err := eng.RunAstro(ctx, w, cl, model, engine.Opts{})
		return err
	}
	return runFTTable(fmt.Sprintf("ftastro: astronomy recovery overhead (%d visit(s), %d nodes)", n, nodes),
		p, nodes, engines, run, engine.MemFloor(w.InputModelBytes(), nodes))
}

// checkFT validates the paper's qualitative fault-tolerance ordering on
// whatever scenario grid the profile defines. With the canonical grid it
// asserts: every fault costs time; an extended kill scenario costs at
// least its prefix; Spark's lineage recovery is partial (smaller
// relative overhead than Myria's full-query restart); and SciDB's
// failure-plus-rerun is costlier than Spark's partial recovery.
func checkFT(t *Table) error {
	baseCol := ""
	killCols := []string{}
	slowCols := []string{}
	for _, c := range t.ColNames {
		sc, err := cluster.ParseScenario(c)
		if err != nil {
			continue
		}
		if len(sc) == 0 {
			baseCol = c
			continue
		}
		if sc.Kills() > 0 {
			killCols = append(killCols, c)
		} else {
			slowCols = append(slowCols, c)
		}
	}
	if baseCol == "" {
		// An overridden grid without a baseline column: only require
		// every cell to be a positive makespan.
		for _, sys := range t.RowNames {
			for _, c := range t.ColNames {
				if !(t.Get(sys, c) > 0) {
					return fmt.Errorf("%s/%s: non-positive makespan", sys, c)
				}
			}
		}
		return nil
	}
	overhead := func(sys, col string) float64 {
		base := t.Get(sys, baseCol)
		return (t.Get(sys, col) - base) / base
	}
	// Engines that recover at task granularity (lineage recompute,
	// dynamic resubmission): a kill landing where survivors have slack
	// can cost them ~nothing, which is itself the paper's qualitative
	// point. The restart-based systems always pay for a kill. The
	// classification comes from the registry's recovery kinds.
	partialRecovery := func(sys string) bool {
		e, err := engine.Lookup(sys)
		return err == nil && e.RecoveryKind().Partial()
	}
	for _, sys := range t.RowNames {
		base := t.Get(sys, baseCol)
		if !(base > 0) {
			return fmt.Errorf("%s: non-positive baseline", sys)
		}
		for _, c := range slowCols {
			if err := wantLess(sys+": baseline < "+c, base, t.Get(sys, c)); err != nil {
				return err
			}
		}
		for _, c := range killCols {
			if partialRecovery(sys) {
				if t.Get(sys, c) < base {
					return fmt.Errorf("%s: %s (%.1fs) cheaper than baseline (%.1fs)", sys, c, t.Get(sys, c), base)
				}
			} else if err := wantLess(sys+": baseline < "+c, base, t.Get(sys, c)); err != nil {
				return err
			}
		}
	}
	// Piling a second kill onto a scenario cannot make it cheaper.
	for _, a := range killCols {
		for _, b := range killCols {
			if a != b && strings.HasPrefix(b, a+"+") {
				for _, sys := range t.RowNames {
					if t.Get(sys, b) < t.Get(sys, a) {
						return fmt.Errorf("%s: %q (%.1fs) cheaper than its prefix %q (%.1fs)",
							sys, b, t.Get(sys, b), a, t.Get(sys, a))
					}
				}
			}
		}
	}
	// The paper's ordering: partial lineage recovery beats a full-query
	// restart, which beats nothing-at-all-plus-manual-rerun.
	hasRow := func(name string) bool {
		for _, r := range t.RowNames {
			if r == name {
				return true
			}
		}
		return false
	}
	for _, c := range killCols {
		if hasRow("Spark") && hasRow("Myria") {
			if err := wantLess("Spark partial recovery < Myria full restart at "+c,
				overhead("Spark", c), overhead("Myria", c)); err != nil {
				return err
			}
		}
		if hasRow("Spark") && hasRow("SciDB") {
			if err := wantLess("Spark partial recovery < SciDB failure+rerun at "+c,
				overhead("Spark", c), overhead("SciDB", c)); err != nil {
				return err
			}
		}
	}
	return nil
}
