package core

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden/")

// goldenIDs pins every registered experiment byte-for-byte: the
// simulator is deterministic, so for each ID + profile the JSON is
// reproducible and any diff is a semantic change — bump the
// result-cache key version when one is intentional. Enumerating the
// registry (rather than a hand-picked list) means a newly registered
// experiment fails TestGoldenFilesAreCommitted until its golden file is
// generated with -update.
func goldenIDs() []string {
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// TestGoldenTables locks the quick-profile JSON of every registered
// experiment against testdata/golden/. Regenerate intentionally with:
//
//	go test ./internal/core -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	for _, id := range goldenIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := e.Run(context.Background(), Quick())
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(tab, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", id+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s quick-profile output drifted from %s (run with -update if intentional)\n%s",
					id, path, diffHint(want, got))
			}
		})
	}
}

// diffHint points at the first differing line — enough to orient
// without pulling in a diff library.
func diffHint(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first diff at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: golden %d lines, got %d lines", len(wl), len(gl))
}

// TestGoldenFilesAreCommitted guards against an -update that silently
// never ran: every registered experiment must have its golden file, so
// registering a new experiment without golden-pinning it is a test
// failure, not a silent coverage gap.
func TestGoldenFilesAreCommitted(t *testing.T) {
	for _, id := range goldenIDs() {
		if _, err := os.Stat(filepath.Join("testdata", "golden", id+".json")); err != nil {
			t.Errorf("missing golden file for %s: %v", id, err)
		}
	}
}
