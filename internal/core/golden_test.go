package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden/")

// goldenIDs are the experiments pinned byte-for-byte: the fast ones, so
// the regression net costs seconds, spanning both domains (neuro,
// astro), both table shapes (runtime sweeps, static counts), and NA
// cells — plus both fault-injection tables, which pin the recovery
// semantics of all five systems (same ID + profile → byte-identical
// JSON). The simulator is deterministic, so any diff is a semantic
// change — bump the result-cache key version when one is intentional.
var goldenIDs = []string{"fig11", "fig12a", "fig12b", "table1", "sec531scidb", "ftneuro", "ftastro"}

// TestGoldenTables locks the quick-profile JSON of selected experiments
// against testdata/golden/. Regenerate intentionally with:
//
//	go test ./internal/core -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := e.Run(Quick())
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(tab, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", id+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s quick-profile output drifted from %s (run with -update if intentional)\n%s",
					id, path, diffHint(want, got))
			}
		})
	}
}

// diffHint points at the first differing line — enough to orient
// without pulling in a diff library.
func diffHint(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first diff at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: golden %d lines, got %d lines", len(wl), len(gl))
}

// TestGoldenFilesAreCommitted guards against an -update that silently
// never ran: every pinned experiment must have its golden file.
func TestGoldenFilesAreCommitted(t *testing.T) {
	for _, id := range goldenIDs {
		if _, err := os.Stat(filepath.Join("testdata", "golden", id+".json")); err != nil {
			t.Errorf("missing golden file for %s: %v", id, err)
		}
	}
}
