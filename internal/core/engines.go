package core

import (
	"imagebench/internal/engine"
)

// This file is core's view of the engine registry: every experiment
// that compares systems asks the registry which engines participate
// (engine.Supporting, in paper order) instead of carrying its own
// system-name list, and the profile's Systems allowlist filters that
// set — which is what makes `imagebench -systems` and the sweep's
// systems axis work without touching any experiment.

// engines returns the registry's engines holding cap, in paper order,
// filtered by the profile's Systems allowlist. An allowlist that
// empties the set is reported via engine.ErrUnsupported so callers can
// tell "not applicable under this filter" from a real failure.
func (p Profile) engines(c engine.Cap) ([]engine.Engine, error) {
	out := p.filterEngines(engine.Supporting(c))
	if len(out) == 0 {
		return nil, engine.Unsupported("core: no allowed engine supports %s (systems filter %v)", c, p.Systems)
	}
	return out, nil
}

// filterEngines applies the profile's Systems allowlist (empty = allow
// all), preserving order.
func (p Profile) filterEngines(engines []engine.Engine) []engine.Engine {
	if len(p.Systems) == 0 {
		return engines
	}
	allowed := make(map[string]bool, len(p.Systems))
	for _, s := range p.Systems {
		allowed[s] = true
	}
	var out []engine.Engine
	for _, e := range engines {
		if allowed[e.Name()] {
			out = append(out, e)
		}
	}
	return out
}

// requireEngine gates a per-engine experiment (tuning studies,
// ablations) on its subject engine being registered and allowed by the
// profile's Systems filter.
func (p Profile) requireEngine(name string) (engine.Engine, error) {
	e, err := engine.Lookup(name)
	if err != nil {
		return nil, err
	}
	if len(p.Systems) > 0 {
		found := false
		for _, s := range p.Systems {
			if s == name {
				found = true
				break
			}
		}
		if !found {
			return nil, engine.Unsupported("core: engine %s excluded by systems filter %v", name, p.Systems)
		}
	}
	return e, nil
}

// registerForEngine registers an experiment only when its subject
// engine is in the registry: per-engine tuning studies and ablations
// follow their engine in and out of the build, so deleting an engine
// adapter removes its whole experiment surface in one file.
func registerForEngine(name string, e *Experiment) {
	if _, err := engine.Lookup(name); err != nil {
		return
	}
	Register(e)
}
