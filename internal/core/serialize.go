package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// This file holds the serialization and service hooks used by the
// experiment service (internal/runner, internal/results,
// cmd/imagebenchd): a stable profile fingerprint for content-addressed
// result keys, JSON round-tripping for Table (NaN cells become null),
// and a context-aware run entry point.

// Fingerprint returns a stable content hash of the profile. Two profiles
// with identical parameters always fingerprint identically, so the hash
// can key caches across processes and restarts.
func (p Profile) Fingerprint() string {
	b, err := json.Marshal(p)
	if err != nil {
		// Profile is a flat struct of strings and ints; marshal cannot
		// fail unless the type itself is broken.
		panic("core: marshal profile: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ProfileByName returns one of the built-in profiles ("quick" or
// "full").
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "quick":
		return Quick(), nil
	case "full":
		return Full(), nil
	}
	return Profile{}, fmt.Errorf("core: unknown profile %q (want \"quick\" or \"full\")", name)
}

// jsonTable is the wire form of Table. Cells use *float64 so the
// paper's NA cells (NaN in memory, which encoding/json rejects)
// round-trip as JSON null.
type jsonTable struct {
	Title   string       `json:"title"`
	Unit    string       `json:"unit"`
	Columns []string     `json:"columns"`
	Rows    []string     `json:"rows"`
	Cells   [][]*float64 `json:"cells"`
	Notes   []string     `json:"notes,omitempty"`
}

// NullableCells returns the table's cells with NaN (the paper's NA
// entries) as nil — the wire convention shared by the result cache's
// JSON encoding and the CLI's -json output.
func (t *Table) NullableCells() [][]*float64 {
	cells := make([][]*float64, len(t.Cells))
	for i, row := range t.Cells {
		cells[i] = make([]*float64, len(row))
		for j, v := range row {
			if !math.IsNaN(v) {
				v := v
				cells[i][j] = &v
			}
		}
	}
	return cells
}

// MarshalJSON encodes the table with NaN cells as null.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTable{
		Title: t.Title, Unit: t.Unit,
		Columns: t.ColNames, Rows: t.RowNames,
		Cells: t.NullableCells(), Notes: t.Notes,
	})
}

// UnmarshalJSON decodes a table written by MarshalJSON, turning null
// cells back into NaN.
func (t *Table) UnmarshalJSON(data []byte) error {
	var jt jsonTable
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	for i, row := range jt.Cells {
		if len(row) != len(jt.Columns) {
			return fmt.Errorf("core: table %q row %d has %d cells, want %d", jt.Title, i, len(row), len(jt.Columns))
		}
	}
	if len(jt.Cells) != len(jt.Rows) {
		return fmt.Errorf("core: table %q has %d cell rows, want %d", jt.Title, len(jt.Cells), len(jt.Rows))
	}
	t.Title, t.Unit = jt.Title, jt.Unit
	t.ColNames, t.RowNames = jt.Columns, jt.Rows
	t.Notes = jt.Notes
	t.Cells = make([][]float64, len(jt.Cells))
	for i, row := range jt.Cells {
		t.Cells[i] = make([]float64, len(row))
		for j, v := range row {
			if v == nil {
				t.Cells[i][j] = math.NaN()
			} else {
				t.Cells[i][j] = *v
			}
		}
	}
	return nil
}

// VirtualSeconds returns the total simulated time the table reports:
// the sum of its non-NA cells when the unit is virtual seconds, zero
// for tables in other units (GB, LoC, ratios). The service layer
// aggregates this into its "virtual seconds simulated" metric.
func (t *Table) VirtualSeconds() float64 {
	if !strings.Contains(t.Unit, "virtual s") {
		return 0
	}
	var sum float64
	for _, row := range t.Cells {
		for _, v := range row {
			if !math.IsNaN(v) {
				sum += v
			}
		}
	}
	return sum
}

// NonNACells returns the number of populated (non-NA) cells — the
// denominator for per-cell metrics like the bench harness's
// vs_per_cell.
func (t *Table) NonNACells() int {
	n := 0
	for _, row := range t.Cells {
		for _, v := range row {
			if !math.IsNaN(v) {
				n++
			}
		}
	}
	return n
}

// RunContext executes the experiment under p, honoring ctx. The
// registered Run functions are deterministic, CPU-bound virtual-time
// simulations with no internal blocking, so cancellation is honored at
// run granularity: a canceled context prevents the run from starting,
// and a cancellation that arrives mid-run is reported once the run
// returns.
func (e *Experiment) RunContext(ctx context.Context, p Profile) (*Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %s not started: %w", e.ID, err)
	}
	tab, err := e.Run(ctx, p)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return tab, nil
}
