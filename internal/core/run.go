package core

import (
	"fmt"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/neuro"
	"imagebench/internal/synth"
	"imagebench/internal/vtime"
)

// newCluster builds the standard experiment cluster: nodes × 8-core
// machines modeled on r3.2xlarge.
func newCluster(nodes int) *cluster.Cluster {
	return newClusterMem(nodes, 0)
}

// newClusterMem is newCluster with a per-node memory floor: speedup
// experiments scale task counts beyond the paper's data:memory ratio, so
// the budget grows with the workload (fig15 studies memory pressure
// explicitly with its own budget).
func newClusterMem(nodes int, minMemPerNode int64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	if minMemPerNode > cfg.MemPerNode {
		cfg.MemPerNode = minMemPerNode
	}
	return cluster.New(cfg)
}

// defaultNodes is the paper's base cluster size, scaled down in the quick
// profile.
func defaultNodes(p Profile) int {
	if p.Name == "quick" {
		return 4
	}
	return 16
}

// neuroWorkload builds (and caches per profile) the synthetic dMRI
// dataset for the given subject count.
func neuroWorkload(p Profile, subjects int) (*neuro.Workload, error) {
	cfg := synth.DefaultNeuro(subjects)
	cfg.NX, cfg.NY, cfg.NZ, cfg.T, cfg.B0 = p.NeuroNX, p.NeuroNY, p.NeuroNZ, p.NeuroT, p.NeuroB0
	return neuro.NewWorkloadCfg(cfg)
}

// astroWorkload builds the synthetic survey dataset for the given visit
// count.
func astroWorkload(p Profile, visits int) (*astro.Workload, error) {
	cfg := synth.DefaultAstro(visits)
	cfg.Sensors, cfg.W, cfg.H, cfg.Sources = p.AstroSensors, p.AstroW, p.AstroH, p.AstroSources
	return astro.NewWorkloadCfg(cfg)
}

// neuroEndToEnd runs the full neuroscience pipeline on one system and
// returns the virtual runtime (cluster makespan).
func neuroEndToEnd(w *neuro.Workload, nodes int, sys string) (vtime.Duration, error) {
	cl := newClusterMem(nodes, 10*w.InputModelBytes()/int64(nodes))
	model := cost.Default()
	var err error
	switch sys {
	case "Spark":
		_, err = neuro.RunSpark(w, cl, model, neuro.SparkOpts{Partitions: cl.Workers(), CacheInput: true})
	case "Myria":
		_, err = neuro.RunMyria(w, cl, model, neuro.MyriaOpts{})
	case "Dask":
		_, err = neuro.RunDask(w, cl, model)
	default:
		return 0, fmt.Errorf("core: no end-to-end neuroscience run for %q", sys)
	}
	if err != nil {
		return 0, err
	}
	return vtime.Duration(cl.Makespan()), nil
}

// astroEndToEnd runs the full astronomy pipeline on one system and
// returns the virtual runtime.
func astroEndToEnd(w *astro.Workload, nodes int, sys string) (vtime.Duration, error) {
	cl := newClusterMem(nodes, 10*w.InputModelBytes()/int64(nodes))
	model := cost.Default()
	var err error
	switch sys {
	case "Spark":
		_, err = astro.RunSpark(w, cl, model, astro.SparkOpts{Partitions: cl.Workers()})
	case "Myria":
		_, err = astro.RunMyria(w, cl, model, astro.MyriaOpts{})
	default:
		return 0, fmt.Errorf("core: no end-to-end astronomy run for %q", sys)
	}
	if err != nil {
		return 0, err
	}
	return vtime.Duration(cl.Makespan()), nil
}

// seconds converts a duration to float seconds for table cells.
func seconds(d vtime.Duration) float64 { return d.Seconds() }

// colLabel formats a sweep point (subject or visit count).
func colLabel(n int) string { return fmt.Sprintf("%d", n) }
