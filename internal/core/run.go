package core

import (
	"context"
	"fmt"

	"imagebench/internal/astro"
	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/engine"
	"imagebench/internal/neuro"
	"imagebench/internal/synth"
	"imagebench/internal/vtime"
)

// newCluster builds the standard experiment cluster: nodes × 8-core
// machines modeled on r3.2xlarge.
func newCluster(nodes int) *cluster.Cluster {
	return newClusterMem(nodes, 0)
}

// newClusterMem is newCluster with a per-node memory floor (fig15
// studies memory pressure explicitly with its own budget).
func newClusterMem(nodes int, minMemPerNode int64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	if minMemPerNode > cfg.MemPerNode {
		cfg.MemPerNode = minMemPerNode
	}
	return cluster.New(cfg)
}

// runCluster builds the end-to-end experiment cluster for a workload
// with the given input model size, applying the shared engine.MemFloor
// budget (the end-to-end and fault-tolerance experiments size their
// clusters identically).
func runCluster(nodes int, inputModelBytes int64) *cluster.Cluster {
	return newClusterMem(nodes, engine.MemFloor(inputModelBytes, nodes))
}

// defaultNodes is the paper's base cluster size, scaled down in the quick
// profile.
func defaultNodes(p Profile) int {
	if p.Name == "quick" {
		return 4
	}
	return 16
}

// neuroWorkload builds (and caches per profile) the synthetic dMRI
// dataset for the given subject count.
func neuroWorkload(p Profile, subjects int) (*neuro.Workload, error) {
	cfg := synth.DefaultNeuro(subjects)
	cfg.NX, cfg.NY, cfg.NZ, cfg.T, cfg.B0 = p.NeuroNX, p.NeuroNY, p.NeuroNZ, p.NeuroT, p.NeuroB0
	return neuro.NewWorkloadCfg(cfg)
}

// astroWorkload builds the synthetic survey dataset for the given visit
// count.
func astroWorkload(p Profile, visits int) (*astro.Workload, error) {
	cfg := synth.DefaultAstro(visits)
	cfg.Sensors, cfg.W, cfg.H, cfg.Sources = p.AstroSensors, p.AstroW, p.AstroH, p.AstroSources
	return astro.NewWorkloadCfg(cfg)
}

// neuroEndToEnd runs the full neuroscience pipeline on one engine and
// returns the virtual runtime (cluster makespan).
func neuroEndToEnd(ctx context.Context, w *neuro.Workload, nodes int, eng engine.Engine) (vtime.Duration, error) {
	cl := runCluster(nodes, w.InputModelBytes())
	res, err := eng.RunNeuro(ctx, w, cl, cost.Default(), engine.Opts{CacheInput: true})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// astroEndToEnd runs the full astronomy pipeline on one engine and
// returns the virtual runtime.
func astroEndToEnd(ctx context.Context, w *astro.Workload, nodes int, eng engine.Engine) (vtime.Duration, error) {
	cl := runCluster(nodes, w.InputModelBytes())
	res, err := eng.RunAstro(ctx, w, cl, cost.Default(), engine.Opts{})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// seconds converts a duration to float seconds for table cells.
func seconds(d vtime.Duration) float64 { return d.Seconds() }

// colLabel formats a sweep point (subject or visit count).
func colLabel(n int) string { return fmt.Sprintf("%d", n) }
