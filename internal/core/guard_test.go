package core

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoStringlyTypedDispatch guards the Engine API refactor: the
// experiment harness must derive its system sets from the engine
// registry, never from hard-coded name lists or switch-on-system-name
// blocks. Shape checks may still reference individual engines by name
// (t.Get("Spark", …) encodes the paper's findings); what must not come
// back is *dispatch* — a switch over a system variable, a []string
// literal enumerating engines, or a map keyed by engine names deciding
// behavior. Any of those would mean a sixth engine needs edits here
// instead of one adapter file.
func TestNoStringlyTypedDispatch(t *testing.T) {
	engineName := `(Spark|Myria|Dask|SciDB|TensorFlow)`
	forbidden := []struct {
		what string
		re   *regexp.Regexp
	}{
		{
			"switch over a system-name variable",
			regexp.MustCompile(`\bswitch\s+sys(Variant)?\b`),
		},
		{
			"[]string literal of engine names",
			regexp.MustCompile(`\[\]string\s*\{[^}]*"` + engineName + `(-1|-2|-incremental)?"`),
		},
		{
			"map literal keyed by engine names",
			regexp.MustCompile(`map\[string\][^\n]*\{[^}]*"` + engineName + `"\s*:`),
		},
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range entries {
		name := entry.Name()
		if entry.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(".", name))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range forbidden {
			if loc := f.re.FindIndex(src); loc != nil {
				line := 1 + strings.Count(string(src[:loc[0]]), "\n")
				t.Errorf("%s:%d: %s (%q) — derive the set from engine.Supporting/engine.Lookup instead",
					name, line, f.what, src[loc[0]:loc[1]])
			}
		}
	}
}
