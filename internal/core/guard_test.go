package core_test

import (
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/enginedispatch"
)

// TestNoStringlyTypedDispatch guards the Engine API refactor: the
// experiment harness must derive its system sets from the engine
// registry, never from hard-coded name lists or switch-on-system-name
// blocks. Shape checks may still reference individual engines by name
// (t.Get("Spark", …) encodes the paper's findings); what must not come
// back is *dispatch* — a switch over a system variable, a []string
// literal enumerating engines, or a map keyed by engine names deciding
// behavior. Any of those would mean a sixth engine needs edits here
// instead of one adapter file.
//
// The check is the enginedispatch analyzer — type-checked, so it sees
// dispatch anywhere in the tree (nested switches, map values, composite
// fields) instead of the line-anchored regexes this test used to carry.
// CI additionally runs the analyzer over the whole module via the
// imagebench-vet tool; this test keeps the invariant enforced for plain
// `go test ./internal/core` runs.
func TestNoStringlyTypedDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the package; skipped in -short")
	}
	analysistest.RunClean(t, enginedispatch.Analyzer, false, "imagebench/internal/core")
}
