package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"imagebench/internal/obs"
	"imagebench/internal/vtime"
)

// TestFTNeuroStageSpansSumToReportedSeconds is the tracing acceptance
// check: running ftneuro under a tracer, the virtual durations of each
// engine's stage spans must sum to exactly the virtual seconds the
// experiment reports for that engine (the table row sum). This is the
// partition invariant — stage marks tile every cluster's timeline with
// no gaps, overlaps, or residue, including fault-retry reruns.
func TestFTNeuroStageSpansSumToReportedSeconds(t *testing.T) {
	e, err := Lookup("ftneuro")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	tab, err := e.Run(ctx, Quick())
	if err != nil {
		t.Fatal(err)
	}

	// Reported virtual seconds per engine: the row sum. The fault-free
	// column reuses the baseline run's makespan, so baseline + scenario
	// runs is exactly one run per cell.
	want := make(map[string]float64)
	for _, sys := range tab.RowNames {
		for _, c := range tab.ColNames {
			want[sys] += tab.Get(sys, c)
		}
	}

	got := make(map[string]float64)
	stageSpans := 0
	for _, sp := range tr.Spans() {
		if kind, _ := sp.Attr("kind"); kind != "stage" {
			continue
		}
		eng, ok := sp.Attr("engine")
		if !ok {
			t.Fatalf("stage span %q has no engine attr", sp.Name)
		}
		vs, ve, hasV := sp.Virtual()
		if !hasV {
			t.Fatalf("stage span %q has no virtual window", sp.Name)
		}
		if ve < vs {
			t.Fatalf("stage span %q has negative virtual duration [%v, %v]", sp.Name, vs, ve)
		}
		got[eng] += vtime.Duration(ve - vs).Seconds()
		stageSpans++
	}
	if stageSpans == 0 {
		t.Fatal("traced ftneuro run produced no stage spans")
	}

	for _, sys := range tab.RowNames {
		if math.Abs(got[sys]-want[sys]) > 1e-6 {
			t.Errorf("%s: stage spans sum to %.9fs virtual, table reports %.9fs", sys, got[sys], want[sys])
		}
	}
	for eng := range got {
		if _, ok := want[eng]; !ok {
			t.Errorf("stage spans for engine %q which has no table row", eng)
		}
	}

	// The same trace must export as a loadable Chrome trace.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

// TestTracedRunMatchesUntraced is the zero-perturbation check: the same
// experiment run with and without a tracer must produce byte-identical
// tables. Tracing observes the simulation; it must never steer it.
func TestTracedRunMatchesUntraced(t *testing.T) {
	e, err := Lookup("ftneuro")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Run(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	traced, err := e.Run(obs.WithTracer(context.Background(), tr), Quick())
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("traced run drifted from untraced run:\nuntraced: %s\ntraced:   %s", a, b)
	}
	if len(tr.Spans()) == 0 {
		t.Error("traced run recorded no spans")
	}
}
