package core

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"imagebench/internal/engine"
)

// Table 1: lines of code per use case per system. The paper counted the
// Python/AQL/MyriaL the authors wrote per system; we count the Go of our
// per-engine pipeline implementations the same way (comments and blank
// lines excluded), which preserves the finding: systems that can reuse
// the reference code (Spark, Myria, Dask) need little per-system code,
// while SciDB and TensorFlow require rewrites — and some steps are simply
// not implementable there (NA). Which file implements which (use case,
// system) pair is registry data: each engine adapter reports its own
// source files (engine.SourceFiler), so a sixth engine appears in this
// table by registering, not by editing it.

func init() {
	Register(&Experiment{
		ID:    "table1",
		Title: "Lines of code per implementation",
		Paper: "Spark/Myria/Dask reuse the reference and add little glue; SciDB and TensorFlow require partial rewrites and cannot express all steps (NA).",
		Run:   runTable1,
		Check: checkTable1,
	})
}

// referenceFiles maps use case → the shared reference implementation
// the per-system files are measured against.
var referenceFiles = map[string]string{
	engine.UseNeuro: "neuro/neuro.go",
	engine.UseAstro: "astro/astro.go",
}

// internalDir locates the repository's internal/ directory from this
// source file's compile-time path (experiments run from a checkout).
func internalDir() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("core: cannot locate source directory")
	}
	dir := filepath.Dir(filepath.Dir(file)) // …/internal
	if _, err := os.Stat(dir); err != nil {
		return "", fmt.Errorf("core: source tree not available: %w", err)
	}
	return dir, nil
}

// CountLoC counts non-blank, non-comment lines of a Go source file.
func CountLoC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
		case isInstrumentation(line):
			// Observability stage marks are harness plumbing, not the
			// per-system pipeline code the paper's LoC comparison measures.
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n, sc.Err()
}

// isInstrumentation reports whether a trimmed source line is a pure
// tracing statement (a cluster stage mark) rather than pipeline logic.
func isInstrumentation(line string) bool {
	return strings.HasSuffix(line, ")") && strings.Contains(line, ".MarkStage(")
}

func runTable1(_ context.Context, p Profile) (*Table, error) {
	engines, err := p.engines(engine.CapLoC)
	if err != nil {
		return nil, err
	}
	dir, err := internalDir()
	if err != nil {
		return nil, err
	}
	cols := append([]string{"Reference"}, engine.Names(engines)...)
	t := NewTable("Table 1: lines of Go per implementation", "LoC",
		[]string{engine.UseNeuro, engine.UseAstro}, cols)
	setLoC := func(useCase, col, rel string) error {
		n, err := CountLoC(filepath.Join(dir, rel))
		if err != nil {
			return err
		}
		t.Set(useCase, col, float64(n))
		return nil
	}
	for useCase, rel := range referenceFiles {
		if err := setLoC(useCase, "Reference", rel); err != nil {
			return nil, err
		}
	}
	for _, e := range engines {
		sf, ok := e.(engine.SourceFiler)
		if !ok {
			return nil, fmt.Errorf("core: engine %s claims %s but reports no source files", e.Name(), engine.CapLoC)
		}
		// Use cases absent from the engine's file map stay NaN — the
		// paper's NA cells.
		for useCase, rel := range sf.SourceFiles() {
			if err := setLoC(useCase, e.Name(), rel); err != nil {
				return nil, err
			}
		}
	}
	t.Notes = append(t.Notes,
		"NA = not implementable on that system (paper Table 1)",
		"SciDB/TensorFlow files implement only the steps the paper could express there")
	return t, nil
}

func checkTable1(t *Table) error {
	// Every implemented cell is positive; TensorFlow/Astronomy is NA.
	if !math.IsNaN(t.Get(engine.UseAstro, "TensorFlow")) {
		return fmt.Errorf("TensorFlow astronomy should be NA")
	}
	// The reference-reuse systems (the end-to-end neuro set) all have a
	// counted neuroscience implementation.
	for _, e := range engine.Supporting(engine.CapNeuroE2E) {
		if t.Get(engine.UseNeuro, e.Name()) <= 0 {
			return fmt.Errorf("%s neuroscience LoC missing", e.Name())
		}
	}
	return nil
}
