package core

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Table 1: lines of code per use case per system. The paper counted the
// Python/AQL/MyriaL the authors wrote per system; we count the Go of our
// per-engine pipeline implementations the same way (comments and blank
// lines excluded), which preserves the finding: systems that can reuse
// the reference code (Spark, Myria, Dask) need little per-system code,
// while SciDB and TensorFlow require rewrites — and some steps are simply
// not implementable there (NA).

func init() {
	Register(&Experiment{
		ID:    "table1",
		Title: "Lines of code per implementation",
		Paper: "Spark/Myria/Dask reuse the reference and add little glue; SciDB and TensorFlow require partial rewrites and cannot express all steps (NA).",
		Run:   runTable1,
		Check: checkTable1,
	})
}

// table1Files maps (use case, system) → implementation source file.
var table1Files = map[string]map[string]string{
	"Neuroscience": {
		"Reference":  "neuro/neuro.go",
		"Spark":      "neuro/spark.go",
		"Myria":      "neuro/myria.go",
		"Dask":       "neuro/dask.go",
		"SciDB":      "neuro/scidb.go",
		"TensorFlow": "neuro/tf.go",
	},
	"Astronomy": {
		"Reference": "astro/astro.go",
		"Spark":     "astro/spark.go",
		"Myria":     "astro/myria.go",
		"Dask":      "astro/dask.go",
		"SciDB":     "astro/scidb.go",
		// TensorFlow: not implementable (NA in the paper).
	},
}

// internalDir locates the repository's internal/ directory from this
// source file's compile-time path (experiments run from a checkout).
func internalDir() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("core: cannot locate source directory")
	}
	dir := filepath.Dir(filepath.Dir(file)) // …/internal
	if _, err := os.Stat(dir); err != nil {
		return "", fmt.Errorf("core: source tree not available: %w", err)
	}
	return dir, nil
}

// CountLoC counts non-blank, non-comment lines of a Go source file.
func CountLoC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n, sc.Err()
}

var table1Systems = []string{"Reference", "Dask", "SciDB", "Spark", "Myria", "TensorFlow"}

func runTable1(Profile) (*Table, error) {
	dir, err := internalDir()
	if err != nil {
		return nil, err
	}
	t := NewTable("Table 1: lines of Go per implementation", "LoC",
		[]string{"Neuroscience", "Astronomy"}, table1Systems)
	for useCase, files := range table1Files {
		for sys, rel := range files {
			n, err := CountLoC(filepath.Join(dir, rel))
			if err != nil {
				return nil, err
			}
			t.Set(useCase, sys, float64(n))
		}
	}
	t.Notes = append(t.Notes,
		"NA = not implementable on that system (paper Table 1)",
		"SciDB/TensorFlow files implement only the steps the paper could express there")
	return t, nil
}

func checkTable1(t *Table) error {
	// Every implemented cell is positive; TensorFlow/Astronomy is NA.
	if !math.IsNaN(t.Get("Astronomy", "TensorFlow")) {
		return fmt.Errorf("TensorFlow astronomy should be NA")
	}
	for _, sys := range []string{"Spark", "Myria", "Dask"} {
		if t.Get("Neuroscience", sys) <= 0 {
			return fmt.Errorf("%s neuroscience LoC missing", sys)
		}
	}
	return nil
}
