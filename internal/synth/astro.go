package synth

import (
	"fmt"
	"math"
	"math/rand"

	"imagebench/internal/fits"
	"imagebench/internal/objstore"
	"imagebench/internal/skymap"
)

// Paper-scale constants for the astronomy dataset (HiTS, Section 3.2.1):
// 60 sensors per visit, 4000×4072 pixels, ~80 MB per sensor image,
// ~4.8 GB per visit.
const (
	PaperSensorW, PaperSensorH = 4000, 4072
	PaperSensorsPerVisit       = 60
	PaperSensorBytes           = int64(80) << 20
	PaperVisitBytes            = PaperSensorBytes * PaperSensorsPerVisit
)

// AstroConfig controls the scaled synthetic survey dataset.
type AstroConfig struct {
	Visits  int
	Sensors int // sensors per visit, tiled in a grid
	W, H    int // pixels per sensor
	Sources int // true point sources on the sky
	Seed    int64
}

// DefaultAstro returns the scaled default geometry: 6 sensors of 48×48
// pixels per visit, 24 true sources.
func DefaultAstro(visits int) AstroConfig {
	return AstroConfig{Visits: visits, Sensors: 6, W: 48, H: 48, Sources: 24, Seed: 1}
}

// AstroKeyFITS returns the object key of one sensor exposure.
func AstroKeyFITS(visit, sensor int) string {
	return fmt.Sprintf("astro/fits/visit-%02d/sensor-%02d.fits", visit, sensor)
}

// Grid returns the patch grid used with this config. Patches are 2/3 of a
// sensor wide and one sensor tall, so a dithered sensor overlaps 1–6
// patches, matching the paper's Step 2A description.
func (c AstroConfig) Grid() skymap.Grid {
	return skymap.Grid{PatchW: c.W * 2 / 3, PatchH: c.H}
}

// TrueSource is a ground-truth sky source, used by tests to validate the
// detection step.
type TrueSource struct {
	X, Y float64 // sky pixel position
	Flux float64 // total flux per visit
}

// GenAstro writes c.Visits synthetic survey visits into the store as FITS
// files (one per sensor per visit) annotated with paper-scale sizes, and
// returns the ground-truth source catalog.
//
// Every visit observes the same fixed sky sources through a per-visit
// transparency factor and sky background, with Gaussian pixel noise,
// per-visit dither of a few pixels, and injected cosmic rays — giving the
// pre-processing, co-addition, and detection steps real work to do.
func GenAstro(store *objstore.Store, c AstroConfig) ([]TrueSource, error) {
	return StreamAstro(c, func(v, s int, e *skymap.Exposure) error {
		store.Put(AstroKeyFITS(v, s), fits.EncodeExposure(e), PaperSensorBytes)
		return nil
	})
}

// AstroSources returns the fixed ground-truth catalog for a config:
// sources on the sky, kept away from the outer border so that every
// dithered visit still covers them. The catalog depends only on the
// config, never on which visits are generated.
func AstroSources(c AstroConfig) []TrueSource {
	rng := rand.New(rand.NewSource(c.Seed))
	cols := int(math.Ceil(math.Sqrt(float64(c.Sensors))))
	skyW := cols * c.W
	skyH := ((c.Sensors + cols - 1) / cols) * c.H
	margin := 6.0
	sources := make([]TrueSource, c.Sources)
	for i := range sources {
		sources[i] = TrueSource{
			X:    margin + rng.Float64()*(float64(skyW)-2*margin),
			Y:    margin + rng.Float64()*(float64(skyH)-2*margin),
			Flux: 800 + rng.Float64()*2400,
		}
	}
	return sources
}

// StreamAstro generates exposures one at a time and hands each to fn
// as it is rendered, so only one sensor image is live at once
// regardless of c.Visits. fn must finish with e (or copy what it
// keeps) before returning. Each visit seeds its own generator, so the
// sequence of exposures is identical to what GenAstro stores.
func StreamAstro(c AstroConfig, fn func(visit, sensor int, e *skymap.Exposure) error) ([]TrueSource, error) {
	if c.Visits <= 0 || c.Sensors <= 0 || c.W <= 0 || c.H <= 0 {
		return nil, fmt.Errorf("synth: invalid astro config %+v", c)
	}
	sources := AstroSources(c)
	cols := int(math.Ceil(math.Sqrt(float64(c.Sensors))))

	const psfSigma = 1.4
	for v := 0; v < c.Visits; v++ {
		vr := rand.New(rand.NewSource(c.Seed + 1000 + int64(v)))
		transparency := 0.8 + 0.4*vr.Float64()
		skyBG := 80 + 40*vr.Float64()
		ditherX := vr.Intn(7) - 3
		ditherY := vr.Intn(7) - 3
		for s := 0; s < c.Sensors; s++ {
			x0 := (s%cols)*c.W + ditherX
			y0 := (s/cols)*c.H + ditherY
			e := skymap.NewExposure(v, s, x0, y0, c.W, c.H)
			renderSensor(e, sources, transparency, skyBG, psfSigma, vr)
			if err := fn(v, s, e); err != nil {
				return nil, err
			}
		}
	}
	return sources, nil
}

func renderSensor(e *skymap.Exposure, sources []TrueSource, transparency, skyBG, psfSigma float64, rng *rand.Rand) {
	noiseStd := math.Sqrt(skyBG)
	for y := 0; y < e.Flux.H; y++ {
		for x := 0; x < e.Flux.W; x++ {
			e.Flux.Set(x, y, skyBG+rng.NormFloat64()*noiseStd)
			e.Var.Set(x, y, skyBG)
		}
	}
	// Render PSF-spread sources that fall on this sensor.
	for _, src := range sources {
		lx, ly := src.X-float64(e.X0), src.Y-float64(e.Y0)
		if lx < -5 || ly < -5 || lx > float64(e.Flux.W)+5 || ly > float64(e.Flux.H)+5 {
			continue
		}
		amp := transparency * src.Flux / (2 * math.Pi * psfSigma * psfSigma)
		r := int(math.Ceil(4 * psfSigma))
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				px, py := int(math.Round(lx))+dx, int(math.Round(ly))+dy
				if !e.Flux.In(px, py) {
					continue
				}
				ddx, ddy := float64(px)-lx, float64(py)-ly
				f := amp * math.Exp(-(ddx*ddx+ddy*ddy)/(2*psfSigma*psfSigma))
				e.Flux.Set(px, py, e.Flux.At(px, py)+f)
			}
		}
	}
	// Cosmic rays: isolated hot pixels, ~0.2% of the sensor.
	nCR := len(e.Flux.Pix) / 500
	for i := 0; i < nCR; i++ {
		idx := rng.Intn(len(e.Flux.Pix))
		e.Flux.Pix[idx] += 3000 + rng.Float64()*5000
	}
}
