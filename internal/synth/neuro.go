// Package synth generates the synthetic datasets that stand in for the
// paper's inputs: Human-Connectome-style diffusion MRI subjects (NIfTI) and
// HiTS-style sky survey visits (FITS), written into the object store with
// paper-scale size annotations. See DESIGN.md §2 for the substitution
// rationale.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"imagebench/internal/dmri"
	"imagebench/internal/nifti"
	"imagebench/internal/npy"
	"imagebench/internal/objstore"
	"imagebench/internal/volume"
)

// Paper-scale constants for the neuroscience dataset (HCP S900 release,
// Section 3.1.1 of the paper).
const (
	PaperVolNX, PaperVolNY, PaperVolNZ = 145, 145, 174
	PaperVolsPerSubject                = 288
	PaperB0PerSubject                  = 18
	// PaperVolBytes is one 3-D volume as float32.
	PaperVolBytes = int64(PaperVolNX*PaperVolNY*PaperVolNZ) * 4
	// PaperSubjectBytes is the uncompressed 4-D array (~4.2 GB).
	PaperSubjectBytes = PaperVolBytes * PaperVolsPerSubject
)

// NeuroConfig controls the scaled synthetic dMRI dataset.
type NeuroConfig struct {
	Subjects int
	NX, NY   int
	NZ       int
	T        int // volumes per subject
	B0       int // non-diffusion-weighted volumes among T
	Seed     int64
}

// DefaultNeuro returns the scaled default geometry: 12×12×14 voxels,
// 12 volumes (2 b0) per subject — the same 16:1 b0 ratio as the HCP data.
func DefaultNeuro(subjects int) NeuroConfig {
	return NeuroConfig{Subjects: subjects, NX: 12, NY: 12, NZ: 14, T: 12, B0: 2, Seed: 1}
}

// NeuroKeyNIfTI returns the object key of a subject's 4-D NIfTI file.
func NeuroKeyNIfTI(subject int) string { return fmt.Sprintf("neuro/nii/subj-%03d.nii", subject) }

// NeuroKeyNPY returns the object key of one staged per-volume NumPy array,
// the format the paper pre-converts to for Spark and Myria.
func NeuroKeyNPY(subject, vol int) string {
	return fmt.Sprintf("neuro/npy/subj-%03d/vol-%03d.npy", subject, vol)
}

// SubjectModelBytes is the paper-scale size of one scaled subject: each
// scaled volume stands for one full 145×145×174 volume, so a subject with
// T volumes models T paper volumes (the 288-volume HCP subject is
// represented proportionally).
func (c NeuroConfig) SubjectModelBytes() int64 { return PaperVolBytes * int64(c.T) }

// GradTable builds the acquisition scheme for a config: B0 volumes with
// b=0 followed by diffusion-weighted volumes with b=1000 and directions on
// a golden-spiral sphere covering.
func (c NeuroConfig) GradTable() *dmri.GradTable {
	g := &dmri.GradTable{}
	golden := math.Pi * (3 - math.Sqrt(5))
	nDW := c.T - c.B0
	for i := 0; i < c.T; i++ {
		if i < c.B0 {
			g.BVals = append(g.BVals, 0)
			g.BVecs = append(g.BVecs, [3]float64{0, 0, 0})
			continue
		}
		k := i - c.B0
		z := 1 - 2*(float64(k)+0.5)/float64(nDW)
		r := math.Sqrt(1 - z*z)
		th := golden * float64(k)
		g.BVals = append(g.BVals, 1000)
		g.BVecs = append(g.BVecs, [3]float64{r * math.Cos(th), r * math.Sin(th), z})
	}
	return g
}

// GenNeuro writes c.Subjects synthetic dMRI subjects into the store, both
// as per-subject NIfTI files and as staged per-volume .npy objects, each
// annotated with paper-scale sizes. It returns the shared gradient table.
//
// The phantom has an ellipsoidal "brain" whose b0 signal is bright against
// the background (so Otsu segmentation is meaningful), an anisotropic
// band through the middle (so the fitted FA map has structure), and
// additive Gaussian noise (so denoising is meaningful).
func GenNeuro(store *objstore.Store, c NeuroConfig) (*dmri.GradTable, error) {
	return StreamNeuro(c, func(s int, v4 *volume.V4) error {
		store.Put(NeuroKeyNIfTI(s), nifti.Encode4(v4), c.SubjectModelBytes())
		for t, v := range v4.Vols {
			store.Put(NeuroKeyNPY(s, t), npy.Encode(v), PaperVolBytes)
		}
		return nil
	})
}

// StreamNeuro generates subjects one at a time and hands each to fn as
// it is produced, so only one subject's volumes are live at once
// regardless of c.Subjects. The volumes come from the shared scratch
// arena and are recycled after fn returns: fn must finish with v4 (or
// copy what it keeps) before returning, and must not retain it.
// Generation is per-subject deterministic, so the sequence of subjects
// is identical to what GenNeuro stores.
func StreamNeuro(c NeuroConfig, fn func(subject int, v4 *volume.V4) error) (*dmri.GradTable, error) {
	if c.Subjects <= 0 || c.T <= c.B0 || c.B0 <= 0 {
		return nil, fmt.Errorf("synth: invalid neuro config %+v", c)
	}
	g := c.GradTable()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for s := 0; s < c.Subjects; s++ {
		v4 := genSubject(c, g, s, volume.Scratch)
		err := fn(s, v4)
		for _, v := range v4.Vols {
			volume.Scratch.Put(v)
		}
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// genSubject builds one subject's 4-D series in arena-backed volumes.
func genSubject(c NeuroConfig, g *dmri.GradTable, subject int, arena *volume.Arena) *volume.V4 {
	rng := rand.New(rand.NewSource(c.Seed + int64(subject)*7919))
	cx, cy, cz := float64(c.NX-1)/2, float64(c.NY-1)/2, float64(c.NZ-1)/2
	rx, ry, rz := float64(c.NX)*0.38, float64(c.NY)*0.38, float64(c.NZ)*0.38
	const s0Brain, s0Bg, noiseStd = 1000.0, 40.0, 25.0

	vols := make([]*volume.V3, c.T)
	for t := range vols {
		// Every voxel is assigned below, so dirty pooled buffers are fine.
		vols[t] = arena.Get(c.NX, c.NY, c.NZ)
	}
	for z := 0; z < c.NZ; z++ {
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				dx, dy, dz := (float64(x)-cx)/rx, (float64(y)-cy)/ry, (float64(z)-cz)/rz
				inBrain := dx*dx+dy*dy+dz*dz <= 1
				// Anisotropic band: a slab in y around the center where
				// diffusion is strongly directional along x.
				inBand := inBrain && math.Abs(float64(y)-cy) < float64(c.NY)/6
				var dTensor dmri.Tensor
				switch {
				case inBand:
					dTensor = dmri.Tensor{Dxx: 1.7e-3, Dyy: 0.2e-3, Dzz: 0.2e-3}
				case inBrain:
					dTensor = dmri.Tensor{Dxx: 0.8e-3, Dyy: 0.8e-3, Dzz: 0.8e-3}
				}
				for t := 0; t < c.T; t++ {
					var signal float64
					if inBrain {
						b := g.BVals[t]
						gv := g.BVecs[t]
						q := dTensor.Dxx*gv[0]*gv[0] + dTensor.Dyy*gv[1]*gv[1] + dTensor.Dzz*gv[2]*gv[2] +
							2*(dTensor.Dxy*gv[0]*gv[1]+dTensor.Dxz*gv[0]*gv[2]+dTensor.Dyz*gv[1]*gv[2])
						signal = s0Brain * math.Exp(-b*q)
					} else {
						signal = s0Bg
					}
					signal += rng.NormFloat64() * noiseStd
					if signal < 0 {
						signal = 0
					}
					// Quantize to float32: the HCP data is float32, and the
					// NIfTI and .npy stagings must hold identical values so
					// every implementation sees the same input.
					vols[t].Set(x, y, z, float64(float32(signal)))
				}
			}
		}
	}
	return volume.New4(vols)
}

// BrainMaskFraction returns the expected fraction of voxels inside the
// synthetic brain ellipsoid (≈ 4π/3 · 0.38³ ≈ 0.23), used by tests as a
// sanity bound on segmentation output.
func BrainMaskFraction() float64 { return 4 * math.Pi / 3 * 0.38 * 0.38 * 0.38 }
