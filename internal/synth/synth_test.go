package synth

import (
	"testing"

	"imagebench/internal/fits"
	"imagebench/internal/nifti"
	"imagebench/internal/npy"
	"imagebench/internal/objstore"
	"imagebench/internal/volume"
)

func TestGenNeuroStagingsAgree(t *testing.T) {
	store := objstore.New()
	cfg := DefaultNeuro(2)
	cfg.NX, cfg.NY, cfg.NZ, cfg.T, cfg.B0 = 6, 6, 6, 6, 2
	g, err := GenNeuro(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != cfg.T {
		t.Fatalf("gradient table has %d entries", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The NIfTI and .npy stagings must hold identical voxel data.
	obj, err := store.Get(NeuroKeyNIfTI(0))
	if err != nil {
		t.Fatal(err)
	}
	v4, err := nifti.Decode4(obj.Data)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < cfg.T; tt++ {
		o, err := store.Get(NeuroKeyNPY(0, tt))
		if err != nil {
			t.Fatal(err)
		}
		v, err := npy.Decode(o.Data)
		if err != nil {
			t.Fatal(err)
		}
		if volume.MaxAbsDiff(v, v4.Vols[tt]) != 0 {
			t.Fatalf("volume %d: nii and npy stagings differ", tt)
		}
		if o.Size() != PaperVolBytes {
			t.Errorf("npy model bytes %d", o.Size())
		}
	}
	if obj.Size() != cfg.SubjectModelBytes() {
		t.Errorf("subject model bytes %d, want %d", obj.Size(), cfg.SubjectModelBytes())
	}
}

func TestGenNeuroDeterministic(t *testing.T) {
	cfg := DefaultNeuro(1)
	cfg.NX, cfg.NY, cfg.NZ, cfg.T, cfg.B0 = 5, 5, 5, 4, 1
	s1, s2 := objstore.New(), objstore.New()
	if _, err := GenNeuro(s1, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := GenNeuro(s2, cfg); err != nil {
		t.Fatal(err)
	}
	a, _ := s1.Get(NeuroKeyNIfTI(0))
	b, _ := s2.Get(NeuroKeyNIfTI(0))
	if string(a.Data) != string(b.Data) {
		t.Error("generation not deterministic")
	}
}

func TestGenNeuroInvalidConfig(t *testing.T) {
	if _, err := GenNeuro(objstore.New(), NeuroConfig{Subjects: 0}); err == nil {
		t.Error("zero subjects accepted")
	}
	bad := DefaultNeuro(1)
	bad.B0 = bad.T // no diffusion-weighted volumes
	if _, err := GenNeuro(objstore.New(), bad); err == nil {
		t.Error("all-b0 config accepted")
	}
}

func TestGenAstroGeometry(t *testing.T) {
	store := objstore.New()
	cfg := DefaultAstro(3)
	cfg.Sensors, cfg.W, cfg.H, cfg.Sources = 4, 24, 24, 6
	truth, err := GenAstro(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 6 {
		t.Fatalf("%d true sources", len(truth))
	}
	keys := store.List("astro/fits/")
	if len(keys) != 3*4 {
		t.Fatalf("%d FITS files", len(keys))
	}
	for _, k := range keys {
		obj, _ := store.Get(k)
		e, err := fits.DecodeExposure(obj.Data)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if e.Flux.W != 24 || e.Flux.H != 24 {
			t.Fatalf("%s: sensor %dx%d", k, e.Flux.W, e.Flux.H)
		}
		if obj.Size() != PaperSensorBytes {
			t.Errorf("%s model bytes %d", k, obj.Size())
		}
	}
	// The grid produces 1–6 overlaps per sensor by construction.
	g := cfg.Grid()
	if g.PatchW != 16 || g.PatchH != 24 {
		t.Errorf("grid %+v", g)
	}
}
