// Package jsonl is the append-only JSON-lines file primitive behind
// the repo's crash-safe journals: the scheduler's job journal
// (internal/runner) and the federation coordinator's assignment
// journal (internal/fed). It owns exactly the mechanics both share —
// single-write appends of complete lines, torn-tail repair on open,
// and a reader that tolerates one unparseable final line — while each
// journal keeps its own record schema and replay semantics.
//
// Crash-safety model: each record is written as a single write(2) of a
// complete line to an O_APPEND descriptor, so concurrent writers never
// interleave mid-line and a crash can only tear the final line. The
// reader tolerates exactly that: an unparseable trailing line is
// ignored, anything torn earlier is reported as corruption.
package jsonl

import (
	"bufio"
	"fmt"
	"os"
	"sync"
)

// File is an append-only line file. Append is safe for concurrent use.
type File struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (creating if needed) the file at path for appending. If
// the previous process crashed mid-write, the file ends in a torn
// partial line; that fragment is truncated away first — the record
// never durably existed, and appending after it would merge two
// records into one malformed mid-file line, turning a tolerated torn
// tail into corruption that poisons every later recovery.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jsonl: open %s: %w", path, err)
	}
	if err := truncateTornTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("jsonl: repair %s: %w", path, err)
	}
	return &File{f: f, path: path}, nil
}

// truncateTornTail drops everything after the file's last newline.
func truncateTornTail(f *os.File) error {
	end, err := f.Seek(0, 2)
	if err != nil {
		return err
	}
	if end == 0 {
		return nil
	}
	// Scan backwards in chunks for the last newline.
	const chunk = 4096
	pos := end
	for pos > 0 {
		n := int64(chunk)
		if pos < n {
			n = pos
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, pos-n); err != nil {
			return err
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				return f.Truncate(pos - n + i + 1)
			}
		}
		pos -= n
	}
	return f.Truncate(0) // no newline at all: the whole file is one torn line
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Append writes line plus a trailing newline as one Write call, so a
// crash cannot interleave two records. A failed or short write (disk
// full) is rolled back by truncating to the pre-write offset —
// otherwise the stranded fragment would sit mid-file and merge with
// the next successful append into one malformed line that poisons
// every later recovery.
func (f *File) Append(line []byte) error {
	b := make([]byte, 0, len(line)+1)
	b = append(b, line...)
	b = append(b, '\n')
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return fmt.Errorf("jsonl: %s is closed", f.path)
	}
	end, serr := f.f.Seek(0, 2) // f.mu serializes writers, so this is the write offset
	if _, err := f.f.Write(b); err != nil {
		if serr == nil {
			f.f.Truncate(end)
		}
		return err
	}
	return nil
}

// Close closes the underlying file; further Appends fail.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return nil
	}
	err := f.f.Close()
	f.f = nil
	return err
}

// Read parses the file at path line by line with parse, which reports
// whether the line decoded as a valid record. A missing file is empty.
// One failed line is tolerated only as the file's final line (the torn
// tail of a crash); a second bad line, or anything after a bad line,
// is corruption and is reported with its line number. Empty lines are
// skipped.
func Read(path string, parse func(line []byte) bool) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jsonl: read %s: %w", path, err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo, badLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !parse(line) {
			if badLine != 0 {
				return fmt.Errorf("jsonl: %s: malformed records at lines %d and %d", path, badLine, lineNo)
			}
			badLine = lineNo
			continue
		}
		if badLine != 0 {
			return fmt.Errorf("jsonl: %s: malformed record at line %d", path, badLine)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("jsonl: read %s: %w", path, err)
	}
	return nil
}
