package jsonl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readAll(t *testing.T, path string) []string {
	t.Helper()
	var lines []string
	err := Read(path, func(line []byte) bool {
		lines = append(lines, string(line))
		return true
	})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return lines
}

func TestAppendAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{`{"a":1}`, `{"a":2}`} {
		if err := f.Append([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("x")); err == nil {
		t.Fatal("append after Close succeeded")
	}
	got := readAll(t, path)
	if len(got) != 2 || got[0] != `{"a":1}` || got[1] != `{"a":2}` {
		t.Fatalf("round trip: %q", got)
	}
}

func TestMissingFileIsEmpty(t *testing.T) {
	if got := readAll(t, filepath.Join(t.TempDir(), "nope.jsonl")); len(got) != 0 {
		t.Fatalf("missing file yielded %q", got)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("{\"a\":1}\n{\"torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// The torn fragment is gone, so this append starts a fresh line
	// instead of merging with it.
	if err := f.Append([]byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got := readAll(t, path)
	if len(got) != 2 || got[1] != `{"a":2}` {
		t.Fatalf("after torn-tail repair: %q", got)
	}
}

func TestReadToleratesOnlyFinalBadLine(t *testing.T) {
	dir := t.TempDir()
	tail := filepath.Join(dir, "tail.jsonl")
	os.WriteFile(tail, []byte("ok\nbad"), 0o644)
	var kept []string
	err := Read(tail, func(line []byte) bool {
		if strings.HasPrefix(string(line), "bad") {
			return false
		}
		kept = append(kept, string(line))
		return true
	})
	if err != nil || len(kept) != 1 {
		t.Fatalf("final bad line not tolerated: err=%v kept=%q", err, kept)
	}

	mid := filepath.Join(dir, "mid.jsonl")
	os.WriteFile(mid, []byte("ok\nbad\nok\n"), 0o644)
	err = Read(mid, func(line []byte) bool { return string(line) == "ok" })
	if err == nil {
		t.Fatal("mid-file bad line went unreported")
	}

	two := filepath.Join(dir, "two.jsonl")
	os.WriteFile(two, []byte("bad\nbad\n"), 0o644)
	err = Read(two, func(line []byte) bool { return false })
	if err == nil {
		t.Fatal("two bad lines went unreported")
	}
}
