// Package tfgraph implements a TensorFlow-like distributed dataflow
// engine as the paper used it (circa v0.x): static graphs over dense
// tensors with manual device placement, a master that owns all data
// ingest and result collection, and step-by-step execution with global
// barriers.
//
// Properties the paper's results hinge on, implemented explicitly:
//
//   - All ingest flows through the master and results always return to
//     the master (Fig 11: slower than every parallel-ingest system).
//   - The master converts NumPy arrays ↔ tensors around every step,
//     serially (Figs 12a–12c: conversion dominates).
//   - Serialized graphs are limited to MaxGraphBytes (2 GB in the paper),
//     forcing the use case to run as one graph per step, in batches of
//     one item per device, with a global barrier per batch.
//   - Work assignment is manual: the Assign option maps items to devices,
//     and bad assignments cost real time (Section 5.3.1 found a 2×
//     spread).
//   - Filtering is only supported along the first tensor dimension;
//     selecting volumes requires flatten + reshape passes over the full
//     data (Fig 12a: orders of magnitude slower), modeled with the
//     ConvertPasses option.
package tfgraph

import (
	"fmt"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

// Tensor is one data item on the master: an opaque value with its
// paper-scale size.
type Tensor struct {
	Value any
	Size  int64
}

// Session is a TensorFlow master driving one worker process per node.
type Session struct {
	cl      *cluster.Cluster
	model   *cost.Model
	store   *objstore.Store
	startup *cluster.Handle
	// MaxGraphBytes caps the serialized size of one compute graph
	// (2 GB in the paper). Steps whose batch would exceed it fail.
	MaxGraphBytes int64
	// MasterConns is the master's parallel S3 connection count.
	MasterConns int
	last        *cluster.Handle

	// Checkpoint-and-restart state, active only on fault-injected
	// clusters: the master checkpoints the step outputs it holds after
	// every completed step, and a worker death restarts the session from
	// the last checkpoint — the failed step's work is lost and re-run on
	// the surviving devices.
	ckptBytes int64 // size of the last checkpoint on the master's disk
	restarts  int
}

// NewSession starts the master and workers. A nil model uses
// cost.Default().
func NewSession(cl *cluster.Cluster, store *objstore.Store, model *cost.Model) *Session {
	if model == nil {
		model = cost.Default()
	}
	s := &Session{
		cl: cl, model: model, store: store,
		MaxGraphBytes: 2 << 30,
		MasterConns:   8,
	}
	s.startup = cl.Submit(0, nil, model.Startup[cost.TensorFlow], nil)
	s.last = s.startup
	return s
}

// Cluster returns the underlying simulated cluster.
func (s *Session) Cluster() *cluster.Cluster { return s.cl }

// Done returns a handle for everything submitted so far.
func (s *Session) Done() *cluster.Handle { return s.last }

// Ingest downloads all objects under prefix through the master and
// decodes them into tensors. Worker nodes never touch the object store.
func (s *Session) Ingest(prefix string, decode func(objstore.Object) ([]Tensor, error)) ([]Tensor, *cluster.Handle, error) {
	keys := s.store.List(prefix)
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("tfgraph: no objects under %q", prefix)
	}
	var out []Tensor
	var total int64
	for _, k := range keys {
		obj, err := s.store.Get(k)
		if err != nil {
			return nil, nil, err
		}
		total += obj.Size()
		ts, err := decode(obj)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, ts...)
	}
	conns := s.MasterConns
	if conns <= 0 {
		conns = 1
	}
	dl := vtime.Duration(float64(s.model.S3Fetch(len(keys), total)) / float64(conns))
	dl += s.model.FormatTime(total)
	h := s.cl.Submit(0, []*cluster.Handle{s.last}, dl, nil)
	s.last = h
	return out, h, nil
}

// StepOpts tunes one RunStep.
type StepOpts struct {
	// Assign maps item index → device (node). Nil means round-robin one
	// item per device per batch, the paper's default mapping.
	Assign []int
	// ConvertPasses adds extra full-tensor passes executed on each
	// item's device (flatten/reshape workarounds for unsupported ops).
	ConvertPasses int
}

// RunStep executes one pipeline step as TensorFlow graphs: items are
// converted to tensors on the master, shipped to their devices, computed
// with f, shipped back, and converted back — in batches of at most one
// item per device, with a global barrier after each batch (the paper's
// Figure 9 execution loop).
//
// On a fault-injected cluster the session checkpoints after every
// completed step; a device dying mid-step triggers checkpoint-and-
// restart: the session restart cost is paid, the last checkpoint is read
// back, and the whole step — everything since that checkpoint — re-runs
// on the surviving devices.
func (s *Session) RunStep(name string, op cost.Op, items []Tensor, opts StepOpts, f func(Tensor) (Tensor, error)) ([]Tensor, *cluster.Handle, error) {
	if len(items) == 0 {
		return nil, s.last, nil
	}
	if opts.Assign != nil && len(opts.Assign) != len(items) {
		return nil, nil, fmt.Errorf("tfgraph: %d assignments for %d items", len(opts.Assign), len(items))
	}
	stepStart := s.last
	for {
		out, barrier, err := s.runStepOnce(name, op, items, opts, f, stepStart)
		if err != nil {
			nd, down := cluster.DownAt(err)
			if !down || nd.Node == 0 || s.restarts >= s.cl.Kills() {
				return nil, nil, err
			}
			// Checkpoint-and-restart: everything since the last
			// checkpoint is lost. The master restarts the process and
			// restores the checkpoint; the step then re-runs from its
			// beginning on whichever devices survive.
			s.restarts++
			s.cl.AdvanceFloor(nd.At)
			restore := s.cl.Submit(0, []*cluster.Handle{{End: nd.At}},
				s.model.Startup[cost.TensorFlow], nil)
			if s.ckptBytes > 0 {
				restore = s.cl.DiskRead(0, s.ckptBytes, restore)
			}
			stepStart = restore
			continue
		}
		s.last = barrier
		if s.cl.Faulty() {
			// Checkpoint the step outputs the master now holds.
			var outBytes int64
			for _, t := range out {
				outBytes += t.Size
			}
			s.ckptBytes = outBytes
			s.last = s.cl.DiskWrite(0, outBytes, barrier)
		}
		return out, s.last, nil
	}
}

// Restarts reports how many checkpoint-restarts the session has paid.
func (s *Session) Restarts() int { return s.restarts }

// runStepOnce is one attempt at a step, driving the surviving devices.
// A worker death surfaces as a *cluster.NodeDownError.
func (s *Session) runStepOnce(name string, op cost.Op, items []Tensor, opts StepOpts, f func(Tensor) (Tensor, error), stepStart *cluster.Handle) ([]Tensor, *cluster.Handle, error) {
	devs := s.cl.AliveNodes()
	devices := len(devs)
	assign := opts.Assign
	if assign == nil {
		assign = make([]int, len(items))
		for i := range assign {
			assign[i] = i % devices
		}
	}
	out := make([]Tensor, len(items))
	barrier := stepStart
	// Process items in batches: each device takes at most one item per
	// batch; run() waits for all devices before the next batch.
	for start := 0; start < len(items); {
		// Build one batch: first unprocessed item per device.
		taken := make(map[int]bool)
		var batch []int
		var graphBytes int64 = 1 << 20 // graph structure overhead
		for i := start; i < len(items) && len(batch) < devices; i++ {
			dev := assign[i] % devices
			if taken[dev] {
				break // preserve item order per the predefined steps table
			}
			taken[dev] = true
			batch = append(batch, i)
			graphBytes += items[i].Size / 50 // shape metadata & embedded constants
		}
		if len(batch) == 0 { // all remaining items map to one busy device
			batch = append(batch, start)
		}
		if graphBytes > s.MaxGraphBytes {
			return nil, nil, fmt.Errorf("tfgraph: step %q graph is %d bytes, exceeds %d-byte limit — split the step",
				name, graphBytes, s.MaxGraphBytes)
		}
		var batchBytes int64
		for _, i := range batch {
			batchBytes += items[i].Size
		}
		// Master-side tensor conversion: serial, both directions.
		conv := s.cl.Submit(0, []*cluster.Handle{barrier},
			2*s.model.TensorTime(batchBytes), nil)
		var done []*cluster.Handle
		for _, i := range batch {
			dev := devs[assign[i]%devices]
			toDev := s.cl.Transfer(0, dev, items[i].Size, conv)
			res, err := f(items[i])
			if err != nil {
				return nil, nil, fmt.Errorf("tfgraph: step %q item %d: %w", name, i, err)
			}
			key := fmt.Sprintf("%s/i%d", name, i)
			// Device-side work: the op itself plus any flatten/reshape
			// workaround passes over the whole tensor.
			work := s.model.AlgTime(op, items[i].Size) +
				vtime.Duration(opts.ConvertPasses)*s.model.TensorTime(items[i].Size)
			compute := s.cl.Submit(dev, []*cluster.Handle{toDev},
				s.model.Jitter(key, work), nil)
			back := s.cl.Transfer(dev, 0, res.Size, compute)
			out[i] = res
			done = append(done, back)
		}
		// Global barrier: wait for every worker before the next batch.
		barrier = s.cl.Barrier(done...)
		if barrier.Err != nil {
			return nil, nil, fmt.Errorf("tfgraph: step %q: %w", name, barrier.Err)
		}
		start += len(batch)
	}
	return out, barrier, nil
}

// graphOverheadBytes is the fixed serialized size of a graph's structure
// (op definitions, shapes) before embedded constants.
const graphOverheadBytes = 1 << 20

// graphBytesFor estimates the serialized GraphDef size of a step over
// the given items (shape metadata and embedded constants scale with the
// tensor data).
func graphBytesFor(items []Tensor) int64 {
	var n int64 = graphOverheadBytes
	for _, it := range items {
		n += it.Size / 50
	}
	return n
}

// RunStepSplit runs a step whose single-graph encoding could exceed
// MaxGraphBytes by splitting the items into several consecutive graphs —
// the paper's workaround ("size limitation necessitates multiple
// graphs ... we build a new compute graph for each step"). Each
// sub-graph pays a build-and-serialize cost on the master before its
// batches run; sub-graphs execute in sequence, each ending in the usual
// global barrier.
func (s *Session) RunStepSplit(name string, op cost.Op, items []Tensor, opts StepOpts, f func(Tensor) (Tensor, error)) ([]Tensor, int, *cluster.Handle, error) {
	if len(items) == 0 {
		return nil, 0, s.last, nil
	}
	if opts.Assign != nil && len(opts.Assign) != len(items) {
		return nil, 0, nil, fmt.Errorf("tfgraph: %d assignments for %d items", len(opts.Assign), len(items))
	}
	// Greedy split: every sub-graph's total serialized size must fit, a
	// conservative bound that also keeps every batch within the limit.
	var groups [][2]int // [start, end) item ranges
	start := 0
	bytes := int64(graphOverheadBytes)
	for i, it := range items {
		itemBytes := it.Size / 50
		if graphOverheadBytes+itemBytes > s.MaxGraphBytes {
			return nil, 0, nil, fmt.Errorf("tfgraph: step %q item %d alone exceeds the %d-byte graph limit",
				name, i, s.MaxGraphBytes)
		}
		if bytes+itemBytes > s.MaxGraphBytes {
			groups = append(groups, [2]int{start, i})
			start, bytes = i, graphOverheadBytes
		}
		bytes += itemBytes
	}
	groups = append(groups, [2]int{start, len(items)})

	out := make([]Tensor, 0, len(items))
	var last *cluster.Handle
	for gi, g := range groups {
		sub := items[g[0]:g[1]]
		subOpts := opts
		if opts.Assign != nil {
			subOpts.Assign = opts.Assign[g[0]:g[1]]
		}
		// Build and serialize this sub-graph on the master.
		build := s.cl.Submit(0, []*cluster.Handle{s.last}, s.model.GobTime(graphBytesFor(sub)), nil)
		s.last = build
		res, h, err := s.RunStep(fmt.Sprintf("%s/g%d", name, gi), op, sub, subOpts, f)
		if err != nil {
			return nil, 0, nil, err
		}
		out = append(out, res...)
		last = h
	}
	return out, len(groups), last, nil
}
