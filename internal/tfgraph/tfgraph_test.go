package tfgraph

import (
	"fmt"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
)

func session(nodes int) (*Session, *cluster.Cluster, *objstore.Store) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cl := cluster.New(cfg)
	store := objstore.New()
	return NewSession(cl, store, nil), cl, store
}

func TestIngestThroughMaster(t *testing.T) {
	s, cl, store := session(4)
	for i := 0; i < 8; i++ {
		store.Put(fmt.Sprintf("in/%d", i), []byte{byte(i)}, 10<<20)
	}
	items, h, err := s.Ingest("in/", func(obj objstore.Object) ([]Tensor, error) {
		return []Tensor{{Value: obj.Key, Size: obj.Size()}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 8 || h.Node != 0 {
		t.Errorf("items %d, node %d", len(items), h.Node)
	}
	if cl.NetBytes() != 0 {
		t.Error("ingest should not touch worker NICs before a step runs")
	}
	if _, _, err := s.Ingest("none/", nil); err == nil {
		t.Error("empty prefix accepted")
	}
}

func TestRunStepBatchesByDevice(t *testing.T) {
	s, _, _ := session(4)
	items := make([]Tensor, 10)
	for i := range items {
		items[i] = Tensor{Value: i, Size: 1 << 20}
	}
	out, h, err := s.RunStep("x", cost.Mean, items, StepOpts{}, func(tn Tensor) (Tensor, error) {
		return Tensor{Value: tn.Value.(int) * 2, Size: tn.Size}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 || h == nil {
		t.Fatalf("out %d", len(out))
	}
	for i, o := range out {
		if o.Value.(int) != 2*i {
			t.Errorf("item %d = %v", i, o.Value)
		}
	}
}

func TestGraphSizeLimit(t *testing.T) {
	s, _, _ := session(2)
	s.MaxGraphBytes = 1 << 20 // shrink the 2 GB limit
	items := []Tensor{{Value: 0, Size: 1 << 30}}
	_, _, err := s.RunStep("big", cost.Mean, items, StepOpts{}, func(tn Tensor) (Tensor, error) {
		return tn, nil
	})
	if err == nil {
		t.Error("graph over the size limit accepted")
	}
}

func TestBlockedAssignmentSerializes(t *testing.T) {
	run := func(assign []int) float64 {
		s, cl, _ := session(4)
		items := make([]Tensor, 16)
		for i := range items {
			items[i] = Tensor{Value: i, Size: 14 << 20}
		}
		t0 := cl.Makespan()
		_, _, err := s.RunStep("x", cost.Denoise, items, StepOpts{Assign: assign, ConvertPasses: 4},
			func(tn Tensor) (Tensor, error) { return tn, nil })
		if err != nil {
			t.Fatal(err)
		}
		return cl.Makespan().Sub(t0).Seconds()
	}
	blocked := make([]int, 16)
	for i := range blocked {
		blocked[i] = i * 4 / 16
	}
	rr := run(nil)
	bl := run(blocked)
	if bl < 1.3*rr {
		t.Errorf("blocked assignment (%v) should be ≫ round-robin (%v)", bl, rr)
	}
}
