package tfgraph

import (
	"strings"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
)

func splitSession(nodes int) *Session {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	return NewSession(cluster.New(cfg), objstore.New(), nil)
}

func tensorsN(n int, size int64) []Tensor {
	out := make([]Tensor, n)
	for i := range out {
		out[i] = Tensor{Value: i, Size: size}
	}
	return out
}

func TestRunStepSplitSingleGraphWhenSmall(t *testing.T) {
	s := splitSession(4)
	out, graphs, h, err := s.RunStepSplit("mean", cost.Mean, tensorsN(8, 1<<20), StepOpts{},
		func(in Tensor) (Tensor, error) { return Tensor{Value: in.Value, Size: in.Size}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if graphs != 1 {
		t.Errorf("small step split into %d graphs, want 1", graphs)
	}
	if len(out) != 8 || h == nil {
		t.Fatalf("got %d outputs", len(out))
	}
}

func TestRunStepSplitRespectsLimit(t *testing.T) {
	s := splitSession(4)
	s.MaxGraphBytes = 4 << 20 // tiny limit: ~3 MB of constants per graph
	// 12 items × 100 MB/50 = 2 MB of graph constants each.
	items := tensorsN(12, 100<<20)
	out, graphs, _, err := s.RunStepSplit("denoise", cost.Denoise, items, StepOpts{},
		func(in Tensor) (Tensor, error) { return in, nil })
	if err != nil {
		t.Fatal(err)
	}
	if graphs < 2 {
		t.Fatalf("oversized step ran as %d graph(s); the 2 GB analogue limit did not bite", graphs)
	}
	if len(out) != len(items) {
		t.Fatalf("got %d outputs, want %d", len(out), len(items))
	}
	// Order preserved.
	for i, o := range out {
		if o.Value.(int) != i {
			t.Fatalf("output %d out of order: %v", i, o.Value)
		}
	}
}

func TestRunStepSplitItemTooLarge(t *testing.T) {
	s := splitSession(2)
	s.MaxGraphBytes = 2 << 20
	// One item whose constants alone exceed the limit.
	_, _, _, err := s.RunStepSplit("x", cost.Mean, tensorsN(1, 100<<30), StepOpts{},
		func(in Tensor) (Tensor, error) { return in, nil })
	if err == nil || !strings.Contains(err.Error(), "alone exceeds") {
		t.Fatalf("expected item-too-large error, got %v", err)
	}
}

func TestRunStepSplitSlicesAssignments(t *testing.T) {
	s := splitSession(4)
	s.MaxGraphBytes = 4 << 20
	items := tensorsN(6, 100<<20)
	assign := []int{3, 3, 3, 3, 3, 3} // everything on device 3
	_, graphs, _, err := s.RunStepSplit("assigned", cost.Mean, items, StepOpts{Assign: assign},
		func(in Tensor) (Tensor, error) { return in, nil })
	if err != nil {
		t.Fatal(err)
	}
	if graphs < 2 {
		t.Fatalf("expected multiple graphs, got %d", graphs)
	}
	// Mismatched assignment length still errors.
	_, _, _, err = s.RunStepSplit("bad", cost.Mean, items, StepOpts{Assign: assign[:2]},
		func(in Tensor) (Tensor, error) { return in, nil })
	if err == nil {
		t.Error("short assignment should error")
	}
}

func TestRunStepSplitVsUnsplitCost(t *testing.T) {
	// Splitting pays extra graph builds and barriers: the split run of
	// the same work should take at least as long as the single-graph run.
	run := func(limit int64) float64 {
		s := splitSession(4)
		if limit > 0 {
			s.MaxGraphBytes = limit
		}
		_, _, h, err := s.RunStepSplit("w", cost.Denoise, tensorsN(8, 100<<20), StepOpts{},
			func(in Tensor) (Tensor, error) { return in, nil })
		if err != nil {
			t.Fatal(err)
		}
		return float64(h.End)
	}
	single := run(0)
	split := run(4 << 20)
	if split < single {
		t.Errorf("split run (%v) faster than single graph (%v)", split, single)
	}
}

func TestRunStepSplitEmpty(t *testing.T) {
	s := splitSession(2)
	out, graphs, h, err := s.RunStepSplit("empty", cost.Mean, nil, StepOpts{},
		func(in Tensor) (Tensor, error) { return in, nil })
	if err != nil || len(out) != 0 || graphs != 0 || h == nil {
		t.Fatalf("empty step: out=%d graphs=%d h=%v err=%v", len(out), graphs, h, err)
	}
}
