package tfgraph

import (
	"fmt"
	"testing"
	"time"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

func stagedSession(nodes, nObjects int, faults ...cluster.Fault) (*Session, *cluster.Cluster) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cl := cluster.New(cfg)
	if len(faults) > 0 {
		if err := cl.Inject(faults...); err != nil {
			panic(err)
		}
	}
	store := objstore.New()
	for i := 0; i < nObjects; i++ {
		store.Put(fmt.Sprintf("t/%03d", i), nil, 1<<20)
	}
	return NewSession(cl, store, nil), cl
}

func decodeT(obj objstore.Object) ([]Tensor, error) {
	return []Tensor{{Value: obj.Key, Size: obj.Size()}}, nil
}

func tagT(t Tensor) (Tensor, error) {
	return Tensor{Value: t.Value.(string) + "!", Size: t.Size}, nil
}

// TestDeviceDeathRestartsFromCheckpoint: a device dying mid-step costs
// TensorFlow everything since the last checkpoint — the session restart
// is paid, the checkpoint is read back, and the whole step re-runs on
// the surviving devices. The step's results are unchanged.
func TestDeviceDeathRestartsFromCheckpoint(t *testing.T) {
	base, bcl := stagedSession(4, 16)
	items, _, err := base.Ingest("t/", decodeT)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := base.RunStep("work", cost.Denoise, items, StepOpts{}, tagT)
	if err != nil {
		t.Fatal(err)
	}
	baseline := vtime.Duration(bcl.Makespan())

	// Startup 15s + master ingest; the denoise batches run from ~15.5s,
	// so a kill at 16.5s lands mid-step.
	killAt := vtime.Time(16500 * time.Millisecond)
	sess, fcl := stagedSession(4, 16, cluster.Fault{Kind: cluster.FaultKill, Node: 1, At: killAt})
	items2, _, err := sess.Ingest("t/", decodeT)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sess.RunStep("work", cost.Denoise, items2, StepOpts{}, tagT)
	if err != nil {
		t.Fatalf("checkpoint-restart did not recover: %v", err)
	}
	if sess.Restarts() != 1 {
		t.Errorf("Restarts = %d, want 1", sess.Restarts())
	}
	if len(got) != len(want) {
		t.Fatalf("restarted step returned %d tensors, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Value != want[i].Value {
			t.Errorf("tensor %d = %v, want %v", i, got[i].Value, want[i].Value)
		}
	}
	recovered := vtime.Duration(fcl.Makespan())
	if recovered <= baseline {
		t.Errorf("device death was free: makespan %v vs baseline %v", recovered, baseline)
	}
	// The restart pays the session startup again after the kill.
	if min := vtime.Duration(killAt) + vtime.Duration(15*time.Second); recovered <= min {
		t.Errorf("restart skipped the process restart cost: makespan %v, want > %v", recovered, min)
	}
}
