// Package vtime provides virtual (simulated) time primitives used by the
// cluster simulator. All performance experiments in this repository run in
// virtual time: tasks advance per-resource clocks by modeled durations
// instead of waiting on the wall clock, which makes 64-node experiments
// deterministic and runnable on a single physical core.
package vtime

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start of
// a simulation. The zero value is the simulation start.
type Time time.Duration

// Duration aliases time.Duration for readability in simulator APIs.
type Duration = time.Duration

// Add returns t advanced by d. Negative durations are clamped so that time
// never moves backwards; the simulator never needs to rewind a clock.
func (t Time) Add(d Duration) Time {
	if d < 0 {
		d = 0
	}
	return t + Time(d)
}

// Sub returns the duration t-u, which may be negative.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t expressed in virtual seconds.
func (t Time) Seconds() float64 { return Duration(t).Seconds() }

func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Max returns the latest of the given times. Max() is the zero time.
func Max(ts ...Time) Time {
	var m Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Min returns the earliest of the given times. Unlike Max — whose zero
// identity is a safe "no constraint" for latest-of — a minimum has no
// safe identity in this domain: returning the zero time would be the
// *earliest* possible value and silently erase every other argument, so
// Min panics when called with no arguments.
func Min(ts ...Time) Time {
	if len(ts) == 0 {
		panic("vtime: Min() of no times has no identity (zero would be the earliest time, not a neutral value)")
	}
	m := ts[0]
	for _, t := range ts[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// GapTimeline models a serially-reusable resource whose requests arrive in
// arbitrary ready-time order (a centralized scheduler dispatching tasks as
// their dependencies complete, not in submission order): each reservation
// books the earliest gap of sufficient length at or after the ready time,
// so an early-ready request submitted late still uses idle time before
// later-ready requests.
type GapTimeline struct {
	// busy intervals, sorted by start, non-overlapping.
	starts, ends []Time
	busy         Duration
}

// findGap locates the earliest gap of length d starting no earlier than
// ready: it returns the start of that gap and the index at which a new
// interval starting there would be inserted. It is the single search
// shared by Reserve and StartAt, so a probe always agrees with the
// booking that follows it.
func (g *GapTimeline) findGap(ready Time, d Duration) (start Time, i int) {
	start = ready
	for i = 0; i < len(g.starts); i++ {
		if g.starts[i] >= start.Add(d) {
			break // fits entirely before interval i
		}
		if g.ends[i] > start {
			start = g.ends[i] // push past interval i
		}
	}
	return start, i
}

// Reserve books the resource for duration d at the earliest gap starting no
// earlier than ready, returning the booked interval.
func (g *GapTimeline) Reserve(ready Time, d Duration) (start, end Time) {
	if d < 0 {
		d = 0
	}
	start, i := g.findGap(ready, d)
	end = start.Add(d)
	if d > 0 {
		g.starts = append(g.starts, 0)
		g.ends = append(g.ends, 0)
		copy(g.starts[i+1:], g.starts[i:])
		copy(g.ends[i+1:], g.ends[i:])
		g.starts[i] = start
		g.ends[i] = end
		g.busy += d
		// Coalesce with neighbours to keep the list short.
		g.coalesce()
	}
	return start, end
}

func (g *GapTimeline) coalesce() {
	out := 0
	for i := 1; i < len(g.starts); i++ {
		if g.starts[i] <= g.ends[out] {
			if g.ends[i] > g.ends[out] {
				g.ends[out] = g.ends[i]
			}
		} else {
			out++
			g.starts[out] = g.starts[i]
			g.ends[out] = g.ends[i]
		}
	}
	g.starts = g.starts[:out+1]
	g.ends = g.ends[:out+1]
}

// StartAt returns the time Reserve(ready, d) would book, without booking.
func (g *GapTimeline) StartAt(ready Time, d Duration) Time {
	if d < 0 {
		d = 0
	}
	start, _ := g.findGap(ready, d)
	return start
}

// Intervals returns a copy of the busy intervals, sorted by start and
// non-overlapping after coalescing. It exists for tests and debugging.
func (g *GapTimeline) Intervals() (starts, ends []Time) {
	return append([]Time(nil), g.starts...), append([]Time(nil), g.ends...)
}

// Busy returns the total reserved time.
func (g *GapTimeline) Busy() Duration { return g.busy }

// Timeline models a serially-reusable resource (a worker slot, a NIC, a disk
// arm): at any moment it is either free or busy until some virtual time.
type Timeline struct {
	free Time
	busy Duration // total busy time accumulated, for utilization reports
}

// FreeAt returns the earliest virtual time the resource is available.
func (tl *Timeline) FreeAt() Time { return tl.free }

// Reserve books the resource for duration d starting no earlier than
// ready, and returns the interval's start and end times.
func (tl *Timeline) Reserve(ready Time, d Duration) (start, end Time) {
	if d < 0 {
		d = 0
	}
	start = Max(tl.free, ready)
	end = start.Add(d)
	tl.free = end
	tl.busy += d
	return start, end
}

// Busy returns the total time the resource has been occupied.
func (tl *Timeline) Busy() Duration { return tl.busy }

// Utilization returns the fraction of time the resource was busy up to its
// last reservation. It reports 0 for an unused timeline.
func (tl *Timeline) Utilization() float64 {
	if tl.free == 0 {
		return 0
	}
	return tl.busy.Seconds() / Duration(tl.free).Seconds()
}
