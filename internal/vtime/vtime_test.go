package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var z Time
	if got := z.Add(5 * time.Second); got.Seconds() != 5 {
		t.Errorf("Add = %v, want 5s", got)
	}
	if got := z.Add(-time.Second); got != z {
		t.Errorf("negative Add moved time backwards: %v", got)
	}
	a, b := Time(3*time.Second), Time(time.Second)
	if a.Sub(b) != 2*time.Second {
		t.Errorf("Sub = %v", a.Sub(b))
	}
	if !b.Before(a) || !a.After(b) {
		t.Error("Before/After inconsistent")
	}
	if Max(a, b, z) != a || Min(a, b, z) != z {
		t.Error("Max/Min wrong")
	}
	if Max() != 0 {
		t.Error("empty Max should be the zero time (no constraint)")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Min() with no arguments should panic: the zero time is the earliest value, not a safe identity")
			}
		}()
		Min()
	}()
	if a.String() != "3.000s" {
		t.Errorf("String = %q", a.String())
	}
}

func TestTimelineReserve(t *testing.T) {
	var tl Timeline
	s1, e1 := tl.Reserve(0, 10)
	if s1 != 0 || e1 != Time(10) {
		t.Fatalf("first reserve [%v,%v]", s1, e1)
	}
	// Second reservation queues behind the first even if ready earlier.
	s2, e2 := tl.Reserve(5, 10)
	if s2 != Time(10) || e2 != Time(20) {
		t.Fatalf("second reserve [%v,%v]", s2, e2)
	}
	// A late-ready reservation starts at its ready time.
	s3, _ := tl.Reserve(100, 5)
	if s3 != Time(100) {
		t.Fatalf("third reserve starts %v, want 100ns", s3)
	}
	if tl.Busy() != 25 {
		t.Errorf("Busy = %v, want 25", tl.Busy())
	}
	if u := tl.Utilization(); u <= 0 || u > 1 {
		t.Errorf("Utilization = %v", u)
	}
}

func TestGapTimelineBackfill(t *testing.T) {
	var g GapTimeline
	// Book [100,110), then a later-submitted early-ready task must use
	// the idle time before it.
	g.Reserve(100, 10)
	s, e := g.Reserve(0, 10)
	if s != 0 || e != Time(10) {
		t.Fatalf("backfill got [%v,%v], want [0,10)", s, e)
	}
	// A task too big for the gap goes after the last booking.
	s, _ = g.Reserve(0, 95)
	if s != Time(110) {
		t.Fatalf("oversized task starts %v, want 110", s)
	}
}

func TestGapTimelineStartAtMatchesReserve(t *testing.T) {
	var g GapTimeline
	g.Reserve(10, 10)
	g.Reserve(40, 10)
	for _, tc := range []struct {
		ready Time
		d     time.Duration
	}{{0, 5}, {0, 15}, {12, 3}, {12, 30}, {45, 1}, {100, 7}} {
		want := g.StartAt(tc.ready, tc.d)
		var copyG GapTimeline
		copyG.starts = append([]Time(nil), g.starts...)
		copyG.ends = append([]Time(nil), g.ends...)
		got, _ := copyG.Reserve(tc.ready, tc.d)
		if got != want {
			t.Errorf("StartAt(%v,%v)=%v but Reserve books %v", tc.ready, tc.d, want, got)
		}
	}
}

// TestGapTimelineStartAtReserveProperty is the randomized version of the
// agreement check above: under any sequence of reservations, probing with
// StartAt and then booking with Reserve must agree — the invariant the
// cluster scheduler's probe-then-reserve pattern depends on — and the
// coalesced busy list must stay sorted and strictly non-overlapping.
func TestGapTimelineStartAtReserveProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		var g GapTimeline
		for i, x := range seeds {
			if i > 300 {
				break
			}
			ready := Time(x%4096) * Time(time.Millisecond)
			d := time.Duration(x>>12%64) * time.Millisecond // zero-length allowed
			want := g.StartAt(ready, d)
			got, end := g.Reserve(ready, d)
			if got != want {
				t.Logf("StartAt(%v,%v)=%v but Reserve booked %v", ready, d, want, got)
				return false
			}
			if got < ready || end != got.Add(d) {
				return false
			}
			starts, ends := g.Intervals()
			for j := range starts {
				if ends[j] <= starts[j] {
					return false // empty or inverted interval survived
				}
				if j > 0 && starts[j] <= ends[j-1] {
					return false // overlap or missed coalesce
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGapTimelineNoOverlapProperty(t *testing.T) {
	// Property: any sequence of reservations yields non-overlapping
	// intervals, each starting at or after its ready time.
	f := func(seeds []uint16) bool {
		var g GapTimeline
		type iv struct{ s, e Time }
		var booked []iv
		for i, x := range seeds {
			if i > 200 {
				break
			}
			ready := Time(x%997) * Time(time.Millisecond)
			d := time.Duration(x%13+1) * time.Millisecond
			s, e := g.Reserve(ready, d)
			if s < ready || e.Sub(s) != d {
				return false
			}
			for _, b := range booked {
				if s < b.e && b.s < e {
					return false // overlap
				}
			}
			booked = append(booked, iv{s, e})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
