package spark

import (
	"fmt"
	"testing"

	"imagebench/internal/cost"
	"imagebench/internal/vtime"
)

// Section 5.3.2: image analytics pipelines skew — the astronomy use case
// grows data 2.5× on average but 6× on some workers. Stage barriers
// amplify skew: the stage ends when the most loaded reducer ends.

// runGroup materializes a GroupByKey over the given records and returns
// the virtual makespan.
func runGroup(t *testing.T, recs []Pair) vtime.Duration {
	t.Helper()
	s, _, _ := session(4)
	rdd := s.Parallelize("xs", recs, 8).
		GroupByKey("g", cost.CoaddIter, 4, func(k string, vs []Pair) []Pair {
			return vs[:1]
		})
	h, err := rdd.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return vtime.Duration(h.End)
}

func TestShuffleSkewInflatesMakespan(t *testing.T) {
	const n = 32
	const size = 64 << 20
	balanced := make([]Pair, n)
	skewed := make([]Pair, n)
	for i := 0; i < n; i++ {
		balanced[i] = Pair{Key: fmt.Sprintf("patch-%02d", i%8), Value: i, Size: size}
		// 6× hot spot: three quarters of the bytes land on one key.
		key := "patch-hot"
		if i%4 == 0 {
			key = fmt.Sprintf("patch-%02d", i%8)
		}
		skewed[i] = Pair{Key: key, Value: i, Size: size}
	}
	bal := runGroup(t, balanced)
	skw := runGroup(t, skewed)
	if skw <= bal {
		t.Fatalf("skewed shuffle (%v) should be slower than balanced (%v)", skw, bal)
	}
	// The hot reducer serializes most of the combine work; expect a
	// clearly super-unit inflation, not jitter noise.
	if ratio := float64(skw) / float64(bal); ratio < 1.3 {
		t.Errorf("skew inflation %.2f×, want ≥1.3×", ratio)
	}
}
