package spark

import (
	"fmt"
	"strings"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
)

func pairsN(n int, size int64) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{Key: fmt.Sprintf("k%03d", i), Value: i, Size: size}
	}
	return out
}

func TestFilterOp(t *testing.T) {
	s, _, _ := session(2)
	rdd := s.Parallelize("xs", pairsN(10, 1<<10), 4).
		Filter("even", func(p Pair) bool { return p.Value.(int)%2 == 0 })
	out, _, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d records, want 5", len(out))
	}
	for _, p := range out {
		if p.Value.(int)%2 != 0 {
			t.Errorf("odd record survived: %v", p)
		}
	}
}

func TestMapValuesKeepsKeys(t *testing.T) {
	s, _, _ := session(2)
	rdd := s.Parallelize("xs", pairsN(6, 1<<10), 3).
		MapValues("double", cost.Filter, func(v any, size int64) (any, int64) {
			return v.(int) * 2, size
		})
	out, _, err := rdd.SortedCollect()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range out {
		if p.Key != fmt.Sprintf("k%03d", i) {
			t.Errorf("key changed: %q", p.Key)
		}
		if p.Value.(int) != 2*i {
			t.Errorf("value %d: got %v, want %d", i, p.Value, 2*i)
		}
	}
}

func TestReduceByKey(t *testing.T) {
	s, _, _ := session(2)
	var recs []Pair
	for i := 0; i < 12; i++ {
		recs = append(recs, Pair{Key: fmt.Sprintf("g%d", i%3), Value: 1, Size: 8})
	}
	rdd := s.Parallelize("xs", recs, 4).
		ReduceByKey("sum", cost.Mean, 3, func(a, b Pair) Pair {
			return Pair{Key: a.Key, Value: a.Value.(int) + b.Value.(int), Size: a.Size}
		})
	out, _, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d groups, want 3", len(out))
	}
	for _, p := range out {
		if p.Value.(int) != 4 {
			t.Errorf("group %s sum = %v, want 4", p.Key, p.Value)
		}
	}
}

func TestUnionConcatenates(t *testing.T) {
	s, _, _ := session(2)
	a := s.Parallelize("a", pairsN(4, 1), 2)
	b := s.Parallelize("b", pairsN(6, 1), 3)
	n, _, err := a.Union(b).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("union count = %d, want 10", n)
	}
}

func TestJoinInner(t *testing.T) {
	s, _, _ := session(2)
	left := s.Parallelize("l", []Pair{
		{Key: "s0", Value: "L0", Size: 4},
		{Key: "s1", Value: "L1", Size: 4},
		{Key: "s1", Value: "L1b", Size: 4},
		{Key: "s2", Value: "L2", Size: 4},
	}, 2)
	right := s.Parallelize("r", []Pair{
		{Key: "s1", Value: "R1", Size: 8},
		{Key: "s2", Value: "R2", Size: 8},
		{Key: "s3", Value: "R3", Size: 8},
	}, 2)
	out, _, err := left.Join(right, 2).SortedCollect()
	if err != nil {
		t.Fatal(err)
	}
	// s1 matches twice (two left values), s2 once, s0/s3 are dropped.
	if len(out) != 3 {
		t.Fatalf("join produced %d records, want 3: %v", len(out), out)
	}
	for _, p := range out {
		jv := p.Value.(JoinedValue)
		if p.Size != 12 {
			t.Errorf("joined size = %d, want 12", p.Size)
		}
		if p.Key == "s2" && (jv.Left != "L2" || jv.Right != "R2") {
			t.Errorf("s2 join: %+v", jv)
		}
	}
}

func TestCogroup(t *testing.T) {
	s, _, _ := session(2)
	left := s.Parallelize("l", []Pair{
		{Key: "a", Value: 1, Size: 4}, {Key: "a", Value: 2, Size: 4}, {Key: "b", Value: 3, Size: 4},
	}, 2)
	right := s.Parallelize("r", []Pair{{Key: "a", Value: 9, Size: 4}}, 1)
	out, _, err := left.Cogroup(right, 2).SortedCollect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("cogroup produced %d keys, want 2", len(out))
	}
	a := out[0].Value.(CogroupedValue)
	if len(a.Left) != 2 || len(a.Right) != 1 {
		t.Errorf("key a: %d left, %d right; want 2, 1", len(a.Left), len(a.Right))
	}
	b := out[1].Value.(CogroupedValue)
	if len(b.Left) != 1 || len(b.Right) != 0 {
		t.Errorf("key b: %d left, %d right; want 1, 0", len(b.Left), len(b.Right))
	}
}

func TestDistinct(t *testing.T) {
	s, _, _ := session(2)
	var recs []Pair
	for i := 0; i < 9; i++ {
		recs = append(recs, Pair{Key: fmt.Sprintf("k%d", i%3), Value: i, Size: 4})
	}
	n, _, err := s.Parallelize("xs", recs, 3).Distinct(2).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("distinct count = %d, want 3", n)
	}
}

func TestSampleDeterministic(t *testing.T) {
	s, _, _ := session(2)
	mk := func() *RDD { return s.Parallelize("xs", pairsN(100, 4), 4).Sample(0.3, 42) }
	n1, _, err := mk().Count()
	if err != nil {
		t.Fatal(err)
	}
	n2, _, err := mk().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Errorf("same seed gave different samples: %d vs %d", n1, n2)
	}
	if n1 == 0 || n1 == 100 {
		t.Errorf("0.3 sample kept %d of 100", n1)
	}
	all, _, err := s.Parallelize("xs", pairsN(10, 4), 2).Sample(1.01, 7).Count()
	if err != nil {
		t.Fatal(err)
	}
	if all != 10 {
		t.Errorf("fraction>1 kept %d of 10", all)
	}
}

func TestSortByKeyTotalOrder(t *testing.T) {
	s, _, _ := session(2)
	recs := []Pair{
		{Key: "zebra", Size: 4}, {Key: "apple", Size: 4},
		{Key: "mango", Size: 4}, {Key: "berry", Size: 4},
	}
	out, _, err := s.Parallelize("xs", recs, 2).SortByKey(2).SortedCollect()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"apple", "berry", "mango", "zebra"}
	for i, p := range out {
		if p.Key != want[i] {
			t.Fatalf("order: got %v", out)
		}
	}
}

func TestTakeAndCountByKey(t *testing.T) {
	s, _, _ := session(2)
	var recs []Pair
	for i := 0; i < 8; i++ {
		recs = append(recs, Pair{Key: fmt.Sprintf("g%d", i%2), Value: i, Size: 4})
	}
	rdd := s.Parallelize("xs", recs, 2)
	got, _, err := rdd.Take(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("take(3) returned %d", len(got))
	}
	counts, _, err := s.Parallelize("ys", recs, 2).CountByKey()
	if err != nil {
		t.Fatal(err)
	}
	if counts["g0"] != 4 || counts["g1"] != 4 {
		t.Fatalf("countByKey: %v", counts)
	}
}

func TestDebugStringShowsLineage(t *testing.T) {
	s, _, store := session(2)
	stage(store, 4)
	rdd := s.Objects("in/", 2, decodeOne).
		Filter("f", func(Pair) bool { return true }).
		GroupByKey("g", cost.Mean, 2, func(k string, vs []Pair) []Pair { return vs })
	dbg := rdd.DebugString()
	for _, want := range []string{"[shuffle]", "[narrow]", "[source]"} {
		if !strings.Contains(dbg, want) {
			t.Errorf("DebugString missing %s:\n%s", want, dbg)
		}
	}
}

// --- executor failure & lineage recovery --------------------------------

func TestKillExecutorValidation(t *testing.T) {
	s, _, _ := session(3)
	if err := s.KillExecutor(0); err == nil {
		t.Error("killing the driver node should fail")
	}
	if err := s.KillExecutor(9); err == nil {
		t.Error("killing a nonexistent node should fail")
	}
	if err := s.KillExecutor(1); err != nil {
		t.Fatal(err)
	}
	if err := s.KillExecutor(1); err != nil {
		t.Errorf("re-killing a dead node should be a no-op, got %v", err)
	}
	if s.DeadExecutors() != 1 {
		t.Errorf("dead = %d, want 1", s.DeadExecutors())
	}
	// Every worker node can die; the driver's node always survives.
	if err := s.KillExecutor(2); err != nil {
		t.Fatal(err)
	}
	if s.DeadExecutors() != 2 {
		t.Errorf("dead = %d, want 2", s.DeadExecutors())
	}
}

func TestRecoverCachedSource(t *testing.T) {
	s, _, store := session(4)
	stage(store, 8)
	rdd := s.Objects("in/", 8, decodeOne).Cache()
	out1, h1, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.KillExecutor(2); err != nil {
		t.Fatal(err)
	}
	out2, h2, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != len(out1) {
		t.Fatalf("lost records after recovery: %d vs %d", len(out2), len(out1))
	}
	for _, node := range rdd.nodes {
		if node == 2 {
			t.Error("recovered partition still assigned to the dead node")
		}
	}
	if h2.End <= h1.End {
		t.Error("recovery should advance virtual time")
	}
}

func TestRecoverOnlyLostPartitions(t *testing.T) {
	s, _, store := session(4)
	stage(store, 8)
	rdd := s.Objects("in/", 8, decodeOne).Cache()
	if _, _, err := rdd.Collect(); err != nil {
		t.Fatal(err)
	}
	beforeNodes := append([]int(nil), rdd.nodes...)
	beforeReady := append([]*cluster.Handle(nil), rdd.ready...)
	if err := s.KillExecutor(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rdd.Collect(); err != nil {
		t.Fatal(err)
	}
	for p := range beforeNodes {
		if beforeNodes[p] == 2 {
			if rdd.ready[p] == beforeReady[p] {
				t.Errorf("lost partition %d was not recomputed", p)
			}
		} else if rdd.ready[p] != beforeReady[p] {
			t.Errorf("surviving partition %d was needlessly recomputed", p)
		}
	}
}

func TestRecoverShuffleOutput(t *testing.T) {
	s, _, store := session(4)
	stage(store, 8)
	grouped := s.Objects("in/", 8, decodeOne).
		GroupByKey("g", cost.Mean, 4, func(k string, vs []Pair) []Pair { return vs }).
		Cache()
	out1, _, err := grouped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.KillExecutor(1); err != nil {
		t.Fatal(err)
	}
	out2, _, err := grouped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != len(out1) {
		t.Fatalf("shuffle recovery lost records: %d vs %d", len(out2), len(out1))
	}
	for _, node := range grouped.nodes {
		if node == 1 {
			t.Error("recovered reduce partition still on dead node")
		}
	}
}

func TestRecoverNarrowOverCachedParent(t *testing.T) {
	s, _, store := session(4)
	stage(store, 8)
	base := s.Objects("in/", 8, decodeOne).Cache()
	if _, _, err := base.Collect(); err != nil {
		t.Fatal(err)
	}
	mapped := base.Map(UDF{Name: "tag", Op: cost.Filter, F: func(p Pair) []Pair {
		return []Pair{{Key: p.Key, Value: "x", Size: p.Size}}
	}}).Cache()
	if _, _, err := mapped.Collect(); err != nil {
		t.Fatal(err)
	}
	if err := s.KillExecutor(3); err != nil {
		t.Fatal(err)
	}
	out, _, err := mapped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("got %d records after recovery, want 8", len(out))
	}
	for _, node := range append(append([]int(nil), mapped.nodes...), base.nodes...) {
		if node == 3 {
			t.Error("partition still on dead node after recovery")
		}
	}
}

func TestRecoverParallelize(t *testing.T) {
	s, _, _ := session(3)
	rdd := s.Parallelize("xs", pairsN(6, 1<<10), 6).Cache()
	if _, _, err := rdd.Collect(); err != nil {
		t.Fatal(err)
	}
	if err := s.KillExecutor(2); err != nil {
		t.Fatal(err)
	}
	out, _, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("got %d records, want 6", len(out))
	}
}

func TestNewWorkAvoidsDeadNodes(t *testing.T) {
	s, _, store := session(4)
	stage(store, 8)
	if err := s.KillExecutor(1); err != nil {
		t.Fatal(err)
	}
	rdd := s.Objects("in/", 8, decodeOne)
	if _, _, err := rdd.Collect(); err != nil {
		t.Fatal(err)
	}
	for _, node := range rdd.nodes {
		if node == 1 {
			t.Error("fresh computation scheduled on a dead node")
		}
	}
}

func TestRepartitionSpreadsRecords(t *testing.T) {
	s, _, _ := session(4)
	rdd := s.Parallelize("xs", pairsN(32, 1<<20), 2).Repartition(8)
	out, _, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 32 {
		t.Fatalf("repartition lost records: %d", len(out))
	}
	if rdd.nParts != 8 {
		t.Fatalf("nParts = %d, want 8", rdd.nParts)
	}
}

func TestCoalesceMergesWithoutLoss(t *testing.T) {
	s, _, _ := session(4)
	rdd := s.Parallelize("xs", pairsN(24, 1<<20), 12).Coalesce(3)
	if err := rdd.compute(); err != nil {
		t.Fatal(err)
	}
	if len(rdd.parts) != 3 {
		t.Fatalf("got %d partitions, want 3", len(rdd.parts))
	}
	out, _, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 24 {
		t.Fatalf("coalesce lost records: %d", len(out))
	}
	// Oversized target clamps to the parent's count.
	clamped := s.Parallelize("ys", pairsN(4, 1), 2).Coalesce(99)
	if err := clamped.compute(); err != nil {
		t.Fatal(err)
	}
	if len(clamped.parts) != 2 {
		t.Fatalf("clamped coalesce has %d partitions, want 2", len(clamped.parts))
	}
}
