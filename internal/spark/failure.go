package spark

import (
	"fmt"

	"imagebench/internal/cluster"
)

// This file implements executor failure and lineage-based recovery — the
// fault-tolerance mechanism the RDD abstraction exists for (Zaharia et
// al., NSDI'12, reference [42] of the paper). Killing an executor loses
// every partition it hosted (cached blocks, shuffle outputs); the next
// action detects the loss and recomputes exactly the lost partitions
// from lineage, rescheduling them on surviving nodes.

// KillExecutor marks node's executor dead: partitions hosted there are
// lost and will be recomputed from lineage by the next action. Node 0
// hosts the driver and cannot be killed, so at least one node always
// survives. Killing an already-dead node is a no-op.
func (s *Session) KillExecutor(node int) error {
	if node == 0 {
		return fmt.Errorf("spark: node 0 hosts the driver")
	}
	if node < 0 || node >= s.cl.Nodes() {
		return fmt.Errorf("spark: no node %d", node)
	}
	if s.dead == nil {
		s.dead = make(map[int]bool)
	}
	if s.dead[node] {
		return nil
	}
	s.dead[node] = true
	s.epoch++
	return nil
}

// DeadExecutors returns how many executors have been killed.
func (s *Session) DeadExecutors() int { return len(s.dead) }

// adoptNodeFailure reacts to a task (or transfer) lost to a cluster-level
// node kill: the hosting executor is marked dead — bumping the failure
// epoch so lineage repair recomputes exactly the partitions it hosted —
// and the failure time is recorded as the earliest moment recovery work
// may be scheduled. It reports false for errors that are not node
// failures, or when the failed node hosts the driver (unrecoverable).
func (s *Session) adoptNodeFailure(err error) bool {
	nd, ok := cluster.DownAt(err)
	if !ok || nd.Node == 0 {
		return false
	}
	if s.dead == nil || !s.dead[nd.Node] {
		if s.KillExecutor(nd.Node) != nil {
			return false
		}
	}
	if nd.At > s.failedAt {
		s.failedAt = nd.At
	}
	return true
}

// afterFailure returns a handle recovery work must wait on: a loss is
// only detectable once the kill has happened, so recomputation cannot
// use idle cluster capacity from before it. It is nil while no
// cluster-level failure has been adopted (manual KillExecutor calls,
// as in the fault-tolerance example, keep their between-action timing).
func (s *Session) afterFailure() *cluster.Handle {
	if s.failedAt == 0 {
		return nil
	}
	return &cluster.Handle{End: s.failedAt}
}

// retryLost is Spark's task-level retry: while partition p's handle
// reports a node failure, the executor is adopted as dead and the task
// resubmitted on a surviving node via the given closure. Attempts are
// bounded by the cluster size (each genuine retry kills one more
// executor, and the driver's node cannot die recoverably).
func (r *RDD) retryLost(p int, resubmit func(attempt int) error) error {
	for attempt := 1; attempt <= r.s.cl.Nodes(); attempt++ {
		h := r.ready[p]
		if h == nil || h.Err == nil {
			return nil
		}
		if !r.s.adoptNodeFailure(h.Err) {
			return h.Err
		}
		if err := resubmit(attempt); err != nil {
			return err
		}
	}
	if h := r.ready[p]; h != nil {
		return h.Err
	}
	return nil
}

// nodeFor maps a partition index onto an alive node.
func (s *Session) nodeFor(p int) int {
	n := s.cl.Nodes()
	if len(s.dead) == 0 {
		return p % n
	}
	alive := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !s.dead[i] {
			alive = append(alive, i)
		}
	}
	return alive[p%len(alive)]
}

// lostPartitions returns the indices of materialized partitions hosted
// on dead nodes.
func (r *RDD) lostPartitions() []int {
	var lost []int
	for p, node := range r.nodes {
		if r.s.dead[node] {
			lost = append(lost, p)
		}
	}
	return lost
}

// repair recomputes the partitions lost to executor failures since this
// RDD was materialized, using its lineage, and re-stamps the epoch.
// Partitions on surviving nodes are untouched.
func (r *RDD) repair() error {
	s := r.s
	lost := r.lostPartitions()
	if len(lost) == 0 {
		r.epoch = s.epoch
		return nil
	}
	switch r.kind {
	case opSource:
		if r.decode == nil {
			// parallelize(): the driver still has the data; re-ship.
			for i, p := range lost {
				node := s.nodeFor(p + i + 1) // spread away from the old spot
				var bytes int64
				for _, rec := range r.parts[p] {
					bytes += rec.Size
				}
				ship := s.cl.Transfer(0, node, bytes, s.startup, s.afterFailure())
				r.nodes[p] = node
				r.ready[p] = s.cl.Submit(node, []*cluster.Handle{ship}, s.model.GobTime(bytes), nil)
			}
		} else {
			// Re-enumerate is unnecessary (the driver kept the listing);
			// re-download the lost partitions only.
			for i, p := range lost {
				if err := r.fetchPartition(p, s.nodeFor(p+i+1), s.startup, s.afterFailure()); err != nil {
					return err
				}
			}
		}
	case opNarrow:
		chain, base := r.narrowChain()
		if err := base.compute(); err != nil { // repairs base recursively
			return err
		}
		for _, p := range lost {
			r.narrowPartition(chain, base, p, s.afterFailure())
		}
	case opShuffle:
		// Dead nodes lost their map outputs too: recompute the map side
		// (the parent repairs itself recursively), then re-run only the
		// lost reduce partitions.
		if err := r.parent.compute(); err != nil {
			return err
		}
		blocks, barrier := r.mapSide(s.afterFailure())
		for i, p := range lost {
			r.reducePartition(p, s.nodeFor(p+i+1), blocks, barrier, nil)
		}
	case opUnion:
		// A union owns no partitions; repair the inputs and re-point.
		var parts [][]Pair
		var nodes []int
		var ready []*cluster.Handle
		for _, in := range r.parents {
			if err := in.compute(); err != nil {
				return err
			}
			parts = append(parts, in.parts...)
			nodes = append(nodes, in.nodes...)
			ready = append(ready, in.ready...)
		}
		r.parts, r.nodes, r.ready = parts, nodes, ready
	}
	if r.cached && r.spilled != nil {
		for _, p := range lost {
			if p < len(r.spilled) {
				r.spilled[p] = false
				r.cachePartition(p)
			}
		}
	}
	r.epoch = s.epoch
	return nil
}
