package spark

import (
	"fmt"
	"testing"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
)

func session(nodes int) (*Session, *cluster.Cluster, *objstore.Store) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cl := cluster.New(cfg)
	store := objstore.New()
	return NewSession(cl, store, nil), cl, store
}

func stage(store *objstore.Store, n int) {
	for i := 0; i < n; i++ {
		store.Put(fmt.Sprintf("in/%03d", i), nil, 1<<20)
	}
}

func decodeOne(obj objstore.Object) []Pair {
	return []Pair{{Key: obj.Key, Value: obj.Key, Size: obj.Size()}}
}

func TestMapAndCollect(t *testing.T) {
	s, _, store := session(2)
	stage(store, 8)
	rdd := s.Objects("in/", 4, decodeOne).Map(UDF{Name: "tag", Op: cost.Filter, F: func(p Pair) []Pair {
		return []Pair{{Key: p.Key, Value: p.Value.(string) + "!", Size: p.Size}}
	}})
	out, h, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 || h == nil {
		t.Fatalf("collected %d", len(out))
	}
	for _, p := range out {
		if p.Value.(string) != p.Key+"!" {
			t.Errorf("map not applied: %v", p.Value)
		}
	}
}

func TestFlatMapDropsAndExpands(t *testing.T) {
	s, _, store := session(2)
	stage(store, 4)
	rdd := s.Objects("in/", 2, decodeOne).Map(UDF{Name: "expand", Op: cost.Filter, F: func(p Pair) []Pair {
		if p.Key == "in/000" {
			return nil // drop
		}
		return []Pair{p, p} // duplicate
	}})
	n, _, err := rdd.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("count %d, want 6", n)
	}
}

func TestGroupByKeyGathersAllValues(t *testing.T) {
	s, _, store := session(2)
	stage(store, 6)
	grouped := s.Objects("in/", 3, decodeOne).
		Map(UDF{Name: "rekey", Op: cost.Filter, F: func(p Pair) []Pair {
			return []Pair{{Key: "g" + p.Key[len(p.Key)-1:], Value: 1, Size: p.Size}}
		}}).
		GroupByKey("count", cost.Mean, 0, func(key string, values []Pair) []Pair {
			return []Pair{{Key: key, Value: len(values), Size: 1}}
		})
	out, _, err := grouped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range out {
		total += p.Value.(int)
	}
	if total != 6 {
		t.Errorf("grouped %d values, want 6", total)
	}
}

func TestDefaultPartitioningHDFSLike(t *testing.T) {
	s, _, store := session(4)
	for i := 0; i < 100; i++ {
		store.Put(fmt.Sprintf("in/%03d", i), nil, 64<<20) // 6.4 GB total
	}
	rdd := s.Objects("in/", 0, decodeOne)
	// 6.4 GB / 1 GB default partition bytes → ~7 partitions, far fewer
	// than objects (the paper's under-utilization default).
	if rdd.nParts < 5 || rdd.nParts > 10 {
		t.Errorf("default partitions = %d", rdd.nParts)
	}
}

func TestMorePartitionsFasterUntilSlots(t *testing.T) {
	timeFor := func(parts int) float64 {
		s, cl, store := session(4) // 32 slots
		stage(store, 64)
		rdd := s.Objects("in/", parts, decodeOne).Map(UDF{Name: "work", Op: cost.Denoise, F: func(p Pair) []Pair {
			return []Pair{p}
		}})
		if _, err := rdd.Materialize(); err != nil {
			t.Fatal(err)
		}
		return cl.Makespan().Seconds()
	}
	t1, t16, t64 := timeFor(1), timeFor(16), timeFor(64)
	if !(t1 > t16 && t16 > t64*0.8) {
		t.Errorf("partition scaling wrong: 1→%f 16→%f 64→%f", t1, t16, t64)
	}
}

func TestUncachedLineageRecomputes(t *testing.T) {
	s, _, store := session(2)
	stage(store, 4)
	calls := 0
	src := s.Objects("in/", 2, func(obj objstore.Object) []Pair {
		calls++
		return decodeOne(obj)
	})
	m := src.Map(UDF{Name: "id", Op: cost.Filter, F: func(p Pair) []Pair { return []Pair{p} }})
	if _, err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	first := calls
	m2 := src.Map(UDF{Name: "id2", Op: cost.Filter, F: func(p Pair) []Pair { return []Pair{p} }})
	if _, err := m2.Materialize(); err != nil {
		t.Fatal(err)
	}
	if calls != 2*first {
		t.Errorf("uncached source decoded %d times, want %d (recompute)", calls, 2*first)
	}
}

func TestCachedLineageReused(t *testing.T) {
	s, _, store := session(2)
	stage(store, 4)
	calls := 0
	src := s.Objects("in/", 2, func(obj objstore.Object) []Pair {
		calls++
		return decodeOne(obj)
	}).Cache()
	if _, err := src.Materialize(); err != nil {
		t.Fatal(err)
	}
	first := calls
	m := src.Map(UDF{Name: "id", Op: cost.Filter, F: func(p Pair) []Pair { return []Pair{p} }})
	if _, err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	if calls != first {
		t.Errorf("cached source decoded again (%d calls)", calls)
	}
}

func TestShuffleSpillsUnderPressure(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.MemPerNode = 10 << 20 // tiny memory
	cl := cluster.New(cfg)
	store := objstore.New()
	s := NewSession(cl, store, nil)
	stage(store, 8) // 8 MB total but grouped onto few reducers
	grouped := s.Objects("in/", 4, decodeOne).
		Map(UDF{Name: "one-key", Op: cost.Filter, F: func(p Pair) []Pair {
			return []Pair{{Key: "all", Value: p.Value, Size: 8 << 20}}
		}}).
		GroupByKey("gather", cost.Mean, 0, func(key string, values []Pair) []Pair {
			return []Pair{{Key: key, Value: len(values), Size: 1}}
		})
	if _, err := grouped.Materialize(); err != nil {
		t.Fatalf("spilling should prevent failure: %v", err)
	}
	if s.SpilledBytes() == 0 {
		t.Error("expected spill under memory pressure")
	}
}

func TestParallelize(t *testing.T) {
	s, _, _ := session(2)
	pairs := []Pair{{Key: "a", Size: 1}, {Key: "b", Size: 1}, {Key: "c", Size: 1}}
	out, _, err := s.Parallelize("x", pairs, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("parallelize lost records: %d", len(out))
	}
}
