package spark

import (
	"sort"
	"testing"
	"time"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

// runDenoiseJob stages nObjects 1 MB objects and runs a slow narrow map
// over them, returning the sorted results and the cluster makespan.
func runDenoiseJob(t *testing.T, cl *cluster.Cluster, store *objstore.Store) ([]Pair, vtime.Duration) {
	t.Helper()
	s := NewSession(cl, store, nil)
	rdd := s.Objects("in/", 8, decodeOne).Map(UDF{Name: "slow", Op: cost.Denoise, F: func(p Pair) []Pair {
		return []Pair{{Key: p.Key, Value: p.Value.(string) + "!", Size: p.Size}}
	}})
	out, _, err := rdd.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, vtime.Duration(cl.Makespan())
}

// TestScheduledKillRecoversFromLineage drives the cluster-level fault
// schedule through Spark's task retry + lineage repair: a node killed
// mid-job loses its tasks and partitions, the executor is adopted as
// dead, and only the lost partitions are recomputed on survivors — the
// job still returns the exact same records.
func TestScheduledKillRecoversFromLineage(t *testing.T) {
	mk := func() (*cluster.Cluster, *objstore.Store) {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		cl := cluster.New(cfg)
		store := objstore.New()
		stage(store, 16)
		return cl, store
	}
	bcl, bstore := mk()
	want, baseline := runDenoiseJob(t, bcl, bstore)

	fcl, fstore := mk()
	// Startup is 8s; the 1 MB denoise tasks run in ~8.1–9.1s virtual
	// time, so a kill at 8.5s lands mid-job.
	killAt := vtime.Time(8500 * time.Millisecond)
	if err := fcl.Inject(cluster.Fault{Kind: cluster.FaultKill, Node: 1, At: killAt}); err != nil {
		t.Fatal(err)
	}
	fs := NewSession(fcl, fstore, nil)
	rdd := fs.Objects("in/", 8, decodeOne).Map(UDF{Name: "slow", Op: cost.Denoise, F: func(p Pair) []Pair {
		return []Pair{{Key: p.Key, Value: p.Value.(string) + "!", Size: p.Size}}
	}})
	got, _, err := rdd.Collect()
	if err != nil {
		t.Fatalf("collect with scheduled kill: %v", err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Value != want[i].Value {
			t.Fatalf("record %d = %v, want %v", i, got[i], want[i])
		}
	}
	if fs.DeadExecutors() != 1 {
		t.Errorf("DeadExecutors = %d, want 1 (the scheduled kill adopted)", fs.DeadExecutors())
	}
	recovered := vtime.Duration(fcl.Makespan())
	if recovered <= baseline {
		t.Errorf("recovery was free: makespan %v vs baseline %v", recovered, baseline)
	}
	// Partial recovery: losing 1 of 4 nodes mid-job must cost far less
	// than running the whole job again.
	if recovered >= 2*baseline {
		t.Errorf("recovery recomputed too much: makespan %v vs baseline %v", recovered, baseline)
	}
}
