package spark

import (
	"fmt"
	"math/rand"
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
)

// This file provides the rest of the PySpark RDD API surface the paper's
// implementations draw on, derived from the three physical primitives
// (source, narrow, shuffle): filter, flatMap, mapValues, reduceByKey,
// union, join, cogroup, distinct, sample, keys/values, take, countByKey,
// and sortByKey.

// Filter keeps the records the predicate accepts. Like every PySpark
// lambda, the predicate crosses the Python worker boundary per record.
func (r *RDD) Filter(name string, pred func(Pair) bool) *RDD {
	return r.Map(UDF{Name: "filter:" + name, Op: cost.Filter, F: func(p Pair) []Pair {
		if pred(p) {
			return []Pair{p}
		}
		return nil
	}})
}

// FlatMap applies udf, flattening its 1→N output — physically identical
// to Map in this engine (Map's UDFs already return slices); provided for
// API parity with the paper's code (Figure 6 uses both).
func (r *RDD) FlatMap(udf UDF) *RDD { return r.Map(udf) }

// MapValues transforms only the value of each record, keeping the key:
// the partitioner is preserved, so no shuffle follows.
func (r *RDD) MapValues(name string, op cost.Op, f func(v any, size int64) (any, int64)) *RDD {
	return r.Map(UDF{Name: "mapValues:" + name, Op: op, F: func(p Pair) []Pair {
		v, n := f(p.Value, p.Size)
		return []Pair{{Key: p.Key, Value: v, Size: n}}
	}})
}

// Keys projects each record to its key (value dropped, 1-byte records).
func (r *RDD) Keys() *RDD {
	return r.Map(UDF{Name: "keys", Op: cost.Filter, Native: true, F: func(p Pair) []Pair {
		return []Pair{{Key: p.Key, Size: int64(len(p.Key))}}
	}})
}

// ReduceByKey merges the values of each key pairwise with the
// associative reduce function — Spark's preferred aggregation (the
// combine runs on the grouped values after the shuffle; map-side
// combining is folded into the modeled group bytes).
func (r *RDD) ReduceByKey(name string, op cost.Op, nParts int, reduce func(a, b Pair) Pair) *RDD {
	return r.GroupByKey("reduceByKey:"+name, op, nParts, func(key string, values []Pair) []Pair {
		if len(values) == 0 {
			return nil
		}
		acc := values[0]
		for _, v := range values[1:] {
			acc = reduce(acc, v)
		}
		acc.Key = key
		return []Pair{acc}
	})
}

// Union concatenates two RDDs without a shuffle: the result has the
// partitions of both inputs in place.
func (r *RDD) Union(other *RDD) *RDD {
	return &RDD{s: r.s, kind: opUnion, name: "union", parents: []*RDD{r, other}}
}

// computeUnion materializes both inputs and concatenates their
// partitions; no data moves.
func (r *RDD) computeUnion() error {
	var parts [][]Pair
	var nodes []int
	var ready []*cluster.Handle
	for _, p := range r.parents {
		if err := p.compute(); err != nil {
			return err
		}
		parts = append(parts, p.parts...)
		nodes = append(nodes, p.nodes...)
		ready = append(ready, p.ready...)
	}
	r.parts = parts
	r.nodes = nodes
	r.ready = ready
	r.nParts = len(parts)
	r.done = true
	r.epoch = r.s.epoch
	r.finishCache()
	return nil
}

// taggedValue marks which side of a join/cogroup a record came from.
type taggedValue struct {
	left bool
	rec  Pair
}

// JoinedValue is the value of one joined record: the left and right
// values for a key match.
type JoinedValue struct {
	Left, Right any
}

// Join inner-joins two RDDs by key via tag → union → shuffle, the
// textbook RDD lineage for joins. Each key match produces one record
// whose value is a JoinedValue and whose size is the sum of both sides.
func (r *RDD) Join(other *RDD, nParts int) *RDD {
	tag := func(in *RDD, left bool, name string) *RDD {
		return in.Map(UDF{Name: name, Op: cost.Filter, Native: true, F: func(p Pair) []Pair {
			return []Pair{{Key: p.Key, Value: taggedValue{left: left, rec: p}, Size: p.Size}}
		}})
	}
	both := tag(r, true, "join:tagL").Union(tag(other, false, "join:tagR"))
	return both.GroupByKey("join", cost.Filter, nParts, func(key string, values []Pair) []Pair {
		var lefts, rights []Pair
		for _, v := range values {
			tv := v.Value.(taggedValue)
			if tv.left {
				lefts = append(lefts, tv.rec)
			} else {
				rights = append(rights, tv.rec)
			}
		}
		var out []Pair
		for _, l := range lefts {
			for _, rt := range rights {
				out = append(out, Pair{
					Key:   key,
					Value: JoinedValue{Left: l.Value, Right: rt.Value},
					Size:  l.Size + rt.Size,
				})
			}
		}
		return out
	})
}

// CogroupedValue is the value of one cogrouped record: all left and all
// right values sharing a key.
type CogroupedValue struct {
	Left, Right []any
}

// Cogroup groups both RDDs' values by key into one record per key.
func (r *RDD) Cogroup(other *RDD, nParts int) *RDD {
	tag := func(in *RDD, left bool, name string) *RDD {
		return in.Map(UDF{Name: name, Op: cost.Filter, Native: true, F: func(p Pair) []Pair {
			return []Pair{{Key: p.Key, Value: taggedValue{left: left, rec: p}, Size: p.Size}}
		}})
	}
	both := tag(r, true, "cogroup:tagL").Union(tag(other, false, "cogroup:tagR"))
	return both.GroupByKey("cogroup", cost.Filter, nParts, func(key string, values []Pair) []Pair {
		var cg CogroupedValue
		var size int64
		for _, v := range values {
			tv := v.Value.(taggedValue)
			if tv.left {
				cg.Left = append(cg.Left, tv.rec.Value)
			} else {
				cg.Right = append(cg.Right, tv.rec.Value)
			}
			size += tv.rec.Size
		}
		return []Pair{{Key: key, Value: cg, Size: size}}
	})
}

// Distinct keeps one record per key (values of duplicate keys are
// arbitrary but deterministic: the first in shuffle order).
func (r *RDD) Distinct(nParts int) *RDD {
	return r.GroupByKey("distinct", cost.Filter, nParts, func(key string, values []Pair) []Pair {
		return values[:1]
	})
}

// Sample keeps approximately fraction of the records, deterministically
// seeded for reproducible experiments.
func (r *RDD) Sample(fraction float64, seed int64) *RDD {
	rng := rand.New(rand.NewSource(seed))
	return r.Map(UDF{Name: "sample", Op: cost.Filter, Native: true, F: func(p Pair) []Pair {
		if rng.Float64() < fraction {
			return []Pair{p}
		}
		return nil
	}})
}

// SortByKey range-partitions the records and sorts each partition,
// yielding a total order across partition boundaries (partition i holds
// keys ≤ every key of partition i+1).
func (r *RDD) SortByKey(nParts int) *RDD {
	if nParts <= 0 {
		nParts = r.nParts
	}
	// Spark samples key boundaries on the driver, then shuffles by
	// range. The shuffle mechanics are the same as a hash shuffle; the
	// range assignment happens in the grouped combine by re-sorting.
	sorted := r.GroupByKey("sortByKey", cost.Filter, nParts, func(key string, values []Pair) []Pair {
		return values
	})
	return sorted.Map(UDF{Name: "sortPartition", Op: cost.Filter, Native: true, F: func(p Pair) []Pair {
		return []Pair{p}
	}})
}

// Take materializes the RDD and returns the first n records. (Real Spark
// evaluates only as many partitions as needed; this engine charges the
// full computation, which is an upper bound.)
func (r *RDD) Take(n int) ([]Pair, *cluster.Handle, error) {
	out, h, err := r.Collect()
	if err != nil {
		return nil, nil, err
	}
	if n > len(out) {
		n = len(out)
	}
	return out[:n], h, nil
}

// CountByKey materializes the RDD and returns per-key record counts on
// the driver.
func (r *RDD) CountByKey() (map[string]int, *cluster.Handle, error) {
	if err := r.compute(); err != nil {
		return nil, nil, err
	}
	counts := make(map[string]int)
	var deps []*cluster.Handle
	for i, part := range r.parts {
		for _, p := range part {
			counts[p.Key]++
		}
		// Only the counts travel to the driver, not the values.
		deps = append(deps, r.s.cl.Transfer(r.nodes[i], 0, int64(16*len(part)), r.ready[i]))
	}
	h := r.s.cl.Barrier(deps...)
	r.resetLineage()
	return counts, h, nil
}

// SortedCollect is Collect with records sorted by key — a helper for
// deterministic test assertions and result tables.
func (r *RDD) SortedCollect() ([]Pair, *cluster.Handle, error) {
	out, h, err := r.Collect()
	if err != nil {
		return nil, nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, h, nil
}

// DebugString renders the RDD's lineage, mimicking Spark's
// RDD.toDebugString.
func (r *RDD) DebugString() string {
	var render func(r *RDD, depth int) string
	render = func(r *RDD, depth int) string {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		kind := map[opKind]string{opSource: "source", opNarrow: "narrow", opShuffle: "shuffle", opUnion: "union", opCoalesce: "coalesce"}[r.kind]
		s := fmt.Sprintf("%s(%d) %s [%s]\n", indent, r.nParts, r.name, kind)
		if r.parent != nil {
			s += render(r.parent, depth+1)
		}
		for _, p := range r.parents {
			s += render(p, depth+1)
		}
		return s
	}
	return render(r, 0)
}

// Repartition redistributes records evenly across nParts partitions via
// a full shuffle (records keep their keys; only placement changes).
func (r *RDD) Repartition(nParts int) *RDD {
	return r.GroupByKey("repartition", cost.Filter, nParts, func(key string, values []Pair) []Pair {
		return values
	})
}

// Coalesce reduces the partition count without a shuffle: runs of
// consecutive partitions merge onto the node of their first member
// (Spark's coalesce(n, shuffle=false)). Targets larger than the current
// partition count clamp to it.
func (r *RDD) Coalesce(nParts int) *RDD {
	return &RDD{s: r.s, kind: opCoalesce, name: "coalesce", parents: []*RDD{r}, nParts: nParts}
}

// computeCoalesce merges runs of consecutive parent partitions without a
// shuffle: each merged partition lives on the node of its first source
// partition, paying transfers only for the sources that live elsewhere.
func (r *RDD) computeCoalesce() error {
	parent := r.parents[0]
	if err := parent.compute(); err != nil {
		return err
	}
	s := r.s
	n := r.nParts
	if n <= 0 || n > parent.nParts {
		n = parent.nParts
	}
	per := (parent.nParts + n - 1) / n
	r.nParts = n
	r.parts = make([][]Pair, n)
	r.nodes = make([]int, n)
	r.ready = make([]*cluster.Handle, n)
	for p := 0; p < n; p++ {
		lo := p * per
		hi := lo + per
		if hi > parent.nParts {
			hi = parent.nParts
		}
		if lo >= hi {
			r.nodes[p] = s.nodeFor(p)
			r.ready[p] = s.startup
			continue
		}
		node := parent.nodes[lo]
		var deps []*cluster.Handle
		var recs []Pair
		for i := lo; i < hi; i++ {
			recs = append(recs, parent.parts[i]...)
			dep := parent.ready[i]
			if parent.nodes[i] != node {
				var bytes int64
				for _, rec := range parent.parts[i] {
					bytes += rec.Size
				}
				dep = s.cl.Transfer(parent.nodes[i], node, bytes, dep)
			}
			deps = append(deps, dep)
		}
		r.parts[p] = recs
		r.nodes[p] = node
		r.ready[p] = s.cl.Barrier(deps...)
	}
	r.done = true
	r.epoch = s.epoch
	r.finishCache()
	return nil
}
