// Package spark implements a Spark-like cluster-computing engine: lazily
// evaluated resilient distributed datasets (RDDs) of key–value pairs,
// narrow transformations pipelined within a stage, stage barriers at
// shuffle boundaries, broadcast variables, and memory-tracked caching with
// spill-to-disk.
//
// The properties the paper's results hinge on are implemented explicitly:
//
//   - The driver enumerates input objects on the master before scheduling
//     parallel downloads (slower ingest setup than Myria, Fig 11).
//   - Default partitioning mimics "one partition per HDFS block": few,
//     large partitions that under-utilize the cluster until the user tunes
//     partition counts (Fig 14).
//   - Every user closure call pays the Python-worker serialization tax
//     (Fig 12a: filter is ~10× slower than Myria's pushed-down selection).
//   - Stages barrier at shuffles; skewed task durations accumulate per
//     stage, unlike Dask's pipelined per-subject chains (Fig 10c).
//   - Memory pressure causes spill to disk rather than query failure
//     (Section 5.3.2), at a disk-bandwidth cost.
package spark

import (
	"fmt"
	"hash/fnv"
	"sort"

	"imagebench/internal/cluster"
	"imagebench/internal/cost"
	"imagebench/internal/objstore"
	"imagebench/internal/vtime"
)

// Pair is one record: a string key and an arbitrary value, annotated with
// the paper-scale size of the value in bytes.
type Pair struct {
	Key   string
	Value any
	Size  int64
}

// hashPartition assigns a key to one of n partitions.
func hashPartition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Session is a Spark driver connected to a simulated cluster.
type Session struct {
	cl     *cluster.Cluster
	model  *cost.Model
	store  *objstore.Store
	driver vtime.GapTimeline // serial task-dispatch bottleneck
	// DefaultPartitionBytes mimics HDFS block sizing: the default number
	// of input partitions is ceil(total bytes / DefaultPartitionBytes).
	DefaultPartitionBytes int64
	startup               *cluster.Handle
	spilledBytes          int64

	// Executor-failure state (see failure.go): dead nodes no longer host
	// partitions, and epoch increments invalidate materialized state so
	// the next action repairs lost partitions from lineage. failedAt is
	// the latest cluster-level kill adopted — recovery work is anchored
	// after it so recomputation cannot use pre-failure idle time.
	dead     map[int]bool
	epoch    int
	failedAt vtime.Time
}

// NewSession starts a Spark driver on cl, charging the system's startup
// cost. A nil model uses cost.Default().
func NewSession(cl *cluster.Cluster, store *objstore.Store, model *cost.Model) *Session {
	if model == nil {
		model = cost.Default()
	}
	s := &Session{
		cl:                    cl,
		model:                 model,
		store:                 store,
		DefaultPartitionBytes: 1 << 30,
	}
	s.startup = cl.Submit(0, nil, model.Startup[cost.Spark], nil)
	return s
}

// Cluster returns the underlying simulated cluster.
func (s *Session) Cluster() *cluster.Cluster { return s.cl }

// SpilledBytes reports how many paper-scale bytes were spilled to disk.
func (s *Session) SpilledBytes() int64 { return s.spilledBytes }

// dispatch charges the driver's serial per-task scheduling cost and
// returns the time the task may start.
func (s *Session) dispatch(ready vtime.Time) vtime.Time {
	_, end := s.driver.Reserve(ready, s.model.SchedTime(cost.Spark, s.cl.Nodes()))
	return end
}

// UDF is a user-defined function applied to records — in the paper, Python
// code from the reference implementation passed as a lambda. Op selects
// the calibrated throughput; F performs the real computation (1→N records;
// nil output drops the record).
type UDF struct {
	Name   string
	Op     cost.Op
	F      func(Pair) []Pair
	Native bool // true for JVM-native ops that skip the Python tax
}

// opKind discriminates RDD lineage nodes.
type opKind int

const (
	opSource opKind = iota
	opNarrow
	opShuffle
	opUnion
	opCoalesce
)

// RDD is a lazily evaluated distributed dataset. Transformations build
// lineage; actions (Collect, Count, Materialize) trigger staged execution.
type RDD struct {
	s       *Session
	kind    opKind
	name    string
	parent  *RDD
	parents []*RDD // union inputs
	udf     *UDF   // narrow op
	nParts  int

	// Source fields.
	keys   []string
	decode func(objstore.Object) []Pair

	// Shuffle fields.
	combineOp cost.Op
	combine   func(key string, values []Pair) []Pair

	// extraDeps are external handles (e.g. broadcasts) this RDD's tasks
	// must wait for.
	extraDeps []*cluster.Handle

	// Materialized state.
	done   bool
	epoch  int // session failure epoch the state was computed in
	parts  [][]Pair
	nodes  []int // hosting node per partition
	ready  []*cluster.Handle
	cached bool
	// spilled[i] is true when partition i lives on disk, not memory.
	spilled []bool
}

// Objects creates an RDD from the objects under prefix in the session's
// store. nParts ≤ 0 selects the HDFS-block-style default. The decode
// function turns one object into records; it runs on the workers.
func (s *Session) Objects(prefix string, nParts int, decode func(objstore.Object) []Pair) *RDD {
	keys := s.store.List(prefix)
	if nParts <= 0 {
		total := s.store.TotalModelBytes(prefix)
		nParts = int((total + s.DefaultPartitionBytes - 1) / s.DefaultPartitionBytes)
		if nParts < 1 {
			nParts = 1
		}
	}
	if nParts > len(keys) && len(keys) > 0 {
		nParts = len(keys)
	}
	return &RDD{s: s, kind: opSource, name: "objects:" + prefix, nParts: nParts, keys: keys, decode: decode}
}

// Parallelize creates an already-materialized RDD from driver-side
// records, shipping each partition from the master to its worker — the
// sc.parallelize() API.
func (s *Session) Parallelize(name string, pairs []Pair, nParts int) *RDD {
	if nParts <= 0 {
		nParts = s.cl.Nodes()
	}
	r := &RDD{s: s, kind: opSource, name: "parallelize:" + name, nParts: nParts, done: true, epoch: s.epoch}
	r.parts = make([][]Pair, nParts)
	r.nodes = make([]int, nParts)
	r.ready = make([]*cluster.Handle, nParts)
	for i, p := range pairs {
		r.parts[i%nParts] = append(r.parts[i%nParts], p)
	}
	for p := 0; p < nParts; p++ {
		node := s.nodeFor(p)
		var bytes int64
		for _, rec := range r.parts[p] {
			bytes += rec.Size
		}
		ship := s.cl.Transfer(0, node, bytes, s.startup)
		r.nodes[p] = node
		r.ready[p] = s.cl.Submit(node, []*cluster.Handle{ship}, s.model.GobTime(bytes), nil)
	}
	return r
}

// Map applies udf to each record (1→N). It is a narrow transformation:
// no shuffle, pipelined with adjacent narrow ops in the same stage.
func (r *RDD) Map(udf UDF) *RDD {
	return &RDD{s: r.s, kind: opNarrow, name: udf.Name, parent: r, udf: &udf, nParts: r.nParts}
}

// GroupByKey shuffles records so all values of one key land in one
// partition, then applies the combining UDF (key, grouped values) →
// records, charged at op's throughput over the group bytes (plus the
// Python tax). nParts ≤ 0 keeps the parent's partitioning. It introduces a
// stage barrier: reducers wait for every mapper.
func (r *RDD) GroupByKey(name string, op cost.Op, nParts int, combine func(key string, values []Pair) []Pair) *RDD {
	if nParts <= 0 {
		nParts = r.nParts
	}
	return &RDD{s: r.s, kind: opShuffle, name: name, parent: r, nParts: nParts,
		combineOp: op, combine: combine}
}

// Cache marks the RDD's partitions for retention in worker memory after
// materialization (with spill to disk under memory pressure).
func (r *RDD) Cache() *RDD { r.cached = true; return r }

// After makes this RDD's tasks wait for the given handles (used for
// broadcast variables consumed by its closures).
func (r *RDD) After(hs ...*cluster.Handle) *RDD {
	r.extraDeps = append(r.extraDeps, hs...)
	return r
}

// Broadcast ships value (of paper-scale size bytes) to every node via a
// distribution tree and returns a handle later stages may depend on.
func (s *Session) Broadcast(size int64, deps ...*cluster.Handle) *cluster.Handle {
	deps = append(deps, s.startup)
	return s.cl.Broadcast(0, size, deps...)
}

// Materialize forces evaluation and returns a handle for the completion of
// the final stage.
func (r *RDD) Materialize() (*cluster.Handle, error) {
	if err := r.compute(); err != nil {
		return nil, err
	}
	h := r.s.cl.Barrier(r.ready...)
	r.resetLineage()
	return h, nil
}

// resetLineage drops the materialized state of uncached narrow and source
// ancestors once an action completes: a later action over shared lineage
// recomputes them, exactly as Spark does (Section 5.3.3 of the paper —
// caching the input avoids re-downloading it). Shuffle outputs persist
// (Spark keeps shuffle files on local disk), as do cached RDDs.
func (r *RDD) resetLineage() {
	for cur := r; cur != nil; cur = cur.parent {
		for _, p := range cur.parents {
			p.resetLineage()
		}
		if cur.cached || cur.kind == opShuffle || !cur.done {
			continue
		}
		if cur.name[:min(len(cur.name), 12)] == "parallelize:" {
			continue // driver-side data is always available
		}
		cur.done = false
		cur.parts = nil
		cur.nodes = nil
		cur.ready = nil
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Collect materializes the RDD and gathers all records on the master
// (node 0), as Spark's collect() does. A node dying between computing a
// partition and shipping it to the driver is adopted as an executor
// failure: lineage repair recomputes what it hosted and the gather is
// retried.
func (r *RDD) Collect() ([]Pair, *cluster.Handle, error) {
	for attempt := 0; ; attempt++ {
		if err := r.compute(); err != nil {
			return nil, nil, err
		}
		var out []Pair
		var deps []*cluster.Handle
		for i, part := range r.parts {
			var bytes int64
			for _, p := range part {
				bytes += p.Size
			}
			deps = append(deps, r.s.cl.Transfer(r.nodes[i], 0, bytes, r.ready[i]))
			out = append(out, part...)
		}
		h := r.s.cl.Barrier(deps...)
		if h.Err != nil && attempt < r.s.cl.Nodes() && r.s.adoptNodeFailure(h.Err) {
			continue // epoch bumped: the next compute() repairs from lineage
		}
		if h.Err != nil {
			return nil, nil, h.Err
		}
		r.resetLineage()
		return out, h, nil
	}
}

// Count materializes the RDD and returns the number of records.
func (r *RDD) Count() (int, *cluster.Handle, error) {
	if err := r.compute(); err != nil {
		return 0, nil, err
	}
	n := 0
	for _, part := range r.parts {
		n += len(part)
	}
	h := r.s.cl.Barrier(r.ready...)
	r.resetLineage()
	return n, h, nil
}

// compute materializes r (and, recursively, its lineage).
func (r *RDD) compute() error {
	if r.done {
		if r.epoch != r.s.epoch {
			return r.repair()
		}
		return nil
	}
	switch r.kind {
	case opSource:
		return r.computeSource()
	case opNarrow:
		return r.computeNarrow()
	case opShuffle:
		return r.computeShuffle()
	case opUnion:
		return r.computeUnion()
	case opCoalesce:
		return r.computeCoalesce()
	}
	return fmt.Errorf("spark: unknown op kind %d", r.kind)
}

// computeSource schedules parallel object fetches. The driver first
// enumerates the keys (a serial cost per object on the master), then
// workers download their partitions from the object store in parallel.
func (r *RDD) computeSource() error {
	s := r.s
	// Master-side enumeration of the bucket listing (Section 5.2.1: the
	// driver lists the bucket before scheduling parallel downloads).
	enumCost := vtime.Duration(len(r.keys)) * s.model.S3ListPerKey
	enum := s.cl.Submit(0, []*cluster.Handle{s.startup}, enumCost, nil)

	r.parts = make([][]Pair, r.nParts)
	r.nodes = make([]int, r.nParts)
	r.ready = make([]*cluster.Handle, r.nParts)
	for p := 0; p < r.nParts; p++ {
		if err := r.fetchPartition(p, s.nodeFor(p), enum, nil); err != nil {
			return err
		}
		p := p
		if err := r.retryLost(p, func(attempt int) error {
			return r.fetchPartition(p, s.nodeFor(p+attempt), enum, s.afterFailure())
		}); err != nil {
			return err
		}
	}
	r.done = true
	r.epoch = s.epoch
	r.finishCache()
	return nil
}

// fetchPartition downloads and decodes source partition p onto node.
// Round-robin keys into partitions, partitions onto nodes. A non-nil
// after anchors the download (recovery re-fetches wait for the failure
// they repair).
func (r *RDD) fetchPartition(p, node int, enum, after *cluster.Handle) error {
	s := r.s
	if after != nil {
		enum = s.cl.Barrier(enum, after)
	}
	var keys []string
	for i := p; i < len(r.keys); i += r.nParts {
		keys = append(keys, r.keys[i])
	}
	var fetchBytes int64
	var records []Pair
	for _, k := range keys {
		obj, err := s.store.Get(k)
		if err != nil {
			return err
		}
		fetchBytes += obj.Size()
		records = append(records, r.decode(obj)...)
	}
	// Each object fetch pays GET latency; decoding crosses into the
	// Python worker (the input records are pickled arrays).
	dl := s.model.S3Fetch(len(keys), fetchBytes) + s.model.FormatTime(fetchBytes) + s.model.PyIPCTime(fetchBytes)
	deps := append([]*cluster.Handle{{End: start(s, enum, r.extraDeps)}}, r.extraDeps...)
	r.nodes[p] = node
	r.parts[p] = records
	r.ready[p] = s.cl.Submit(node, deps, s.model.Jitter(r.name+keys0(keys), dl), nil)
	return nil
}

// start runs the driver dispatch after the given handles.
func start(s *Session, h *cluster.Handle, extra []*cluster.Handle) vtime.Time {
	all := append([]*cluster.Handle{h}, extra...)
	return s.dispatch(cluster.After(all...))
}

func keys0(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// narrowChain collects the maximal chain of narrow ops ending at r; base
// is the stage input (a source, a shuffle, or an already-materialized
// RDD).
func (r *RDD) narrowChain() (chain []*RDD, base *RDD) {
	base = r
	for base.kind == opNarrow {
		chain = append([]*RDD{base}, chain...)
		base = base.parent
		if base.done {
			break
		}
	}
	return chain, base
}

// computeNarrow runs the chain of narrow ops ending at r as one stage:
// each partition is one task executing the whole chain, scheduled on the
// node hosting the parent partition.
func (r *RDD) computeNarrow() error {
	chain, base := r.narrowChain()
	if err := base.compute(); err != nil {
		return err
	}
	r.parts = make([][]Pair, base.nParts)
	r.nodes = append([]int(nil), base.nodes...)
	r.ready = make([]*cluster.Handle, base.nParts)
	r.nParts = base.nParts
	for p := range base.parts {
		r.narrowPartition(chain, base, p, nil)
		p := p
		if err := r.retryLost(p, func(int) error {
			// The stage input on the dead node is gone with the task:
			// repairing the base (epoch mismatch) recomputes exactly the
			// lost partitions from lineage, then the task reruns on the
			// base partition's new home.
			if err := base.compute(); err != nil {
				return err
			}
			r.narrowPartition(chain, base, p, r.s.afterFailure())
			return nil
		}); err != nil {
			return err
		}
	}
	// Intermediate RDDs in the chain stay unmaterialized: a branch off an
	// uncached intermediate recomputes its lineage, exactly as in Spark
	// (the behaviour Section 5.3.3 of the paper discusses).
	r.done = true
	r.epoch = r.s.epoch
	r.finishCache()
	return nil
}

// narrowPartition runs the whole narrow chain over base partition p as
// one task on the node hosting that partition. A non-nil after anchors
// the task (recovery recomputation waits for the failure it repairs).
func (r *RDD) narrowPartition(chain []*RDD, base *RDD, p int, after *cluster.Handle) {
	s := r.s
	records := base.parts[p]
	var dur vtime.Duration
	inputReady := base.ready[p]
	if after != nil {
		inputReady = s.cl.Barrier(inputReady, after)
	}
	if base.spilled != nil && base.spilled[p] {
		// The cached partition lives on disk: re-read it.
		var bytes int64
		for _, rec := range records {
			bytes += rec.Size
		}
		inputReady = s.cl.DiskRead(base.nodes[p], bytes, inputReady)
		dur += s.model.GobTime(bytes)
	}
	out := records
	for _, op := range chain {
		next := make([]Pair, 0, len(out))
		for _, rec := range out {
			dur += op.taskCost(rec)
			res := op.udf.F(rec)
			next = append(next, res...)
			for _, nr := range res {
				if !op.udf.Native {
					dur += s.model.PyIPCTime(nr.Size)
				}
			}
		}
		out = next
	}
	key := fmt.Sprintf("%s/p%d", r.name, p)
	deps := append([]*cluster.Handle{{End: start(s, inputReady, r.extraDeps)}, inputReady}, r.extraDeps...)
	r.nodes[p] = base.nodes[p]
	r.parts[p] = out
	r.ready[p] = s.cl.Submit(base.nodes[p], deps, s.model.Jitter(key, dur), nil)
}

// taskCost is the modeled per-record cost of a narrow op: the algorithm
// time plus (for non-native ops) the Python serialization of the input.
func (r *RDD) taskCost(rec Pair) vtime.Duration {
	d := r.s.model.AlgTime(r.udf.Op, rec.Size)
	if !r.udf.Native {
		d += r.s.model.PyIPCTime(rec.Size)
	}
	return d
}

// shuffleBlock is one map-output block destined for a reduce partition.
type shuffleBlock struct {
	recs  []Pair
	bytes int64
}

// mapSide buckets each parent partition's records by reduce partition
// and schedules the map-side shuffle writes; it returns the block matrix
// and the stage barrier every reducer waits on. A non-nil after anchors
// the writes (regenerating shuffle files lost with a dead node cannot
// happen before the node died).
func (r *RDD) mapSide(after *cluster.Handle) ([][]shuffleBlock, *cluster.Handle) {
	s := r.s
	parent := r.parent
	blocks := make([][]shuffleBlock, len(parent.parts)) // [mapPart][reducePart]
	mapDone := make([]*cluster.Handle, len(parent.parts))
	for mp := range parent.parts {
		blocks[mp] = make([]shuffleBlock, r.nParts)
		var bytes int64
		for _, rec := range parent.parts[mp] {
			rp := hashPartition(rec.Key, r.nParts)
			blocks[mp][rp].recs = append(blocks[mp][rp].recs, rec)
			blocks[mp][rp].bytes += rec.Size
			bytes += rec.Size
		}
		// Map-side shuffle write: serialize + write shuffle files.
		dur := s.model.GobTime(bytes)
		wr := s.cl.DiskWrite(parent.nodes[mp], bytes, parent.ready[mp], after)
		start := s.dispatch(cluster.After(wr))
		mapDone[mp] = s.cl.Submit(parent.nodes[mp], []*cluster.Handle{{End: start}, wr}, dur, nil)
	}
	return blocks, s.cl.Barrier(mapDone...)
}

// reducePartition fetches reduce partition rp's blocks, groups by key,
// and runs the combine function, spilling to disk under memory pressure.
// Successful allocations are appended to releases so the caller frees
// them once the whole stage is done (all reducers are live at once); a
// nil releases frees at return (single-partition repair).
func (r *RDD) reducePartition(rp, node int, blocks [][]shuffleBlock, barrier *cluster.Handle, releases *[]func()) {
	s := r.s
	parent := r.parent
	var fetches []*cluster.Handle
	grouped := make(map[string][]Pair)
	var order []string
	var inBytes int64
	for mp := range blocks {
		b := blocks[mp][rp]
		if b.bytes > 0 || len(b.recs) > 0 {
			fetches = append(fetches, s.cl.Transfer(parent.nodes[mp], node, b.bytes, barrier))
			inBytes += b.bytes
		}
		for _, rec := range b.recs {
			if _, ok := grouped[rec.Key]; !ok {
				order = append(order, rec.Key)
			}
			grouped[rec.Key] = append(grouped[rec.Key], rec)
		}
	}
	sort.Strings(order)
	// Memory pressure: if the reduce input exceeds free memory, Spark
	// spills — the task still succeeds but pays disk traffic.
	var spill *cluster.Handle
	mem := s.cl.Mem(node)
	if err := mem.Alloc(inBytes); err != nil {
		s.spilledBytes += inBytes
		spill = s.cl.DiskWrite(node, inBytes, s.cl.Barrier(fetches...))
		spill = s.cl.DiskRead(node, inBytes, spill)
	} else if releases != nil {
		n := inBytes
		*releases = append(*releases, func() { mem.Release(n) })
	} else {
		defer mem.Release(inBytes)
	}
	var out []Pair
	var dur vtime.Duration
	for _, k := range order {
		vals := grouped[k]
		var kb int64
		for _, v := range vals {
			kb += v.Size
		}
		dur += s.model.GobTime(kb) // deserialize shuffle blocks
		dur += s.model.AlgTime(r.combineOp, kb) + s.model.PyIPCTime(kb)
		res := r.combine(k, vals)
		for _, o := range res {
			dur += s.model.PyIPCTime(o.Size)
		}
		out = append(out, res...)
	}
	deps := fetches
	if spill != nil {
		deps = append(deps, spill)
	}
	deps = append(deps, barrier)
	deps = append(deps, r.extraDeps...)
	dispatched := s.dispatch(cluster.After(deps...))
	key := fmt.Sprintf("%s/r%d", r.name, rp)
	r.nodes[rp] = node
	r.parts[rp] = out
	r.ready[rp] = s.cl.Submit(node, append(deps, &cluster.Handle{End: dispatched}), s.model.Jitter(key, dur), nil)
}

// computeShuffle hash-partitions the parent's records by key, transfers
// shuffle blocks all-to-all, and runs the combine function per reduce
// partition. Reducers depend on every mapper: a stage barrier.
func (r *RDD) computeShuffle() error {
	if err := r.parent.compute(); err != nil {
		return err
	}
	s := r.s
	blocks, barrier := r.mapSide(nil)
	r.parts = make([][]Pair, r.nParts)
	r.nodes = make([]int, r.nParts)
	r.ready = make([]*cluster.Handle, r.nParts)
	var releases []func()
	for rp := 0; rp < r.nParts; rp++ {
		r.reducePartition(rp, s.nodeFor(rp), blocks, barrier, &releases)
		rp := rp
		if err := r.retryLost(rp, func(attempt int) error {
			// The dead node also hosted map outputs: repair the map
			// stage's parent (lineage recomputes its lost partitions),
			// regenerate the shuffle files, and rerun this reducer on a
			// survivor. Later reducers see the regenerated barrier.
			if err := r.parent.compute(); err != nil {
				return err
			}
			blocks, barrier = r.mapSide(s.afterFailure())
			r.reducePartition(rp, s.nodeFor(rp+attempt), blocks, barrier, &releases)
			return nil
		}); err != nil {
			return err
		}
	}
	for _, rel := range releases {
		rel()
	}
	r.done = true
	r.epoch = s.epoch
	r.finishCache()
	return nil
}

// finishCache charges cache storage when the RDD is marked cached.
func (r *RDD) finishCache() {
	if !r.cached {
		return
	}
	r.spilled = make([]bool, len(r.parts))
	for p := range r.parts {
		r.cachePartition(p)
	}
}

// cachePartition charges cache storage for one partition, spilling it to
// disk when the hosting node's memory is exhausted.
func (r *RDD) cachePartition(p int) {
	var bytes int64
	for _, rec := range r.parts[p] {
		bytes += rec.Size
	}
	if err := r.s.cl.Mem(r.nodes[p]).Alloc(bytes); err != nil {
		// Not enough memory: cache partition on disk instead.
		r.spilled[p] = true
		r.s.spilledBytes += bytes
		r.ready[p] = r.s.cl.DiskWrite(r.nodes[p], bytes, r.ready[p])
	}
}
