// Package dmri implements diffusion-MRI model fitting: gradient tables,
// b0 selection, the diffusion tensor model (DTM) fit, and fractional
// anisotropy (FA) — the paper's neuroscience Step 3N, replacing Dipy.
package dmri

import (
	"fmt"
	"math"

	"imagebench/internal/linalg"
	"imagebench/internal/volume"
)

// GradTable describes the acquisition: one b-value and unit gradient
// direction per measured volume. Volumes with b≈0 carry no diffusion
// weighting and are used for calibration (segmentation, S0 estimation).
type GradTable struct {
	BVals []float64
	BVecs [][3]float64
}

// N returns the number of measurements.
func (g *GradTable) N() int { return len(g.BVals) }

// B0Mask returns a boolean mask marking the non-diffusion-weighted volumes
// (b-value below thresh; the HCP convention uses thresh ≈ 50).
func (g *GradTable) B0Mask(thresh float64) []bool {
	out := make([]bool, len(g.BVals))
	for i, b := range g.BVals {
		out[i] = b < thresh
	}
	return out
}

// Validate checks internal consistency.
func (g *GradTable) Validate() error {
	if len(g.BVals) != len(g.BVecs) {
		return fmt.Errorf("dmri: %d bvals but %d bvecs", len(g.BVals), len(g.BVecs))
	}
	if len(g.BVals) == 0 {
		return fmt.Errorf("dmri: empty gradient table")
	}
	for i, v := range g.BVecs {
		n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		if g.BVals[i] > 50 && math.Abs(n-1) > 0.01 {
			return fmt.Errorf("dmri: bvec %d not unit length (%.3f)", i, n)
		}
	}
	return nil
}

// Tensor is a symmetric rank-2 diffusion tensor with the fitted log S0.
type Tensor struct {
	Dxx, Dyy, Dzz, Dxy, Dxz, Dyz float64
	LogS0                        float64
}

// Eigenvalues returns the tensor's eigenvalues in descending order.
func (t Tensor) Eigenvalues() [3]float64 {
	m := linalg.NewMat(3, 3)
	m.Set(0, 0, t.Dxx)
	m.Set(1, 1, t.Dyy)
	m.Set(2, 2, t.Dzz)
	m.Set(0, 1, t.Dxy)
	m.Set(1, 0, t.Dxy)
	m.Set(0, 2, t.Dxz)
	m.Set(2, 0, t.Dxz)
	m.Set(1, 2, t.Dyz)
	m.Set(2, 1, t.Dyz)
	vals, _, err := linalg.SymEig(m)
	if err != nil {
		return [3]float64{}
	}
	return [3]float64{vals[0], vals[1], vals[2]}
}

// FA returns the fractional anisotropy of the tensor, the scalar summary
// the paper reports per voxel (Figure 2b). Negative eigenvalues (noise
// artifacts) are clamped to zero, matching Dipy's behaviour.
func (t Tensor) FA() float64 {
	ev := t.Eigenvalues()
	l1, l2, l3 := math.Max(ev[0], 0), math.Max(ev[1], 0), math.Max(ev[2], 0)
	den := l1*l1 + l2*l2 + l3*l3
	if den == 0 {
		return 0
	}
	num := (l1-l2)*(l1-l2) + (l2-l3)*(l2-l3) + (l1-l3)*(l1-l3)
	fa := math.Sqrt(num / (2 * den))
	if fa > 1 {
		fa = 1
	}
	return fa
}

// DesignMatrix builds the log-linear DTM design matrix for the gradient
// table: one row per measurement, columns
// [1, −b·gx², −b·gy², −b·gz², −2b·gx·gy, −2b·gx·gz, −2b·gy·gz]
// against unknowns [ln S0, Dxx, Dyy, Dzz, Dxy, Dxz, Dyz].
func DesignMatrix(g *GradTable) *linalg.Mat {
	m := linalg.NewMat(g.N(), 7)
	for i := 0; i < g.N(); i++ {
		b := g.BVals[i]
		gx, gy, gz := g.BVecs[i][0], g.BVecs[i][1], g.BVecs[i][2]
		m.Set(i, 0, 1)
		m.Set(i, 1, -b*gx*gx)
		m.Set(i, 2, -b*gy*gy)
		m.Set(i, 3, -b*gz*gz)
		m.Set(i, 4, -2*b*gx*gy)
		m.Set(i, 5, -2*b*gx*gz)
		m.Set(i, 6, -2*b*gy*gz)
	}
	return m
}

// FitVoxel fits the DTM to one voxel's signal vector (one sample per
// measurement) using the precomputed design matrix. Signals are floored at
// a small positive value before taking logs, as Dipy does.
func FitVoxel(design *linalg.Mat, signal []float64) (Tensor, error) {
	if design.Rows != len(signal) {
		return Tensor{}, fmt.Errorf("dmri: %d design rows but %d samples", design.Rows, len(signal))
	}
	logs := make([]float64, len(signal))
	for i, s := range signal {
		if s < 1e-8 {
			s = 1e-8
		}
		logs[i] = math.Log(s)
	}
	x, err := linalg.LeastSquares(design, logs)
	if err != nil {
		return Tensor{}, err
	}
	return Tensor{
		LogS0: x[0],
		Dxx:   x[1], Dyy: x[2], Dzz: x[3],
		Dxy: x[4], Dxz: x[5], Dyz: x[6],
	}, nil
}

// FitFA fits the DTM at every voxel where mask≠0 (all voxels when mask is
// nil) across the 4-D series and returns the FA map. vols must have one
// volume per gradient-table entry. This is the per-voxel flatmap + group +
// fit that the paper parallelizes by voxel blocks.
func FitFA(g *GradTable, vols *volume.V4, mask *volume.V3) (*volume.V3, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if vols.T() != g.N() {
		return nil, fmt.Errorf("dmri: %d volumes but %d gradient entries", vols.T(), g.N())
	}
	nx, ny, nz := vols.Shape()
	if mask != nil && (mask.NX != nx || mask.NY != ny || mask.NZ != nz) {
		return nil, fmt.Errorf("dmri: mask shape mismatch")
	}
	design := DesignMatrix(g)
	fa := volume.New3(nx, ny, nz)
	signal := make([]float64, g.N())
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if mask != nil && mask.At(x, y, z) == 0 {
					continue
				}
				for t, v := range vols.Vols {
					signal[t] = v.At(x, y, z)
				}
				tensor, err := FitVoxel(design, signal)
				if err != nil {
					// Singular fits happen in empty voxels; record 0 FA.
					continue
				}
				fa.Set(x, y, z, tensor.FA())
			}
		}
	}
	return fa, nil
}
