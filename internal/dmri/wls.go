package dmri

import (
	"fmt"
	"math"

	"imagebench/internal/linalg"
	"imagebench/internal/volume"
)

// Dipy's default tensor fit is weighted least squares (WLS): the
// log-linearized model's noise variance scales as 1/S², so an ordinary
// least-squares (OLS) pass predicts the signals and a second pass
// reweights each measurement by its predicted squared signal (Chung et
// al. 2006, as implemented by Dipy's dti.wls_fit_tensor). The reference
// implementation the paper re-uses runs this fit; this file adds it
// alongside the OLS path plus the mean-diffusivity scalar.

// MD returns the tensor's mean diffusivity — the second scalar map Dipy
// reports next to FA.
func (t Tensor) MD() float64 {
	return (t.Dxx + t.Dyy + t.Dzz) / 3
}

// FitMethod selects the estimator for the tensor fit.
type FitMethod int

const (
	// OLS is the single-pass ordinary least-squares fit on log signals.
	OLS FitMethod = iota
	// WLS reweights a second pass by the squared predicted signals,
	// correcting the log transform's heteroscedasticity (Dipy default).
	WLS
)

func (m FitMethod) String() string {
	if m == WLS {
		return "WLS"
	}
	return "OLS"
}

// FitVoxelWLS fits the DTM to one voxel with the two-pass weighted
// least-squares estimator.
func FitVoxelWLS(design *linalg.Mat, signal []float64) (Tensor, error) {
	if design.Rows != len(signal) {
		return Tensor{}, fmt.Errorf("dmri: %d design rows but %d samples", design.Rows, len(signal))
	}
	logs := make([]float64, len(signal))
	for i, s := range signal {
		if s < 1e-8 {
			s = 1e-8
		}
		logs[i] = math.Log(s)
	}
	// Pass 1: OLS.
	x, err := linalg.LeastSquares(design, logs)
	if err != nil {
		return Tensor{}, err
	}
	// Pass 2: weight rows by the predicted signal, w_i = exp(ŷ_i)
	// (scaling row i of the system by w_i implements weights w_i² ∝ Ŝ_i²).
	wdesign := linalg.NewMat(design.Rows, design.Cols)
	wlogs := make([]float64, len(logs))
	for i := 0; i < design.Rows; i++ {
		var pred float64
		for j := 0; j < design.Cols; j++ {
			pred += design.At(i, j) * x[j]
		}
		// Clamp the predicted log signal: wild OLS estimates in noisy
		// background voxels must not produce infinite weights.
		if pred > 50 {
			pred = 50
		} else if pred < -50 {
			pred = -50
		}
		w := math.Exp(pred)
		for j := 0; j < design.Cols; j++ {
			wdesign.Set(i, j, w*design.At(i, j))
		}
		wlogs[i] = w * logs[i]
	}
	xw, err := linalg.LeastSquares(wdesign, wlogs)
	if err != nil {
		// Degenerate weighting (e.g. all-zero signals): keep the OLS fit.
		xw = x
	}
	return Tensor{
		LogS0: xw[0],
		Dxx:   xw[1], Dyy: xw[2], Dzz: xw[3],
		Dxy: xw[4], Dxz: xw[5], Dyz: xw[6],
	}, nil
}

// FitVoxelMethod dispatches to the chosen estimator.
func FitVoxelMethod(design *linalg.Mat, signal []float64, method FitMethod) (Tensor, error) {
	if method == WLS {
		return FitVoxelWLS(design, signal)
	}
	return FitVoxel(design, signal)
}

// ScalarMaps bundles the per-voxel scalar summaries of a tensor fit.
type ScalarMaps struct {
	FA *volume.V3
	MD *volume.V3
}

// FitScalars fits the DTM at every masked voxel with the chosen method
// and returns both the FA and MD maps.
func FitScalars(g *GradTable, vols *volume.V4, mask *volume.V3, method FitMethod) (*ScalarMaps, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if vols.T() != g.N() {
		return nil, fmt.Errorf("dmri: %d volumes but %d gradient entries", vols.T(), g.N())
	}
	nx, ny, nz := vols.Shape()
	if mask != nil && (mask.NX != nx || mask.NY != ny || mask.NZ != nz) {
		return nil, fmt.Errorf("dmri: mask shape mismatch")
	}
	design := DesignMatrix(g)
	out := &ScalarMaps{FA: volume.New3(nx, ny, nz), MD: volume.New3(nx, ny, nz)}
	signal := make([]float64, g.N())
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if mask != nil && mask.At(x, y, z) == 0 {
					continue
				}
				for t, v := range vols.Vols {
					signal[t] = v.At(x, y, z)
				}
				tensor, err := FitVoxelMethod(design, signal, method)
				if err != nil {
					continue
				}
				out.FA.Set(x, y, z, tensor.FA())
				out.MD.Set(x, y, z, tensor.MD())
			}
		}
	}
	return out, nil
}
