package dmri

import (
	"math"
	"math/rand"
	"testing"

	"imagebench/internal/volume"
)

func TestFitVoxelWLSRecoversTensor(t *testing.T) {
	// On noiseless data the WLS fit recovers the tensor exactly, like OLS.
	g := table(30, 3)
	want := Tensor{Dxx: 1.5e-3, Dyy: 0.4e-3, Dzz: 0.3e-3, Dxy: 0.1e-3}
	sig := signalFor(g, want, 800)
	got, err := FitVoxelWLS(DesignMatrix(g), sig)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{
		{got.Dxx, want.Dxx}, {got.Dyy, want.Dyy}, {got.Dzz, want.Dzz},
		{got.Dxy, want.Dxy}, {got.Dxz, want.Dxz}, {got.Dyz, want.Dyz},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-8 {
			t.Errorf("tensor element %v, want %v", pair[0], pair[1])
		}
	}
}

// TestWLSBeatsOLSUnderNoise adds Gaussian noise in *signal* space (where
// the log transform makes low-signal measurements noisier in log space):
// the reweighted fit should estimate FA more accurately on average —
// the reason Dipy defaults to WLS.
func TestWLSBeatsOLSUnderNoise(t *testing.T) {
	g := table(48, 4)
	truth := Tensor{Dxx: 1.7e-3, Dyy: 0.3e-3, Dzz: 0.2e-3}
	wantFA := truth.FA()
	design := DesignMatrix(g)
	rng := rand.New(rand.NewSource(7))

	const trials = 200
	var olsErr, wlsErr float64
	for trial := 0; trial < trials; trial++ {
		sig := signalFor(g, truth, 500)
		for i := range sig {
			sig[i] += rng.NormFloat64() * 12 // SNR ~40 at b0, lower when attenuated
			if sig[i] < 1 {
				sig[i] = 1
			}
		}
		ols, err := FitVoxel(design, sig)
		if err != nil {
			t.Fatal(err)
		}
		wls, err := FitVoxelWLS(design, sig)
		if err != nil {
			t.Fatal(err)
		}
		olsErr += math.Abs(ols.FA() - wantFA)
		wlsErr += math.Abs(wls.FA() - wantFA)
	}
	if wlsErr >= olsErr {
		t.Errorf("WLS mean FA error (%.5f) should beat OLS (%.5f)", wlsErr/trials, olsErr/trials)
	}
}

func TestMD(t *testing.T) {
	iso := Tensor{Dxx: 0.7e-3, Dyy: 0.7e-3, Dzz: 0.7e-3}
	if md := iso.MD(); math.Abs(md-0.7e-3) > 1e-12 {
		t.Errorf("isotropic MD = %v, want 0.7e-3", md)
	}
	if fa := iso.FA(); fa > 1e-6 {
		t.Errorf("isotropic FA = %v, want ~0", fa)
	}
	stick := Tensor{Dxx: 1.5e-3}
	if md := stick.MD(); math.Abs(md-0.5e-3) > 1e-12 {
		t.Errorf("stick MD = %v, want 0.5e-3", md)
	}
}

func TestFitScalarsShapes(t *testing.T) {
	g := table(12, 2)
	truth := Tensor{Dxx: 1.2e-3, Dyy: 0.4e-3, Dzz: 0.4e-3}
	sig := signalFor(g, truth, 300)

	const nx, ny, nz = 3, 3, 2
	vols := make([]*volume.V3, g.N())
	for ti := range vols {
		v := volume.New3(nx, ny, nz)
		for i := range v.Data {
			v.Data[i] = sig[ti]
		}
		vols[ti] = v
	}
	mask := volume.New3(nx, ny, nz)
	mask.Set(0, 0, 0, 1)
	mask.Set(2, 2, 1, 1)

	for _, method := range []FitMethod{OLS, WLS} {
		maps, err := FitScalars(g, volume.New4(vols), mask, method)
		if err != nil {
			t.Fatal(err)
		}
		if got := maps.FA.At(0, 0, 0); math.Abs(got-truth.FA()) > 1e-6 {
			t.Errorf("%v: FA = %v, want %v", method, got, truth.FA())
		}
		if got := maps.MD.At(0, 0, 0); math.Abs(got-truth.MD()) > 1e-9 {
			t.Errorf("%v: MD = %v, want %v", method, got, truth.MD())
		}
		if maps.FA.At(1, 1, 1) != 0 || maps.MD.At(1, 1, 1) != 0 {
			t.Errorf("%v: unmasked voxel was fitted", method)
		}
	}
}

func TestFitScalarsErrors(t *testing.T) {
	g := table(6, 1)
	vols := make([]*volume.V3, 5) // wrong count
	for i := range vols {
		vols[i] = volume.New3(2, 2, 2)
	}
	if _, err := FitScalars(g, volume.New4(vols), nil, WLS); err == nil {
		t.Error("mismatched volume count should error")
	}
	vols = append(vols, volume.New3(2, 2, 2))
	badMask := volume.New3(1, 1, 1)
	if _, err := FitScalars(g, volume.New4(vols), badMask, OLS); err == nil {
		t.Error("mask shape mismatch should error")
	}
}

func TestFitMethodString(t *testing.T) {
	if OLS.String() != "OLS" || WLS.String() != "WLS" {
		t.Errorf("method names: %v %v", OLS, WLS)
	}
}
