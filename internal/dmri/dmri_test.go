package dmri

import (
	"math"
	"testing"
	"testing/quick"

	"imagebench/internal/volume"
)

func table(n, b0 int) *GradTable {
	g := &GradTable{}
	for i := 0; i < n; i++ {
		if i < b0 {
			g.BVals = append(g.BVals, 0)
			g.BVecs = append(g.BVecs, [3]float64{0, 0, 0})
			continue
		}
		th := float64(i) * 2.39996
		z := 1 - 2*(float64(i-b0)+0.5)/float64(n-b0)
		r := math.Sqrt(1 - z*z)
		g.BVals = append(g.BVals, 1000)
		g.BVecs = append(g.BVecs, [3]float64{r * math.Cos(th), r * math.Sin(th), z})
	}
	return g
}

func TestB0Mask(t *testing.T) {
	g := table(10, 2)
	m := g.B0Mask(50)
	for i, want := range []bool{true, true} {
		if m[i] != want {
			t.Errorf("b0[%d]=%v", i, m[i])
		}
	}
	for i := 2; i < 10; i++ {
		if m[i] {
			t.Errorf("b0[%d] should be false", i)
		}
	}
}

func TestValidate(t *testing.T) {
	g := table(10, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &GradTable{BVals: []float64{1000}, BVecs: [][3]float64{{2, 0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("non-unit bvec accepted")
	}
	if err := (&GradTable{}).Validate(); err == nil {
		t.Error("empty table accepted")
	}
}

// signalFor synthesizes the noiseless DTM signal for a tensor.
func signalFor(g *GradTable, tensor Tensor, s0 float64) []float64 {
	out := make([]float64, g.N())
	for i := range out {
		b := g.BVals[i]
		v := g.BVecs[i]
		q := tensor.Dxx*v[0]*v[0] + tensor.Dyy*v[1]*v[1] + tensor.Dzz*v[2]*v[2] +
			2*(tensor.Dxy*v[0]*v[1]+tensor.Dxz*v[0]*v[2]+tensor.Dyz*v[1]*v[2])
		out[i] = s0 * math.Exp(-b*q)
	}
	return out
}

func TestFitVoxelRecoversTensor(t *testing.T) {
	g := table(30, 3)
	want := Tensor{Dxx: 1.5e-3, Dyy: 0.4e-3, Dzz: 0.3e-3, Dxy: 0.1e-3}
	sig := signalFor(g, want, 800)
	got, err := FitVoxel(DesignMatrix(g), sig)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{
		{got.Dxx, want.Dxx}, {got.Dyy, want.Dyy}, {got.Dzz, want.Dzz},
		{got.Dxy, want.Dxy}, {got.Dxz, want.Dxz}, {got.Dyz, want.Dyz},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-8 {
			t.Errorf("tensor element %v, want %v", pair[0], pair[1])
		}
	}
	if math.Abs(math.Exp(got.LogS0)-800) > 1e-3 {
		t.Errorf("S0 = %v, want 800", math.Exp(got.LogS0))
	}
}

func TestFAExtremes(t *testing.T) {
	iso := Tensor{Dxx: 1e-3, Dyy: 1e-3, Dzz: 1e-3}
	if fa := iso.FA(); fa > 1e-6 {
		t.Errorf("isotropic FA = %v, want ~0", fa)
	}
	stick := Tensor{Dxx: 1.7e-3, Dyy: 1e-9, Dzz: 1e-9}
	if fa := stick.FA(); fa < 0.95 {
		t.Errorf("stick FA = %v, want ~1", fa)
	}
	if fa := (Tensor{}).FA(); fa != 0 {
		t.Errorf("zero tensor FA = %v", fa)
	}
}

func TestFAInUnitRangeProperty(t *testing.T) {
	// Property: FA ∈ [0,1] for any symmetric tensor.
	f := func(a, b, c, d, e, g int8) bool {
		tensor := Tensor{
			Dxx: float64(a) * 1e-4, Dyy: float64(b) * 1e-4, Dzz: float64(c) * 1e-4,
			Dxy: float64(d) * 1e-5, Dxz: float64(e) * 1e-5, Dyz: float64(g) * 1e-5,
		}
		fa := tensor.FA()
		return fa >= 0 && fa <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEigenvaluesOrdered(t *testing.T) {
	tensor := Tensor{Dxx: 0.3e-3, Dyy: 1.7e-3, Dzz: 0.9e-3}
	ev := tensor.Eigenvalues()
	if !(ev[0] >= ev[1] && ev[1] >= ev[2]) {
		t.Errorf("eigenvalues not descending: %v", ev)
	}
	if math.Abs(ev[0]-1.7e-3) > 1e-12 {
		t.Errorf("largest eigenvalue %v", ev[0])
	}
}

func TestFitFAMaskAndShape(t *testing.T) {
	g := table(12, 2)
	nx, ny, nz := 3, 3, 2
	vols := make([]*volume.V3, g.N())
	want := Tensor{Dxx: 1.6e-3, Dyy: 0.3e-3, Dzz: 0.3e-3}
	sig := signalFor(g, want, 1000)
	for i := range vols {
		vols[i] = volume.New3(nx, ny, nz)
		for j := range vols[i].Data {
			vols[i].Data[j] = sig[i]
		}
	}
	mask := volume.New3(nx, ny, nz)
	mask.Set(1, 1, 1, 1)
	fa, err := FitFA(g, volume.New4(vols), mask)
	if err != nil {
		t.Fatal(err)
	}
	if fa.At(1, 1, 1) < 0.5 {
		t.Errorf("masked voxel FA %v too low", fa.At(1, 1, 1))
	}
	if fa.At(0, 0, 0) != 0 {
		t.Errorf("unmasked voxel FA %v, want 0 (skipped)", fa.At(0, 0, 0))
	}
	// Mismatched volume count errors.
	if _, err := FitFA(g, volume.New4(vols[:5]), nil); err == nil {
		t.Error("volume/gradient mismatch accepted")
	}
}
