// Package analysis is a dependency-free re-implementation of the core
// of golang.org/x/tools/go/analysis, just large enough to host this
// repo's invariant checkers. The module deliberately has no external
// dependencies, so the vendored-in framework mirrors the upstream API
// shape (Analyzer, Pass, Diagnostic) closely enough that an analyzer
// written here ports to the real framework by changing one import.
//
// Beyond the upstream core it bakes in the repo's suppression
// convention: a diagnostic is dropped when the offending line, or the
// line directly above it, carries a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — a bare "//lint:allow spanend" suppresses
// nothing, so every waiver in the tree explains itself.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //lint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by -help; its first
	// sentence states the invariant.
	Doc string

	// Run applies the analyzer to a package, reporting diagnostics
	// through pass.Report/Reportf. A non-nil error aborts the whole
	// run (reserve it for internal failures, not findings).
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	allow map[string]map[int]bool // filename -> line -> allowed
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a diagnostic unless an in-scope //lint:allow
// directive waives it.
func (p *Pass) Report(d Diagnostic) {
	if p.suppressed(d.Pos) {
		return
	}
	p.diags = append(p.diags, d)
}

// Reportf is Report with fmt.Sprintf formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// IsTestFile reports whether the file containing pos is a _test.go
// file. Most analyzers here guard production invariants and skip test
// files (tests legitimately name engines, write temp files, and so
// on).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PathHasSuffix reports whether the package import path is path, or
// ends with "/"+suffix at a path-segment boundary. Analyzers match
// packages by suffix (e.g. "internal/volume") so the same rule applies
// to the real module, testdata fixtures, and the vet smoke module.
func PathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// PkgMatches reports whether the pass's package matches any of the
// given path suffixes.
func (p *Pass) PkgMatches(suffixes ...string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(p.Pkg.Path(), s) {
			return true
		}
	}
	return false
}

// Callee resolves the object a call expression invokes: a *types.Func
// for ordinary function and method calls, nil for indirect calls
// through function values and for conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// suppressed reports whether pos is covered by a //lint:allow
// directive for this analyzer.
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.allow == nil {
		p.allow = map[string]map[int]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, ok := parseAllow(c.Text)
					if !ok || name != p.Analyzer.Name {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					lines := p.allow[cp.Filename]
					if lines == nil {
						lines = map[int]bool{}
						p.allow[cp.Filename] = lines
					}
					// The directive covers its own line (trailing
					// comment) and the next line (comment above).
					lines[cp.Line] = true
					lines[cp.Line+1] = true
				}
			}
		}
	}
	dp := p.Fset.Position(pos)
	return p.allow[dp.Filename][dp.Line]
}

// parseAllow parses "//lint:allow <analyzer> <reason>" and returns the
// analyzer name. Directives without a reason are inert by design.
func parseAllow(comment string) (analyzer string, ok bool) {
	text, found := strings.CutPrefix(comment, "//lint:allow ")
	if !found {
		return "", false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 { // name plus at least one word of reason
		return "", false
	}
	return fields[0], true
}
