package analysis

import "go/ast"

// WithStack walks every file in the pass, calling fn for each node
// with the stack of enclosing nodes (stack[0] is the *ast.File,
// stack[len-1] is n itself). Return false from fn to skip the node's
// children. This is the subset of x/tools' inspector.WithStack the
// analyzers here need.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Inspect only delivers the closing f(nil) for nodes
				// whose children were visited, so pop here.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// EnclosingFunc returns the body of the innermost function declaration
// or literal on the stack, or nil.
func EnclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
