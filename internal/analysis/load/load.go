// Package load type-checks packages from source for the analyzer
// suite's tests. It resolves imports three ways, in order: an explicit
// import-path→directory map (testdata fixture trees), the enclosing
// module (imagebench/… paths map onto the repo checkout), and the
// standard library via go/importer's source importer. The module has
// no external dependencies, so those three cover everything — no
// go/packages, no network, no export data.
//
// The vet driver (internal/analysis/unit) does NOT use this package:
// under `go vet -vettool` the go command hands each package's
// type information over as compiler export data, which is both exact
// and already built. This loader exists so plain `go test` can run
// analyzers over fixtures and real packages in-process.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Config says where packages come from.
type Config struct {
	// Dirs maps import paths to directories, consulted first. The
	// analysistest runner fills it from a testdata/src tree.
	Dirs map[string]string
	// ModulePath and ModuleDir resolve module-internal imports:
	// ModulePath+"/x/y" loads from ModuleDir/x/y.
	ModulePath string
	ModuleDir  string
	// IncludeTests adds the target package's _test.go files (the
	// in-package ones) when loading via Load. Dependencies never
	// include tests.
	IncludeTests bool

	fset     *token.FileSet
	once     sync.Once
	std      types.ImporterFrom
	pkgs     map[string]*Package
	checking map[string]bool
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

func (c *Config) init() {
	c.once.Do(func() {
		// The source importer would otherwise try to run cgo for
		// packages like net; every package this module touches builds
		// fine without it.
		build.Default.CgoEnabled = false
		c.fset = token.NewFileSet()
		c.std = importer.ForCompiler(c.fset, "source", nil).(types.ImporterFrom)
		c.pkgs = map[string]*Package{}
		c.checking = map[string]bool{}
	})
}

// Fset returns the file set shared by everything this Config loads.
func (c *Config) Fset() *token.FileSet {
	c.init()
	return c.fset
}

// Load type-checks the package at importPath and returns it. Results
// are cached per Config; a second Load of the same path is free.
func (c *Config) Load(importPath string) (*Package, error) {
	c.init()
	return c.load(importPath, c.IncludeTests)
}

func (c *Config) load(importPath string, includeTests bool) (*Package, error) {
	if p, ok := c.pkgs[importPath]; ok {
		return p, nil
	}
	if c.checking[importPath] {
		return nil, fmt.Errorf("import cycle through %q", importPath)
	}
	dir, ok := c.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("cannot resolve import path %q", importPath)
	}
	c.checking[importPath] = true
	defer delete(c.checking, importPath)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("list %s: %w", dir, err)
	}
	names := bp.GoFiles
	if includeTests {
		names = append(append([]string{}, names...), bp.TestGoFiles...)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(path, srcDir string) (*types.Package, error) {
			return c.importPkg(path)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, c.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors in %s: %v", importPath, typeErrs[0])
	}
	p := &Package{Path: importPath, Fset: c.fset, Files: files, Types: tpkg, Info: info}
	c.pkgs[importPath] = p
	return p, nil
}

func (c *Config) dirFor(importPath string) (string, bool) {
	if dir, ok := c.Dirs[importPath]; ok {
		return dir, true
	}
	if c.ModulePath != "" {
		if importPath == c.ModulePath {
			return c.ModuleDir, true
		}
		if rest, ok := strings.CutPrefix(importPath, c.ModulePath+"/"); ok {
			return filepath.Join(c.ModuleDir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

func (c *Config) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := c.dirFor(path); ok {
		p, err := c.load(path, false)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return c.std.ImportFrom(path, "", 0)
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(path, srcDir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path, "") }
