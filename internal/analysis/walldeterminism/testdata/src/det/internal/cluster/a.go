// Package cluster stands in for a deterministic package (matched by
// its path suffix): wall clocks, global randomness, and map-ordered
// output are forbidden here.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in a deterministic package`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn draws from the process-global random source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the process-global random source`
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map range`
	}
	return keys
}

func printInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside a map range`
	}
}

// Negative cases.

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative: order cannot matter
	}
	return total
}

func buildIndex(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

func perIterationSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func injectedClock(now func() time.Time) time.Time {
	return now() // the caller owns the wall clock
}

func allowedTrace(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow walldeterminism debug-only trace, order never compared
		keys = append(keys, k)
	}
	return keys
}
