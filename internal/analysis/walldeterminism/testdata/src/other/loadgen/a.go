// Package loadgen is outside the deterministic set: wall clocks and
// global randomness are its normal business and must not be flagged.
package loadgen

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func jitter() int { return rand.Intn(100) }
