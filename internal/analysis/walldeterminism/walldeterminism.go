// Package walldeterminism protects the property the whole
// reproduction stands on: simulated results are pure functions of
// their inputs. Virtual seconds, content-addressed result keys, and
// sweep IDs must be bit-identical across runs, machines, and
// parallelism — so the deterministic packages (internal/cluster,
// internal/core, internal/sweep, internal/vtime, internal/synth) may
// not read the wall clock, draw from process-global randomness, or
// emit output in map-iteration order.
//
// Three rules, non-test files only:
//
//   - time.Now / time.Since / time.Until are forbidden (wall time is
//     the scheduler's and bench harness's business, injected from
//     outside);
//   - package-level math/rand and math/rand/v2 functions are forbidden
//     (they draw from the shared, unseeded source; rand.New with an
//     explicit seed is fine);
//   - a range over a map that appends to an outer slice or writes
//     output is flagged unless that slice is sorted afterwards in the
//     same function.
package walldeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imagebench/internal/analysis"
)

// Analyzer is the walldeterminism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "walldeterminism",
	Doc: "deterministic packages may not use wall time, process-global randomness, " +
		"or map-iteration-ordered output",
	Run: run,
}

// DetPackages are the path suffixes of packages whose outputs must be
// pure functions of their inputs.
var DetPackages = []string{
	"internal/cluster",
	"internal/core",
	"internal/sweep",
	"internal/vtime",
	"internal/synth",
}

// globalRand lists the package-level math/rand functions that draw
// from the shared source. rand.New, rand.NewSource, and methods on an
// explicit *rand.Rand are fine.
var globalRand = map[string]map[string]bool{
	"math/rand": set("Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "ExpFloat64", "NormFloat64",
		"Perm", "Shuffle", "Read", "Seed"),
	"math/rand/v2": set("Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "ExpFloat64", "NormFloat64", "Perm", "Shuffle", "N"),
}

var wallClock = set("Now", "Since", "Until")

// emitMethods are writer-shaped method names: calling one inside a
// map-range leaks iteration order into output.
var emitMethods = set("Write", "WriteString", "WriteByte", "WriteRune", "WriteTo", "Encode")

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func run(pass *analysis.Pass) error {
	if !pass.PkgMatches(DetPackages...) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		if pass.IsTestFile(n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, stack)
		}
		return true
	})
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if path == "time" && wallClock[name] {
		pass.Reportf(call.Pos(), "time.%s in a deterministic package: results must be pure functions of inputs — inject the clock from the caller (outside %s)", name, shortPkg(pass))
	}
	if fns, ok := globalRand[path]; ok && fns[name] && fn.Type().(*types.Signature).Recv() == nil {
		pass.Reportf(call.Pos(), "%s.%s draws from the process-global random source: use rand.New(rand.NewSource(seed)) so runs are reproducible", pathBase(path), name)
	}
}

// checkMapRange flags map iteration whose body emits ordered output.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	funcBody := analysis.EnclosingFunc(stack)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append to a slice declared outside the loop → order leaks
		// into the slice, unless it is sorted afterwards.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.ObjectOf(target)
				if obj == nil || insideNode(obj.Pos(), rs) {
					return true // per-iteration slice: harmless
				}
				if funcBody != nil && sortedLater(pass, funcBody, obj) {
					return true
				}
				pass.Reportf(call.Pos(), "append to %q inside a map range: iteration order is nondeterministic — collect and sort the keys first (or sort %q before use)", target.Name, target.Name)
				return true
			}
		}
		if fn := pass.Callee(call); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln" ||
				fn.Name() == "Print" || fn.Name() == "Printf" || fn.Name() == "Println") {
				pass.Reportf(call.Pos(), "fmt.%s inside a map range: output order is nondeterministic — iterate a sorted key slice instead", fn.Name())
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && emitMethods[fn.Name()] {
				pass.Reportf(call.Pos(), "%s inside a map range emits in nondeterministic order — iterate a sorted key slice instead", fn.Name())
			}
		}
		return true
	})
}

// sortedLater reports whether the function body contains a call into
// package sort or slices that mentions obj — the collect-then-sort
// idiom.
func sortedLater(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func insideNode(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

func shortPkg(pass *analysis.Pass) string {
	return pathBase(pass.Pkg.Path())
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
