package walldeterminism_test

import (
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/walldeterminism"
)

func TestWallDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", walldeterminism.Analyzer,
		"det/internal/cluster",
		"other/loadgen", // outside the deterministic set: no findings expected
	)
}
