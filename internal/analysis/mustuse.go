package analysis

import (
	"go/ast"
	"go/types"
)

// Tracked describes one value produced by a call that carries a
// release obligation: a pooled buffer that must be Put back, a stream
// block that must be Released, a span that must be Ended.
type Tracked struct {
	// Call names the producer in diagnostics, e.g. "Arena.Get".
	Call string
	// What names the produced value, e.g. "arena buffer".
	What string
	// ResultIndex is which result of the call is tracked (for
	// multi-result producers like StartSpan).
	ResultIndex int
	// Consumers are method names on the tracked value that discharge
	// the obligation (Release, End). Passing the value to any function
	// (including Arena.Put), returning it, or storing it in a field,
	// composite, map, or channel also discharges it — responsibility
	// moved to the receiver.
	Consumers []string
	// Verb is the past-tense discharge verb for diagnostics:
	// "Released", "Ended", "Put back".
	Verb string
	// Fix is appended to the diagnostic, e.g. "call Release (or hand
	// the block to a sink that does)".
	Fix string
}

// MustConsume is the shared engine behind releasepair and spanend: a
// flow-insensitive but scope-aware check that every tracked value is
// consumed on some path of the function that produced it. It reports
// a producer call when the result is discarded outright, bound to _,
// or bound to a local that is never consumed and never escapes.
type MustConsume struct {
	// Producer classifies a call; ok=false means the call is not
	// tracked by this analyzer.
	Producer func(p *Pass, call *ast.CallExpr) (Tracked, bool)
	// SkipTestFiles skips _test.go files when set.
	SkipTestFiles bool
}

// Run applies the check to the pass.
func (m MustConsume) Run(pass *Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m.SkipTestFiles && pass.IsTestFile(call.Pos()) {
			return true
		}
		tr, ok := m.Producer(pass, call)
		if !ok {
			return true
		}
		m.check(pass, call, stack, tr)
		return true
	})
	return nil
}

func (m MustConsume) check(pass *Pass, call *ast.CallExpr, stack []ast.Node, tr Tracked) {
	parent := parentOf(stack, 1)
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s is discarded: the %s can never be %s; %s",
			tr.Call, tr.What, consumedVerb(tr), tr.Fix)
	case *ast.AssignStmt:
		m.checkBinding(pass, call, stack, tr, assignTarget(p, call, tr.ResultIndex))
	case *ast.ValueSpec:
		var target ast.Expr
		if len(p.Values) == 1 && len(p.Names) > 1 {
			target = p.Names[tr.ResultIndex]
		} else {
			for i, v := range p.Values {
				if v == call && i < len(p.Names) {
					target = p.Names[i]
				}
			}
		}
		m.checkBinding(pass, call, stack, tr, target)
	case *ast.SelectorExpr:
		// Chained call: producer(...).Method(...). Fine when Method
		// consumes; otherwise the value is unreachable afterwards.
		if gp, ok := parentOf(stack, 2).(*ast.CallExpr); ok && gp.Fun == parent {
			for _, c := range tr.Consumers {
				if p.Sel.Name == c {
					return
				}
			}
			pass.Reportf(call.Pos(), "%s from %s is used via .%s but can never be %s afterwards; %s",
				tr.What, tr.Call, p.Sel.Name, consumedVerb(tr), tr.Fix)
		}
	case *ast.GoStmt, *ast.DeferStmt:
		if deferredCall(parent) == call {
			pass.Reportf(call.Pos(), "result of deferred %s is discarded: the %s can never be %s; %s",
				tr.Call, tr.What, consumedVerb(tr), tr.Fix)
		}
	default:
		// Argument position, return statement, composite literal,
		// index expression, … — the value escapes to an owner.
	}
}

// assignTarget returns the LHS expression bound to call's tracked
// result in the assignment, or nil.
func assignTarget(a *ast.AssignStmt, call *ast.CallExpr, resultIndex int) ast.Expr {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		if a.Rhs[0] == call && resultIndex < len(a.Lhs) {
			return a.Lhs[resultIndex]
		}
		return nil
	}
	for i, r := range a.Rhs {
		if r == call && i < len(a.Lhs) {
			return a.Lhs[i]
		}
	}
	return nil
}

// checkBinding handles a producer result bound to target.
func (m MustConsume) checkBinding(pass *Pass, call *ast.CallExpr, stack []ast.Node, tr Tracked, target ast.Expr) {
	id, ok := target.(*ast.Ident)
	if !ok {
		// Bound straight into a field, map, or slice element: escapes.
		return
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "%s from %s is assigned to _: it can never be %s; %s",
			tr.What, tr.Call, consumedVerb(tr), tr.Fix)
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	body := EnclosingFunc(stack)
	if body == nil {
		// Package-level binding: lives for the process, not a leak in
		// the per-call sense this check targets.
		return
	}
	if !consumedIn(pass, body, obj, tr.Consumers) {
		pass.Reportf(call.Pos(), "%s %q from %s is never %s in this function and does not escape; %s",
			tr.What, id.Name, tr.Call, consumedVerb(tr), tr.Fix)
	}
}

// consumedIn reports whether some use of obj inside body discharges
// the obligation: a call to one of the consuming methods, or any
// escape (argument, return, store, address-of, channel send, alias).
func consumedIn(pass *Pass, body *ast.BlockStmt, obj types.Object, consumers []string) bool {
	found := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		switch p := parentOf(stack, 1).(type) {
		case *ast.SelectorExpr:
			if p.X != id {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[p]; ok && sel.Kind() == types.FieldVal {
				// Field read: a borrow, neither consumption nor escape.
				return true
			}
			if gp, ok := parentOf(stack, 2).(*ast.CallExpr); ok && gp.Fun == p {
				// Method call on the value: consumes only if named so;
				// data-access methods are borrows, not releases.
				for _, c := range consumers {
					if p.Sel.Name == c {
						found = true
					}
				}
			} else {
				// Method value (v.Release passed as a closure): the
				// obligation moved with it.
				found = true
			}
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == id {
					found = true // handed to a callee (Put, append, sink, …)
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				found = true
			}
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == id {
					found = true // aliased or stored somewhere else
				}
			}
		}
		return !found
	})
	return found
}

// parentOf returns the nth enclosing node above the top of stack,
// skipping parentheses.
func parentOf(stack []ast.Node, n int) ast.Node {
	i := len(stack) - 1 - n
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		return stack[i]
	}
	return nil
}

func consumedVerb(tr Tracked) string {
	if tr.Verb != "" {
		return tr.Verb
	}
	return "consumed"
}

func deferredCall(n ast.Node) *ast.CallExpr {
	switch s := n.(type) {
	case *ast.GoStmt:
		return s.Call
	case *ast.DeferStmt:
		return s.Call
	}
	return nil
}
