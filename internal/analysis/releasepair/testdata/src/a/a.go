// Package a exercises the releasepair analyzer.
package a

import "example/internal/volume"

type holder struct {
	buf *volume.V3
}

func leakArenaBuffer(a *volume.Arena) float64 {
	v := a.Get(4, 4, 4) // want `arena buffer "v" from Arena.Get is never Put back`
	v.Fill(1)
	return v.Data[0]
}

func leakZeroed(a *volume.Arena) {
	v := a.GetZeroed(2, 2, 2) // want `arena buffer "v" from Arena.GetZeroed is never Put back`
	v.Fill(0)
}

func discardGet(a *volume.Arena) {
	_ = a.Get(1, 1, 1) // want `arena buffer from Arena.Get is assigned to _`
}

func chainWithoutOwner(a *volume.Arena) {
	a.Get(1, 1, 1).Fill(0) // want `arena buffer from Arena.Get is used via .Fill`
}

func leakBlock(s volume.Stream) float64 {
	total := 0.0
	for {
		bv, ok := s.Next() // want `stream block "bv" from Stream.Next is never Released`
		if !ok {
			return total
		}
		total += bv.Vol.Data[0]
	}
}

func discardNext(s volume.Stream) {
	s.Next() // want `result of Stream.Next is discarded`
}

// Negative cases: every obligation below is discharged.

func putBack(a *volume.Arena) {
	v := a.Get(4, 4, 4)
	v.Fill(1)
	a.Put(v)
}

func deferredPut(a *volume.Arena) float64 {
	v := a.GetZeroed(2, 2, 2)
	defer func() { a.Put(v) }()
	return v.Data[0]
}

func returned(a *volume.Arena) *volume.V3 {
	v := a.Get(8, 8, 8)
	v.Fill(2)
	return v
}

func stored(a *volume.Arena, h *holder) {
	h.buf = a.Get(2, 2, 2)
}

func handedToSink(a *volume.Arena, sink func(*volume.V3)) {
	v := a.Get(2, 2, 2)
	sink(v)
}

func drainWithRelease(s volume.Stream) float64 {
	total := 0.0
	for {
		bv, ok := s.Next()
		if !ok {
			return total
		}
		total += bv.Vol.Data[0]
		bv.Release()
	}
}

func blockForwarded(s volume.Stream, out chan<- volume.BlockVol) {
	for {
		bv, ok := s.Next()
		if !ok {
			return
		}
		out <- bv
	}
}

func allowedLeak(a *volume.Arena) {
	//lint:allow releasepair buffer is process-lifetime by design
	v := a.Get(1, 1, 1)
	v.Fill(0)
}
