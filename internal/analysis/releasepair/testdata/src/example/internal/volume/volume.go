// Package volume is a stub of the real pooling layer, shaped exactly
// like it: the analyzer matches by package-path suffix and type name,
// so these declarations are what it keys on.
package volume

// V3 is a pooled 3-D buffer.
type V3 struct {
	Data []float64
}

// Fill is a data-access method: calling it does not discharge the
// Put-back obligation.
func (v *V3) Fill(x float64) {
	for i := range v.Data {
		v.Data[i] = x
	}
}

// Arena pools V3 buffers.
type Arena struct{}

// Get returns a pooled buffer that must be Put back.
func (a *Arena) Get(nx, ny, nz int) *V3 { return &V3{Data: make([]float64, nx*ny*nz)} }

// GetZeroed is Get with zeroing.
func (a *Arena) GetZeroed(nx, ny, nz int) *V3 { return a.Get(nx, ny, nz) }

// Put returns a buffer to the pool.
func (a *Arena) Put(v *V3) {}

// BlockVol is one z-slab of a streamed volume.
type BlockVol struct {
	Vol *V3
}

// Release returns the block's buffer to its pool.
func (bv *BlockVol) Release() {}

// Stream is a pull-iterator of blocks.
type Stream interface {
	Next() (BlockVol, bool)
}
