// Package releasepair guards the pooling contract behind PR 8's
// O(workers) memory claim: every block pulled from a volume stream
// must be Released, and every buffer taken from an Arena must be Put
// back (or handed to an owner who will). A single leaked BlockVol or
// arena buffer silently degrades the pool to plain allocation — no
// test fails, the sweep just stops being O(workers).
//
// The check is flow-insensitive but scope-aware: a tracked value must,
// somewhere in the producing function, either hit its consuming method
// (Release), be passed to a callee (Arena.Put, a sink, append), be
// returned, or be stored into a longer-lived structure. Values that
// are only read and then dropped are reported.
package releasepair

import (
	"go/ast"
	"go/types"

	"imagebench/internal/analysis"
)

// Analyzer is the releasepair analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "releasepair",
	Doc: "stream blocks (Stream.Next) must reach Release and arena buffers " +
		"(Arena.Get/GetZeroed) must reach Arena.Put, or escape to an owner",
	Run: analysis.MustConsume{Producer: producer, SkipTestFiles: true}.Run,
}

// volumePkg is the path suffix of the package defining the pooled
// types.
const volumePkg = "internal/volume"

func producer(pass *analysis.Pass, call *ast.CallExpr) (analysis.Tracked, bool) {
	fn := pass.Callee(call)
	if fn == nil {
		return analysis.Tracked{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return analysis.Tracked{}, false
	}
	switch fn.Name() {
	case "Next":
		// Any Next() (BlockVol, bool) — the Stream interface and every
		// concrete stream type alike.
		if sig.Results().Len() == 2 && isVolumeType(sig.Results().At(0).Type(), "BlockVol") {
			return analysis.Tracked{
				Call:        "Stream.Next",
				What:        "stream block",
				ResultIndex: 0,
				Consumers:   []string{"Release"},
				Verb:        "Released",
				Fix:         "call Release once done (or hand the block to a sink that does)",
			}, true
		}
	case "Get", "GetZeroed":
		if isVolumeType(sig.Recv().Type(), "Arena") && sig.Results().Len() == 1 {
			return analysis.Tracked{
				Call:        "Arena." + fn.Name(),
				What:        "arena buffer",
				ResultIndex: 0,
				Verb:        "Put back",
				Fix:         "pass it to Arena.Put when done (or return/store it for a caller who will)",
			}, true
		}
	}
	return analysis.Tracked{}, false
}

// isVolumeType reports whether t (possibly a pointer) is the named
// type internal/volume.<name>.
func isVolumeType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		analysis.PathHasSuffix(obj.Pkg().Path(), volumePkg)
}
