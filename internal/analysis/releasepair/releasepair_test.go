package releasepair_test

import (
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/releasepair"
)

func TestReleasePair(t *testing.T) {
	analysistest.Run(t, "testdata", releasepair.Analyzer, "a")
}
