package suite_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/suite"
)

// TestTreeIsClean runs every analyzer in the suite over every package
// of the module — the in-process twin of CI's
// `go vet -vettool=imagebench-vet ./...` gate. A finding here is a
// real invariant violation (or a missing //lint:allow with its
// reason); fix the code, don't relax the analyzer.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs := modulePackages(t)
	if len(pkgs) < 20 {
		t.Fatalf("found only %d packages, expected the whole module; package walk broken?", len(pkgs))
	}
	for _, a := range suite.All() {
		analysistest.RunClean(t, a, false, pkgs...)
	}
}

// modulePackages walks the repo for directories containing non-test
// Go files and returns their import paths.
func modulePackages(t *testing.T) []string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("expected module root at %s: %v", root, err)
	}
	seen := map[string]bool{}
	var pkgs []string
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		name := info.Name()
		if info.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if seen[dir] {
			return nil
		}
		seen[dir] = true
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			pkgs = append(pkgs, "imagebench")
			return nil
		}
		pkgs = append(pkgs, "imagebench/"+filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}
