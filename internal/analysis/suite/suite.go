// Package suite enumerates the repo's invariant analyzers — the set
// cmd/imagebench-vet runs under `go vet -vettool` and the in-process
// clean test runs over the whole module.
package suite

import (
	"imagebench/internal/analysis"
	"imagebench/internal/analysis/atomicwrite"
	"imagebench/internal/analysis/droppederr"
	"imagebench/internal/analysis/enginedispatch"
	"imagebench/internal/analysis/releasepair"
	"imagebench/internal/analysis/spanend"
	"imagebench/internal/analysis/walldeterminism"
)

// All returns the full analyzer suite in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicwrite.Analyzer,
		droppederr.Analyzer,
		enginedispatch.Analyzer,
		releasepair.Analyzer,
		spanend.Analyzer,
		walldeterminism.Analyzer,
	}
}
