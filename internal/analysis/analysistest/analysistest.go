// Package analysistest runs analyzers over fixture packages and
// checks their diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the local
// framework.
//
// A fixture tree lives under <testdata>/src/<importpath>/*.go. A line
// expecting a diagnostic carries a trailing comment of the form
//
//	v := arena.Get(1, 1, 1) // want `never Put back`
//
// with one double- or back-quoted regexp per expected diagnostic on
// that line. Every diagnostic must match a want on its line and every
// want must be matched — extra or missing findings fail the test.
package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"imagebench/internal/analysis"
	"imagebench/internal/analysis/load"
)

// Run checks analyzer a against the fixture packages at the given
// import paths under testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	cfg := &load.Config{Dirs: scanSrcTree(t, filepath.Join(testdata, "src"))}
	for _, path := range paths {
		diags, pkg := runOne(t, cfg, a, path)
		if pkg != nil {
			checkWants(t, cfg, pkg, diags)
		}
	}
}

// RunModule runs analyzer a over real packages of the enclosing
// module (resolved from the working directory's go.mod upward) and
// returns the diagnostics. IncludeTests controls whether the target
// packages' in-package _test.go files are analyzed too.
func RunModule(t *testing.T, a *analysis.Analyzer, includeTests bool, importPaths ...string) []analysis.Diagnostic {
	t.Helper()
	modDir, modPath := moduleRoot(t)
	cfg := &load.Config{ModulePath: modPath, ModuleDir: modDir, IncludeTests: includeTests}
	var all []analysis.Diagnostic
	for _, path := range importPaths {
		diags, _ := runOne(t, cfg, a, path)
		all = append(all, diags...)
	}
	return all
}

// RunClean asserts that analyzer a reports nothing on the given real
// module packages.
func RunClean(t *testing.T, a *analysis.Analyzer, includeTests bool, importPaths ...string) {
	t.Helper()
	modDir, modPath := moduleRoot(t)
	cfg := &load.Config{ModulePath: modPath, ModuleDir: modDir, IncludeTests: includeTests}
	for _, path := range importPaths {
		diags, _ := runOne(t, cfg, a, path)
		for _, d := range diags {
			t.Errorf("%s: unexpected %s diagnostic: %s", cfg.Fset().Position(d.Pos), a.Name, d.Message)
		}
	}
}

func runOne(t *testing.T, cfg *load.Config, a *analysis.Analyzer, path string) ([]analysis.Diagnostic, *load.Package) {
	t.Helper()
	pkg, err := cfg.Load(path)
	if err != nil {
		t.Errorf("load %s: %v", path, err)
		return nil, nil
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("%s over %s: %v", a.Name, path, err)
		return nil, nil
	}
	return pass.Diagnostics(), pkg
}

// want is one expectation parsed from a comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func checkWants(t *testing.T, cfg *load.Config, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, cfg, c)...)
			}
		}
	}
	for _, d := range diags {
		pos := cfg.Fset().Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the expectations from one comment.
func parseWants(t *testing.T, cfg *load.Config, c *ast.Comment) []*want {
	t.Helper()
	text := c.Text
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil
	}
	pos := cfg.Fset().Position(c.Pos())
	rest := strings.TrimSpace(text[idx+len("// want "):])
	var out []*want
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				t.Errorf("%s: unterminated want string", pos)
				return out
			}
			raw := rest[:end+2]
			s, err := strconv.Unquote(raw)
			if err != nil {
				t.Errorf("%s: bad want string %s: %v", pos, raw, err)
				return out
			}
			lit, rest = s, strings.TrimSpace(rest[end+2:])
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				t.Errorf("%s: unterminated want string", pos)
				return out
			}
			lit, rest = rest[1:end+1], strings.TrimSpace(rest[end+2:])
		default:
			t.Errorf("%s: want expects quoted regexps, got %q", pos, rest)
			return out
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
			return out
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	return out
}

// scanSrcTree maps every directory under root that contains Go files
// to its slash-separated path relative to root.
func scanSrcTree(t *testing.T, root string) map[string]string {
	t.Helper()
	dirs := map[string]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		dirs[filepath.ToSlash(rel)] = dir
		return nil
	})
	if err != nil {
		t.Fatalf("scan %s: %v", root, err)
	}
	return dirs
}

// moduleRoot finds the enclosing go.mod from the working directory and
// returns its directory and module path.
func moduleRoot(t *testing.T) (dir, modPath string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := wd; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			t.Fatalf("no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", wd)
		}
	}
}
