// Package unit runs an analyzer suite under `go vet -vettool=...`.
//
// It implements the go command's vet-tool protocol (the same contract
// golang.org/x/tools' unitchecker implements, rebuilt here on the
// standard library because this repository vendors no dependencies):
//
//   - `tool -V=full` prints a content-addressed version line the go
//     command uses as the tool's cache key;
//   - `tool -flags` prints the tool's flag set as JSON (empty: the
//     suite has no flags);
//   - `tool <dir>/vet.cfg` analyzes one package unit described by the
//     JSON config the go command writes: source files are parsed and
//     type-checked against the export data of already-compiled
//     dependencies (no reloading, no network), the suite runs, and
//     diagnostics are printed `file:line:col: message` on stderr with
//     exit status 2 — which go vet relays per package;
//   - `tool <packages...>` (no .cfg) re-executes `go vet -vettool=self
//     <packages...>` so the tool is also directly invocable.
//
// The go command invokes the tool once per package unit, including
// dependency units whose only purpose is fact propagation (VetxOnly).
// The suite's analyzers keep no cross-package facts, so those units
// short-circuit to an empty facts file, keeping `go vet ./...` at the
// cost of the packages actually named.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"imagebench/internal/analysis"
)

// Config mirrors the go command's per-package vet configuration
// (cmd/go/internal/work.vetConfig). Fields the suite has no use for
// (NonGoFiles, PackageVetx, ...) are listed so the JSON round-trips,
// not because they are consulted.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet tool binary built over analyzers.
// It never returns: every mode ends in os.Exit.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "imagebench-vet"
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion(progname)
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		// The suite defines no flags; the go command only needs valid
		// JSON here to decide which vet flags it may forward.
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		code, err := runUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(code)
	default:
		// Direct invocation with package patterns: delegate to go vet,
		// which drives this binary through the .cfg protocol above.
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// printVersion emits the `-V=full` line the go command hashes into its
// cache key. The content hash of the executable stands in for a build
// ID: rebuilding the tool with different analyzers invalidates every
// cached vet result, which is exactly the invalidation wanted.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:16])
}

// runUnit analyzes the single package unit described by cfgPath and
// reports the exit status go vet expects: 0 clean, 2 diagnostics.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parse %s: %w", cfgPath, err)
	}

	// Facts file first: the suite keeps none, but the go command reads
	// this path back to cache the unit, and dependency units exist only
	// to produce it.
	if cfg.VetxOutput != "" {
		//lint:allow atomicwrite vetx facts file is the go command's protocol artifact, written where it asks
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, fmt.Errorf("write facts: %w", err)
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			fmt.Fprintln(os.Stderr, err)
			return 1, nil
		}
		files = append(files, f)
	}

	// Imports resolve through the export data of already-compiled
	// dependencies: ImportMap takes the path as written in source to
	// the canonical package path, PackageFile takes that to the .a
	// file go build produced.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		fmt.Fprintln(os.Stderr, err)
		return 1, nil
	}

	exit := 0
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return 0, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.Diagnostics() {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 2
		}
	}
	return exit, nil
}
