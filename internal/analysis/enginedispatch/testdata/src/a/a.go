// Package a exercises the enginedispatch analyzer: stringly-typed
// dispatch over engine names must be flagged, single-name shape
// checks must not.
package a

import "fmt"

func switchOverSysVar(sys string) {
	switch sys { // want `switch over system-name variable "sys"`
	case "a":
		fmt.Println("a")
	}
}

func switchOverEngineNames(name string) {
	switch name { // want `switch dispatches over 2 engine names`
	case "Spark":
		fmt.Println("lineage")
	case "Myria":
		fmt.Println("restart")
	}
}

func switchVariants(kind string) {
	switch kind { // want `switch dispatches over 3 engine names`
	case "SciDB-1":
		fmt.Println("ingest 1")
	case "SciDB-incremental", "TensorFlow":
		fmt.Println("other")
	}
}

func sliceOfEngines() []string {
	return []string{"Spark", "Dask"} // want `string-list literal enumerates 2 engine names`
}

func multiLineSlice() []string {
	return []string{ // want `string-list literal enumerates 3 engine names`
		"Spark",
		"Myria",
		"TensorFlow",
	}
}

func mapKeyedByEngines() map[string]int {
	return map[string]int{ // want `map literal keyed by 2 engine names`
		"Spark": 1,
		"Dask":  2,
	}
}

// Negative cases: none of these may fire.

func singleNameShapeCheck(get func(system, col string) float64) float64 {
	return get("Spark", "total") // one name is an assertion, not dispatch
}

func singletonSlice() []string {
	return []string{"Myria"}
}

func unrelatedSwitch(color string) {
	switch color {
	case "red", "green":
		fmt.Println(color)
	}
}

func unrelatedMap() map[string]int {
	return map[string]int{"red": 1, "green": 2}
}

func allowedLegendOrder() []string {
	//lint:allow enginedispatch fixture pins the paper's legend order
	return []string{"Dask", "Myria", "Spark"}
}
