// Package enginedispatch enforces the Engine API contract from PR 5:
// the experiment harness derives its system sets from the engine
// registry, never from hard-coded name lists or switch-on-system-name
// blocks. It is the type-checked replacement for the old regex guard
// test in internal/core — and unlike the regex it sees multi-line
// literals, survives file moves, and covers the whole tree.
//
// Three shapes of stringly-typed dispatch are flagged:
//
//   - a switch whose tag is a system-name variable (sys, system,
//     engineName, …) of string type, or whose cases enumerate two or
//     more engine names;
//   - a []string (or array) literal containing two or more engine
//     names — one name is a shape-check assertion, a set is dispatch;
//   - a map literal with two or more engine-name keys.
//
// Legitimate single-engine references (t.Get("Spark", …) encoding a
// paper finding) are untouched. A rare justified set — e.g. a test
// fixture spelling the paper's legend order — is waived with
// //lint:allow enginedispatch <reason>.
package enginedispatch

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"imagebench/internal/analysis"
)

// Analyzer is the enginedispatch analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "enginedispatch",
	Doc: "forbid stringly-typed engine dispatch: switches over system names and " +
		"engine-name list/map literals must be derived from the engine registry",
	Run: run,
}

// engineBase is the set of registered engine display names. Variant
// rows append -1, -2, or -incremental (SciDB's ingest and coadd
// variants).
//
//lint:allow enginedispatch this map IS the canonical name table the analyzer matches against
var engineBase = map[string]bool{
	"Spark":      true,
	"Myria":      true,
	"Dask":       true,
	"SciDB":      true,
	"TensorFlow": true,
}

// sysVar matches identifiers conventionally holding a system name.
var sysVar = regexp.MustCompile(`(?i)^(sys|system|engine)(name|variant)?$`)

// isEngineName reports whether the string constant names an engine or
// an engine variant.
func isEngineName(s string) bool {
	for _, suffix := range []string{"-1", "-2", "-incremental"} {
		s = strings.TrimSuffix(s, suffix)
	}
	return engineBase[s]
}

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SwitchStmt:
			if pass.IsTestFile(n.Pos()) {
				return true
			}
			checkSwitch(pass, n)
		case *ast.CompositeLit:
			if pass.IsTestFile(n.Pos()) {
				return true
			}
			checkCompositeLit(pass, n)
		}
		return true
	})
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if tag := tagIdent(sw.Tag); tag != nil && sysVar.MatchString(tag.Name) && isString(pass, sw.Tag) {
		pass.Reportf(sw.Pos(), "switch over system-name variable %q: dispatch on engine names belongs in the registry (engine.Lookup/engine.Supporting)", tag.Name)
		return
	}
	names := map[string]bool{}
	var firstPos token.Pos
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s, ok := stringConst(pass, e); ok && isEngineName(s) {
				if firstPos == token.NoPos {
					firstPos = e.Pos()
				}
				names[s] = true
			}
		}
	}
	if len(names) >= 2 {
		pass.Reportf(sw.Pos(), "switch dispatches over %d engine names: derive behavior from the engine registry (engine.Lookup/engine.Supporting) instead", len(names))
	}
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		if !elemIsString(u) {
			return
		}
		names := map[string]bool{}
		for _, e := range lit.Elts {
			if s, ok := stringConst(pass, e); ok && isEngineName(s) {
				names[s] = true
			}
		}
		if len(names) >= 2 {
			pass.Reportf(lit.Pos(), "string-list literal enumerates %d engine names: the engine set must come from the registry (engine.All/engine.Supporting)", len(names))
		}
	case *types.Map:
		if !isBasicString(u.Key()) {
			return
		}
		names := map[string]bool{}
		for _, e := range lit.Elts {
			kv, ok := e.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if s, ok := stringConst(pass, kv.Key); ok && isEngineName(s) {
				names[s] = true
			}
		}
		if len(names) >= 2 {
			pass.Reportf(lit.Pos(), "map literal keyed by %d engine names: per-engine behavior belongs in the engine adapters, not a dispatch table", len(names))
		}
	}
}

func tagIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case nil:
		return nil
	}
	return nil
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && isBasicString(t)
}

func isBasicString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func elemIsString(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		return isBasicString(t.Elem())
	case *types.Array:
		return isBasicString(t.Elem())
	}
	return false
}

// stringConst returns the constant string value of e, if it has one.
func stringConst(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
