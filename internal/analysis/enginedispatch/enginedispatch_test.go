package enginedispatch_test

import (
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/enginedispatch"
)

func TestEngineDispatch(t *testing.T) {
	analysistest.Run(t, "testdata", enginedispatch.Analyzer, "a")
}
