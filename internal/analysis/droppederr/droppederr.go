// Package droppederr forbids silently discarded write errors in the
// serving path (internal/daemon and internal/fed). A handler that
// ignores the error from json.Encoder.Encode, ResponseWriter.Write,
// or a Flush cannot tell a served response from a half-written one —
// the exact class of bug PRs 7 and 9 fixed after the fact (dropped
// encode errors, q-value negotiation writing to dead connections).
//
// A call is flagged when its trailing error result is discarded: used
// as a bare statement, deferred, or assigned to _. Checked callees are
// writer-shaped methods (Encode, Write, WriteString, WriteText, Flush
// returning error) and the fmt.Fprint* / io.Copy / io.WriteString
// family.
package droppederr

import (
	"go/ast"
	"go/types"

	"imagebench/internal/analysis"
)

// Analyzer is the droppederr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc: "handler packages (internal/daemon, internal/fed) may not discard the " +
		"error result of Encode/Write/Flush-style calls",
	Run: run,
}

// HandlerPackages are the path suffixes this analyzer patrols.
var HandlerPackages = []string{"internal/daemon", "internal/fed"}

// methodNames are the writer-shaped methods whose error result must
// be consumed.
var methodNames = map[string]bool{
	"Encode":      true,
	"Write":       true,
	"WriteString": true,
	"WriteText":   true,
	"Flush":       true,
}

// pkgFuncs are package-level functions likewise checked, keyed by
// package path then name.
var pkgFuncs = map[string]map[string]bool{
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":  {"Copy": true, "WriteString": true},
}

func run(pass *analysis.Pass) error {
	if !pass.PkgMatches(HandlerPackages...) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.IsTestFile(call.Pos()) {
			return true
		}
		name, ok := checkedCallee(pass, call)
		if !ok {
			return true
		}
		switch how := discarded(pass, call, stack); how {
		case notDiscarded:
		case asStatement:
			pass.Reportf(call.Pos(), "error result of %s is silently dropped: a failed response write must be observed (surface, count, or log it)", name)
		case asDeferred:
			pass.Reportf(call.Pos(), "deferred %s drops its error: wrap it in a closure that records the failure", name)
		case asBlank:
			pass.Reportf(call.Pos(), "error result of %s is assigned to _: handle it, or waive with //lint:allow droppederr <reason>", name)
		}
		return true
	})
	return nil
}

// checkedCallee reports whether call invokes one of the patrolled
// functions, returning a display name.
func checkedCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.Callee(call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return "", false
	}
	if sig.Recv() != nil {
		if methodNames[fn.Name()] {
			recv := sig.Recv().Type().String()
			return typeBase(recv) + "." + fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg() != nil {
		if names, ok := pkgFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
			return fn.Pkg().Name() + "." + fn.Name(), true
		}
	}
	return "", false
}

type discardKind int

const (
	notDiscarded discardKind = iota
	asStatement
	asDeferred
	asBlank
)

// discarded classifies how the call's error result is dropped, if it
// is.
func discarded(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) discardKind {
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.ExprStmt:
			return asStatement
		case *ast.GoStmt:
			return asDeferred
		case *ast.DeferStmt:
			return asDeferred
		case *ast.AssignStmt:
			// Tuple assignment from this single call: the error is the
			// last LHS position.
			if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) > 0 {
				if id, ok := p.Lhs[len(p.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					return asBlank
				}
			}
			return notDiscarded
		default:
			return notDiscarded
		}
	}
	return notDiscarded
}

func lastResultIsError(sig *types.Signature) bool {
	n := sig.Results().Len()
	if n == 0 {
		return false
	}
	t := sig.Results().At(n - 1).Type()
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func typeBase(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}
