// Package daemon stands in for a handler package (matched by path
// suffix): write errors may not be silently dropped here.
package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

func dropEncode(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want `error result of .*Encoder.*\.Encode is silently dropped`
}

func dropWrite(w io.Writer, b []byte) {
	w.Write(b) // want `error result of .*Writer.*\.Write is silently dropped`
}

func dropFprintf(w io.Writer, name string) {
	fmt.Fprintf(w, "# %s\n", name) // want `error result of fmt.Fprintf is silently dropped`
}

func blankEncode(w io.Writer, v any) {
	_ = json.NewEncoder(w).Encode(v) // want `error result of .*Encoder.*\.Encode is assigned to _`
}

func blankWriteCount(w io.Writer, b []byte) int {
	n, _ := w.Write(b) // want `error result of .*Writer.*\.Write is assigned to _`
	return n
}

func deferFlush(w *bufio.Writer) {
	defer w.Flush() // want `deferred .*Writer.*\.Flush drops its error`
}

// Negative cases.

func handledEncode(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

func handledWrite(w io.Writer, b []byte) error {
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("write response: %w", err)
	}
	return nil
}

func handledFlush(w *bufio.Writer) error {
	return w.Flush()
}

func countedWrite(w io.Writer, b []byte, errs *int) {
	if _, err := w.Write(b); err != nil {
		*errs++
	}
}

func allowedBestEffort(w io.Writer, b []byte) {
	//lint:allow droppederr best-effort trailer after the real body
	w.Write(b)
}
