// Package cli is outside the handler packages: dropped write errors
// are stdout-printing business as usual and must not be flagged.
package cli

import (
	"fmt"
	"io"
)

func banner(w io.Writer) {
	fmt.Fprintf(w, "imagebench\n")
}
