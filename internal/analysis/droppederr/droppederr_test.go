package droppederr_test

import (
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/droppederr"
)

func TestDroppedErr(t *testing.T) {
	analysistest.Run(t, "testdata", droppederr.Analyzer,
		"h/internal/daemon",
		"other/cli", // outside the handler packages: no findings expected
	)
}
