// Package atomicwrite enforces the crash-safety contract around
// artifacts and journals: files readers may observe must appear
// atomically, which in this repo means going through
// internal/fsatomic (whole files: fsatomic.WriteFile; incremental:
// fsatomic.Create/Write/Commit) or internal/jsonl (append-only
// journals). Direct os.WriteFile, os.Create, and os.Rename calls
// anywhere else can leave half-written artifacts behind a crash — the
// exact failure mode PR 2's journal and PR 8's ArtifactWriter exist
// to rule out.
//
// os.CreateTemp, os.MkdirAll, and friends are untouched; test files
// are exempt. A deliberate non-artifact write (if one ever exists) is
// waived with //lint:allow atomicwrite <reason>.
package atomicwrite

import (
	"go/ast"

	"imagebench/internal/analysis"
)

// Analyzer is the atomicwrite analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "forbid os.WriteFile/os.Create/os.Rename outside internal/fsatomic and " +
		"internal/jsonl: artifact and journal writes must be crash-safe",
	Run: run,
}

// exemptPkgs are the packages whose whole job is the raw file
// plumbing the rest of the tree must route through.
var exemptPkgs = []string{"internal/fsatomic", "internal/jsonl"}

// forbidden maps os functions to the fsatomic replacement named in
// the diagnostic.
var forbidden = map[string]string{
	"WriteFile": "fsatomic.WriteFile",
	"Create":    "fsatomic.Create (write via the returned File, then Commit)",
	"Rename":    "fsatomic.WriteFile or fsatomic.File, which own the temp+rename dance",
}

func run(pass *analysis.Pass) error {
	if pass.PkgMatches(exemptPkgs...) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.IsTestFile(call.Pos()) {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if repl, bad := forbidden[fn.Name()]; bad {
			pass.Reportf(call.Pos(), "os.%s bypasses crash-safe artifact writes: use %s", fn.Name(), repl)
		}
		return true
	})
	return nil
}
