// Package fsatomic stands in for the real plumbing package: it is
// exempt, so its raw os calls must not be flagged.
package fsatomic

import "os"

func WriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
