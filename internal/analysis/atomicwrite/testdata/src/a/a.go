// Package a exercises the atomicwrite analyzer: raw os file mutation
// is flagged outside the fsatomic/jsonl plumbing packages.
package a

import "os"

func writeArtifact(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile bypasses crash-safe artifact writes`
}

func createArtifact(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create bypasses crash-safe artifact writes`
}

func promote(tmp, final string) error {
	return os.Rename(tmp, final) // want `os.Rename bypasses crash-safe artifact writes`
}

// Negative cases.

func scratch(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "scratch-*") // temp files are not artifacts
}

func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func allowedDebugDump(path string, data []byte) error {
	//lint:allow atomicwrite debug dump, readers never depend on it
	return os.WriteFile(path, data, 0o644)
}
