package atomicwrite_test

import (
	"testing"

	"imagebench/internal/analysis/analysistest"
	"imagebench/internal/analysis/atomicwrite"
)

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, "testdata", atomicwrite.Analyzer,
		"a",
		"example/internal/fsatomic", // exempt package: no findings expected
	)
}
