// Package obs is a stub of the real tracing package, shaped like it:
// the analyzer keys on the StartSpan name and the *Span result type.
package obs

import "context"

// Span is one traced operation.
type Span struct {
	name string
}

// End closes the span.
func (s *Span) End() {}

// SetAttr annotates the span; it does not discharge the End
// obligation.
func (s *Span) SetAttr(key, value string) {}

// StartSpan opens a span as a child of the one in ctx.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

// Tracer collects spans.
type Tracer struct{}

// StartSpan is the method form.
func (t *Tracer) StartSpan(name string) *Span { return &Span{name: name} }
